package adsketch_test

// Serving-path benchmarks: the Engine hot paths the wire protocol rides
// on.  `make bench` runs these once (-benchtime=1x) and emits
// BENCH_engine.json, the perf-trajectory artifact CI watches.

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"adsketch"
)

var benchEngineOnce struct {
	sync.Once
	set adsketch.SketchSet
	eng *adsketch.Engine
}

func benchEngine(b *testing.B) (adsketch.SketchSet, *adsketch.Engine) {
	b.Helper()
	benchEngineOnce.Do(func() {
		g := adsketch.PreferentialAttachment(20000, 5, 1)
		set, err := adsketch.Build(g, adsketch.WithK(16), adsketch.WithSeed(42))
		if err != nil {
			b.Fatal(err)
		}
		eng, err := adsketch.NewEngine(set)
		if err != nil {
			b.Fatal(err)
		}
		benchEngineOnce.set, benchEngineOnce.eng = set, eng
	})
	return benchEngineOnce.set, benchEngineOnce.eng
}

// BenchmarkEngineClosenessBatch: a 1000-node closeness batch through the
// protocol dispatch (cold cache on the first iteration, warm after).
func BenchmarkEngineClosenessBatch(b *testing.B) {
	set, eng := benchEngine(b)
	nodes := make([]int32, 1000)
	for i := range nodes {
		nodes[i] = int32(i * (set.NumNodes() / len(nodes)))
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Closeness(ctx, nodes...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTopCloseness: full-set scoring plus bounded-heap top-10
// selection (the partial-selection satellite's target path).
func BenchmarkEngineTopCloseness(b *testing.B) {
	_, eng := benchEngine(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.TopCloseness(ctx, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineDoJSON: the full wire cost of one request — JSON decode,
// dispatch, evaluate, JSON encode — as adsserver pays it.
func BenchmarkEngineDoJSON(b *testing.B) {
	_, eng := benchEngine(b)
	payload, err := json.Marshal(adsketch.Request{
		Neighborhood: &adsketch.NeighborhoodQuery{Radius: 3, Nodes: []int32{0, 17, 123, 999, 7777}},
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var req adsketch.Request
		if err := json.Unmarshal(payload, &req); err != nil {
			b.Fatal(err)
		}
		resp, err := eng.Do(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := json.Marshal(resp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSketchSetCodec: serialize + reload the whole set (the build
// artifact adsserver loads at startup).
func BenchmarkSketchSetCodec(b *testing.B) {
	set, _ := benchEngine(b)
	var buf bytes.Buffer
	if _, err := set.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := set.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := adsketch.ReadSketchSet(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}
