package adsketch_test

import (
	"context"
	"fmt"

	"adsketch"
)

// Build sketches for a small graph and estimate a neighborhood size.
func ExampleBuild() {
	g := adsketch.Grid(20, 20)
	set, err := adsketch.Build(g, adsketch.WithK(64), adsketch.WithSeed(42))
	if err != nil {
		panic(err)
	}
	// Exact |N_2(center)| on a grid interior is 13 (the radius-2 diamond).
	est := adsketch.EstimateNeighborhoodHIP(set.SketchOf(210), 2)
	fmt.Printf("|N_2| estimate within 25%% of 13: %v\n", est > 13*0.75 && est < 13*1.25)
	// Output:
	// |N_2| estimate within 25% of 13: true
}

// Serve batch centrality queries from cached per-node HIP indices.
func ExampleEngine() {
	g := adsketch.Grid(20, 20)
	set, err := adsketch.Build(g, adsketch.WithK(64), adsketch.WithSeed(42))
	if err != nil {
		panic(err)
	}
	eng, err := adsketch.NewEngine(set)
	if err != nil {
		panic(err)
	}
	// One batch call scores three nodes; the center of the grid is more
	// central than the corner.
	cl, err := eng.Closeness(context.Background(), 0, 210, 399)
	if err != nil {
		panic(err)
	}
	fmt.Printf("center beats corners: %v\n", cl[1] > cl[0] && cl[1] > cl[2])
	// Output:
	// center beats corners: true
}

// Estimate a distance-decay centrality with a query-time kernel and a
// metadata filter chosen after the sketches were built.
func ExampleEstimateCentrality() {
	g := adsketch.Star(100) // hub 0 with 99 leaves
	set, err := adsketch.Build(g, adsketch.WithK(16), adsketch.WithSeed(7),
		adsketch.WithAlgorithm(adsketch.AlgoDP))
	if err != nil {
		panic(err)
	}
	onlyEvenLeaves := func(v int32) float64 {
		if v != 0 && v%2 == 0 {
			return 1
		}
		return 0
	}
	est := adsketch.EstimateCentrality(set.SketchOf(0), adsketch.KernelThreshold(1), onlyEvenLeaves)
	fmt.Printf("even leaves within 1 hop of the hub: estimate in [30,70]: %v\n", est > 30 && est < 70)
	// Output:
	// even leaves within 1 hop of the hub: estimate in [30,70]: true
}

// Count distinct elements of a stream with the HIP counter (Algorithm 3).
func ExampleNewHIPDistinct() {
	c := adsketch.NewHIPDistinct(64, 1)
	for id := int64(0); id < 100000; id++ {
		c.Add(id)
		c.Add(id) // duplicates never change the estimate
	}
	est := c.Estimate()
	fmt.Printf("100k distinct, estimate within 25%%: %v\n", est > 75000 && est < 125000)
	// Output:
	// 100k distinct, estimate within 25%: true
}

// Compare two nodes' neighborhoods with coordinated sketches.
func ExampleNeighborhoodJaccard() {
	g := adsketch.Complete(50)
	built, err := adsketch.Build(g, adsketch.WithK(8), adsketch.WithSeed(3))
	if err != nil {
		panic(err)
	}
	set := built.(*adsketch.Set) // coordinated cross-sketch ops live on *Set
	// In a complete graph every 1-hop neighborhood is the whole node set.
	j := adsketch.NeighborhoodJaccard(set.BottomK(4), 1, set.BottomK(9), 1)
	fmt.Printf("identical neighborhoods: Jaccard = %.0f\n", j)
	// Output:
	// identical neighborhoods: Jaccard = 1
}
