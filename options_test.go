package adsketch_test

import (
	"bytes"
	"errors"
	"testing"

	"adsketch"
	"adsketch/internal/core"
)

func TestBuildOptionValidation(t *testing.T) {
	g := adsketch.Cycle(10)
	beta := make([]float64, 10)
	for i := range beta {
		beta[i] = 1
	}
	cases := []struct {
		name string
		opts []adsketch.Option
		want error
	}{
		{"k zero", []adsketch.Option{adsketch.WithK(0)}, adsketch.ErrBadOption},
		{"k negative", []adsketch.Option{adsketch.WithK(-3)}, adsketch.ErrBadOption},
		{"base-b one", []adsketch.Option{adsketch.WithBaseB(1)}, adsketch.ErrBadOption},
		{"base-b below one", []adsketch.Option{adsketch.WithBaseB(0.5)}, adsketch.ErrBadOption},
		{"negative eps", []adsketch.Option{adsketch.WithApproxEps(-0.1)}, adsketch.ErrBadOption},
		{"negative parallelism", []adsketch.Option{adsketch.WithParallelism(-1)}, adsketch.ErrBadOption},
		{"unknown flavor", []adsketch.Option{adsketch.WithFlavor(adsketch.Flavor(99))}, adsketch.ErrBadOption},
		{"unknown algorithm", []adsketch.Option{adsketch.WithAlgorithm(adsketch.Algorithm(99))}, adsketch.ErrBadOption},
		{"empty weights", []adsketch.Option{adsketch.WithNodeWeights(nil)}, adsketch.ErrBadOption},
		{"short weights", []adsketch.Option{adsketch.WithNodeWeights([]float64{1, 2})}, adsketch.ErrBadOption},
		{"non-positive weight", []adsketch.Option{adsketch.WithNodeWeights(append([]float64{0}, beta[1:]...))}, adsketch.ErrBadOption},
		{"nil option", []adsketch.Option{nil}, adsketch.ErrBadOption},
		{"weights+kmins", []adsketch.Option{
			adsketch.WithNodeWeights(beta), adsketch.WithFlavor(adsketch.KMins),
		}, adsketch.ErrIncompatibleOptions},
		{"weights+baseb", []adsketch.Option{
			adsketch.WithNodeWeights(beta), adsketch.WithBaseB(2),
		}, adsketch.ErrIncompatibleOptions},
		{"weights+dp", []adsketch.Option{
			adsketch.WithNodeWeights(beta), adsketch.WithAlgorithm(adsketch.AlgoDP),
		}, adsketch.ErrIncompatibleOptions},
		{"weights+approx", []adsketch.Option{
			adsketch.WithNodeWeights(beta), adsketch.WithApproxEps(0.1),
		}, adsketch.ErrIncompatibleOptions},
		{"priority without weights", []adsketch.Option{
			adsketch.WithPriorityRanks(),
		}, adsketch.ErrIncompatibleOptions},
		{"approx+kpartition", []adsketch.Option{
			adsketch.WithApproxEps(0.1), adsketch.WithFlavor(adsketch.KPartition),
		}, adsketch.ErrIncompatibleOptions},
		{"approx+baseb", []adsketch.Option{
			adsketch.WithApproxEps(0.1), adsketch.WithBaseB(2),
		}, adsketch.ErrIncompatibleOptions},
		{"approx+dijkstra", []adsketch.Option{
			adsketch.WithApproxEps(0.1), adsketch.WithAlgorithm(adsketch.AlgoPrunedDijkstra),
		}, adsketch.ErrIncompatibleOptions},
		{"approx+parallelism", []adsketch.Option{
			adsketch.WithApproxEps(0.1), adsketch.WithParallelism(3),
		}, adsketch.ErrIncompatibleOptions},
		{"weights+parallelism", []adsketch.Option{
			adsketch.WithNodeWeights(beta), adsketch.WithParallelism(3),
		}, adsketch.ErrIncompatibleOptions},
		{"sequential algo+parallelism", []adsketch.Option{
			adsketch.WithAlgorithm(adsketch.AlgoBruteForce), adsketch.WithParallelism(3),
		}, adsketch.ErrIncompatibleOptions},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			set, err := adsketch.Build(g, tc.opts...)
			if set != nil || err == nil {
				t.Fatalf("Build = (%v, %v), want error", set, err)
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("error %q does not match %v", err, tc.want)
			}
			// The two sentinels are disjoint.
			other := adsketch.ErrIncompatibleOptions
			if tc.want == adsketch.ErrIncompatibleOptions {
				other = adsketch.ErrBadOption
			}
			if errors.Is(err, other) {
				t.Errorf("error %q matches both sentinels", err)
			}
		})
	}
}

func TestBuildAcceptsCompatibleCombinations(t *testing.T) {
	g := adsketch.Grid(5, 5)
	beta := make([]float64, g.NumNodes())
	for i := range beta {
		beta[i] = float64(i + 1)
	}
	cases := [][]adsketch.Option{
		nil, // all defaults
		{adsketch.WithK(4), adsketch.WithFlavor(adsketch.KMins), adsketch.WithBaseB(2), adsketch.WithParallelism(2)},
		{adsketch.WithFlavor(adsketch.KPartition), adsketch.WithAlgorithm(adsketch.AlgoBruteForce)},
		{adsketch.WithNodeWeights(beta), adsketch.WithAlgorithm(adsketch.AlgoPrunedDijkstra)},
		{adsketch.WithNodeWeights(beta), adsketch.WithPriorityRanks()},
		{adsketch.WithApproxEps(0), adsketch.WithAlgorithm(adsketch.AlgoLocalUpdates)},
		{adsketch.WithParallelism(4)}, // auto-selects the batch-parallel builder
		{adsketch.WithAlgorithm(adsketch.AlgoPrunedDijkstraParallel), adsketch.WithParallelism(2)},
	}
	for i, opts := range cases {
		set, err := adsketch.Build(g, opts...)
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if set.NumNodes() != g.NumNodes() {
			t.Errorf("case %d: NumNodes = %d", i, set.NumNodes())
		}
	}
}

// Build must reproduce the internal construction entry points bit-for-bit
// under equal options (the guarantee the removed legacy shims documented).

func serialize(t *testing.T, set adsketch.SketchSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := set.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestBuildParityUniform(t *testing.T) {
	g := adsketch.WithRandomWeights(adsketch.GNP(60, 0.08, false, 5), 1, 4, 6)
	unweighted := adsketch.GNP(60, 0.08, false, 5)
	cases := []struct {
		name string
		g    *adsketch.Graph
		o    core.Options
		algo adsketch.Algorithm
	}{
		{"bottomk/dijkstra", g, core.Options{K: 4, Seed: 9}, adsketch.AlgoPrunedDijkstra},
		{"bottomk/parallel", g, core.Options{K: 4, Seed: 9}, adsketch.AlgoPrunedDijkstraParallel},
		{"bottomk/local", g, core.Options{K: 4, Seed: 9}, adsketch.AlgoLocalUpdates},
		{"bottomk/dp", unweighted, core.Options{K: 4, Seed: 9}, adsketch.AlgoDP},
		{"kmins/dijkstra", g, core.Options{K: 3, Flavor: adsketch.KMins, Seed: 2}, adsketch.AlgoPrunedDijkstra},
		{"kpartition/dijkstra", g, core.Options{K: 3, Flavor: adsketch.KPartition, Seed: 2}, adsketch.AlgoPrunedDijkstra},
		{"baseb/brute", g, core.Options{K: 4, Seed: 7, BaseB: 2}, adsketch.AlgoBruteForce},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			direct, err := core.BuildSet(tc.g, tc.o, tc.algo)
			if err != nil {
				t.Fatal(err)
			}
			opts := []adsketch.Option{
				adsketch.WithK(tc.o.K), adsketch.WithSeed(tc.o.Seed),
				adsketch.WithFlavor(tc.o.Flavor), adsketch.WithAlgorithm(tc.algo),
			}
			if tc.o.BaseB != 0 {
				opts = append(opts, adsketch.WithBaseB(tc.o.BaseB))
			}
			built, err := adsketch.Build(tc.g, opts...)
			if err != nil {
				t.Fatal(err)
			}
			set, ok := built.(*adsketch.Set)
			if !ok {
				t.Fatalf("Build returned %T, want *adsketch.Set", built)
			}
			if !bytes.Equal(serialize(t, direct), serialize(t, set)) {
				t.Error("serialized sketches differ between direct core build and option-based Build")
			}
		})
	}
}

func TestBuildParityParallelismInvariant(t *testing.T) {
	g := adsketch.GNP(50, 0.1, false, 3)
	base, err := adsketch.Build(g, adsketch.WithK(3), adsketch.WithSeed(1),
		adsketch.WithFlavor(adsketch.KMins))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 7} {
		got, err := adsketch.Build(g, adsketch.WithK(3), adsketch.WithSeed(1),
			adsketch.WithFlavor(adsketch.KMins), adsketch.WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(serialize(t, base.(*adsketch.Set)), serialize(t, got.(*adsketch.Set))) {
			t.Errorf("parallelism %d changed the built sketches", workers)
		}
	}
	// A default bottom-k build with parallelism > 1 auto-selects the
	// batch-parallel builder, whose output is identical to the serial one.
	serial, err := adsketch.Build(g, adsketch.WithK(3), adsketch.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := adsketch.Build(g, adsketch.WithK(3), adsketch.WithSeed(1),
		adsketch.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialize(t, serial.(*adsketch.Set)), serialize(t, parallel.(*adsketch.Set))) {
		t.Error("auto-parallel bottom-k build differs from the serial default")
	}
}

func TestBuildParityWeighted(t *testing.T) {
	g := adsketch.PreferentialAttachment(80, 3, 4)
	beta := make([]float64, 80)
	for i := range beta {
		beta[i] = 0.5 + float64(i%7)
	}
	for _, priority := range []bool{false, true} {
		name := "exponential"
		directBuild := core.BuildWeightedSet
		opts := []adsketch.Option{adsketch.WithK(5), adsketch.WithSeed(11), adsketch.WithNodeWeights(beta)}
		if priority {
			name = "priority"
			directBuild = core.BuildPriorityWeightedSet
			opts = append(opts, adsketch.WithPriorityRanks())
		}
		t.Run(name, func(t *testing.T) {
			legacy, err := directBuild(g, 5, 11, beta)
			if err != nil {
				t.Fatal(err)
			}
			built, err := adsketch.Build(g, opts...)
			if err != nil {
				t.Fatal(err)
			}
			ws, ok := built.(*adsketch.WeightedSet)
			if !ok {
				t.Fatalf("Build returned %T, want *adsketch.WeightedSet", built)
			}
			for v := int32(0); int(v) < g.NumNodes(); v++ {
				a, b := legacy.Sketch(v).Entries(), ws.Sketch(v).Entries()
				if len(a) != len(b) {
					t.Fatalf("node %d: %d vs %d entries", v, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("node %d entry %d: %+v vs %+v", v, i, a[i], b[i])
					}
				}
			}
		})
	}
}

func TestBuildParityApprox(t *testing.T) {
	g := adsketch.WithRandomWeights(adsketch.GNP(70, 0.07, false, 21), 1, 5, 22)
	legacy, err := core.BuildApproxSet(g, 4, 13, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	built, err := adsketch.Build(g, adsketch.WithK(4), adsketch.WithSeed(13),
		adsketch.WithApproxEps(0.25))
	if err != nil {
		t.Fatal(err)
	}
	as, ok := built.(*adsketch.ApproxSet)
	if !ok {
		t.Fatalf("Build returned %T, want *adsketch.ApproxSet", built)
	}
	if as.Epsilon() != legacy.Epsilon() || as.K() != legacy.K() {
		t.Fatal("accessors differ")
	}
	for v := int32(0); int(v) < g.NumNodes(); v++ {
		a, b := legacy.Sketch(v).Entries(), as.Sketch(v).Entries()
		if len(a) != len(b) {
			t.Fatalf("node %d: %d vs %d entries", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d entry %d: %+v vs %+v", v, i, a[i], b[i])
			}
		}
	}
}
