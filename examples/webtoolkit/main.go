// Webtoolkit: the cross-sketch toolkit on a directed web-style graph —
// everything that sketch coordination buys beyond per-node statistics:
//
//   - forward and backward sketches ("whom can I reach" / "who reaches me");
//   - persistence: build once, serialize, reload, query;
//   - neighborhood similarity between two pages;
//   - 2-hop-cover-style distance upper bounds from forward+backward sketches;
//   - greedy influence-seed selection.
package main

import (
	"bytes"
	"fmt"

	"adsketch"
	"adsketch/internal/graph"
)

func main() {
	// A directed "web": preferential attachment with every edge directed
	// both ways at random (keep it simple: use GNP directed).
	g := adsketch.GNP(4000, 0.0015, true, 21)
	fmt.Printf("web graph: %d pages, %d links\n\n", g.NumNodes(), g.NumEdges())

	// Forward and backward sketches share one option set; the same seed
	// keeps them coordinated.
	opts := []adsketch.Option{adsketch.WithK(16), adsketch.WithSeed(9)}
	fwdSet, err := adsketch.Build(g, opts...)
	if err != nil {
		panic(err)
	}
	bwdSet, err := adsketch.Build(g.Transpose(), opts...)
	if err != nil {
		panic(err)
	}
	// The coordinated cross-sketch toolkit (serialization, Jaccard,
	// distance bounds, influence) lives on the uniform-rank *Set.
	fwd, bwd := fwdSet.(*adsketch.Set), bwdSet.(*adsketch.Set)

	// Persistence round trip: serialize the forward set and reload it.
	// WriteTo/ReadSketchSet is the versioned format every set kind
	// shares — the same file cmd/adsserver loads for serving.
	var buf bytes.Buffer
	size, err := fwd.WriteTo(&buf)
	if err != nil {
		panic(err)
	}
	reloadedSet, err := adsketch.ReadSketchSet(&buf)
	if err != nil {
		panic(err)
	}
	reloaded := reloadedSet.(*adsketch.Set)
	fmt.Printf("persistence: %d sketches serialized to %d bytes (%.1f B/node, format v%d), reloaded OK\n\n",
		fwd.NumNodes(), size, float64(size)/float64(fwd.NumNodes()), adsketch.SketchFormatVersion)

	// Forward vs backward reach of a few pages.
	fmt.Println("reach (forward = can visit, backward = can be reached from):")
	cf := adsketch.NewCentrality(reloaded)
	cb := adsketch.NewCentrality(bwd)
	for _, v := range []int32{0, 100, 2000} {
		fmt.Printf("  page %-5d out-reach %7.0f   in-reach %7.0f\n",
			v, cf.NeighborhoodSize(v, 1e18), cb.NeighborhoodSize(v, 1e18))
	}

	// Distance upper bounds via shared beacons: forward sketch of u and
	// backward sketch of w bound d(u,w).
	fmt.Println("\ndistance upper bounds vs exact (forward ADS(u) x backward ADS(w)):")
	for _, pair := range [][2]int32{{0, 57}, {10, 2222}, {5, 3999}} {
		u, w := pair[0], pair[1]
		bound := adsketch.DistanceUpperBound(reloaded.BottomK(u), bwd.BottomK(w))
		exact := graph.Dijkstra(g, u)[w]
		fmt.Printf("  d(%d -> %d): bound %4.0f   exact %4.0f\n", u, w, bound, exact)
	}

	// Neighborhood similarity between two pages at radius 2.
	fmt.Println("\nout-neighborhood similarity (radius 2):")
	for _, pair := range [][2]int32{{0, 1}, {0, 3000}} {
		j := adsketch.NeighborhoodJaccard(reloaded.BottomK(pair[0]), 2, reloaded.BottomK(pair[1]), 2)
		fmt.Printf("  J(N_2(%d), N_2(%d)) = %.3f\n", pair[0], pair[1], j)
	}

	// Influence: pick 3 pages maximizing 2-step reach of the union.
	seeds, cov := adsketch.GreedyInfluenceSeeds(reloaded, nil, 3, 2)
	fmt.Printf("\ngreedy 3-seed set for 2-step influence: %v, estimated coverage %.0f pages\n",
		seeds, cov)
}
