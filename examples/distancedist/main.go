// Distancedist: the distance distribution of a whole graph — the original
// ANF/HyperANF application (paper Appendix B.1).  For each hop count t we
// estimate the number of ordered node pairs within distance t using the
// memory-limited register DP (k HyperLogLog registers per node) with both
// the classic (basic) readout and the HIP readout, and derive the
// effective diameter.  Exact values from full BFS are shown for reference.
package main

import (
	"fmt"

	"adsketch"
	"adsketch/internal/graph"
)

func main() {
	// A small-world graph: ring lattice with 5% rewiring.
	g := adsketch.WattsStrogatz(3000, 6, 0.05, 17)
	fmt.Printf("graph: %d nodes, %d edges\n\n", g.NumNodes(), g.NumEdges())

	exact := graph.NeighborhoodFunction(g)

	basic, err := adsketch.NeighborhoodFunction(g, adsketch.ANFOptions{
		K: 64, Seed: 4, Readout: adsketch.ANFBasic,
	})
	if err != nil {
		panic(err)
	}
	hip, err := adsketch.NeighborhoodFunction(g, adsketch.ANFOptions{
		K: 64, Seed: 4, Readout: adsketch.ANFHIP,
	})
	if err != nil {
		panic(err)
	}

	// The same distribution can also be read from per-node ADS sketches
	// (k entries of full state per node instead of k registers): build a
	// sketch set with the unified Build API and sum per-node HIP
	// neighborhood estimates.
	set, err := adsketch.Build(g, adsketch.WithK(64), adsketch.WithSeed(4))
	if err != nil {
		panic(err)
	}
	ds := make([]float64, len(exact))
	for t := range ds {
		ds[t] = float64(t)
	}
	adsNF := adsketch.NewCentrality(set).DistanceDistribution(ds)

	fmt.Printf("%6s %14s %14s %14s %14s %10s %10s %10s\n",
		"hops", "exact pairs", "basic est", "HIP est", "ADS est", "basic err", "HIP err", "ADS err")
	for t := 0; t < len(exact); t += 2 {
		e := float64(exact[t])
		b := at(basic.NF, t)
		h := at(hip.NF, t)
		a := at(adsNF, t)
		fmt.Printf("%6d %14.0f %14.0f %14.0f %14.0f %+9.2f%% %+9.2f%% %+9.2f%%\n",
			t, e, b, h, a, 100*(b-e)/e, 100*(h-e)/e, 100*(a-e)/e)
	}

	fmt.Printf("\neffective diameter (90%%):\n")
	fmt.Printf("  exact: %.2f\n", graph.EffectiveDiameter(exact, 0.9))
	fmt.Printf("  basic: %.2f\n", adsketch.EffectiveDiameter(basic.NF, 0.9))
	fmt.Printf("  HIP:   %.2f\n", adsketch.EffectiveDiameter(hip.NF, 0.9))
	fmt.Printf("\nDP rounds: %d (hop diameter of the graph)\n", hip.Rounds)
}

func at(nf []float64, t int) float64 {
	if t >= len(nf) {
		t = len(nf) - 1
	}
	return nf[t]
}
