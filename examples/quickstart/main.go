// Quickstart: build All-Distances Sketches for every node of a graph and
// answer neighborhood-cardinality and closeness-centrality queries from the
// sketches alone, comparing against exact traversal answers.
package main

import (
	"context"
	"fmt"

	"adsketch"
	"adsketch/internal/graph"
)

func main() {
	// A 10,000-node preferential-attachment graph (a synthetic stand-in
	// for the social graphs the paper targets).
	const n = 10000
	g := adsketch.PreferentialAttachment(n, 5, 1)
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// One near-linear pass builds coordinated bottom-k sketches for all
	// nodes (Algorithm 1, PrunedDijkstra — the defaults).
	set, err := adsketch.Build(g, adsketch.WithK(16), adsketch.WithSeed(42))
	if err != nil {
		panic(err)
	}
	fmt.Printf("sketches: k=%d, %d total entries (%.1f per node)\n\n",
		set.K(), set.TotalEntries(), float64(set.TotalEntries())/float64(n))

	// The Engine serves batch queries from cached per-node HIP indices.
	eng, err := adsketch.NewEngine(set)
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	nodes := []int32{0, 123, 4567}

	// Neighborhood cardinalities: HIP estimate vs exact BFS count, one
	// batch call per distance.
	fmt.Println("neighborhood sizes |N_d(v)| (HIP estimate vs exact):")
	for _, d := range []float64{1, 2, 3} {
		ests, err := eng.NeighborhoodSizes(ctx, d, nodes...)
		if err != nil {
			panic(err)
		}
		for i, v := range nodes {
			exact := graph.NeighborhoodSize(g, v, d)
			fmt.Printf("  v=%-5d d=%g:  %8.1f  vs %6d  (%+.1f%%)\n",
				v, d, ests[i], exact, 100*(ests[i]-float64(exact))/float64(exact))
		}
	}

	// Closeness centrality: 1/Σ d(v,j), one batch call for all nodes.
	fmt.Println("\ncloseness centrality (HIP estimate vs exact):")
	closeness, err := eng.Closeness(ctx, nodes...)
	if err != nil {
		panic(err)
	}
	for i, v := range nodes {
		exact := graph.Closeness(g, v)
		fmt.Printf("  v=%-5d:  %.3e  vs %.3e  (%+.1f%%)\n",
			v, closeness[i], exact, 100*(closeness[i]-exact)/exact)
	}

	// Harmonic centrality from the same cached indices — no rebuild.
	fmt.Println("\nharmonic centrality (HIP estimate vs exact):")
	harmonic, err := eng.Harmonic(ctx, nodes[:2]...)
	if err != nil {
		panic(err)
	}
	for i, v := range nodes[:2] {
		exact := graph.HarmonicCentrality(g, v)
		fmt.Printf("  v=%-5d:  %8.1f  vs %8.1f  (%+.1f%%)\n",
			v, harmonic[i], exact, 100*(harmonic[i]-exact)/exact)
	}

	// Top-10 nodes by estimated closeness, scored by the worker pool.
	fmt.Println("\ntop-10 nodes by estimated closeness:")
	top, err := eng.TopCloseness(ctx, 10)
	if err != nil {
		panic(err)
	}
	for i, r := range top {
		fmt.Printf("  %2d. node %-5d score %.3e\n", i+1, r.Node, r.Score)
	}
	fmt.Printf("\n%d per-node indices now cached for repeated queries\n", eng.CachedIndices())
}
