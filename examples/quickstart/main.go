// Quickstart: build All-Distances Sketches for every node of a graph and
// answer neighborhood-cardinality and closeness-centrality queries from the
// sketches alone, comparing against exact traversal answers.
package main

import (
	"fmt"

	"adsketch"
	"adsketch/internal/graph"
)

func main() {
	// A 10,000-node preferential-attachment graph (a synthetic stand-in
	// for the social graphs the paper targets).
	const n = 10000
	g := adsketch.PreferentialAttachment(n, 5, 1)
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// One near-linear pass builds coordinated bottom-k sketches for all
	// nodes (Algorithm 1, PrunedDijkstra).
	set, err := adsketch.Build(g, adsketch.Options{K: 16, Seed: 42}, adsketch.AlgoPrunedDijkstra)
	if err != nil {
		panic(err)
	}
	fmt.Printf("sketches: k=%d, %d total entries (%.1f per node)\n\n",
		set.Options().K, set.TotalEntries(), float64(set.TotalEntries())/float64(n))

	c := adsketch.NewCentrality(set)

	// Neighborhood cardinalities: HIP estimate vs exact BFS count.
	fmt.Println("neighborhood sizes |N_d(v)| (HIP estimate vs exact):")
	for _, v := range []int32{0, 123, 4567} {
		for _, d := range []float64{1, 2, 3} {
			est := c.NeighborhoodSize(v, d)
			exact := graph.NeighborhoodSize(g, v, d)
			fmt.Printf("  v=%-5d d=%g:  %8.1f  vs %6d  (%+.1f%%)\n",
				v, d, est, exact, 100*(est-float64(exact))/float64(exact))
		}
	}

	// Closeness centrality: 1/Σ d(v,j), estimated from the sketch.
	fmt.Println("\ncloseness centrality (HIP estimate vs exact):")
	for _, v := range []int32{0, 123, 4567} {
		est := c.Closeness(v)
		exact := graph.Closeness(g, v)
		fmt.Printf("  v=%-5d:  %.3e  vs %.3e  (%+.1f%%)\n",
			v, est, exact, 100*(est-exact)/exact)
	}

	// Harmonic centrality with a query-time kernel — no rebuild needed.
	fmt.Println("\nharmonic centrality (HIP estimate vs exact):")
	for _, v := range []int32{0, 123} {
		est := c.Harmonic(v)
		exact := graph.HarmonicCentrality(g, v)
		fmt.Printf("  v=%-5d:  %8.1f  vs %8.1f  (%+.1f%%)\n",
			v, est, exact, 100*(est-exact)/exact)
	}

	// Top-10 nodes by estimated closeness.
	fmt.Println("\ntop-10 nodes by estimated closeness:")
	for i, r := range c.TopCloseness(10) {
		fmt.Printf("  %2d. node %-5d score %.3e\n", i+1, r.Node, r.Score)
	}
}
