// Webdistinct: streaming distinct counting — the Section 6 application.
// A synthetic web-style event stream (page views with heavy repetition)
// is fed to three counters sharing the same memory budget:
//
//   - HyperLogLog (raw and bias-corrected readouts), the classic baseline;
//   - HIP on the very same k-register sketch (Algorithm 3).
//
// The exact distinct count is tracked for comparison; HIP's running
// estimate is consistently tighter, per the paper's Figure 3.
package main

import (
	"fmt"
	"math"

	"adsketch"
	"adsketch/internal/rank"
)

func main() {
	const k = 64 // registers (= HLL with m=64, 5-bit registers)
	hip := adsketch.NewHIPDistinct(k, 11)
	hllRaw := hip.Sketch() // HIP shares the sketch; HLL reads the registers

	rng := rank.NewRNG(3)
	exact := make(map[int64]struct{})

	fmt.Printf("%12s %12s %12s %12s %12s\n", "events", "distinct", "HLL", "HIP", "HIP err")
	var events int64
	next := int64(1000)
	for events < 5_000_000 {
		events++
		// Heavy-tailed page popularity: ~20% of views hit new pages.
		var page int64
		if rng.Float64() < 0.2 {
			page = rng.Int63() % 10_000_000
		} else {
			page = rng.Int63() % 1000 // hot set
		}
		exact[page] = struct{}{}
		hip.Add(page)

		if events == next {
			next *= 4
			d := float64(len(exact))
			fmt.Printf("%12d %12d %12.0f %12.0f %+11.2f%%\n",
				events, len(exact), hllRaw.Estimate(), hip.Estimate(),
				100*(hip.Estimate()-d)/d)
		}
	}

	d := float64(len(exact))
	fmt.Printf("\nfinal: %d distinct pages in %d events\n", len(exact), events)
	fmt.Printf("  HLL (corrected): %10.0f  (%+.2f%%)\n",
		hllRaw.Estimate(), 100*(hllRaw.Estimate()-d)/d)
	fmt.Printf("  HIP:             %10.0f  (%+.2f%%)\n",
		hip.Estimate(), 100*(hip.Estimate()-d)/d)
	fmt.Printf("\nreference NRMSE at k=%d: HLL ~%.3f, HIP ~%.3f (paper Section 6)\n",
		k, 1.08/math.Sqrt(k), math.Sqrt(3.0/(4*k)))

	// Mergeability: sketches of two sub-streams combine to the union.
	a := adsketch.NewHyperLogLog(k, 11)
	b := adsketch.NewHyperLogLog(k, 11)
	for id := int64(0); id < 60000; id++ {
		a.Add(id)
	}
	for id := int64(30000); id < 90000; id++ {
		b.Add(id)
	}
	a.Merge(b)
	fmt.Printf("\nmerge demo: |A|=60000, |B|=60000, |A∪B|=90000, merged estimate %.0f\n",
		a.Estimate())
}
