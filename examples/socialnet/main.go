// Socialnet: metadata-filtered centrality queries on a synthetic social
// network — the C_{α,β} queries of equation (2), where the node filter β
// (here: region and activity attributes) is chosen at query time, long
// after the sketches were built.  This query flexibility is what the HIP
// estimators add over earlier ADS estimators, which needed a separate
// β-specific sketch construction (paper Sections 1 and 9).
package main

import (
	"context"
	"fmt"

	"adsketch"
	"adsketch/internal/graph"
	"adsketch/internal/rank"
)

// member is synthetic per-user metadata.
type member struct {
	region string
	active bool
}

func main() {
	const n = 5000
	g := adsketch.PreferentialAttachment(n, 4, 7)

	// Assign metadata deterministically.
	regions := []string{"north", "south", "east", "west"}
	rng := rank.NewRNG(99)
	members := make([]member, n)
	for i := range members {
		members[i] = member{
			region: regions[rng.Intn(len(regions))],
			active: rng.Float64() < 0.3,
		}
	}

	set, err := adsketch.Build(g, adsketch.WithK(32), adsketch.WithSeed(5))
	if err != nil {
		panic(err)
	}
	c := adsketch.NewCentrality(set)

	// Query 1: how many *active northern* users are within 2 hops of a
	// given user?  β filters on metadata; α is a distance threshold.
	beta := func(v int32) float64 {
		if members[v].region == "north" && members[v].active {
			return 1
		}
		return 0
	}
	fmt.Println("active northern users within 2 hops (HIP vs exact):")
	for _, v := range []int32{10, 500, 2500} {
		est := c.Custom(v, adsketch.KernelThreshold(2), beta)
		exact := 0.0
		for _, nd := range graph.NearestOrder(g, v) {
			if nd.Dist <= 2 {
				exact += beta(nd.Node)
			}
		}
		fmt.Printf("  v=%-5d:  %7.1f  vs %6.0f\n", v, est, exact)
	}

	// Query 2: exponentially-attenuated influence over active users only
	// (α(x)=2^-x — Dangalchev's residual closeness, β = activity flag).
	// Served as one Engine batch: Q_g with g(j,d) = 2^-d · active(j).
	activeBeta := func(v int32) float64 {
		if members[v].active {
			return 1
		}
		return 0
	}
	eng, err := adsketch.NewEngine(set)
	if err != nil {
		panic(err)
	}
	users := []int32{10, 500, 2500}
	ests, err := eng.EstimateQBatch(context.Background(), func(node int32, dist float64) float64 {
		return kexp(dist) * activeBeta(node)
	}, users...)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nexponentially-attenuated influence over active users:")
	for i, v := range users {
		exact := 0.0
		for _, nd := range graph.NearestOrder(g, v) {
			exact += kexp(nd.Dist) * activeBeta(nd.Node)
		}
		fmt.Printf("  v=%-5d:  %7.1f  vs %7.1f  (%+.1f%%)\n",
			v, ests[i], exact, 100*(ests[i]-exact)/exact)
	}

	// Query 3: same sketches, different β — per-region reach of one user.
	fmt.Println("\nreach of user 10 within 3 hops, by region (one sketch, four queries):")
	for _, reg := range regions {
		reg := reg
		est := c.Custom(10, adsketch.KernelThreshold(3), func(v int32) float64 {
			if members[v].region == reg {
				return 1
			}
			return 0
		})
		fmt.Printf("  %-6s %8.1f\n", reg, est)
	}
}

func kexp(x float64) float64 { return adsketch.KernelExponential(x) }
