package adsketch_test

// Failure semantics of the scatter-gather coordinator: per-shard
// timeouts, bounded retries with backoff, replica failover, hedged
// requests, and the per-query partial-failure policy.  The structural
// invariant throughout: whenever no fault occurs, every policy and
// every option combination answers byte-identically to the plain
// coordinator (and therefore to the single engine).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"adsketch"
)

// faultShard wraps a shard backend with injectable faults: a number of
// leading failures, a permanent outage, or a response delay.
type faultShard struct {
	adsketch.ShardBackend

	mu            sync.Mutex
	failRemaining int           // fail this many calls, then recover
	dead          bool          // fail every call
	delay         time.Duration // sleep (context-aware) before answering
	calls         int
}

var errInjected = errors.New("injected shard fault")

// begin applies the fault gates shared by Do and DoBatch.
func (f *faultShard) begin(ctx context.Context) error {
	f.mu.Lock()
	f.calls++
	dead, delay := f.dead, f.delay
	failNow := false
	if f.failRemaining > 0 {
		f.failRemaining--
		failNow = true
	}
	f.mu.Unlock()
	if dead || failNow {
		return errInjected
	}
	if delay > 0 {
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	return nil
}

func (f *faultShard) Do(ctx context.Context, req adsketch.Request) (adsketch.Response, error) {
	if err := f.begin(ctx); err != nil {
		return adsketch.Response{}, err
	}
	return f.ShardBackend.Do(ctx, req)
}

func (f *faultShard) DoBatch(ctx context.Context, reqs []adsketch.Request) ([]adsketch.Response, error) {
	if err := f.begin(ctx); err != nil {
		return nil, err
	}
	return f.ShardBackend.DoBatch(ctx, reqs)
}

func (f *faultShard) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func (f *faultShard) kill() {
	f.mu.Lock()
	f.dead = true
	f.mu.Unlock()
}

// shardEngines splits the set and builds one shard engine per partition.
func shardEngines(t *testing.T, set adsketch.SketchSet, partitions int) []adsketch.ShardBackend {
	t.Helper()
	parts, err := adsketch.SplitSketchSet(set, partitions)
	if err != nil {
		t.Fatal(err)
	}
	backends := make([]adsketch.ShardBackend, len(parts))
	for i, p := range parts {
		eng, err := adsketch.NewShardEngine(p)
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = eng
	}
	return backends
}

// wrapFaulty wraps every backend in a faultShard and returns both views.
func wrapFaulty(backends []adsketch.ShardBackend) ([]adsketch.ShardBackend, []*faultShard) {
	wrapped := make([]adsketch.ShardBackend, len(backends))
	faults := make([]*faultShard, len(backends))
	for i, b := range backends {
		f := &faultShard{ShardBackend: b}
		wrapped[i] = f
		faults[i] = f
	}
	return wrapped, faults
}

func TestCoordinatorRetriesTransientFault(t *testing.T) {
	_, set, _ := buildEngine(t)
	wrapped, faults := wrapFaulty(shardEngines(t, set, 2))
	faults[0].failRemaining = 2
	coord, err := adsketch.NewCoordinator(wrapped,
		adsketch.WithShardRetries(2), adsketch.WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := coord.Do(context.Background(), adsketch.Request{
		Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0}},
	})
	if err != nil {
		t.Fatalf("query across a transient fault failed: %v", err)
	}
	if len(resp.Scores) != 1 {
		t.Fatalf("scores: %v", resp.Scores)
	}
	st := coord.Stats()
	if st.Shards[0].Retries < 2 || st.Shards[0].Errors < 2 {
		t.Errorf("shard 0 stats after 2 transient failures: %+v", st.Shards[0])
	}
	if st.Shards[0].Failures != 0 {
		t.Errorf("retried call counted as failure: %+v", st.Shards[0])
	}
}

func TestCoordinatorNoRetryOnBadRequest(t *testing.T) {
	_, set, _ := buildEngine(t)
	wrapped, faults := wrapFaulty(shardEngines(t, set, 2))
	coord, err := adsketch.NewCoordinator(wrapped,
		adsketch.WithShardRetries(5), adsketch.WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// An out-of-range node inside the shard's own validation would be
	// caught at the coordinator; an unowned-node ErrBadRequest from the
	// shard is deterministic and must not burn the retry budget.  Reach
	// it via a raw sketch query for a node the shard rejects: simplest
	// is a malformed policy, which fails before any shard call — so
	// instead count calls for a deterministic shard-side rejection on an
	// unsupported query against a weighted set is overkill; use the
	// coordinator-side validation guarantee: a bad request never calls a
	// shard at all.
	_, err = coord.Do(context.Background(), adsketch.Request{
		Closeness: &adsketch.ClosenessQuery{Nodes: []int32{int32(set.NumNodes())}},
	})
	if !errors.Is(err, adsketch.ErrBadRequest) {
		t.Fatalf("out-of-range node: %v", err)
	}
	for i, f := range faults {
		if f.callCount() != 0 {
			t.Errorf("shard %d called %d times for a bad request", i, f.callCount())
		}
	}
}

func TestCoordinatorShardTimeout(t *testing.T) {
	_, set, _ := buildEngine(t)
	wrapped, faults := wrapFaulty(shardEngines(t, set, 2))
	faults[1].delay = time.Minute
	coord, err := adsketch.NewCoordinator(wrapped, adsketch.WithShardTimeout(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	hi := int32(set.NumNodes() - 1) // owned by the slow shard
	start := time.Now()
	_, err = coord.Do(context.Background(), adsketch.Request{
		Closeness: &adsketch.ClosenessQuery{Nodes: []int32{hi}},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow shard error = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("per-shard timeout did not bound the call: took %v", elapsed)
	}
	st := coord.Stats()
	if st.Shards[1].Timeouts == 0 || st.Shards[1].Failures == 0 {
		t.Errorf("slow shard stats: %+v", st.Shards[1])
	}
}

func TestReplicaFailover(t *testing.T) {
	_, set, eng := buildEngine(t)
	primaries, pf := wrapFaulty(shardEngines(t, set, 2))
	replicas := shardEngines(t, set, 2)
	pf[0].kill()
	coord, err := adsketch.NewReplicatedCoordinator([][]adsketch.ShardBackend{
		{primaries[0], replicas[0]},
		{primaries[1], replicas[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0, int32(set.NumNodes() - 1)}}}
	got, err := coord.Do(ctx, req)
	if err != nil {
		t.Fatalf("query with dead primary and live replica failed: %v", err)
	}
	want, err := eng.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("failover answer differs:\n  got  %s\n  want %s", gotJSON, wantJSON)
	}
	st := coord.Stats()
	if st.Shards[0].Errors == 0 || st.Shards[0].Failures != 0 {
		t.Errorf("failover stats: %+v", st.Shards[0])
	}
}

func TestHedgedRequestWinsAgainstSlowPrimary(t *testing.T) {
	_, set, eng := buildEngine(t)
	primaries, pf := wrapFaulty(shardEngines(t, set, 2))
	replicas := shardEngines(t, set, 2)
	pf[0].delay = 30 * time.Second
	coord, err := adsketch.NewReplicatedCoordinator([][]adsketch.ShardBackend{
		{primaries[0], replicas[0]},
		{primaries[1], replicas[1]},
	}, adsketch.WithHedgeDelay(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0}}}
	start := time.Now()
	got, err := coord.Do(ctx, req)
	if err != nil {
		t.Fatalf("hedged query failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("hedge did not rescue the slow primary: took %v", elapsed)
	}
	want, err := eng.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("hedged answer differs:\n  got  %s\n  want %s", gotJSON, wantJSON)
	}
	st := coord.Stats()
	if st.Shards[0].Hedges == 0 || st.Shards[0].HedgeWins == 0 {
		t.Errorf("hedge stats: %+v", st.Shards[0])
	}
}

func TestPartialPolicyTopK(t *testing.T) {
	_, set, _ := buildEngine(t)
	wrapped, faults := wrapFaulty(shardEngines(t, set, 4))
	faults[2].kill()
	coord, err := adsketch.NewCoordinator(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	topk := &adsketch.TopKQuery{Metric: adsketch.MetricCloseness, K: 10}

	// fail policy (the default): a typed error naming the dead shard.
	_, err = coord.Do(ctx, adsketch.Request{TopK: topk})
	if err == nil || !strings.Contains(err.Error(), "shard 2") || !errors.Is(err, errInjected) {
		t.Fatalf("fail-policy topk error = %v, want one naming shard 2", err)
	}

	// partial policy: a degraded, flagged answer from the 3 survivors.
	resp, err := coord.Do(ctx, adsketch.Request{TopK: topk, Policy: adsketch.PolicyPartial, Explain: true})
	if err != nil {
		t.Fatalf("partial-policy topk failed: %v", err)
	}
	if !resp.Partial {
		t.Error("degraded topk response not flagged Partial")
	}
	if len(resp.Ranking) != 10 {
		t.Errorf("degraded ranking has %d members, want 10 (3 shards × 100 nodes remain)", len(resp.Ranking))
	}
	if resp.Merge == nil || len(resp.Merge.Failed) != 1 || resp.Merge.Failed[0] != 2 {
		t.Errorf("merge metadata: %+v, want Failed=[2]", resp.Merge)
	}
	if resp.Merge.Partials != 3 {
		t.Errorf("merged partials = %d, want 3", resp.Merge.Partials)
	}
	// No member of the ranking may be owned by the dead shard (nodes
	// [200, 300) of the 4-way split over 400 nodes).
	for _, r := range resp.Ranking {
		if r.Node >= 200 && r.Node < 300 {
			t.Errorf("degraded ranking contains node %d owned by the dead shard", r.Node)
		}
	}
}

func TestPartialPolicyScores(t *testing.T) {
	_, set, eng := buildEngine(t)
	wrapped, faults := wrapFaulty(shardEngines(t, set, 4))
	faults[1].kill()
	coord, err := adsketch.NewCoordinator(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	nodes := []int32{0, 150, 399, 101} // 150 and 101 are owned by dead shard 1 ([100, 200))
	resp, err := coord.Do(ctx, adsketch.Request{
		Closeness: &adsketch.ClosenessQuery{Nodes: nodes},
		Policy:    adsketch.PolicyPartial,
		Explain:   true,
	})
	if err != nil {
		t.Fatalf("partial-policy closeness failed: %v", err)
	}
	if !resp.Partial {
		t.Error("degraded scores response not flagged Partial")
	}
	if want := []int32{150, 101}; len(resp.Missing) != 2 || resp.Missing[0] != 150 || resp.Missing[1] != 101 {
		t.Errorf("Missing = %v, want %v (request order)", resp.Missing, want)
	}
	if resp.Scores[1] != 0 || resp.Scores[3] != 0 {
		t.Errorf("dead-shard positions not zero-filled: %v", resp.Scores)
	}
	want, err := eng.Do(ctx, adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0, 399}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Scores[0] != want.Scores[0] || resp.Scores[2] != want.Scores[1] {
		t.Errorf("surviving scores differ: got %v, want %v at positions 0 and 2", resp.Scores, want.Scores)
	}
	if resp.Merge == nil || len(resp.Merge.Failed) != 1 || resp.Merge.Failed[0] != 1 {
		t.Errorf("merge metadata: %+v, want Failed=[1]", resp.Merge)
	}

	// The same request under the fail policy is a typed error.
	_, err = coord.Do(ctx, adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: nodes}})
	if err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Errorf("fail-policy error = %v, want one naming shard 1", err)
	}
}

func TestPartialPolicyAllShardsDead(t *testing.T) {
	_, set, _ := buildEngine(t)
	wrapped, faults := wrapFaulty(shardEngines(t, set, 2))
	for _, f := range faults {
		f.kill()
	}
	coord, err := adsketch.NewCoordinator(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range []adsketch.Request{
		{TopK: &adsketch.TopKQuery{Metric: adsketch.MetricCloseness, K: 5}, Policy: adsketch.PolicyPartial},
		{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0, 399}}, Policy: adsketch.PolicyPartial},
	} {
		if _, err := coord.Do(context.Background(), req); !errors.Is(err, errInjected) {
			t.Errorf("all-shards-dead %T: err = %v, want the shard fault", req, err)
		}
	}
}

// The load-bearing invariant of the whole feature: on a healthy
// topology, the partial policy, retries, timeouts, replicas, and
// hedging all answer byte-identically to the plain coordinator.
func TestFailureOptionsByteIdenticalWithoutFaults(t *testing.T) {
	_, set, _ := buildEngine(t)
	plain, err := adsketch.NewCoordinator(shardEngines(t, set, 4))
	if err != nil {
		t.Fatal(err)
	}
	primaries := shardEngines(t, set, 4)
	replicas := shardEngines(t, set, 4)
	groups := make([][]adsketch.ShardBackend, len(primaries))
	for i := range primaries {
		groups[i] = []adsketch.ShardBackend{primaries[i], replicas[i]}
	}
	tuned, err := adsketch.NewReplicatedCoordinator(groups,
		adsketch.WithShardTimeout(5*time.Second),
		adsketch.WithShardRetries(2),
		adsketch.WithRetryBackoff(time.Millisecond),
		adsketch.WithHedgeDelay(4*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, base := range parityRequests() {
		for _, policy := range []string{"", adsketch.PolicyFail, adsketch.PolicyPartial} {
			req := base
			req.Policy = policy
			want, err := plain.Do(ctx, base)
			if err != nil {
				t.Fatalf("%s: plain coordinator: %v", base.ID, err)
			}
			got, err := tuned.Do(ctx, req)
			if err != nil {
				t.Fatalf("%s (policy %q): tuned coordinator: %v", base.ID, policy, err)
			}
			gotJSON, _ := json.Marshal(got)
			wantJSON, _ := json.Marshal(want)
			if string(gotJSON) != string(wantJSON) {
				t.Errorf("%s (policy %q): healthy-path answer differs\n  got  %s\n  want %s",
					base.ID, policy, gotJSON, wantJSON)
			}
		}
	}
}

func TestPolicyValidation(t *testing.T) {
	_, _, eng := buildEngine(t)
	_, coord := buildCluster(t)
	req := adsketch.Request{
		Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0}},
		Policy:    "best-effort",
	}
	if _, err := eng.Do(context.Background(), req); !errors.Is(err, adsketch.ErrBadRequest) {
		t.Errorf("engine: unknown policy error = %v, want ErrBadRequest", err)
	}
	if _, err := coord.Do(context.Background(), req); !errors.Is(err, adsketch.ErrBadRequest) {
		t.Errorf("coordinator: unknown policy error = %v, want ErrBadRequest", err)
	}
	// Engines accept but ignore the valid policies.
	for _, p := range []string{"", adsketch.PolicyFail, adsketch.PolicyPartial} {
		req.Policy = p
		if _, err := eng.Do(context.Background(), req); err != nil {
			t.Errorf("engine rejected policy %q: %v", p, err)
		}
	}
}

func TestReplicatedCoordinatorValidation(t *testing.T) {
	_, set, _ := buildEngine(t)
	backends := shardEngines(t, set, 2)
	// A replica serving a different shard than its primary is a
	// topology mistake.
	_, err := adsketch.NewReplicatedCoordinator([][]adsketch.ShardBackend{
		{backends[0], backends[1]},
		{backends[1]},
	})
	if !errors.Is(err, adsketch.ErrBadOption) {
		t.Errorf("mismatched replica: err = %v, want ErrBadOption", err)
	}
	if _, err := adsketch.NewReplicatedCoordinator([][]adsketch.ShardBackend{{}}); !errors.Is(err, adsketch.ErrBadOption) {
		t.Errorf("empty group: err = %v, want ErrBadOption", err)
	}
	for _, opt := range []adsketch.CoordinatorOption{
		adsketch.WithShardTimeout(-time.Second),
		adsketch.WithShardRetries(-1),
		adsketch.WithRetryBackoff(-time.Second),
		adsketch.WithHedgeDelay(-time.Second),
	} {
		if _, err := adsketch.NewCoordinator(backends, opt); !errors.Is(err, adsketch.ErrBadOption) {
			t.Errorf("negative option accepted: %v", err)
		}
	}
}

func TestPartialPolicyBatch(t *testing.T) {
	_, set, _ := buildEngine(t)
	wrapped, faults := wrapFaulty(shardEngines(t, set, 4))
	faults[3].kill()
	coord, err := adsketch.NewCoordinator(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []adsketch.Request{
		{ID: "a", TopK: &adsketch.TopKQuery{Metric: adsketch.MetricCloseness, K: 5}, Policy: adsketch.PolicyPartial},
		{ID: "b", Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0, 399}}, Policy: adsketch.PolicyPartial},
		{ID: "c", Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0}}},            // healthy shard, fail policy
		{ID: "d", TopK: &adsketch.TopKQuery{Metric: adsketch.MetricCloseness, K: 5}}, // fail policy hits dead shard
	}
	resps, err := coord.DoBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !resps[0].Partial || resps[0].Error != "" {
		t.Errorf("partial topk in batch: %+v", resps[0])
	}
	if !resps[1].Partial || len(resps[1].Missing) != 1 || resps[1].Missing[0] != 399 {
		t.Errorf("partial closeness of a dead-shard node: %+v", resps[1])
	}
	if resps[2].Error != "" || resps[2].Partial {
		t.Errorf("healthy fail-policy request degraded: %+v", resps[2])
	}
	if resps[3].Error == "" || !strings.Contains(resps[3].Error, "shard 3") {
		t.Errorf("fail-policy topk in batch: %+v", resps[3])
	}
}

func ExampleNewReplicatedCoordinator() {
	g := adsketch.PreferentialAttachment(200, 3, 7)
	set, _ := adsketch.Build(g, adsketch.WithK(8), adsketch.WithSeed(42))
	parts, _ := adsketch.SplitSketchSet(set, 2)
	group := func(i int) []adsketch.ShardBackend {
		primary, _ := adsketch.NewShardEngine(parts[i])
		replica, _ := adsketch.NewShardEngine(parts[i])
		return []adsketch.ShardBackend{primary, replica}
	}
	coord, _ := adsketch.NewReplicatedCoordinator(
		[][]adsketch.ShardBackend{group(0), group(1)},
		adsketch.WithShardTimeout(time.Second),
		adsketch.WithShardRetries(1),
		adsketch.WithHedgeDelay(100*time.Millisecond),
	)
	resp, _ := coord.Do(context.Background(), adsketch.Request{
		TopK:   &adsketch.TopKQuery{Metric: adsketch.MetricCloseness, K: 3},
		Policy: adsketch.PolicyPartial,
	})
	fmt.Println(len(resp.Ranking), resp.Partial)
	// Output: 3 false
}
