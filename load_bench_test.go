package adsketch_test

// Serving-startup and index-build benchmarks: how fast a prebuilt sketch
// set gets from bytes on disk to answering queries, and what the steady
// state costs.  `make bench` renders these into BENCH_engine.json next to
// the pinned pre-refactor baselines, so the load-path trajectory stays
// honest across PRs.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"adsketch"
)

// loadBenchSet builds the deterministic set every load benchmark reads:
// large enough that decode cost dominates setup noise, small enough for
// CI's one-iteration smoke.
func loadBenchSet(b *testing.B) adsketch.SketchSet {
	b.Helper()
	g := adsketch.PreferentialAttachment(5000, 5, 1)
	set, err := adsketch.Build(g, adsketch.WithK(16), adsketch.WithSeed(42))
	if err != nil {
		b.Fatal(err)
	}
	return set
}

// BenchmarkSketchSetLoad measures the three ways a serving process gets a
// sketch set into memory: the v2 per-entry decode (every node's sketch
// rebuilt and validated), the v3 columnar open (one read, O(1)
// allocations), and the v3 mmap open (no read at all until pages fault).
func BenchmarkSketchSetLoad(b *testing.B) {
	set := loadBenchSet(b)
	var v2 bytes.Buffer
	if _, err := set.WriteTo(&v2); err != nil {
		b.Fatal(err)
	}

	var v3 bytes.Buffer
	if _, err := adsketch.WriteSketchSetV3(&v3, set); err != nil {
		b.Fatal(err)
	}

	b.Run("v2-decode", func(b *testing.B) {
		b.SetBytes(int64(v2.Len()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := adsketch.ReadSketchSet(bytes.NewReader(v2.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})

	v3path := benchFilePath(b, "set.v3.ads", v3.Bytes())

	b.Run("v3-open", func(b *testing.B) {
		b.SetBytes(int64(v3.Len()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sf, err := adsketch.OpenSketchFile(v3path)
			if err != nil {
				b.Fatal(err)
			}
			if sf.Set().NumNodes() == 0 {
				b.Fatal("empty set")
			}
		}
	})

	b.Run("v3-mmap", func(b *testing.B) {
		b.SetBytes(int64(v3.Len()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sf, err := adsketch.MmapSketchFile(v3path)
			if err != nil {
				b.Fatal(err)
			}
			if sf.Set().NumNodes() == 0 {
				b.Fatal("empty set")
			}
			sf.Close()
		}
	})
}

// BenchmarkHIPIndexBuild measures building the HIP query index for every
// node of the set — the work a worker performs before serving.
// Allocations are reported because the pre-columnar implementation
// append-grew four slices per node (~19 allocs/node); the standalone
// builder now preallocates exactly, and the frame arena amortizes the
// whole set into a handful of slices.
func BenchmarkHIPIndexBuild(b *testing.B) {
	set := loadBenchSet(b)
	n := set.NumNodes()

	b.Run("standalone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for v := 0; v < n; v++ {
				_ = adsketch.NewHIPIndex(set.SketchOf(int32(v)))
			}
		}
	})

	// The serving path: one shared columnar arena per set, built on first
	// index access.  Each iteration reloads the set (cheap v3 open, timed
	// separately above) to get a cold arena.
	var v3 bytes.Buffer
	if _, err := adsketch.WriteSketchSetV3(&v3, set); err != nil {
		b.Fatal(err)
	}
	path := benchFilePath(b, "hip.v3.ads", v3.Bytes())
	b.Run("frame-arena", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sf, err := adsketch.OpenSketchFile(path)
			if err != nil {
				b.Fatal(err)
			}
			cold := sf.Set().(*adsketch.Set)
			for v := 0; v < n; v++ {
				_ = cold.Index(int32(v))
			}
		}
	})
}

// BenchmarkEngineDoAllocs measures steady-state per-request allocations
// of the protocol dispatch with a warm index cache — the serving tier's
// hot loop.
func BenchmarkEngineDoAllocs(b *testing.B) {
	set := loadBenchSet(b)
	eng, err := adsketch.NewEngine(set)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	req := adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{1, 2, 3, 4, 5, 6, 7, 8}}}
	if _, err := eng.Do(ctx, req); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Do(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFilePath writes data to a temp file and returns its path.
func benchFilePath(b *testing.B, name string, data []byte) string {
	b.Helper()
	path := filepath.Join(b.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
	return path
}
