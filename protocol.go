package adsketch

import (
	"context"
	"errors"
	"fmt"
	"math"

	"adsketch/internal/core"
	"adsketch/internal/query"
)

// The wire query protocol: every distance-based query the package
// answers, expressed as a typed request/response pair that survives JSON
// transport.  One sketch build serves the whole protocol — Engine.Do
// dispatches a Request to the matching estimator, and the Engine's
// convenience methods (Closeness, TopCloseness, ...) are thin wrappers
// over the same path, so a query answered over HTTP by cmd/adsserver is
// bit-for-bit identical to the direct method call on the same sketches.

// Typed sentinel errors of the protocol layer; match with errors.Is.
var (
	// ErrBadRequest reports a malformed Request: zero or multiple query
	// fields set, or a query whose parameters fail validation.  Servers
	// should map it to HTTP 400.
	ErrBadRequest = errors.New("adsketch: bad request")
	// ErrUnsupportedQuery reports a well-formed query that the engine's
	// sketch set cannot answer (e.g. a coordinated cross-sketch query
	// against a weighted or approximate set).  Servers should map it to
	// HTTP 422.
	ErrUnsupportedQuery = errors.New("adsketch: query unsupported by this sketch set")
)

// Query is one typed protocol query, dispatched by Engine.Do.  The
// implementations are the *Query types of this package; the interface is
// closed (its methods are unexported) so the wire protocol stays in sync
// with the server.
type Query interface {
	// kind is the stable wire name of the query type.
	kind() string
	// validate checks the query parameters (engine-independent).
	validate() error
	// evaluate answers the query on an engine.
	evaluate(ctx context.Context, e *Engine) (Response, error)
}

// Request is the transport envelope of one query: exactly one of the
// query fields must be set.  The zero value is invalid.
type Request struct {
	// ID is an opaque client tag echoed into the Response, for matching
	// requests to responses inside a batch.
	ID string `json:"id,omitempty"`

	Closeness        *ClosenessQuery        `json:"closeness,omitempty"`
	Harmonic         *HarmonicQuery         `json:"harmonic,omitempty"`
	Neighborhood     *NeighborhoodQuery     `json:"neighborhood,omitempty"`
	TopK             *TopKQuery             `json:"topk,omitempty"`
	CentralityKernel *CentralityKernelQuery `json:"centrality_kernel,omitempty"`
	Jaccard          *JaccardQuery          `json:"jaccard,omitempty"`
	Influence        *InfluenceQuery        `json:"influence,omitempty"`
	DistanceBound    *DistanceBoundQuery    `json:"distance_bound,omitempty"`
}

// Query returns the single query carried by the request, or an error
// matching ErrBadRequest when zero or more than one field is set.
func (r *Request) Query() (Query, error) {
	var q Query
	n := 0
	pick := func(c Query, set bool) {
		if set {
			q = c
			n++
		}
	}
	pick(r.Closeness, r.Closeness != nil)
	pick(r.Harmonic, r.Harmonic != nil)
	pick(r.Neighborhood, r.Neighborhood != nil)
	pick(r.TopK, r.TopK != nil)
	pick(r.CentralityKernel, r.CentralityKernel != nil)
	pick(r.Jaccard, r.Jaccard != nil)
	pick(r.Influence, r.Influence != nil)
	pick(r.DistanceBound, r.DistanceBound != nil)
	switch n {
	case 0:
		return nil, fmt.Errorf("%w: no query set", ErrBadRequest)
	case 1:
		return q, nil
	default:
		return nil, fmt.Errorf("%w: %d queries set, want exactly 1", ErrBadRequest, n)
	}
}

// Response is the transport result of one query.  Kind names the query
// that produced it; which payload fields are populated depends on the
// kind (Scores for per-node queries, Ranking for topk, Seeds/Value for
// influence, Value for jaccard and distance_bound).
type Response struct {
	// ID echoes the Request ID.
	ID string `json:"id,omitempty"`
	// Kind is the wire name of the answered query type.
	Kind string `json:"kind,omitempty"`
	// Error reports a per-request failure inside a DoBatch; empty on
	// success.
	Error string `json:"error,omitempty"`

	// Scores holds one estimate per queried node, in request order.
	Scores []float64 `json:"scores,omitempty"`
	// Ranking holds the top-k nodes, best first.
	Ranking []Ranked `json:"ranking,omitempty"`
	// Value holds a scalar result.  It is a pointer so that a genuine 0
	// survives the JSON round trip and an absent value stays absent.
	Value *float64 `json:"value,omitempty"`
	// Unreachable is set by distance_bound when the sketches share no
	// node (the bound is +Inf, which JSON cannot carry in Value).
	Unreachable bool `json:"unreachable,omitempty"`
	// Seeds holds the selected (or echoed) seed nodes of an influence
	// query.
	Seeds []int32 `json:"seeds,omitempty"`
}

func scalar(v float64) *float64 { return &v }

// ClosenessQuery asks for the HIP estimate of the classic closeness
// centrality 1/Σ_j d_vj of each node (0 for isolated nodes).
type ClosenessQuery struct {
	Nodes []int32 `json:"nodes"`
}

func (q *ClosenessQuery) kind() string { return "closeness" }

func (q *ClosenessQuery) validate() error { return nil }

func (q *ClosenessQuery) evaluate(ctx context.Context, e *Engine) (Response, error) {
	scores, err := e.batch(ctx, q.Nodes, (*core.HIPIndex).Closeness)
	if err != nil {
		return Response{}, err
	}
	return Response{Scores: scores}, nil
}

// HarmonicQuery asks for the HIP estimate of the harmonic centrality
// Σ_{j != v} 1/d_vj of each node.
type HarmonicQuery struct {
	Nodes []int32 `json:"nodes"`
}

func (q *HarmonicQuery) kind() string { return "harmonic" }

func (q *HarmonicQuery) validate() error { return nil }

func (q *HarmonicQuery) evaluate(ctx context.Context, e *Engine) (Response, error) {
	scores, err := e.batch(ctx, q.Nodes, (*core.HIPIndex).Harmonic)
	if err != nil {
		return Response{}, err
	}
	return Response{Scores: scores}, nil
}

// NeighborhoodQuery asks for the HIP estimate of n_d(v) = |N_d(v)| (the
// weighted cardinality on weighted sets) for each node.  Radius bounds
// the neighborhood; set Unbounded instead to count everything reachable
// (JSON cannot carry an infinite radius).
type NeighborhoodQuery struct {
	Radius    float64 `json:"radius,omitempty"`
	Unbounded bool    `json:"unbounded,omitempty"`
	Nodes     []int32 `json:"nodes"`
}

func (q *NeighborhoodQuery) kind() string { return "neighborhood" }

func (q *NeighborhoodQuery) validate() error {
	if !q.Unbounded && (math.IsNaN(q.Radius) || math.IsInf(q.Radius, 0) || q.Radius < 0) {
		return fmt.Errorf("%w: neighborhood: radius %g, want finite >= 0 (or unbounded)", ErrBadRequest, q.Radius)
	}
	return nil
}

func (q *NeighborhoodQuery) evaluate(ctx context.Context, e *Engine) (Response, error) {
	d := q.Radius
	if q.Unbounded {
		d = math.Inf(1)
	}
	scores, err := e.batch(ctx, q.Nodes, func(x *core.HIPIndex) float64 { return x.Neighborhood(d) })
	if err != nil {
		return Response{}, err
	}
	return Response{Scores: scores}, nil
}

// Metrics accepted by TopKQuery.
const (
	MetricCloseness = "closeness"
	MetricHarmonic  = "harmonic"
)

// TopKQuery asks for the estimated top-K nodes of the whole set by the
// named centrality metric, best first (ties broken by node ID).
type TopKQuery struct {
	Metric string `json:"metric"`
	K      int    `json:"k"`
}

func (q *TopKQuery) kind() string { return "topk" }

func (q *TopKQuery) validate() error {
	switch q.Metric {
	case MetricCloseness, MetricHarmonic:
	default:
		return fmt.Errorf("%w: topk: unknown metric %q", ErrBadRequest, q.Metric)
	}
	if q.K < 1 {
		return fmt.Errorf("%w: topk: k = %d, want >= 1", ErrBadRequest, q.K)
	}
	return nil
}

func (q *TopKQuery) evaluate(ctx context.Context, e *Engine) (Response, error) {
	score := (*core.HIPIndex).Closeness
	if q.Metric == MetricHarmonic {
		score = (*core.HIPIndex).Harmonic
	}
	ranking, err := e.topBy(ctx, q.K, score)
	if err != nil {
		return Response{}, err
	}
	return Response{Ranking: ranking}, nil
}

// Kernels accepted by CentralityKernelQuery, the query-time α of the
// centrality C_α(v) = Σ_j α(d_vj) (equation (3) with β ≡ 1).
const (
	KernelNameThreshold    = "threshold"    // α(x) = 1 for x <= radius (neighborhood cardinality)
	KernelNameReachability = "reachability" // α ≡ 1 (reachable count)
	KernelNameExponential  = "exponential"  // α(x) = 2^-x
	KernelNameHarmonic     = "harmonic"     // α(x) = 1/x
	KernelNameIdentity     = "identity"     // α(x) = x (sum of distances)
)

// CentralityKernelQuery asks for the HIP estimate of the distance-decay
// centrality Σ_j α(d_vj) for a named kernel α chosen at query time — the
// Section 5 "build sketches once, pick the statistic later" promise over
// the wire.  Radius parameterizes the threshold kernel and is ignored by
// the others.
type CentralityKernelQuery struct {
	Kernel string  `json:"kernel"`
	Radius float64 `json:"radius,omitempty"`
	Nodes  []int32 `json:"nodes"`
}

func (q *CentralityKernelQuery) kind() string { return "centrality_kernel" }

func (q *CentralityKernelQuery) validate() error {
	switch q.Kernel {
	case KernelNameThreshold:
		if math.IsNaN(q.Radius) || math.IsInf(q.Radius, 0) || q.Radius < 0 {
			return fmt.Errorf("%w: centrality_kernel: threshold radius %g, want finite >= 0", ErrBadRequest, q.Radius)
		}
	case KernelNameReachability, KernelNameExponential, KernelNameHarmonic, KernelNameIdentity:
	default:
		return fmt.Errorf("%w: centrality_kernel: unknown kernel %q", ErrBadRequest, q.Kernel)
	}
	return nil
}

// alpha resolves the kernel function; validate has vetted the name.
func (q *CentralityKernelQuery) alpha() func(float64) float64 {
	switch q.Kernel {
	case KernelNameThreshold:
		return core.KernelThreshold(q.Radius)
	case KernelNameReachability:
		return core.KernelReachability
	case KernelNameExponential:
		return core.KernelExponential
	case KernelNameHarmonic:
		return core.KernelHarmonic
	default:
		return core.KernelIdentity
	}
}

func (q *CentralityKernelQuery) evaluate(ctx context.Context, e *Engine) (Response, error) {
	alpha := q.alpha()
	scores, err := e.batch(ctx, q.Nodes, func(x *core.HIPIndex) float64 {
		return x.EstimateQ(func(_ int32, dist float64) float64 { return alpha(dist) })
	})
	if err != nil {
		return Response{}, err
	}
	return Response{Scores: scores}, nil
}

// JaccardQuery asks for the estimated Jaccard similarity of the
// neighborhoods N_{radius_a}(a) and N_{radius_b}(b), computable because
// coordinated sketches share one rank permutation.  It requires a
// uniform-rank bottom-k set.
type JaccardQuery struct {
	A       int32   `json:"a"`
	RadiusA float64 `json:"radius_a"`
	B       int32   `json:"b"`
	RadiusB float64 `json:"radius_b"`
}

func (q *JaccardQuery) kind() string { return "jaccard" }

func (q *JaccardQuery) validate() error {
	for _, r := range []float64{q.RadiusA, q.RadiusB} {
		// JSON cannot carry ±Inf, so the wire shape only admits finite
		// radii; any value at or beyond the graph diameter covers the
		// whole reachable set.
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			return fmt.Errorf("%w: jaccard: radius %g, want finite >= 0 (use any radius >= the diameter for full reach)", ErrBadRequest, r)
		}
	}
	return nil
}

func (q *JaccardQuery) evaluate(ctx context.Context, e *Engine) (Response, error) {
	a, err := e.bottomK(q.A)
	if err != nil {
		return Response{}, err
	}
	b, err := e.bottomK(q.B)
	if err != nil {
		return Response{}, err
	}
	return Response{Value: scalar(core.NeighborhoodJaccard(a, q.RadiusA, b, q.RadiusB))}, nil
}

// InfluenceQuery covers the timed-influence primitives on coordinated
// sketches.  With Seeds set, it estimates the union coverage
// |∪_s N_radius(s)| of exactly those seeds.  With NumSeeds set instead,
// it greedily selects that many seeds maximizing estimated coverage
// (from Candidates, or all nodes when empty).  It requires a
// uniform-rank bottom-k set.
type InfluenceQuery struct {
	Seeds      []int32 `json:"seeds,omitempty"`
	NumSeeds   int     `json:"num_seeds,omitempty"`
	Candidates []int32 `json:"candidates,omitempty"`
	Radius     float64 `json:"radius"`
}

func (q *InfluenceQuery) kind() string { return "influence" }

func (q *InfluenceQuery) validate() error {
	if math.IsNaN(q.Radius) || math.IsInf(q.Radius, 0) || q.Radius < 0 {
		return fmt.Errorf("%w: influence: radius %g, want finite >= 0 (use any radius >= the diameter for full reach)", ErrBadRequest, q.Radius)
	}
	if (len(q.Seeds) == 0) == (q.NumSeeds == 0) {
		return fmt.Errorf("%w: influence: set exactly one of seeds (coverage) or num_seeds (greedy selection)", ErrBadRequest)
	}
	if q.NumSeeds < 0 {
		return fmt.Errorf("%w: influence: num_seeds = %d, want >= 0", ErrBadRequest, q.NumSeeds)
	}
	if len(q.Candidates) > 0 && q.NumSeeds == 0 {
		return fmt.Errorf("%w: influence: candidates only apply to greedy selection (num_seeds)", ErrBadRequest)
	}
	return nil
}

func (q *InfluenceQuery) evaluate(ctx context.Context, e *Engine) (Response, error) {
	set, err := e.uniformSet()
	if err != nil {
		return Response{}, err
	}
	if len(q.Seeds) > 0 {
		if err := query.CheckNodes(e.set.NumNodes(), q.Seeds); err != nil {
			return Response{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		if _, err := e.bottomK(q.Seeds[0]); err != nil {
			return Response{}, err // flavor check; CheckNodes vetted the index
		}
		cov := core.UnionNeighborhoodEstimate(set, q.Seeds, q.Radius)
		return Response{Seeds: q.Seeds, Value: scalar(cov)}, nil
	}
	if err := query.CheckNodes(e.set.NumNodes(), q.Candidates); err != nil {
		return Response{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if e.set.NumNodes() > 0 {
		if _, err := e.bottomK(0); err != nil {
			return Response{}, err
		}
	}
	seeds, cov := core.GreedyInfluenceSeeds(set, q.Candidates, q.NumSeeds, q.Radius)
	return Response{Seeds: seeds, Value: scalar(cov)}, nil
}

// DistanceBoundQuery asks for the 2-hop-cover-style upper bound on
// d(a, b): the minimum of d(a,x) + d(x,b) over nodes x sampled in both
// sketches.  When the engine serves forward sketches, pair it with a
// second engine over backward sketches for directed bounds; on one
// engine both endpoints use forward sketches.  If the sketches share no
// node the response sets Unreachable instead of a value.  It requires a
// uniform-rank bottom-k set.
type DistanceBoundQuery struct {
	A int32 `json:"a"`
	B int32 `json:"b"`
}

func (q *DistanceBoundQuery) kind() string { return "distance_bound" }

func (q *DistanceBoundQuery) validate() error { return nil }

func (q *DistanceBoundQuery) evaluate(ctx context.Context, e *Engine) (Response, error) {
	a, err := e.bottomK(q.A)
	if err != nil {
		return Response{}, err
	}
	b, err := e.bottomK(q.B)
	if err != nil {
		return Response{}, err
	}
	bound := core.DistanceUpperBound(a, b)
	if math.IsInf(bound, 1) {
		return Response{Unreachable: true}, nil
	}
	return Response{Value: scalar(bound)}, nil
}

// uniformSet returns the engine's set as a uniform-rank *Set, or an
// error matching ErrUnsupportedQuery.
func (e *Engine) uniformSet() (*Set, error) {
	set, ok := e.set.(*Set)
	if !ok {
		return nil, fmt.Errorf("%w: requires uniform-rank coordinated sketches, engine holds %T", ErrUnsupportedQuery, e.set)
	}
	return set, nil
}

// bottomK returns node v's sketch as a bottom-k ADS from a uniform set,
// validating the node and flavor.
func (e *Engine) bottomK(v int32) (*core.ADS, error) {
	set, err := e.uniformSet()
	if err != nil {
		return nil, err
	}
	if err := query.CheckNodes(set.NumNodes(), []int32{v}); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	a, ok := set.Sketch(v).(*core.ADS)
	if !ok {
		return nil, fmt.Errorf("%w: requires bottom-k sketches, set holds %T", ErrUnsupportedQuery, set.Sketch(v))
	}
	return a, nil
}

// Do answers one protocol request.  The request must carry exactly one
// query; parameter problems return an error matching ErrBadRequest,
// queries the sketch set cannot answer one matching ErrUnsupportedQuery.
// Results are bit-for-bit identical to the corresponding direct Engine /
// package-level calls on the same sketches.
func (e *Engine) Do(ctx context.Context, req Request) (Response, error) {
	q, err := req.Query()
	if err != nil {
		return Response{}, err
	}
	if err := q.validate(); err != nil {
		return Response{}, err
	}
	resp, err := q.evaluate(ctx, e)
	if err != nil {
		return Response{}, err
	}
	resp.ID = req.ID
	resp.Kind = q.kind()
	return resp, nil
}

// DoBatch answers a batch of protocol requests.  Each request is
// evaluated independently (per-node fan-out inside a query already uses
// the engine's worker pool); a failing request records its error in the
// corresponding Response rather than aborting the batch.  DoBatch itself
// fails only when ctx is done.
func (e *Engine) DoBatch(ctx context.Context, reqs []Request) ([]Response, error) {
	out := make([]Response, len(reqs))
	for i := range reqs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := e.Do(ctx, reqs[i])
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			out[i] = Response{ID: reqs[i].ID, Error: err.Error()}
			continue
		}
		out[i] = resp
	}
	return out, nil
}
