package adsketch

import (
	"context"
	"errors"
	"fmt"
	"math"

	"adsketch/internal/core"
	"adsketch/internal/query"
)

// The wire query protocol: every distance-based query the package
// answers, expressed as a typed request/response pair that survives JSON
// transport.  One sketch build serves the whole protocol — Engine.Do
// dispatches a Request to the matching estimator, and the Engine's
// convenience methods (Closeness, TopCloseness, ...) are thin wrappers
// over the same path, so a query answered over HTTP by cmd/adsserver is
// bit-for-bit identical to the direct method call on the same sketches.

// Typed sentinel errors of the protocol layer; match with errors.Is.
var (
	// ErrBadRequest reports a malformed Request: zero or multiple query
	// fields set, or a query whose parameters fail validation.  Servers
	// should map it to HTTP 400.
	ErrBadRequest = errors.New("adsketch: bad request")
	// ErrUnsupportedQuery reports a well-formed query that the engine's
	// sketch set cannot answer (e.g. a coordinated cross-sketch query
	// against a weighted or approximate set).  Servers should map it to
	// HTTP 422.
	ErrUnsupportedQuery = errors.New("adsketch: query unsupported by this sketch set")
)

// Query is one typed protocol query, dispatched by Engine.Do (single
// set or shard) and Coordinator.Do (scatter-gather).  The
// implementations are the *Query types of this package; the interface is
// closed (its methods are unexported) so the wire protocol stays in sync
// with the server.
type Query interface {
	// kind is the stable wire name of the query type.
	kind() string
	// validate checks the query parameters (engine-independent).
	validate() error
	// evaluate answers the query on an engine.
	evaluate(ctx context.Context, e *Engine) (Response, error)
	// scatter answers the query on a coordinator by shard fan-out and
	// partial-response merge, bit-for-bit equal to evaluate on the
	// unpartitioned set.  partial selects the degraded-answer failure
	// policy (PolicyPartial) for the query kinds that support it.
	scatter(ctx context.Context, c *Coordinator, partial bool) (Response, error)
}

// scoreQuery is the per-node-scores family of the protocol (closeness,
// harmonic, neighborhood, centrality_kernel): queries a coordinator
// answers by routing node subsets to their owning shards and splicing
// the score columns back together.  Exposing the routed nodes and the
// per-shard sub-request lets scatterScores and the batched fan-out of
// Coordinator.DoBatch share one merge, so a batched query is
// byte-for-bit the unbatched one.
type scoreQuery interface {
	Query
	// scoreNodes is the queried node list, in request order.
	scoreNodes() []int32
	// subRequest builds the same query over one shard's node subset.
	subRequest(sub []int32) Request
}

// Per-query partial-failure policies (Request.Policy) of a partitioned
// serving tier.  They only matter when a shard fails mid-query: with no
// fault, both policies produce byte-identical responses.
const (
	// PolicyFail (the default, also selected by an empty Policy) fails
	// the whole query when any consulted shard fails, with a typed error
	// naming the shard.
	PolicyFail = "fail"
	// PolicyPartial degrades instead: per-node and topk queries answer
	// from the shards that responded, flag the Response as Partial, zero
	// the scores of the unreachable nodes (listing them in Missing), and
	// name the failed partitions in the Explain merge metadata.  The
	// pairwise coordinated queries (jaccard, influence, distance_bound,
	// sketch) need every consulted sketch and keep fail semantics.
	PolicyPartial = "partial"
)

// Request is the transport envelope of one query: exactly one of the
// query fields must be set.  The zero value is invalid.
type Request struct {
	// ID is an opaque client tag echoed into the Response, for matching
	// requests to responses inside a batch.
	ID string `json:"id,omitempty"`
	// Dataset names the catalog dataset the query targets; a Catalog
	// routes by it and dispatches the request with the field cleared.
	// Empty routes to the default dataset and — because single-set
	// engines ignore the field and omitempty keeps it off the wire — is
	// bit-for-bit the pre-catalog wire format.
	Dataset string `json:"dataset,omitempty"`
	// Explain asks a partitioned serving tier (Coordinator) to attach
	// the merge metadata — which shards were consulted — to the
	// Response.  Single engines ignore it, and without it a coordinator
	// response is byte-identical to the single-set one.
	Explain bool `json:"explain,omitempty"`
	// Policy is the partial-failure policy of a partitioned serving
	// tier: PolicyFail (the default; an empty value means the same) or
	// PolicyPartial.  Single engines validate and otherwise ignore it;
	// with no shard fault the policies answer byte-identically.
	Policy string `json:"policy,omitempty"`

	Closeness        *ClosenessQuery        `json:"closeness,omitempty"`
	Harmonic         *HarmonicQuery         `json:"harmonic,omitempty"`
	Neighborhood     *NeighborhoodQuery     `json:"neighborhood,omitempty"`
	TopK             *TopKQuery             `json:"topk,omitempty"`
	CentralityKernel *CentralityKernelQuery `json:"centrality_kernel,omitempty"`
	Jaccard          *JaccardQuery          `json:"jaccard,omitempty"`
	Influence        *InfluenceQuery        `json:"influence,omitempty"`
	DistanceBound    *DistanceBoundQuery    `json:"distance_bound,omitempty"`
	Sketch           *SketchQuery           `json:"sketch,omitempty"`
}

// Query returns the single query carried by the request, or an error
// matching ErrBadRequest when zero or more than one field is set.
func (r *Request) Query() (Query, error) {
	var q Query
	n := 0
	pick := func(c Query, set bool) {
		if set {
			q = c
			n++
		}
	}
	pick(r.Closeness, r.Closeness != nil)
	pick(r.Harmonic, r.Harmonic != nil)
	pick(r.Neighborhood, r.Neighborhood != nil)
	pick(r.TopK, r.TopK != nil)
	pick(r.CentralityKernel, r.CentralityKernel != nil)
	pick(r.Jaccard, r.Jaccard != nil)
	pick(r.Influence, r.Influence != nil)
	pick(r.DistanceBound, r.DistanceBound != nil)
	pick(r.Sketch, r.Sketch != nil)
	switch n {
	case 0:
		return nil, fmt.Errorf("%w: no query set", ErrBadRequest)
	case 1:
		return q, nil
	default:
		return nil, fmt.Errorf("%w: %d queries set, want exactly 1", ErrBadRequest, n)
	}
}

// Response is the transport result of one query.  Kind names the query
// that produced it; which payload fields are populated depends on the
// kind (Scores for per-node queries, Ranking for topk, Seeds/Value for
// influence, Value for jaccard and distance_bound).
type Response struct {
	// ID echoes the Request ID.
	ID string `json:"id,omitempty"`
	// Kind is the wire name of the answered query type.
	Kind string `json:"kind,omitempty"`
	// Error reports a per-request failure inside a DoBatch; empty on
	// success.
	Error string `json:"error,omitempty"`
	// Partial marks a degraded answer: the query ran under PolicyPartial
	// and at least one consulted shard failed, so the payload covers
	// only the shards that responded.  Never set on a fault-free query.
	Partial bool `json:"partial,omitempty"`
	// Missing lists the queried nodes whose owning shard failed under
	// PolicyPartial; their positions in Scores are zero-filled.
	Missing []int32 `json:"missing,omitempty"`

	// Scores holds one estimate per queried node, in request order.
	Scores []float64 `json:"scores,omitempty"`
	// Ranking holds the top-k nodes, best first.
	Ranking []Ranked `json:"ranking,omitempty"`
	// Value holds a scalar result.  It is a pointer so that a genuine 0
	// survives the JSON round trip and an absent value stays absent.
	Value *float64 `json:"value,omitempty"`
	// Unreachable is set by distance_bound when the sketches share no
	// node (the bound is +Inf, which JSON cannot carry in Value).
	Unreachable bool `json:"unreachable,omitempty"`
	// Seeds holds the selected (or echoed) seed nodes of an influence
	// query.
	Seeds []int32 `json:"seeds,omitempty"`
	// Entries holds the transported sketch entries of a sketch query —
	// the pairwise-scatter payload a coordinator fetches from the shard
	// owning a node.
	Entries []SketchEntry `json:"entries,omitempty"`
	// Merge describes how a partitioned serving tier assembled this
	// response; attached only when the Request set Explain.
	Merge *MergeMeta `json:"merge,omitempty"`
}

// MergeMeta is the merge metadata of a scattered query (Request.Explain).
type MergeMeta struct {
	// Shards lists the partition indexes consulted, in routing order.
	Shards []int `json:"shards"`
	// Partials is the number of partial responses merged.
	Partials int `json:"partials"`
	// Failed lists the partition indexes that were consulted but did
	// not answer, ascending; only a PolicyPartial query that degraded
	// sets it (a PolicyFail query fails instead of recording).
	Failed []int `json:"failed,omitempty"`
}

// partialPolicy resolves Request.Policy, rejecting unknown values with
// an error matching ErrBadRequest.
func (r *Request) partialPolicy() (bool, error) {
	switch r.Policy {
	case "", PolicyFail:
		return false, nil
	case PolicyPartial:
		return true, nil
	default:
		return false, fmt.Errorf("%w: unknown policy %q, want %q or %q", ErrBadRequest, r.Policy, PolicyFail, PolicyPartial)
	}
}

// SketchEntry is one transported ADS entry: a sampled node, its distance
// from the sketch owner, and its rank.  encoding/json writes float64s in
// the shortest form that round trips, so transported sketches are
// bit-for-bit the stored ones.
type SketchEntry struct {
	Node int32   `json:"node"`
	Dist float64 `json:"dist"`
	Rank float64 `json:"rank"`
}

func scalar(v float64) *float64 { return &v }

// ClosenessQuery asks for the HIP estimate of the classic closeness
// centrality 1/Σ_j d_vj of each node (0 for isolated nodes).
type ClosenessQuery struct {
	Nodes []int32 `json:"nodes"`
}

func (q *ClosenessQuery) kind() string { return "closeness" }

func (q *ClosenessQuery) validate() error { return nil }

func (q *ClosenessQuery) evaluate(ctx context.Context, e *Engine) (Response, error) {
	scores, err := e.batch(ctx, q.Nodes, (*core.HIPIndex).Closeness)
	if err != nil {
		return Response{}, err
	}
	return Response{Scores: scores}, nil
}

func (q *ClosenessQuery) scoreNodes() []int32 { return q.Nodes }

func (q *ClosenessQuery) subRequest(sub []int32) Request {
	return Request{Closeness: &ClosenessQuery{Nodes: sub}}
}

func (q *ClosenessQuery) scatter(ctx context.Context, c *Coordinator, partial bool) (Response, error) {
	return c.scatterScores(ctx, q, partial)
}

// HarmonicQuery asks for the HIP estimate of the harmonic centrality
// Σ_{j != v} 1/d_vj of each node.
type HarmonicQuery struct {
	Nodes []int32 `json:"nodes"`
}

func (q *HarmonicQuery) kind() string { return "harmonic" }

func (q *HarmonicQuery) validate() error { return nil }

func (q *HarmonicQuery) evaluate(ctx context.Context, e *Engine) (Response, error) {
	scores, err := e.batch(ctx, q.Nodes, (*core.HIPIndex).Harmonic)
	if err != nil {
		return Response{}, err
	}
	return Response{Scores: scores}, nil
}

func (q *HarmonicQuery) scoreNodes() []int32 { return q.Nodes }

func (q *HarmonicQuery) subRequest(sub []int32) Request {
	return Request{Harmonic: &HarmonicQuery{Nodes: sub}}
}

func (q *HarmonicQuery) scatter(ctx context.Context, c *Coordinator, partial bool) (Response, error) {
	return c.scatterScores(ctx, q, partial)
}

// NeighborhoodQuery asks for the HIP estimate of n_d(v) = |N_d(v)| (the
// weighted cardinality on weighted sets) for each node.  Radius bounds
// the neighborhood; set Unbounded instead to count everything reachable
// (JSON cannot carry an infinite radius).
type NeighborhoodQuery struct {
	Radius    float64 `json:"radius,omitempty"`
	Unbounded bool    `json:"unbounded,omitempty"`
	Nodes     []int32 `json:"nodes"`
}

func (q *NeighborhoodQuery) kind() string { return "neighborhood" }

func (q *NeighborhoodQuery) validate() error {
	if !q.Unbounded && (math.IsNaN(q.Radius) || math.IsInf(q.Radius, 0) || q.Radius < 0) {
		return fmt.Errorf("%w: neighborhood: radius %g, want finite >= 0 (or unbounded)", ErrBadRequest, q.Radius)
	}
	return nil
}

func (q *NeighborhoodQuery) evaluate(ctx context.Context, e *Engine) (Response, error) {
	d := q.Radius
	if q.Unbounded {
		d = math.Inf(1)
	}
	scores, err := e.batch(ctx, q.Nodes, func(x *core.HIPIndex) float64 { return x.Neighborhood(d) })
	if err != nil {
		return Response{}, err
	}
	return Response{Scores: scores}, nil
}

func (q *NeighborhoodQuery) scoreNodes() []int32 { return q.Nodes }

func (q *NeighborhoodQuery) subRequest(sub []int32) Request {
	return Request{Neighborhood: &NeighborhoodQuery{Radius: q.Radius, Unbounded: q.Unbounded, Nodes: sub}}
}

func (q *NeighborhoodQuery) scatter(ctx context.Context, c *Coordinator, partial bool) (Response, error) {
	return c.scatterScores(ctx, q, partial)
}

// Metrics accepted by TopKQuery.
const (
	MetricCloseness = "closeness"
	MetricHarmonic  = "harmonic"
)

// TopKQuery asks for the estimated top-K nodes of the whole set by the
// named centrality metric, best first (ties broken by node ID).
type TopKQuery struct {
	Metric string `json:"metric"`
	K      int    `json:"k"`
}

func (q *TopKQuery) kind() string { return "topk" }

func (q *TopKQuery) validate() error {
	switch q.Metric {
	case MetricCloseness, MetricHarmonic:
	default:
		return fmt.Errorf("%w: topk: unknown metric %q", ErrBadRequest, q.Metric)
	}
	if q.K < 1 {
		return fmt.Errorf("%w: topk: k = %d, want >= 1", ErrBadRequest, q.K)
	}
	return nil
}

func (q *TopKQuery) evaluate(ctx context.Context, e *Engine) (Response, error) {
	score := (*core.HIPIndex).Closeness
	if q.Metric == MetricHarmonic {
		score = (*core.HIPIndex).Harmonic
	}
	ranking, err := e.topBy(ctx, q.K, score)
	if err != nil {
		return Response{}, err
	}
	return Response{Ranking: ranking}, nil
}

func (q *TopKQuery) scatter(ctx context.Context, c *Coordinator, partial bool) (Response, error) {
	// Every shard returns its own top-min(K, owned); the union contains
	// every global top-K member, so the bounded merge is exhaustive.
	return c.scatterTopK(ctx, q, partial)
}

// Kernels accepted by CentralityKernelQuery, the query-time α of the
// centrality C_α(v) = Σ_j α(d_vj) (equation (3) with β ≡ 1).
const (
	KernelNameThreshold    = "threshold"    // α(x) = 1 for x <= radius (neighborhood cardinality)
	KernelNameReachability = "reachability" // α ≡ 1 (reachable count)
	KernelNameExponential  = "exponential"  // α(x) = 2^-x
	KernelNameHarmonic     = "harmonic"     // α(x) = 1/x
	KernelNameIdentity     = "identity"     // α(x) = x (sum of distances)
)

// CentralityKernelQuery asks for the HIP estimate of the distance-decay
// centrality Σ_j α(d_vj) for a named kernel α chosen at query time — the
// Section 5 "build sketches once, pick the statistic later" promise over
// the wire.  Radius parameterizes the threshold kernel and is ignored by
// the others.
type CentralityKernelQuery struct {
	Kernel string  `json:"kernel"`
	Radius float64 `json:"radius,omitempty"`
	Nodes  []int32 `json:"nodes"`
}

func (q *CentralityKernelQuery) kind() string { return "centrality_kernel" }

func (q *CentralityKernelQuery) validate() error {
	switch q.Kernel {
	case KernelNameThreshold:
		if math.IsNaN(q.Radius) || math.IsInf(q.Radius, 0) || q.Radius < 0 {
			return fmt.Errorf("%w: centrality_kernel: threshold radius %g, want finite >= 0", ErrBadRequest, q.Radius)
		}
	case KernelNameReachability, KernelNameExponential, KernelNameHarmonic, KernelNameIdentity:
	default:
		return fmt.Errorf("%w: centrality_kernel: unknown kernel %q", ErrBadRequest, q.Kernel)
	}
	return nil
}

// alpha resolves the kernel function; validate has vetted the name.
func (q *CentralityKernelQuery) alpha() func(float64) float64 {
	switch q.Kernel {
	case KernelNameThreshold:
		return core.KernelThreshold(q.Radius)
	case KernelNameReachability:
		return core.KernelReachability
	case KernelNameExponential:
		return core.KernelExponential
	case KernelNameHarmonic:
		return core.KernelHarmonic
	default:
		return core.KernelIdentity
	}
}

func (q *CentralityKernelQuery) evaluate(ctx context.Context, e *Engine) (Response, error) {
	alpha := q.alpha()
	scores, err := e.batch(ctx, q.Nodes, func(x *core.HIPIndex) float64 {
		return x.EstimateQ(func(_ int32, dist float64) float64 { return alpha(dist) })
	})
	if err != nil {
		return Response{}, err
	}
	return Response{Scores: scores}, nil
}

func (q *CentralityKernelQuery) scoreNodes() []int32 { return q.Nodes }

func (q *CentralityKernelQuery) subRequest(sub []int32) Request {
	return Request{CentralityKernel: &CentralityKernelQuery{Kernel: q.Kernel, Radius: q.Radius, Nodes: sub}}
}

func (q *CentralityKernelQuery) scatter(ctx context.Context, c *Coordinator, partial bool) (Response, error) {
	return c.scatterScores(ctx, q, partial)
}

// JaccardQuery asks for the estimated Jaccard similarity of the
// neighborhoods N_{radius_a}(a) and N_{radius_b}(b), computable because
// coordinated sketches share one rank permutation.  It requires a
// uniform-rank bottom-k set.
type JaccardQuery struct {
	A       int32   `json:"a"`
	RadiusA float64 `json:"radius_a"`
	B       int32   `json:"b"`
	RadiusB float64 `json:"radius_b"`
}

func (q *JaccardQuery) kind() string { return "jaccard" }

func (q *JaccardQuery) validate() error {
	for _, r := range []float64{q.RadiusA, q.RadiusB} {
		// JSON cannot carry ±Inf, so the wire shape only admits finite
		// radii; any value at or beyond the graph diameter covers the
		// whole reachable set.
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			return fmt.Errorf("%w: jaccard: radius %g, want finite >= 0 (use any radius >= the diameter for full reach)", ErrBadRequest, r)
		}
	}
	return nil
}

func (q *JaccardQuery) evaluate(ctx context.Context, e *Engine) (Response, error) {
	a, err := e.bottomK(q.A)
	if err != nil {
		return Response{}, err
	}
	b, err := e.bottomK(q.B)
	if err != nil {
		return Response{}, err
	}
	return Response{Value: scalar(core.NeighborhoodJaccard(a, q.RadiusA, b, q.RadiusB))}, nil
}

func (q *JaccardQuery) scatter(ctx context.Context, c *Coordinator, partial bool) (Response, error) {
	// Pairwise scatter: the endpoints may live on different shards, so
	// fetch both sketches (concurrently, per owning shard) and evaluate
	// at the coordinator.  Both endpoints are required, so the partial
	// policy cannot apply: a missing sketch fails the query.
	byNode, err := c.fetchSketches(ctx, []int32{q.A, q.B})
	if err != nil {
		return Response{}, err
	}
	meta, err := c.fetchMeta([]int32{q.A, q.B})
	if err != nil {
		return Response{}, err
	}
	value := core.NeighborhoodJaccard(byNode[q.A], q.RadiusA, byNode[q.B], q.RadiusB)
	return Response{Value: scalar(value), Merge: meta}, nil
}

// InfluenceQuery covers the timed-influence primitives on coordinated
// sketches.  With Seeds set, it estimates the union coverage
// |∪_s N_radius(s)| of exactly those seeds.  With NumSeeds set instead,
// it greedily selects that many seeds maximizing estimated coverage
// (from Candidates, or all nodes when empty).  It requires a
// uniform-rank bottom-k set.
type InfluenceQuery struct {
	Seeds      []int32 `json:"seeds,omitempty"`
	NumSeeds   int     `json:"num_seeds,omitempty"`
	Candidates []int32 `json:"candidates,omitempty"`
	Radius     float64 `json:"radius"`
}

func (q *InfluenceQuery) kind() string { return "influence" }

func (q *InfluenceQuery) validate() error {
	if math.IsNaN(q.Radius) || math.IsInf(q.Radius, 0) || q.Radius < 0 {
		return fmt.Errorf("%w: influence: radius %g, want finite >= 0 (use any radius >= the diameter for full reach)", ErrBadRequest, q.Radius)
	}
	if (len(q.Seeds) == 0) == (q.NumSeeds == 0) {
		return fmt.Errorf("%w: influence: set exactly one of seeds (coverage) or num_seeds (greedy selection)", ErrBadRequest)
	}
	if q.NumSeeds < 0 {
		return fmt.Errorf("%w: influence: num_seeds = %d, want >= 0", ErrBadRequest, q.NumSeeds)
	}
	if len(q.Candidates) > 0 && q.NumSeeds == 0 {
		return fmt.Errorf("%w: influence: candidates only apply to greedy selection (num_seeds)", ErrBadRequest)
	}
	return nil
}

func (q *InfluenceQuery) evaluate(ctx context.Context, e *Engine) (Response, error) {
	if _, err := e.uniformSet(); err != nil {
		return Response{}, err
	}
	if len(q.Seeds) > 0 {
		sketches := make([]*core.ADS, len(q.Seeds))
		for i, s := range q.Seeds {
			a, err := e.bottomK(s)
			if err != nil {
				return Response{}, err
			}
			sketches[i] = a
		}
		cov := core.UnionNeighborhoodSketches(e.set.K(), sketches, q.Radius)
		return Response{Seeds: q.Seeds, Value: scalar(cov)}, nil
	}
	// Greedy selection.  An absent candidate list means every node the
	// engine serves: the whole graph for a whole-set engine, the owned
	// node range for a shard engine (shard-local influence; the
	// Coordinator evaluates global greedy selection itself).
	candidates := q.Candidates
	if candidates == nil {
		candidates = make([]int32, e.set.NumNodes())
		for i := range candidates {
			candidates[i] = e.lo + int32(i)
		}
	}
	byNode := make(map[int32]*core.ADS, len(candidates))
	for _, v := range candidates {
		a, err := e.bottomK(v)
		if err != nil {
			return Response{}, err
		}
		byNode[v] = a
	}
	seeds, cov := core.GreedyInfluenceSketches(e.set.K(), func(v int32) *core.ADS { return byNode[v] },
		candidates, q.NumSeeds, q.Radius)
	return Response{Seeds: seeds, Value: scalar(cov)}, nil
}

func (q *InfluenceQuery) scatter(ctx context.Context, c *Coordinator, partial bool) (Response, error) {
	if err := c.requireCoordinated(); err != nil {
		return Response{}, err
	}
	if len(q.Seeds) > 0 {
		byNode, err := c.fetchSketches(ctx, q.Seeds)
		if err != nil {
			return Response{}, err
		}
		meta, err := c.fetchMeta(q.Seeds)
		if err != nil {
			return Response{}, err
		}
		sketches := make([]*core.ADS, len(q.Seeds))
		for i, s := range q.Seeds {
			sketches[i] = byNode[s]
		}
		cov := core.UnionNeighborhoodSketches(c.k, sketches, q.Radius)
		return Response{Seeds: q.Seeds, Value: scalar(cov), Merge: meta}, nil
	}
	// Global greedy selection: fetch every candidate's sketch (the whole
	// node space when no candidate list is given — an O(n)-sketch
	// scatter, intended for explicit candidate pools on large splits)
	// and run the single-set greedy algorithm at the coordinator.
	candidates := q.Candidates
	if candidates == nil {
		candidates = make([]int32, c.total)
		for i := range candidates {
			candidates[i] = int32(i)
		}
	}
	byNode, err := c.fetchSketches(ctx, candidates)
	if err != nil {
		return Response{}, err
	}
	meta, err := c.fetchMeta(candidates)
	if err != nil {
		return Response{}, err
	}
	seeds, cov := core.GreedyInfluenceSketches(c.k, func(v int32) *core.ADS { return byNode[v] },
		candidates, q.NumSeeds, q.Radius)
	return Response{Seeds: seeds, Value: scalar(cov), Merge: meta}, nil
}

// DistanceBoundQuery asks for the 2-hop-cover-style upper bound on
// d(a, b): the minimum of d(a,x) + d(x,b) over nodes x sampled in both
// sketches.  When the engine serves forward sketches, pair it with a
// second engine over backward sketches for directed bounds; on one
// engine both endpoints use forward sketches.  If the sketches share no
// node the response sets Unreachable instead of a value.  It requires a
// uniform-rank bottom-k set.
type DistanceBoundQuery struct {
	A int32 `json:"a"`
	B int32 `json:"b"`
}

func (q *DistanceBoundQuery) kind() string { return "distance_bound" }

func (q *DistanceBoundQuery) validate() error { return nil }

func (q *DistanceBoundQuery) evaluate(ctx context.Context, e *Engine) (Response, error) {
	a, err := e.bottomK(q.A)
	if err != nil {
		return Response{}, err
	}
	b, err := e.bottomK(q.B)
	if err != nil {
		return Response{}, err
	}
	bound := core.DistanceUpperBound(a, b)
	if math.IsInf(bound, 1) {
		return Response{Unreachable: true}, nil
	}
	return Response{Value: scalar(bound)}, nil
}

func (q *DistanceBoundQuery) scatter(ctx context.Context, c *Coordinator, partial bool) (Response, error) {
	byNode, err := c.fetchSketches(ctx, []int32{q.A, q.B})
	if err != nil {
		return Response{}, err
	}
	meta, err := c.fetchMeta([]int32{q.A, q.B})
	if err != nil {
		return Response{}, err
	}
	bound := core.DistanceUpperBound(byNode[q.A], byNode[q.B])
	resp := Response{Merge: meta}
	if math.IsInf(bound, 1) {
		resp.Unreachable = true
		return resp, nil
	}
	resp.Value = scalar(bound)
	return resp, nil
}

// SketchQuery asks for the raw bottom-k sketch entries of one node —
// the pairwise-scatter primitive a Coordinator uses to evaluate
// cross-shard jaccard / influence / distance_bound queries, and a
// debugging window into what a serving process holds.  It requires a
// uniform-rank bottom-k set.
type SketchQuery struct {
	Node int32 `json:"node"`
}

func (q *SketchQuery) kind() string { return "sketch" }

func (q *SketchQuery) validate() error { return nil }

func (q *SketchQuery) evaluate(ctx context.Context, e *Engine) (Response, error) {
	a, err := e.bottomK(q.Node)
	if err != nil {
		return Response{}, err
	}
	raw := a.Entries()
	entries := make([]SketchEntry, len(raw))
	for i, en := range raw {
		entries[i] = SketchEntry{Node: en.Node, Dist: en.Dist, Rank: en.Rank}
	}
	return Response{Entries: entries}, nil
}

func (q *SketchQuery) scatter(ctx context.Context, c *Coordinator, partial bool) (Response, error) {
	if err := c.requireCoordinated(); err != nil {
		return Response{}, err
	}
	if err := query.CheckNodes(c.total, []int32{q.Node}); err != nil {
		return Response{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	shard, err := c.router.Owner(q.Node)
	if err != nil {
		return Response{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	resp, err := c.doShard(ctx, shard, Request{Sketch: q})
	if err != nil {
		return Response{}, c.shardErr(shard, err)
	}
	meta, err := c.fetchMeta([]int32{q.Node})
	if err != nil {
		return Response{}, err
	}
	return Response{Entries: resp.Entries, Merge: meta}, nil
}

// uniformSet returns the engine's set as a uniform-rank *Set, or an
// error matching ErrUnsupportedQuery.
func (e *Engine) uniformSet() (*Set, error) {
	set, ok := e.set.(*Set)
	if !ok {
		return nil, fmt.Errorf("%w: requires uniform-rank coordinated sketches, engine holds %T", ErrUnsupportedQuery, e.set)
	}
	return set, nil
}

// bottomK returns (global) node v's sketch as a bottom-k ADS from a
// uniform set, validating the node and flavor.
func (e *Engine) bottomK(v int32) (*core.ADS, error) {
	set, err := e.uniformSet()
	if err != nil {
		return nil, err
	}
	if err := e.checkNodes([]int32{v}); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	a, ok := set.Sketch(v - e.lo).(*core.ADS)
	if !ok {
		return nil, fmt.Errorf("%w: requires bottom-k sketches, set holds %T", ErrUnsupportedQuery, set.Sketch(v-e.lo))
	}
	return a, nil
}

// Do answers one protocol request.  The request must carry exactly one
// query; parameter problems return an error matching ErrBadRequest,
// queries the sketch set cannot answer one matching ErrUnsupportedQuery.
// Results are bit-for-bit identical to the corresponding direct Engine /
// package-level calls on the same sketches.
func (e *Engine) Do(ctx context.Context, req Request) (Response, error) {
	q, err := req.Query()
	if err != nil {
		return Response{}, err
	}
	if err := q.validate(); err != nil {
		return Response{}, err
	}
	// A single engine has no shards to lose, so the policy cannot change
	// its answers — but an unknown value is still a malformed request.
	if _, err := req.partialPolicy(); err != nil {
		return Response{}, err
	}
	resp, err := q.evaluate(ctx, e)
	if err != nil {
		return Response{}, err
	}
	resp.ID = req.ID
	resp.Kind = q.kind()
	return resp, nil
}

// DoBatch answers a batch of protocol requests.  Each request is
// evaluated independently (per-node fan-out inside a query already uses
// the engine's worker pool); a failing request records its error in the
// corresponding Response rather than aborting the batch.  DoBatch itself
// fails only when ctx is done.
func (e *Engine) DoBatch(ctx context.Context, reqs []Request) ([]Response, error) {
	return doBatch(ctx, reqs, e.Do)
}

// doBatch is the shared batch loop of Engine.DoBatch and
// Coordinator.DoBatch: per-request failures are reported inline, and
// only context cancellation fails the batch.
func doBatch(ctx context.Context, reqs []Request, do func(context.Context, Request) (Response, error)) ([]Response, error) {
	out := make([]Response, len(reqs))
	for i := range reqs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := do(ctx, reqs[i])
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			out[i] = Response{ID: reqs[i].ID, Error: err.Error()}
			continue
		}
		out[i] = resp
	}
	return out, nil
}
