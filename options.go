package adsketch

import (
	"errors"
	"fmt"
	"io"
	"math"

	"adsketch/internal/core"
)

// Typed sentinel errors returned by Build and NewEngine.  Wrapped errors
// carry the offending value; match with errors.Is.
var (
	// ErrBadOption reports a single option whose value is out of range
	// (e.g. WithK(0), WithBaseB(1), a non-positive node weight).
	ErrBadOption = errors.New("adsketch: bad option value")
	// ErrIncompatibleOptions reports a combination of individually valid
	// options that no sketch construction supports (e.g. node weights with
	// base-b ranks).
	ErrIncompatibleOptions = errors.New("adsketch: incompatible options")
)

// DefaultK is the sketch parameter used when WithK is not given.
const DefaultK = 16

// SketchSet is the unified result of Build: a per-node collection of
// All-Distances Sketches queryable through the shared NodeSketch
// interface, whatever the construction (uniform, weighted, approximate).
// The dynamic type exposes construction-specific extras: *Set (uniform
// ranks; serialization, coordinated cross-sketch operations),
// *WeightedSet (Section 9 weighted ranks), *ApproxSet ((1+ε)-approximate
// sketches, Section 3).
type SketchSet interface {
	// NumNodes returns the number of sketches (one per graph node).
	NumNodes() int
	// K returns the sketch parameter.
	K() int
	// SketchOf returns node v's sketch.
	SketchOf(v int32) NodeSketch
	// TotalEntries returns the summed entry count over all sketches.
	TotalEntries() int
	// WriteTo serializes the set in the versioned binary sketch format
	// (SketchFormatVersion); ReadSketchSet restores it, whatever the
	// kind.  It implements io.WriterTo.
	WriteTo(w io.Writer) (int64, error)
}

var (
	_ SketchSet = (*Set)(nil)
	_ SketchSet = (*WeightedSet)(nil)
	_ SketchSet = (*ApproxSet)(nil)
)

// buildConfig is the resolved option state of one Build call.
type buildConfig struct {
	k           int
	seed        uint64
	flavor      Flavor
	baseB       float64
	algo        Algorithm
	algoSet     bool
	weights     []float64
	priority    bool
	approx      bool
	eps         float64
	parallelism int
}

// Option configures a Build call.  Options are applied in order; each
// validates its own value, and Build validates the combination.
type Option func(*buildConfig) error

// WithK sets the sketch parameter k (>= 1), which trades space for
// accuracy: HIP estimates have CV <= 1/sqrt(2(k-1)).  Default DefaultK.
func WithK(k int) Option {
	return func(c *buildConfig) error {
		if k < 1 {
			return fmt.Errorf("%w: WithK(%d), k must be >= 1", ErrBadOption, k)
		}
		c.k = k
		return nil
	}
}

// WithSeed sets the seed of the shared random permutation(s).  Sketch
// sets built with the same seed are coordinated (Section 2), enabling
// cross-sketch operations such as Jaccard similarity and union
// cardinalities.  Default 0.
func WithSeed(seed uint64) Option {
	return func(c *buildConfig) error {
		c.seed = seed
		return nil
	}
}

// WithFlavor selects the MinHash sampling scheme: BottomK (default),
// KMins, or KPartition (Section 2).
func WithFlavor(f Flavor) Option {
	return func(c *buildConfig) error {
		switch f {
		case BottomK, KMins, KPartition:
			c.flavor = f
			return nil
		}
		return fmt.Errorf("%w: WithFlavor(%v), unknown flavor", ErrBadOption, f)
	}
}

// WithAlgorithm selects the construction algorithm (Section 3).  Default
// AlgoPrunedDijkstra.  Only AlgoLocalUpdates is compatible with
// WithApproxEps, and only AlgoPrunedDijkstra with WithNodeWeights.
func WithAlgorithm(a Algorithm) Option {
	return func(c *buildConfig) error {
		switch a {
		case AlgoPrunedDijkstra, AlgoDP, AlgoLocalUpdates, AlgoBruteForce, AlgoPrunedDijkstraParallel:
			c.algo = a
			c.algoSet = true
			return nil
		}
		return fmt.Errorf("%w: WithAlgorithm(%v), unknown algorithm", ErrBadOption, a)
	}
}

// WithBaseB rounds ranks down to powers b^-h (Sections 2 and 5.6),
// trading estimator variance (factor (1+b)/2) for compact rank
// representation; b must be > 1.  Default: full-precision ranks.
func WithBaseB(b float64) Option {
	return func(c *buildConfig) error {
		if !(b > 1) || math.IsInf(b, 1) {
			return fmt.Errorf("%w: WithBaseB(%g), base must be a finite value > 1", ErrBadOption, b)
		}
		c.baseB = b
		return nil
	}
}

// WithNodeWeights builds the Section 9 weighted sketches: ranks are
// biased by the positive per-node weights beta (len(beta) must equal the
// graph's node count), and estimates become weighted cardinalities
// Σ_{j: d_vj <= d} β(j).  Uses exponential ranks unless WithPriorityRanks
// is also given.  Incompatible with WithFlavor (other than BottomK),
// WithBaseB, WithApproxEps, and any WithAlgorithm other than
// AlgoPrunedDijkstra.
func WithNodeWeights(beta []float64) Option {
	return func(c *buildConfig) error {
		if len(beta) == 0 {
			return fmt.Errorf("%w: WithNodeWeights with no weights", ErrBadOption)
		}
		c.weights = beta
		return nil
	}
}

// WithPriorityRanks switches weighted sketches from exponential ranks to
// Sequential Poisson (priority) ranks r(i) = r'(i)/β(i), the Section 9
// alternative weighted-sampling scheme.  Requires WithNodeWeights.
func WithPriorityRanks() Option {
	return func(c *buildConfig) error {
		c.priority = true
		return nil
	}
}

// WithApproxEps builds (1+ε)-approximate bottom-k sketches (Section 3)
// with the LocalUpdates scheme, bounding the updates per entry by
// log_{1+ε}(n·w_max/w_min); eps must be >= 0 (0 recovers exact
// LocalUpdates semantics).  Incompatible with WithFlavor (other than
// BottomK), WithBaseB, WithNodeWeights, and any WithAlgorithm other than
// AlgoLocalUpdates.
func WithApproxEps(eps float64) Option {
	return func(c *buildConfig) error {
		if eps < 0 || math.IsNaN(eps) || math.IsInf(eps, 1) {
			return fmt.Errorf("%w: WithApproxEps(%g), eps must be a finite value >= 0", ErrBadOption, eps)
		}
		c.approx = true
		c.eps = eps
		return nil
	}
}

// WithParallelism bounds the number of worker goroutines used by the
// parallel parts of the construction: the per-permutation and per-bucket
// runs of k-mins / k-partition, and AlgoPrunedDijkstraParallel batches.
// With workers > 1 and no explicit WithAlgorithm, a bottom-k build
// selects AlgoPrunedDijkstraParallel (whose output is identical to the
// sequential algorithm's).  0 (the default) means GOMAXPROCS; the built
// sketches are identical for every parallelism level.  Asking for
// workers > 1 where the construction has no parallel dimension — a
// weighted or approximate build, or bottom-k with an explicitly
// sequential algorithm — is rejected with ErrIncompatibleOptions rather
// than silently running serially.
func WithParallelism(workers int) Option {
	return func(c *buildConfig) error {
		if workers < 0 {
			return fmt.Errorf("%w: WithParallelism(%d), workers must be >= 0 (0 = GOMAXPROCS)", ErrBadOption, workers)
		}
		c.parallelism = workers
		return nil
	}
}

// check validates the option combination against the target graph.
func (c *buildConfig) check(g *Graph) error {
	if c.approx {
		if c.weights != nil {
			return fmt.Errorf("%w: WithApproxEps and WithNodeWeights: approximate construction supports uniform node weights only", ErrIncompatibleOptions)
		}
		if c.flavor != BottomK {
			return fmt.Errorf("%w: WithApproxEps requires the BottomK flavor, got %v", ErrIncompatibleOptions, flavorName(c.flavor))
		}
		if c.baseB != 0 {
			return fmt.Errorf("%w: WithApproxEps and WithBaseB: approximate construction uses full-precision ranks", ErrIncompatibleOptions)
		}
		if c.algoSet && c.algo != AlgoLocalUpdates {
			return fmt.Errorf("%w: WithApproxEps requires AlgoLocalUpdates, got %v", ErrIncompatibleOptions, c.algo)
		}
	}
	if c.weights != nil {
		if c.flavor != BottomK {
			return fmt.Errorf("%w: WithNodeWeights requires the BottomK flavor, got %v", ErrIncompatibleOptions, flavorName(c.flavor))
		}
		if c.baseB != 0 {
			return fmt.Errorf("%w: WithNodeWeights and WithBaseB: weighted ranks cannot be base-b rounded", ErrIncompatibleOptions)
		}
		if c.algoSet && c.algo != AlgoPrunedDijkstra {
			return fmt.Errorf("%w: WithNodeWeights requires AlgoPrunedDijkstra, got %v", ErrIncompatibleOptions, c.algo)
		}
		if len(c.weights) != g.NumNodes() {
			return fmt.Errorf("%w: WithNodeWeights has %d weights for %d nodes", ErrBadOption, len(c.weights), g.NumNodes())
		}
		for v, b := range c.weights {
			if !(b > 0) || math.IsInf(b, 1) {
				return fmt.Errorf("%w: WithNodeWeights: beta[%d] = %g, weights must be finite and positive", ErrBadOption, v, b)
			}
		}
	}
	if c.priority && c.weights == nil {
		return fmt.Errorf("%w: WithPriorityRanks requires WithNodeWeights", ErrIncompatibleOptions)
	}
	if c.parallelism > 1 {
		switch {
		case c.approx:
			return fmt.Errorf("%w: WithParallelism: the approximate construction is sequential", ErrIncompatibleOptions)
		case c.weights != nil:
			return fmt.Errorf("%w: WithParallelism: the weighted construction is sequential", ErrIncompatibleOptions)
		case c.flavor == BottomK && c.algoSet && c.algo != AlgoPrunedDijkstraParallel:
			return fmt.Errorf("%w: WithParallelism: a bottom-k build with %v is sequential; use AlgoPrunedDijkstraParallel or drop the option", ErrIncompatibleOptions, c.algo)
		}
	}
	return nil
}

func flavorName(f Flavor) string {
	switch f {
	case BottomK:
		return "BottomK"
	case KMins:
		return "KMins"
	case KPartition:
		return "KPartition"
	}
	return fmt.Sprintf("Flavor(%d)", int(f))
}

// Build computes the (forward) All-Distances Sketch of every node of g.
// It is the single entry point over the paper's design space: flavor,
// construction algorithm, base-b ranks, Section 9 node weights, and
// (1+ε)-approximate construction all compose as options:
//
//	set, err := adsketch.Build(g)                                // bottom-k, k=16, PrunedDijkstra
//	set, err := adsketch.Build(g, adsketch.WithK(64), adsketch.WithSeed(42))
//	set, err := adsketch.Build(g, adsketch.WithFlavor(adsketch.KMins), adsketch.WithBaseB(2))
//	set, err := adsketch.Build(g, adsketch.WithNodeWeights(beta)) // weighted cardinalities
//	set, err := adsketch.Build(g, adsketch.WithApproxEps(0.25))   // (1+ε)-approximate
//
// For backward sketches on directed graphs, pass g.Transpose().  Invalid
// option values return an error matching ErrBadOption; unsupported
// combinations return one matching ErrIncompatibleOptions.  All
// randomness is deterministic in the seed, and the result is bit-for-bit
// identical to the corresponding legacy constructor under equal options.
func Build(g *Graph, opts ...Option) (SketchSet, error) {
	cfg := buildConfig{k: DefaultK, flavor: BottomK, algo: AlgoPrunedDijkstra}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("%w: nil Option", ErrBadOption)
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if err := cfg.check(g); err != nil {
		return nil, err
	}
	switch {
	case cfg.approx:
		set, err := core.BuildApproxSet(g, cfg.k, cfg.seed, cfg.eps)
		if err != nil {
			return nil, err
		}
		return set, nil
	case cfg.weights != nil:
		build := core.BuildWeightedSet
		if cfg.priority {
			build = core.BuildPriorityWeightedSet
		}
		set, err := build(g, cfg.k, cfg.seed, cfg.weights)
		if err != nil {
			return nil, err
		}
		return set, nil
	default:
		if cfg.parallelism > 1 && !cfg.algoSet && cfg.flavor == BottomK {
			// Honor the requested parallelism: the batch-parallel variant
			// produces output identical to the sequential default.
			cfg.algo = AlgoPrunedDijkstraParallel
		}
		o := core.Options{K: cfg.k, Flavor: cfg.flavor, Seed: cfg.seed, BaseB: cfg.baseB}
		set, err := core.BuildSetParallel(g, o, cfg.algo, cfg.parallelism)
		if err != nil {
			return nil, err
		}
		return set, nil
	}
}
