package adsketch

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"adsketch/internal/core"
	"adsketch/internal/graph"
	"adsketch/internal/ingest"
	"adsketch/internal/stream"
)

// The streaming-ingest tier.  An Ingestor consumes edge insertions —
// singly (Insert), batched (InsertBatch), or replayed from an EdgeSource —
// and maintains every node's sketch incrementally via the monotone
// candidate propagation of package ingest: insertions only shrink
// distances, so each edge's effect is a bounded frontier of (node, dist,
// rank) candidates pruned by the bottom-k win rules, and the maintained
// state is at all times exactly what a full Build of the current graph
// would produce.  Periodically — every N edges (WithFreezeEvery), on a
// wall-clock budget (WithFreezeInterval), or on demand (Freeze) — the
// base frame and pending deltas freeze into a new columnar frame and,
// when publishing is configured, land in a Catalog via Swap: queries
// always see the last published version, never partial deltas, and
// in-flight queries drain on the version they started on.

// Edge is one edge-insertion event; W <= 0 means unit length.
type Edge = stream.Edge

// EdgeSource yields the edges of a stream in order.
type EdgeSource = stream.EdgeSource

// NewEdgeSliceSource returns an EdgeSource over a fixed slice.
func NewEdgeSliceSource(edges []Edge) EdgeSource { return stream.NewSliceSource(edges) }

// NewRandomEdgeSource returns a deterministic random edge stream over node
// IDs [0, nodes) — the same arguments always yield the same edges.
func NewRandomEdgeSource(nodes, count int, weighted bool, seed uint64) (EdgeSource, error) {
	return stream.NewRandomSource(nodes, count, weighted, seed)
}

// Ingestor maintains a sketch set incrementally over an edge stream and
// optionally publishes frozen versions through a Catalog.  All methods are
// safe for concurrent use; queries served from the catalog never touch
// unfrozen state.
type Ingestor struct {
	mu sync.Mutex
	m  *ingest.Maintainer // guarded by mu; the maintainer itself is not concurrency-safe

	freezeEvery    int
	freezeInterval time.Duration

	cat     *Catalog
	dataset string
	dir     string
	mmapPub bool

	pending    int64     // guarded by mu
	freezes    int64     // guarded by mu
	seq        int64     // guarded by mu
	version    int       // guarded by mu
	path       string    // guarded by mu
	published  time.Time // guarded by mu
	lastFreeze time.Time // guarded by mu
}

// ingestorConfig collects the options before the maintainer exists.
type ingestorConfig struct {
	freezeEvery    int
	freezeInterval time.Duration
	counterBase    float64
	cat            *Catalog
	dataset        string
	dir            string
	mmap           bool
}

// IngestorOption configures NewIngestor.
type IngestorOption func(*ingestorConfig) error

// WithFreezeEvery freezes (and publishes, when configured) automatically
// after every n ingested edges.  0 (the default) disables edge-count
// freezing; Freeze can always be called explicitly.
func WithFreezeEvery(n int) IngestorOption {
	return func(c *ingestorConfig) error {
		if n < 0 {
			return fmt.Errorf("%w: WithFreezeEvery(%d), n must be >= 0 (0 = disabled)", ErrBadOption, n)
		}
		c.freezeEvery = n
		return nil
	}
}

// WithFreezeInterval freezes automatically when an insert arrives more
// than d after the last freeze — a wall-clock staleness budget.  The check
// piggybacks on insertions (no background goroutine), so a fully idle
// stream publishes nothing new, which is also when nothing is stale.
func WithFreezeInterval(d time.Duration) IngestorOption {
	return func(c *ingestorConfig) error {
		if d < 0 {
			return fmt.Errorf("%w: WithFreezeInterval(%v), interval must be >= 0 (0 = disabled)", ErrBadOption, d)
		}
		c.freezeInterval = d
		return nil
	}
}

// WithPublish routes every freeze into cat under the given dataset name
// via Catalog.Swap — the zero-downtime publish path.  By default versions
// are published as in-memory sets; combine with WithPublishDir to persist
// each frozen version as a v3 file and serve from it.
func WithPublish(cat *Catalog, dataset string) IngestorOption {
	return func(c *ingestorConfig) error {
		if cat == nil {
			return fmt.Errorf("%w: WithPublish(nil catalog)", ErrBadOption)
		}
		if err := checkDatasetName(dataset); err != nil {
			return err
		}
		c.cat, c.dataset = cat, dataset
		return nil
	}
}

// WithPublishDir writes each frozen version as a columnar v3 file under
// dir (created if missing) and publishes it as a file-backed dataset.
func WithPublishDir(dir string) IngestorOption {
	return func(c *ingestorConfig) error {
		if dir == "" {
			return fmt.Errorf("%w: WithPublishDir(\"\")", ErrBadOption)
		}
		c.dir = dir
		return nil
	}
}

// WithPublishMmap publishes the v3 files of WithPublishDir via mmap —
// near-zero swap latency and resident cost.
func WithPublishMmap() IngestorOption {
	return func(c *ingestorConfig) error {
		c.mmap = true
		return nil
	}
}

// WithIngestCounters enables per-node Morris update counters (base b > 1)
// in the maintainer — approximate per-node ingest statistics at
// O(log log n) bits per touched node.
func WithIngestCounters(b float64) IngestorOption {
	return func(c *ingestorConfig) error {
		if !(b > 1) {
			return fmt.Errorf("%w: WithIngestCounters(%g), base must be > 1", ErrBadOption, b)
		}
		c.counterBase = b
		return nil
	}
}

// NewIngestor returns an ingestor maintaining the given built set as its
// graph g evolves.  The set must be a uniform bottom-k set with
// full-precision ranks built from g; g and set are not mutated.
func NewIngestor(g *Graph, set SketchSet, opts ...IngestorOption) (*Ingestor, error) {
	cs, ok := set.(*Set)
	if !ok {
		return nil, fmt.Errorf("%w: streaming ingest supports uniform bottom-k sets, got %T", ErrIncompatibleOptions, set)
	}
	var c ingestorConfig
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("%w: nil IngestorOption", ErrBadOption)
		}
		if err := opt(&c); err != nil {
			return nil, err
		}
	}
	if (c.dir != "" || c.mmap) && c.cat == nil {
		return nil, fmt.Errorf("%w: WithPublishDir/WithPublishMmap require WithPublish", ErrIncompatibleOptions)
	}
	if c.mmap && c.dir == "" {
		return nil, fmt.Errorf("%w: WithPublishMmap requires WithPublishDir", ErrIncompatibleOptions)
	}
	var mopts []ingest.Option
	if c.counterBase > 1 {
		mopts = append(mopts, ingest.WithUpdateCounters(c.counterBase))
	}
	m, err := ingest.New(g, cs, mopts...)
	if err != nil {
		return nil, err
	}
	if c.dir != "" {
		if err := os.MkdirAll(c.dir, 0o755); err != nil {
			return nil, fmt.Errorf("adsketch: creating publish dir: %w", err)
		}
	}
	return &Ingestor{
		m:              m,
		freezeEvery:    c.freezeEvery,
		freezeInterval: c.freezeInterval,
		cat:            c.cat,
		dataset:        c.dataset,
		dir:            c.dir,
		mmapPub:        c.mmap,
		lastFreeze:     time.Now(),
	}, nil
}

// NewEmptyIngestor returns an ingestor starting from the empty graph:
// every node and edge arrives through the stream.  k and seed fix the
// sketch parameter and the coordinated ranks of every version it freezes.
func NewEmptyIngestor(directed bool, k int, seed uint64, opts ...IngestorOption) (*Ingestor, error) {
	g := graph.NewBuilder(0, directed).Build()
	set, err := core.BuildSet(g, core.Options{K: k, Seed: seed}, core.AlgoPrunedDijkstra)
	if err != nil {
		return nil, err
	}
	return NewIngestor(g, set, opts...)
}

// Dataset returns the publish target name ("" when not publishing).
func (in *Ingestor) Dataset() string { return in.dataset }

// Insert ingests an edge of length 1 (both directions for undirected
// ingestors), propagating all sketch updates and freezing/publishing when
// a configured trigger fires.
func (in *Ingestor) Insert(u, v int32) error { return in.InsertWeighted(u, v, 0) }

// InsertWeighted ingests an edge with the given positive length (w <= 0
// means unit length).
func (in *Ingestor) InsertWeighted(u, v int32, w float64) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.insertLocked(u, v, w)
}

// InsertBatch ingests a batch of edges, returning how many were applied.
// Automatic freezes may fire mid-batch, so a huge replay batch cannot
// postpone publishing indefinitely.
func (in *Ingestor) InsertBatch(edges []Edge) (int, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, e := range edges {
		if err := in.insertLocked(e.U, e.V, e.W); err != nil {
			return i, err
		}
	}
	return len(edges), nil
}

// Replay drains an EdgeSource into the ingestor, returning how many edges
// were applied.
func (in *Ingestor) Replay(src EdgeSource) (int, error) {
	return stream.Replay(src, func(e Edge) error {
		return in.InsertWeighted(e.U, e.V, e.W)
	})
}

func (in *Ingestor) insertLocked(u, v int32, w float64) error {
	var err error
	if w <= 0 {
		err = in.m.Insert(u, v)
	} else {
		err = in.m.InsertWeighted(u, v, w)
	}
	if err != nil {
		return err
	}
	in.pending++
	if in.freezeEvery > 0 && in.pending >= int64(in.freezeEvery) {
		_, err = in.freezeLocked()
		return err
	}
	if in.freezeInterval > 0 && time.Since(in.lastFreeze) >= in.freezeInterval {
		_, err = in.freezeLocked()
		return err
	}
	return nil
}

// FreezeResult describes one frozen (and possibly published) version.
type FreezeResult struct {
	// Set is the frozen sketch set — bit-for-bit what a full Build of the
	// current graph would produce.
	Set *Set
	// Version is the catalog version published (0 when not publishing).
	Version int
	// Path is the v3 file written (empty for in-memory publishes).
	Path string
	// Nodes and Entries size the frozen set.
	Nodes, Entries int
}

// Freeze freezes base + pending deltas into a new columnar frame now,
// publishes it when configured, and re-bases the ingestor on it.
func (in *Ingestor) Freeze() (*FreezeResult, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.freezeLocked()
}

func (in *Ingestor) freezeLocked() (*FreezeResult, error) {
	set, err := in.m.Freeze()
	if err != nil {
		return nil, err
	}
	res := &FreezeResult{Set: set, Nodes: set.NumNodes(), Entries: set.TotalEntries()}
	in.pending = 0
	in.freezes++
	in.lastFreeze = time.Now()
	if in.cat == nil {
		return res, nil
	}
	src := SetSource(set)
	if in.dir != "" {
		in.seq++
		path := filepath.Join(in.dir, fmt.Sprintf("%s-%08d.v3", in.dataset, in.seq))
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("adsketch: writing frozen version: %w", err)
		}
		if _, err := core.WriteSketchSetV3(f, set); err != nil {
			f.Close()
			return nil, fmt.Errorf("adsketch: writing frozen version: %w", err)
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("adsketch: writing frozen version: %w", err)
		}
		if in.mmapPub {
			src = MmapSource(path)
		} else {
			src = FileSource(path)
		}
		res.Path = path
	}
	version, err := in.cat.Swap(in.dataset, src)
	if err != nil {
		return nil, fmt.Errorf("adsketch: publishing %q: %w", in.dataset, err)
	}
	res.Version = version
	in.version = version
	in.path = res.Path
	in.published = time.Now()
	return res, nil
}

// IngestorStats is a point-in-time snapshot of an ingestor — the per-
// dataset payload of the adsserver /statsz ingest section.
type IngestorStats struct {
	// Dataset is the publish target ("" when not publishing).
	Dataset string `json:"dataset,omitempty"`
	// Maintainer carries the propagation counters (nodes, edges, offers,
	// accepts, evictions, frontier high-water, pending overlay sizes).
	Maintainer ingest.Stats `json:"maintainer"`
	// PendingEdges counts edges ingested since the last freeze — the
	// ingest lag in edges.
	PendingEdges int64 `json:"pending_edges"`
	// Freezes counts Freeze calls (automatic and explicit).
	Freezes int64 `json:"freezes"`
	// LastVersion is the last published catalog version (0 = none yet).
	LastVersion int `json:"last_version,omitempty"`
	// LastPath is the last published v3 file (empty for in-memory).
	LastPath string `json:"last_path,omitempty"`
	// PublishLagSeconds is the time since the last publish — the ingest
	// lag in seconds (-1 before the first publish).
	PublishLagSeconds float64 `json:"publish_lag_seconds"`
}

// Stats snapshots the ingestor.
func (in *Ingestor) Stats() IngestorStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := IngestorStats{
		Dataset:           in.dataset,
		Maintainer:        in.m.Stats(),
		PendingEdges:      in.pending,
		Freezes:           in.freezes,
		LastVersion:       in.version,
		LastPath:          in.path,
		PublishLagSeconds: -1,
	}
	if !in.published.IsZero() {
		st.PublishLagSeconds = time.Since(in.published).Seconds()
	}
	return st
}
