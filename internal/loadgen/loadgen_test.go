package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"adsketch"
)

// recordingDoer captures the request stream and answers instantly.
type recordingDoer struct {
	mu   sync.Mutex
	reqs []adsketch.Request

	fail    func(adsketch.Request) error // optional per-request failure
	partial bool                         // flag every answer degraded
	delay   time.Duration
}

func (d *recordingDoer) Do(ctx context.Context, req adsketch.Request) (adsketch.Response, error) {
	d.mu.Lock()
	d.reqs = append(d.reqs, req)
	d.mu.Unlock()
	if d.delay > 0 {
		select {
		case <-ctx.Done():
			return adsketch.Response{}, ctx.Err()
		case <-time.After(d.delay):
		}
	}
	if d.fail != nil {
		if err := d.fail(req); err != nil {
			return adsketch.Response{}, err
		}
	}
	return adsketch.Response{Partial: d.partial}, nil
}

func TestSummarizePercentiles(t *testing.T) {
	var samples []time.Duration
	for i := 1; i <= 100; i++ {
		samples = append(samples, time.Duration(i)*time.Millisecond)
	}
	s := summarize(samples)
	if s.Count != 100 || s.Max != 100*time.Millisecond {
		t.Fatalf("summary: %+v", s)
	}
	if s.P50 != 50*time.Millisecond || s.P95 != 95*time.Millisecond || s.P99 != 99*time.Millisecond {
		t.Errorf("percentiles: p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}
	if empty := summarize(nil); empty != (Summary{}) {
		t.Errorf("empty summary: %+v", empty)
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("closeness=6,topk=2, neighborhood=1")
	if err != nil {
		t.Fatal(err)
	}
	want := Mix{{KindCloseness, 6}, {KindTopK, 2}, {KindNeighborhood, 1}}
	if !reflect.DeepEqual(m, want) {
		t.Errorf("mix = %+v", m)
	}
	if m, err := ParseMix(""); err != nil || !reflect.DeepEqual(m, DefaultMix()) {
		t.Errorf("empty mix: %v, %v", m, err)
	}
	for _, bad := range []string{"closeness", "closeness=x", "closeness=-1", "pagerank=1", "closeness=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

// The stream must be a pure function of the seed: two runs with the
// same seed draw identical requests, a different seed draws different
// ones.
func TestRunDeterministicStream(t *testing.T) {
	run := func(seed uint64) []adsketch.Request {
		d := &recordingDoer{}
		cfg := Config{RPS: 2000, Duration: 100 * time.Millisecond, Seed: seed, Nodes: 400,
			Mix: Mix{{KindCloseness, 1}, {KindJaccard, 1}, {KindSketch, 1}}}
		if _, err := Run(context.Background(), d, cfg); err != nil {
			t.Fatal(err)
		}
		return d.reqs
	}
	a, b := run(42), run(42)
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		t.Fatal("no requests generated")
	}
	// Completion order is racy but the arrival loop generates in
	// sequence; compare as multisets via JSON keys.
	key := func(reqs []adsketch.Request) map[string]int {
		m := make(map[string]int)
		for _, r := range reqs {
			b, _ := json.Marshal(r)
			m[string(b)]++
		}
		return m
	}
	ka, kb := key(a[:n]), key(b[:n])
	same := 0
	for k, c := range ka {
		if kb[k] == c {
			same += c
		}
	}
	if same < n*9/10 {
		t.Errorf("same-seed streams differ: %d/%d requests match", same, n)
	}
	kc := key(run(7)[:1])
	for k := range kc {
		if _, clash := ka[k]; clash && len(ka) > 3 {
			// A single overlapping request is fine; identical streams are not.
			break
		}
	}
}

func TestRunCountsOutcomes(t *testing.T) {
	boom := errors.New("boom")
	d := &recordingDoer{
		partial: true,
		fail: func(req adsketch.Request) error {
			if req.TopK != nil {
				return boom
			}
			return nil
		},
	}
	cfg := Config{RPS: 2000, Duration: 100 * time.Millisecond, Seed: 42, Nodes: 400,
		Mix: Mix{{KindCloseness, 1}, {KindTopK, 1}}}
	res, err := Run(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.Done != res.Sent-res.Shed {
		t.Fatalf("accounting: %+v", res)
	}
	if res.Errors == 0 || res.Partial == 0 {
		t.Errorf("outcome counts: %+v", res)
	}
	if res.Errors+res.Partial > res.Done {
		t.Errorf("an answer counted twice: %+v", res)
	}
	if res.Latency.Count != res.Done {
		t.Errorf("latency samples %d != done %d", res.Latency.Count, res.Done)
	}
}

// Open loop: a slow backend must not throttle arrivals — excess
// arrivals shed at the in-flight cap instead of stretching the run.
func TestRunOpenLoopSheds(t *testing.T) {
	d := &recordingDoer{delay: time.Second}
	cfg := Config{RPS: 1000, Duration: 150 * time.Millisecond, Seed: 1, Nodes: 10, InFlight: 4}
	start := time.Now()
	res, err := Run(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Errorf("no arrivals shed at a 4-deep cap against a 1s backend: %+v", res)
	}
	if res.ErrorRate() == 0 {
		t.Error("shed arrivals not reflected in the error rate")
	}
	// The run drains in-flight requests (~1s) but must not serve the
	// full arrival backlog sequentially.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("open-loop run took %v", elapsed)
	}
}

func TestRunConfigValidation(t *testing.T) {
	d := &recordingDoer{}
	for _, cfg := range []Config{
		{RPS: 0, Duration: time.Second, Nodes: 10},
		{RPS: 10, Duration: 0, Nodes: 10},
		{RPS: 10, Duration: time.Second, Nodes: 0},
		{RPS: 10, Duration: time.Second, Nodes: 10, Mix: Mix{{KindTopK, 0}}},
	} {
		if _, err := Run(context.Background(), d, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestSLOCheck(t *testing.T) {
	good := Result{Sent: 100, Done: 100, Latency: Summary{Count: 100, P99: 20 * time.Millisecond}}
	slo := SLO{MaxErrorRate: 0.01, MaxP99: 100 * time.Millisecond, MinDone: 50, MaxPartial: 0}
	if v := slo.Check(good); len(v) != 0 {
		t.Errorf("clean result violates: %v", v)
	}
	bad := Result{Sent: 100, Done: 90, Shed: 10, Errors: 5, Partial: 3,
		Latency: Summary{Count: 90, P99: 500 * time.Millisecond}}
	v := slo.Check(bad)
	if len(v) != 3 {
		t.Errorf("want 3 violations (error rate, p99, partial): %v", v)
	}
	if v := (SLO{MinDone: 95, MaxErrorRate: -1, MaxPartial: -1}).Check(bad); len(v) != 1 ||
		!strings.Contains(v[0], "completed") {
		t.Errorf("MinDone violation: %v", v)
	}
	// Unchecked dimensions stay silent.
	loose := SLO{MaxErrorRate: -1, MaxPartial: -1}
	if v := loose.Check(bad); len(v) != 0 {
		t.Errorf("unchecked SLO violates: %v", v)
	}
}

func TestScenarioParse(t *testing.T) {
	doc := `{
		"name": "dead-worker",
		"rps": 200,
		"policy": "partial",
		"phases": [
			{"name": "warmup", "duration_ms": 500},
			{"name": "inject", "duration_ms": 1000,
			 "inject": [{"target": "http://w1", "dead": true}]},
			{"name": "recovery", "duration_ms": 500,
			 "inject": [{"target": "http://w1"}]}
		]
	}`
	sc, err := ParseScenario([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "dead-worker" || len(sc.Phases) != 3 || !sc.Phases[1].Inject[0].Dead {
		t.Errorf("scenario: %+v", sc)
	}
	for _, bad := range []string{
		`{"name":"x","rps":0,"phases":[{"name":"a","duration_ms":1}]}`,
		`{"name":"x","rps":10,"phases":[]}`,
		`{"name":"x","rps":10,"phases":[{"name":"a","duration_ms":0}]}`,
		`{"name":"x","rps":10,"phases":[{"name":"a","duration_ms":1,"inject":[{"dead":true}]}]}`,
		`{"name":"x","rps":10,"phases":[{"name":"a","duration_ms":1,"inject":[{"target":"t","swap":{"dataset":"d"}}]}]}`,
		`{"name":"x","rps":10,"typo":1,"phases":[{"name":"a","duration_ms":1}]}`,
	} {
		if _, err := ParseScenario([]byte(bad)); err == nil {
			t.Errorf("scenario %s accepted", bad)
		}
	}
}

func TestRunScenarioAppliesInjects(t *testing.T) {
	var mu sync.Mutex
	var posts []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body map[string]any
		json.NewDecoder(r.Body).Decode(&body)
		b, _ := json.Marshal(body)
		mu.Lock()
		posts = append(posts, r.Method+" "+r.URL.Path+" "+string(b))
		mu.Unlock()
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	dead := true
	_ = dead
	sc := Scenario{
		Name: "swap-midburst",
		RPS:  500,
		Phases: []Phase{
			{Name: "warmup", DurationMS: 50},
			{Name: "faulted", DurationMS: 50, Inject: []Inject{{Target: ts.URL, Dead: true, LatencyMS: 5}}},
			{Name: "swapped", DurationMS: 50, Inject: []Inject{
				{Target: ts.URL}, // clear fault
				{Target: ts.URL, Swap: &Swap{Dataset: "default", Path: "/tmp/x.ads", Mmap: true}},
			}},
		},
	}
	d := &recordingDoer{}
	results, err := RunScenario(context.Background(), d, sc, Config{Nodes: 100}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results: %+v", results)
	}
	for i, want := range []string{"swap-midburst/warmup", "swap-midburst/faulted", "swap-midburst/swapped"} {
		if results[i].Name != want {
			t.Errorf("phase %d named %q, want %q", i, results[i].Name, want)
		}
		if results[i].Done == 0 {
			t.Errorf("phase %d completed nothing", i)
		}
	}
	wantPosts := []string{
		`POST /debugz/fault {"dead":true,"latency_ms":5}`,
		`POST /debugz/fault {"dead":false,"latency_ms":0}`,
		`POST /v1/datasets/default {"mmap":true,"partitions":0,"path":"/tmp/x.ads"}`,
	}
	mu.Lock()
	defer mu.Unlock()
	if !reflect.DeepEqual(posts, wantPosts) {
		t.Errorf("injected posts:\n  got  %q\n  want %q", posts, wantPosts)
	}

	// A failing inject aborts the scenario with partial results.
	ts.Close()
	_, err = RunScenario(context.Background(), d, sc, Config{Nodes: 100}, 42)
	if err == nil || !strings.Contains(err.Error(), "inject") {
		t.Errorf("dead inject target: %v", err)
	}
}

// Against a real engine, a healthy run passes a sane SLO and every
// answer is exact (no partials, no errors).
func TestRunAgainstEngine(t *testing.T) {
	g := adsketch.PreferentialAttachment(400, 3, 7)
	set, err := adsketch.Build(g, adsketch.WithK(8), adsketch.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := adsketch.NewEngine(set)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), eng, Config{
		RPS: 2000, Duration: 200 * time.Millisecond, Seed: 42, Nodes: set.NumNodes(),
		Mix: Mix{{KindCloseness, 4}, {KindTopK, 1}, {KindNeighborhood, 2}, {KindJaccard, 1}, {KindSketch, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	slo := SLO{MaxErrorRate: 0, MaxP99: 5 * time.Second, MinDone: 10, MaxPartial: 0}
	if v := slo.Check(res); len(v) != 0 {
		t.Errorf("healthy engine violates SLO: %v (result %+v)", v, res)
	}
}

// closeness1 draws single-node queries from a 16-node working set, so a
// warmed score cache answers every one of them — the latency-floor mix
// the wire-protocol gate runs.
func TestCloseness1WorkingSet(t *testing.T) {
	m, err := ParseMix("closeness1=1")
	if err != nil {
		t.Fatal(err)
	}
	d := &recordingDoer{}
	cfg := Config{RPS: 2000, Duration: 100 * time.Millisecond, Seed: 7, Nodes: 400, Mix: m}
	if _, err := Run(context.Background(), d, cfg); err != nil {
		t.Fatal(err)
	}
	if len(d.reqs) == 0 {
		t.Fatal("no requests generated")
	}
	for _, req := range d.reqs {
		if req.Closeness == nil || len(req.Closeness.Nodes) != 1 {
			t.Fatalf("closeness1 drew %+v, want one closeness node", req)
		}
		if n := req.Closeness.Nodes[0]; n < 0 || n >= 16 {
			t.Fatalf("closeness1 drew node %d outside the 16-node working set", n)
		}
	}
}
