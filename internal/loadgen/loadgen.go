// Package loadgen drives an adsketch serving topology with an open-loop
// query load: arrivals fire on a fixed schedule regardless of how fast
// completions come back, so a slow or dead shard shows up as queueing
// and tail latency (exactly as it would for production clients) instead
// of silently throttling the generator.  On top of the generator sit
// declarative fault scenarios (phases that inject latency, outages, or
// catalog swaps into a running topology) and SLO gates that turn a run
// into a pass/fail release check.
package loadgen

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"adsketch"
)

// Doer answers one wire-protocol request: Engine, Coordinator, Catalog,
// or (in cmd/adsload) an HTTP client posting to a remote server.
type Doer interface {
	Do(ctx context.Context, req adsketch.Request) (adsketch.Response, error)
}

// MixEntry weights one query kind in the generated stream.
type MixEntry struct {
	Kind   string
	Weight float64
}

// The query kinds a Mix may name.
const (
	KindCloseness    = "closeness"
	KindCloseness1   = "closeness1" // single node, drawn from a small set: the cache-hit path
	KindTopK         = "topk"
	KindNeighborhood = "neighborhood"
	KindJaccard      = "jaccard"
	KindSketch       = "sketch"
)

// Mix is a weighted query blend, in a fixed order so the same seed
// always draws the same stream.
type Mix []MixEntry

// DefaultMix approximates a read-heavy serving workload: mostly
// per-node scores, some rankings, a little of everything else.
func DefaultMix() Mix {
	return Mix{
		{KindCloseness, 6},
		{KindTopK, 2},
		{KindNeighborhood, 2},
	}
}

// ParseMix reads a "kind=weight,kind=weight" flag value.
func ParseMix(s string) (Mix, error) {
	if strings.TrimSpace(s) == "" {
		return DefaultMix(), nil
	}
	var m Mix
	for _, part := range strings.Split(s, ",") {
		kind, w, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("loadgen: mix entry %q: want kind=weight", part)
		}
		weight, err := strconv.ParseFloat(w, 64)
		if err != nil || weight < 0 {
			return nil, fmt.Errorf("loadgen: mix entry %q: bad weight", part)
		}
		switch kind {
		case KindCloseness, KindCloseness1, KindTopK, KindNeighborhood, KindJaccard, KindSketch:
		default:
			return nil, fmt.Errorf("loadgen: mix entry %q: unknown kind (want %s|%s|%s|%s|%s|%s)",
				part, KindCloseness, KindCloseness1, KindTopK, KindNeighborhood, KindJaccard, KindSketch)
		}
		m = append(m, MixEntry{Kind: kind, Weight: weight})
	}
	return m, m.validate()
}

func (m Mix) validate() error {
	total := 0.0
	for _, e := range m {
		total += e.Weight
	}
	if total <= 0 {
		return fmt.Errorf("loadgen: mix has no positive weight")
	}
	return nil
}

// draw picks a kind proportionally to the weights.
func (m Mix) draw(rng *rand.Rand) string {
	total := 0.0
	for _, e := range m {
		total += e.Weight
	}
	x := rng.Float64() * total
	for _, e := range m {
		if x < e.Weight {
			return e.Kind
		}
		x -= e.Weight
	}
	return m[len(m)-1].Kind
}

// Config shapes one load run.
type Config struct {
	RPS      float64       // arrival rate (open loop)
	Duration time.Duration // how long to keep arriving
	Seed     uint64        // the stream is a pure function of (Seed, Mix, Nodes)
	Mix      Mix           // nil = DefaultMix
	Nodes    int           // global node-ID space for generated queries
	Policy   string        // Request.Policy for every query ("" = fail)
	Dataset  string        // Request.Dataset ("" = default dataset)
	InFlight int           // concurrent-request cap; arrivals beyond it are shed (0 = 512)
}

func (c *Config) normalize() error {
	if c.RPS <= 0 {
		return fmt.Errorf("loadgen: rps must be > 0")
	}
	if c.Duration <= 0 {
		return fmt.Errorf("loadgen: duration must be > 0")
	}
	if c.Nodes <= 0 {
		return fmt.Errorf("loadgen: node space unknown; set Config.Nodes")
	}
	if c.Mix == nil {
		c.Mix = DefaultMix()
	}
	if err := c.Mix.validate(); err != nil {
		return err
	}
	if c.InFlight <= 0 {
		c.InFlight = 512
	}
	return nil
}

// genRequest draws the next query of the stream.  Everything about the
// request comes from rng, so a (seed, mix, nodes) triple names one
// reproducible stream on any machine.
func genRequest(rng *rand.Rand, cfg *Config) adsketch.Request {
	node := func() int32 { return int32(rng.Intn(cfg.Nodes)) }
	req := adsketch.Request{Policy: cfg.Policy, Dataset: cfg.Dataset}
	switch cfg.Mix.draw(rng) {
	case KindCloseness:
		nodes := make([]int32, 1+rng.Intn(4))
		for i := range nodes {
			nodes[i] = node()
		}
		req.Closeness = &adsketch.ClosenessQuery{Nodes: nodes}
	case KindCloseness1:
		// One node out of a 16-node working set: after warmup every
		// draw is a score-cache hit, isolating the wire cost of the
		// serving path (the latency floor the binary protocol gates on).
		req.Closeness = &adsketch.ClosenessQuery{Nodes: []int32{int32(rng.Intn(min(16, cfg.Nodes)))}}
	case KindTopK:
		req.TopK = &adsketch.TopKQuery{Metric: adsketch.MetricCloseness, K: 5 + rng.Intn(16)}
	case KindNeighborhood:
		req.Neighborhood = &adsketch.NeighborhoodQuery{
			Radius: float64(1 + rng.Intn(3)), Nodes: []int32{node(), node()},
		}
	case KindJaccard:
		req.Jaccard = &adsketch.JaccardQuery{A: node(), RadiusA: 2, B: node(), RadiusB: 2}
	case KindSketch:
		req.Sketch = &adsketch.SketchQuery{Node: node()}
	}
	return req
}

// Summary condenses a latency distribution.
type Summary struct {
	Count int           `json:"count"`
	Mean  time.Duration `json:"mean"`
	P50   time.Duration `json:"p50"`
	P95   time.Duration `json:"p95"`
	P99   time.Duration `json:"p99"`
	Max   time.Duration `json:"max"`
}

// summarize computes the percentile summary of raw samples.
func summarize(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	return Summary{
		Count: len(sorted),
		Mean:  total / time.Duration(len(sorted)),
		P50:   quantile(sorted, 0.50),
		P95:   quantile(sorted, 0.95),
		P99:   quantile(sorted, 0.99),
		Max:   sorted[len(sorted)-1],
	}
}

// quantile reads the q-th quantile (nearest-rank) off sorted samples.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

// Result is the outcome of one load run.
type Result struct {
	Name    string        `json:"name,omitempty"` // phase or scenario label
	Seed    uint64        `json:"seed"`
	Sent    int           `json:"sent"`    // arrivals issued
	Shed    int           `json:"shed"`    // arrivals dropped at the in-flight cap
	Done    int           `json:"done"`    // completions (ok or error)
	Errors  int           `json:"errors"`  // completions that failed
	Partial int           `json:"partial"` // degraded (Response.Partial) answers
	Elapsed time.Duration `json:"elapsed"` // wall clock including drain
	Latency Summary       `json:"latency"` // completed-request latency
}

// ErrorRate is the failed fraction of completed requests; shed arrivals
// count as failures too — an open-loop generator that cannot keep its
// in-flight budget is itself a signal the topology is underwater.
func (r Result) ErrorRate() float64 {
	total := r.Done + r.Shed
	if total == 0 {
		return 0
	}
	return float64(r.Errors+r.Shed) / float64(total)
}

// Run drives one open-loop load run against d.  Arrivals fire every
// 1/RPS regardless of completions; each runs on its own goroutine up to
// the in-flight cap, beyond which arrivals are shed (and counted).  The
// request stream is deterministic in cfg.Seed; completion interleaving
// of course is not.
func Run(ctx context.Context, d Doer, cfg Config) (Result, error) {
	if err := cfg.normalize(); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	interval := time.Duration(float64(time.Second) / cfg.RPS)
	if interval <= 0 {
		interval = time.Nanosecond
	}

	res := Result{Seed: cfg.Seed}
	var (
		mu      sync.Mutex
		samples []time.Duration
		wg      sync.WaitGroup
	)
	sem := make(chan struct{}, cfg.InFlight)
	start := time.Now()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(cfg.Duration)
	defer deadline.Stop()

arrivals:
	for {
		select {
		case <-ctx.Done():
			break arrivals
		case <-deadline.C:
			break arrivals
		case <-ticker.C:
			req := genRequest(rng, &cfg)
			res.Sent++
			select {
			case sem <- struct{}{}:
			default:
				res.Shed++
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				t0 := time.Now()
				resp, err := d.Do(ctx, req)
				lat := time.Since(t0)
				mu.Lock()
				defer mu.Unlock()
				res.Done++
				samples = append(samples, lat)
				if err != nil {
					res.Errors++
				} else if resp.Partial {
					res.Partial++
				}
			}()
		}
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Latency = summarize(samples)
	return res, ctx.Err()
}

// SLO is a release gate over one Result.  The rate and count ceilings
// treat zero as a strict "none allowed" and negative as unchecked; the
// other dimensions are unchecked at their zero value.
type SLO struct {
	MaxErrorRate float64       // failed+shed fraction of arrivals, [0, 1] (< 0 = unchecked)
	MaxP99       time.Duration // tail-latency ceiling (0 = unchecked)
	MinDone      int           // completed-request floor (catches a gate passing on an idle run)
	MaxPartial   int           // degraded-answer ceiling (< 0 = unchecked; 0 = none allowed)
}

// Check returns the violated clauses, empty when the result passes.
func (s SLO) Check(r Result) []string {
	var v []string
	if rate := r.ErrorRate(); s.MaxErrorRate >= 0 && rate > s.MaxErrorRate {
		v = append(v, fmt.Sprintf("error rate %.4f > %.4f (%d errors, %d shed of %d)",
			rate, s.MaxErrorRate, r.Errors, r.Shed, r.Done+r.Shed))
	}
	if s.MaxP99 > 0 && r.Latency.P99 > s.MaxP99 {
		v = append(v, fmt.Sprintf("p99 %v > %v", r.Latency.P99, s.MaxP99))
	}
	if s.MinDone > 0 && r.Done < s.MinDone {
		v = append(v, fmt.Sprintf("only %d requests completed, want >= %d", r.Done, s.MinDone))
	}
	if s.MaxPartial >= 0 && r.Partial > s.MaxPartial {
		v = append(v, fmt.Sprintf("%d degraded (partial) answers > %d", r.Partial, s.MaxPartial))
	}
	return v
}
