package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Scenario is a declarative fault-rehearsal script: a sequence of load
// phases, each optionally flipping fault state on a worker or swapping
// a dataset in the catalog mid-burst.  The generator keeps arriving at
// the same open-loop rate across phase boundaries, so the phases carve
// one continuous run into labeled windows (warmup, inject, recovery)
// whose results gate independently.
type Scenario struct {
	Name   string  `json:"name"`
	RPS    float64 `json:"rps"`
	Mix    string  `json:"mix,omitempty"`    // ParseMix syntax; empty = default
	Policy string  `json:"policy,omitempty"` // Request.Policy for every query
	Phases []Phase `json:"phases"`
}

// Phase is one window of a scenario.
type Phase struct {
	Name       string   `json:"name"`
	DurationMS int64    `json:"duration_ms"`
	RPS        float64  `json:"rps,omitempty"`    // override the scenario rate
	Policy     *string  `json:"policy,omitempty"` // override the scenario policy
	Inject     []Inject `json:"inject,omitempty"` // applied before the phase's first arrival
}

// Inject is one fault action against a live server: fault state through
// POST /debugz/fault (the worker must run with -fault-inject), or a
// catalog swap through POST /v1/datasets/{name}.  A fault inject with
// neither dead nor latency set clears the target's fault state.
type Inject struct {
	Target    string `json:"target"` // server base URL
	Dead      bool   `json:"dead,omitempty"`
	LatencyMS int64  `json:"latency_ms,omitempty"`
	Swap      *Swap  `json:"swap,omitempty"`
}

// Swap publishes a sketch file under a dataset name on the target.
type Swap struct {
	Dataset    string `json:"dataset"`
	Path       string `json:"path"` // server-side path
	Mmap       bool   `json:"mmap,omitempty"`
	Partitions int    `json:"partitions,omitempty"`
}

// ParseScenario decodes and validates a scenario document.
func ParseScenario(data []byte) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("loadgen: decoding scenario: %w", err)
	}
	if sc.RPS <= 0 {
		return Scenario{}, fmt.Errorf("loadgen: scenario %q: rps must be > 0", sc.Name)
	}
	if len(sc.Phases) == 0 {
		return Scenario{}, fmt.Errorf("loadgen: scenario %q has no phases", sc.Name)
	}
	if _, err := ParseMix(sc.Mix); err != nil {
		return Scenario{}, err
	}
	for i, p := range sc.Phases {
		if p.DurationMS <= 0 {
			return Scenario{}, fmt.Errorf("loadgen: scenario %q phase %d (%s): duration_ms must be > 0", sc.Name, i, p.Name)
		}
		for j, inj := range p.Inject {
			if inj.Target == "" {
				return Scenario{}, fmt.Errorf("loadgen: scenario %q phase %d inject %d: target is required", sc.Name, i, j)
			}
			if inj.Swap != nil && (inj.Swap.Dataset == "" || inj.Swap.Path == "") {
				return Scenario{}, fmt.Errorf("loadgen: scenario %q phase %d inject %d: swap wants dataset and path", sc.Name, i, j)
			}
		}
	}
	return sc, nil
}

// injectClient posts fault and swap actions; overridable in tests.
var injectClient = &http.Client{Timeout: 10 * time.Second}

// apply executes one inject action.
func (inj Inject) apply(ctx context.Context) error {
	var url string
	var body []byte
	if inj.Swap != nil {
		url = inj.Target + "/v1/datasets/" + inj.Swap.Dataset
		body, _ = json.Marshal(map[string]any{
			"path": inj.Swap.Path, "mmap": inj.Swap.Mmap, "partitions": inj.Swap.Partitions,
		})
	} else {
		url = inj.Target + "/debugz/fault"
		body, _ = json.Marshal(map[string]any{"dead": inj.Dead, "latency_ms": inj.LatencyMS})
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := injectClient.Do(req)
	if err != nil {
		return fmt.Errorf("loadgen: inject %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		payload, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("loadgen: inject %s: %s: %s", url, resp.Status, bytes.TrimSpace(payload))
	}
	return nil
}

// RunScenario executes every phase in order under one seed, returning
// one Result per phase (labeled scenario/phase).  Fault injects apply
// before their phase's first arrival; the last phase's faults are NOT
// cleaned up automatically — a recovery phase that clears them is part
// of a well-formed scenario, and leaving them lets a harness assert on
// the faulted end state.
func RunScenario(ctx context.Context, d Doer, sc Scenario, base Config, seed uint64) ([]Result, error) {
	mix, err := ParseMix(sc.Mix)
	if err != nil {
		return nil, err
	}
	results := make([]Result, 0, len(sc.Phases))
	for i, p := range sc.Phases {
		for _, inj := range p.Inject {
			if err := inj.apply(ctx); err != nil {
				return results, err
			}
		}
		cfg := base
		cfg.Mix = mix
		cfg.RPS = sc.RPS
		if p.RPS > 0 {
			cfg.RPS = p.RPS
		}
		cfg.Policy = sc.Policy
		if p.Policy != nil {
			cfg.Policy = *p.Policy
		}
		cfg.Duration = time.Duration(p.DurationMS) * time.Millisecond
		// Each phase draws a distinct, reproducible stream: the phase
		// index keeps streams apart, the run seed keeps them repeatable.
		cfg.Seed = seed + uint64(i)*1_000_003
		res, err := Run(ctx, d, cfg)
		res.Name = sc.Name + "/" + p.Name
		results = append(results, res)
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
