// Package ingest maintains All-Distances Sketches incrementally over an
// edge stream.  Edge insertions are monotone: a new edge can only shrink
// distances, so every change to any sketch is the arrival of a better
// (node, dist, rank) candidate.  The Maintainer keeps a frozen base set
// (built by core.BuildSet or a previous Freeze) plus a per-node overlay of
// updated entry lists, and propagates candidates along reverse edges with
// the same bottom-k win rules the static builders use — so a Freeze is
// bit-for-bit the set a full rebuild of the final graph would produce.
//
// # Candidate propagation
//
// Inserting edge (u,v) of length w creates exactly the new paths that pass
// through it, and every such path reaches targets v reaches.  So the seed
// candidates at u are {(j, w + d_vj, r_j) : j in ADS(v)}, and an accepted
// candidate at x re-propagates to each in-neighbor p shifted by the arc
// length.  Two prunings keep the frontier bounded, both exact:
//
//   - No improvement: x already records j at distance <= d.  Every upstream
//     node then also records (or already rejected) a candidate at least as
//     good through an earlier path, so the candidate stops.
//
//   - Inclusion failure: at least k entries with rank < r_j canonically
//     precede (d, j) at x.  Those k witnesses shift with the candidate to
//     every predecessor p — witness (d_i, n_i) < (d, j) implies
//     (d_i + w', n_i) < (d + w', j), and p's true distances are only
//     smaller — so j fails everywhere upstream too, and j not in ADS(v)
//     (the reason it was never seeded) is exactly this condition at v.
//
// An accepted entry may evict later entries of the same sketch whose ranks
// stop winning; evictions never propagate (removal cannot improve anyone
// downstream, and stale candidates derived from an evicted entry are
// rejected by the same k witnesses that evicted it).
//
// The maintainer supports the bottom-k flavor with full-precision ranks.
// Rounded (base-b) ranks make rank ties likely, which breaks the strict
// "rank < threshold" win rule the propagation prunes by; the static
// builders handle ties with batch reconciliation that has no incremental
// analogue here.
package ingest

import (
	"fmt"

	"adsketch/internal/core"
	"adsketch/internal/counter"
	"adsketch/internal/graph"
	"adsketch/internal/rank"
	"adsketch/internal/sketch"
)

// arc is one reverse-adjacency edge: node x has an in-neighbor From at
// distance W, so a candidate accepted at x propagates to From shifted by W.
type arc struct {
	From int32
	W    float64
}

// candidate is a pending offer of entry E to node X's sketch.
type candidate struct {
	X int32
	E core.Entry
}

// Maintainer holds the mutable incremental state: the growable reverse
// adjacency, the frozen base set, and the overlay of per-node entry lists
// that differ from the base.  It is not safe for concurrent use; callers
// (the root Ingestor) serialize access.
type Maintainer struct {
	opts     core.Options
	src      rank.Source
	directed bool

	n       int
	in      [][]arc
	base    *core.Set
	overlay map[int32][]core.Entry

	queue []candidate
	heap  kheap

	edges     int64
	offers    int64
	accepts   int64
	evictions int64
	frontier  int

	counterB float64
	counters []*counter.Morris
}

// Option configures a Maintainer.
type Option func(*Maintainer) error

// WithUpdateCounters enables per-node Morris counters (base b > 1) that
// approximately count sketch updates per node — cheap ingest-side
// statistics for spotting hot regions of the graph.  Counter randomness is
// seeded deterministically from the set seed and the node ID.
func WithUpdateCounters(b float64) Option {
	return func(m *Maintainer) error {
		if !(b > 1) {
			return fmt.Errorf("ingest: update-counter base %g must be > 1", b)
		}
		m.counterB = b
		return nil
	}
}

// New returns a maintainer over the given graph and its built sketch set.
// The set must have been built from g (same node count) with the bottom-k
// flavor and full-precision ranks.  g's directedness fixes how future
// insertions are interpreted.  The maintainer copies the reverse adjacency
// and never mutates g or base.
func New(g *graph.Graph, base *core.Set, opts ...Option) (*Maintainer, error) {
	if g == nil || base == nil {
		return nil, fmt.Errorf("ingest: nil graph or base set")
	}
	o := base.Options()
	if o.Flavor != sketch.BottomK {
		return nil, fmt.Errorf("ingest: incremental maintenance supports the bottom-k flavor, set has %v", o.Flavor)
	}
	if o.BaseB != 0 {
		return nil, fmt.Errorf("ingest: incremental maintenance requires full-precision ranks, set has base-%g rounding", o.BaseB)
	}
	if g.NumNodes() != base.NumNodes() {
		return nil, fmt.Errorf("ingest: graph has %d nodes but base set has %d", g.NumNodes(), base.NumNodes())
	}
	m := &Maintainer{
		opts:     o,
		src:      o.Source(),
		directed: g.Directed(),
		n:        g.NumNodes(),
		in:       make([][]arc, g.NumNodes()),
		base:     base,
		overlay:  make(map[int32][]core.Entry),
		heap:     kheap{k: o.K, v: make([]float64, 0, o.K)},
	}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("ingest: nil Option")
		}
		if err := opt(m); err != nil {
			return nil, err
		}
	}
	if m.counterB > 1 {
		m.counters = make([]*counter.Morris, m.n)
	}
	// Reverse adjacency: arcs u->v land in in[v].  For undirected graphs
	// every edge is stored as two arcs, so this also yields the (identical)
	// neighbor lists.
	g.ForEachArc(func(u, v int32, w float64) {
		m.in[v] = append(m.in[v], arc{From: u, W: w})
	})
	return m, nil
}

// NumNodes returns the current node count (grows as insertions name new
// node IDs).
func (m *Maintainer) NumNodes() int { return m.n }

// K returns the sketch parameter.
func (m *Maintainer) K() int { return m.opts.K }

// Options returns the build options shared by the base and every Freeze.
func (m *Maintainer) Options() core.Options { return m.opts }

// Directed reports how insertions are interpreted.
func (m *Maintainer) Directed() bool { return m.directed }

// Insert adds an edge of length 1 from u to v (both directions for
// undirected maintainers) and propagates all sketch updates it causes.
// Node IDs beyond the current node count grow the node set.
func (m *Maintainer) Insert(u, v int32) error { return m.InsertWeighted(u, v, 1) }

// InsertWeighted adds an edge with the given positive length.
func (m *Maintainer) InsertWeighted(u, v int32, w float64) error {
	if u < 0 || v < 0 {
		return fmt.Errorf("ingest: edge (%d,%d) has a negative node ID", u, v)
	}
	if !(w > 0) {
		return fmt.Errorf("ingest: edge (%d,%d) has non-positive length %g", u, v, w)
	}
	hi := u
	if v > hi {
		hi = v
	}
	m.grow(int(hi) + 1)
	m.in[v] = append(m.in[v], arc{From: u, W: w})
	if !m.directed {
		m.in[u] = append(m.in[u], arc{From: v, W: w})
	}
	m.edges++
	m.seed(u, v, w)
	if !m.directed {
		m.seed(v, u, w)
	}
	m.drain()
	return nil
}

// grow extends the node set to n nodes: each new node starts isolated,
// holding only itself at distance 0 with its deterministic rank.
func (m *Maintainer) grow(n int) {
	for ; m.n < n; m.n++ {
		v := int32(m.n)
		m.in = append(m.in, nil)
		m.overlay[v] = []core.Entry{{Node: v, Dist: 0, Rank: m.src.Rank(int64(v))}}
		if m.counters != nil {
			m.counters = append(m.counters, nil)
		}
	}
}

// seed enqueues the candidates the new arc u<-v creates: every entry of
// ADS(v) shifted by the arc length (v's own distance-0 entry covers v
// itself).
func (m *Maintainer) seed(u, v int32, w float64) {
	sl, ads := m.viewOf(v)
	if ads != nil {
		for i, n := 0, ads.Size(); i < n; i++ {
			e := ads.EntryAt(i)
			m.push(candidate{X: u, E: core.Entry{Node: e.Node, Dist: e.Dist + w, Rank: e.Rank}})
		}
		return
	}
	for _, e := range sl {
		m.push(candidate{X: u, E: core.Entry{Node: e.Node, Dist: e.Dist + w, Rank: e.Rank}})
	}
}

func (m *Maintainer) push(c candidate) {
	m.queue = append(m.queue, c)
	if len(m.queue) > m.frontier {
		m.frontier = len(m.queue)
	}
}

// drain processes the candidate worklist to exhaustion.  Order does not
// affect the result (acceptance depends only on the receiving sketch and
// the candidate), so a LIFO stack keeps the frontier small.
func (m *Maintainer) drain() {
	for len(m.queue) > 0 {
		c := m.queue[len(m.queue)-1]
		m.queue = m.queue[:len(m.queue)-1]
		m.offers++
		if !m.offer(c.X, c.E) {
			continue
		}
		m.accepts++
		m.touch(c.X)
		for _, a := range m.in[c.X] {
			m.push(candidate{X: a.From, E: core.Entry{Node: c.E.Node, Dist: c.E.Dist + a.W, Rank: c.E.Rank}})
		}
	}
}

// viewOf returns node x's current entries: the overlay slice when the node
// has pending deltas, else a view of the base set.  Exactly one return is
// non-nil (new nodes always enter the overlay in grow).
func (m *Maintainer) viewOf(x int32) ([]core.Entry, *core.ADS) {
	if sl, ok := m.overlay[x]; ok {
		return sl, nil
	}
	return nil, m.base.BottomK(x)
}

// before is the canonical (distance, node ID) order of core.
func before(a, b core.Entry) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.Node < b.Node
}

// offer tests candidate e against node x's sketch, applying it (insert,
// possibly replacing a worse entry for the same node, possibly evicting
// later entries whose ranks stop winning) when it wins.  It reports
// whether the sketch changed.
func (m *Maintainer) offer(x int32, e core.Entry) bool {
	sl, ads := m.viewOf(x)
	size := len(sl)
	if ads != nil {
		size = ads.Size()
	}
	at := func(i int) core.Entry {
		if ads != nil {
			return ads.EntryAt(i)
		}
		return sl[i]
	}
	// One scan finds the canonical insertion position, the k smallest ranks
	// among entries preceding e (the inclusion threshold of Lemma 5.1), and
	// an existing entry for the same node.  Such an entry can only sit at or
	// after the insertion position: were it before, its distance would be
	// smaller and the candidate already rejected.
	k := m.opts.K
	pos, old := -1, -1
	h := &m.heap
	h.reset()
	for i := 0; i < size; i++ {
		ent := at(i)
		if ent.Node == e.Node {
			if ent.Dist <= e.Dist {
				return false // no improvement
			}
			old = i
		}
		if pos < 0 {
			if before(ent, e) {
				h.offer(ent.Rank)
			} else {
				pos = i
			}
		}
		if pos >= 0 && old >= 0 {
			break
		}
	}
	if pos < 0 {
		pos = size
	}
	if h.size() >= k && e.Rank >= h.max() {
		return false // fails inclusion; fails everywhere upstream too
	}
	// Accepted: materialize the node in the overlay and apply the change.
	lst := sl
	if ads != nil {
		lst = ads.Entries()
	}
	if old >= 0 {
		lst = append(lst[:old], lst[old+1:]...)
	}
	lst = append(lst, core.Entry{})
	copy(lst[pos+1:], lst[pos:])
	lst[pos] = e
	// Re-filter the suffix: continue the threshold scan past the insertion,
	// dropping entries whose rank no longer beats the k-th smallest
	// preceding rank.
	h.offer(e.Rank)
	out := lst[:pos+1]
	for i := pos + 1; i < len(lst); i++ {
		ent := lst[i]
		if h.size() >= k && ent.Rank >= h.max() {
			m.evictions++
			continue
		}
		h.offer(ent.Rank)
		out = append(out, ent)
	}
	m.overlay[x] = out
	return true
}

// touch bumps node x's Morris update counter, when counters are enabled.
func (m *Maintainer) touch(x int32) {
	if m.counters == nil {
		return
	}
	if m.counters[x] == nil {
		m.counters[x] = counter.New(m.counterB, m.opts.Seed^uint64(x)+1)
	}
	m.counters[x].Increment()
}

// UpdateEstimate returns the Morris estimate of how many sketch updates
// node x has absorbed since counters were enabled (0 when disabled or
// never touched).
func (m *Maintainer) UpdateEstimate(x int32) float64 {
	if m.counters == nil || x < 0 || int(x) >= len(m.counters) || m.counters[x] == nil {
		return 0
	}
	return m.counters[x].Estimate()
}

// CounterBits returns the summed storage cost, in bits, of the enabled
// Morris counters — the quantity the O(log log n) representation keeps
// small.
func (m *Maintainer) CounterBits() int {
	bits := 0
	for _, c := range m.counters {
		if c != nil {
			bits += c.Bits()
		}
	}
	return bits
}

// Entries returns node x's current entry list (base or overlay) in
// canonical order.  The slice is a fresh copy.
func (m *Maintainer) Entries(x int32) []core.Entry {
	if x < 0 || int(x) >= m.n {
		return nil
	}
	sl, ads := m.viewOf(x)
	if ads != nil {
		return ads.Entries()
	}
	return append([]core.Entry(nil), sl...)
}

// Freeze assembles base + overlay into a new frozen sketch set, re-bases
// the maintainer on it, and clears the overlay.  The returned set is
// exactly what core.BuildSet would produce for the current graph.
func (m *Maintainer) Freeze() (*core.Set, error) {
	lists := make([][]core.Entry, m.n)
	for v := 0; v < m.n; v++ {
		if sl, ok := m.overlay[int32(v)]; ok {
			lists[v] = sl
		} else {
			lists[v] = m.base.BottomK(int32(v)).Entries()
		}
	}
	set, err := core.FreezeBottomK(m.opts, lists)
	if err != nil {
		return nil, err
	}
	m.base = set
	m.overlay = make(map[int32][]core.Entry)
	return set, nil
}

// Stats is a point-in-time snapshot of the maintainer's counters.
type Stats struct {
	// Nodes is the current node count.
	Nodes int `json:"nodes"`
	// Edges counts every edge ever inserted.
	Edges int64 `json:"edges"`
	// Offers counts candidate evaluations; Accepts the subset that changed
	// a sketch; Evictions the entries dropped by accepted candidates.
	Offers    int64 `json:"offers"`
	Accepts   int64 `json:"accepts"`
	Evictions int64 `json:"evictions"`
	// FrontierMax is the high-water mark of the propagation worklist.
	FrontierMax int `json:"frontier_max"`
	// OverlayNodes / OverlayEntries size the pending deltas not yet frozen.
	OverlayNodes   int `json:"overlay_nodes"`
	OverlayEntries int `json:"overlay_entries"`
	// CounterBits is the summed Morris counter storage (0 when disabled).
	CounterBits int `json:"counter_bits,omitempty"`
}

// Stats snapshots the maintainer.
func (m *Maintainer) Stats() Stats {
	st := Stats{
		Nodes:        m.n,
		Edges:        m.edges,
		Offers:       m.offers,
		Accepts:      m.accepts,
		Evictions:    m.evictions,
		FrontierMax:  m.frontier,
		OverlayNodes: len(m.overlay),
		CounterBits:  m.CounterBits(),
	}
	for _, sl := range m.overlay {
		st.OverlayEntries += len(sl)
	}
	return st
}

// kheap keeps the k smallest ranks offered, exposing their maximum — the
// same structure core's builders prune by.
type kheap struct {
	k int
	v []float64
}

func (h *kheap) reset()       { h.v = h.v[:0] }
func (h *kheap) size() int    { return len(h.v) }
func (h *kheap) max() float64 { return h.v[0] }

func (h *kheap) offer(x float64) {
	if len(h.v) < h.k {
		h.v = append(h.v, x)
		i := len(h.v) - 1
		for i > 0 {
			p := (i - 1) / 2
			if h.v[p] >= h.v[i] {
				break
			}
			h.v[p], h.v[i] = h.v[i], h.v[p]
			i = p
		}
		return
	}
	if x >= h.v[0] {
		return
	}
	h.v[0] = x
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h.v) && h.v[l] > h.v[big] {
			big = l
		}
		if r < len(h.v) && h.v[r] > h.v[big] {
			big = r
		}
		if big == i {
			break
		}
		h.v[i], h.v[big] = h.v[big], h.v[i]
		i = big
	}
}
