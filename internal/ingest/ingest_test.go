package ingest

import (
	"bytes"
	"testing"

	"adsketch/internal/core"
	"adsketch/internal/graph"
	"adsketch/internal/sketch"
)

type edge struct {
	u, v int32
	w    float64
}

// edgesOf extracts the logical edge list of a graph (one entry per edge,
// u <= v for undirected graphs, mirroring WriteEdgeList's dedup).
func edgesOf(g *graph.Graph) []edge {
	var out []edge
	selfSeen := make(map[int32]int)
	g.ForEachArc(func(u, v int32, w float64) {
		if !g.Directed() {
			if u > v {
				return
			}
			if u == v {
				selfSeen[u]++
				if selfSeen[u]%2 == 0 {
					return
				}
			}
		}
		out = append(out, edge{u, v, w})
	})
	return out
}

// buildPrefix builds the graph holding the first cnt edges over n nodes.
func buildPrefix(n int, directed, weighted bool, edges []edge, cnt int) *graph.Graph {
	b := graph.NewBuilder(n, directed)
	for _, e := range edges[:cnt] {
		if weighted {
			b.AddWeightedEdge(e.u, e.v, e.w)
		} else {
			b.AddEdge(e.u, e.v)
		}
	}
	return b.Build()
}

func mustBuild(t *testing.T, g *graph.Graph, o core.Options) *core.Set {
	t.Helper()
	s, err := core.BuildSet(g, o, core.AlgoPrunedDijkstra)
	if err != nil {
		t.Fatalf("BuildSet: %v", err)
	}
	return s
}

// checkEntriesEqual compares the maintainer's live state against a freshly
// built reference set, entry by entry.
func checkEntriesEqual(t *testing.T, m *Maintainer, ref *core.Set, step int) {
	t.Helper()
	if m.NumNodes() != ref.NumNodes() {
		t.Fatalf("step %d: maintainer has %d nodes, rebuild has %d", step, m.NumNodes(), ref.NumNodes())
	}
	for v := 0; v < ref.NumNodes(); v++ {
		got := m.Entries(int32(v))
		want := ref.BottomK(int32(v)).Entries()
		if len(got) != len(want) {
			t.Fatalf("step %d: node %d: got %d entries, want %d\ngot:  %v\nwant: %v",
				step, v, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %d: node %d entry %d: got %+v, want %+v", step, v, i, got[i], want[i])
			}
		}
	}
}

// serialize writes a set through the v3 codec.
func serialize(t *testing.T, s *core.Set) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := core.WriteSketchSetV3(&buf, s); err != nil {
		t.Fatalf("WriteSketchSetV3: %v", err)
	}
	return buf.Bytes()
}

// replayParity replays the suffix of an edge stream on a maintainer based
// at the prefix, checking full parity with a rebuild after every insert,
// and byte parity of the final Freeze.
func replayParity(t *testing.T, g *graph.Graph, weighted bool, baseCnt int, o core.Options) {
	t.Helper()
	edges := edgesOf(g)
	n := g.NumNodes()
	baseGraph := buildPrefix(n, g.Directed(), weighted, edges, baseCnt)
	base := mustBuild(t, baseGraph, o)
	m, err := New(baseGraph, base, WithUpdateCounters(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := baseCnt; i < len(edges); i++ {
		e := edges[i]
		if weighted {
			err = m.InsertWeighted(e.u, e.v, e.w)
		} else {
			err = m.Insert(e.u, e.v)
		}
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		ref := mustBuild(t, buildPrefix(n, g.Directed(), weighted, edges, i+1), o)
		checkEntriesEqual(t, m, ref, i+1)
	}
	frozen, err := m.Freeze()
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	full := mustBuild(t, g, o)
	if got, want := serialize(t, frozen), serialize(t, full); !bytes.Equal(got, want) {
		t.Fatalf("frozen set is not byte-identical to a full rebuild (%d vs %d bytes)", len(got), len(want))
	}
	st := m.Stats()
	if st.Edges != int64(len(edges)-baseCnt) {
		t.Fatalf("Stats.Edges = %d, want %d", st.Edges, len(edges)-baseCnt)
	}
	if st.Offers < st.Accepts {
		t.Fatalf("Stats: offers %d < accepts %d", st.Offers, st.Accepts)
	}
	if st.OverlayNodes != 0 || st.OverlayEntries != 0 {
		t.Fatalf("Stats after Freeze: overlay not cleared: %+v", st)
	}
}

func TestParityUndirectedUnweighted(t *testing.T) {
	g := graph.GNP(60, 0.06, false, 7)
	edges := edgesOf(g)
	replayParity(t, g, false, len(edges)/2, core.Options{K: 4, Seed: 42})
}

func TestParityDirected(t *testing.T) {
	g := graph.GNP(50, 0.07, true, 11)
	edges := edgesOf(g)
	replayParity(t, g, false, len(edges)/2, core.Options{K: 3, Seed: 5})
}

func TestParityWeighted(t *testing.T) {
	g := graph.WithRandomWeights(graph.GNP(40, 0.09, false, 13), 0.5, 2.5, 99)
	edges := edgesOf(g)
	replayParity(t, g, true, len(edges)/2, core.Options{K: 4, Seed: 17})
}

func TestParityWeightedDirected(t *testing.T) {
	g := graph.WithRandomWeights(graph.GNP(40, 0.09, true, 21), 0.25, 3, 31)
	edges := edgesOf(g)
	replayParity(t, g, true, len(edges)/2, core.Options{K: 2, Seed: 23})
}

func TestParityEmptyStart(t *testing.T) {
	// Every edge arrives through the maintainer; nodes spring into
	// existence as IDs appear.
	g := graph.PreferentialAttachment(80, 3, 3)
	replayParity(t, g, false, 0, core.Options{K: 4, Seed: 1})
}

func TestParityEmptyStartSmallK1(t *testing.T) {
	g := graph.Cycle(30)
	replayParity(t, g, false, 0, core.Options{K: 1, Seed: 2})
}

// TestParityOrderIndependence checks that the final frozen set does not
// depend on the edge arrival order.
func TestParityOrderIndependence(t *testing.T) {
	g := graph.GNP(40, 0.08, false, 3)
	edges := edgesOf(g)
	o := core.Options{K: 4, Seed: 9}
	empty := graph.NewBuilder(0, g.Directed()).Build()

	freezeWith := func(perm []edge) []byte {
		m, err := New(empty, mustBuild(t, empty, o))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		for _, e := range perm {
			if err := m.Insert(e.u, e.v); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
		s, err := m.Freeze()
		if err != nil {
			t.Fatalf("Freeze: %v", err)
		}
		return serialize(t, s)
	}

	forward := freezeWith(edges)
	rev := make([]edge, len(edges))
	for i, e := range edges {
		rev[len(edges)-1-i] = e
	}
	if !bytes.Equal(forward, freezeWith(rev)) {
		t.Fatal("frozen sets differ between forward and reversed edge order")
	}
}

// TestRepeatedFreeze interleaves freezes with inserts: each freeze re-bases
// the maintainer and parity must survive across the boundary.
func TestRepeatedFreeze(t *testing.T) {
	g := graph.GNP(50, 0.07, false, 19)
	edges := edgesOf(g)
	o := core.Options{K: 4, Seed: 8}
	empty := graph.NewBuilder(0, false).Build()
	m, err := New(empty, mustBuild(t, empty, o))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i, e := range edges {
		if err := m.Insert(e.u, e.v); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if i%17 == 0 {
			if _, err := m.Freeze(); err != nil {
				t.Fatalf("Freeze at %d: %v", i, err)
			}
		}
	}
	frozen, err := m.Freeze()
	if err != nil {
		t.Fatalf("final Freeze: %v", err)
	}
	n := m.NumNodes()
	full := mustBuild(t, buildPrefix(n, false, false, edges, len(edges)), o)
	if !bytes.Equal(serialize(t, frozen), serialize(t, full)) {
		t.Fatal("frozen set after interleaved freezes differs from full rebuild")
	}
}

func TestNewValidation(t *testing.T) {
	g := graph.Cycle(10)
	if _, err := New(nil, nil); err == nil {
		t.Fatal("New(nil, nil) succeeded")
	}
	kmins := mustBuild(t, g, core.Options{K: 2, Seed: 1, Flavor: sketch.KMins})
	if _, err := New(g, kmins); err == nil {
		t.Fatal("New accepted a k-mins set")
	}
	baseB := mustBuild(t, g, core.Options{K: 2, Seed: 1, BaseB: 2})
	if _, err := New(g, baseB); err == nil {
		t.Fatal("New accepted a base-b set")
	}
	smaller := mustBuild(t, graph.Cycle(9), core.Options{K: 2, Seed: 1})
	if _, err := New(g, smaller); err == nil {
		t.Fatal("New accepted a node-count mismatch")
	}
	if _, err := New(g, mustBuild(t, g, core.Options{K: 2, Seed: 1}), WithUpdateCounters(1)); err == nil {
		t.Fatal("WithUpdateCounters(1) accepted")
	}
}

func TestInsertValidation(t *testing.T) {
	g := graph.Cycle(5)
	m, err := New(g, mustBuild(t, g, core.Options{K: 2, Seed: 1}))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := m.Insert(-1, 2); err == nil {
		t.Fatal("Insert(-1, 2) succeeded")
	}
	if err := m.InsertWeighted(0, 1, 0); err == nil {
		t.Fatal("zero-weight insert succeeded")
	}
	if err := m.InsertWeighted(0, 1, -3); err == nil {
		t.Fatal("negative-weight insert succeeded")
	}
}

func TestUpdateCounters(t *testing.T) {
	g := graph.Star(16)
	m, err := New(g, mustBuild(t, g, core.Options{K: 3, Seed: 4}), WithUpdateCounters(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := int32(1); i < 15; i++ {
		if err := m.Insert(i, i+1); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	st := m.Stats()
	if st.Accepts == 0 {
		t.Fatal("no accepted updates on a star augmentation")
	}
	total := 0.0
	for v := int32(0); v < int32(m.NumNodes()); v++ {
		total += m.UpdateEstimate(v)
	}
	if total <= 0 {
		t.Fatal("Morris update counters all zero after accepted updates")
	}
	if st.CounterBits <= 0 {
		t.Fatal("CounterBits = 0 with counters enabled")
	}
	if m.UpdateEstimate(-1) != 0 || m.UpdateEstimate(1<<20) != 0 {
		t.Fatal("UpdateEstimate out of range should be 0")
	}
}

// TestEvictionHappens forces rank-based evictions: a hub insertion that
// brings many low-rank nodes close to everyone.
func TestEvictionHappens(t *testing.T) {
	g := graph.Path(40)
	m, err := New(g, mustBuild(t, g, core.Options{K: 2, Seed: 6}))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Connect the two ends; long-range entries get displaced by closer ones.
	if err := m.Insert(0, 39); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	for i := int32(0); i < 40; i += 7 {
		if err := m.Insert(i, (i+20)%40); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if st := m.Stats(); st.Evictions == 0 {
		t.Skip("no evictions triggered by this stream (rank layout)")
	}
	n := m.NumNodes()
	edges := append(edgesOf(graph.Path(40)),
		edge{0, 39, 1}, edge{0, 20, 1}, edge{7, 27, 1}, edge{14, 34, 1},
		edge{21, 1, 1}, edge{28, 8, 1}, edge{35, 15, 1})
	full := mustBuild(t, buildPrefix(n, false, false, edges, len(edges)), core.Options{K: 2, Seed: 6})
	frozen, err := m.Freeze()
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if !bytes.Equal(serialize(t, frozen), serialize(t, full)) {
		t.Fatal("frozen set with evictions differs from full rebuild")
	}
}

func TestMultiEdgesAndSelfLoops(t *testing.T) {
	g := graph.Cycle(12)
	o := core.Options{K: 3, Seed: 14}
	m, err := New(g, mustBuild(t, g, o))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	extra := []edge{{3, 3, 1}, {2, 7, 1}, {2, 7, 1}, {5, 5, 1}}
	for _, e := range extra {
		if err := m.Insert(e.u, e.v); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	edges := append(edgesOf(g), extra...)
	full := mustBuild(t, buildPrefix(12, false, false, edges, len(edges)), o)
	checkEntriesEqual(t, m, full, len(extra))
}
