package core

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"adsketch/internal/graph"
	"adsketch/internal/sketch"
	"adsketch/internal/stats"
)

// --- serialization ---

func TestEncodeRoundTripAllFlavors(t *testing.T) {
	g := graph.GNP(120, 0.05, false, 31)
	for _, fl := range allFlavors() {
		for _, baseB := range []float64{0, 2} {
			o := Options{K: 5, Flavor: fl, Seed: 17, BaseB: baseB}
			set, err := BuildSet(g, o, AlgoPrunedDijkstra)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := WriteSet(&buf, set); err != nil {
				t.Fatal(err)
			}
			got, err := ReadSet(&buf)
			if err != nil {
				t.Fatalf("%v baseB=%g: %v", fl, baseB, err)
			}
			if got.Options() != set.Options() {
				t.Fatalf("options changed: %+v vs %+v", got.Options(), set.Options())
			}
			for v := int32(0); int(v) < g.NumNodes(); v++ {
				equalSketches(t, fmt.Sprintf("roundtrip %v node %d", fl, v),
					set.Sketch(v), got.Sketch(v))
			}
		}
	}
}

func TestEncodeDetectsCorruption(t *testing.T) {
	g := graph.Path(20)
	set, err := BuildSet(g, Options{K: 3, Flavor: sketch.BottomK, Seed: 1}, AlgoDP)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSet(&buf, set); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Wrong magic.
	bad := append([]byte("NOPE"), data[4:]...)
	if _, err := ReadSet(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Wrong version.
	bad = append([]byte(nil), data...)
	bad[4] = 99
	if _, err := ReadSet(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
	// Truncated.
	if _, err := ReadSet(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated file accepted")
	}
	// Flip a rank byte somewhere in the payload: either the structural
	// validation catches it or the read fails.
	bad = append([]byte(nil), data...)
	bad[len(bad)-3] ^= 0xff
	if _, err := ReadSet(bytes.NewReader(bad)); err == nil {
		// A flipped low-order rank byte can still satisfy the invariant;
		// accept that, but the common case should error.  Try flipping a
		// high-impact byte instead.
		bad2 := append([]byte(nil), data...)
		bad2[len(bad2)-1] ^= 0x7f
		if _, err := ReadSet(bytes.NewReader(bad2)); err == nil {
			t.Log("corruption not detected by invariant (rank flip kept order); acceptable")
		}
	}
}

func TestEncodeEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0, false).Build()
	set, err := BuildSet(g, Options{K: 2, Flavor: sketch.BottomK, Seed: 1}, AlgoDP)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSet(&buf, set); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 0 {
		t.Error("empty set round trip")
	}
}

// --- similarity / influence ---

func TestMinHashEntriesWithin(t *testing.T) {
	src := optionsForTest().Source()
	b := NewStreamBuilder(0, 4)
	for i := int64(0); i < 100; i++ {
		b.Offer(int32(i), float64(i), src.Rank(i))
	}
	es := b.ADS().MinHashEntriesWithin(50)
	if len(es) != 4 {
		t.Fatalf("got %d entries", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i].Rank < es[i-1].Rank {
			t.Fatal("not rank-sorted")
		}
		if es[i].Dist > 50 {
			t.Fatal("entry outside neighborhood")
		}
	}
}

func optionsForTest() Options { return Options{K: 4, Flavor: sketch.BottomK, Seed: 99} }

func TestNeighborhoodJaccardIdenticalAndDisjoint(t *testing.T) {
	// Two nodes of a complete graph share their d=1 neighborhood exactly.
	g := graph.Complete(40)
	set, err := BuildSet(g, Options{K: 8, Flavor: sketch.BottomK, Seed: 3}, AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if j := NeighborhoodJaccard(set.BottomK(0), 1, set.BottomK(1), 1); j != 1 {
		t.Errorf("complete-graph Jaccard = %g, want 1", j)
	}
	// Two components: disjoint neighborhoods.
	b := graph.NewBuilder(20, false)
	for i := int32(0); i < 9; i++ {
		b.AddEdge(i, i+1)
		b.AddEdge(i+10, i+11)
	}
	g2 := b.Build()
	set2, err := BuildSet(g2, Options{K: 4, Flavor: sketch.BottomK, Seed: 4}, AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if j := NeighborhoodJaccard(set2.BottomK(0), 100, set2.BottomK(10), 100); j != 0 {
		t.Errorf("cross-component Jaccard = %g, want 0", j)
	}
}

func TestNeighborhoodJaccardEstimatesOverlap(t *testing.T) {
	// Path graph: N_10(20) and N_10(26) overlap on nodes 16..30, |∩|=15,
	// |∪|=27 -> J = 15/27 ~ 0.556.
	g := graph.Path(60)
	var acc stats.Accum
	for run := 0; run < 200; run++ {
		set, err := BuildSet(g, Options{K: 12, Flavor: sketch.BottomK, Seed: uint64(run) + 50}, AlgoDP)
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(NeighborhoodJaccard(set.BottomK(20), 10, set.BottomK(26), 10))
	}
	want := 15.0 / 27.0
	if math.Abs(acc.Mean()-want) > 0.06 {
		t.Errorf("mean Jaccard = %g, want ~%g", acc.Mean(), want)
	}
}

func TestNeighborhoodJaccardPanicsOnMismatchedK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NeighborhoodJaccard(NewADS(0, 2), 1, NewADS(1, 3), 1)
}

func TestUnionNeighborhoodEstimate(t *testing.T) {
	// Two far-apart path nodes: union of their d=5 balls = 11 + 11 = 22.
	g := graph.Path(100)
	acc := stats.NewErrAccum(22)
	for run := 0; run < 200; run++ {
		set, err := BuildSet(g, Options{K: 8, Flavor: sketch.BottomK, Seed: uint64(run) + 900}, AlgoDP)
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(UnionNeighborhoodEstimate(set, []int32{20, 70}, 5))
	}
	if bias := acc.Bias(); math.Abs(bias) > 0.07 {
		t.Errorf("union estimate bias = %+.3f", bias)
	}
	set, _ := BuildSet(g, Options{K: 8, Flavor: sketch.BottomK, Seed: 1}, AlgoDP)
	if got := UnionNeighborhoodEstimate(set, nil, 5); got != 0 {
		t.Errorf("empty seed set estimate = %g", got)
	}
}

func TestGreedyInfluenceSeeds(t *testing.T) {
	// Two stars joined by a long path: the two star centers are the
	// obvious 2-seed choice for d=1.
	b := graph.NewBuilder(62, false)
	for i := int32(1); i <= 20; i++ {
		b.AddEdge(0, i) // star A, center 0
	}
	for i := int32(22); i <= 41; i++ {
		b.AddEdge(21, i) // star B, center 21
	}
	// Path bridging the two centers through nodes 42..61.
	prev := int32(0)
	for i := int32(42); i < 62; i++ {
		b.AddEdge(prev, i)
		prev = i
	}
	b.AddEdge(prev, 21)
	g := b.Build()
	set, err := BuildSet(g, Options{K: 16, Flavor: sketch.BottomK, Seed: 5}, AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	seeds, est := GreedyInfluenceSeeds(set, nil, 2, 1)
	if len(seeds) != 2 {
		t.Fatalf("seeds = %v", seeds)
	}
	found := map[int32]bool{seeds[0]: true, seeds[1]: true}
	if !found[0] || !found[21] {
		t.Errorf("greedy picked %v, want the two star centers {0, 21}", seeds)
	}
	if est < 30 || est > 60 {
		t.Errorf("estimated union coverage %g, want ~44", est)
	}
}

// --- parallel builder ---

func TestParallelBuilderMatchesSequential(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnp":  graph.GNP(150, 0.04, false, 77),
		"wba":  graph.WithRandomWeights(graph.PreferentialAttachment(120, 3, 78), 1, 4, 79),
		"grid": graph.Grid(9, 9),
	}
	for name, g := range graphs {
		for _, fl := range allFlavors() {
			for _, baseB := range []float64{0, 2} {
				o := Options{K: 4, Flavor: fl, Seed: 11, BaseB: baseB}
				ref, err := BuildSet(g, o, AlgoPrunedDijkstra)
				if err != nil {
					t.Fatal(err)
				}
				got, err := BuildSet(g, o, AlgoPrunedDijkstraParallel)
				if err != nil {
					t.Fatal(err)
				}
				for v := int32(0); int(v) < g.NumNodes(); v++ {
					label := fmt.Sprintf("parallel %s/%v/b=%g/node %d", name, fl, baseB, v)
					equalSketches(t, label, ref.Sketch(v), got.Sketch(v))
				}
			}
		}
	}
}

func TestParallelBuilderBatchSizes(t *testing.T) {
	g := graph.GNP(100, 0.05, false, 5)
	ref, err := BuildSet(g, Options{K: 6, Flavor: sketch.BottomK, Seed: 2}, AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 3, 17, 1000} {
		spec := runSpec{k: 6, rank: (Options{K: 6, Seed: 2}).rankFn(0)}
		lists := prunedDijkstraParallelRun(g, spec, batch, 2)
		for v := int32(0); int(v) < g.NumNodes(); v++ {
			equalEntryLists(t, fmt.Sprintf("batch=%d node %d", batch, v),
				ref.BottomK(v).Entries(), lists[v])
		}
	}
}

// --- (1+eps)-approximate ADS ---

func TestApproxSetInvariantAndShrinkage(t *testing.T) {
	g := graph.WithRandomWeights(graph.GNP(100, 0.06, false, 91), 1, 8, 92)
	exact, err := BuildSet(g, Options{K: 4, Flavor: sketch.BottomK, Seed: 13}, AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.1, 0.5} {
		set, err := BuildApproxSet(g, 4, 13, eps)
		if err != nil {
			t.Fatal(err)
		}
		// Exclusions must be justified within a compounded slack window:
		// the paper's remark is (1+eps); rejected-insertion chains can
		// stack a few factors, so we pin (1+eps)^3 and report the worst.
		bound := (1 + eps) * (1 + eps) * (1 + eps)
		worst := 1.0
		for v := int32(0); int(v) < g.NumNodes(); v++ {
			if s := CheckApproxSlack(g, set, v, 13); s > worst {
				worst = s
			}
		}
		if worst > bound {
			t.Errorf("eps=%g: worst exclusion slack %.3f above (1+eps)^3 = %.3f", eps, worst, bound)
		}
		// The approximate sketch never holds more entries than... it can
		// hold slightly different sets; sanity: total size within 2x of
		// exact and estimates remain in range.
		if set.TotalEntries() > 2*exact.TotalEntries() {
			t.Errorf("eps=%g: approx entries %d vs exact %d", eps, set.TotalEntries(), exact.TotalEntries())
		}
		est := EstimateNeighborhoodHIP(set.Sketch(0), math.Inf(1))
		n := float64(graph.ReachableCount(g, 0))
		if math.Abs(est-n)/n > 1.0 {
			t.Errorf("eps=%g: full-reach estimate %g vs %g", eps, est, n)
		}
	}
}

func TestApproxSetEpsZeroMatchesExact(t *testing.T) {
	g := graph.WithRandomWeights(graph.GNP(80, 0.07, false, 21), 1, 3, 22)
	exact, err := BuildSet(g, Options{K: 3, Flavor: sketch.BottomK, Seed: 7}, AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	set, err := BuildApproxSet(g, 3, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With eps=0 and no clean-up the approximate sketch is a superset of
	// the exact one (stale entries may linger but valid ones are present).
	for v := int32(0); int(v) < g.NumNodes(); v++ {
		members := map[int32]float64{}
		for _, e := range set.Sketch(v).Entries() {
			members[e.Node] = e.Dist
		}
		for _, e := range exact.BottomK(v).Entries() {
			d, ok := members[e.Node]
			if !ok {
				t.Fatalf("node %d: exact entry %d missing from approx set", v, e.Node)
			}
			if !almostEqual(d, e.Dist) {
				t.Fatalf("node %d entry %d: dist %g vs exact %g", v, e.Node, d, e.Dist)
			}
		}
	}
}

func TestBuildApproxSetErrors(t *testing.T) {
	g := graph.Path(4)
	if _, err := BuildApproxSet(g, 0, 1, 0.1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := BuildApproxSet(g, 2, 1, -0.5); err == nil {
		t.Error("negative eps accepted")
	}
}

// --- distance oracle ---

func TestDistanceUpperBound(t *testing.T) {
	// Forward sketches on an undirected graph: d(a,x)+d(x,b) >= d(a,b),
	// and common low-rank beacons usually make the bound tight-ish.
	g := graph.WithRandomWeights(graph.GNP(150, 0.05, false, 41), 1, 3, 42)
	set, err := BuildSet(g, Options{K: 16, Flavor: sketch.BottomK, Seed: 6}, AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]int32{{0, 50}, {10, 140}, {3, 77}, {25, 25}}
	var boundSum, trueSum float64
	for _, p := range pairs {
		dist := graph.Dijkstra(g, p[0])
		truth := dist[p[1]]
		bound := DistanceUpperBound(set.BottomK(p[0]), set.BottomK(p[1]))
		if bound < truth-1e-9 {
			t.Fatalf("pair %v: bound %g below true distance %g", p, bound, truth)
		}
		if p[0] == p[1] && bound != 0 {
			t.Errorf("self pair bound = %g, want 0", bound)
		}
		boundSum += bound
		trueSum += truth
	}
	// On this well-connected graph the aggregate bound should not be
	// wildly above the truth (beacons are shared).
	if boundSum > 3*trueSum+1 {
		t.Errorf("bounds too loose: sum %g vs true %g", boundSum, trueSum)
	}
}

func TestDistanceUpperBoundDisconnected(t *testing.T) {
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	set, err := BuildSet(g, Options{K: 4, Flavor: sketch.BottomK, Seed: 1}, AlgoDP)
	if err != nil {
		t.Fatal(err)
	}
	if got := DistanceUpperBound(set.BottomK(0), set.BottomK(2)); !math.IsInf(got, 1) {
		t.Errorf("cross-component bound = %g, want +Inf", got)
	}
}
