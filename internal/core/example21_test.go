package core

import (
	"testing"

	"adsketch/internal/graph"
)

// TestPaperExample21 reconstructs Example 2.1 of the paper.  Figure 1's
// exact topology is not fully recoverable from the text, but the example
// pins three sketch contents given the node ranks and the two distance
// sequences:
//
//	forward from a:  a,b,c,d,e,f,g,h at (0,8,9,18,19,20,21,26)
//	reverse to b:    b,a,g,c,h,d,e,f at (0,8,18,30,31,39,40,41)
//
//	forward bottom-1 ADS(a)  = {(0,a),(9,c),(18,d),(26,h)}
//	forward bottom-2 ADS(a)  = bottom-1 ∪ {(8,b),(20,f)}
//	reverse bottom-1 ADS(b)  = {(0,b),(8,a),(30,c),(31,h)}
//
// The rank assignment a=.5 b=.7 c=.4 d=.2 e=.6 f=.3 g=.8 h=.1 (a
// permutation of the figure's printed values) satisfies all three, and we
// verify our construction reproduces them on graphs realizing the two
// distance sequences.
func TestPaperExample21(t *testing.T) {
	const a, b, c, d, e, f, g, h = 0, 1, 2, 3, 4, 5, 6, 7
	ranks := map[int32]float64{a: .5, b: .7, c: .4, d: .2, e: .6, f: .3, g: .8, h: .1}
	rankFn := func(v int32) float64 { return ranks[v] }

	// G1 realizes the forward distances from a.
	gb := graph.NewBuilder(8, true)
	gb.AddWeightedEdge(a, b, 8)
	gb.AddWeightedEdge(a, c, 9)
	gb.AddWeightedEdge(c, d, 9)
	gb.AddWeightedEdge(d, e, 1)
	gb.AddWeightedEdge(e, f, 1)
	gb.AddWeightedEdge(f, g, 1)
	gb.AddWeightedEdge(g, h, 5)
	g1 := gb.Build()
	wantFwd := []float64{0, 8, 9, 18, 19, 20, 21, 26}
	dist := graph.Dijkstra(g1, a)
	for v, w := range wantFwd {
		if dist[v] != w {
			t.Fatalf("G1 distance to %d = %g, want %g", v, dist[v], w)
		}
	}

	check := func(label string, got []Entry, want []Entry) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d entries, want %d\n%v", label, len(got), len(want), got)
		}
		for i := range want {
			if got[i].Node != want[i].Node || got[i].Dist != want[i].Dist {
				t.Fatalf("%s: entry %d = (%d,%g), want (%d,%g)",
					label, i, got[i].Node, got[i].Dist, want[i].Node, want[i].Dist)
			}
		}
	}

	// Forward bottom-1 ADS(a).
	lists := bruteForceRun(g1, runSpec{k: 1, rank: rankFn})
	check("forward bottom-1 ADS(a)", lists[a], []Entry{
		{Node: a, Dist: 0}, {Node: c, Dist: 9}, {Node: d, Dist: 18}, {Node: h, Dist: 26},
	})

	// Forward bottom-2 ADS(a) adds (8,b) and (20,f).
	lists2 := bruteForceRun(g1, runSpec{k: 2, rank: rankFn})
	check("forward bottom-2 ADS(a)", lists2[a], []Entry{
		{Node: a, Dist: 0}, {Node: b, Dist: 8}, {Node: c, Dist: 9},
		{Node: d, Dist: 18}, {Node: f, Dist: 20}, {Node: h, Dist: 26},
	})

	// G2 realizes the reverse distances to b; the reverse ADS of b is the
	// forward ADS of b on the transpose, i.e. bruteForceRun on G2
	// transposed ... equivalently we build the star pointing into b and
	// run on its transpose.
	rb := graph.NewBuilder(8, true)
	rb.AddWeightedEdge(a, b, 8)
	rb.AddWeightedEdge(g, b, 18)
	rb.AddWeightedEdge(c, b, 30)
	rb.AddWeightedEdge(h, b, 31)
	rb.AddWeightedEdge(d, b, 39)
	rb.AddWeightedEdge(e, b, 40)
	rb.AddWeightedEdge(f, b, 41)
	g2 := rb.Build()
	revLists := bruteForceRun(g2.Transpose(), runSpec{k: 1, rank: rankFn})
	check("reverse bottom-1 ADS(b)", revLists[b], []Entry{
		{Node: b, Dist: 0}, {Node: a, Dist: 8}, {Node: c, Dist: 30}, {Node: h, Dist: 31},
	})

	// The fast builders agree with the brute-force reference here too
	// (custom rank functions exercise the runSpec path directly).
	for _, algo := range []struct {
		name string
		run  func(*graph.Graph, runSpec) [][]Entry
	}{
		{"prunedDijkstra", prunedDijkstraRun},
		{"localUpdates", localUpdatesRun},
	} {
		got := algo.run(g1, runSpec{k: 1, rank: rankFn})
		check("algo "+algo.name+" ADS(a)", got[a], lists[a])
	}
}
