package core

import (
	"fmt"

	"adsketch/internal/sketch"
)

// FreezeBottomK assembles externally maintained per-node entry lists into a
// frozen bottom-k sketch set.  lists[v] must hold node v's entries in
// canonical (distance, node ID) order and satisfy the bottom-k inclusion
// condition; the incremental maintainer (package ingest) produces exactly
// such lists.  The frame layout is identical to BuildSet's, so a frozen set
// serializes (WriteSketchSetV3) bit-for-bit like a full rebuild that yields
// the same entries.
//
// Only the bottom-k flavor has a single-segment frame that this raw
// assembly can produce; other flavors return an error.
func FreezeBottomK(o Options, lists [][]Entry) (*Set, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	if o.Flavor != sketch.BottomK {
		return nil, fmt.Errorf("core: FreezeBottomK requires the bottom-k flavor, got %v", o.Flavor)
	}
	s := &Set{frame: freezeFrame(kindUniform, o, 0, 0, 1, 0, lists)}
	for v := 0; v < len(lists); v++ {
		if len(lists[v]) == 0 {
			return nil, fmt.Errorf("core: FreezeBottomK: node %d has no entries (every node holds itself at distance 0)", v)
		}
		if err := s.BottomK(int32(v)).Validate(); err != nil {
			return nil, fmt.Errorf("core: FreezeBottomK: %w", err)
		}
	}
	return s, nil
}
