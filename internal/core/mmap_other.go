//go:build !linux

package core

import (
	"fmt"
	"os"
)

// mmapSupported gates the zero-copy path of MmapSketchFile; without it
// MmapSketchFile degrades to the (still O(1)-allocation) read path.
const mmapSupported = false

func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, fmt.Errorf("core: mmap is not supported on this platform")
}

func munmapFile(b []byte) error { return nil }
