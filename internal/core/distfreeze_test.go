package core

import (
	"bytes"
	"testing"

	"adsketch/internal/graph"
	"adsketch/internal/sketch"
)

// frameLists pulls per-node entry lists (and the parallel β column when
// present) back out of a frozen frame's node range [lo, hi) — the raw
// material a distributed worker would have maintained for that range.
func frameLists(f *Frame, lo, hi int) (lists [][]Entry, betas [][]float64) {
	for v := lo; v < hi; v++ {
		a, b := f.off[v], f.off[v+1]
		var l []Entry
		var bl []float64
		for i := a; i < b; i++ {
			l = append(l, Entry{Node: f.node[i], Dist: f.dist[i], Rank: f.rank[i]})
			if f.beta != nil {
				bl = append(bl, f.beta[i])
			}
		}
		lists = append(lists, l)
		betas = append(betas, bl)
	}
	return lists, betas
}

// TestFreezePartitionByteParity pins the central distributed-build
// invariant: freezing a node range's entry lists directly into a
// partition serializes byte-identically to building the whole set and
// slicing it with SplitSketchSet.
func TestFreezePartitionByteParity(t *testing.T) {
	g := graph.GNP(60, 0.08, false, 7)
	wg := graph.WithRandomWeights(g, 0.25, 4.0, 11)
	beta := make([]float64, 60)
	for i := range beta {
		beta[i] = 0.5 + float64(i%7)
	}

	uni, err := BuildSet(g, Options{K: 8, Flavor: sketch.BottomK, Seed: 42}, AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	wtd, err := BuildWeightedSet(wg, 8, 42, beta)
	if err != nil {
		t.Fatal(err)
	}
	apx, err := BuildApproxSet(g, 8, 42, 0.25)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name  string
		set   AnySet
		frame *Frame
		make  func(index, count int, lists [][]Entry, betas [][]float64) (*Partition, error)
	}{
		{"uniform", uni, uni.frame, func(index, count int, lists [][]Entry, _ [][]float64) (*Partition, error) {
			return FreezePartitionBottomK(uni.Options(), index, count, 60, lists)
		}},
		{"weighted", wtd, wtd.frame, func(index, count int, lists [][]Entry, betas [][]float64) (*Partition, error) {
			return FreezePartitionWeighted(8, ExponentialWeights, index, count, 60, lists, betas)
		}},
		{"approx", apx, apx.frame, func(index, count int, lists [][]Entry, _ [][]float64) (*Partition, error) {
			return FreezePartitionApprox(8, 0.25, index, count, 60, lists)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, count := range []int{1, 3, 4} {
				parts, err := SplitSketchSet(tc.set, count)
				if err != nil {
					t.Fatal(err)
				}
				for index, want := range parts {
					lists, betas := frameLists(tc.frame, int(want.Lo()), int(want.Hi()))
					got, err := tc.make(index, count, lists, betas)
					if err != nil {
						t.Fatalf("count=%d index=%d: %v", count, index, err)
					}
					var wb, gb bytes.Buffer
					if _, err := WritePartitionV3(&wb, want); err != nil {
						t.Fatal(err)
					}
					if _, err := WritePartitionV3(&gb, got); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
						t.Fatalf("count=%d index=%d: frozen partition bytes differ from SplitSketchSet slice (%d vs %d bytes)",
							count, index, gb.Len(), wb.Len())
					}
				}
			}
		})
	}
}

// TestFreezePartitionRejects covers the validation edges: bad ranges,
// wrong list counts, and malformed entry lists.
func TestFreezePartitionRejects(t *testing.T) {
	o := Options{K: 2, Flavor: sketch.BottomK, Seed: 1}
	good := [][]Entry{{{Node: 0, Dist: 0, Rank: 0.5}}}
	if _, err := FreezePartitionBottomK(o, 0, 0, 4, good); err == nil {
		t.Error("count=0 accepted")
	}
	if _, err := FreezePartitionBottomK(o, 2, 2, 4, good); err == nil {
		t.Error("index out of range accepted")
	}
	if _, err := FreezePartitionBottomK(o, 0, 2, 4, good); err == nil {
		t.Error("wrong list count accepted (1 list for a 2-node range)")
	}
	if _, err := FreezePartitionApprox(2, -0.5, 0, 4, 4, good); err == nil {
		t.Error("negative epsilon accepted")
	}
	bad := [][]Entry{{{Node: 3, Dist: 1, Rank: 0.5}}} // node 0's list must start with itself
	if _, err := FreezePartitionApprox(2, 0.1, 0, 4, 4, bad); err == nil {
		t.Error("list not starting with owner accepted")
	}
	if _, err := FreezePartitionWeighted(2, ExponentialWeights, 0, 4, 4, good, [][]float64{}); err == nil {
		t.Error("mismatched beta list count accepted")
	}
}
