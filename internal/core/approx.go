package core

import (
	"fmt"
	"math"

	"adsketch/internal/graph"
	"adsketch/internal/rank"
)

// (1+ε)-approximate ADS (Section 3).  With LOCALUPDATES, adversarial
// weighted graphs can force a linear number of insert-then-supersede
// updates per node; the paper's remedy is to only accept an insertion when
// it beats the threshold with slack ε on distance:
//
//	insert (x, a)  iff  r(x) < kth{ r(y) | y ∈ ADS, d_y <= a(1+ε) },
//
// which bounds the updates per entry by log_{1+ε}(n·w_max/w_min).  The
// paper remarks (without proof) that the result satisfies
// r(v) > kth{entries within (1+ε)d_uv} for every absent v.  Under
// message passing, a rejected insertion is not re-propagated, so the ε
// slack can compound along a path of rejections; the invariant that holds
// robustly is the same statement with slack (1+ε)^c for a small constant
// c depending on the rejection-chain depth.  CheckApproxSlack measures
// the worst observed slack exactly, and the tests pin it; in practice it
// stays very close to the single-(1+ε) the paper states.

// ApproxSet holds (1+ε)-approximate bottom-k sketches, as views over one
// shared columnar frame.
type ApproxSet struct {
	frame *Frame
}

// K returns the sketch parameter.
func (s *ApproxSet) K() int { return s.frame.opts.K }

// Epsilon returns the distance slack.
func (s *ApproxSet) Epsilon() float64 { return s.frame.eps }

// NumNodes returns the number of sketches.
func (s *ApproxSet) NumNodes() int { return s.frame.n }

// Sketch returns node v's approximate sketch view.  The entries satisfy
// the relaxed invariant; HIP weights computed from them estimate
// cardinalities of neighborhoods at distance known up to (1+ε).
func (s *ApproxSet) Sketch(v int32) *ADS { return s.frame.viewADS(int(v)) }

// SketchOf returns node v's sketch through the flavor-agnostic query
// interface shared by all set kinds.
func (s *ApproxSet) SketchOf(v int32) Sketch { return s.frame.viewADS(int(v)) }

// Index returns local node v's columnar HIP query index, sharing the
// frame's index arena.
func (s *ApproxSet) Index(v int32) *HIPIndex { return s.frame.Index(v) }

// TotalEntries sums entry counts.
func (s *ApproxSet) TotalEntries() int { return s.frame.totalEntries() }

// BuildApproxSet computes (1+ε)-approximate bottom-k sketches with the
// LocalUpdates message-passing scheme.
func BuildApproxSet(g *graph.Graph, k int, seed uint64, eps float64) (*ApproxSet, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1")
	}
	if eps < 0 {
		return nil, fmt.Errorf("core: epsilon must be >= 0")
	}
	src := rank.NewSource(seed)
	rk := func(v int32) float64 { return src.Rank(int64(v)) }
	n := g.NumNodes()
	lists := make([]partialADS, n)
	tr := g.Transpose()

	type msg struct {
		to int32
		e  Entry
	}
	var inbox []msg
	send := func(u int32, e Entry) {
		ins, ws := tr.Neighbors(u)
		for i, v := range ins {
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			inbox = append(inbox, msg{to: v, e: Entry{Node: e.Node, Dist: e.Dist + w, Rank: e.Rank}})
		}
	}
	h := newMaxHeap(k) // scratch, reused across insertions
	insert := func(v int32, e Entry) bool {
		p := &lists[v]
		for i := range *p {
			if (*p)[i].Node == e.Node {
				if (*p)[i].Dist <= e.Dist*(1+eps) {
					return false // existing entry is good enough
				}
				copy((*p)[i:], (*p)[i+1:])
				*p = (*p)[:len(*p)-1]
				break
			}
		}
		// Relaxed threshold: compare against the k-th smallest rank among
		// entries within distance a(1+ε).
		limit := e.Dist * (1 + eps)
		h.reset()
		for _, x := range *p {
			if x.Dist <= limit {
				h.offer(x.Rank)
			}
		}
		if h.size() >= k && e.Rank >= h.max() {
			return false
		}
		pos := p.countBefore(e)
		p.insertAt(pos, e)
		return true
	}

	for v := int32(0); int(v) < n; v++ {
		e := Entry{Node: v, Dist: 0, Rank: rk(v)}
		lists[v] = partialADS{e}
		send(v, e)
	}
	for len(inbox) > 0 {
		batch := inbox
		inbox = nil
		for _, m := range batch {
			if insert(m.to, m.e) {
				send(m.to, m.e)
			}
		}
	}

	out := make([][]Entry, n)
	for v := range lists {
		out[v] = lists[v]
	}
	return &ApproxSet{frame: freezeFrame(kindApprox, Options{K: k}, 0, eps, 1, 0, out)}, nil
}

// CheckApproxSlack measures how far node u's approximate sketch is from
// the exact ADS semantics: for every node v absent from ADS(u), it finds
// the smallest slack s >= 1 such that r(v) >= k-th smallest rank among
// entries with distance <= s·d_uv, and returns the maximum over all
// absent v.  A return of 1 means the sketch satisfies the exact-ADS
// exclusion rule; the paper's remark corresponds to a bound of 1+ε.
func CheckApproxSlack(g *graph.Graph, set *ApproxSet, u int32, seed uint64) float64 {
	src := rank.NewSource(seed)
	a := set.Sketch(u)
	entries := a.Entries() // one materialized copy, reused across the scan
	members := make(map[int32]bool, a.Size())
	for _, e := range entries {
		members[e.Node] = true
	}
	worst := 1.0
	for _, nd := range graph.NearestOrder(g, u) {
		if members[nd.Node] || nd.Dist == 0 {
			continue
		}
		r := src.Rank(int64(nd.Node))
		// Find the smallest window within which k entries of smaller rank
		// exist; the needed slack is that window over the true distance.
		h := newMaxHeap(set.K())
		justified := false
		for _, e := range entries { // canonical order = ascending dist
			if e.Rank < r {
				h.offer(e.Rank)
			}
			if h.size() >= set.K() {
				if s := e.Dist / nd.Dist; s > worst {
					worst = s
				}
				justified = true
				break
			}
		}
		if !justified {
			// No window justifies the exclusion at all.
			return math.Inf(1)
		}
	}
	return worst
}
