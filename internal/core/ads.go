// Package core implements All-Distances Sketches (ADS) — the paper's
// primary contribution — in the three flavors of Section 2 (bottom-k,
// k-mins, k-partition), the construction algorithms of Section 3
// (PrunedDijkstra, DP, LocalUpdates), and the estimators built on them:
// the basic MinHash-extraction estimators of Section 4, the Historic
// Inverse Probability (HIP) estimators of Section 5 with full-precision or
// base-b ranks, the permutation estimator of Section 5.4, the size-only
// estimator of Section 8, and the non-uniform node-weight extension of
// Section 9.
//
// # Canonical node order
//
// The paper defines the ADS with respect to unique distances, achieved by
// tie-breaking (Section 2, Appendix B.3).  This package uses the total
// order (distance, node ID): node u precedes node w with respect to source
// v when d_vu < d_vw, or d_vu = d_vw and u < w.  The tie-break is
// independent of the random ranks, which is exactly what the HIP
// conditioning argument (Lemma 5.1) requires; any fixed rank-independent
// tie-break yields the same estimator guarantees.
//
// Φ_<j(v) below always refers to the set of nodes that strictly precede j
// in this order, and the Dijkstra rank π_vj is j's 1-based position in it.
//
// # Storage model
//
// Entries are stored columnarly: a built set owns one Frame (offsets plus
// parallel node/dist/rank columns shared by all sketches), and the sketch
// types here are lightweight views over column slices.  Standalone
// sketches (NewADS + Offer) own private columns that grow in place.
package core

import (
	"fmt"
	"math"
	"sort"

	"adsketch/internal/sketch"
)

// Entry is one ADS record: a sampled node, its distance from the ADS owner,
// and its rank.  For base-b sketches Rank holds the rounded rank.
type Entry struct {
	Node int32
	Dist float64
	Rank float64
}

// before reports whether entry a precedes entry b in the canonical
// (distance, node ID) order.
func (a Entry) before(b Entry) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.Node < b.Node
}

// WeightedEntry is an ADS entry with its HIP adjusted weight a_vj = 1/τ_vj
// (Section 5): an unbiased estimate of j's presence in the distance
// relation of the owner.
type WeightedEntry struct {
	Node   int32
	Dist   float64
	Weight float64
}

// Sketch is the query interface shared by the three ADS flavors.  The HIP
// estimators (and everything built on them) work identically across
// flavors; only the inclusion probabilities differ (Sections 5.1 and 5.2).
type Sketch interface {
	// K is the sketch parameter controlling size/accuracy.
	K() int
	// Flavor identifies the sampling scheme.
	Flavor() sketch.Flavor
	// Size is the number of stored entries.
	Size() int
	// Node is the owner node of the sketch.
	Node() int32
	// EstimateNeighborhood returns the basic (Section 4) estimate of
	// n_d = |N_d(owner)|, obtained by extracting the MinHash sketch of
	// N_d from the ADS and applying the flavor's basic estimator.
	EstimateNeighborhood(d float64) float64
	// HIPEntries returns every stored node with its distance and HIP
	// adjusted weight, ordered by the canonical order.  Summing weights
	// over Dist <= d gives the HIP estimate of n_d; weighting by
	// g(node, dist) gives the Q_g estimator (equation (5)).
	HIPEntries() []WeightedEntry
}

// ADS is a bottom-k All-Distances Sketch (Section 2, equation (4)):
// node j is included iff r(j) < k-th smallest rank among nodes preceding j
// in the canonical order.  Entries are stored in canonical order, as a
// view over columnar storage.
type ADS struct {
	k    int
	node int32
	c    cols
}

var _ Sketch = (*ADS)(nil)

// NewADS returns an empty bottom-k ADS owned by node, with private
// columns.
func NewADS(node int32, k int) *ADS {
	if k < 1 {
		panic("core: k must be >= 1")
	}
	return &ADS{k: k, node: node}
}

// K returns the sketch parameter.
func (a *ADS) K() int { return a.k }

// Flavor returns sketch.BottomK.
func (a *ADS) Flavor() sketch.Flavor { return sketch.BottomK }

// Node returns the owner node.
func (a *ADS) Node() int32 { return a.node }

// Size returns the number of entries.
func (a *ADS) Size() int { return a.c.len() }

// Entries materializes the entries in canonical order.  The sketch
// stores its entries columnarly, so the returned slice is a fresh copy;
// iterate with Size/EntryAt to avoid the allocation.
func (a *ADS) Entries() []Entry { return a.c.entries() }

// EntryAt returns entry i in canonical order.
func (a *ADS) EntryAt(i int) Entry { return a.c.at(i) }

// SizeWithin returns |{entries with Dist <= d}|, the input of the size-only
// estimator (Section 8).
func (a *ADS) SizeWithin(d float64) int {
	return sort.Search(a.c.len(), func(i int) bool { return a.c.dist[i] > d })
}

// thresholdBefore returns the k-th smallest rank among the first m ranks
// (1 if m < k).  Because the ADS contains every node of Φ_<j that passed
// its own threshold, and those are exactly the candidates with the k
// smallest ranks, this equals kth_r(Φ_<j ∩ ADS) from Lemma 5.1.
func thresholdBefore(ranks []float64, m, k int) float64 {
	if m < k {
		return 1
	}
	// Maintain the k smallest among ranks[:m].  m is small in practice
	// (entries are logarithmic); a max-heap over k slots keeps this cheap.
	h := newMaxHeap(k)
	for i := 0; i < m; i++ {
		h.offer(ranks[i])
	}
	return h.max()
}

// AppendInOrder appends an entry that is known to (a) come after all
// current entries in canonical order and (b) satisfy the inclusion
// condition.  Builders that generate candidates in canonical order
// (PrunedDijkstra, DP, the stream builder) use Offer instead, which checks
// the condition; AppendInOrder is the raw primitive.
func (a *ADS) AppendInOrder(e Entry) {
	if n := a.c.len(); n > 0 && !a.c.at(n-1).before(e) {
		panic(fmt.Sprintf("core: AppendInOrder out of order: %+v after %+v", e, a.c.at(n-1)))
	}
	a.c.push(e)
}

// Offer presents a candidate that comes after all current entries in
// canonical order, inserts it if it passes the bottom-k inclusion test
// (rank strictly below the k-th smallest rank so far), and reports whether
// it was inserted.
func (a *ADS) Offer(e Entry) bool {
	if e.Rank >= a.Threshold() {
		return false
	}
	a.AppendInOrder(e)
	return true
}

// Threshold returns the k-th smallest rank over all current entries (1 if
// fewer than k).  A future candidate (which necessarily comes later in
// canonical order) is included iff its rank is strictly below this value.
func (a *ADS) Threshold() float64 {
	return thresholdBefore(a.c.rank, a.c.len(), a.k)
}

// MinHashWithin extracts the bottom-k MinHash sketch of N_d(owner): the k
// smallest ranks among entries with Dist <= d, ascending.  If fewer than k
// nodes are within distance d the returned slice is shorter and the
// neighborhood cardinality is its exact length (Section 2: the ADS
// "contains" a MinHash sketch of every neighborhood).
func (a *ADS) MinHashWithin(d float64) []float64 {
	m := a.SizeWithin(d)
	h := newMaxHeap(a.k)
	for i := 0; i < m; i++ {
		h.offer(a.c.rank[i])
	}
	out := h.sorted()
	return out
}

// EstimateNeighborhood returns the basic bottom-k estimate of n_d
// (Section 4.2): exact count when fewer than k entries are within d,
// otherwise (k-1)/τ_k over the extracted MinHash sketch.
func (a *ADS) EstimateNeighborhood(d float64) float64 {
	mh := a.MinHashWithin(d)
	if len(mh) < a.k {
		return float64(len(mh))
	}
	return sketch.BottomKEstimate(a.k, mh[a.k-1])
}

// HIPEntries returns the entries with their HIP adjusted weights
// (Lemma 5.1): scanning in canonical order, τ_vj is the k-th smallest rank
// among prior entries (1 for the first k), and a_vj = 1/τ_vj.
//
// The same code serves full-precision and base-b sketches: with rounded
// ranks the k-th smallest prior rounded rank is itself a grid value t, and
// P(rounded rank of j < t) = t exactly (Section 5.6), so the inverse
// probability is again 1/threshold.
func (a *ADS) HIPEntries() []WeightedEntry {
	w := hipWeightsBottomK(a.c, a.k, newMaxHeap(a.k), make([]float64, 0, a.c.len()))
	out := make([]WeightedEntry, a.c.len())
	for i := range out {
		out[i] = WeightedEntry{Node: a.c.node[i], Dist: a.c.dist[i], Weight: w[i]}
	}
	return out
}

// Validate checks the structural invariants: canonical order and the
// inclusion condition (each entry's rank strictly below the k-th smallest
// rank among prior entries).  It returns the first violation found.
func (a *ADS) Validate() error {
	h := newMaxHeap(a.k)
	for i, n := 0, a.c.len(); i < n; i++ {
		e := a.c.at(i)
		if i > 0 && !a.c.at(i-1).before(e) {
			return fmt.Errorf("core: ADS(%d) entries %d,%d out of canonical order", a.node, i-1, i)
		}
		if h.size() >= a.k && e.Rank >= h.max() {
			return fmt.Errorf("core: ADS(%d) entry %d (node %d, rank %g) fails inclusion test against threshold %g",
				a.node, i, e.Node, e.Rank, h.max())
		}
		h.offer(e.Rank)
	}
	if a.c.len() > 0 {
		if a.c.node[0] != a.node || a.c.dist[0] != 0 {
			return fmt.Errorf("core: ADS(%d) does not start with the owner at distance 0", a.node)
		}
	}
	return nil
}

// maxHeap keeps the k smallest values offered, exposing their maximum (the
// k-th smallest overall).
type maxHeap struct {
	k int
	v []float64
}

func newMaxHeap(k int) *maxHeap { return &maxHeap{k: k, v: make([]float64, 0, k)} }

// reset empties the heap for reuse, keeping its storage.
func (h *maxHeap) reset() { h.v = h.v[:0] }

func (h *maxHeap) size() int { return len(h.v) }

// max returns the largest retained value (the k-th smallest offered); the
// caller must ensure the heap is non-empty.
func (h *maxHeap) max() float64 { return h.v[0] }

func (h *maxHeap) offer(x float64) {
	if len(h.v) < h.k {
		h.v = append(h.v, x)
		i := len(h.v) - 1
		for i > 0 {
			p := (i - 1) / 2
			if h.v[p] >= h.v[i] {
				break
			}
			h.v[p], h.v[i] = h.v[i], h.v[p]
			i = p
		}
		return
	}
	if x >= h.v[0] {
		return
	}
	h.v[0] = x
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h.v) && h.v[l] > h.v[big] {
			big = l
		}
		if r < len(h.v) && h.v[r] > h.v[big] {
			big = r
		}
		if big == i {
			break
		}
		h.v[i], h.v[big] = h.v[big], h.v[i]
		i = big
	}
}

// sorted returns the retained values in ascending order.
func (h *maxHeap) sorted() []float64 {
	out := append([]float64(nil), h.v...)
	sort.Float64s(out)
	return out
}

// sumWithin sums HIP weights over entries with Dist <= d.
func sumWithin(entries []WeightedEntry, d float64) float64 {
	sum := 0.0
	for _, e := range entries {
		if e.Dist > d {
			break
		}
		sum += e.Weight
	}
	return sum
}

// EstimateNeighborhoodHIP returns the HIP estimate of n_d for any flavor:
// the sum of adjusted weights of entries within distance d (Section 5).
func EstimateNeighborhoodHIP(s Sketch, d float64) float64 {
	return sumWithin(s.HIPEntries(), d)
}

// EstimateQ returns the HIP estimate (equation (5)) of
// Q_g = Σ_{j reachable} g(j, d_vj): the adjusted-weight-weighted sum of g
// over the sketch.  g must be nonnegative for the variance guarantees of
// Corollary 5.3 to apply; unbiasedness holds for any g.
func EstimateQ(s Sketch, g func(node int32, dist float64) float64) float64 {
	sum := 0.0
	for _, e := range s.HIPEntries() {
		sum += e.Weight * g(e.Node, e.Dist)
	}
	return sum
}

// EstimateCentrality returns the HIP estimate (equation (3)) of the
// distance-decaying, metadata-weighted centrality
// C_{α,β} = Σ_j α(d_vj)·β(j), for a non-increasing kernel α and node
// weighting/filter β chosen at query time.
func EstimateCentrality(s Sketch, alpha func(dist float64) float64, beta func(node int32) float64) float64 {
	return EstimateQ(s, func(node int32, dist float64) float64 {
		return alpha(dist) * beta(node)
	})
}

// Closeness kernels from Section 1.

// KernelThreshold returns α(x) = 1 for x <= d, else 0 (neighborhood
// cardinality).
func KernelThreshold(d float64) func(float64) float64 {
	return func(x float64) float64 {
		if x <= d {
			return 1
		}
		return 0
	}
}

// KernelReachability is α(x) ≡ 1 (count of reachable nodes).
func KernelReachability(x float64) float64 { return 1 }

// KernelExponential returns α(x) = 2^{-x} (exponentially attenuated
// centrality, Dangalchev).
func KernelExponential(x float64) float64 { return math.Exp2(-x) }

// KernelHarmonic returns α(x) = 1/x for x > 0 and 0 at x = 0 (harmonic
// centrality).
func KernelHarmonic(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 / x
}

// KernelIdentity returns α(x) = x; with it, EstimateCentrality estimates
// the sum of distances, the inverse of classic closeness centrality.
func KernelIdentity(x float64) float64 { return x }

// UnitBeta is the β ≡ 1 node weighting.
func UnitBeta(int32) float64 { return 1 }
