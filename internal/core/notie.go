package core

import (
	"fmt"
	"sort"
)

// Appendix A: ADS without tie breaking.  When many nodes share a distance
// (e.g. hop distances on unweighted graphs), the canonical tie-broken ADS
// can hold many same-distance entries; the modified definition keeps at
// most the k smallest-ranked nodes per distinct distance:
//
//	u ∈ ADS(v)  ⇔  r(u) <= k-th smallest rank in N_{d_vu}(v),
//
// where N_{d}(v) is the closed neighborhood within distance d (including u
// itself).  The modified sketch is a subset of the tie-broken one per
// distance level.  Its HIP weights are assigned only to nodes that hold
// one of the k-1 smallest ranks in their closed neighborhood; the node
// holding exactly the k-th smallest rank is stored but "not sampled"
// (weight 0).  The resulting estimator has CV at most 1/sqrt(k-2).
type NoTieADS struct {
	k       int
	node    int32
	entries []Entry // sorted by (Dist, Rank)
}

// NewNoTieADS returns an empty modified (no-tie-breaking) bottom-k ADS.
func NewNoTieADS(node int32, k int) *NoTieADS {
	if k < 2 {
		panic("core: NoTieADS requires k >= 2 (the k-th rank holder is unsampled)")
	}
	return &NoTieADS{k: k, node: node}
}

// K returns the sketch parameter.
func (a *NoTieADS) K() int { return a.k }

// Node returns the owner.
func (a *NoTieADS) Node() int32 { return a.node }

// Size returns the number of entries.
func (a *NoTieADS) Size() int { return len(a.entries) }

// Entries returns the entries ordered by (distance, rank).
func (a *NoTieADS) Entries() []Entry { return a.entries }

// OfferGroup presents all nodes at one distance (strictly greater than any
// previous group's), applying the closed-neighborhood inclusion rule to
// the whole group at once.  It returns the number of nodes admitted.
func (a *NoTieADS) OfferGroup(dist float64, nodes []int32, rankOf func(int32) float64) int {
	if n := len(a.entries); n > 0 && a.entries[n-1].Dist >= dist {
		panic(fmt.Sprintf("core: OfferGroup distance %g not increasing", dist))
	}
	// k-th smallest rank in the closed neighborhood = k-th smallest over
	// previous entries (which include all previously-admitted low ranks)
	// and the group's own ranks.
	h := newMaxHeap(a.k)
	for _, e := range a.entries {
		h.offer(e.Rank)
	}
	group := make([]Entry, 0, len(nodes))
	for _, v := range nodes {
		r := rankOf(v)
		h.offer(r)
		group = append(group, Entry{Node: v, Dist: dist, Rank: r})
	}
	kth := 1.0
	if h.size() >= a.k {
		kth = h.max()
	}
	admitted := 0
	sort.Slice(group, func(i, j int) bool { return group[i].Rank < group[j].Rank })
	for _, e := range group {
		if e.Rank <= kth {
			a.entries = append(a.entries, e)
			admitted++
		}
	}
	return admitted
}

// HIPEntries assigns Appendix A adjusted weights: scanning entries in
// (distance, rank) order, an entry u at distance d is "sampled" iff it
// holds one of the k-1 smallest ranks in the closed neighborhood N_d; its
// weight is then the inverse of the k-th smallest rank of N_d (the
// threshold below which u's rank had to fall), else 0.  The k smallest
// ranks of N_d are always present in the sketch, so both quantities are
// computable from the entries alone.
func (a *NoTieADS) HIPEntries() []WeightedEntry {
	out := make([]WeightedEntry, 0, len(a.entries))
	h := newMaxHeap(a.k)
	for gStart := 0; gStart < len(a.entries); {
		gEnd := gStart
		d := a.entries[gStart].Dist
		for gEnd < len(a.entries) && a.entries[gEnd].Dist == d {
			gEnd++
		}
		// Fold the whole group into the closed-neighborhood rank pool.
		for i := gStart; i < gEnd; i++ {
			h.offer(a.entries[i].Rank)
		}
		kth := 1.0
		if h.size() >= a.k {
			kth = h.max()
		}
		for i := gStart; i < gEnd; i++ {
			e := a.entries[i]
			w := 0.0
			if e.Rank < kth || h.size() < a.k {
				w = 1 / kth
			}
			out = append(out, WeightedEntry{Node: e.Node, Dist: e.Dist, Weight: w})
		}
		gStart = gEnd
	}
	return out
}

// EstimateNeighborhood returns the HIP estimate of n_d from the modified
// sketch: the sum of adjusted weights over entries with Dist <= d.
func (a *NoTieADS) EstimateNeighborhood(d float64) float64 {
	sum := 0.0
	for _, e := range a.HIPEntries() {
		if e.Dist > d {
			break
		}
		sum += e.Weight
	}
	return sum
}
