package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"adsketch/internal/rank"
	"adsketch/internal/sketch"
)

func TestMaxHeapKeepsKSmallest(t *testing.T) {
	h := newMaxHeap(3)
	for _, x := range []float64{0.9, 0.2, 0.7, 0.4, 0.05, 0.6} {
		h.offer(x)
	}
	if h.size() != 3 {
		t.Fatalf("size = %d", h.size())
	}
	if h.max() != 0.4 {
		t.Errorf("max = %g, want 0.4 (3rd smallest)", h.max())
	}
	got := h.sorted()
	want := []float64{0.05, 0.2, 0.4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sorted[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestMaxHeapProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		const k = 4
		rng := rank.NewRNG(seed)
		h := newMaxHeap(k)
		var all []float64
		for i := 0; i < n; i++ {
			x := rng.Float64()
			h.offer(x)
			all = append(all, x)
		}
		sort.Float64s(all)
		m := k
		if n < k {
			m = n
		}
		got := h.sorted()
		if len(got) != m {
			return false
		}
		for i := 0; i < m; i++ {
			if got[i] != all[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestADSOfferAndThreshold(t *testing.T) {
	a := NewADS(0, 2)
	if !a.Offer(Entry{Node: 0, Dist: 0, Rank: 0.8}) {
		t.Fatal("owner rejected")
	}
	if a.Threshold() != 1 {
		t.Errorf("threshold with 1 entry = %g, want 1", a.Threshold())
	}
	if !a.Offer(Entry{Node: 1, Dist: 1, Rank: 0.5}) {
		t.Fatal("second entry rejected")
	}
	if a.Threshold() != 0.8 {
		t.Errorf("threshold = %g, want 0.8", a.Threshold())
	}
	if a.Offer(Entry{Node: 2, Dist: 2, Rank: 0.9}) {
		t.Error("rank above threshold accepted")
	}
	if !a.Offer(Entry{Node: 3, Dist: 3, Rank: 0.1}) {
		t.Error("rank below threshold rejected")
	}
	// Threshold is now 2nd smallest of {0.8, 0.5, 0.1} = 0.5.
	if a.Threshold() != 0.5 {
		t.Errorf("threshold = %g, want 0.5", a.Threshold())
	}
	if a.Size() != 3 {
		t.Errorf("size = %d, want 3", a.Size())
	}
	if err := a.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestADSAppendOutOfOrderPanics(t *testing.T) {
	a := NewADS(0, 2)
	a.AppendInOrder(Entry{Node: 0, Dist: 0, Rank: 0.5})
	a.AppendInOrder(Entry{Node: 3, Dist: 2, Rank: 0.4})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order append did not panic")
		}
	}()
	a.AppendInOrder(Entry{Node: 1, Dist: 1, Rank: 0.3})
}

func TestADSCanonicalOrderTieByID(t *testing.T) {
	a := NewADS(0, 4)
	a.AppendInOrder(Entry{Node: 0, Dist: 0, Rank: 0.9})
	a.AppendInOrder(Entry{Node: 2, Dist: 1, Rank: 0.5})
	// Same distance, higher ID: allowed.
	a.AppendInOrder(Entry{Node: 5, Dist: 1, Rank: 0.4})
	if err := a.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestADSValidateDetectsViolations(t *testing.T) {
	a := NewADS(0, 1)
	a.c = colsFromEntries([]Entry{
		{Node: 0, Dist: 0, Rank: 0.5},
		{Node: 1, Dist: 1, Rank: 0.7}, // rank above threshold 0.5
	})
	if a.Validate() == nil {
		t.Error("inclusion violation not detected")
	}
	b := NewADS(0, 9)
	b.c = colsFromEntries([]Entry{
		{Node: 0, Dist: 2, Rank: 0.5},
		{Node: 1, Dist: 1, Rank: 0.3},
	})
	if b.Validate() == nil {
		t.Error("order violation not detected")
	}
	c := NewADS(7, 2)
	c.c = colsFromEntries([]Entry{{Node: 3, Dist: 0, Rank: 0.2}})
	if c.Validate() == nil {
		t.Error("wrong owner first entry not detected")
	}
}

func TestHIPWeightsManual(t *testing.T) {
	// k=2 ADS with hand-picked ranks; the HIP weight of entry i (i>=k) is
	// the inverse of the 2nd-smallest rank among entries before it.
	a := NewADS(0, 2)
	a.c = colsFromEntries([]Entry{
		{Node: 0, Dist: 0, Rank: 0.6},
		{Node: 1, Dist: 1, Rank: 0.8},
		{Node: 2, Dist: 2, Rank: 0.5}, // tau = 0.8  -> w = 1.25
		{Node: 3, Dist: 3, Rank: 0.4}, // tau = 2nd smallest of {.6,.8,.5} = 0.6
		{Node: 4, Dist: 4, Rank: 0.2}, // tau = 2nd of {.6,.8,.5,.4} = 0.5
	})
	if err := a.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	ws := a.HIPEntries()
	want := []float64{1, 1, 1 / 0.8, 1 / 0.6, 1 / 0.5}
	for i, w := range want {
		if math.Abs(ws[i].Weight-w) > 1e-12 {
			t.Errorf("weight[%d] = %g, want %g", i, ws[i].Weight, w)
		}
	}
}

func TestHIPWeightsFirstKAreOne(t *testing.T) {
	src := rank.NewSource(5)
	const k = 8
	b := NewStreamBuilder(0, k)
	for i := int64(0); i < 200; i++ {
		b.Offer(int32(i), float64(i), src.Rank(i))
	}
	ws := b.ADS().HIPEntries()
	for i := 0; i < k && i < len(ws); i++ {
		if ws[i].Weight != 1 {
			t.Errorf("entry %d weight = %g, want 1", i, ws[i].Weight)
		}
	}
	// Weights are non-decreasing in distance (inclusion probability
	// decreases with distance).
	for i := 1; i < len(ws); i++ {
		if ws[i].Weight < ws[i-1].Weight-1e-12 {
			t.Errorf("weights not non-decreasing at %d: %g < %g", i, ws[i].Weight, ws[i-1].Weight)
		}
	}
}

func TestMinHashWithinMatchesDefinition(t *testing.T) {
	src := rank.NewSource(11)
	const k, n = 4, 300
	b := NewStreamBuilder(0, k)
	var ranks []float64
	for i := int64(0); i < n; i++ {
		r := src.Rank(i)
		ranks = append(ranks, r)
		b.Offer(int32(i), float64(i), r)
	}
	ads := b.ADS()
	for _, d := range []float64{0, 3, 10, 50, 299} {
		got := ads.MinHashWithin(d)
		// Brute force: k smallest ranks among first d+1 elements.
		prefix := append([]float64(nil), ranks[:int(d)+1]...)
		sort.Float64s(prefix)
		m := k
		if len(prefix) < k {
			m = len(prefix)
		}
		if len(got) != m {
			t.Fatalf("d=%g: len=%d want %d", d, len(got), m)
		}
		for i := 0; i < m; i++ {
			if got[i] != prefix[i] {
				t.Errorf("d=%g: minhash[%d] = %g, want %g", d, i, got[i], prefix[i])
			}
		}
	}
}

func TestSizeWithin(t *testing.T) {
	a := NewADS(0, 3)
	a.c = colsFromEntries([]Entry{
		{Node: 0, Dist: 0, Rank: 0.9},
		{Node: 1, Dist: 2, Rank: 0.5},
		{Node: 2, Dist: 2.5, Rank: 0.3},
		{Node: 3, Dist: 7, Rank: 0.1},
	})
	cases := []struct {
		d    float64
		want int
	}{{-1, 0}, {0, 1}, {1.9, 1}, {2, 2}, {2.5, 3}, {6.9, 3}, {7, 4}, {100, 4}}
	for _, c := range cases {
		if got := a.SizeWithin(c.d); got != c.want {
			t.Errorf("SizeWithin(%g) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestEstimateQAndCentralityKernels(t *testing.T) {
	a := NewADS(0, 2)
	a.c = colsFromEntries([]Entry{
		{Node: 0, Dist: 0, Rank: 0.6},
		{Node: 1, Dist: 1, Rank: 0.8},
		{Node: 2, Dist: 2, Rank: 0.5},
	})
	// Weights: 1, 1, 1.25.
	got := EstimateQ(a, func(node int32, dist float64) float64 { return dist })
	want := 0.0 + 1*1 + 1.25*2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("EstimateQ = %g, want %g", got, want)
	}
	// Centrality with threshold kernel d<=1 and unit beta: 1 + 1 = 2.
	got = EstimateCentrality(a, KernelThreshold(1), UnitBeta)
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("threshold centrality = %g, want 2", got)
	}
	// Beta filter selecting only node 2.
	got = EstimateCentrality(a, KernelReachability, func(n int32) float64 {
		if n == 2 {
			return 1
		}
		return 0
	})
	if math.Abs(got-1.25) > 1e-12 {
		t.Errorf("filtered centrality = %g, want 1.25", got)
	}
}

func TestKernels(t *testing.T) {
	if KernelThreshold(5)(5) != 1 || KernelThreshold(5)(5.01) != 0 {
		t.Error("threshold kernel boundary wrong")
	}
	if KernelReachability(1e18) != 1 {
		t.Error("reachability kernel should be 1 everywhere")
	}
	if math.Abs(KernelExponential(3)-0.125) > 1e-12 {
		t.Error("exponential kernel wrong")
	}
	if KernelHarmonic(0) != 0 || KernelHarmonic(4) != 0.25 {
		t.Error("harmonic kernel wrong")
	}
	if KernelIdentity(3.5) != 3.5 {
		t.Error("identity kernel wrong")
	}
	if UnitBeta(42) != 1 {
		t.Error("unit beta wrong")
	}
}

func TestStreamBuilderMatchesADS(t *testing.T) {
	// The online HIP count must equal summing the final ADS HIP weights,
	// and the basic estimate must match EstimateNeighborhood at the
	// current max distance.
	src := rank.NewSource(21)
	const k, n = 6, 500
	b := NewStreamBuilder(0, k)
	for i := int64(0); i < n; i++ {
		b.Offer(int32(i), float64(i), src.Rank(i))
		hipFromADS := EstimateNeighborhoodHIP(b.ADS(), float64(i))
		if math.Abs(hipFromADS-b.HIPEstimate()) > 1e-9 {
			t.Fatalf("at %d: online HIP %g != ADS HIP %g", i, b.HIPEstimate(), hipFromADS)
		}
		basicFromADS := b.ADS().EstimateNeighborhood(float64(i))
		if math.Abs(basicFromADS-b.BasicEstimate()) > 1e-9 {
			t.Fatalf("at %d: online basic %g != ADS basic %g", i, b.BasicEstimate(), basicFromADS)
		}
	}
	if b.Seen() != n {
		t.Errorf("Seen = %d", b.Seen())
	}
	if err := b.ADS().Validate(); err != nil {
		t.Error(err)
	}
}

func TestADSExpectedSize(t *testing.T) {
	// Lemma 2.2: E[size] = k + k(H_n - H_k).
	const k, n, runs = 5, 400, 400
	var total float64
	for run := 0; run < runs; run++ {
		src := rank.NewSource(uint64(run)*7919 + 3)
		b := NewStreamBuilder(0, k)
		for i := int64(0); i < n; i++ {
			b.Offer(int32(i), float64(i), src.Rank(i))
		}
		total += float64(b.ADS().Size())
	}
	got := total / runs
	want := float64(k) + float64(k)*(harmonicTest(n)-harmonicTest(k))
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("mean ADS size = %g, want ~%g", got, want)
	}
}

func harmonicTest(n int) float64 {
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

func TestFlavorAccessors(t *testing.T) {
	a := NewADS(3, 4)
	if a.K() != 4 || a.Node() != 3 || a.Flavor() != sketch.BottomK {
		t.Error("ADS accessors wrong")
	}
	m := NewKMinsADS(2, 5)
	if m.K() != 5 || m.Node() != 2 || m.Flavor() != sketch.KMins {
		t.Error("KMins accessors wrong")
	}
	p := NewKPartitionADS(1, 6)
	if p.K() != 6 || p.Node() != 1 || p.Flavor() != sketch.KPartition {
		t.Error("KPartition accessors wrong")
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	for name, fn := range map[string]func(){
		"ADS":        func() { NewADS(0, 0) },
		"KMins":      func() { NewKMinsADS(0, 0) },
		"KPartition": func() { NewKPartitionADS(0, 0) },
		"Weighted":   func() { NewWeightedADS(0, 0) },
		"NoTie":      func() { NewNoTieADS(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with bad k did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMinHashEntriesWithinUnderfull(t *testing.T) {
	src := rank.NewSource(3)
	b := NewStreamBuilder(0, 16)
	for i := int64(0); i < 5; i++ {
		b.Offer(int32(i), float64(i), src.Rank(i))
	}
	es := b.ADS().MinHashEntriesWithin(100)
	if len(es) != 5 {
		t.Errorf("underfull MinHash entries = %d, want 5", len(es))
	}
}

func TestSetBottomKPanicsOnWrongFlavor(t *testing.T) {
	g := graphPathForTest(4)
	set, err := BuildSet(g, Options{K: 2, Flavor: sketch.KMins, Seed: 1}, AlgoDP)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BottomK on k-mins set did not panic")
		}
	}()
	set.BottomK(0)
}

func TestKMinsK1EquivalentToBottom1(t *testing.T) {
	// For k=1 all three flavors coincide (Section 2); check k-mins vs
	// bottom-k HIP estimates on the same stream.
	src := rank.NewSource(77)
	km := NewKMinsADS(0, 1)
	bk := NewStreamBuilder(0, 1)
	for i := int64(0); i < 300; i++ {
		km.OfferAt(0, Entry{Node: int32(i), Dist: float64(i), Rank: src.Rank(i)})
		bk.Offer(int32(i), float64(i), src.Rank(i))
	}
	a := EstimateNeighborhoodHIP(km, 299)
	b := bk.HIPEstimate()
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("k=1 flavors disagree: k-mins %g, bottom-k %g", a, b)
	}
}
