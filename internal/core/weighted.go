package core

import (
	"fmt"
	"math"

	"adsketch/internal/graph"
	"adsketch/internal/rank"
	"adsketch/internal/sketch"
)

// Section 9: non-uniform node weights.  To estimate weighted neighborhood
// cardinalities n_d(v) = Σ_{j: d_vj <= d} β(j) and weighted centralities
// C_{α,β} with the same CV guarantees as the uniform case, the ADS is
// computed over exponentially distributed ranks r(j) ~ Exp(β(j)): nodes
// with larger weight get stochastically smaller ranks and correspondingly
// higher inclusion probabilities.
//
// The HIP machinery carries over with one change: conditioned on the ranks
// of preceding nodes, node j enters the sketch iff its rank is below the
// k-th smallest preceding rank τ, which for an Exp(β_j) rank happens with
// probability 1 - exp(-β_j·τ).  The adjusted weight of an entry is then
// β_j / (1 - exp(-β_j·τ)), an unbiased estimate of j's contribution β_j.

// WeightScheme selects how node weights bias the ranks (Section 9).
type WeightScheme int

// Weighted sampling schemes.
const (
	// ExponentialWeights draws r(i) ~ Exp(β(i)) — weighted sampling "with
	// replacement" semantics; inclusion probability of an entry given
	// threshold τ is 1 - exp(-β·τ).
	ExponentialWeights WeightScheme = iota
	// PriorityWeights uses r(i) = r'(i)/β(i) (Sequential Poisson /
	// priority sampling); inclusion probability given threshold τ is
	// min(1, β·τ).
	PriorityWeights
)

func (w WeightScheme) String() string {
	switch w {
	case ExponentialWeights:
		return "exponential"
	case PriorityWeights:
		return "priority"
	}
	return fmt.Sprintf("WeightScheme(%d)", int(w))
}

// WeightedADS is a bottom-k ADS over weight-biased ranks.  Entries are in
// canonical order; Rank holds the biased rank.
type WeightedADS struct {
	k       int
	node    int32
	scheme  WeightScheme
	entries []Entry
	beta    []float64 // β of each entry, parallel to entries
}

// NewWeightedADS returns an empty weighted bottom-k ADS owned by node,
// using exponential ranks.
func NewWeightedADS(node int32, k int) *WeightedADS {
	if k < 1 {
		panic("core: k must be >= 1")
	}
	return &WeightedADS{k: k, node: node, scheme: ExponentialWeights}
}

var _ Sketch = (*WeightedADS)(nil)

// K returns the sketch parameter.
func (a *WeightedADS) K() int { return a.k }

// Flavor returns sketch.BottomK: a weighted ADS is a bottom-k sketch over
// weight-biased ranks.
func (a *WeightedADS) Flavor() sketch.Flavor { return sketch.BottomK }

// Node returns the owner.
func (a *WeightedADS) Node() int32 { return a.node }

// Size returns the number of entries.
func (a *WeightedADS) Size() int { return len(a.entries) }

// Scheme returns the weighted sampling scheme the ranks were drawn under.
func (a *WeightedADS) Scheme() WeightScheme { return a.scheme }

// EstimateNeighborhood returns the HIP estimate of the weighted
// neighborhood cardinality Σ_{j: d_vj <= d} β(j).  Under weight-biased
// ranks the Section 4 basic estimator does not apply, so the HIP estimate
// is the estimator for this flavor (Section 9); the method exists so
// weighted sketches satisfy the shared Sketch query interface.
func (a *WeightedADS) EstimateNeighborhood(d float64) float64 {
	return a.EstimateNeighborhoodWeight(d)
}

// Entries returns the entries in canonical order.
func (a *WeightedADS) Entries() []Entry { return a.entries }

// Offer presents a candidate in canonical order with its exponential rank
// and weight, inserting it if it passes the bottom-k test.  The supremum
// of the exponential rank range is +Inf, so the first k candidates are
// always accepted.
func (a *WeightedADS) Offer(e Entry, beta float64) bool {
	if beta <= 0 {
		panic(fmt.Sprintf("core: node weight %g must be positive", beta))
	}
	h := newMaxHeap(a.k)
	for _, x := range a.entries {
		h.offer(x.Rank)
	}
	if h.size() >= a.k && e.Rank >= h.max() {
		return false
	}
	a.entries = append(a.entries, e)
	a.beta = append(a.beta, beta)
	return true
}

// HIPEntries returns each entry with its adjusted weight β_j/p_j, where
// p_j is the scheme's inclusion probability against τ_j, the k-th smallest
// biased rank among preceding entries (+Inf for the first k, giving weight
// exactly β_j): 1-exp(-β·τ) for exponential ranks, min(1, β·τ) for
// priority ranks.  Summing weights over Dist <= d estimates the weighted
// neighborhood cardinality.
func (a *WeightedADS) HIPEntries() []WeightedEntry {
	out := make([]WeightedEntry, len(a.entries))
	h := newMaxHeap(a.k)
	for i, e := range a.entries {
		b := a.beta[i]
		w := b
		if h.size() >= a.k {
			tau := h.max()
			var p float64
			if a.scheme == PriorityWeights {
				p = math.Min(1, b*tau)
			} else {
				p = -math.Expm1(-b * tau) // 1 - e^{-βτ}
			}
			w = b / p
		}
		out[i] = WeightedEntry{Node: e.Node, Dist: e.Dist, Weight: w}
		h.offer(e.Rank)
	}
	return out
}

// Validate checks the structural invariants: canonical order, the
// bottom-k inclusion condition over the biased ranks, the owner as first
// entry, and positive finite per-entry weights.  It returns the first
// violation found.
func (a *WeightedADS) Validate() error {
	if len(a.beta) != len(a.entries) {
		return fmt.Errorf("core: WeightedADS(%d) has %d weights for %d entries", a.node, len(a.beta), len(a.entries))
	}
	h := newMaxHeap(a.k)
	for i, e := range a.entries {
		if i > 0 && !a.entries[i-1].before(e) {
			return fmt.Errorf("core: WeightedADS(%d) entries %d,%d out of canonical order", a.node, i-1, i)
		}
		if b := a.beta[i]; !(b > 0) || math.IsInf(b, 1) {
			return fmt.Errorf("core: WeightedADS(%d) entry %d has weight %g, want finite and positive", a.node, i, b)
		}
		if h.size() >= a.k && e.Rank >= h.max() {
			return fmt.Errorf("core: WeightedADS(%d) entry %d (node %d, rank %g) fails inclusion test against threshold %g",
				a.node, i, e.Node, e.Rank, h.max())
		}
		h.offer(e.Rank)
	}
	if len(a.entries) > 0 {
		if a.entries[0].Node != a.node || a.entries[0].Dist != 0 {
			return fmt.Errorf("core: WeightedADS(%d) does not start with the owner at distance 0", a.node)
		}
	}
	return nil
}

// EstimateNeighborhoodWeight returns the HIP estimate of
// Σ_{j: d_vj <= d} β(j).
func (a *WeightedADS) EstimateNeighborhoodWeight(d float64) float64 {
	return sumWithin(a.HIPEntries(), d)
}

// EstimateCentrality returns the HIP estimate of C_α over node weights:
// Σ_j α(d_vj)·β(j) for a non-increasing kernel α.
func (a *WeightedADS) EstimateCentrality(alpha func(float64) float64) float64 {
	sum := 0.0
	for _, e := range a.HIPEntries() {
		sum += e.Weight * alpha(e.Dist)
	}
	return sum
}

// BuildWeightedSet computes the weighted bottom-k ADS of every node using
// PrunedDijkstra with exponential ranks.  beta[v] is the weight of node v
// and must be positive.
func BuildWeightedSet(g *graph.Graph, k int, seed uint64, beta []float64) (*WeightedSet, error) {
	return buildWeighted(g, k, seed, beta, ExponentialWeights)
}

// BuildPriorityWeightedSet is BuildWeightedSet with Sequential Poisson
// (priority) ranks r(i) = r'(i)/β(i) — the Section 9 alternative.
func BuildPriorityWeightedSet(g *graph.Graph, k int, seed uint64, beta []float64) (*WeightedSet, error) {
	return buildWeighted(g, k, seed, beta, PriorityWeights)
}

func buildWeighted(g *graph.Graph, k int, seed uint64, beta []float64, scheme WeightScheme) (*WeightedSet, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1")
	}
	if len(beta) != g.NumNodes() {
		return nil, fmt.Errorf("core: beta has %d weights for %d nodes", len(beta), g.NumNodes())
	}
	for v, b := range beta {
		if b <= 0 {
			return nil, fmt.Errorf("core: beta[%d] = %g, must be positive", v, b)
		}
	}
	src := rank.NewSource(seed)
	rk := func(v int32) float64 { return src.ExpRank(int64(v), beta[v]) }
	if scheme == PriorityWeights {
		rk = func(v int32) float64 { return src.PriorityRank(int64(v), beta[v]) }
	}
	lists := prunedDijkstraRun(g, runSpec{k: k, rank: rk})
	set := &WeightedSet{k: k, sketches: make([]*WeightedADS, g.NumNodes())}
	for v := range lists {
		a := NewWeightedADS(int32(v), k)
		a.scheme = scheme
		a.entries = lists[v]
		a.beta = make([]float64, len(lists[v]))
		for i, e := range lists[v] {
			a.beta[i] = beta[e.Node]
		}
		set.sketches[v] = a
	}
	return set, nil
}

// WeightedSet holds the weighted sketches of all nodes of one graph.
type WeightedSet struct {
	k        int
	sketches []*WeightedADS
}

// K returns the sketch parameter.
func (s *WeightedSet) K() int { return s.k }

// NumNodes returns the number of sketches.
func (s *WeightedSet) NumNodes() int { return len(s.sketches) }

// Sketch returns node v's weighted ADS.
func (s *WeightedSet) Sketch(v int32) *WeightedADS { return s.sketches[v] }

// SketchOf returns node v's sketch through the flavor-agnostic query
// interface shared by all set kinds.
func (s *WeightedSet) SketchOf(v int32) Sketch { return s.sketches[v] }

// TotalEntries returns the summed entry count over all sketches.
func (s *WeightedSet) TotalEntries() int {
	n := 0
	for _, sk := range s.sketches {
		n += sk.Size()
	}
	return n
}

// ExactNeighborhoodWeight computes Σ_{j: d_vj <= d} β(j) exactly (ground
// truth for tests and benchmarks).
func ExactNeighborhoodWeight(g *graph.Graph, v int32, d float64, beta []float64) float64 {
	sum := 0.0
	for _, nd := range graph.NearestOrder(g, v) {
		if nd.Dist > d {
			break
		}
		sum += beta[nd.Node]
	}
	return sum
}
