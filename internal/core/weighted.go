package core

import (
	"fmt"
	"math"

	"adsketch/internal/graph"
	"adsketch/internal/rank"
	"adsketch/internal/sketch"
)

// Section 9: non-uniform node weights.  To estimate weighted neighborhood
// cardinalities n_d(v) = Σ_{j: d_vj <= d} β(j) and weighted centralities
// C_{α,β} with the same CV guarantees as the uniform case, the ADS is
// computed over exponentially distributed ranks r(j) ~ Exp(β(j)): nodes
// with larger weight get stochastically smaller ranks and correspondingly
// higher inclusion probabilities.
//
// The HIP machinery carries over with one change: conditioned on the ranks
// of preceding nodes, node j enters the sketch iff its rank is below the
// k-th smallest preceding rank τ, which for an Exp(β_j) rank happens with
// probability 1 - exp(-β_j·τ).  The adjusted weight of an entry is then
// β_j / (1 - exp(-β_j·τ)), an unbiased estimate of j's contribution β_j.

// WeightScheme selects how node weights bias the ranks (Section 9).
type WeightScheme int

// Weighted sampling schemes.
const (
	// ExponentialWeights draws r(i) ~ Exp(β(i)) — weighted sampling "with
	// replacement" semantics; inclusion probability of an entry given
	// threshold τ is 1 - exp(-β·τ).
	ExponentialWeights WeightScheme = iota
	// PriorityWeights uses r(i) = r'(i)/β(i) (Sequential Poisson /
	// priority sampling); inclusion probability given threshold τ is
	// min(1, β·τ).
	PriorityWeights
)

func (w WeightScheme) String() string {
	switch w {
	case ExponentialWeights:
		return "exponential"
	case PriorityWeights:
		return "priority"
	}
	return fmt.Sprintf("WeightScheme(%d)", int(w))
}

// weightedInclusionProb is the scheme's inclusion probability of a
// weight-β entry against threshold τ.
func weightedInclusionProb(scheme WeightScheme, b, tau float64) float64 {
	if scheme == PriorityWeights {
		return math.Min(1, b*tau)
	}
	return -math.Expm1(-b * tau) // 1 - e^{-βτ}
}

// WeightedADS is a bottom-k ADS over weight-biased ranks.  Entries are in
// canonical order (columnar, like ADS); Rank holds the biased rank.
type WeightedADS struct {
	k      int
	node   int32
	scheme WeightScheme
	c      cols
	beta   []float64 // β of each entry, parallel to the columns
}

// NewWeightedADS returns an empty weighted bottom-k ADS owned by node,
// using exponential ranks.
func NewWeightedADS(node int32, k int) *WeightedADS {
	if k < 1 {
		panic("core: k must be >= 1")
	}
	return &WeightedADS{k: k, node: node, scheme: ExponentialWeights}
}

var _ Sketch = (*WeightedADS)(nil)

// K returns the sketch parameter.
func (a *WeightedADS) K() int { return a.k }

// Flavor returns sketch.BottomK: a weighted ADS is a bottom-k sketch over
// weight-biased ranks.
func (a *WeightedADS) Flavor() sketch.Flavor { return sketch.BottomK }

// Node returns the owner.
func (a *WeightedADS) Node() int32 { return a.node }

// Size returns the number of entries.
func (a *WeightedADS) Size() int { return a.c.len() }

// Scheme returns the weighted sampling scheme the ranks were drawn under.
func (a *WeightedADS) Scheme() WeightScheme { return a.scheme }

// EstimateNeighborhood returns the HIP estimate of the weighted
// neighborhood cardinality Σ_{j: d_vj <= d} β(j).  Under weight-biased
// ranks the Section 4 basic estimator does not apply, so the HIP estimate
// is the estimator for this flavor (Section 9); the method exists so
// weighted sketches satisfy the shared Sketch query interface.
func (a *WeightedADS) EstimateNeighborhood(d float64) float64 {
	return a.EstimateNeighborhoodWeight(d)
}

// Entries materializes the entries in canonical order (a fresh copy; the
// storage is columnar).
func (a *WeightedADS) Entries() []Entry { return a.c.entries() }

// EntryAt returns entry i in canonical order.
func (a *WeightedADS) EntryAt(i int) Entry { return a.c.at(i) }

// Offer presents a candidate in canonical order with its exponential rank
// and weight, inserting it if it passes the bottom-k test.  The supremum
// of the exponential rank range is +Inf, so the first k candidates are
// always accepted.
func (a *WeightedADS) Offer(e Entry, beta float64) bool {
	if beta <= 0 {
		panic(fmt.Sprintf("core: node weight %g must be positive", beta))
	}
	h := newMaxHeap(a.k)
	for _, x := range a.c.rank {
		h.offer(x)
	}
	if h.size() >= a.k && e.Rank >= h.max() {
		return false
	}
	a.c.push(e)
	a.beta = append(a.beta, beta)
	return true
}

// HIPEntries returns each entry with its adjusted weight β_j/p_j, where
// p_j is the scheme's inclusion probability against τ_j, the k-th smallest
// biased rank among preceding entries (+Inf for the first k, giving weight
// exactly β_j): 1-exp(-β·τ) for exponential ranks, min(1, β·τ) for
// priority ranks.  Summing weights over Dist <= d estimates the weighted
// neighborhood cardinality.
func (a *WeightedADS) HIPEntries() []WeightedEntry {
	w := hipWeightsWeighted(a.c, a.beta, a.scheme, a.k, newMaxHeap(a.k), make([]float64, 0, a.c.len()))
	out := make([]WeightedEntry, a.c.len())
	for i := range out {
		out[i] = WeightedEntry{Node: a.c.node[i], Dist: a.c.dist[i], Weight: w[i]}
	}
	return out
}

// Validate checks the structural invariants: canonical order, the
// bottom-k inclusion condition over the biased ranks, the owner as first
// entry, and positive finite per-entry weights.  It returns the first
// violation found.
func (a *WeightedADS) Validate() error {
	if len(a.beta) != a.c.len() {
		return fmt.Errorf("core: WeightedADS(%d) has %d weights for %d entries", a.node, len(a.beta), a.c.len())
	}
	h := newMaxHeap(a.k)
	for i, n := 0, a.c.len(); i < n; i++ {
		e := a.c.at(i)
		if i > 0 && !a.c.at(i-1).before(e) {
			return fmt.Errorf("core: WeightedADS(%d) entries %d,%d out of canonical order", a.node, i-1, i)
		}
		if b := a.beta[i]; !(b > 0) || math.IsInf(b, 1) {
			return fmt.Errorf("core: WeightedADS(%d) entry %d has weight %g, want finite and positive", a.node, i, b)
		}
		if h.size() >= a.k && e.Rank >= h.max() {
			return fmt.Errorf("core: WeightedADS(%d) entry %d (node %d, rank %g) fails inclusion test against threshold %g",
				a.node, i, e.Node, e.Rank, h.max())
		}
		h.offer(e.Rank)
	}
	if a.c.len() > 0 {
		if a.c.node[0] != a.node || a.c.dist[0] != 0 {
			return fmt.Errorf("core: WeightedADS(%d) does not start with the owner at distance 0", a.node)
		}
	}
	return nil
}

// EstimateNeighborhoodWeight returns the HIP estimate of
// Σ_{j: d_vj <= d} β(j).
func (a *WeightedADS) EstimateNeighborhoodWeight(d float64) float64 {
	return sumWithin(a.HIPEntries(), d)
}

// EstimateCentrality returns the HIP estimate of C_α over node weights:
// Σ_j α(d_vj)·β(j) for a non-increasing kernel α.
func (a *WeightedADS) EstimateCentrality(alpha func(float64) float64) float64 {
	sum := 0.0
	for _, e := range a.HIPEntries() {
		sum += e.Weight * alpha(e.Dist)
	}
	return sum
}

// BuildWeightedSet computes the weighted bottom-k ADS of every node using
// PrunedDijkstra with exponential ranks.  beta[v] is the weight of node v
// and must be positive.
func BuildWeightedSet(g *graph.Graph, k int, seed uint64, beta []float64) (*WeightedSet, error) {
	return buildWeighted(g, k, seed, beta, ExponentialWeights)
}

// BuildPriorityWeightedSet is BuildWeightedSet with Sequential Poisson
// (priority) ranks r(i) = r'(i)/β(i) — the Section 9 alternative.
func BuildPriorityWeightedSet(g *graph.Graph, k int, seed uint64, beta []float64) (*WeightedSet, error) {
	return buildWeighted(g, k, seed, beta, PriorityWeights)
}

func buildWeighted(g *graph.Graph, k int, seed uint64, beta []float64, scheme WeightScheme) (*WeightedSet, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1")
	}
	if len(beta) != g.NumNodes() {
		return nil, fmt.Errorf("core: beta has %d weights for %d nodes", len(beta), g.NumNodes())
	}
	for v, b := range beta {
		if b <= 0 {
			return nil, fmt.Errorf("core: beta[%d] = %g, must be positive", v, b)
		}
	}
	src := rank.NewSource(seed)
	rk := func(v int32) float64 { return src.ExpRank(int64(v), beta[v]) }
	if scheme == PriorityWeights {
		rk = func(v int32) float64 { return src.PriorityRank(int64(v), beta[v]) }
	}
	lists := prunedDijkstraRun(g, runSpec{k: k, rank: rk})
	f := freezeFrame(kindWeighted, Options{K: k}, scheme, 0, 1, 0, lists)
	f.beta = make([]float64, len(f.node))
	for i, v := range f.node {
		f.beta[i] = beta[v]
	}
	return &WeightedSet{frame: f}, nil
}

// WeightedSet holds the weighted sketches of all nodes of one graph, as
// views over one shared columnar frame.
type WeightedSet struct {
	frame *Frame
}

// K returns the sketch parameter.
func (s *WeightedSet) K() int { return s.frame.opts.K }

// NumNodes returns the number of sketches.
func (s *WeightedSet) NumNodes() int { return s.frame.n }

// Scheme returns the weighted sampling scheme the set was built under.
func (s *WeightedSet) Scheme() WeightScheme { return s.frame.scheme }

// Sketch returns node v's weighted ADS view.
func (s *WeightedSet) Sketch(v int32) *WeightedADS { return s.frame.viewWeighted(int(v)) }

// SketchOf returns node v's sketch through the flavor-agnostic query
// interface shared by all set kinds.
func (s *WeightedSet) SketchOf(v int32) Sketch { return s.frame.viewWeighted(int(v)) }

// Index returns local node v's columnar HIP query index, sharing the
// frame's index arena.
func (s *WeightedSet) Index(v int32) *HIPIndex { return s.frame.Index(v) }

// TotalEntries returns the summed entry count over all sketches.
func (s *WeightedSet) TotalEntries() int { return s.frame.totalEntries() }

// ExactNeighborhoodWeight computes Σ_{j: d_vj <= d} β(j) exactly (ground
// truth for tests and benchmarks).
func ExactNeighborhoodWeight(g *graph.Graph, v int32, d float64, beta []float64) float64 {
	sum := 0.0
	for _, nd := range graph.NearestOrder(g, v) {
		if nd.Dist > d {
			break
		}
		sum += beta[nd.Node]
	}
	return sum
}
