package core

import (
	"sync"

	"adsketch/internal/sketch"
)

// Frozen columnar sketch storage.  A built sketch set never mutates, so
// instead of one heap object (and one entry slice, and one lazily built
// query index) per node, every set owns a single Frame: an offsets array
// plus parallel entry columns shared by all of its sketches.  The sketch
// types (ADS, WeightedADS, KMinsADS, KPartitionADS) are lightweight views
// over column slices — constructing one allocates a small header, never
// entry data — and the per-node HIP query indexes live in one arena per
// frame, built on first use.  A million-node set is a handful of large
// allocations instead of millions of small ones, splitting a set into
// partitions is offset slicing, and the version-3 codec serializes the
// columns verbatim, so opening a prebuilt file is O(columns) work (and
// zero copies when mmapped).

// cols is one columnar entry list: the node/dist/rank columns of a
// contiguous entry range, in canonical (distance, node ID) order.  A cols
// either views a frame's shared columns (frozen sketches) or owns private
// slices (standalone sketches built incrementally via Offer).
type cols struct {
	node []int32
	dist []float64
	rank []float64
}

func (c cols) len() int { return len(c.node) }

// at returns entry i as a value.
func (c cols) at(i int) Entry {
	return Entry{Node: c.node[i], Dist: c.dist[i], Rank: c.rank[i]}
}

// push appends an entry.  Views into a frame arena are sliced with full
// capacity bounds, so pushing onto one reallocates instead of corrupting
// the shared columns.
func (c *cols) push(e Entry) {
	c.node = append(c.node, e.Node)
	c.dist = append(c.dist, e.Dist)
	c.rank = append(c.rank, e.Rank)
}

// entries materializes the columns as an entry slice.
func (c cols) entries() []Entry {
	out := make([]Entry, len(c.node))
	for i := range out {
		out[i] = c.at(i)
	}
	return out
}

func colsFromEntries(entries []Entry) cols {
	c := cols{
		node: make([]int32, len(entries)),
		dist: make([]float64, len(entries)),
		rank: make([]float64, len(entries)),
	}
	for i, e := range entries {
		c.node[i] = e.Node
		c.dist[i] = e.Dist
		c.rank[i] = e.Rank
	}
	return c
}

// Frame is the frozen columnar storage of one sketch set: segs segments
// per node (1 for bottom-k/weighted/approximate, k for the per-permutation
// and per-bucket lists of k-mins and k-partition), described by an offsets
// array over shared entry columns.  Offsets are absolute positions into
// the columns, so slicing a frame to a node range (partitioning) is a
// re-slice of offsets — no entry moves.  base is the global ID of local
// node 0 (non-zero for partition frames).
type Frame struct {
	kind   uint32 // kindUniform, kindWeighted, kindApprox
	opts   Options
	scheme WeightScheme // weighted sets
	eps    float64      // approximate sets
	segs   int
	n      int
	base   int32
	off    []int64 // len n*segs+1, absolute entry positions
	node   []int32
	dist   []float64
	rank   []float64
	beta   []float64 // weighted sets: β per entry, parallel to the columns

	hipOnce sync.Once
	hip     *hipArena
}

// freezeFrame assembles per-segment entry lists (node-major: segment s of
// node v is lists[v*segs+s]) into one frame.
func freezeFrame(kind uint32, opts Options, scheme WeightScheme, eps float64, segs int, base int32, lists [][]Entry) *Frame {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	f := &Frame{
		kind: kind, opts: opts, scheme: scheme, eps: eps,
		segs: segs, n: len(lists) / segs, base: base,
		off:  make([]int64, len(lists)+1),
		node: make([]int32, total),
		dist: make([]float64, total),
		rank: make([]float64, total),
	}
	pos := 0
	for i, l := range lists {
		f.off[i] = int64(pos)
		for _, e := range l {
			f.node[pos] = e.Node
			f.dist[pos] = e.Dist
			f.rank[pos] = e.Rank
			pos++
		}
	}
	f.off[len(lists)] = int64(pos)
	return f
}

// totalEntries returns the entry count of the frame's own node range
// (the columns may be shared with sibling partition frames).
func (f *Frame) totalEntries() int {
	return int(f.off[len(f.off)-1] - f.off[0])
}

// owner returns the global ID of local node v.
func (f *Frame) owner(local int) int32 { return f.base + int32(local) }

// segAt returns segment s of local node v as a column view.  The slices
// carry full capacity bounds so an (erroneous) append cannot overwrite a
// neighboring sketch.
func (f *Frame) segAt(local, s int) cols {
	lo := f.off[local*f.segs+s]
	hi := f.off[local*f.segs+s+1]
	return cols{
		node: f.node[lo:hi:hi],
		dist: f.dist[lo:hi:hi],
		rank: f.rank[lo:hi:hi],
	}
}

// span returns the absolute entry range of local node v across all its
// segments.
func (f *Frame) span(local int) (lo, hi int64) {
	return f.off[local*f.segs], f.off[(local+1)*f.segs]
}

// viewSketch constructs the flavor-appropriate view of local node v.
func (f *Frame) viewSketch(local int) Sketch {
	if f.kind == kindWeighted {
		return f.viewWeighted(local)
	}
	switch f.opts.Flavor {
	case sketch.KMins:
		a := &KMinsADS{k: f.opts.K, node: f.owner(local), perms: make([]cols, f.opts.K)}
		for h := range a.perms {
			a.perms[h] = f.segAt(local, h)
		}
		return a
	case sketch.KPartition:
		a := &KPartitionADS{k: f.opts.K, node: f.owner(local), buckets: make([]cols, f.opts.K)}
		for b := range a.buckets {
			a.buckets[b] = f.segAt(local, b)
		}
		return a
	default:
		return f.viewADS(local)
	}
}

func (f *Frame) viewADS(local int) *ADS {
	return &ADS{k: f.opts.K, node: f.owner(local), c: f.segAt(local, 0)}
}

func (f *Frame) viewWeighted(local int) *WeightedADS {
	lo, hi := f.span(local)
	return &WeightedADS{
		k: f.opts.K, node: f.owner(local), scheme: f.scheme,
		c:    f.segAt(local, 0),
		beta: f.beta[lo:hi:hi],
	}
}

// slice returns the sub-frame of local nodes [lo, hi): re-sliced offsets
// over the same shared columns.  No entry data is allocated or copied.
func (f *Frame) slice(lo, hi int) *Frame {
	return &Frame{
		kind: f.kind, opts: f.opts, scheme: f.scheme, eps: f.eps,
		segs: f.segs, n: hi - lo, base: f.base + int32(lo),
		off:  f.off[lo*f.segs : hi*f.segs+1 : hi*f.segs+1],
		node: f.node, dist: f.dist, rank: f.rank, beta: f.beta,
	}
}

// mergeFrames concatenates frames (already validated to be a consistent,
// ordered split) into one whole frame with compact columns.
func mergeFrames(frames []*Frame) *Frame {
	first := frames[0]
	total, nodes := 0, 0
	for _, f := range frames {
		total += f.totalEntries()
		nodes += f.n
	}
	out := &Frame{
		kind: first.kind, opts: first.opts, scheme: first.scheme, eps: first.eps,
		segs: first.segs, n: nodes, base: 0,
		off:  make([]int64, nodes*first.segs+1),
		node: make([]int32, total),
		dist: make([]float64, total),
		rank: make([]float64, total),
	}
	if first.kind == kindWeighted {
		out.beta = make([]float64, total)
	}
	pos, seg := int64(0), 0
	for _, f := range frames {
		flo, fhi := f.off[0], f.off[len(f.off)-1]
		copy(out.node[pos:], f.node[flo:fhi])
		copy(out.dist[pos:], f.dist[flo:fhi])
		copy(out.rank[pos:], f.rank[flo:fhi])
		if out.beta != nil {
			copy(out.beta[pos:], f.beta[flo:fhi])
		}
		for i := 0; i < f.n*f.segs; i++ {
			out.off[seg] = pos + (f.off[i] - flo)
			seg++
		}
		pos += fhi - flo
	}
	out.off[seg] = pos
	return out
}

// hipArena is a frame's columnar HIP query index: every node's index is a
// view over these shared columns, so serving a million nodes costs a
// handful of arena allocations instead of five slices per node.  It
// realizes the compression remark of the paper's Section 5 — per unique
// distance, the cumulative adjusted weight (plus the weight·distance and
// weight/distance sums the closeness and harmonic readouts need).
type hipArena struct {
	views []HIPIndex
	// HIP entries in canonical order.  For single-segment frames the
	// node/dist columns alias the frame's; for k-mins / k-partition they
	// hold the per-node cursor merge of the segments.
	hnode []int32
	hdist []float64
	hw    []float64
	// per-unique-distance prefix-sum columns
	udist []float64
	cum   []float64
	cumD  []float64
	cumH  []float64
}

// Index returns the columnar HIP query index of local node v, building
// the frame's shared index arena on first use.  The returned index is an
// immutable view, safe to share between goroutines.
func (f *Frame) Index(local int32) *HIPIndex {
	f.hipOnce.Do(f.buildHIP)
	return &f.hip.views[local]
}

// buildHIP fills the arena.  All accumulations scan entries in canonical
// order with the same operations as the per-sketch HIP estimators, so
// every readout is bit-identical to NewHIPIndex over the corresponding
// view.
func (f *Frame) buildHIP() {
	e := f.totalEntries()
	a := &hipArena{
		views: make([]HIPIndex, f.n),
		hw:    make([]float64, 0, e),
		udist: make([]float64, 0, e),
		cum:   make([]float64, 0, e),
		cumD:  make([]float64, 0, e),
		cumH:  make([]float64, 0, e),
	}
	single := f.segs == 1
	if !single {
		a.hnode = make([]int32, 0, e)
		a.hdist = make([]float64, 0, e)
	}
	h := newMaxHeap(f.opts.K)
	for v := 0; v < f.n; v++ {
		hlo, ulo := len(a.hw), len(a.udist)
		if single {
			c := f.segAt(v, 0)
			h.reset()
			switch f.kind {
			case kindWeighted:
				blo, bhi := f.span(v)
				a.hw = hipWeightsWeighted(c, f.beta[blo:bhi], f.scheme, f.opts.K, h, a.hw)
			default:
				a.hw = hipWeightsBottomK(c, f.opts.K, h, a.hw)
			}
		} else {
			emit := func(node int32, dist, w float64) {
				a.hnode = append(a.hnode, node)
				a.hdist = append(a.hdist, dist)
				a.hw = append(a.hw, w)
			}
			if f.opts.Flavor == sketch.KMins {
				hipMergeKMins(f.segViews(v), emit)
			} else {
				hipMergeKPartition(f.segViews(v), emit)
			}
		}
		// Prefix sums per unique distance, in canonical order.
		var hd []float64
		if single {
			lo, hi := f.span(v)
			hd = f.dist[lo:hi]
		} else {
			hd = a.hdist[hlo:]
		}
		hw := a.hw[hlo:]
		total, totalD, totalH := 0.0, 0.0, 0.0
		for i := 0; i < len(hd); {
			d := hd[i]
			for i < len(hd) && hd[i] == d {
				total += hw[i]
				totalD += hw[i] * hd[i]
				totalH += hw[i] * KernelHarmonic(hd[i])
				i++
			}
			a.udist = append(a.udist, d)
			a.cum = append(a.cum, total)
			a.cumD = append(a.cumD, totalD)
			a.cumH = append(a.cumH, totalH)
		}
		a.views[v] = HIPIndex{
			ew:    a.hw[hlo:len(a.hw):len(a.hw)],
			dists: a.udist[ulo:len(a.udist):len(a.udist)],
			cum:   a.cum[ulo:len(a.cum):len(a.cum)],
			cumD:  a.cumD[ulo:len(a.cumD):len(a.cumD)],
			cumH:  a.cumH[ulo:len(a.cumH):len(a.cumH)],
		}
		if single {
			lo, hi := f.span(v)
			a.views[v].enode = f.node[lo:hi:hi]
			a.views[v].edist = f.dist[lo:hi:hi]
		} else {
			a.views[v].enode = a.hnode[hlo:len(a.hnode):len(a.hnode)]
			a.views[v].edist = a.hdist[hlo:len(a.hdist):len(a.hdist)]
		}
	}
	f.hip = a
}

// segViews returns the per-segment column views of local node v.
func (f *Frame) segViews(local int) []cols {
	segs := make([]cols, f.segs)
	for s := range segs {
		segs[s] = f.segAt(local, s)
	}
	return segs
}

// hipWeightsBottomK appends the HIP adjusted weights of a bottom-k entry
// list (Lemma 5.1: 1/τ with τ the k-th smallest preceding rank) to out.
// h is caller-provided scratch, reset before use.
func hipWeightsBottomK(c cols, k int, h *maxHeap, out []float64) []float64 {
	h.reset()
	for i := 0; i < len(c.rank); i++ {
		tau := 1.0
		if h.size() >= k {
			tau = h.max()
		}
		out = append(out, 1/tau)
		h.offer(c.rank[i])
	}
	return out
}

// hipWeightsWeighted appends the Section 9 adjusted weights β/p (p the
// scheme's inclusion probability against the k-th smallest preceding
// biased rank) to out.
func hipWeightsWeighted(c cols, beta []float64, scheme WeightScheme, k int, h *maxHeap, out []float64) []float64 {
	h.reset()
	for i := 0; i < len(c.rank); i++ {
		b := beta[i]
		w := b
		if h.size() >= k {
			tau := h.max()
			w = b / weightedInclusionProb(scheme, b, tau)
		}
		out = append(out, w)
		h.offer(c.rank[i])
	}
	return out
}
