package core

import (
	"runtime"
	"sort"
	"sync"

	"adsketch/internal/graph"
)

// prunedDijkstraParallelRun is the Appendix B.4 parallelization of
// Algorithm 1: candidates, sorted by rank, are processed in batches; the
// Dijkstras of one batch run concurrently, pruning only against entries
// from earlier batches (strictly smaller ranks), which prunes less than
// the sequential algorithm but never incorrectly.  When a batch finishes,
// its buffered candidate insertions are applied per node in (rank,
// canonical) order with the sequential builder's inclusion test;
// over-generated candidates are rejected there, so the result is
// identical to the sequential construction.
//
// Correctness sketch: a batch candidate that belongs to the final ADS of v
// is never pruned on its way to v (its blockers would also block it at v);
// a candidate that reaches v but does not belong is rejected at
// reconciliation, which replays exactly the rank-order recursion the
// sequential builder performs (candidates missing because their traversal
// was pruned are ones the recursion would reject anyway).  The batch
// depth trades pruning efficiency for parallelism: each batch member's
// traversal misses at most batchSize-1 ranks of pruning state.
type candidateInsert struct {
	v int32
	e Entry
}

func prunedDijkstraParallelRun(g *graph.Graph, s runSpec, batchSize, workers int) [][]Entry {
	n := g.NumNodes()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if batchSize <= 0 {
		batchSize = 4 * workers
	}
	lists := make([]partialADS, n)
	cands := make([]int32, 0, n)
	for v := int32(0); int(v) < n; v++ {
		if s.candidate(v) {
			cands = append(cands, v)
		}
	}
	ranks := make([]float64, n)
	for _, v := range cands {
		ranks[v] = s.rank(v)
	}
	sort.Slice(cands, func(i, j int) bool {
		if ranks[cands[i]] != ranks[cands[j]] {
			return ranks[cands[i]] < ranks[cands[j]]
		}
		return cands[i] < cands[j]
	})
	tr := g.Transpose()

	visitors := make([]*graph.Visitor, workers)
	for w := range visitors {
		visitors[w] = graph.NewVisitor(tr)
	}

	for start := 0; start < len(cands); {
		end := start + batchSize
		if end > len(cands) {
			end = len(cands)
		}
		// Keep equal-rank groups inside one batch so that pre-batch
		// entries always have strictly smaller ranks.
		for end < len(cands) && ranks[cands[end]] == ranks[cands[end-1]] {
			end++
		}
		batch := cands[start:end]
		start = end
		buffers := make([][]candidateInsert, workers)
		var wg sync.WaitGroup
		next := make(chan int32)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				vis := visitors[w]
				for u := range next {
					ru := ranks[u]
					vis.Run(u, func(v int32, d float64) bool {
						e := Entry{Node: u, Dist: d, Rank: ru}
						if lists[v].countBefore(e) >= s.k {
							return false
						}
						buffers[w] = append(buffers[w], candidateInsert{v: v, e: e})
						return true
					})
				}
			}(w)
		}
		for _, u := range batch {
			next <- u
		}
		close(next)
		wg.Wait()

		// Reconcile: per node, apply the batch candidates in (rank,
		// canonical) order.  Every already-present entry then has rank <=
		// the candidate's (strictly smaller, except same-rank candidates
		// applied earlier in canonical order), so the sequential builder's
		// test applies unchanged: insert iff fewer than k entries precede
		// the candidate canonically.
		var all []candidateInsert
		for _, b := range buffers {
			all = append(all, b...)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].v != all[j].v {
				return all[i].v < all[j].v
			}
			if all[i].e.Rank != all[j].e.Rank {
				return all[i].e.Rank < all[j].e.Rank
			}
			return all[i].e.before(all[j].e)
		})
		for _, c := range all {
			if pos := lists[c.v].countBefore(c.e); pos < s.k {
				lists[c.v].insertAt(pos, c.e)
			}
		}
	}

	out := make([][]Entry, n)
	for v := range lists {
		out[v] = lists[v]
	}
	return out
}
