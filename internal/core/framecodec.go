package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync/atomic"
	"unsafe"

	"adsketch/internal/sketch"
)

// Version-3 sketch files: the on-disk layout is the in-memory frame
// layout.  After a fixed little-endian header come the raw columns —
// offsets, nodes, dists, ranks (and betas for weighted sets) — each
// padded to 8-byte alignment:
//
//	magic "ADSK" | version u32 = 3 | kind u32 | flags u32 |
//	[kind 3 only: index u32 | count u32 | lo u32 | hi u32 |
//	              total u32 | innerKind u32] |
//	k u32 | flavor u32 | seed u64 | baseB f64 | scheme u32 | segs u32 |
//	eps f64 | numNodes u64 | numEntries u64 | reserved u64 |
//	offsets (numNodes*segs+1)×i64 | nodes numEntries×i32 | pad |
//	dists numEntries×f64 | ranks numEntries×f64 |
//	[betas numEntries×f64, when flags bit 0 is set]
//
// Encoding is therefore near-memcpy, and decoding a trusted file is
// O(columns): validate the header and the offsets monotonicity, then view
// the columns in place.  OpenSketchFile reads the file once and performs
// O(1) allocations per set; MmapSketchFile maps it (on linux) so even the
// read is deferred to page faults — a worker serving a prebuilt shard
// file starts in microseconds.  Files written by versions 1 and 2 remain
// readable everywhere and are converted to frames on load.

// EncodeVersionV3 is the columnar sketch file format version written by
// WriteSketchSetV3 / WritePartitionV3 and opened zero-copy by
// OpenSketchFile / MmapSketchFile.
const EncodeVersionV3 = frameEncodeVersion

const (
	frameEncodeVersion = 3
	framePreambleSize  = 16 // magic, version, kind, flags
	framePartHdrSize   = 24 // index, count, lo, hi, total, innerKind
	frameHdrSize       = 64 // k .. reserved

	frameFlagBeta = 1 << 0
)

// nativeLittleEndian reports whether the host stores integers the way the
// format does; when false the zero-copy column views fall back to a
// decoding copy.
var nativeLittleEndian = func() bool {
	//adsvet:ignore wireformat byte-order probe comparing the host order against LE; all wire writes go through binary.LittleEndian
	return binary.NativeEndian.Uint16([]byte{0x34, 0x12}) == 0x1234
}()

// frameHdr is the parsed fixed-size portion of a version-3 file.
type frameHdr struct {
	kind  uint32
	flags uint32
	// partition envelope (kind 3 only)
	index, count, lo, hi, total, innerKind uint32
	// frame fields
	k, flavor     uint32
	seed          uint64
	baseB         float64
	scheme, segs  uint32
	eps           float64
	n, numEntries uint64
}

// partitioned reports whether the file carries the partition envelope.
func (h *frameHdr) partitioned() bool { return h.kind == kindPartition }

// setKind returns the kind of the stored set (the inner kind for
// partition files).
func (h *frameHdr) setKind() uint32 {
	if h.partitioned() {
		return h.innerKind
	}
	return h.kind
}

// headerSize returns the byte length of everything before the offsets
// column.
func (h *frameHdr) headerSize() int64 {
	s := int64(framePreambleSize + frameHdrSize)
	if h.partitioned() {
		s += framePartHdrSize
	}
	return s
}

// numSegs returns the offsets-array segment count.
func (h *frameHdr) numSegs() int64 { return int64(h.n) * int64(h.segs) }

// bodySize returns the total byte length of the columns.
func (h *frameHdr) bodySize() int64 {
	e := int64(h.numEntries)
	s := (h.numSegs()+1)*8 + pad8(e*4) + e*8 + e*8
	if h.flags&frameFlagBeta != 0 {
		s += e * 8
	}
	return s
}

func pad8(n int64) int64 { return (n + 7) &^ 7 }

// validate checks every header field against the format's invariants,
// so a corrupted file errors out before any column is touched.
func (h *frameHdr) validate() error {
	if h.flags&^uint32(frameFlagBeta) != 0 {
		return fmt.Errorf("core: sketch file has unknown flags %#x", h.flags)
	}
	switch h.setKind() {
	case kindUniform, kindWeighted, kindApprox:
	case kindPartition:
		return fmt.Errorf("core: sketch partitions cannot nest")
	default:
		return fmt.Errorf("core: sketch file has unknown kind %d", h.setKind())
	}
	if h.partitioned() {
		switch {
		case h.count < 1 || h.count > maxCodecPartitions:
			return fmt.Errorf("core: implausible partition count %d", h.count)
		case h.index >= h.count:
			return fmt.Errorf("core: partition index %d out of range [0, %d)", h.index, h.count)
		case h.total > 1<<30:
			return fmt.Errorf("core: implausible node count %d", h.total)
		case h.lo > h.hi || h.hi > h.total:
			return fmt.Errorf("core: partition node range [%d, %d) outside [0, %d)", h.lo, h.hi, h.total)
		}
		if uint64(h.hi-h.lo) != h.n {
			return fmt.Errorf("core: partition claims nodes [%d, %d) but holds %d sketches", h.lo, h.hi, h.n)
		}
	}
	if h.k < 1 || h.k > maxCodecK {
		return fmt.Errorf("core: implausible sketch parameter k=%d", h.k)
	}
	if h.n > 1<<30 {
		return fmt.Errorf("core: implausible node count %d", h.n)
	}
	wantSegs := uint32(1)
	switch h.setKind() {
	case kindUniform:
		switch sketch.Flavor(h.flavor) {
		case sketch.BottomK:
		case sketch.KMins, sketch.KPartition:
			wantSegs = h.k
		default:
			return fmt.Errorf("core: sketch file has unknown flavor %d", h.flavor)
		}
		if h.baseB != 0 && !(h.baseB > 1) {
			return fmt.Errorf("core: sketch file has invalid base %g", h.baseB)
		}
	case kindWeighted:
		if h.scheme != uint32(ExponentialWeights) && h.scheme != uint32(PriorityWeights) {
			return fmt.Errorf("core: sketch file has unknown weight scheme %d", h.scheme)
		}
	case kindApprox:
		if h.eps < 0 || math.IsNaN(h.eps) || math.IsInf(h.eps, 1) {
			return fmt.Errorf("core: sketch file has invalid epsilon %g", h.eps)
		}
	}
	if h.segs != wantSegs {
		return fmt.Errorf("core: sketch file claims %d segments per node, want %d", h.segs, wantSegs)
	}
	hasBeta := h.flags&frameFlagBeta != 0
	if hasBeta != (h.setKind() == kindWeighted) {
		return fmt.Errorf("core: sketch file beta column mismatch (kind %d, flags %#x)", h.setKind(), h.flags)
	}
	if h.numEntries > 1<<40 {
		return fmt.Errorf("core: implausible entry count %d", h.numEntries)
	}
	return nil
}

// headerOf extracts the version-3 header of a frame (and optional
// partition envelope) for writing.
func headerOf(f *Frame, part *Partition) frameHdr {
	h := frameHdr{
		kind:       f.kind,
		k:          uint32(f.opts.K),
		flavor:     uint32(f.opts.Flavor),
		seed:       f.opts.Seed,
		baseB:      f.opts.BaseB,
		scheme:     uint32(f.scheme),
		segs:       uint32(f.segs),
		eps:        f.eps,
		n:          uint64(f.n),
		numEntries: uint64(f.totalEntries()),
	}
	if f.kind == kindWeighted {
		h.flags |= frameFlagBeta
	}
	if part != nil {
		h.innerKind = f.kind
		h.kind = kindPartition
		h.index = uint32(part.Index())
		h.count = uint32(part.Count())
		h.lo = uint32(part.Lo())
		h.hi = uint32(part.Hi())
		h.total = uint32(part.TotalNodes())
	}
	return h
}

// appendHeader renders the header (preamble through reserved field).
func (h *frameHdr) appendHeader(buf []byte) []byte {
	le := binary.LittleEndian
	buf = append(buf, encodeMagic...)
	buf = le.AppendUint32(buf, frameEncodeVersion)
	buf = le.AppendUint32(buf, h.kind)
	buf = le.AppendUint32(buf, h.flags)
	if h.partitioned() {
		buf = le.AppendUint32(buf, h.index)
		buf = le.AppendUint32(buf, h.count)
		buf = le.AppendUint32(buf, h.lo)
		buf = le.AppendUint32(buf, h.hi)
		buf = le.AppendUint32(buf, h.total)
		buf = le.AppendUint32(buf, h.innerKind)
	}
	buf = le.AppendUint32(buf, h.k)
	buf = le.AppendUint32(buf, h.flavor)
	buf = le.AppendUint64(buf, h.seed)
	buf = le.AppendUint64(buf, math.Float64bits(h.baseB))
	buf = le.AppendUint32(buf, h.scheme)
	buf = le.AppendUint32(buf, h.segs)
	buf = le.AppendUint64(buf, math.Float64bits(h.eps))
	buf = le.AppendUint64(buf, h.n)
	buf = le.AppendUint64(buf, h.numEntries)
	buf = le.AppendUint64(buf, 0) // reserved
	return buf
}

// writeFrameV3 writes a frame (and optional partition envelope) in the
// version-3 format.  On little-endian hosts every column is one Write of
// the slice's underlying bytes — near-memcpy.
func writeFrameV3(w io.Writer, f *Frame, part *Partition) (int64, error) {
	h := headerOf(f, part)
	cw := &countingWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	if _, err := bw.Write(h.appendHeader(make([]byte, 0, h.headerSize()))); err != nil {
		return cw.n, err
	}
	// Offsets are rebased to 0 so a sliced partition frame round-trips to
	// the same bytes as an independently loaded one.
	base := f.off[0]
	e := f.totalEntries()
	var scratch []byte
	writeI64s := func(vals []int64, rebase int64) error {
		if nativeLittleEndian && rebase == 0 {
			return writeRaw(bw, i64Bytes(vals))
		}
		buf := growBuf(&scratch, len(vals)*8)
		for i, v := range vals {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(v-rebase))
		}
		return writeRaw(bw, buf)
	}
	writeF64s := func(vals []float64) error {
		if nativeLittleEndian {
			return writeRaw(bw, f64Bytes(vals))
		}
		buf := growBuf(&scratch, len(vals)*8)
		for i, v := range vals {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		return writeRaw(bw, buf)
	}
	writeI32s := func(vals []int32) error {
		if nativeLittleEndian {
			if err := writeRaw(bw, i32Bytes(vals)); err != nil {
				return err
			}
		} else {
			buf := growBuf(&scratch, len(vals)*4)
			for i, v := range vals {
				binary.LittleEndian.PutUint32(buf[i*4:], uint32(v))
			}
			if err := writeRaw(bw, buf); err != nil {
				return err
			}
		}
		// pad to 8-byte alignment
		if pad := pad8(int64(len(vals))*4) - int64(len(vals))*4; pad > 0 {
			var zero [8]byte
			return writeRaw(bw, zero[:pad])
		}
		return nil
	}
	if err := writeI64s(f.off, base); err != nil {
		return cw.n, err
	}
	if err := writeI32s(f.node[base : base+int64(e)]); err != nil {
		return cw.n, err
	}
	if err := writeF64s(f.dist[base : base+int64(e)]); err != nil {
		return cw.n, err
	}
	if err := writeF64s(f.rank[base : base+int64(e)]); err != nil {
		return cw.n, err
	}
	if h.flags&frameFlagBeta != 0 {
		if err := writeF64s(f.beta[base : base+int64(e)]); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

func writeRaw(bw *bufio.Writer, b []byte) error {
	_, err := bw.Write(b)
	return err
}

// WriteSketchSetV3 serializes a whole sketch set in the version-3
// columnar format.  The estimates computed from the reloaded set are
// bit-for-bit those of the original.
func WriteSketchSetV3(w io.Writer, s AnySet) (int64, error) {
	f, err := frameOf(s)
	if err != nil {
		return 0, err
	}
	return writeFrameV3(w, f, nil)
}

// WritePartitionV3 serializes one partition in the version-3 columnar
// format (the partition envelope followed by the frame columns) — the
// shard file an mmap-serving worker opens.
func WritePartitionV3(w io.Writer, p *Partition) (int64, error) {
	f, err := frameOf(p.Set())
	if err != nil {
		return 0, err
	}
	return writeFrameV3(w, f, p)
}

// Raw byte views of column slices, used on little-endian hosts where the
// in-memory representation equals the wire representation.

func i64Bytes(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

func f64Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

func i32Bytes(v []int32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
}

// Typed views of raw bytes — the zero-copy direction.  Callers must have
// bounds-checked n against len(b); alignment is verified (mmap bases are
// page-aligned and large heap buffers are 8-aligned, but a misaligned
// source falls back to copying).

func aligned8(b []byte) bool {
	return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%8 == 0
}

func viewI64s(b []byte, n int64) []int64 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
}

func viewF64s(b []byte, n int64) []float64 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
}

func viewI32s(b []byte, n int64) []int32 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
}

// parseFrameHdr parses and validates the fixed header of a version-3
// file.  data starts at the kind field (magic and version already
// consumed); it returns the header and the number of header bytes
// consumed from data.
func parseFrameHdr(data []byte) (frameHdr, int, error) {
	le := binary.LittleEndian
	var h frameHdr
	if len(data) < 8 {
		return h, 0, fmt.Errorf("core: truncated sketch file header")
	}
	h.kind = le.Uint32(data)
	h.flags = le.Uint32(data[4:])
	pos := 8
	if h.kind == kindPartition {
		if len(data) < pos+framePartHdrSize {
			return h, 0, fmt.Errorf("core: truncated partition header")
		}
		h.index = le.Uint32(data[pos:])
		h.count = le.Uint32(data[pos+4:])
		h.lo = le.Uint32(data[pos+8:])
		h.hi = le.Uint32(data[pos+12:])
		h.total = le.Uint32(data[pos+16:])
		h.innerKind = le.Uint32(data[pos+20:])
		pos += framePartHdrSize
	}
	if len(data) < pos+frameHdrSize {
		return h, 0, fmt.Errorf("core: truncated sketch file header")
	}
	h.k = le.Uint32(data[pos:])
	h.flavor = le.Uint32(data[pos+4:])
	h.seed = le.Uint64(data[pos+8:])
	h.baseB = math.Float64frombits(le.Uint64(data[pos+16:]))
	h.scheme = le.Uint32(data[pos+24:])
	h.segs = le.Uint32(data[pos+28:])
	h.eps = math.Float64frombits(le.Uint64(data[pos+32:]))
	h.n = le.Uint64(data[pos+40:])
	h.numEntries = le.Uint64(data[pos+48:])
	pos += frameHdrSize
	if err := h.validate(); err != nil {
		return h, 0, err
	}
	return h, pos, nil
}

// frameFromHdr assembles the in-memory frame for a validated header.
func frameFromHdr(h frameHdr) *Frame {
	f := &Frame{
		kind: h.setKind(),
		opts: Options{K: int(h.k), Flavor: sketch.Flavor(h.flavor), Seed: h.seed, BaseB: h.baseB},
		segs: int(h.segs),
		n:    int(h.n),
	}
	switch f.kind {
	case kindWeighted:
		f.opts = Options{K: int(h.k)}
		f.scheme = WeightScheme(h.scheme)
	case kindApprox:
		f.opts = Options{K: int(h.k)}
		f.eps = h.eps
	}
	if h.partitioned() {
		f.base = int32(h.lo)
	}
	return f
}

// validateOffsets checks that the offsets column is monotonic and covers
// exactly the entry columns; everything else about a version-3 file is
// trusted (it is a serving-format for files the operator built).
func validateOffsets(off []int64, numEntries int64) error {
	if len(off) == 0 || off[0] != 0 {
		return fmt.Errorf("core: sketch file offsets do not start at 0")
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("core: sketch file offsets decrease at %d", i)
		}
	}
	if off[len(off)-1] != numEntries {
		return fmt.Errorf("core: sketch file offsets end at %d, want %d entries", off[len(off)-1], numEntries)
	}
	return nil
}

// openFrameBytes parses a complete version-3 file held in memory (heap or
// mmap), viewing the columns in place when the host is little-endian and
// the buffer 8-aligned, and copying them otherwise.  It performs O(1)
// allocations on the zero-copy path and never allocates proportionally to
// corrupt header claims: every count is bounds-checked against len(data)
// first.
func openFrameBytes(data []byte) (AnySet, *Partition, error) {
	if len(data) < framePreambleSize {
		return nil, nil, fmt.Errorf("core: truncated sketch file")
	}
	if string(data[:4]) != encodeMagic {
		return nil, nil, fmt.Errorf("core: not a sketch file (magic %q)", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != frameEncodeVersion {
		return nil, nil, fmt.Errorf("core: sketch file version %d, want %d", v, frameEncodeVersion)
	}
	h, consumed, err := parseFrameHdr(data[8:])
	if err != nil {
		return nil, nil, err
	}
	body := data[8+consumed:]
	if int64(len(body)) != h.bodySize() {
		return nil, nil, fmt.Errorf("core: sketch file body holds %d bytes, header implies %d", len(body), h.bodySize())
	}
	f := frameFromHdr(h)
	nSegs := h.numSegs()
	e := int64(h.numEntries)
	zeroCopy := nativeLittleEndian && aligned8(body)
	offB := body[:(nSegs+1)*8]
	nodeB := body[(nSegs+1)*8:][:e*4]
	distB := body[(nSegs+1)*8+pad8(e*4):][:e*8]
	rankB := body[(nSegs+1)*8+pad8(e*4)+e*8:][:e*8]
	var betaB []byte
	if h.flags&frameFlagBeta != 0 {
		betaB = body[(nSegs+1)*8+pad8(e*4)+2*e*8:][:e*8]
	}
	if zeroCopy {
		f.off = viewI64s(offB, nSegs+1)
		f.node = viewI32s(nodeB, e)
		f.dist = viewF64s(distB, e)
		f.rank = viewF64s(rankB, e)
		if betaB != nil {
			f.beta = viewF64s(betaB, e)
		}
	} else {
		le := binary.LittleEndian
		f.off = make([]int64, nSegs+1)
		for i := range f.off {
			f.off[i] = int64(le.Uint64(offB[i*8:]))
		}
		f.node = make([]int32, e)
		for i := range f.node {
			f.node[i] = int32(le.Uint32(nodeB[i*4:]))
		}
		f.dist = make([]float64, e)
		f.rank = make([]float64, e)
		for i := range f.dist {
			f.dist[i] = math.Float64frombits(le.Uint64(distB[i*8:]))
			f.rank[i] = math.Float64frombits(le.Uint64(rankB[i*8:]))
		}
		if betaB != nil {
			f.beta = make([]float64, e)
			for i := range f.beta {
				f.beta[i] = math.Float64frombits(le.Uint64(betaB[i*8:]))
			}
		}
	}
	if err := validateOffsets(f.off, e); err != nil {
		return nil, nil, err
	}
	set, err := setFromFrame(f)
	if err != nil {
		return nil, nil, err
	}
	if !h.partitioned() {
		return set, nil, nil
	}
	return nil, &Partition{
		index: int(h.index),
		count: int(h.count),
		lo:    int32(h.lo),
		hi:    int32(h.hi),
		total: int(h.total),
		set:   set,
	}, nil
}

// readFrameFile decodes a version-3 file from a stream (the magic and
// version already consumed by readAny).  This is the portable path for
// ReadSketchSet / ReadSketchFile on arbitrary readers; serving processes
// use OpenSketchFile / MmapSketchFile, which avoid the copies.
func readFrameFile(d *setDecoder) (AnySet, *Partition, error) {
	// Accumulate the fixed header with exact reads: kind+flags, then the
	// partition envelope only when kind says so, then the frame fields.
	// The capacity covers the largest (partitioned) header.
	hdrLen := framePreambleSize - 8 + framePartHdrSize + frameHdrSize
	head := make([]byte, 0, hdrLen)
	kf, err := d.read(8) // kind, flags
	if err != nil {
		return nil, nil, fmt.Errorf("core: reading sketch file header: %w", err)
	}
	head = append(head, kf...)
	if binary.LittleEndian.Uint32(head) == kindPartition {
		p, err := d.read(framePartHdrSize)
		if err != nil {
			return nil, nil, fmt.Errorf("core: reading partition header: %w", err)
		}
		head = append(head, p...)
	}
	fh, err := d.read(frameHdrSize)
	if err != nil {
		return nil, nil, fmt.Errorf("core: reading sketch file header: %w", err)
	}
	head = append(head, fh...)
	h, _, err := parseFrameHdr(head)
	if err != nil {
		return nil, nil, err
	}
	f := frameFromHdr(h)
	nSegs := h.numSegs()
	e := int64(h.numEntries)
	// Columns are read in bounded chunks with capped preallocation, so a
	// corrupted count fails at the first short read instead of allocating
	// its claim up front.
	f.off, err = readI64sChunked(d, nSegs+1)
	if err != nil {
		return nil, nil, err
	}
	if err := validateOffsets(f.off, e); err != nil {
		return nil, nil, err
	}
	f.node, err = readI32sChunked(d, e)
	if err != nil {
		return nil, nil, err
	}
	if pad := pad8(e*4) - e*4; pad > 0 {
		if _, err := d.read(int(pad)); err != nil {
			return nil, nil, fmt.Errorf("core: reading sketch file padding: %w", err)
		}
	}
	if f.dist, err = readF64sChunked(d, e); err != nil {
		return nil, nil, err
	}
	if f.rank, err = readF64sChunked(d, e); err != nil {
		return nil, nil, err
	}
	if h.flags&frameFlagBeta != 0 {
		if f.beta, err = readF64sChunked(d, e); err != nil {
			return nil, nil, err
		}
	}
	set, err := setFromFrame(f)
	if err != nil {
		return nil, nil, err
	}
	if !h.partitioned() {
		return set, nil, nil
	}
	return nil, &Partition{
		index: int(h.index),
		count: int(h.count),
		lo:    int32(h.lo),
		hi:    int32(h.hi),
		total: int(h.total),
		set:   set,
	}, nil
}

func readI64sChunked(d *setDecoder, n int64) ([]int64, error) {
	out := make([]int64, 0, minInt64(n, maxEntryPrealloc))
	for read := int64(0); read < n; {
		chunk := minInt64(n-read, maxEntryPrealloc)
		buf, err := d.read(int(chunk) * 8)
		if err != nil {
			return nil, fmt.Errorf("core: reading sketch file column: %w", err)
		}
		for i := int64(0); i < chunk; i++ {
			out = append(out, int64(binary.LittleEndian.Uint64(buf[i*8:])))
		}
		read += chunk
	}
	return out, nil
}

func readF64sChunked(d *setDecoder, n int64) ([]float64, error) {
	out := make([]float64, 0, minInt64(n, maxEntryPrealloc))
	for read := int64(0); read < n; {
		chunk := minInt64(n-read, maxEntryPrealloc)
		buf, err := d.read(int(chunk) * 8)
		if err != nil {
			return nil, fmt.Errorf("core: reading sketch file column: %w", err)
		}
		for i := int64(0); i < chunk; i++ {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:])))
		}
		read += chunk
	}
	return out, nil
}

func readI32sChunked(d *setDecoder, n int64) ([]int32, error) {
	out := make([]int32, 0, minInt64(n, maxEntryPrealloc))
	for read := int64(0); read < n; {
		chunk := minInt64(n-read, maxEntryPrealloc)
		buf, err := d.read(int(chunk) * 4)
		if err != nil {
			return nil, fmt.Errorf("core: reading sketch file column: %w", err)
		}
		for i := int64(0); i < chunk; i++ {
			out = append(out, int32(binary.LittleEndian.Uint32(buf[i*4:])))
		}
		read += chunk
	}
	return out, nil
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// SketchFile is an opened sketch file: exactly one of a whole set or a
// partition, plus the backing memory when the file was opened zero-copy.
//
// Release of the backing memory is reference-counted, so an mmap'd file
// can be swapped out from under live traffic without ever unmapping
// pages a query is still reading: every reader that may outlive the
// owner brackets its reads with Retain / Release, and Close — the
// owner's release — only marks the file draining.  The munmap happens
// when the last reference drops, whichever call that is.
type SketchFile struct {
	set     AnySet
	part    *Partition
	version int
	mapped  []byte // non-nil iff the columns view an mmap region

	// refs counts live references: the opener's (dropped by Close) plus
	// one per outstanding Retain.  The reference that drops it to zero
	// unmaps.  A non-positive count means fully released.
	refs   atomic.Int64
	closed atomic.Bool // the opener's reference has been dropped
}

// newSketchFile assembles an opened file holding the opener's single
// reference.
func newSketchFile(set AnySet, part *Partition, version int, mapped []byte) *SketchFile {
	s := &SketchFile{set: set, part: part, version: version, mapped: mapped}
	s.refs.Store(1)
	return s
}

// Set returns the whole set, or nil for a partition file.
func (s *SketchFile) Set() AnySet { return s.set }

// Partition returns the partition, or nil for a whole-set file.
func (s *SketchFile) Partition() *Partition { return s.part }

// Version returns the codec version the file was stored in (1, 2, or
// EncodeVersionV3).
func (s *SketchFile) Version() int { return s.version }

// Mapped reports whether the columns view an mmap'd region (in which
// case the final Close/Release invalidates every sketch and index
// derived from the file).
func (s *SketchFile) Mapped() bool { return s.mapped != nil }

// Refs returns the current reference count: the opener's reference
// (until Close) plus one per outstanding Retain.  Zero means fully
// released.  It is a monitoring value; do not branch program logic on
// it — use Retain's return instead.
func (s *SketchFile) Refs() int64 {
	if r := s.refs.Load(); r > 0 {
		return r
	}
	return 0
}

// Draining reports whether Close has been called while other references
// keep the file alive.
func (s *SketchFile) Draining() bool { return s.closed.Load() && s.refs.Load() > 0 }

// Retain takes an additional reference on the file, keeping its backing
// memory valid across a concurrent Close, and reports whether it
// succeeded: false means the last reference already dropped (the mapping
// may be gone) and the file must not be read.  Every successful Retain
// must be paired with exactly one Release.
func (s *SketchFile) Retain() bool {
	for {
		r := s.refs.Load()
		if r <= 0 {
			return false
		}
		if s.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Release drops one reference.  The call that drops the count to zero
// unmaps the backing region (if any); after that, every sketch, view,
// and index derived from the file is invalid.
func (s *SketchFile) Release() error {
	if s.refs.Add(-1) != 0 {
		return nil
	}
	m := s.mapped
	s.mapped = nil
	s.set, s.part = nil, nil
	if m == nil {
		return nil
	}
	return munmapFile(m)
}

// Close drops the opener's reference, marking the file draining: new
// Retains fail once the count reaches zero, and the backing memory is
// released by whichever call — this one, or the last outstanding
// Release — drops the final reference.  Close is idempotent.
func (s *SketchFile) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	return s.Release()
}

// OpenSketchFile opens a sketch file of any version.  Version-3 files are
// read in one call and their columns viewed in place — O(1) allocations
// per set on little-endian hosts.  Versions 1 and 2 are decoded through
// the streaming reader (and converted to frames on load) without holding
// the raw file in memory alongside the decoded set.
func OpenSketchFile(path string) (*SketchFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err == nil && isFrameFile(head[:]) {
		st, err := f.Stat()
		if err != nil {
			return nil, err
		}
		data := make([]byte, st.Size())
		if _, err := f.ReadAt(data, 0); err != nil {
			return nil, fmt.Errorf("core: reading %s: %w", path, err)
		}
		set, part, err := openFrameBytes(data)
		if err != nil {
			return nil, err
		}
		return newSketchFile(set, part, frameEncodeVersion, nil), nil
	}
	// Not a v3 file (or too short to tell): stream-decode from the start;
	// the reader produces the precise error for garbage input.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	set, part, err := readAny(f)
	if err != nil {
		return nil, err
	}
	return newSketchFile(set, part, int(binary.LittleEndian.Uint32(head[4:])), nil), nil
}

// MmapSketchFile opens a version-3 sketch file by mapping it into memory:
// no column is read until it is queried, so a worker serving a prebuilt
// shard starts in near-constant time regardless of file size.  On
// platforms without mmap support — or for version-1/2 files, which need
// decoding anyway — it falls back to OpenSketchFile.
func MmapSketchFile(path string) (*SketchFile, error) {
	if !mmapSupported {
		return OpenSketchFile(path)
	}
	fl, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fl.Close()
	st, err := fl.Stat()
	if err != nil {
		return nil, err
	}
	var head [8]byte
	if _, err := io.ReadFull(fl, head[:]); err != nil || !isFrameFile(head[:]) {
		return OpenSketchFile(path)
	}
	data, err := mmapFile(fl, int(st.Size()))
	if err != nil {
		return nil, fmt.Errorf("core: mmap %s: %w", path, err)
	}
	set, part, err := openFrameBytes(data)
	if err != nil {
		munmapFile(data)
		return nil, err
	}
	return newSketchFile(set, part, frameEncodeVersion, data), nil
}

// isFrameFile reports whether the bytes begin a version-3 file.
func isFrameFile(data []byte) bool {
	return len(data) >= 8 && string(data[:4]) == encodeMagic &&
		binary.LittleEndian.Uint32(data[4:]) == frameEncodeVersion
}
