package core
