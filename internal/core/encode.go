package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"adsketch/internal/sketch"
)

// Binary persistence for sketch sets.  Building sketches is the expensive
// step (one near-linear pass over the graph); queries are cheap.  The
// format lets a pipeline build once and serve many query processes:
//
//	magic "ADSK" | version u32 | k u32 | flavor u32 | seed u64 |
//	baseB f64 | numNodes u32 | per node: sketch payload
//
// Bottom-k payload: entry count u32, then (node i32, dist f64, rank f64)
// triples.  k-mins and k-partition payloads repeat that per permutation /
// bucket.  All integers are little-endian.

const (
	encodeMagic   = "ADSK"
	encodeVersion = 1
)

// WriteSet serializes a sketch set.
func WriteSet(w io.Writer, s *Set) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(encodeMagic); err != nil {
		return err
	}
	hdr := []any{
		uint32(encodeVersion),
		uint32(s.opts.K),
		uint32(s.opts.Flavor),
		s.opts.Seed,
		math.Float64bits(s.opts.BaseB),
		uint32(len(s.sketches)),
	}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for _, sk := range s.sketches {
		switch x := sk.(type) {
		case *ADS:
			if err := writeEntries(bw, x.entries); err != nil {
				return err
			}
		case *KMinsADS:
			for _, p := range x.perms {
				if err := writeEntries(bw, p); err != nil {
					return err
				}
			}
		case *KPartitionADS:
			for _, p := range x.buckets {
				if err := writeEntries(bw, p); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("core: cannot encode sketch type %T", sk)
		}
	}
	return bw.Flush()
}

func writeEntries(w io.Writer, entries []Entry) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(entries))); err != nil {
		return err
	}
	for _, e := range entries {
		if err := binary.Write(w, binary.LittleEndian, e.Node); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, math.Float64bits(e.Dist)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, math.Float64bits(e.Rank)); err != nil {
			return err
		}
	}
	return nil
}

// ReadSet deserializes a sketch set written by WriteSet, validating the
// structural invariants of every sketch.
func ReadSet(r io.Reader) (*Set, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading sketch file magic: %w", err)
	}
	if string(magic) != encodeMagic {
		return nil, fmt.Errorf("core: not a sketch file (magic %q)", magic)
	}
	var version, k, flavor, numNodes uint32
	var seed, baseBits uint64
	for _, p := range []any{&version, &k, &flavor, &seed, &baseBits, &numNodes} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("core: reading sketch file header: %w", err)
		}
	}
	if version != encodeVersion {
		return nil, fmt.Errorf("core: sketch file version %d, want %d", version, encodeVersion)
	}
	o := Options{
		K:      int(k),
		Flavor: sketch.Flavor(flavor),
		Seed:   seed,
		BaseB:  math.Float64frombits(baseBits),
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	if numNodes > 1<<30 {
		return nil, fmt.Errorf("core: implausible node count %d", numNodes)
	}
	set := &Set{opts: o, sketches: make([]Sketch, numNodes)}
	for v := uint32(0); v < numNodes; v++ {
		switch o.Flavor {
		case sketch.BottomK:
			entries, err := readEntries(br, int32(v))
			if err != nil {
				return nil, err
			}
			a := NewADS(int32(v), o.K)
			a.entries = entries
			if err := a.Validate(); err != nil {
				return nil, fmt.Errorf("core: corrupt sketch file: %w", err)
			}
			set.sketches[v] = a
		case sketch.KMins:
			a := NewKMinsADS(int32(v), o.K)
			for h := 0; h < o.K; h++ {
				entries, err := readEntries(br, int32(v))
				if err != nil {
					return nil, err
				}
				a.perms[h] = entries
			}
			if err := a.Validate(); err != nil {
				return nil, fmt.Errorf("core: corrupt sketch file: %w", err)
			}
			set.sketches[v] = a
		case sketch.KPartition:
			a := NewKPartitionADS(int32(v), o.K)
			for bkt := 0; bkt < o.K; bkt++ {
				entries, err := readEntries(br, int32(v))
				if err != nil {
					return nil, err
				}
				a.buckets[bkt] = entries
			}
			if err := a.Validate(); err != nil {
				return nil, fmt.Errorf("core: corrupt sketch file: %w", err)
			}
			set.sketches[v] = a
		default:
			return nil, fmt.Errorf("core: sketch file has unknown flavor %d", flavor)
		}
	}
	return set, nil
}

func readEntries(r io.Reader, owner int32) ([]Entry, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("core: reading sketch of node %d: %w", owner, err)
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("core: implausible entry count %d for node %d", n, owner)
	}
	entries := make([]Entry, n)
	for i := range entries {
		var node int32
		var dist, rank uint64
		if err := binary.Read(r, binary.LittleEndian, &node); err != nil {
			return nil, fmt.Errorf("core: reading sketch of node %d: %w", owner, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &dist); err != nil {
			return nil, fmt.Errorf("core: reading sketch of node %d: %w", owner, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
			return nil, fmt.Errorf("core: reading sketch of node %d: %w", owner, err)
		}
		entries[i] = Entry{Node: node, Dist: math.Float64frombits(dist), Rank: math.Float64frombits(rank)}
	}
	return entries, nil
}
