package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"adsketch/internal/sketch"
)

// Binary persistence for sketch sets.  Building sketches is the expensive
// step (one near-linear pass over the graph); queries are cheap.  The
// format lets a pipeline build once and serve many query processes.
//
// Version 2 (current) covers every set kind behind one header:
//
//	magic "ADSK" | version u32 = 2 | kind u32 |
//	kind-specific header | per-node payloads
//
// Uniform (kind 0):  k u32 | flavor u32 | seed u64 | baseB f64 |
// numNodes u32, then per node the flavor payload.  Bottom-k payload:
// entry count u32, then (node i32, dist f64, rank f64) triples; k-mins
// and k-partition payloads repeat that per permutation / bucket.
//
// Weighted (kind 1):  k u32 | scheme u32 | numNodes u32, then per node:
// entry count u32 and (node i32, dist f64, rank f64, beta f64) quads.
//
// Approximate (kind 2):  k u32 | eps f64 | numNodes u32, then per node
// the bottom-k entry payload.
//
// Version 1 is the legacy uniform-only format (no kind field); readers
// still accept it.  All integers are little-endian.

const (
	encodeMagic   = "ADSK"
	encodeVersion = 1
	// maxCodecK bounds the sketch parameter a file may claim, so a
	// corrupted header cannot drive huge per-node allocations.
	maxCodecK = 1 << 20
	// EncodeVersion is the current sketch file format version written by
	// the WriteTo methods.
	EncodeVersion = 2
)

// Set kinds stored in the version-2 header.
const (
	kindUniform uint32 = iota
	kindWeighted
	kindApprox
)

// AnySet is the kind-agnostic view of a sketch set that the codec can
// persist and restore: *Set, *WeightedSet, or *ApproxSet.
type AnySet interface {
	NumNodes() int
	K() int
	SketchOf(v int32) Sketch
	TotalEntries() int
	WriteTo(w io.Writer) (int64, error)
}

var (
	_ AnySet = (*Set)(nil)
	_ AnySet = (*WeightedSet)(nil)
	_ AnySet = (*ApproxSet)(nil)
)

// countingWriter tracks how many bytes passed through, so WriteTo can
// satisfy the io.WriterTo contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeHeader(w io.Writer, kind uint32, fields ...any) error {
	if _, err := io.WriteString(w, encodeMagic); err != nil {
		return err
	}
	hdr := append([]any{uint32(EncodeVersion), kind}, fields...)
	for _, h := range hdr {
		if err := binary.Write(w, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	return nil
}

// WriteTo serializes the set in the version-2 format.  It implements
// io.WriterTo; the returned count is the number of bytes written.
func (s *Set) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	err := writeHeader(bw, kindUniform,
		uint32(s.opts.K),
		uint32(s.opts.Flavor),
		s.opts.Seed,
		math.Float64bits(s.opts.BaseB),
		uint32(len(s.sketches)),
	)
	if err != nil {
		return cw.n, err
	}
	if err := writeUniformPayload(bw, s); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

func writeUniformPayload(w io.Writer, s *Set) error {
	for _, sk := range s.sketches {
		switch x := sk.(type) {
		case *ADS:
			if err := writeEntries(w, x.entries); err != nil {
				return err
			}
		case *KMinsADS:
			for _, p := range x.perms {
				if err := writeEntries(w, p); err != nil {
					return err
				}
			}
		case *KPartitionADS:
			for _, p := range x.buckets {
				if err := writeEntries(w, p); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("core: cannot encode sketch type %T", sk)
		}
	}
	return nil
}

// WriteTo serializes the weighted set in the version-2 format.
func (s *WeightedSet) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	scheme := ExponentialWeights
	if len(s.sketches) > 0 {
		scheme = s.sketches[0].scheme
	}
	err := writeHeader(bw, kindWeighted,
		uint32(s.k),
		uint32(scheme),
		uint32(len(s.sketches)),
	)
	if err != nil {
		return cw.n, err
	}
	for _, sk := range s.sketches {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(sk.entries))); err != nil {
			return cw.n, err
		}
		for i, e := range sk.entries {
			rec := []any{e.Node, math.Float64bits(e.Dist), math.Float64bits(e.Rank), math.Float64bits(sk.beta[i])}
			for _, f := range rec {
				if err := binary.Write(bw, binary.LittleEndian, f); err != nil {
					return cw.n, err
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// WriteTo serializes the approximate set in the version-2 format.
func (s *ApproxSet) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	err := writeHeader(bw, kindApprox,
		uint32(s.k),
		math.Float64bits(s.eps),
		uint32(len(s.sketches)),
	)
	if err != nil {
		return cw.n, err
	}
	for _, sk := range s.sketches {
		if err := writeEntries(bw, sk.entries); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadSketchSet deserializes a sketch set written by any WriteTo method
// (or the legacy version-1 WriteSet), validating the structural
// invariants of every sketch.  The dynamic type of the result is *Set,
// *WeightedSet, or *ApproxSet according to the stored kind.
func ReadSketchSet(r io.Reader) (AnySet, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading sketch file magic: %w", err)
	}
	if string(magic) != encodeMagic {
		return nil, fmt.Errorf("core: not a sketch file (magic %q)", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("core: reading sketch file version: %w", err)
	}
	switch version {
	case 1:
		return readUniformBody(br)
	case EncodeVersion:
		var kind uint32
		if err := binary.Read(br, binary.LittleEndian, &kind); err != nil {
			return nil, fmt.Errorf("core: reading sketch file kind: %w", err)
		}
		switch kind {
		case kindUniform:
			return readUniformBody(br)
		case kindWeighted:
			return readWeightedBody(br)
		case kindApprox:
			return readApproxBody(br)
		default:
			return nil, fmt.Errorf("core: sketch file has unknown kind %d", kind)
		}
	default:
		return nil, fmt.Errorf("core: sketch file version %d, supported versions are 1 and %d", version, EncodeVersion)
	}
}

// readUniformBody parses the shared uniform body (everything after the
// version/kind prefix, identical in versions 1 and 2).
func readUniformBody(br io.Reader) (*Set, error) {
	var k, flavor, numNodes uint32
	var seed, baseBits uint64
	for _, p := range []any{&k, &flavor, &seed, &baseBits, &numNodes} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("core: reading sketch file header: %w", err)
		}
	}
	o := Options{
		K:      int(k),
		Flavor: sketch.Flavor(flavor),
		Seed:   seed,
		BaseB:  math.Float64frombits(baseBits),
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	if k > maxCodecK {
		return nil, fmt.Errorf("core: implausible sketch parameter k=%d", k)
	}
	if numNodes > 1<<30 {
		return nil, fmt.Errorf("core: implausible node count %d", numNodes)
	}
	set := &Set{opts: o, sketches: make([]Sketch, numNodes)}
	for v := uint32(0); v < numNodes; v++ {
		switch o.Flavor {
		case sketch.BottomK:
			entries, err := readEntries(br, int32(v))
			if err != nil {
				return nil, err
			}
			a := NewADS(int32(v), o.K)
			a.entries = entries
			if err := a.Validate(); err != nil {
				return nil, fmt.Errorf("core: corrupt sketch file: %w", err)
			}
			set.sketches[v] = a
		case sketch.KMins:
			a := NewKMinsADS(int32(v), o.K)
			for h := 0; h < o.K; h++ {
				entries, err := readEntries(br, int32(v))
				if err != nil {
					return nil, err
				}
				a.perms[h] = entries
			}
			if err := a.Validate(); err != nil {
				return nil, fmt.Errorf("core: corrupt sketch file: %w", err)
			}
			set.sketches[v] = a
		case sketch.KPartition:
			a := NewKPartitionADS(int32(v), o.K)
			for bkt := 0; bkt < o.K; bkt++ {
				entries, err := readEntries(br, int32(v))
				if err != nil {
					return nil, err
				}
				a.buckets[bkt] = entries
			}
			if err := a.Validate(); err != nil {
				return nil, fmt.Errorf("core: corrupt sketch file: %w", err)
			}
			set.sketches[v] = a
		default:
			return nil, fmt.Errorf("core: sketch file has unknown flavor %d", flavor)
		}
	}
	return set, nil
}

func readWeightedBody(br io.Reader) (*WeightedSet, error) {
	var k, scheme, numNodes uint32
	for _, p := range []any{&k, &scheme, &numNodes} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("core: reading sketch file header: %w", err)
		}
	}
	if k < 1 || k > maxCodecK {
		return nil, fmt.Errorf("core: implausible sketch parameter k=%d", k)
	}
	if scheme != uint32(ExponentialWeights) && scheme != uint32(PriorityWeights) {
		return nil, fmt.Errorf("core: sketch file has unknown weight scheme %d", scheme)
	}
	if numNodes > 1<<30 {
		return nil, fmt.Errorf("core: implausible node count %d", numNodes)
	}
	set := &WeightedSet{k: int(k), sketches: make([]*WeightedADS, numNodes)}
	for v := uint32(0); v < numNodes; v++ {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("core: reading sketch of node %d: %w", v, err)
		}
		if n > 1<<28 {
			return nil, fmt.Errorf("core: implausible entry count %d for node %d", n, v)
		}
		a := NewWeightedADS(int32(v), int(k))
		a.scheme = WeightScheme(scheme)
		cap := int(n)
		if cap > 4096 {
			cap = 4096
		}
		a.entries = make([]Entry, 0, cap)
		a.beta = make([]float64, 0, cap)
		for i := uint32(0); i < n; i++ {
			var node int32
			var dist, rank, beta uint64
			for _, p := range []any{&node, &dist, &rank, &beta} {
				if err := binary.Read(br, binary.LittleEndian, p); err != nil {
					return nil, fmt.Errorf("core: reading sketch of node %d: %w", v, err)
				}
			}
			a.entries = append(a.entries, Entry{Node: node, Dist: math.Float64frombits(dist), Rank: math.Float64frombits(rank)})
			a.beta = append(a.beta, math.Float64frombits(beta))
		}
		if err := a.Validate(); err != nil {
			return nil, fmt.Errorf("core: corrupt sketch file: %w", err)
		}
		set.sketches[v] = a
	}
	return set, nil
}

func readApproxBody(br io.Reader) (*ApproxSet, error) {
	var k, numNodes uint32
	var epsBits uint64
	for _, p := range []any{&k, &epsBits, &numNodes} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("core: reading sketch file header: %w", err)
		}
	}
	eps := math.Float64frombits(epsBits)
	if k < 1 || k > maxCodecK {
		return nil, fmt.Errorf("core: implausible sketch parameter k=%d", k)
	}
	if eps < 0 || math.IsNaN(eps) || math.IsInf(eps, 1) {
		return nil, fmt.Errorf("core: sketch file has invalid epsilon %g", eps)
	}
	if numNodes > 1<<30 {
		return nil, fmt.Errorf("core: implausible node count %d", numNodes)
	}
	set := &ApproxSet{k: int(k), eps: eps, sketches: make([]*ADS, numNodes)}
	for v := uint32(0); v < numNodes; v++ {
		entries, err := readEntries(br, int32(v))
		if err != nil {
			return nil, err
		}
		a := NewADS(int32(v), int(k))
		a.entries = entries
		// Approximate sketches relax the exact inclusion rule (entries may
		// be justified by an ε-slack window that the final state no longer
		// exhibits), so only the rank-independent invariants are checked.
		if err := validateApproxEntries(int32(v), entries); err != nil {
			return nil, fmt.Errorf("core: corrupt sketch file: %w", err)
		}
		set.sketches[v] = a
	}
	return set, nil
}

// validateApproxEntries checks the invariants an approximate sketch
// guarantees regardless of ε: canonical order, distinct nodes, and the
// owner as first entry at distance 0.
func validateApproxEntries(owner int32, entries []Entry) error {
	seen := make(map[int32]bool, len(entries))
	for i, e := range entries {
		if i > 0 && !entries[i-1].before(e) {
			return fmt.Errorf("core: approx ADS(%d) entries %d,%d out of canonical order", owner, i-1, i)
		}
		if seen[e.Node] {
			return fmt.Errorf("core: approx ADS(%d) contains node %d twice", owner, e.Node)
		}
		seen[e.Node] = true
		if math.IsNaN(e.Dist) || math.IsInf(e.Dist, 1) || e.Dist < 0 {
			return fmt.Errorf("core: approx ADS(%d) entry %d has invalid distance %g", owner, i, e.Dist)
		}
		// Approximate sketches are built over uniform ranks in (0, 1]; a
		// rank outside that range would corrupt the 1/τ HIP weights.
		if !(e.Rank > 0) || e.Rank > 1 {
			return fmt.Errorf("core: approx ADS(%d) entry %d has invalid rank %g", owner, i, e.Rank)
		}
	}
	if len(entries) > 0 && (entries[0].Node != owner || entries[0].Dist != 0) {
		return fmt.Errorf("core: approx ADS(%d) does not start with the owner at distance 0", owner)
	}
	return nil
}

// WriteSet serializes a uniform sketch set in the legacy version-1
// format.
//
// Deprecated: use (*Set).WriteTo, which writes the current versioned
// format shared by all set kinds.
func WriteSet(w io.Writer, s *Set) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(encodeMagic); err != nil {
		return err
	}
	hdr := []any{
		uint32(encodeVersion),
		uint32(s.opts.K),
		uint32(s.opts.Flavor),
		s.opts.Seed,
		math.Float64bits(s.opts.BaseB),
		uint32(len(s.sketches)),
	}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := writeUniformPayload(bw, s); err != nil {
		return err
	}
	return bw.Flush()
}

func writeEntries(w io.Writer, entries []Entry) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(entries))); err != nil {
		return err
	}
	for _, e := range entries {
		if err := binary.Write(w, binary.LittleEndian, e.Node); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, math.Float64bits(e.Dist)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, math.Float64bits(e.Rank)); err != nil {
			return err
		}
	}
	return nil
}

// ReadSet deserializes a uniform sketch set written by WriteSet or
// (*Set).WriteTo, validating every sketch's structural invariants.
//
// Deprecated: use ReadSketchSet, which restores any set kind.
func ReadSet(r io.Reader) (*Set, error) {
	set, err := ReadSketchSet(r)
	if err != nil {
		return nil, err
	}
	uniform, ok := set.(*Set)
	if !ok {
		return nil, fmt.Errorf("core: sketch file holds a %T, not a uniform set; use ReadSketchSet", set)
	}
	return uniform, nil
}

func readEntries(r io.Reader, owner int32) ([]Entry, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("core: reading sketch of node %d: %w", owner, err)
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("core: implausible entry count %d for node %d", n, owner)
	}
	cap := int(n)
	if cap > 4096 {
		// Grow incrementally beyond this: a corrupted length field must not
		// allocate gigabytes before the payload read fails.
		cap = 4096
	}
	entries := make([]Entry, 0, cap)
	for i := uint32(0); i < n; i++ {
		var node int32
		var dist, rank uint64
		if err := binary.Read(r, binary.LittleEndian, &node); err != nil {
			return nil, fmt.Errorf("core: reading sketch of node %d: %w", owner, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &dist); err != nil {
			return nil, fmt.Errorf("core: reading sketch of node %d: %w", owner, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
			return nil, fmt.Errorf("core: reading sketch of node %d: %w", owner, err)
		}
		entries = append(entries, Entry{Node: node, Dist: math.Float64frombits(dist), Rank: math.Float64frombits(rank)})
	}
	return entries, nil
}
