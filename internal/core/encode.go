package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"adsketch/internal/sketch"
)

// Binary persistence for sketch sets.  Building sketches is the expensive
// step (one near-linear pass over the graph); queries are cheap.  The
// format lets a pipeline build once and serve many query processes.
//
// Version 2 covers every set kind behind one header:
//
//	magic "ADSK" | version u32 = 2 | kind u32 |
//	kind-specific header | per-node payloads
//
// Uniform (kind 0):  k u32 | flavor u32 | seed u64 | baseB f64 |
// numNodes u32, then per node the flavor payload.  Bottom-k payload:
// entry count u32, then (node i32, dist f64, rank f64) triples; k-mins
// and k-partition payloads repeat that per permutation / bucket.
//
// Weighted (kind 1):  k u32 | scheme u32 | numNodes u32, then per node:
// entry count u32 and (node i32, dist f64, rank f64, beta f64) quads.
//
// Approximate (kind 2):  k u32 | eps f64 | numNodes u32, then per node
// the bottom-k entry payload.
//
// Partition (kind 3):  the partition header — index u32 | count u32 |
// lo u32 | hi u32 | totalNodes u32 — followed by the inner set's body
// (inner kind u32, kind header, payloads) holding the sketches of global
// nodes lo..hi-1 of a totalNodes-node set split into count node-range
// shards.  Partitions do not nest.
//
// Version 1 is the legacy uniform-only format (no kind field); readers
// still accept it.  Version 3 (framecodec.go) serializes the columnar
// frame verbatim — the serving format OpenSketchFile reads with O(1)
// allocations (or maps with zero copies).  All integers are
// little-endian.  Whatever the stored version, loading produces
// frame-backed sets.

const (
	encodeMagic   = "ADSK"
	encodeVersion = 1
	// maxCodecK bounds the sketch parameter a file may claim, so a
	// corrupted header cannot drive huge per-node allocations.
	maxCodecK = 1 << 20
	// maxCodecPartitions bounds the partition count a file may claim.
	maxCodecPartitions = 1 << 20
	// EncodeVersion is the current streaming sketch file format version
	// written by the WriteTo methods.
	EncodeVersion = 2
)

// Set kinds stored in the version-2 and version-3 headers.
const (
	kindUniform uint32 = iota
	kindWeighted
	kindApprox
	kindPartition
)

// Wire sizes of one entry record.
const (
	entryWireSize         = 4 + 8 + 8     // node, dist, rank
	weightedEntryWireSize = 4 + 8 + 8 + 8 // node, dist, rank, beta
	// maxEntryPrealloc caps up-front allocation per length field, so a
	// corrupted count cannot allocate gigabytes before the payload read
	// fails; longer payloads grow incrementally in chunks of this many
	// entries.
	maxEntryPrealloc = 4096
)

// AnySet is the kind-agnostic view of a sketch set that the codec can
// persist and restore: *Set, *WeightedSet, or *ApproxSet.
type AnySet interface {
	NumNodes() int
	K() int
	SketchOf(v int32) Sketch
	TotalEntries() int
	WriteTo(w io.Writer) (int64, error)
}

var (
	_ AnySet = (*Set)(nil)
	_ AnySet = (*WeightedSet)(nil)
	_ AnySet = (*ApproxSet)(nil)
)

// frameOf returns the columnar frame backing any of the three set kinds.
func frameOf(s AnySet) (*Frame, error) {
	switch x := s.(type) {
	case *Set:
		return x.frame, nil
	case *WeightedSet:
		return x.frame, nil
	case *ApproxSet:
		return x.frame, nil
	default:
		return nil, fmt.Errorf("core: cannot encode sketch set type %T", s)
	}
}

// setFromFrame wraps a decoded frame in the set type matching its kind.
func setFromFrame(f *Frame) (AnySet, error) {
	switch f.kind {
	case kindUniform:
		return &Set{frame: f}, nil
	case kindWeighted:
		return &WeightedSet{frame: f}, nil
	case kindApprox:
		return &ApproxSet{frame: f}, nil
	default:
		return nil, fmt.Errorf("core: sketch file has unknown kind %d", f.kind)
	}
}

// countingWriter tracks how many bytes passed through, so WriteTo can
// satisfy the io.WriterTo contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// growBuf returns *buf resized to n bytes, reallocating only when the
// capacity is short — the codec's per-call scratch, reused across nodes.
func growBuf(buf *[]byte, n int) []byte {
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	return (*buf)[:n]
}

// setEncoder writes the binary format through one buffered writer with a
// single reusable scratch buffer (the codec hot path serializes every
// entry of every node; per-field binary.Write reflection is far too slow
// for multi-million-entry sets).
type setEncoder struct {
	bw  *bufio.Writer
	buf []byte
}

func (e *setEncoder) u32(v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := e.bw.Write(b[:])
	return err
}

func (e *setEncoder) u64(v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := e.bw.Write(b[:])
	return err
}

// entriesCols writes one length-prefixed entry list from columns as a
// single buffer write.
func (e *setEncoder) entriesCols(c cols) error {
	n := c.len()
	buf := growBuf(&e.buf, 4+n*entryWireSize)
	binary.LittleEndian.PutUint32(buf, uint32(n))
	off := 4
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(buf[off:], uint32(c.node[i]))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(c.dist[i]))
		binary.LittleEndian.PutUint64(buf[off+12:], math.Float64bits(c.rank[i]))
		off += entryWireSize
	}
	_, err := e.bw.Write(buf)
	return err
}

// weightedEntriesCols writes one length-prefixed (entry, beta) list.
func (e *setEncoder) weightedEntriesCols(c cols, beta []float64) error {
	n := c.len()
	buf := growBuf(&e.buf, 4+n*weightedEntryWireSize)
	binary.LittleEndian.PutUint32(buf, uint32(n))
	off := 4
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(buf[off:], uint32(c.node[i]))
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(c.dist[i]))
		binary.LittleEndian.PutUint64(buf[off+12:], math.Float64bits(c.rank[i]))
		binary.LittleEndian.PutUint64(buf[off+20:], math.Float64bits(beta[i]))
		off += weightedEntryWireSize
	}
	_, err := e.bw.Write(buf)
	return err
}

// encodeSetBody writes a set's body — kind, kind header, payloads — the
// part shared between whole-set files and the partition envelope.
func encodeSetBody(e *setEncoder, s AnySet) error {
	f, err := frameOf(s)
	if err != nil {
		return err
	}
	switch f.kind {
	case kindUniform:
		hdr := []error{
			e.u32(kindUniform),
			e.u32(uint32(f.opts.K)),
			e.u32(uint32(f.opts.Flavor)),
			e.u64(f.opts.Seed),
			e.u64(math.Float64bits(f.opts.BaseB)),
			e.u32(uint32(f.n)),
		}
		for _, err := range hdr {
			if err != nil {
				return err
			}
		}
		for i := 0; i < f.n*f.segs; i++ {
			if err := e.entriesCols(f.segAt(i/f.segs, i%f.segs)); err != nil {
				return err
			}
		}
		return nil
	case kindWeighted:
		hdr := []error{
			e.u32(kindWeighted),
			e.u32(uint32(f.opts.K)),
			e.u32(uint32(f.scheme)),
			e.u32(uint32(f.n)),
		}
		for _, err := range hdr {
			if err != nil {
				return err
			}
		}
		for v := 0; v < f.n; v++ {
			lo, hi := f.span(v)
			if err := e.weightedEntriesCols(f.segAt(v, 0), f.beta[lo:hi]); err != nil {
				return err
			}
		}
		return nil
	case kindApprox:
		hdr := []error{
			e.u32(kindApprox),
			e.u32(uint32(f.opts.K)),
			e.u64(math.Float64bits(f.eps)),
			e.u32(uint32(f.n)),
		}
		for _, err := range hdr {
			if err != nil {
				return err
			}
		}
		for v := 0; v < f.n; v++ {
			if err := e.entriesCols(f.segAt(v, 0)); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("core: cannot encode sketch set kind %d", f.kind)
	}
}

// writeSetFile writes one whole-set file: magic, version, body.
func writeSetFile(w io.Writer, s AnySet) (int64, error) {
	cw := &countingWriter{w: w}
	e := &setEncoder{bw: bufio.NewWriter(cw)}
	if _, err := e.bw.WriteString(encodeMagic); err != nil {
		return cw.n, err
	}
	if err := e.u32(EncodeVersion); err != nil {
		return cw.n, err
	}
	if err := encodeSetBody(e, s); err != nil {
		return cw.n, err
	}
	if err := e.bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// WriteTo serializes the set in the version-2 format.  It implements
// io.WriterTo; the returned count is the number of bytes written.
func (s *Set) WriteTo(w io.Writer) (int64, error) { return writeSetFile(w, s) }

// WriteTo serializes the weighted set in the version-2 format.
func (s *WeightedSet) WriteTo(w io.Writer) (int64, error) { return writeSetFile(w, s) }

// WriteTo serializes the approximate set in the version-2 format.
func (s *ApproxSet) WriteTo(w io.Writer) (int64, error) { return writeSetFile(w, s) }

// setDecoder reads the binary format through one reusable scratch buffer.
type setDecoder struct {
	r   io.Reader
	buf []byte
}

func newSetDecoder(r io.Reader) *setDecoder {
	return &setDecoder{r: bufio.NewReaderSize(r, 1<<16)}
}

// read returns the next n bytes in the shared scratch buffer; the result
// is only valid until the next decoder call.
func (d *setDecoder) read(n int) ([]byte, error) {
	buf := growBuf(&d.buf, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func (d *setDecoder) u32() (uint32, error) {
	buf, err := d.read(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf), nil
}

func (d *setDecoder) u64() (uint64, error) {
	buf, err := d.read(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf), nil
}

// header reads a sequence of u32 (into *uint32) and u64 (into *uint64)
// header fields.
func (d *setDecoder) header(fields ...any) error {
	for _, f := range fields {
		switch p := f.(type) {
		case *uint32:
			v, err := d.u32()
			if err != nil {
				return err
			}
			*p = v
		case *uint64:
			v, err := d.u64()
			if err != nil {
				return err
			}
			*p = v
		default:
			panic(fmt.Sprintf("core: bad header field type %T", f))
		}
	}
	return nil
}

// frameAccum accumulates decoded entries directly into growing frame
// columns, so the v2 decode path builds the columnar frame without an
// intermediate per-node entry slice.  closeSeg records a segment
// boundary; frame seals the result.
type frameAccum struct {
	off  []int64
	node []int32
	dist []float64
	rank []float64
	beta []float64
}

func newFrameAccum(segHint int) *frameAccum {
	a := &frameAccum{off: make([]int64, 1, segHint+1)}
	a.off[0] = 0
	return a
}

func (a *frameAccum) closeSeg() { a.off = append(a.off, int64(len(a.node))) }

func (a *frameAccum) frame(kind uint32, opts Options, scheme WeightScheme, eps float64, segs int, base int32) *Frame {
	return &Frame{
		kind: kind, opts: opts, scheme: scheme, eps: eps,
		segs: segs, n: (len(a.off) - 1) / segs, base: base,
		off: a.off, node: a.node, dist: a.dist, rank: a.rank, beta: a.beta,
	}
}

// entriesInto reads one length-prefixed entry list into the accumulator,
// decoding in bounded chunks so a corrupted length cannot drive a huge
// allocation (column growth is amortized append, never an up-front claim).
func (d *setDecoder) entriesInto(owner int32, a *frameAccum) error {
	n, err := d.u32()
	if err != nil {
		return fmt.Errorf("core: reading sketch of node %d: %w", owner, err)
	}
	if n > 1<<28 {
		return fmt.Errorf("core: implausible entry count %d for node %d", n, owner)
	}
	for remaining := int(n); remaining > 0; {
		chunk := remaining
		if chunk > maxEntryPrealloc {
			chunk = maxEntryPrealloc
		}
		buf, err := d.read(chunk * entryWireSize)
		if err != nil {
			return fmt.Errorf("core: reading sketch of node %d: %w", owner, err)
		}
		for off := 0; off < len(buf); off += entryWireSize {
			a.node = append(a.node, int32(binary.LittleEndian.Uint32(buf[off:])))
			a.dist = append(a.dist, math.Float64frombits(binary.LittleEndian.Uint64(buf[off+4:])))
			a.rank = append(a.rank, math.Float64frombits(binary.LittleEndian.Uint64(buf[off+12:])))
		}
		remaining -= chunk
	}
	a.closeSeg()
	return nil
}

// weightedEntriesInto reads one length-prefixed (entry, beta) list into
// the accumulator.
func (d *setDecoder) weightedEntriesInto(owner int32, a *frameAccum) error {
	n, err := d.u32()
	if err != nil {
		return fmt.Errorf("core: reading sketch of node %d: %w", owner, err)
	}
	if n > 1<<28 {
		return fmt.Errorf("core: implausible entry count %d for node %d", n, owner)
	}
	for remaining := int(n); remaining > 0; {
		chunk := remaining
		if chunk > maxEntryPrealloc {
			chunk = maxEntryPrealloc
		}
		buf, err := d.read(chunk * weightedEntryWireSize)
		if err != nil {
			return fmt.Errorf("core: reading sketch of node %d: %w", owner, err)
		}
		for off := 0; off < len(buf); off += weightedEntryWireSize {
			a.node = append(a.node, int32(binary.LittleEndian.Uint32(buf[off:])))
			a.dist = append(a.dist, math.Float64frombits(binary.LittleEndian.Uint64(buf[off+4:])))
			a.rank = append(a.rank, math.Float64frombits(binary.LittleEndian.Uint64(buf[off+12:])))
			a.beta = append(a.beta, math.Float64frombits(binary.LittleEndian.Uint64(buf[off+20:])))
		}
		remaining -= chunk
	}
	a.closeSeg()
	return nil
}

// readAny parses any sketch file — whole set or partition — and returns
// exactly one of the two.
func readAny(r io.Reader) (AnySet, *Partition, error) {
	d := newSetDecoder(r)
	magic, err := d.read(4)
	if err != nil {
		return nil, nil, fmt.Errorf("core: reading sketch file magic: %w", err)
	}
	if string(magic) != encodeMagic {
		return nil, nil, fmt.Errorf("core: not a sketch file (magic %q)", magic)
	}
	version, err := d.u32()
	if err != nil {
		return nil, nil, fmt.Errorf("core: reading sketch file version: %w", err)
	}
	switch version {
	case 1:
		set, err := readUniformBody(d, 0)
		return set, nil, err
	case EncodeVersion:
		kind, err := d.u32()
		if err != nil {
			return nil, nil, fmt.Errorf("core: reading sketch file kind: %w", err)
		}
		if kind == kindPartition {
			p, err := readPartitionBody(d)
			return nil, p, err
		}
		set, err := decodeSetBodyKind(d, kind, 0)
		return set, nil, err
	case frameEncodeVersion:
		return readFrameFile(d)
	default:
		return nil, nil, fmt.Errorf("core: sketch file version %d, supported versions are 1, %d and %d",
			version, EncodeVersion, frameEncodeVersion)
	}
}

// ReadSketchSet deserializes a whole sketch set written by any WriteTo
// method (or the legacy version-1 WriteSet), validating the structural
// invariants of every sketch.  The dynamic type of the result is *Set,
// *WeightedSet, or *ApproxSet according to the stored kind.  Partition
// files are refused; read those with ReadPartition (or merge them back
// with MergeSketchSets / adstool merge).
func ReadSketchSet(r io.Reader) (AnySet, error) {
	set, part, err := readAny(r)
	if err != nil {
		return nil, err
	}
	if part != nil {
		return nil, fmt.Errorf("core: file holds partition %d of a %d-way sketch set split; use ReadPartition, or merge the partitions", part.Index(), part.Count())
	}
	return set, nil
}

// ReadSketchFile reads either kind of sketch file, returning exactly one
// of a whole set or a partition — what a serving process that accepts
// both uses at startup.
func ReadSketchFile(r io.Reader) (AnySet, *Partition, error) {
	return readAny(r)
}

// decodeSetBody reads a set body (kind, kind header, payloads) with
// sketch owners offset by base — the inner payload of a partition file.
func decodeSetBody(d *setDecoder, base int32) (AnySet, error) {
	kind, err := d.u32()
	if err != nil {
		return nil, fmt.Errorf("core: reading sketch file kind: %w", err)
	}
	return decodeSetBodyKind(d, kind, base)
}

func decodeSetBodyKind(d *setDecoder, kind uint32, base int32) (AnySet, error) {
	switch kind {
	case kindUniform:
		return readUniformBody(d, base)
	case kindWeighted:
		return readWeightedBody(d, base)
	case kindApprox:
		return readApproxBody(d, base)
	case kindPartition:
		return nil, fmt.Errorf("core: sketch partitions cannot nest")
	default:
		return nil, fmt.Errorf("core: sketch file has unknown kind %d", kind)
	}
}

// validateView checks a decoded sketch view's structural invariants.
func validateView(s Sketch) error {
	switch x := s.(type) {
	case *ADS:
		return x.Validate()
	case *WeightedADS:
		return x.Validate()
	case *KMinsADS:
		return x.Validate()
	case *KPartitionADS:
		return x.Validate()
	}
	return nil
}

// readUniformBody parses the shared uniform body (everything after the
// version/kind prefix, identical in versions 1 and 2) into a frame-backed
// set.  Sketch owners are base..base+numNodes-1 (base is 0 for whole-set
// files and the node-range start for partitions).
func readUniformBody(d *setDecoder, base int32) (*Set, error) {
	var k, flavor, numNodes uint32
	var seed, baseBits uint64
	if err := d.header(&k, &flavor, &seed, &baseBits, &numNodes); err != nil {
		return nil, fmt.Errorf("core: reading sketch file header: %w", err)
	}
	o := Options{
		K:      int(k),
		Flavor: sketch.Flavor(flavor),
		Seed:   seed,
		BaseB:  math.Float64frombits(baseBits),
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	if k > maxCodecK {
		return nil, fmt.Errorf("core: implausible sketch parameter k=%d", k)
	}
	if numNodes > 1<<30 {
		return nil, fmt.Errorf("core: implausible node count %d", numNodes)
	}
	segs := 1
	switch o.Flavor {
	case sketch.BottomK:
	case sketch.KMins, sketch.KPartition:
		segs = o.K
	default:
		return nil, fmt.Errorf("core: sketch file has unknown flavor %d", flavor)
	}
	// Decode straight into growing frame columns; the segment-count hint
	// is capped so a corrupted node count fails at the first short read
	// instead of provoking one huge up-front allocation.
	acc := newFrameAccum(minInt(int(numNodes)*segs, maxEntryPrealloc))
	for v := uint32(0); v < numNodes; v++ {
		owner := base + int32(v)
		for s := 0; s < segs; s++ {
			if err := d.entriesInto(owner, acc); err != nil {
				return nil, err
			}
		}
	}
	set := &Set{frame: acc.frame(kindUniform, o, 0, 0, segs, base)}
	for v := 0; v < int(numNodes); v++ {
		if err := validateView(set.frame.viewSketch(v)); err != nil {
			return nil, fmt.Errorf("core: corrupt sketch file: %w", err)
		}
	}
	return set, nil
}

func readWeightedBody(d *setDecoder, base int32) (*WeightedSet, error) {
	var k, scheme, numNodes uint32
	if err := d.header(&k, &scheme, &numNodes); err != nil {
		return nil, fmt.Errorf("core: reading sketch file header: %w", err)
	}
	if k < 1 || k > maxCodecK {
		return nil, fmt.Errorf("core: implausible sketch parameter k=%d", k)
	}
	if scheme != uint32(ExponentialWeights) && scheme != uint32(PriorityWeights) {
		return nil, fmt.Errorf("core: sketch file has unknown weight scheme %d", scheme)
	}
	if numNodes > 1<<30 {
		return nil, fmt.Errorf("core: implausible node count %d", numNodes)
	}
	acc := newFrameAccum(minInt(int(numNodes), maxEntryPrealloc))
	for v := uint32(0); v < numNodes; v++ {
		owner := base + int32(v)
		if err := d.weightedEntriesInto(owner, acc); err != nil {
			return nil, err
		}
	}
	f := acc.frame(kindWeighted, Options{K: int(k)}, WeightScheme(scheme), 0, 1, base)
	set := &WeightedSet{frame: f}
	for v := 0; v < int(numNodes); v++ {
		if err := f.viewWeighted(v).Validate(); err != nil {
			return nil, fmt.Errorf("core: corrupt sketch file: %w", err)
		}
	}
	return set, nil
}

func readApproxBody(d *setDecoder, base int32) (*ApproxSet, error) {
	var k, numNodes uint32
	var epsBits uint64
	if err := d.header(&k, &epsBits, &numNodes); err != nil {
		return nil, fmt.Errorf("core: reading sketch file header: %w", err)
	}
	eps := math.Float64frombits(epsBits)
	if k < 1 || k > maxCodecK {
		return nil, fmt.Errorf("core: implausible sketch parameter k=%d", k)
	}
	if eps < 0 || math.IsNaN(eps) || math.IsInf(eps, 1) {
		return nil, fmt.Errorf("core: sketch file has invalid epsilon %g", eps)
	}
	if numNodes > 1<<30 {
		return nil, fmt.Errorf("core: implausible node count %d", numNodes)
	}
	acc := newFrameAccum(minInt(int(numNodes), maxEntryPrealloc))
	for v := uint32(0); v < numNodes; v++ {
		owner := base + int32(v)
		if err := d.entriesInto(owner, acc); err != nil {
			return nil, err
		}
	}
	f := acc.frame(kindApprox, Options{K: int(k)}, 0, eps, 1, base)
	for v := 0; v < int(numNodes); v++ {
		// Approximate sketches relax the exact inclusion rule (entries may
		// be justified by an ε-slack window that the final state no longer
		// exhibits), so only the rank-independent invariants are checked.
		if err := validateApproxView(f.viewADS(v)); err != nil {
			return nil, fmt.Errorf("core: corrupt sketch file: %w", err)
		}
	}
	return &ApproxSet{frame: f}, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// validateApproxView checks the invariants an approximate sketch
// guarantees regardless of ε: canonical order, distinct nodes, and the
// owner as first entry at distance 0.
func validateApproxView(a *ADS) error {
	owner, n := a.node, a.c.len()
	seen := make(map[int32]bool, n)
	for i := 0; i < n; i++ {
		e := a.c.at(i)
		if i > 0 && !a.c.at(i-1).before(e) {
			return fmt.Errorf("core: approx ADS(%d) entries %d,%d out of canonical order", owner, i-1, i)
		}
		if seen[e.Node] {
			return fmt.Errorf("core: approx ADS(%d) contains node %d twice", owner, e.Node)
		}
		seen[e.Node] = true
		if math.IsNaN(e.Dist) || math.IsInf(e.Dist, 1) || e.Dist < 0 {
			return fmt.Errorf("core: approx ADS(%d) entry %d has invalid distance %g", owner, i, e.Dist)
		}
		// Approximate sketches are built over uniform ranks in (0, 1]; a
		// rank outside that range would corrupt the 1/τ HIP weights.
		if !(e.Rank > 0) || e.Rank > 1 {
			return fmt.Errorf("core: approx ADS(%d) entry %d has invalid rank %g", owner, i, e.Rank)
		}
	}
	if n > 0 && (a.c.node[0] != owner || a.c.dist[0] != 0) {
		return fmt.Errorf("core: approx ADS(%d) does not start with the owner at distance 0", owner)
	}
	return nil
}

// WriteSet serializes a uniform sketch set in the legacy version-1
// format.
//
// Deprecated: use (*Set).WriteTo, which writes the current versioned
// format shared by all set kinds.
func WriteSet(w io.Writer, s *Set) error {
	e := &setEncoder{bw: bufio.NewWriter(w)}
	if _, err := e.bw.WriteString(encodeMagic); err != nil {
		return err
	}
	f := s.frame
	hdr := []error{
		e.u32(encodeVersion),
		e.u32(uint32(f.opts.K)),
		e.u32(uint32(f.opts.Flavor)),
		e.u64(f.opts.Seed),
		e.u64(math.Float64bits(f.opts.BaseB)),
		e.u32(uint32(f.n)),
	}
	for _, err := range hdr {
		if err != nil {
			return err
		}
	}
	for i := 0; i < f.n*f.segs; i++ {
		if err := e.entriesCols(f.segAt(i/f.segs, i%f.segs)); err != nil {
			return err
		}
	}
	return e.bw.Flush()
}

// ReadSet deserializes a uniform sketch set written by WriteSet or
// (*Set).WriteTo, validating every sketch's structural invariants.
//
// Deprecated: use ReadSketchSet, which restores any set kind.
func ReadSet(r io.Reader) (*Set, error) {
	set, err := ReadSketchSet(r)
	if err != nil {
		return nil, err
	}
	uniform, ok := set.(*Set)
	if !ok {
		return nil, fmt.Errorf("core: sketch file holds a %T, not a uniform set; use ReadSketchSet", set)
	}
	return uniform, nil
}
