package core

import (
	"math"
	"testing"
	"testing/quick"

	"adsketch/internal/graph"
	"adsketch/internal/rank"
)

func buildIndexedADS(seed uint64, n int) (*ADS, *HIPIndex) {
	src := rank.NewSource(seed)
	b := NewStreamBuilder(0, 8)
	for i := int64(0); i < int64(n); i++ {
		// Repeated distances to exercise the unique-distance grouping.
		b.Offer(int32(i), float64(i/3), src.Rank(i))
	}
	a := b.ADS()
	return a, NewHIPIndex(a)
}

func TestHIPIndexMatchesDirectEstimates(t *testing.T) {
	a, idx := buildIndexedADS(5, 600)
	for _, d := range []float64{-1, 0, 0.5, 1, 7, 33.3, 100, 199, 1e9} {
		want := EstimateNeighborhoodHIP(a, d)
		got := idx.Neighborhood(d)
		if math.Abs(want-got) > 1e-9 {
			t.Errorf("d=%g: index %g, direct %g", d, got, want)
		}
	}
	if math.Abs(idx.Total()-EstimateNeighborhoodHIP(a, math.Inf(1))) > 1e-9 {
		t.Error("Total mismatch")
	}
}

func TestHIPIndexProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, dRaw uint16) bool {
		a, idx := buildIndexedADS(seed, 200)
		d := float64(dRaw) / 100
		return math.Abs(idx.Neighborhood(d)-EstimateNeighborhoodHIP(a, d)) < 1e-9
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHIPIndexEmpty(t *testing.T) {
	idx := NewHIPIndex(NewADS(0, 3))
	if idx.Total() != 0 || idx.Neighborhood(5) != 0 || idx.QuantileDistance(0.5) != 0 {
		t.Error("empty index should report zeros")
	}
	if len(idx.Distances()) != 0 {
		t.Error("empty index has distances")
	}
}

func TestHIPIndexMonotone(t *testing.T) {
	_, idx := buildIndexedADS(9, 500)
	prev := -1.0
	for _, d := range idx.Distances() {
		cur := idx.Neighborhood(d)
		if cur <= prev {
			t.Fatal("cumulative weights not strictly increasing at step points")
		}
		prev = cur
	}
}

func TestHIPIndexQuantile(t *testing.T) {
	_, idx := buildIndexedADS(11, 400)
	med := idx.QuantileDistance(0.5)
	// The estimate at the median distance covers at least half the total.
	if idx.Neighborhood(med) < 0.5*idx.Total() {
		t.Errorf("median distance %g covers %g of %g", med, idx.Neighborhood(med), idx.Total())
	}
	// Quantiles are monotone in q.
	if idx.QuantileDistance(0.1) > idx.QuantileDistance(0.9) {
		t.Error("quantiles not monotone")
	}
	// q=1 lands on the last distance.
	if got := idx.QuantileDistance(1); got != idx.Distances()[len(idx.Distances())-1] {
		t.Errorf("q=1 distance %g", got)
	}
}

// Property test: builders agree on random small graphs with random seeds
// (complements the fixed-seed agreement table).
func TestBuildersAgreePropertyRandom(t *testing.T) {
	if err := quick.Check(func(gSeed, rSeed uint64, nRaw, pRaw uint8) bool {
		n := 10 + int(nRaw)%60
		p := 0.02 + float64(pRaw%50)/500
		g := graph.GNP(n, p, false, gSeed)
		o := Options{K: 3, Flavor: 0, Seed: rSeed}
		ref, err := BuildSet(g, o, AlgoBruteForce)
		if err != nil {
			return false
		}
		for _, algo := range []Algorithm{AlgoPrunedDijkstra, AlgoDP, AlgoLocalUpdates, AlgoPrunedDijkstraParallel} {
			got, err := BuildSet(g, o, algo)
			if err != nil {
				return false
			}
			for v := int32(0); int(v) < n; v++ {
				a := ref.BottomK(v).Entries()
				b := got.BottomK(v).Entries()
				if len(a) != len(b) {
					return false
				}
				for i := range a {
					if a[i] != b[i] {
						return false
					}
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
