package core

import (
	"fmt"
	"math"
	"sort"
)

// Cross-sketch applications enabled by coordination (Section 1): because
// all sketches share one rank permutation, the bottom-k MinHash sketch of
// any neighborhood union is computable from the per-node sketches, giving
// neighborhood similarity [Cohen et al. 2013] and influence-style union
// cardinalities [Du et al. 2013, Cohen et al. 2014] without touching the
// graph again.

// MinHashEntriesWithin extracts the bottom-k MinHash sketch of N_d(owner)
// with node identities: the (up to) k lowest-rank entries among those at
// distance <= d, ordered by increasing rank.
func (a *ADS) MinHashEntriesWithin(d float64) []Entry {
	m := a.SizeWithin(d)
	// Collect the k smallest-rank entries of the prefix.
	prefix := make([]Entry, m)
	for i := 0; i < m; i++ {
		prefix[i] = a.c.at(i)
	}
	sort.Slice(prefix, func(i, j int) bool { return prefix[i].Rank < prefix[j].Rank })
	if len(prefix) > a.k {
		prefix = prefix[:a.k]
	}
	return prefix
}

// NeighborhoodJaccard estimates the Jaccard similarity
// |N_da(a) ∩ N_db(b)| / |N_da(a) ∪ N_db(b)| of two neighborhoods from
// coordinated bottom-k sketches: the k lowest-rank members of the union
// are a uniform sample of it, and each sampled member is checked against
// both MinHash sketches.
func NeighborhoodJaccard(a *ADS, da float64, b *ADS, db float64) float64 {
	if a.k != b.k {
		panic(fmt.Sprintf("core: Jaccard across sketches with k=%d and k=%d", a.k, b.k))
	}
	ea := a.MinHashEntriesWithin(da)
	eb := b.MinHashEntriesWithin(db)
	inA := make(map[int32]bool, len(ea))
	for _, e := range ea {
		inA[e.Node] = true
	}
	inB := make(map[int32]bool, len(eb))
	for _, e := range eb {
		inB[e.Node] = true
	}
	union := mergeBottomK(a.k, ea, eb)
	if len(union) == 0 {
		return 0
	}
	both := 0
	for _, e := range union {
		if inA[e.Node] && inB[e.Node] {
			both++
		}
	}
	return float64(both) / float64(len(union))
}

// mergeBottomK returns the k lowest-rank distinct entries of the union of
// two rank-sorted entry lists.
func mergeBottomK(k int, a, b []Entry) []Entry {
	out := make([]Entry, 0, k)
	seen := make(map[int32]bool, k)
	i, j := 0, 0
	for len(out) < k && (i < len(a) || j < len(b)) {
		var e Entry
		if j >= len(b) || (i < len(a) && a[i].Rank <= b[j].Rank) {
			e = a[i]
			i++
		} else {
			e = b[j]
			j++
		}
		if !seen[e.Node] {
			seen[e.Node] = true
			out = append(out, e)
		}
	}
	return out
}

// UnionNeighborhoodSketches estimates |∪ N_d| over the given coordinated
// bottom-k sketches (merged in slice order): merge the per-sketch MinHash
// sketches of N_d and apply the basic bottom-k estimator to the merged
// sketch.  The sketches may come from anywhere — one set, a partition, or
// fetched from remote shards — as long as they share one rank permutation
// and the same k.
func UnionNeighborhoodSketches(k int, sketches []*ADS, d float64) float64 {
	var union []Entry
	for _, a := range sketches {
		union = mergeBottomK(k, union, a.MinHashEntriesWithin(d))
	}
	if len(union) < k {
		return float64(len(union))
	}
	return float64(k-1) / union[k-1].Rank
}

// UnionNeighborhoodEstimate estimates |∪_s N_d(s)| over a set of seed
// nodes from their coordinated bottom-k sketches.  This is the timed-
// influence primitive ([14] in the paper): the number of nodes within
// distance d of at least one seed.
func UnionNeighborhoodEstimate(set *Set, seeds []int32, d float64) float64 {
	if len(seeds) == 0 {
		return 0
	}
	sketches := make([]*ADS, len(seeds))
	for i, s := range seeds {
		a, ok := set.Sketch(s).(*ADS)
		if !ok {
			panic("core: union estimates require bottom-k sketches")
		}
		sketches[i] = a
	}
	return UnionNeighborhoodSketches(set.K(), sketches, d)
}

// GreedyInfluenceSketches greedily picks numSeeds nodes from candidates
// maximizing the estimated union neighborhood |∪_s N_d(s)|, resolving
// each node's coordinated bottom-k sketch through lookup — the location-
// independent core of GreedyInfluenceSeeds, usable when the sketches are
// scattered across shards.
func GreedyInfluenceSketches(k int, lookup func(int32) *ADS, candidates []int32, numSeeds int, d float64) ([]int32, float64) {
	var seeds []int32
	var sketches []*ADS
	chosen := make(map[int32]bool)
	best := 0.0
	for len(seeds) < numSeeds {
		var bestNode int32 = -1
		bestGain := best
		for _, c := range candidates {
			if chosen[c] {
				continue
			}
			est := UnionNeighborhoodSketches(k, append(sketches, lookup(c)), d)
			if est > bestGain || bestNode < 0 {
				bestGain = est
				bestNode = c
			}
		}
		if bestNode < 0 {
			break
		}
		seeds = append(seeds, bestNode)
		sketches = append(sketches, lookup(bestNode))
		chosen[bestNode] = true
		best = bestGain
	}
	return seeds, best
}

// GreedyInfluenceSeeds greedily picks numSeeds nodes maximizing the
// estimated union neighborhood |∪_s N_d(s)| — the classic influence-
// maximization heuristic evaluated entirely on sketches.  candidates
// limits the pool considered per round (pass nil for all nodes).
func GreedyInfluenceSeeds(set *Set, candidates []int32, numSeeds int, d float64) ([]int32, float64) {
	if candidates == nil {
		candidates = make([]int32, set.NumNodes())
		for i := range candidates {
			candidates[i] = int32(i)
		}
	}
	lookup := func(v int32) *ADS {
		a, ok := set.Sketch(v).(*ADS)
		if !ok {
			panic("core: union estimates require bottom-k sketches")
		}
		return a
	}
	return GreedyInfluenceSketches(set.K(), lookup, candidates, numSeeds, d)
}

// DistanceUpperBound estimates an upper bound on d(a.owner, b.owner) from
// two coordinated forward/backward sketches: any node x sampled in both
// gives the triangle bound d(a,x) + d(x,b), and the minimum over the
// common samples is returned (+Inf if the sketches share no node).  With
// forward ADS(a) and backward ADS(b) (built on the transpose) this is the
// classic sketch-based distance oracle of coordinated samples: low-rank
// nodes act as beacons present in most sketches.
func DistanceUpperBound(a, b *ADS) float64 {
	distA := make(map[int32]float64, a.Size())
	for i, n := 0, a.Size(); i < n; i++ {
		node, dist := a.c.node[i], a.c.dist[i]
		if d, ok := distA[node]; !ok || dist < d {
			distA[node] = dist
		}
	}
	best := math.Inf(1)
	for i, n := 0, b.Size(); i < n; i++ {
		if d, ok := distA[b.c.node[i]]; ok && d+b.c.dist[i] < best {
			best = d + b.c.dist[i]
		}
	}
	return best
}
