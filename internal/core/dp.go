package core

import (
	"sort"

	"adsketch/internal/graph"
)

// dpRun is the node-centric dynamic-programming construction for unweighted
// graphs (Section 3; k-mins in ANF, k-partition in HyperANF): Bellman–Ford
// style rounds where round t inserts exactly the entries at hop distance t.
// Entries therefore arrive in increasing distance, and within a round
// candidates are applied in node-ID order, so insertions follow the
// canonical order and every inserted entry is final.
//
// Frontier entries added in round t-1 at node u are relaxed along every arc
// (v -> u), offering (candidate, t) to ADS(v); the relaxation count is
// bounded by Σ_u indeg(u)·|ADS(u)| = O(k·m·log n) in expectation.
func dpRun(g *graph.Graph, s runSpec) [][]Entry {
	n := g.NumNodes()
	lists := make([][]Entry, n)
	heaps := make([]*maxHeap, n)
	member := make([]map[int32]struct{}, n)
	for v := 0; v < n; v++ {
		heaps[v] = newMaxHeap(s.k)
		member[v] = make(map[int32]struct{}, s.k)
	}
	// tr lets us iterate the in-neighbors of a frontier node.
	tr := g.Transpose()

	insert := func(v int32, e Entry) bool {
		if _, ok := member[v][e.Node]; ok {
			return false
		}
		h := heaps[v]
		if h.size() >= s.k && e.Rank >= h.max() {
			return false
		}
		lists[v] = append(lists[v], e)
		member[v][e.Node] = struct{}{}
		h.offer(e.Rank)
		return true
	}

	// Round 0: every candidate node starts its own ADS.
	type update struct {
		at   int32 // node whose ADS gained the entry
		cand int32 // the sampled node
	}
	var frontier []update
	for v := int32(0); int(v) < n; v++ {
		if !s.candidate(v) {
			continue
		}
		if insert(v, Entry{Node: v, Dist: 0, Rank: s.rank(v)}) {
			frontier = append(frontier, update{at: v, cand: v})
		}
	}

	type candidate struct {
		at   int32
		cand int32
	}
	for dist := 1.0; len(frontier) > 0; dist++ {
		// Gather candidates: every in-neighbor of a node whose ADS gained
		// an entry last round may now include that entry one hop farther.
		var cands []candidate
		for _, up := range frontier {
			ins, _ := tr.Neighbors(up.at)
			for _, v := range ins {
				cands = append(cands, candidate{at: v, cand: up.cand})
			}
		}
		// Apply in canonical order: per target node, by candidate ID.
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].at != cands[j].at {
				return cands[i].at < cands[j].at
			}
			return cands[i].cand < cands[j].cand
		})
		frontier = frontier[:0]
		var last candidate
		for i, c := range cands {
			if i > 0 && c == last {
				continue // duplicate arrival via parallel paths
			}
			last = c
			if insert(c.at, Entry{Node: c.cand, Dist: dist, Rank: s.rank(c.cand)}) {
				frontier = append(frontier, update{at: c.at, cand: c.cand})
			}
		}
	}
	return lists
}
