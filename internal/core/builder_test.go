package core

import (
	"fmt"
	"testing"

	"adsketch/internal/graph"
	"adsketch/internal/sketch"
)

// equalSketches compares two sketches of the same flavor entry by entry.
func equalSketches(t *testing.T, label string, a, b Sketch) {
	t.Helper()
	switch x := a.(type) {
	case *ADS:
		y := b.(*ADS)
		equalEntryLists(t, label, x.Entries(), y.Entries())
	case *KMinsADS:
		y := b.(*KMinsADS)
		for h := 0; h < x.K(); h++ {
			equalEntryLists(t, fmt.Sprintf("%s perm %d", label, h), x.Perm(h), y.Perm(h))
		}
	case *KPartitionADS:
		y := b.(*KPartitionADS)
		for bk := 0; bk < x.K(); bk++ {
			equalEntryLists(t, fmt.Sprintf("%s bucket %d", label, bk), x.Bucket(bk), y.Bucket(bk))
		}
	default:
		t.Fatalf("%s: unknown sketch type %T", label, a)
	}
}

func equalEntryLists(t *testing.T, label string, a, b []Entry) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d entries\n%v\n%v", label, len(a), len(b), a, b)
	}
	for i := range a {
		if a[i].Node != b[i].Node || a[i].Rank != b[i].Rank ||
			!almostEqual(a[i].Dist, b[i].Dist) {
			t.Fatalf("%s: entry %d differs: %+v vs %+v", label, i, a[i], b[i])
		}
	}
}

func almostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+a+b)
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":          graph.Path(40),
		"cycle":         graph.Cycle(37),
		"grid":          graph.Grid(7, 8),
		"gnp":           graph.GNP(120, 0.04, false, 5),
		"gnp-directed":  graph.GNP(100, 0.05, true, 6),
		"ba":            graph.PreferentialAttachment(150, 3, 7),
		"tree":          graph.RandomTree(90, 8),
		"disconnected":  graph.GNP(80, 0.01, false, 9),
		"star":          graph.Star(30),
		"two-node":      graph.Path(2),
		"singleton":     graph.Path(1),
		"complete-tiny": graph.Complete(6),
	}
}

func weightedTestGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"wpath":         graph.WithRandomWeights(graph.Path(30), 1, 4, 11),
		"wgrid":         graph.WithRandomWeights(graph.Grid(6, 6), 0.5, 2, 12),
		"wgnp":          graph.WithRandomWeights(graph.GNP(80, 0.06, false, 13), 1, 10, 14),
		"wgnp-directed": graph.WithRandomWeights(graph.GNP(70, 0.07, true, 15), 1, 3, 16),
		"wba":           graph.WithRandomWeights(graph.PreferentialAttachment(90, 2, 17), 1, 2, 18),
	}
}

func allFlavors() []sketch.Flavor {
	return []sketch.Flavor{sketch.BottomK, sketch.KMins, sketch.KPartition}
}

// TestBuildersAgreeUnweighted checks that PrunedDijkstra, DP, LocalUpdates
// and the brute-force reference produce identical sketch sets on unweighted
// graphs, for every flavor.
func TestBuildersAgreeUnweighted(t *testing.T) {
	for name, g := range testGraphs() {
		for _, fl := range allFlavors() {
			for _, k := range []int{1, 3, 8} {
				o := Options{K: k, Flavor: fl, Seed: 42}
				ref, err := BuildSet(g, o, AlgoBruteForce)
				if err != nil {
					t.Fatal(err)
				}
				for _, algo := range []Algorithm{AlgoPrunedDijkstra, AlgoDP, AlgoLocalUpdates} {
					got, err := BuildSet(g, o, algo)
					if err != nil {
						t.Fatal(err)
					}
					for v := int32(0); int(v) < g.NumNodes(); v++ {
						label := fmt.Sprintf("%s/%v/k=%d/%v/node %d", name, fl, k, algo, v)
						equalSketches(t, label, ref.Sketch(v), got.Sketch(v))
					}
				}
			}
		}
	}
}

// TestBuildersAgreeWeighted checks PrunedDijkstra and LocalUpdates against
// brute force on weighted graphs.
func TestBuildersAgreeWeighted(t *testing.T) {
	for name, g := range weightedTestGraphs() {
		for _, fl := range allFlavors() {
			o := Options{K: 4, Flavor: fl, Seed: 99}
			ref, err := BuildSet(g, o, AlgoBruteForce)
			if err != nil {
				t.Fatal(err)
			}
			for _, algo := range []Algorithm{AlgoPrunedDijkstra, AlgoLocalUpdates} {
				got, err := BuildSet(g, o, algo)
				if err != nil {
					t.Fatal(err)
				}
				for v := int32(0); int(v) < g.NumNodes(); v++ {
					label := fmt.Sprintf("%s/%v/%v/node %d", name, fl, algo, v)
					equalSketches(t, label, ref.Sketch(v), got.Sketch(v))
				}
			}
		}
	}
}

// TestBuildersAgreeBaseB checks that base-b rounding (which introduces rank
// ties) still yields identical structures across builders.
func TestBuildersAgreeBaseB(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnp":  graph.GNP(100, 0.05, false, 21),
		"grid": graph.Grid(6, 7),
		"wgnp": graph.WithRandomWeights(graph.GNP(70, 0.06, false, 22), 1, 5, 23),
	}
	for name, g := range graphs {
		for _, b := range []float64{2, 1.2} {
			o := Options{K: 4, Flavor: sketch.BottomK, Seed: 77, BaseB: b}
			ref, err := BuildSet(g, o, AlgoBruteForce)
			if err != nil {
				t.Fatal(err)
			}
			algos := []Algorithm{AlgoPrunedDijkstra, AlgoLocalUpdates}
			if !g.Weighted() {
				algos = append(algos, AlgoDP)
			}
			for _, algo := range algos {
				got, err := BuildSet(g, o, algo)
				if err != nil {
					t.Fatal(err)
				}
				for v := int32(0); int(v) < g.NumNodes(); v++ {
					label := fmt.Sprintf("%s/b=%g/%v/node %d", name, b, algo, v)
					equalSketches(t, label, ref.Sketch(v), got.Sketch(v))
				}
			}
		}
	}
}

// TestBuiltSketchesValid validates the structural invariants of everything
// the builders produce.
func TestBuiltSketchesValid(t *testing.T) {
	g := graph.GNP(150, 0.04, false, 31)
	for _, fl := range allFlavors() {
		set, err := BuildSet(g, Options{K: 5, Flavor: fl, Seed: 1}, AlgoPrunedDijkstra)
		if err != nil {
			t.Fatal(err)
		}
		for v := int32(0); int(v) < g.NumNodes(); v++ {
			var err error
			switch s := set.Sketch(v).(type) {
			case *ADS:
				err = s.Validate()
			case *KMinsADS:
				err = s.Validate()
			case *KPartitionADS:
				err = s.Validate()
			}
			if err != nil {
				t.Fatalf("%v node %d: %v", fl, v, err)
			}
		}
	}
}

// TestBottomKADSContainsKNearest checks the definitional property that the
// k closest nodes always belong to the bottom-k ADS.
func TestBottomKADSContainsKNearest(t *testing.T) {
	g := graph.PreferentialAttachment(200, 3, 44)
	const k = 6
	set, err := BuildSet(g, Options{K: k, Flavor: sketch.BottomK, Seed: 8}, AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int32{0, 50, 199} {
		order := graph.NearestOrder(g, v)
		ads := set.BottomK(v)
		members := map[int32]bool{}
		for _, e := range ads.Entries() {
			members[e.Node] = true
		}
		for i := 0; i < k && i < len(order); i++ {
			if !members[order[i].Node] {
				t.Errorf("node %d: %d-th nearest (%d) missing from ADS", v, i, order[i].Node)
			}
		}
	}
}

// TestADSEntryDistancesAreShortestPaths checks that stored distances equal
// true shortest-path distances.
func TestADSEntryDistancesAreShortestPaths(t *testing.T) {
	g := graph.WithRandomWeights(graph.GNP(90, 0.07, true, 55), 1, 6, 56)
	set, err := BuildSet(g, Options{K: 4, Flavor: sketch.BottomK, Seed: 3}, AlgoLocalUpdates)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); int(v) < g.NumNodes(); v++ {
		dist := graph.Dijkstra(g, v)
		for _, e := range set.BottomK(v).Entries() {
			if !almostEqual(e.Dist, dist[e.Node]) {
				t.Fatalf("node %d entry %d: dist %g, true %g", v, e.Node, e.Dist, dist[e.Node])
			}
		}
	}
}

// TestDirectedForwardBackward: building on the transpose gives the
// backward sketches (distance measured toward the owner).
func TestDirectedForwardBackward(t *testing.T) {
	b := graph.NewBuilder(3, true)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(1, 2, 3)
	g := b.Build()
	fwd, err := BuildSet(g, Options{K: 3, Flavor: sketch.BottomK, Seed: 4}, AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	bwd, err := BuildSet(g.Transpose(), Options{K: 3, Flavor: sketch.BottomK, Seed: 4}, AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	// Forward ADS(0) reaches 0,1,2; backward ADS(0) sees only 0.
	if fwd.BottomK(0).Size() != 3 {
		t.Errorf("forward ADS(0) size = %d, want 3", fwd.BottomK(0).Size())
	}
	if bwd.BottomK(0).Size() != 1 {
		t.Errorf("backward ADS(0) size = %d, want 1", bwd.BottomK(0).Size())
	}
	// Backward ADS(2) sees all three with distances 5, 3, 0.
	be := bwd.BottomK(2).Entries()
	if len(be) != 3 || be[0].Dist != 0 || be[1].Dist != 3 || be[2].Dist != 5 {
		t.Errorf("backward ADS(2) entries = %v", be)
	}
}

func TestBuildSetErrors(t *testing.T) {
	g := graph.Path(4)
	if _, err := BuildSet(g, Options{K: 0, Flavor: sketch.BottomK}, AlgoDP); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := BuildSet(g, Options{K: 2, Flavor: sketch.BottomK, BaseB: 0.5}, AlgoDP); err == nil {
		t.Error("BaseB=0.5 accepted")
	}
	wg := graph.WithRandomWeights(g, 1, 2, 1)
	if _, err := BuildSet(wg, Options{K: 2, Flavor: sketch.BottomK}, AlgoDP); err == nil {
		t.Error("DP on weighted graph accepted")
	}
	if _, err := BuildSet(g, Options{K: 2, Flavor: sketch.Flavor(9)}, AlgoDP); err == nil {
		t.Error("unknown flavor accepted")
	}
	if _, err := BuildSet(g, Options{K: 2, Flavor: sketch.BottomK}, Algorithm(9)); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		AlgoPrunedDijkstra: "PrunedDijkstra",
		AlgoDP:             "DP",
		AlgoLocalUpdates:   "LocalUpdates",
		AlgoBruteForce:     "BruteForce",
		Algorithm(9):       "Algorithm(9)",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
	}
}

func TestSetAccessors(t *testing.T) {
	g := graph.Path(10)
	o := Options{K: 2, Flavor: sketch.BottomK, Seed: 5}
	set, err := BuildSet(g, o, AlgoDP)
	if err != nil {
		t.Fatal(err)
	}
	if set.NumNodes() != 10 {
		t.Errorf("NumNodes = %d", set.NumNodes())
	}
	if set.Options() != o {
		t.Error("Options not retained")
	}
	total := 0
	for v := int32(0); v < 10; v++ {
		total += set.Sketch(v).Size()
	}
	if set.TotalEntries() != total {
		t.Errorf("TotalEntries = %d, want %d", set.TotalEntries(), total)
	}
}

// TestCoordination: sketches from the same seed sample the same low-rank
// nodes, enabling similarity estimation across nodes.
func TestCoordination(t *testing.T) {
	g := graph.Complete(30)
	o := Options{K: 5, Flavor: sketch.BottomK, Seed: 10}
	set, err := BuildSet(g, o, AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	// In a complete graph all nodes share the same neighborhood at d=1, so
	// every ADS must sample the same k+? low-rank nodes at distance <= 1
	// (the k globally smallest ranks, plus the owner).
	src := o.Source()
	globalBest := map[int32]bool{}
	type nr struct {
		n int32
		r float64
	}
	var all []nr
	for v := int32(0); v < 30; v++ {
		all = append(all, nr{v, src.Rank(int64(v))})
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].r < all[i].r {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	for i := 0; i < 5; i++ {
		globalBest[all[i].n] = true
	}
	for v := int32(0); v < 30; v++ {
		sampled := map[int32]bool{}
		for _, e := range set.BottomK(v).Entries() {
			sampled[e.Node] = true
		}
		for n := range globalBest {
			if !sampled[n] {
				t.Errorf("node %d: globally smallest-rank node %d missing (coordination broken)", v, n)
			}
		}
	}
}

func TestBuildersHandleMultiEdges(t *testing.T) {
	// Parallel edges and self-loops must not break any builder.
	b := graph.NewBuilder(5, false)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1) // parallel
	b.AddWeightedEdge(1, 2, 1)
	b.AddWeightedEdge(1, 2, 3) // parallel, heavier
	b.AddEdge(3, 3)            // self loop
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g := b.Build()
	o := Options{K: 2, Flavor: sketch.BottomK, Seed: 13}
	ref, err := BuildSet(g, o, AlgoBruteForce)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgoPrunedDijkstra, AlgoLocalUpdates, AlgoPrunedDijkstraParallel} {
		got, err := BuildSet(g, o, algo)
		if err != nil {
			t.Fatal(err)
		}
		for v := int32(0); int(v) < g.NumNodes(); v++ {
			equalSketches(t, fmt.Sprintf("multi-edge %v node %d", algo, v), ref.Sketch(v), got.Sketch(v))
		}
	}
}

func TestBuildersEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0, false).Build()
	for _, algo := range []Algorithm{AlgoPrunedDijkstra, AlgoDP, AlgoLocalUpdates, AlgoBruteForce, AlgoPrunedDijkstraParallel} {
		for _, fl := range allFlavors() {
			set, err := BuildSet(g, Options{K: 2, Flavor: fl, Seed: 1}, algo)
			if err != nil {
				t.Fatalf("%v/%v: %v", algo, fl, err)
			}
			if set.NumNodes() != 0 || set.TotalEntries() != 0 {
				t.Errorf("%v/%v: nonempty result on empty graph", algo, fl)
			}
		}
	}
}

func graphPathForTest(n int) *graph.Graph { return graph.Path(n) }
