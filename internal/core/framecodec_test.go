package core

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"adsketch/internal/graph"
	"adsketch/internal/sketch"
)

// frameKinds builds one set of every kind/flavor the codec must carry.
func frameKinds(t *testing.T) map[string]AnySet {
	t.Helper()
	g := graph.PreferentialAttachment(120, 3, 9)
	out := map[string]AnySet{}
	for name, o := range map[string]Options{
		"bottomk":    {K: 8, Seed: 42},
		"kmins":      {K: 4, Flavor: sketch.KMins, Seed: 42},
		"kpartition": {K: 4, Flavor: sketch.KPartition, Seed: 42},
		"baseb":      {K: 8, Seed: 42, BaseB: 2},
	} {
		set, err := BuildSet(g, o, AlgoPrunedDijkstra)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = set
	}
	beta := make([]float64, g.NumNodes())
	for i := range beta {
		beta[i] = 1 + float64(i%7)
	}
	weighted, err := BuildWeightedSet(g, 8, 42, beta)
	if err != nil {
		t.Fatal(err)
	}
	out["weighted"] = weighted
	priority, err := BuildPriorityWeightedSet(g, 8, 42, beta)
	if err != nil {
		t.Fatal(err)
	}
	out["priority"] = priority
	approx, err := BuildApproxSet(g, 8, 42, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	out["approx"] = approx
	return out
}

// v2Bytes is the canonical comparison key: two sets serializing to the
// same version-2 bytes hold bit-identical sketches.
func v2Bytes(t *testing.T, s AnySet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func v3Bytes(t *testing.T, s AnySet) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := WriteSketchSetV3(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteSketchSetV3 reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// TestFrameCodecRoundTrip: every set kind must survive the v3 codec
// bit-for-bit, through both the streaming reader and the zero-copy file
// opener.
func TestFrameCodecRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for name, set := range frameKinds(t) {
		t.Run(name, func(t *testing.T) {
			want := v2Bytes(t, set)
			data := v3Bytes(t, set)

			// Streaming path (ReadSketchSet on arbitrary readers).
			streamed, err := ReadSketchSet(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("stream read: %v", err)
			}
			if got := v2Bytes(t, streamed); !bytes.Equal(got, want) {
				t.Fatalf("streamed v3 round trip differs from original (%d vs %d bytes)", len(got), len(want))
			}

			// Zero-copy path.
			path := filepath.Join(dir, name+".ads")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			sf, err := OpenSketchFile(path)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			if sf.Partition() != nil {
				t.Fatal("whole-set file opened as partition")
			}
			opened := sf.Set()
			if got := v2Bytes(t, opened); !bytes.Equal(got, want) {
				t.Fatalf("opened v3 round trip differs from original")
			}
			// Estimates (and therefore HIP weights) must be bit-identical.
			for v := 0; v < set.NumNodes(); v += 17 {
				a, b := set.SketchOf(int32(v)).HIPEntries(), opened.SketchOf(int32(v)).HIPEntries()
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("node %d HIP entries differ after v3 round trip", v)
				}
			}
		})
	}
}

// TestPartitionV3RoundTrip: kind-3 v3 shard files keep the partition
// header and merge back bit-for-bit.
func TestPartitionV3RoundTrip(t *testing.T) {
	for name, set := range frameKinds(t) {
		t.Run(name, func(t *testing.T) {
			want := v2Bytes(t, set)
			parts, err := SplitSketchSet(set, 3)
			if err != nil {
				t.Fatal(err)
			}
			reloaded := make([]*Partition, len(parts))
			for i, p := range parts {
				var buf bytes.Buffer
				if _, err := WritePartitionV3(&buf, p); err != nil {
					t.Fatal(err)
				}
				// Stream path.
				rp, err := ReadPartition(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("partition %d: %v", i, err)
				}
				if rp.Index() != p.Index() || rp.Count() != p.Count() || rp.Lo() != p.Lo() ||
					rp.Hi() != p.Hi() || rp.TotalNodes() != p.TotalNodes() {
					t.Fatalf("partition %d header mangled: %+v", i, rp)
				}
				// Zero-copy path.
				path := filepath.Join(t.TempDir(), "part.ads")
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				sf, err := OpenSketchFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if sf.Set() != nil || sf.Partition() == nil {
					t.Fatalf("partition file %d did not open as a partition", i)
				}
				reloaded[i] = sf.Partition()
			}
			merged, err := MergeSketchSets(reloaded)
			if err != nil {
				t.Fatal(err)
			}
			if got := v2Bytes(t, merged); !bytes.Equal(got, want) {
				t.Fatal("merge of reloaded v3 partitions differs from original")
			}
		})
	}
}

// TestOpenSketchFileAllocs pins the O(1)-allocations-per-set claim: the
// allocation count of opening a v3 file must be a small constant that
// does not grow with the set.
func TestOpenSketchFileAllocs(t *testing.T) {
	if !nativeLittleEndian {
		t.Skip("zero-copy open requires a little-endian host")
	}
	dir := t.TempDir()
	openAllocs := func(n int) float64 {
		g := graph.PreferentialAttachment(n, 3, 9)
		set, err := BuildSet(g, Options{K: 8, Seed: 42}, AlgoPrunedDijkstra)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "allocs.ads")
		if err := os.WriteFile(path, v3Bytes(t, set), 0o644); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(10, func() {
			sf, err := OpenSketchFile(path)
			if err != nil {
				t.Fatal(err)
			}
			_ = sf.Set().TotalEntries()
		})
	}
	small, large := openAllocs(50), openAllocs(2000)
	if small > 16 {
		t.Errorf("opening a v3 set costs %.0f allocations, want O(1)", small)
	}
	if large != small {
		t.Errorf("allocations grow with the set: %.0f (50 nodes) vs %.0f (2000 nodes)", small, large)
	}
}

// TestMmapSketchFile: the mapped file serves identical estimates and
// reports its mapping.
func TestMmapSketchFile(t *testing.T) {
	g := graph.PreferentialAttachment(200, 3, 9)
	set, err := BuildSet(g, Options{K: 8, Seed: 42}, AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mmap.ads")
	if err := os.WriteFile(path, v3Bytes(t, set), 0o644); err != nil {
		t.Fatal(err)
	}
	sf, err := MmapSketchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if mmapSupported && !sf.Mapped() {
		t.Error("v3 file not mapped on a platform with mmap support")
	}
	want := v2Bytes(t, set)
	if got := v2Bytes(t, sf.Set().(AnySet)); !bytes.Equal(got, want) {
		t.Fatal("mmap'd set differs from original")
	}
	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}
	if sf.Set() != nil {
		t.Error("Set() still accessible after Close")
	}
	// v2 files go through the decode fallback and are not mapped.
	v2path := filepath.Join(t.TempDir(), "v2.ads")
	f, err := os.Create(v2path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sf2, err := MmapSketchFile(v2path)
	if err != nil {
		t.Fatal(err)
	}
	if sf2.Mapped() {
		t.Error("v2 file reported as mapped")
	}
	if got := v2Bytes(t, sf2.Set().(AnySet)); !bytes.Equal(got, want) {
		t.Fatal("v2 fallback set differs from original")
	}
}

// TestV2FixtureBackCompat reads the committed pre-refactor version-2
// file: it must load through every reader, and a fresh deterministic
// build must still serialize to exactly those bytes (pinning both the
// builders and the v2 writer across the columnar refactor).
func TestV2FixtureBackCompat(t *testing.T) {
	const fixture = "testdata/uniform_v2_k8.ads"
	data, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	set, err := ReadSketchSet(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("reading committed v2 fixture: %v", err)
	}
	if set.NumNodes() != 200 || set.K() != 8 {
		t.Fatalf("fixture holds %d nodes, k=%d; want 200, 8", set.NumNodes(), set.K())
	}
	sf, err := OpenSketchFile(fixture)
	if err != nil {
		t.Fatalf("OpenSketchFile on v2 fixture: %v", err)
	}
	if !bytes.Equal(v2Bytes(t, sf.Set()), data) {
		t.Error("v2 fixture does not round trip through OpenSketchFile")
	}
	g := graph.PreferentialAttachment(200, 3, 7)
	rebuilt, err := BuildSet(g, Options{K: 8, Seed: 42}, AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v2Bytes(t, rebuilt), data) {
		t.Error("fresh deterministic build no longer matches the committed v2 bytes")
	}
}

// TestOpenFrameBytesRejectsCorruption: header and offset corruption must
// error out, never panic or over-allocate.
func TestOpenFrameBytesRejectsCorruption(t *testing.T) {
	g := graph.PreferentialAttachment(60, 3, 9)
	set, err := BuildSet(g, Options{K: 4, Seed: 42}, AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	valid := v3Bytes(t, set)
	if _, _, err := openFrameBytes(valid); err != nil {
		t.Fatalf("valid bytes rejected: %v", err)
	}
	le := binary.LittleEndian
	mutate := func(name string, fn func(b []byte)) {
		b := append([]byte(nil), valid...)
		fn(b)
		if _, _, err := openFrameBytes(b); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
	mutate("bad magic", func(b []byte) { b[0] = 'X' })
	mutate("bad version", func(b []byte) { le.PutUint32(b[4:], 99) })
	mutate("bad kind", func(b []byte) { le.PutUint32(b[8:], 77) })
	mutate("bad flags", func(b []byte) { le.PutUint32(b[12:], 0xff) })
	mutate("zero k", func(b []byte) { le.PutUint32(b[16:], 0) })
	mutate("huge node count", func(b []byte) { le.PutUint64(b[16+40:], 1<<40) })
	mutate("huge entry count", func(b []byte) { le.PutUint64(b[16+48:], 1<<50) })
	mutate("segs mismatch", func(b []byte) { le.PutUint32(b[16+28:], 3) })
	mutate("offsets decrease", func(b []byte) {
		le.PutUint64(b[framePreambleSize+frameHdrSize+8:], ^uint64(0)) // offsets[1] = -1
	})
	mutate("offsets overrun", func(b []byte) {
		// Last offset claims more entries than the columns hold.
		nSegs := int64(60)
		pos := int64(framePreambleSize+frameHdrSize) + nSegs*8
		le.PutUint64(b[pos:], 1<<30)
	})
	for _, cut := range []int{1, 8, 15, 16 + frameHdrSize - 1, len(valid) / 2, len(valid) - 1} {
		b := valid[:cut]
		if _, _, err := openFrameBytes(b); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// FuzzOpenSketchFile drives the v3 zero-copy parser with arbitrary
// bytes: it must never panic or allocate according to unvalidated header
// claims, and anything it accepts must behave like a sketch set.
func FuzzOpenSketchFile(f *testing.F) {
	g := graph.PreferentialAttachment(40, 3, 9)
	set, err := BuildSet(g, Options{K: 4, Seed: 42}, AlgoPrunedDijkstra)
	if err != nil {
		f.Fatal(err)
	}
	var whole bytes.Buffer
	if _, err := WriteSketchSetV3(&whole, set); err != nil {
		f.Fatal(err)
	}
	f.Add(whole.Bytes())
	parts, err := SplitSketchSet(set, 2)
	if err != nil {
		f.Fatal(err)
	}
	var part bytes.Buffer
	if _, err := WritePartitionV3(&part, parts[1]); err != nil {
		f.Fatal(err)
	}
	f.Add(part.Bytes())
	f.Add([]byte("ADSK"))
	f.Fuzz(func(t *testing.T, data []byte) {
		set, p, err := openFrameBytes(data)
		if err != nil {
			return
		}
		if (set == nil) == (p == nil) {
			t.Fatal("accepted bytes yielded neither set nor partition")
		}
		if p != nil {
			set = p.Set()
		}
		// Exercise the views; corrupt-but-well-formed data may yield
		// garbage estimates but must never crash.
		n := set.NumNodes()
		for v := 0; v < n && v < 8; v++ {
			_ = set.SketchOf(int32(v)).HIPEntries()
		}
		_ = set.TotalEntries()
		// The streaming reader must agree on acceptance.
		if _, _, serr := ReadSketchFile(bytes.NewReader(data)); serr != nil {
			t.Fatalf("zero-copy parser accepted what the streaming reader rejects: %v", serr)
		}
	})
}
