package core

import (
	"math"
	"testing"

	"adsketch/internal/graph"
	"adsketch/internal/rank"
	"adsketch/internal/sketch"
	"adsketch/internal/stats"
)

// streamSketch builds a flavor sketch over n elements in arrival order.
func streamSketch(fl sketch.Flavor, k, n int, seed uint64) Sketch {
	src := rank.NewSource(seed)
	switch fl {
	case sketch.BottomK:
		b := NewStreamBuilder(0, k)
		for i := int64(0); i < int64(n); i++ {
			b.Offer(int32(i), float64(i), src.Rank(i))
		}
		return b.ADS()
	case sketch.KMins:
		a := NewKMinsADS(0, k)
		for i := int64(0); i < int64(n); i++ {
			for h := 0; h < k; h++ {
				a.OfferAt(h, Entry{Node: int32(i), Dist: float64(i), Rank: src.RankAt(h, i)})
			}
		}
		return a
	case sketch.KPartition:
		a := NewKPartitionADS(0, k)
		for i := int64(0); i < int64(n); i++ {
			b := src.Bucket(i, k)
			a.OfferAt(b, Entry{Node: int32(i), Dist: float64(i), Rank: src.Rank(i)})
		}
		return a
	}
	panic("unknown flavor")
}

// TestHIPUnbiasedAllFlavors checks E[HIP estimate] = n for each flavor.
func TestHIPUnbiasedAllFlavors(t *testing.T) {
	const k, n, runs = 8, 600, 400
	for _, fl := range []sketch.Flavor{sketch.BottomK, sketch.KMins, sketch.KPartition} {
		acc := stats.NewErrAccum(n)
		for run := 0; run < runs; run++ {
			s := streamSketch(fl, k, n, uint64(run)*1315423911+7)
			acc.Add(EstimateNeighborhoodHIP(s, n))
		}
		if bias := acc.Bias(); math.Abs(bias) > 0.03 {
			t.Errorf("%v HIP bias = %+.3f, want ~0", fl, bias)
		}
	}
}

// TestHIPCVMatchesTheory: the bottom-k HIP CV should track the Theorem 5.1
// bound 1/sqrt(2(k-1)) for n >> k and never exceed it materially.
func TestHIPCVMatchesTheory(t *testing.T) {
	const n, runs = 2000, 500
	for _, k := range []int{4, 8, 16} {
		acc := stats.NewErrAccum(n)
		for run := 0; run < runs; run++ {
			s := streamSketch(sketch.BottomK, k, n, uint64(run)*2654435761+13)
			acc.Add(EstimateNeighborhoodHIP(s, n))
		}
		bound := sketch.HIPCV(k)
		got := acc.NRMSE()
		if got > 1.15*bound {
			t.Errorf("k=%d: HIP NRMSE %g exceeds bound %g", k, got, bound)
		}
		if got < 0.6*bound {
			t.Errorf("k=%d: HIP NRMSE %g suspiciously below theory %g", k, got, bound)
		}
	}
}

// TestHIPHalvesBasicVariance is the headline claim (Theorem 5.1): HIP has
// about half the variance of the basic bottom-k estimator for n >> k, i.e.
// a factor-sqrt(2) lower NRMSE.
func TestHIPHalvesBasicVariance(t *testing.T) {
	const k, n, runs = 10, 3000, 600
	hip := stats.NewErrAccum(n)
	basic := stats.NewErrAccum(n)
	for run := 0; run < runs; run++ {
		s := streamSketch(sketch.BottomK, k, n, uint64(run)*40503+1).(*ADS)
		hip.Add(EstimateNeighborhoodHIP(s, n))
		basic.Add(s.EstimateNeighborhood(n))
	}
	ratio := basic.NRMSE() / hip.NRMSE()
	if ratio < 1.25 || ratio > 1.6 {
		t.Errorf("basic/HIP NRMSE ratio = %g, want ~sqrt(2)=1.414", ratio)
	}
}

// TestHIPExactForSmallN: for n <= k the estimate is exact with zero
// variance.
func TestHIPExactForSmallN(t *testing.T) {
	const k = 16
	for n := 1; n <= k; n++ {
		s := streamSketch(sketch.BottomK, k, n, 99)
		if got := EstimateNeighborhoodHIP(s, float64(n)); got != float64(n) {
			t.Errorf("n=%d: HIP = %g, want exact", n, got)
		}
	}
}

// TestHIPPrefixEstimates: the HIP estimate at distance d estimates n_d for
// every prefix, not just the full set.
func TestHIPPrefixEstimates(t *testing.T) {
	const k, n, runs = 8, 1000, 300
	checkpoints := []int{50, 200, 500, 999}
	accs := make([]*stats.ErrAccum, len(checkpoints))
	for i, c := range checkpoints {
		accs[i] = stats.NewErrAccum(float64(c + 1))
	}
	for run := 0; run < runs; run++ {
		s := streamSketch(sketch.BottomK, k, n, uint64(run)*31+5)
		for i, c := range checkpoints {
			accs[i].Add(EstimateNeighborhoodHIP(s, float64(c)))
		}
	}
	for i, c := range checkpoints {
		if bias := accs[i].Bias(); math.Abs(bias) > 0.05 {
			t.Errorf("checkpoint %d: bias %+.3f", c, bias)
		}
		if nrmse := accs[i].NRMSE(); nrmse > 1.3*sketch.HIPCV(k) {
			t.Errorf("checkpoint %d: NRMSE %g above bound %g", c, nrmse, 1.3*sketch.HIPCV(k))
		}
	}
}

// TestKMinsHIPAgainstBruteProbability cross-checks equation (7) against a
// direct computation of the running per-permutation minima.
func TestKMinsHIPAgainstBruteProbability(t *testing.T) {
	const k, n = 4, 200
	src := rank.NewSource(3)
	a := NewKMinsADS(0, k)
	for i := int64(0); i < n; i++ {
		for h := 0; h < k; h++ {
			a.OfferAt(h, Entry{Node: int32(i), Dist: float64(i), Rank: src.RankAt(h, i)})
		}
	}
	ws := a.HIPEntries()
	// Recompute tau for each sampled node directly from the definition.
	mins := make([]float64, k)
	for h := range mins {
		mins[h] = 1
	}
	wi := 0
	for i := int64(0); i < n; i++ {
		inSketch := false
		for h := 0; h < k; h++ {
			if src.RankAt(h, i) < mins[h] {
				inSketch = true
			}
		}
		if inSketch {
			prod := 1.0
			for _, m := range mins {
				prod *= 1 - m
			}
			tau := 1 - prod
			if wi >= len(ws) || ws[wi].Node != int32(i) {
				t.Fatalf("HIP entry %d: expected node %d, got %+v", wi, i, ws[wi])
			}
			if math.Abs(ws[wi].Weight-1/tau) > 1e-9 {
				t.Fatalf("node %d: weight %g, want %g", i, ws[wi].Weight, 1/tau)
			}
			wi++
		}
		for h := 0; h < k; h++ {
			if r := src.RankAt(h, i); r < mins[h] {
				mins[h] = r
			}
		}
	}
	if wi != len(ws) {
		t.Fatalf("HIP produced %d entries, definition gives %d", len(ws), wi)
	}
}

// TestKPartitionHIPAgainstBruteProbability cross-checks equation (8).
func TestKPartitionHIPAgainstBruteProbability(t *testing.T) {
	const k, n = 4, 200
	src := rank.NewSource(4)
	a := NewKPartitionADS(0, k)
	for i := int64(0); i < n; i++ {
		a.OfferAt(src.Bucket(i, k), Entry{Node: int32(i), Dist: float64(i), Rank: src.Rank(i)})
	}
	ws := a.HIPEntries()
	mins := make([]float64, k)
	for b := range mins {
		mins[b] = 1
	}
	wi := 0
	for i := int64(0); i < n; i++ {
		b := src.Bucket(i, k)
		if src.Rank(i) < mins[b] {
			sum := 0.0
			for _, m := range mins {
				sum += m
			}
			tau := sum / k
			if ws[wi].Node != int32(i) {
				t.Fatalf("entry %d: node %d, want %d", wi, ws[wi].Node, i)
			}
			if math.Abs(ws[wi].Weight-1/tau) > 1e-9 {
				t.Fatalf("node %d: weight %g, want %g", i, ws[wi].Weight, 1/tau)
			}
			wi++
			mins[b] = src.Rank(i)
		}
	}
	if wi != len(ws) {
		t.Fatalf("HIP produced %d entries, definition gives %d", len(ws), wi)
	}
}

// TestQgOnGraphUnbiased: HIP Q_g estimation on a real graph against exact
// values, averaged over rank randomizations.
func TestQgOnGraphUnbiased(t *testing.T) {
	g := graph.PreferentialAttachment(300, 3, 77)
	gfun := func(node int32, dist float64) float64 {
		return 1 / (1 + dist) // distance-decaying statistic
	}
	exact := 0.0
	for _, nd := range graph.NearestOrder(g, 0) {
		exact += gfun(nd.Node, nd.Dist)
	}
	const runs = 250
	acc := stats.NewErrAccum(exact)
	for run := 0; run < runs; run++ {
		set, err := BuildSet(g, Options{K: 8, Flavor: sketch.BottomK, Seed: uint64(run) + 1}, AlgoDP)
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(EstimateQ(set.Sketch(0), gfun))
	}
	if bias := acc.Bias(); math.Abs(bias) > 0.05 {
		t.Errorf("Q_g bias = %+.3f, want ~0", bias)
	}
}

// TestCentralityOnGraph: harmonic and closeness-style centralities from the
// sketch against exact values.
func TestCentralityOnGraph(t *testing.T) {
	g := graph.GNP(250, 0.03, false, 88)
	exactHarmonic := graph.HarmonicCentrality(g, 5)
	const runs = 250
	acc := stats.NewErrAccum(exactHarmonic)
	for run := 0; run < runs; run++ {
		set, err := BuildSet(g, Options{K: 8, Flavor: sketch.BottomK, Seed: uint64(run) + 500}, AlgoDP)
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(EstimateCentrality(set.Sketch(5), KernelHarmonic, UnitBeta))
	}
	if bias := acc.Bias(); math.Abs(bias) > 0.05 {
		t.Errorf("harmonic centrality bias = %+.3f", bias)
	}
	if nrmse := acc.NRMSE(); nrmse > 0.35 {
		t.Errorf("harmonic centrality NRMSE = %g, too high", nrmse)
	}
}

// TestBetaFilteredCentrality: the β filter applied at query time — the
// flexibility HIP provides that the pre-HIP estimators lacked (Section 1).
func TestBetaFilteredCentrality(t *testing.T) {
	g := graph.PreferentialAttachment(300, 2, 99)
	// β selects nodes with even ID.
	beta := func(n int32) float64 {
		if n%2 == 0 {
			return 1
		}
		return 0
	}
	const d = 3
	exact := 0.0
	for _, nd := range graph.NearestOrder(g, 7) {
		if nd.Dist <= d {
			exact += beta(nd.Node)
		}
	}
	const runs = 300
	acc := stats.NewErrAccum(exact)
	for run := 0; run < runs; run++ {
		set, err := BuildSet(g, Options{K: 8, Flavor: sketch.BottomK, Seed: uint64(run) + 900}, AlgoDP)
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(EstimateCentrality(set.Sketch(7), KernelThreshold(d), beta))
	}
	if bias := acc.Bias(); math.Abs(bias) > 0.06 {
		t.Errorf("filtered centrality bias = %+.3f (exact %g)", bias, exact)
	}
}

// TestPermutationEstimatorExactPhase: while s <= k the estimate is exact.
func TestPermutationEstimatorExactPhase(t *testing.T) {
	p := NewPermutationEstimator(100, 5)
	sigmas := []int{42, 17, 99, 3, 71}
	for i, s := range sigmas {
		if !p.Offer(s) {
			t.Fatalf("offer %d rejected in exact phase", s)
		}
		if got := p.Estimate(); got != float64(i+1) {
			t.Fatalf("estimate after %d = %g, want %d", i+1, got, i+1)
		}
	}
}

// TestPermutationEstimatorUnbiased: mean over random permutations.
func TestPermutationEstimatorUnbiased(t *testing.T) {
	const n, k, runs = 1000, 10, 400
	for _, card := range []int{50, 300, 800, 1000} {
		acc := stats.NewErrAccum(float64(card))
		for run := 0; run < runs; run++ {
			rng := rank.NewRNG(uint64(run)*97 + 11)
			perm := rng.Perm(n)
			p := NewPermutationEstimator(n, k)
			for i := 0; i < card; i++ {
				p.Offer(perm[i] + 1)
			}
			acc.Add(p.Estimate())
		}
		if bias := acc.Bias(); math.Abs(bias) > 0.05 {
			t.Errorf("cardinality %d: bias %+.3f", card, bias)
		}
	}
}

// TestPermutationBeatsHIPAtHighFraction (Section 5.4/Figure 2): for
// cardinalities above ~0.2n the permutation estimator has lower error.
func TestPermutationBeatsHIPAtHighFraction(t *testing.T) {
	const n, k, runs = 2000, 10, 300
	card := int(0.8 * n)
	permAcc := stats.NewErrAccum(float64(card))
	hipAcc := stats.NewErrAccum(float64(card))
	for run := 0; run < runs; run++ {
		rng := rank.NewRNG(uint64(run)*193 + 7)
		perm := rng.Perm(n)
		p := NewPermutationEstimator(n, k)
		src := rank.NewSource(uint64(run)*193 + 7)
		b := NewStreamBuilder(0, k)
		for i := 0; i < card; i++ {
			p.Offer(perm[i] + 1)
			b.Offer(int32(i), float64(i), src.Rank(int64(i)))
		}
		permAcc.Add(p.Estimate())
		hipAcc.Add(b.HIPEstimate())
	}
	if permAcc.NRMSE() >= hipAcc.NRMSE() {
		t.Errorf("at 0.8n: permutation NRMSE %g not below HIP %g",
			permAcc.NRMSE(), hipAcc.NRMSE())
	}
}

func TestPermutationEstimatorSaturation(t *testing.T) {
	p := NewPermutationEstimator(50, 3)
	// Offer ranks 1..3 -> saturated.
	for _, s := range []int{2, 1, 3} {
		p.Offer(s)
	}
	if !p.Saturated() {
		t.Fatal("sketch with ranks {1,2,3} should be saturated")
	}
	// Correction: sHat=3, estimate = 3*4/3-1 = 3.
	if got := p.Estimate(); math.Abs(got-3) > 1e-12 {
		t.Errorf("saturated estimate = %g, want 3", got)
	}
	if p.Offer(10) {
		t.Error("update accepted after saturation")
	}
}

func TestPermutationEstimatorPanics(t *testing.T) {
	check := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	check("bad n", func() { NewPermutationEstimator(0, 1) })
	check("rank out of range", func() { NewPermutationEstimator(5, 2).Offer(6) })
	check("duplicate rank", func() {
		p := NewPermutationEstimator(5, 2)
		p.Offer(3)
		p.Offer(3)
	})
}

// TestSizeEstimateRecurrence: E_s values satisfy the Lemma 8.1 boundary
// cases and closed form.
func TestSizeEstimateRecurrence(t *testing.T) {
	if got := SizeEstimate(3, 2); got != 2 {
		t.Errorf("s<k: got %g, want 2", got)
	}
	if got := SizeEstimate(3, 3); math.Abs(got-3) > 1e-12 {
		t.Errorf("s=k: got %g, want 3", got)
	}
	// k=1: E_s = 2^s - 1.
	for s := 1; s <= 10; s++ {
		want := math.Pow(2, float64(s)) - 1
		if got := SizeEstimate(1, s); math.Abs(got-want) > 1e-9*want {
			t.Errorf("k=1 s=%d: got %g, want %g", s, got, want)
		}
	}
	// Closed form for k=4, s=7: 4*(1.25)^4 - 1.
	want := 4*math.Pow(1.25, 4) - 1
	if got := SizeEstimate(4, 7); math.Abs(got-want) > 1e-12 {
		t.Errorf("k=4 s=7: got %g, want %g", got, want)
	}
}

// TestSizeEstimateUnbiased: E[E_s] = n over the randomness of the ranks.
func TestSizeEstimateUnbiased(t *testing.T) {
	const k, runs = 5, 4000
	for _, n := range []int{3, 5, 8, 20, 60} {
		var sum float64
		for run := 0; run < runs; run++ {
			src := rank.NewSource(uint64(run)*6364136223846793005 + uint64(n))
			b := NewStreamBuilder(0, k)
			for i := int64(0); i < int64(n); i++ {
				b.Offer(int32(i), float64(i), src.Rank(i))
			}
			sum += SizeEstimate(k, b.ADS().Size())
		}
		mean := sum / runs
		// The estimator is unbiased but heavy-tailed; tolerance is loose.
		if math.Abs(mean-float64(n))/float64(n) > 0.15 {
			t.Errorf("n=%d: mean size-estimate %g", n, mean)
		}
	}
}

func TestSizeEstimatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	SizeEstimate(0, 3)
}

// TestWeightedADSUnbiased (Section 9): HIP over exponential ranks
// estimates weighted neighborhood cardinalities without bias.
func TestWeightedADSUnbiased(t *testing.T) {
	g := graph.GNP(200, 0.04, false, 111)
	beta := make([]float64, g.NumNodes())
	rng := rank.NewRNG(7)
	for i := range beta {
		beta[i] = 0.5 + 2*rng.Float64()
	}
	const d = 3
	exact := ExactNeighborhoodWeight(g, 9, d, beta)
	const runs = 300
	acc := stats.NewErrAccum(exact)
	for run := 0; run < runs; run++ {
		set, err := BuildWeightedSet(g, 8, uint64(run)+3000, beta)
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(set.Sketch(9).EstimateNeighborhoodWeight(d))
	}
	if bias := acc.Bias(); math.Abs(bias) > 0.05 {
		t.Errorf("weighted neighborhood bias = %+.3f (exact %g)", bias, exact)
	}
	if nrmse := acc.NRMSE(); nrmse > 2.5*sketch.HIPCV(8) {
		t.Errorf("weighted NRMSE = %g, far above HIP bound %g", nrmse, sketch.HIPCV(8))
	}
}

// TestWeightedADSFavorsHeavyNodes: heavier nodes appear more often.
func TestWeightedADSFavorsHeavyNodes(t *testing.T) {
	g := graph.Complete(60)
	beta := make([]float64, 60)
	for i := range beta {
		beta[i] = 0.1
	}
	beta[42] = 50 // one very heavy node
	counts := 0
	const runs = 100
	for run := 0; run < runs; run++ {
		set, err := BuildWeightedSet(g, 4, uint64(run)+12, beta)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range set.Sketch(0).Entries() {
			if e.Node == 42 {
				counts++
			}
		}
	}
	if counts < runs*9/10 {
		t.Errorf("heavy node sampled in only %d/%d runs", counts, runs)
	}
}

func TestBuildWeightedSetErrors(t *testing.T) {
	g := graph.Path(4)
	if _, err := BuildWeightedSet(g, 0, 1, []float64{1, 1, 1, 1}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := BuildWeightedSet(g, 2, 1, []float64{1, 1}); err == nil {
		t.Error("short beta accepted")
	}
	if _, err := BuildWeightedSet(g, 2, 1, []float64{1, -1, 1, 1}); err == nil {
		t.Error("negative beta accepted")
	}
}

func TestWeightedOfferPanicsOnBadBeta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("beta=0 did not panic")
		}
	}()
	NewWeightedADS(0, 2).Offer(Entry{Node: 0, Dist: 0, Rank: 1}, 0)
}

// TestNoTieADSUnbiased: the Appendix A estimator is unbiased on grouped
// distances.
func TestNoTieADSUnbiased(t *testing.T) {
	// 10 groups of 40 nodes each, same distance within a group.
	const k, runs = 6, 600
	const groups, per = 10, 40
	n := groups * per
	acc := stats.NewErrAccum(float64(n))
	var sizeSum float64
	for run := 0; run < runs; run++ {
		src := rank.NewSource(uint64(run)*52391 + 3)
		a := NewNoTieADS(0, k)
		id := int32(0)
		for gi := 0; gi < groups; gi++ {
			nodes := make([]int32, per)
			for j := range nodes {
				nodes[j] = id
				id++
			}
			a.OfferGroup(float64(gi), nodes, func(v int32) float64 { return src.Rank(int64(v)) })
		}
		acc.Add(a.EstimateNeighborhood(float64(groups)))
		sizeSum += float64(a.Size())
	}
	if bias := acc.Bias(); math.Abs(bias) > 0.05 {
		t.Errorf("no-tie estimator bias = %+.3f", bias)
	}
	// Size advantage: at most k entries per distinct distance.
	if sizeSum/runs > float64(groups*k) {
		t.Errorf("mean no-tie size %g exceeds k per group", sizeSum/runs)
	}
	// CV within the Appendix A bound 1/sqrt(k-2) (loosely checked).
	if acc.NRMSE() > 1.4*sketch.BasicCV(k) {
		t.Errorf("no-tie NRMSE = %g above bound %g", acc.NRMSE(), sketch.BasicCV(k))
	}
}

func TestNoTieADSOrderPanics(t *testing.T) {
	a := NewNoTieADS(0, 2)
	a.OfferGroup(1, []int32{0, 1}, func(v int32) float64 { return float64(v+1) / 10 })
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing group distance did not panic")
		}
	}()
	a.OfferGroup(1, []int32{2}, func(v int32) float64 { return 0.5 })
}

// TestQgHIPBeatsNaive (the up-to-(n/k)-fold claim): for a statistic
// concentrated on close nodes, HIP beats the "MinHash sketch of all
// reachable nodes" subset-sum estimator by a large factor.
func TestQgHIPBeatsNaive(t *testing.T) {
	const k, n, runs = 8, 2000, 300
	// g decays sharply: only the ~20 closest nodes matter.
	gfun := func(dist float64) float64 { return math.Exp(-dist / 5) }
	exact := 0.0
	for i := 0; i < n; i++ {
		exact += gfun(float64(i))
	}
	hipAcc := stats.NewErrAccum(exact)
	naiveAcc := stats.NewErrAccum(exact)
	for run := 0; run < runs; run++ {
		seed := uint64(run)*71 + 19
		src := rank.NewSource(seed)
		b := NewStreamBuilder(0, k)
		for i := int64(0); i < n; i++ {
			b.Offer(int32(i), float64(i), src.Rank(i))
		}
		hipAcc.Add(EstimateQ(b.ADS(), func(_ int32, dist float64) float64 { return gfun(dist) }))

		// Naive: bottom-k MinHash of all n elements (with distances);
		// estimate = cardinality-estimate x mean g over the k samples.
		mh := sketch.NewBottomK(k)
		for i := int64(0); i < n; i++ {
			mh.AddFrom(src, i)
		}
		sum := 0.0
		for _, e := range mh.Entries() {
			sum += gfun(float64(e.ID)) // element ID doubles as its distance
		}
		naiveAcc.Add(mh.Estimate() * sum / float64(mh.Len()))
	}
	ratio := naiveAcc.NRMSE() / hipAcc.NRMSE()
	if ratio < 3 {
		t.Errorf("naive/HIP NRMSE ratio = %g, expected a large factor for concentrated g", ratio)
	}
}

// TestPriorityWeightedADSUnbiased: the Section 9 Sequential Poisson
// alternative must also be unbiased for weighted neighborhood sizes.
func TestPriorityWeightedADSUnbiased(t *testing.T) {
	g := graph.GNP(200, 0.04, false, 112)
	beta := make([]float64, g.NumNodes())
	rng := rank.NewRNG(8)
	for i := range beta {
		beta[i] = 0.5 + 2*rng.Float64()
	}
	const d = 3
	exact := ExactNeighborhoodWeight(g, 9, d, beta)
	const runs = 300
	acc := stats.NewErrAccum(exact)
	for run := 0; run < runs; run++ {
		set, err := BuildPriorityWeightedSet(g, 8, uint64(run)+7000, beta)
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(set.Sketch(9).EstimateNeighborhoodWeight(d))
	}
	if bias := acc.Bias(); math.Abs(bias) > 0.05 {
		t.Errorf("priority weighted bias = %+.3f (exact %g)", bias, exact)
	}
}

func TestWeightSchemeString(t *testing.T) {
	if ExponentialWeights.String() != "exponential" || PriorityWeights.String() != "priority" {
		t.Error("scheme names")
	}
	if WeightScheme(9).String() != "WeightScheme(9)" {
		t.Error("unknown scheme formatting")
	}
}
