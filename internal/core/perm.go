package core

import (
	"fmt"
	"sort"
)

// PermutationEstimator is the Section 5.4 cardinality estimator for
// bottom-k sketches whose ranks form a random permutation σ of [1..n]
// (rather than i.i.d. uniform values).  Permutation ranks dominate random
// ranks in information content, and the estimator is markedly tighter once
// the estimated cardinality exceeds ~0.2n.
//
// Elements are offered in canonical (distance/arrival) order with their
// permutation rank.  The estimator maintains the bottom-k of the ranks and
// a running estimate ŝ:
//
//   - the first k updates have weight 1 (ŝ is exact while s <= k);
//   - a later update, arriving when the k-th smallest stored rank is μ,
//     carries weight w = (n-ŝ+1)/(μ-k+1), the plug-in estimate of the
//     expected number of distinct elements scanned since the previous
//     update (a negative-hypergeometric mean);
//   - once the sketch holds exactly the ranks {1..k} it is saturated (no
//     further updates are possible) and the estimate is corrected to
//     ŝ(k+1)/k - 1 to account for elements beyond the last update.
type PermutationEstimator struct {
	n     int              // domain size (permutation length)
	k     int              // sketch size
	ranks []int            // bottom-k permutation ranks, ascending
	sHat  float64          // running estimate
	seen  map[int]struct{} // guards against re-offering a rank
}

// NewPermutationEstimator returns an estimator for permutation ranks over
// [1..n] with sketch size k.
func NewPermutationEstimator(n, k int) *PermutationEstimator {
	if k < 1 || n < 1 {
		panic(fmt.Sprintf("core: PermutationEstimator(n=%d, k=%d)", n, k))
	}
	return &PermutationEstimator{n: n, k: k, seen: make(map[int]struct{}, k)}
}

// Offer presents the permutation rank (in [1..n]) of the next distinct
// element and reports whether the sketch was updated.  Offering the same
// rank twice is an error (ranks are a permutation of distinct elements).
func (p *PermutationEstimator) Offer(sigma int) bool {
	if sigma < 1 || sigma > p.n {
		panic(fmt.Sprintf("core: permutation rank %d outside [1,%d]", sigma, p.n))
	}
	if _, dup := p.seen[sigma]; dup {
		panic(fmt.Sprintf("core: permutation rank %d offered twice", sigma))
	}
	if len(p.ranks) < p.k {
		// Exact phase: every element updates the sketch with weight 1.
		p.seen[sigma] = struct{}{}
		p.insert(sigma)
		p.sHat++
		return true
	}
	mu := p.ranks[p.k-1]
	if sigma >= mu {
		return false // not an update
	}
	p.seen[sigma] = struct{}{}
	// Weight of the elements scanned since the previous update, inclusive.
	w := (float64(p.n) - p.sHat + 1) / float64(mu-p.k+1)
	p.sHat += w
	p.insert(sigma)
	return true
}

func (p *PermutationEstimator) insert(sigma int) {
	i := sort.SearchInts(p.ranks, sigma)
	p.ranks = append(p.ranks, 0)
	copy(p.ranks[i+1:], p.ranks[i:])
	p.ranks[i] = sigma
	if len(p.ranks) > p.k {
		p.ranks = p.ranks[:p.k]
	}
}

// Saturated reports whether the sketch holds exactly the permutation ranks
// {1..k}, after which no update can occur.
func (p *PermutationEstimator) Saturated() bool {
	return len(p.ranks) == p.k && p.ranks[p.k-1] == p.k
}

// Estimate returns the current cardinality estimate, applying the
// saturation correction when the sketch is saturated.
func (p *PermutationEstimator) Estimate() float64 {
	if p.Saturated() {
		return p.sHat*float64(p.k+1)/float64(p.k) - 1
	}
	return p.sHat
}
