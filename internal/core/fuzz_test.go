package core

import (
	"bytes"
	"testing"

	"adsketch/internal/graph"
	"adsketch/internal/sketch"
)

// FuzzReadSet: arbitrary bytes must never panic the sketch-set decoder; it
// either errors or yields a set whose sketches all pass validation (the
// decoder validates internally, so success implies structural soundness).
func FuzzReadSet(f *testing.F) {
	// Seed with a genuine encoding and a few mutations.
	g := graph.Path(10)
	set, err := BuildSet(g, Options{K: 2, Flavor: sketch.BottomK, Seed: 1}, AlgoDP)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSet(&buf, set); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	for _, cut := range []int{1, 4, 8, len(valid) / 2} {
		if cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	mut := append([]byte(nil), valid...)
	mut[len(mut)/2] ^= 0xff
	f.Add(mut)
	f.Add([]byte("ADSK"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadSet(bytes.NewReader(data))
		if err != nil {
			return
		}
		for v := 0; v < got.NumNodes(); v++ {
			s := got.Sketch(int32(v))
			// Reading the HIP entries of whatever decoded must not panic.
			_ = s.HIPEntries()
		}
	})
}

// FuzzReadSketchSet: arbitrary bytes must never panic the universal
// (all-kinds) decoder; it either errors or yields a set whose sketches
// pass validation and answer estimator queries without panicking.
func FuzzReadSketchSet(f *testing.F) {
	// Seed with genuine version-2 encodings of all three set kinds, plus
	// truncations and mutations of each.
	g := graph.WithRandomWeights(graph.GNP(12, 0.3, false, 2), 1, 3, 3)
	uniform, err := BuildSet(g, Options{K: 2, Flavor: sketch.BottomK, Seed: 1}, AlgoPrunedDijkstra)
	if err != nil {
		f.Fatal(err)
	}
	beta := make([]float64, g.NumNodes())
	for i := range beta {
		beta[i] = 1 + float64(i%3)
	}
	weighted, err := BuildWeightedSet(g, 2, 1, beta)
	if err != nil {
		f.Fatal(err)
	}
	approx, err := BuildApproxSet(g, 2, 1, 0.25)
	if err != nil {
		f.Fatal(err)
	}
	for _, set := range []AnySet{uniform, weighted, approx} {
		var buf bytes.Buffer
		if _, err := set.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		valid := buf.Bytes()
		f.Add(valid)
		for _, cut := range []int{5, 9, 13, len(valid) / 2} {
			if cut < len(valid) {
				f.Add(valid[:cut])
			}
		}
		mut := append([]byte(nil), valid...)
		mut[len(mut)/2] ^= 0xff
		f.Add(mut)
	}
	f.Add([]byte("ADSK"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadSketchSet(bytes.NewReader(data))
		if err != nil {
			return
		}
		for v := 0; v < got.NumNodes(); v++ {
			s := got.SketchOf(int32(v))
			// Whatever decoded must answer queries without panicking.
			_ = s.HIPEntries()
			_ = EstimateNeighborhoodHIP(s, 1.5)
		}
		// And it must re-serialize cleanly.
		var buf bytes.Buffer
		if _, err := got.WriteTo(&buf); err != nil {
			t.Fatalf("re-serializing a decoded set: %v", err)
		}
	})
}
