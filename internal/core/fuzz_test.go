package core

import (
	"bytes"
	"testing"

	"adsketch/internal/graph"
	"adsketch/internal/sketch"
)

// FuzzReadSet: arbitrary bytes must never panic the sketch-set decoder; it
// either errors or yields a set whose sketches all pass validation (the
// decoder validates internally, so success implies structural soundness).
func FuzzReadSet(f *testing.F) {
	// Seed with a genuine encoding and a few mutations.
	g := graph.Path(10)
	set, err := BuildSet(g, Options{K: 2, Flavor: sketch.BottomK, Seed: 1}, AlgoDP)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSet(&buf, set); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	for _, cut := range []int{1, 4, 8, len(valid) / 2} {
		if cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	mut := append([]byte(nil), valid...)
	mut[len(mut)/2] ^= 0xff
	f.Add(mut)
	f.Add([]byte("ADSK"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadSet(bytes.NewReader(data))
		if err != nil {
			return
		}
		for v := 0; v < got.NumNodes(); v++ {
			s := got.Sketch(int32(v))
			// Reading the HIP entries of whatever decoded must not panic.
			_ = s.HIPEntries()
		}
	})
}
