//go:build linux

package core

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy path of MmapSketchFile.
const mmapSupported = true

// mmapFile maps size bytes of f read-only.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping created by mmapFile.
func munmapFile(b []byte) error {
	return syscall.Munmap(b)
}
