package core

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"adsketch/internal/graph"
)

// mmapTestFile builds a small set, writes it as a v3 file, and maps it.
func mmapTestFile(t *testing.T, seed uint64) (*SketchFile, *Set) {
	t.Helper()
	g := graph.PreferentialAttachment(200, 3, 9)
	set, err := BuildSet(g, Options{K: 8, Seed: seed}, AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sketches.ads")
	if err := os.WriteFile(path, v3Bytes(t, set), 0o644); err != nil {
		t.Fatal(err)
	}
	sf, err := MmapSketchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return sf, set
}

// The reference-counted lifecycle: Close with an outstanding Retain only
// marks the file draining; the backing memory survives until the last
// Release, after which new Retains fail and Close stays idempotent.
func TestSketchFileRetainRelease(t *testing.T) {
	sf, set := mmapTestFile(t, 42)
	if got := sf.Refs(); got != 1 {
		t.Fatalf("fresh file Refs() = %d, want 1", got)
	}
	if !sf.Retain() {
		t.Fatal("Retain on a live file failed")
	}
	if got := sf.Refs(); got != 2 {
		t.Fatalf("Refs() = %d after Retain, want 2", got)
	}
	if sf.Draining() {
		t.Fatal("file draining before Close")
	}
	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}
	if !sf.Draining() {
		t.Fatal("file not draining after Close with a live reference")
	}
	if mmapSupported && !sf.Mapped() {
		t.Fatal("Close unmapped the region under a live reference")
	}
	// The retained reference still reads valid memory.
	want := EstimateNeighborhoodHIP(set.SketchOf(7), 3)
	if got := EstimateNeighborhoodHIP(sf.Set().SketchOf(7), 3); got != want {
		t.Fatalf("estimate through draining file = %v, want %v", got, want)
	}
	if err := sf.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if got := sf.Refs(); got != 1 {
		t.Fatalf("Refs() = %d after double Close, want 1", got)
	}
	if err := sf.Release(); err != nil {
		t.Fatal(err)
	}
	if sf.Mapped() {
		t.Fatal("region still mapped after the last reference dropped")
	}
	if sf.Retain() {
		t.Fatal("Retain succeeded on a fully released file")
	}
	if got := sf.Refs(); got != 0 {
		t.Fatalf("Refs() = %d after full release, want 0", got)
	}
}

// Close before Retain: the opener's reference is the only one, so Close
// unmaps immediately (the pre-refcount behavior).
func TestSketchFileCloseUnreferenced(t *testing.T) {
	sf, _ := mmapTestFile(t, 42)
	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}
	if sf.Mapped() {
		t.Fatal("unreferenced Close left the region mapped")
	}
	if sf.Set() != nil {
		t.Fatal("Set() still accessible after full release")
	}
}

// Swap an mmap'd file out from under concurrent readers (run with -race):
// readers bracket every read with Retain/Release, the swapper Closes the
// old file as soon as the new one is up, and no read ever touches an
// unmapped page — a reader that loses the Retain race simply moves on to
// the current file.
func TestSketchFileSwapUnderLoad(t *testing.T) {
	const swaps = 20
	files := make([]*SketchFile, swaps)
	for i := range files {
		sf, _ := mmapTestFile(t, uint64(100+i))
		files[i] = sf
	}

	// current is the published file index; readers chase it.
	var mu sync.Mutex
	cur := 0

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				sf := files[cur]
				ok := sf.Retain()
				mu.Unlock()
				if !ok {
					continue
				}
				set := sf.Set()
				for v := int32(0); v < 20; v++ {
					if got := EstimateNeighborhoodHIP(set.SketchOf(v), 2); got < 0 {
						t.Errorf("negative estimate %v", got)
					}
				}
				if err := sf.Release(); err != nil {
					t.Errorf("Release: %v", err)
				}
			}
		}()
	}

	for next := 1; next < swaps; next++ {
		mu.Lock()
		old := files[cur]
		cur = next
		mu.Unlock()
		if err := old.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if err := files[swaps-1].Close(); err != nil {
		t.Fatal(err)
	}
	for i, sf := range files {
		if sf.Mapped() {
			t.Errorf("file %d still mapped after drain", i)
		}
		if sf.Refs() != 0 {
			t.Errorf("file %d holds %d refs after drain", i, sf.Refs())
		}
	}
}
