package core

import (
	"fmt"
	"math"

	"adsketch/internal/sketch"
)

// Partition-local freezing: a distributed build worker that owns the
// node range [i·total/P, (i+1)·total/P) assembles its finished per-node
// entry lists directly into a *Partition, without the full set ever
// existing in one process.  The constructors here produce partitions
// whose WritePartitionV3 serialization is byte-identical to splitting a
// whole-set build of the same entries — writeFrameV3 rebases offsets to
// the frame's first entry and headerOf takes the envelope from the
// Partition accessors, so a compact worker-local frame and a
// SplitSketchSet slice of the full frame render the same bytes.

// partRange resolves and validates the canonical node range of
// partition index in a count-way split of total nodes — the same
// i·n/P arithmetic SplitSketchSet and cluster.SplitRanges use.
func partRange(index, count, total int, lists int) (lo, hi int32, err error) {
	switch {
	case count < 1 || count > maxCodecPartitions:
		return 0, 0, fmt.Errorf("core: implausible partition count %d", count)
	case index < 0 || index >= count:
		return 0, 0, fmt.Errorf("core: partition index %d out of range [0, %d)", index, count)
	case total < count || total > 1<<30:
		return 0, 0, fmt.Errorf("core: cannot split %d nodes into %d partitions", total, count)
	}
	lo, hi = int32(index*total/count), int32((index+1)*total/count)
	if lists != int(hi-lo) {
		return 0, 0, fmt.Errorf("core: partition %d/%d owns nodes [%d, %d) but got %d entry lists",
			index, count, lo, hi, lists)
	}
	return lo, hi, nil
}

// FreezePartitionBottomK assembles one partition's per-node entry lists
// (lists[i] belongs to global node lo+i, in canonical order, satisfying
// the bottom-k inclusion condition) into a *Partition.  Serializing it
// with WritePartitionV3 yields exactly the bytes of the corresponding
// SplitSketchSet slice of a whole-set build producing the same entries.
func FreezePartitionBottomK(o Options, index, count, total int, lists [][]Entry) (*Partition, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	if o.Flavor != sketch.BottomK {
		return nil, fmt.Errorf("core: FreezePartitionBottomK requires the bottom-k flavor, got %v", o.Flavor)
	}
	lo, hi, err := partRange(index, count, total, len(lists))
	if err != nil {
		return nil, err
	}
	s := &Set{frame: freezeFrame(kindUniform, o, 0, 0, 1, lo, lists)}
	for i := range lists {
		if len(lists[i]) == 0 {
			return nil, fmt.Errorf("core: FreezePartitionBottomK: node %d has no entries", lo+int32(i))
		}
		if err := s.frame.viewADS(i).Validate(); err != nil {
			return nil, fmt.Errorf("core: FreezePartitionBottomK: %w", err)
		}
	}
	return &Partition{index: index, count: count, lo: lo, hi: hi, total: total, set: s}, nil
}

// FreezePartitionWeighted is FreezePartitionBottomK for weight-biased
// ranks.  betas runs parallel to lists: betas[i][j] is the node weight
// β of entry lists[i][j].Node (each entry's weight travels with it, so
// a worker never needs the global weight vector).
func FreezePartitionWeighted(k int, scheme WeightScheme, index, count, total int, lists [][]Entry, betas [][]float64) (*Partition, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1")
	}
	if scheme != ExponentialWeights && scheme != PriorityWeights {
		return nil, fmt.Errorf("core: unknown weight scheme %d", scheme)
	}
	lo, hi, err := partRange(index, count, total, len(lists))
	if err != nil {
		return nil, err
	}
	if len(betas) != len(lists) {
		return nil, fmt.Errorf("core: FreezePartitionWeighted: %d beta lists for %d entry lists", len(betas), len(lists))
	}
	f := freezeFrame(kindWeighted, Options{K: k}, scheme, 0, 1, lo, lists)
	f.beta = make([]float64, len(f.node))
	pos := 0
	for i := range lists {
		if len(betas[i]) != len(lists[i]) {
			return nil, fmt.Errorf("core: FreezePartitionWeighted: node %d has %d weights for %d entries",
				lo+int32(i), len(betas[i]), len(lists[i]))
		}
		pos += copy(f.beta[pos:], betas[i])
	}
	for i := range lists {
		if len(lists[i]) == 0 {
			return nil, fmt.Errorf("core: FreezePartitionWeighted: node %d has no entries", lo+int32(i))
		}
		if err := f.viewWeighted(i).Validate(); err != nil {
			return nil, fmt.Errorf("core: FreezePartitionWeighted: %w", err)
		}
	}
	return &Partition{index: index, count: count, lo: lo, hi: hi, total: total, set: &WeightedSet{frame: f}}, nil
}

// FreezePartitionApprox assembles one partition of a (1+ε)-approximate
// set.  The relaxed acceptance rule means approximate entry lists need
// not satisfy the strict bottom-k inclusion condition, so validation
// checks what BuildApproxSet guarantees: canonical order, the owner
// first at distance 0, and finite non-negative distances.
func FreezePartitionApprox(k int, eps float64, index, count, total int, lists [][]Entry) (*Partition, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1")
	}
	if eps < 0 || math.IsNaN(eps) || math.IsInf(eps, 1) {
		return nil, fmt.Errorf("core: invalid epsilon %g", eps)
	}
	lo, hi, err := partRange(index, count, total, len(lists))
	if err != nil {
		return nil, err
	}
	for i, l := range lists {
		owner := lo + int32(i)
		if len(l) == 0 {
			return nil, fmt.Errorf("core: FreezePartitionApprox: node %d has no entries", owner)
		}
		if l[0].Node != owner || l[0].Dist != 0 {
			return nil, fmt.Errorf("core: FreezePartitionApprox: node %d does not start with itself at distance 0", owner)
		}
		for j, e := range l {
			if e.Dist < 0 || math.IsNaN(e.Dist) || math.IsInf(e.Dist, 1) {
				return nil, fmt.Errorf("core: FreezePartitionApprox: node %d entry %d has distance %g", owner, j, e.Dist)
			}
			if j > 0 && !l[j-1].before(e) {
				return nil, fmt.Errorf("core: FreezePartitionApprox: node %d entries %d,%d out of canonical order", owner, j-1, j)
			}
		}
	}
	f := freezeFrame(kindApprox, Options{K: k}, 0, eps, 1, lo, lists)
	return &Partition{index: index, count: count, lo: lo, hi: hi, total: total, set: &ApproxSet{frame: f}}, nil
}
