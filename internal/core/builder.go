package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"adsketch/internal/graph"
	"adsketch/internal/rank"
	"adsketch/internal/sketch"
)

// Options configures ADS construction for a graph.
type Options struct {
	// K is the sketch parameter (>= 1).
	K int
	// Flavor selects bottom-k, k-mins, or k-partition.
	Flavor sketch.Flavor
	// Seed determines the shared random permutation(s); sketches built
	// with the same seed are coordinated.
	Seed uint64
	// BaseB, when > 1, rounds ranks down to powers b^-h (Sections 2 and
	// 5.6), trading estimator variance (factor (1+b)/2) for compact rank
	// representation.  Zero means full-precision ranks.
	BaseB float64
}

func (o Options) validate() error {
	if o.K < 1 {
		return fmt.Errorf("core: Options.K = %d, must be >= 1", o.K)
	}
	if o.BaseB != 0 && o.BaseB <= 1 {
		return fmt.Errorf("core: Options.BaseB = %g, must be > 1 (or 0 for full ranks)", o.BaseB)
	}
	return nil
}

// Source returns the rank source the options define.
func (o Options) Source() rank.Source { return rank.NewSource(o.Seed) }

// rankFn returns the rank function for permutation perm (only k-mins uses
// perm > 0), with base-b rounding applied when configured.
func (o Options) rankFn(perm int) func(int32) float64 {
	src := o.Source()
	base := func(v int32) float64 { return src.Rank(int64(v)) }
	if o.Flavor == sketch.KMins {
		base = func(v int32) float64 { return src.RankAt(perm, int64(v)) }
	}
	if o.BaseB > 1 {
		d := rank.NewBaseB(o.BaseB)
		inner := base
		return func(v int32) float64 { return d.Round(inner(v)) }
	}
	return base
}

// Algorithm selects an ADS construction algorithm (Section 3).
type Algorithm int

// Construction algorithms.
const (
	// AlgoPrunedDijkstra is Algorithm 1: one pruned Dijkstra per node in
	// increasing rank order, on the transpose graph.  Works on weighted
	// and unweighted graphs.
	AlgoPrunedDijkstra Algorithm = iota
	// AlgoDP is the node-centric dynamic-programming (Bellman–Ford round)
	// computation for unweighted graphs; entries are inserted in
	// increasing distance.
	AlgoDP
	// AlgoLocalUpdates is Algorithm 2: node-centric message passing for
	// weighted graphs, with synchronized rounds bounded by the hop
	// diameter; entries may be inserted out of distance order and are
	// cleaned up.
	AlgoLocalUpdates
	// AlgoBruteForce derives each node's sketch directly from the exact
	// nearest-neighbor order.  Quadratic; the reference the fast
	// algorithms are tested against.
	AlgoBruteForce
	// AlgoPrunedDijkstraParallel is the Appendix B.4 batch-parallel
	// variant of Algorithm 1: rank-ordered batches of candidates run
	// their pruned Dijkstras concurrently and are reconciled per batch.
	// Identical output to AlgoPrunedDijkstra.
	AlgoPrunedDijkstraParallel
)

func (a Algorithm) String() string {
	switch a {
	case AlgoPrunedDijkstra:
		return "PrunedDijkstra"
	case AlgoDP:
		return "DP"
	case AlgoLocalUpdates:
		return "LocalUpdates"
	case AlgoBruteForce:
		return "BruteForce"
	case AlgoPrunedDijkstraParallel:
		return "PrunedDijkstraParallel"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Set holds the sketches of all nodes of one graph, built with shared
// (coordinated) ranks, stored as one columnar frame; the sketches
// returned by Sketch/SketchOf/BottomK are lightweight views over the
// frame's columns.
type Set struct {
	frame *Frame
}

// Options returns the build options.
func (s *Set) Options() Options { return s.frame.opts }

// K returns the sketch parameter.
func (s *Set) K() int { return s.frame.opts.K }

// NumNodes returns the number of sketches.
func (s *Set) NumNodes() int { return s.frame.n }

// Sketch returns node v's sketch view.
func (s *Set) Sketch(v int32) Sketch { return s.frame.viewSketch(int(v)) }

// SketchOf returns node v's sketch through the flavor-agnostic query
// interface; it is the method shared by all set kinds (uniform, weighted,
// approximate), allowing them to be used interchangeably by query layers.
func (s *Set) SketchOf(v int32) Sketch { return s.frame.viewSketch(int(v)) }

// BottomK returns node v's sketch as a bottom-k ADS; it panics if the set
// was built with a different flavor.
func (s *Set) BottomK(v int32) *ADS { return s.frame.viewSketch(int(v)).(*ADS) }

// Index returns local node v's columnar HIP query index, sharing the
// frame's index arena — the zero-rebuild path batch serving uses.
func (s *Set) Index(v int32) *HIPIndex { return s.frame.Index(v) }

// TotalEntries returns the summed entry count over all sketches — the
// quantity Lemma 2.2 predicts as ~n·k(1 + ln n - ln k) for bottom-k.
// With columnar storage this is an offsets lookup, not a scan.
func (s *Set) TotalEntries() int { return s.frame.totalEntries() }

// BuildSet computes the (forward) ADS of every node of g using the chosen
// algorithm.  For directed graphs pass g for forward sketches (distances
// measured from the sketch owner) or g.Transpose() for backward sketches.
func BuildSet(g *graph.Graph, o Options, algo Algorithm) (*Set, error) {
	return BuildSetParallel(g, o, algo, 0)
}

// BuildSetParallel is BuildSet with an explicit worker bound for the
// parallel parts of the construction (the per-permutation / per-bucket
// runs of k-mins and k-partition, and the batch-parallel Dijkstra).
// workers <= 0 means GOMAXPROCS.  The output is identical for every
// worker count.
func BuildSetParallel(g *graph.Graph, o Options, algo Algorithm, workers int) (*Set, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	if algo == AlgoDP && g.Weighted() {
		return nil, fmt.Errorf("core: the DP builder requires an unweighted graph; use LocalUpdates or PrunedDijkstra")
	}
	runner, err := runnerFor(g, algo, workers)
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	switch o.Flavor {
	case sketch.BottomK:
		lists := runner(runSpec{k: o.K, rank: o.rankFn(0)})
		return &Set{frame: freezeFrame(kindUniform, o, 0, 0, 1, 0, lists)}, nil
	case sketch.KMins:
		perRun := parallelRuns(o.K, workers, func(h int) [][]Entry {
			return runner(runSpec{k: 1, rank: o.rankFn(h)})
		})
		return &Set{frame: freezeFrame(kindUniform, o, 0, 0, o.K, 0, segmentMajor(perRun, n))}, nil
	case sketch.KPartition:
		src := o.Source()
		perRun := parallelRuns(o.K, workers, func(b int) [][]Entry {
			return runner(runSpec{
				k:    1,
				rank: o.rankFn(0),
				include: func(v int32) bool {
					return src.Bucket(int64(v), o.K) == b
				},
			})
		})
		return &Set{frame: freezeFrame(kindUniform, o, 0, 0, o.K, 0, segmentMajor(perRun, n))}, nil
	default:
		return nil, fmt.Errorf("core: unknown flavor %v", o.Flavor)
	}
}

// segmentMajor reorders per-run entry lists (perRun[s][v]) into the
// node-major layout freezeFrame expects (lists[v*segs+s]).
func segmentMajor(perRun [][][]Entry, n int) [][]Entry {
	segs := len(perRun)
	lists := make([][]Entry, n*segs)
	for v := 0; v < n; v++ {
		for s := 0; s < segs; s++ {
			lists[v*segs+s] = perRun[s][v]
		}
	}
	return lists
}

// runSpec describes one elementary construction pass: a bottom-k sample
// under a single rank function, optionally restricted to candidate nodes
// (the k-partition buckets).  All three flavors reduce to such passes.
type runSpec struct {
	k       int
	rank    func(int32) float64
	include func(int32) bool // nil means every node is a candidate
}

func (s runSpec) candidate(v int32) bool {
	return s.include == nil || s.include(v)
}

// runner is an algorithm bound to a graph: it executes one pass and
// returns, for every node, its entry list in canonical order.
type runner func(runSpec) [][]Entry

func runnerFor(g *graph.Graph, algo Algorithm, workers int) (runner, error) {
	switch algo {
	case AlgoPrunedDijkstra:
		return func(s runSpec) [][]Entry { return prunedDijkstraRun(g, s) }, nil
	case AlgoDP:
		return func(s runSpec) [][]Entry { return dpRun(g, s) }, nil
	case AlgoLocalUpdates:
		return func(s runSpec) [][]Entry { return localUpdatesRun(g, s) }, nil
	case AlgoBruteForce:
		return func(s runSpec) [][]Entry { return bruteForceRun(g, s) }, nil
	case AlgoPrunedDijkstraParallel:
		return func(s runSpec) [][]Entry { return prunedDijkstraParallelRun(g, s, 0, workers) }, nil
	}
	return nil, fmt.Errorf("core: unknown algorithm %v", algo)
}

// parallelRuns executes fn(0..k-1) across the given number of workers
// (<= 0 means GOMAXPROCS).
func parallelRuns(k, workers int, fn func(int) [][]Entry) [][][]Entry {
	out := make([][][]Entry, k)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	if workers <= 1 {
		for i := 0; i < k; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < k; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// bruteForceRun derives each node's entry list directly from the exact
// nearest-neighbor order (the definitional construction).  O(n·m) and
// simple; used as ground truth.
func bruteForceRun(g *graph.Graph, s runSpec) [][]Entry {
	n := g.NumNodes()
	lists := make([][]Entry, n)
	for v := 0; v < n; v++ {
		order := graph.NearestOrder(g, int32(v))
		h := newMaxHeap(s.k)
		for _, nd := range order {
			if !s.candidate(nd.Node) {
				continue
			}
			r := s.rank(nd.Node)
			if h.size() >= s.k && r >= h.max() {
				continue
			}
			lists[v] = append(lists[v], Entry{Node: nd.Node, Dist: nd.Dist, Rank: r})
			h.offer(r)
		}
	}
	return lists
}

// partialADS is the under-construction entry list of one node, kept in
// canonical order so "how many entries precede (d, node)" is a binary
// search.
type partialADS []Entry

// countBefore returns the number of entries that precede e canonically.
func (p partialADS) countBefore(e Entry) int {
	return sort.Search(len(p), func(i int) bool { return !p[i].before(e) })
}

// insertAt inserts e at position i.
func (p *partialADS) insertAt(i int, e Entry) {
	*p = append(*p, Entry{})
	copy((*p)[i+1:], (*p)[i:])
	(*p)[i] = e
}

// prunedDijkstraRun is Algorithm 1 generalized to one runSpec pass.
// Candidates are processed in increasing rank order; each runs a pruned
// Dijkstra on the transpose graph, so that reaching v at distance d means
// d = d(v -> candidate) in g.  A visited node v inserts the candidate
// exactly when fewer than k current entries precede it canonically (all
// current entries have strictly smaller rank, having been processed
// earlier), and prunes otherwise.
//
// Ties in rank values (possible with base-b rounding) are handled by
// processing equal-rank candidates as a group whose insertions are
// buffered and applied per node in canonical order when the group
// finishes.  Under the strict-inequality inclusion rule an equal-rank
// entry blocks a candidate exactly when it canonically precedes it, so
// each buffered insertion is re-validated at flush time against both the
// pre-group entries (strictly smaller rank) and the group insertions
// already accepted at that node (equal rank, canonically earlier); the
// test in both cases is "fewer than k canonically-earlier entries".
// Pruning during the traversal uses only pre-group entries, which prunes
// slightly less than possible but never incorrectly.
func prunedDijkstraRun(g *graph.Graph, s runSpec) [][]Entry {
	n := g.NumNodes()
	lists := make([]partialADS, n)
	// Sort candidates by (rank, node) for determinism.
	cands := make([]int32, 0, n)
	for v := int32(0); int(v) < n; v++ {
		if s.candidate(v) {
			cands = append(cands, v)
		}
	}
	ranks := make([]float64, n)
	for _, v := range cands {
		ranks[v] = s.rank(v)
	}
	sort.Slice(cands, func(i, j int) bool {
		if ranks[cands[i]] != ranks[cands[j]] {
			return ranks[cands[i]] < ranks[cands[j]]
		}
		return cands[i] < cands[j]
	})
	tr := g.Transpose()
	vis := graph.NewVisitor(tr)
	type pending struct {
		v int32
		e Entry
	}
	var buffer []pending
	flush := func() {
		// Apply buffered insertions of an equal-rank group per node in
		// canonical order, re-validating each against the entries present
		// at its position (pre-group entries plus already-accepted group
		// members, all of which canonically precede it and have rank <=
		// the group rank).
		sort.Slice(buffer, func(i, j int) bool {
			if buffer[i].v != buffer[j].v {
				return buffer[i].v < buffer[j].v
			}
			return buffer[i].e.before(buffer[j].e)
		})
		for _, p := range buffer {
			pos := lists[p.v].countBefore(p.e)
			if pos < s.k {
				lists[p.v].insertAt(pos, p.e)
			}
		}
		buffer = buffer[:0]
	}
	for i, u := range cands {
		if i > 0 && ranks[cands[i-1]] != ranks[u] {
			flush()
		}
		ru := ranks[u]
		vis.Run(u, func(v int32, d float64) bool {
			e := Entry{Node: u, Dist: d, Rank: ru}
			if lists[v].countBefore(e) >= s.k {
				return false // prune: k closer entries with smaller rank
			}
			buffer = append(buffer, pending{v: v, e: e})
			return true
		})
		// Full-precision ranks are unique, so the common case flushes
		// after every candidate (group size 1).
	}
	flush()
	out := make([][]Entry, n)
	for v := range lists {
		out[v] = lists[v]
	}
	return out
}
