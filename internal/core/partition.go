package core

import (
	"bufio"
	"fmt"
	"io"
)

// Node-range partitioning of sketch sets.  A billion-edge build does not
// fit one serving process, so a sketch set splits by node ID into P
// contiguous shards: partition i owns the sketches of global nodes
// [i·n/P, (i+1)·n/P).  Each partition is independently serializable (the
// kind-3 envelope of the v2 codec carries the partition header: index,
// count, node range, total nodes), loads independently into a shard
// serving process, and the full split merges back bit-for-bit into the
// original set.  Entries inside a partition's sketches keep their global
// node IDs, so every HIP estimate computed from a partitioned sketch is
// identical to the one computed from the whole set.

// Partition is one contiguous node-range shard of a sketch set: the
// sketches of global nodes [Lo, Hi) of a TotalNodes-node set split into
// Count shards.  The inner set indexes sketches locally (sketch i is
// owned by global node Lo+i); SketchAt resolves global IDs.
type Partition struct {
	index, count int
	lo, hi       int32
	total        int
	set          AnySet
}

// Index returns the partition's position in the split, in [0, Count).
func (p *Partition) Index() int { return p.index }

// Count returns how many partitions the set was split into.
func (p *Partition) Count() int { return p.count }

// Lo returns the first global node ID the partition owns.
func (p *Partition) Lo() int32 { return p.lo }

// Hi returns the global node ID one past the last the partition owns.
func (p *Partition) Hi() int32 { return p.hi }

// TotalNodes returns the node count of the full (unsplit) set.
func (p *Partition) TotalNodes() int { return p.total }

// NumLocal returns how many sketches the partition holds (Hi - Lo).
func (p *Partition) NumLocal() int { return int(p.hi - p.lo) }

// K returns the sketch parameter.
func (p *Partition) K() int { return p.set.K() }

// Set returns the inner, locally indexed sketch set (*Set, *WeightedSet,
// or *ApproxSet; sketch i is owned by global node Lo+i).
func (p *Partition) Set() AnySet { return p.set }

// Contains reports whether the partition owns global node v.
func (p *Partition) Contains(v int32) bool { return v >= p.lo && v < p.hi }

// SketchAt returns the sketch of global node v.
func (p *Partition) SketchAt(v int32) (Sketch, error) {
	if !p.Contains(v) {
		return nil, fmt.Errorf("core: node %d not owned by partition %d/%d (nodes [%d, %d))",
			v, p.index, p.count, p.lo, p.hi)
	}
	return p.set.SketchOf(v - p.lo), nil
}

// WriteTo serializes the partition in the version-2 format (kind 3): the
// partition header followed by the inner set's body.  It implements
// io.WriterTo.
func (p *Partition) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	e := &setEncoder{bw: bufio.NewWriter(cw)}
	if _, err := e.bw.WriteString(encodeMagic); err != nil {
		return cw.n, err
	}
	hdr := []error{
		e.u32(EncodeVersion),
		e.u32(kindPartition),
		e.u32(uint32(p.index)),
		e.u32(uint32(p.count)),
		e.u32(uint32(p.lo)),
		e.u32(uint32(p.hi)),
		e.u32(uint32(p.total)),
	}
	for _, err := range hdr {
		if err != nil {
			return cw.n, err
		}
	}
	if err := encodeSetBody(e, p.set); err != nil {
		return cw.n, err
	}
	if err := e.bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// readPartitionBody parses everything after the magic/version/kind
// prefix of a partition file.
func readPartitionBody(d *setDecoder) (*Partition, error) {
	var index, count, lo, hi, total uint32
	if err := d.header(&index, &count, &lo, &hi, &total); err != nil {
		return nil, fmt.Errorf("core: reading partition header: %w", err)
	}
	switch {
	case count < 1 || count > maxCodecPartitions:
		return nil, fmt.Errorf("core: implausible partition count %d", count)
	case index >= count:
		return nil, fmt.Errorf("core: partition index %d out of range [0, %d)", index, count)
	case total > 1<<30:
		return nil, fmt.Errorf("core: implausible node count %d", total)
	case lo > hi || hi > total:
		return nil, fmt.Errorf("core: partition node range [%d, %d) outside [0, %d)", lo, hi, total)
	}
	set, err := decodeSetBody(d, int32(lo))
	if err != nil {
		return nil, err
	}
	if set.NumNodes() != int(hi-lo) {
		return nil, fmt.Errorf("core: partition claims nodes [%d, %d) but holds %d sketches", lo, hi, set.NumNodes())
	}
	return &Partition{
		index: int(index),
		count: int(count),
		lo:    int32(lo),
		hi:    int32(hi),
		total: int(total),
		set:   set,
	}, nil
}

// ReadPartition deserializes one partition written by Partition.WriteTo,
// validating the partition header and every sketch's structural
// invariants.  Whole-set files are refused; read those with
// ReadSketchSet.
func ReadPartition(r io.Reader) (*Partition, error) {
	set, part, err := readAny(r)
	if err != nil {
		return nil, err
	}
	if part == nil {
		return nil, fmt.Errorf("core: file holds a whole %T, not a partition; use ReadSketchSet", set)
	}
	return part, nil
}

// SplitSketchSet partitions a sketch set by node ID into parts contiguous
// shards of near-equal size (partition i owns [i·n/parts, (i+1)·n/parts)).
// The partitions alias the set's sketches — splitting allocates no sketch
// data — and MergeSketchSets reassembles them into a set whose
// serialization is bit-for-bit identical to the original's.
func SplitSketchSet(s AnySet, parts int) ([]*Partition, error) {
	n := s.NumNodes()
	if parts < 1 {
		return nil, fmt.Errorf("core: cannot split into %d partitions, want >= 1", parts)
	}
	if parts > n && !(n == 0 && parts == 1) {
		return nil, fmt.Errorf("core: cannot split %d nodes into %d partitions", n, parts)
	}
	// Splitting a columnar frame is offset re-slicing: the sub-frames
	// share the parent's entry columns, so no entry is copied.
	slice := func(lo, hi int) (AnySet, error) {
		switch x := s.(type) {
		case *Set:
			return &Set{frame: x.frame.slice(lo, hi)}, nil
		case *WeightedSet:
			return &WeightedSet{frame: x.frame.slice(lo, hi)}, nil
		case *ApproxSet:
			return &ApproxSet{frame: x.frame.slice(lo, hi)}, nil
		default:
			return nil, fmt.Errorf("core: cannot split sketch set type %T", s)
		}
	}
	out := make([]*Partition, parts)
	for i := 0; i < parts; i++ {
		lo, hi := i*n/parts, (i+1)*n/parts
		sub, err := slice(lo, hi)
		if err != nil {
			return nil, err
		}
		out[i] = &Partition{
			index: i,
			count: parts,
			lo:    int32(lo),
			hi:    int32(hi),
			total: n,
			set:   sub,
		}
	}
	return out, nil
}

// MergeSketchSets reassembles a complete split back into one whole set.
// The partitions may arrive in any order; the merge validates that they
// form exactly one split (consistent count and total, indexes 0..P-1,
// contiguous ranges covering every node, equal sketch parameters) and
// returns a set of the same dynamic kind whose serialization is
// bit-for-bit identical to the original's.
func MergeSketchSets(parts []*Partition) (AnySet, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: no partitions to merge")
	}
	byIndex := make([]*Partition, len(parts))
	count, total := parts[0].count, parts[0].total
	if count != len(parts) {
		return nil, fmt.Errorf("core: have %d partitions of a %d-way split", len(parts), count)
	}
	for _, p := range parts {
		if p.count != count || p.total != total {
			return nil, fmt.Errorf("core: partition %d belongs to a different split (%d partitions of %d nodes, want %d of %d)",
				p.index, p.count, p.total, count, total)
		}
		if p.index < 0 || p.index >= count {
			return nil, fmt.Errorf("core: partition index %d out of range [0, %d)", p.index, count)
		}
		if byIndex[p.index] != nil {
			return nil, fmt.Errorf("core: duplicate partition %d", p.index)
		}
		byIndex[p.index] = p
	}
	expect := int32(0)
	for i, p := range byIndex {
		if p.lo != expect {
			return nil, fmt.Errorf("core: partition %d covers nodes [%d, %d), want to start at %d", i, p.lo, p.hi, expect)
		}
		expect = p.hi
	}
	if int(expect) != total {
		return nil, fmt.Errorf("core: partitions cover nodes [0, %d) of %d", expect, total)
	}
	merged, err := concatPartitions(byIndex, total)
	if err != nil {
		return nil, err
	}
	// Cross-check the sketch owners against their global positions, so a
	// merge of tampered partitions cannot silently misattribute sketches.
	for v := 0; v < total; v++ {
		if owner := merged.SketchOf(int32(v)).Node(); owner != int32(v) {
			return nil, fmt.Errorf("core: merged sketch at position %d is owned by node %d", v, owner)
		}
	}
	return merged, nil
}

// concatPartitions concatenates the partitions' frames, validating kind
// and parameter consistency.
func concatPartitions(byIndex []*Partition, total int) (AnySet, error) {
	frames := make([]*Frame, len(byIndex))
	switch first := byIndex[0].set.(type) {
	case *Set:
		for i, p := range byIndex {
			x, ok := p.set.(*Set)
			if !ok {
				return nil, fmt.Errorf("core: partition %d holds a %T, partition 0 a %T", p.index, p.set, first)
			}
			if x.frame.opts != first.frame.opts {
				return nil, fmt.Errorf("core: partition %d built with %+v, partition 0 with %+v", p.index, x.frame.opts, first.frame.opts)
			}
			frames[i] = x.frame
		}
		return &Set{frame: mergeFrames(frames)}, nil
	case *WeightedSet:
		scheme, schemeKnown := ExponentialWeights, false
		for i, p := range byIndex {
			x, ok := p.set.(*WeightedSet)
			if !ok {
				return nil, fmt.Errorf("core: partition %d holds a %T, partition 0 a %T", p.index, p.set, first)
			}
			if x.K() != first.K() {
				return nil, fmt.Errorf("core: partition %d has k=%d, partition 0 k=%d", p.index, x.K(), first.K())
			}
			if x.NumNodes() > 0 {
				if !schemeKnown {
					scheme, schemeKnown = x.Scheme(), true
				} else if x.Scheme() != scheme {
					return nil, fmt.Errorf("core: partition %d uses %v ranks, earlier partitions %v", p.index, x.Scheme(), scheme)
				}
			}
			frames[i] = x.frame
		}
		return &WeightedSet{frame: mergeFrames(frames)}, nil
	case *ApproxSet:
		for i, p := range byIndex {
			x, ok := p.set.(*ApproxSet)
			if !ok {
				return nil, fmt.Errorf("core: partition %d holds a %T, partition 0 a %T", p.index, p.set, first)
			}
			if x.K() != first.K() || x.Epsilon() != first.Epsilon() {
				return nil, fmt.Errorf("core: partition %d has (k=%d, eps=%g), partition 0 (k=%d, eps=%g)",
					p.index, x.K(), x.Epsilon(), first.K(), first.Epsilon())
			}
			frames[i] = x.frame
		}
		return &ApproxSet{frame: mergeFrames(frames)}, nil
	default:
		return nil, fmt.Errorf("core: cannot merge sketch set type %T", first)
	}
}

// ADSFromEntries reconstructs a bottom-k ADS from transported entries
// (e.g. a sketch fetched from a remote shard), validating the structural
// invariants.
func ADSFromEntries(owner int32, k int, entries []Entry) (*ADS, error) {
	a := NewADS(owner, k)
	a.c = colsFromEntries(entries)
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}
