package core

import (
	"adsketch/internal/graph"
)

// localUpdatesRun is Algorithm 2 (LOCALUPDATES): node-centric construction
// for weighted graphs, suitable for synchronized (Pregel/MapReduce-style)
// execution.  Each node starts with its own entry; whenever an entry is
// added to ADS(u), the pair (candidate, dist + w(v,u)) is sent to every
// in-neighbor v.  Because edge lengths are arbitrary, entries can arrive
// out of distance order: an insertion may invalidate later entries, which
// the clean-up step removes (the overhead Section 3 bounds by the hop
// diameter for synchronized rounds).
//
// The simulation here runs synchronized rounds until no messages remain,
// which matches the MapReduce execution model the paper targets; the
// number of rounds is bounded by the hop diameter of the graph.
func localUpdatesRun(g *graph.Graph, s runSpec) [][]Entry {
	n := g.NumNodes()
	lists := make([]partialADS, n)
	tr := g.Transpose()

	type msg struct {
		to int32
		e  Entry
	}
	var inbox []msg

	// send queues the propagation of a fresh entry at node u to all
	// in-neighbors of u (nodes that can reach u's samples through u).
	send := func(u int32, e Entry) {
		ins, ws := tr.Neighbors(u)
		for i, v := range ins {
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			inbox = append(inbox, msg{to: v, e: Entry{Node: e.Node, Dist: e.Dist + w, Rank: e.Rank}})
		}
	}

	// insert applies the Algorithm 2 update rule at node v: reject if a
	// better-or-equal entry for the same node exists; insert if the rank
	// beats the k-th smallest rank among canonically-earlier entries; then
	// clean up every later entry whose own inclusion test broke.  Returns
	// whether the ADS changed in a way that must be propagated.
	h := newMaxHeap(s.k) // scratch, reused across insertions
	insert := func(v int32, e Entry) bool {
		p := &lists[v]
		// Duplicate handling: an existing entry for the same node with
		// smaller-or-equal distance supersedes the arrival; a farther one
		// is superseded by it.
		for i := range *p {
			if (*p)[i].Node == e.Node {
				if !e.before((*p)[i]) {
					return false
				}
				copy((*p)[i:], (*p)[i+1:])
				*p = (*p)[:len(*p)-1]
				break
			}
		}
		pos := p.countBefore(e)
		// Inclusion test: rank strictly below the k-th smallest rank among
		// canonically-earlier entries.
		h.reset()
		for i := 0; i < pos; i++ {
			h.offer((*p)[i].Rank)
		}
		if h.size() >= s.k && e.Rank >= h.max() {
			return false
		}
		p.insertAt(pos, e)
		// Clean-up (Algorithm 2): re-validate entries after the insertion
		// point in canonical order, removing any whose rank no longer
		// beats the threshold of its prefix.
		h.offer(e.Rank)
		keep := (*p)[:pos+1]
		for i := pos + 1; i < len(*p); i++ {
			cur := (*p)[i]
			if h.size() >= s.k && cur.Rank >= h.max() {
				continue // drop: superseded by the new entry
			}
			h.offer(cur.Rank)
			keep = append(keep, cur)
		}
		*p = keep
		return true
	}

	// Initialization: every candidate node starts its own ADS and
	// propagates itself.
	for v := int32(0); int(v) < n; v++ {
		if !s.candidate(v) {
			continue
		}
		e := Entry{Node: v, Dist: 0, Rank: s.rank(v)}
		lists[v] = partialADS{e}
		send(v, e)
	}

	// Synchronized rounds: deliver the whole inbox, collecting newly
	// accepted entries to propagate next round.
	for len(inbox) > 0 {
		batch := inbox
		inbox = nil
		for _, m := range batch {
			if insert(m.to, m.e) {
				send(m.to, m.e)
			}
		}
	}

	out := make([][]Entry, n)
	for v := range lists {
		out[v] = lists[v]
	}
	return out
}
