package core

import (
	"fmt"

	"adsketch/internal/sketch"
)

// KMinsADS is a k-mins All-Distances Sketch: k independent bottom-1 ADSs,
// one per permutation (Section 2).  Each per-permutation list holds the
// prefix minima of that permutation's ranks along the canonical node order,
// so the minimum rank within any neighborhood N_d is the rank of the last
// entry with Dist <= d.  Each list is a column view (frame segment or
// private columns).
type KMinsADS struct {
	k     int
	node  int32
	perms []cols // perms[h]: bottom-1 ADS under permutation h
}

var _ Sketch = (*KMinsADS)(nil)

// NewKMinsADS returns an empty k-mins ADS owned by node.
func NewKMinsADS(node int32, k int) *KMinsADS {
	if k < 1 {
		panic("core: k must be >= 1")
	}
	return &KMinsADS{k: k, node: node, perms: make([]cols, k)}
}

// K returns the sketch parameter.
func (a *KMinsADS) K() int { return a.k }

// Flavor returns sketch.KMins.
func (a *KMinsADS) Flavor() sketch.Flavor { return sketch.KMins }

// Node returns the owner.
func (a *KMinsADS) Node() int32 { return a.node }

// Size returns the total number of stored entries across permutations
// (the k-mins ADS size Lemma 2.2 bounds by k·H_n).
func (a *KMinsADS) Size() int {
	n := 0
	for _, p := range a.perms {
		n += p.len()
	}
	return n
}

// Perm materializes the bottom-1 ADS of permutation h in canonical order
// (a fresh copy; the storage is columnar).
func (a *KMinsADS) Perm(h int) []Entry { return a.perms[h].entries() }

// OfferAt presents a candidate to permutation h's bottom-1 ADS; the
// candidate must come after all current entries of that permutation in
// canonical order.  It reports whether the entry was inserted (its rank
// strictly improved the running minimum).
func (a *KMinsADS) OfferAt(h int, e Entry) bool {
	p := &a.perms[h]
	if n := p.len(); n > 0 {
		if !p.at(n - 1).before(e) {
			panic(fmt.Sprintf("core: OfferAt out of order: %+v after %+v", e, p.at(n-1)))
		}
		if e.Rank >= p.rank[n-1] {
			return false
		}
	}
	p.push(e)
	return true
}

// MinsWithin extracts the k-mins MinHash sketch of N_d: for each
// permutation, the minimum rank among entries with Dist <= d (1 when the
// neighborhood holds no entry of that permutation).
func (a *KMinsADS) MinsWithin(d float64) []float64 {
	mins := make([]float64, a.k)
	for h, p := range a.perms {
		mins[h] = 1
		for i := 0; i < p.len(); i++ {
			if p.dist[i] > d {
				break
			}
			mins[h] = p.rank[i] // prefix minima are decreasing
		}
	}
	return mins
}

// EstimateNeighborhood returns the basic k-mins estimate of n_d
// (Section 4.1) applied to the extracted MinHash sketch.
func (a *KMinsADS) EstimateNeighborhood(d float64) float64 {
	return sketch.KMinsEstimate(a.MinsWithin(d))
}

// hipMergeKMins computes adjusted weights by equation (7): scanning
// distinct nodes in canonical order while maintaining the running minimum
// rank m_h of each permutation over the nodes seen so far,
//
//	τ_vj = 1 - Π_h (1 - m_h),
//
// the probability that a fresh node beats at least one permutation's
// minimum.  A node appearing in several permutations' lists contributes a
// single entry, emitted in canonical order.
func hipMergeKMins(perms []cols, emit func(node int32, dist, w float64)) {
	cursors := make([]int, len(perms))
	curMin := make([]float64, len(perms))
	for h := range curMin {
		curMin[h] = 1
	}
	for {
		// Find the next entry in canonical order across permutations.
		best := -1
		for h, c := range cursors {
			if c >= perms[h].len() {
				continue
			}
			if best < 0 || perms[h].at(c).before(perms[best].at(cursors[best])) {
				best = h
			}
		}
		if best < 0 {
			break
		}
		e := perms[best].at(cursors[best])
		// HIP probability before updating the minima with e itself.
		prod := 1.0
		for _, m := range curMin {
			prod *= 1 - m
		}
		tau := 1 - prod
		emit(e.Node, e.Dist, 1/tau)
		// Consume e from every permutation where it appears (same node can
		// be the new minimum of several permutations at once).
		for h := range cursors {
			c := cursors[h]
			if c < perms[h].len() && perms[h].node[c] == e.Node && perms[h].dist[c] == e.Dist {
				curMin[h] = perms[h].rank[c]
				cursors[h]++
			}
		}
	}
}

// HIPEntries computes adjusted weights by equation (7); see hipMergeKMins.
func (a *KMinsADS) HIPEntries() []WeightedEntry {
	var out []WeightedEntry
	hipMergeKMins(a.perms, func(node int32, dist, w float64) {
		out = append(out, WeightedEntry{Node: node, Dist: dist, Weight: w})
	})
	return out
}

// Validate checks per-permutation canonical order and the bottom-1
// inclusion condition (strictly decreasing ranks).
func (a *KMinsADS) Validate() error {
	for h, p := range a.perms {
		for i := 1; i < p.len(); i++ {
			if !p.at(i - 1).before(p.at(i)) {
				return fmt.Errorf("core: k-mins ADS(%d) perm %d out of order at %d", a.node, h, i)
			}
			if p.rank[i] >= p.rank[i-1] {
				return fmt.Errorf("core: k-mins ADS(%d) perm %d rank not decreasing at %d", a.node, h, i)
			}
		}
		if p.len() > 0 && (p.node[0] != a.node || p.dist[0] != 0) {
			return fmt.Errorf("core: k-mins ADS(%d) perm %d does not start with owner", a.node, h)
		}
	}
	return nil
}
