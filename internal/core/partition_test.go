package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"adsketch/internal/graph"
	"adsketch/internal/sketch"
)

func buildUniform(t *testing.T, o Options) *Set {
	t.Helper()
	g := graph.PreferentialAttachment(150, 3, 5)
	set, err := BuildSet(g, o, AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// splitKinds builds one set of every kind for the split/merge tests.
func splitKinds(t *testing.T) map[string]AnySet {
	t.Helper()
	g := graph.PreferentialAttachment(150, 3, 5)
	uniform, err := BuildSet(g, Options{K: 8, Seed: 42}, AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	beta := make([]float64, g.NumNodes())
	for i := range beta {
		beta[i] = 1 + float64(i%5)
	}
	weighted, err := BuildWeightedSet(g, 8, 42, beta)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := BuildApproxSet(g, 8, 42, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]AnySet{"uniform": uniform, "weighted": weighted, "approx": approx}
}

func setBytes(t *testing.T, s AnySet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// A split must cover every node exactly once, alias the original
// sketches, and merge back into a set serializing bit-for-bit like the
// original — for every set kind.
func TestSplitMergeRoundTrip(t *testing.T) {
	for kind, set := range splitKinds(t) {
		t.Run(kind, func(t *testing.T) {
			original := setBytes(t, set)
			for _, p := range []int{1, 3, 4, 150} {
				parts, err := SplitSketchSet(set, p)
				if err != nil {
					t.Fatalf("split %d: %v", p, err)
				}
				if len(parts) != p {
					t.Fatalf("split %d: got %d parts", p, len(parts))
				}
				covered := 0
				for i, part := range parts {
					if part.Index() != i || part.Count() != p || part.TotalNodes() != set.NumNodes() {
						t.Fatalf("split %d part %d header: %+v", p, i, part)
					}
					covered += part.NumLocal()
					for v := part.Lo(); v < part.Hi(); v++ {
						sk, err := part.SketchAt(v)
						if err != nil {
							t.Fatal(err)
						}
						// Sketches are views over the split frame's shared
						// columns; the partition's view must read exactly
						// what the whole set's does.
						if sk.Node() != v || !reflect.DeepEqual(sk.HIPEntries(), set.SketchOf(v).HIPEntries()) {
							t.Fatalf("split %d: partition sketch of node %d is not the original", p, v)
						}
					}
				}
				if covered != set.NumNodes() {
					t.Fatalf("split %d covers %d of %d nodes", p, covered, set.NumNodes())
				}
				// Merge in scrambled order.
				scrambled := make([]*Partition, len(parts))
				for i, part := range parts {
					scrambled[(i*7+3)%len(parts)] = part
				}
				merged, err := MergeSketchSets(scrambled)
				if err != nil {
					t.Fatalf("merge %d: %v", p, err)
				}
				if got := setBytes(t, merged); !bytes.Equal(got, original) {
					t.Fatalf("split %d: merged serialization differs from original (%d vs %d bytes)", p, len(got), len(original))
				}
			}
		})
	}
}

// Partition files must round trip through the codec, preserving header
// and sketches, then merge bit-for-bit.
func TestPartitionCodecRoundTrip(t *testing.T) {
	for kind, set := range splitKinds(t) {
		t.Run(kind, func(t *testing.T) {
			original := setBytes(t, set)
			parts, err := SplitSketchSet(set, 4)
			if err != nil {
				t.Fatal(err)
			}
			loaded := make([]*Partition, len(parts))
			for i, part := range parts {
				var buf bytes.Buffer
				if _, err := part.WriteTo(&buf); err != nil {
					t.Fatal(err)
				}
				p2, err := ReadPartition(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("partition %d: %v", i, err)
				}
				if p2.Index() != part.Index() || p2.Count() != part.Count() ||
					p2.Lo() != part.Lo() || p2.Hi() != part.Hi() || p2.TotalNodes() != part.TotalNodes() {
					t.Fatalf("partition %d header changed across codec: %+v vs %+v", i, p2, part)
				}
				// The re-encoded partition must be byte-identical too.
				var buf2 bytes.Buffer
				if _, err := p2.WriteTo(&buf2); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
					t.Fatalf("partition %d re-serialization differs", i)
				}
				loaded[i] = p2
			}
			merged, err := MergeSketchSets(loaded)
			if err != nil {
				t.Fatal(err)
			}
			if got := setBytes(t, merged); !bytes.Equal(got, original) {
				t.Fatal("codec round trip + merge differs from original serialization")
			}
		})
	}
}

// Uniform flavors beyond bottom-k must survive the partition codec too.
func TestPartitionCodecFlavors(t *testing.T) {
	for _, o := range []Options{
		{K: 4, Flavor: sketch.KMins, Seed: 9},
		{K: 4, Flavor: sketch.KPartition, Seed: 9},
		{K: 8, Seed: 9, BaseB: 2},
	} {
		set := buildUniform(t, o)
		parts, err := SplitSketchSet(set, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, part := range parts {
			var buf bytes.Buffer
			if _, err := part.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			p2, err := ReadPartition(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("flavor %v: %v", o.Flavor, err)
			}
			for v := p2.Lo(); v < p2.Hi(); v++ {
				sk, err := p2.SketchAt(v)
				if err != nil {
					t.Fatal(err)
				}
				if sk.Node() != v {
					t.Fatalf("flavor %v: sketch at %d owned by %d", o.Flavor, v, sk.Node())
				}
				want := EstimateNeighborhoodHIP(set.SketchOf(v), 2)
				if got := EstimateNeighborhoodHIP(sk, 2); got != want {
					t.Fatalf("flavor %v node %d: estimate %v, want %v", o.Flavor, v, got, want)
				}
			}
		}
	}
}

func TestSplitValidation(t *testing.T) {
	set := buildUniform(t, Options{K: 4, Seed: 1})
	if _, err := SplitSketchSet(set, 0); err == nil {
		t.Error("split into 0 partitions succeeded")
	}
	if _, err := SplitSketchSet(set, set.NumNodes()+1); err == nil {
		t.Error("split into more partitions than nodes succeeded")
	}
}

func TestMergeValidation(t *testing.T) {
	set := buildUniform(t, Options{K: 4, Seed: 1})
	parts, err := SplitSketchSet(set, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeSketchSets(nil); err == nil {
		t.Error("merging nothing succeeded")
	}
	if _, err := MergeSketchSets(parts[:3]); err == nil {
		t.Error("merging an incomplete split succeeded")
	}
	if _, err := MergeSketchSets([]*Partition{parts[0], parts[1], parts[2], parts[2]}); err == nil {
		t.Error("merging a duplicate partition succeeded")
	}
	other, err := SplitSketchSet(buildUniform(t, Options{K: 4, Seed: 2}), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeSketchSets([]*Partition{parts[0], other[1]}); err == nil {
		t.Error("merging partitions of different splits succeeded")
	}
}

// A partition file is not a whole set, and vice versa; the readers must
// say so instead of misparsing.
func TestPartitionFileDetection(t *testing.T) {
	set := buildUniform(t, Options{K: 4, Seed: 1})
	parts, err := SplitSketchSet(set, 2)
	if err != nil {
		t.Fatal(err)
	}
	var pbuf bytes.Buffer
	if _, err := parts[1].WriteTo(&pbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSketchSet(bytes.NewReader(pbuf.Bytes())); err == nil || !strings.Contains(err.Error(), "partition") {
		t.Errorf("ReadSketchSet on a partition file: %v", err)
	}
	var sbuf bytes.Buffer
	if _, err := set.WriteTo(&sbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPartition(bytes.NewReader(sbuf.Bytes())); err == nil || !strings.Contains(err.Error(), "whole") {
		t.Errorf("ReadPartition on a whole-set file: %v", err)
	}

	// ReadSketchFile accepts both and tells them apart.
	gotSet, gotPart, err := ReadSketchFile(bytes.NewReader(sbuf.Bytes()))
	if err != nil || gotSet == nil || gotPart != nil {
		t.Errorf("ReadSketchFile(whole) = (%v, %v, %v)", gotSet, gotPart, err)
	}
	gotSet2, gotPart2, err := ReadSketchFile(bytes.NewReader(pbuf.Bytes()))
	if err != nil || gotSet2 != nil || gotPart2 == nil {
		t.Errorf("ReadSketchFile(partition) = (%v, %v, %v)", gotSet2, gotPart2, err)
	}
}

// Truncated or header-corrupted partition files must error, not panic or
// over-allocate.
func TestPartitionCorruption(t *testing.T) {
	set := buildUniform(t, Options{K: 4, Seed: 1})
	parts, err := SplitSketchSet(set, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := parts[0].WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, n := range []int{5, 12, 20, len(raw) / 2, len(raw) - 1} {
		if _, err := ReadPartition(bytes.NewReader(raw[:n])); err == nil {
			t.Errorf("truncation to %d bytes read successfully", n)
		}
	}
	// Corrupt the partition count field (offset: magic 4 + version 4 +
	// kind 4 + index 4 = 16).
	bad := append([]byte(nil), raw...)
	bad[16], bad[17], bad[18], bad[19] = 0xff, 0xff, 0xff, 0xff
	if _, err := ReadPartition(bytes.NewReader(bad)); err == nil {
		t.Error("implausible partition count read successfully")
	}
}

func TestADSFromEntries(t *testing.T) {
	set := buildUniform(t, Options{K: 4, Seed: 1})
	a := set.Sketch(3).(*ADS)
	rebuilt, err := ADSFromEntries(3, a.K(), append([]Entry(nil), a.Entries()...))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := EstimateNeighborhoodHIP(rebuilt, 2), EstimateNeighborhoodHIP(a, 2); got != want {
		t.Errorf("rebuilt estimate %v, want %v", got, want)
	}
	// Reordered entries violate the canonical-order invariant.
	ents := append([]Entry(nil), a.Entries()...)
	if len(ents) >= 2 {
		ents[0], ents[1] = ents[1], ents[0]
		if _, err := ADSFromEntries(3, a.K(), ents); err == nil {
			t.Error("corrupt entries validated successfully")
		}
	}
}
