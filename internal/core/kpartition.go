package core

import (
	"fmt"

	"adsketch/internal/sketch"
)

// KPartitionADS is a k-partition All-Distances Sketch (Section 2, implicit
// in HyperANF): nodes are hashed into k buckets, and for each bucket the
// sketch keeps the prefix minima of ranks along the canonical order,
// restricted to nodes of that bucket.  A node belongs to exactly one
// bucket.  Each bucket is a column view (frame segment or private
// columns).
type KPartitionADS struct {
	k       int
	node    int32
	buckets []cols // buckets[b]: bottom-1 ADS over nodes with BUCKET=b
}

var _ Sketch = (*KPartitionADS)(nil)

// NewKPartitionADS returns an empty k-partition ADS owned by node.
func NewKPartitionADS(node int32, k int) *KPartitionADS {
	if k < 1 {
		panic("core: k must be >= 1")
	}
	return &KPartitionADS{k: k, node: node, buckets: make([]cols, k)}
}

// K returns the number of buckets.
func (a *KPartitionADS) K() int { return a.k }

// Flavor returns sketch.KPartition.
func (a *KPartitionADS) Flavor() sketch.Flavor { return sketch.KPartition }

// Node returns the owner.
func (a *KPartitionADS) Node() int32 { return a.node }

// Size returns the total number of entries across buckets.
func (a *KPartitionADS) Size() int {
	n := 0
	for _, b := range a.buckets {
		n += b.len()
	}
	return n
}

// Bucket materializes bucket b's entries in canonical order (a fresh
// copy; the storage is columnar).
func (a *KPartitionADS) Bucket(b int) []Entry { return a.buckets[b].entries() }

// OfferAt presents a candidate belonging to bucket b; the candidate must
// come after all current entries of that bucket in canonical order.  It
// reports whether the entry was inserted.
func (a *KPartitionADS) OfferAt(b int, e Entry) bool {
	p := &a.buckets[b]
	if n := p.len(); n > 0 {
		if !p.at(n - 1).before(e) {
			panic(fmt.Sprintf("core: OfferAt out of order: %+v after %+v", e, p.at(n-1)))
		}
		if e.Rank >= p.rank[n-1] {
			return false
		}
	}
	p.push(e)
	return true
}

// MinsWithin extracts the k-partition MinHash sketch of N_d: the minimum
// rank per bucket among entries with Dist <= d (1 for empty buckets).
func (a *KPartitionADS) MinsWithin(d float64) []float64 {
	mins := make([]float64, a.k)
	for b, p := range a.buckets {
		mins[b] = 1
		for i := 0; i < p.len(); i++ {
			if p.dist[i] > d {
				break
			}
			mins[b] = p.rank[i]
		}
	}
	return mins
}

// EstimateNeighborhood returns the basic k-partition estimate of n_d
// (Section 4.3) applied to the extracted MinHash sketch.
func (a *KPartitionADS) EstimateNeighborhood(d float64) float64 {
	return sketch.KPartitionEstimate(a.MinsWithin(d))
}

// hipMergeKPartition computes adjusted weights by equation (8): scanning
// nodes in canonical order while maintaining the running minimum rank m_b
// of each bucket over nodes seen so far,
//
//	τ_vj = (1/k) Σ_b m_b,
//
// the inclusion probability of a fresh node under a uniform random bucket
// assignment and rank (empty buckets contribute m_b = 1).
func hipMergeKPartition(buckets []cols, emit func(node int32, dist, w float64)) {
	k := len(buckets)
	cursors := make([]int, k)
	curMin := make([]float64, k)
	sum := 0.0
	for b := range curMin {
		curMin[b] = 1
		sum += 1
	}
	for {
		best := -1
		for b, c := range cursors {
			if c >= buckets[b].len() {
				continue
			}
			if best < 0 || buckets[b].at(c).before(buckets[best].at(cursors[best])) {
				best = b
			}
		}
		if best < 0 {
			break
		}
		e := buckets[best].at(cursors[best])
		tau := sum / float64(k)
		emit(e.Node, e.Dist, 1/tau)
		sum += e.Rank - curMin[best]
		curMin[best] = e.Rank
		cursors[best]++
	}
}

// HIPEntries computes adjusted weights by equation (8); see
// hipMergeKPartition.
func (a *KPartitionADS) HIPEntries() []WeightedEntry {
	var out []WeightedEntry
	hipMergeKPartition(a.buckets, func(node int32, dist, w float64) {
		out = append(out, WeightedEntry{Node: node, Dist: dist, Weight: w})
	})
	return out
}

// Validate checks per-bucket canonical order and the bottom-1 inclusion
// condition.
func (a *KPartitionADS) Validate() error {
	for b, p := range a.buckets {
		for i := 1; i < p.len(); i++ {
			if !p.at(i - 1).before(p.at(i)) {
				return fmt.Errorf("core: k-partition ADS(%d) bucket %d out of order at %d", a.node, b, i)
			}
			if p.rank[i] >= p.rank[i-1] {
				return fmt.Errorf("core: k-partition ADS(%d) bucket %d rank not decreasing at %d", a.node, b, i)
			}
		}
	}
	return nil
}
