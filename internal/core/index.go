package core

import "sort"

// HIPIndex is a prebuilt query index over a sketch's HIP entries: distances
// and prefix sums of adjusted weights.  Repeated neighborhood queries cost
// one binary search instead of re-deriving the adjusted weights, which
// matters when a sketch serves many query distances (distance
// distributions, percentile scans, interactive exploration).
//
// This realizes the compression remark of Section 5: "for each unique
// distance d in ADS(i) we associate an adjusted weight equal to the sum of
// the adjusted weights of included nodes with distance d" — the index
// stores exactly that distance -> cumulative weight mapping.
type HIPIndex struct {
	dists []float64 // unique entry distances, ascending
	cum   []float64 // cum[i]: total adjusted weight at distance <= dists[i]
}

// NewHIPIndex builds the index for a sketch of any flavor.
func NewHIPIndex(s Sketch) *HIPIndex {
	entries := s.HIPEntries()
	idx := &HIPIndex{}
	total := 0.0
	for i := 0; i < len(entries); {
		d := entries[i].Dist
		for i < len(entries) && entries[i].Dist == d {
			total += entries[i].Weight
			i++
		}
		idx.dists = append(idx.dists, d)
		idx.cum = append(idx.cum, total)
	}
	return idx
}

// Neighborhood returns the HIP estimate of n_d: the cumulative adjusted
// weight at distance <= d.
func (x *HIPIndex) Neighborhood(d float64) float64 {
	i := sort.SearchFloat64s(x.dists, d)
	// SearchFloat64s returns the first index with dists[i] >= d; include
	// an exact match.
	if i < len(x.dists) && x.dists[i] == d {
		return x.cum[i]
	}
	if i == 0 {
		return 0
	}
	return x.cum[i-1]
}

// Total returns the estimate of the number of reachable nodes.
func (x *HIPIndex) Total() float64 {
	if len(x.cum) == 0 {
		return 0
	}
	return x.cum[len(x.cum)-1]
}

// Distances returns the unique entry distances, ascending (the points at
// which the neighborhood estimate steps).
func (x *HIPIndex) Distances() []float64 { return x.dists }

// QuantileDistance returns the smallest indexed distance d whose estimated
// neighborhood reaches fraction q of the total — the sketch analogue of a
// distance percentile (e.g. the median distance to reachable nodes).
func (x *HIPIndex) QuantileDistance(q float64) float64 {
	if len(x.cum) == 0 {
		return 0
	}
	target := q * x.Total()
	i := sort.Search(len(x.cum), func(i int) bool { return x.cum[i] >= target })
	if i == len(x.cum) {
		i = len(x.cum) - 1
	}
	return x.dists[i]
}
