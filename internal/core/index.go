package core

import "sort"

// HIPIndex is a prebuilt query index over a sketch's HIP entries: the
// entries themselves (with adjusted weights already derived) plus, per
// unique distance, prefix sums of the adjusted weights and of the two
// common centrality integrands (weight·distance and weight/distance).
// Repeated neighborhood queries cost one binary search, and closeness /
// harmonic queries cost O(1), instead of re-deriving the adjusted weights
// on every call — which matters when a sketch serves many queries
// (distance distributions, percentile scans, batch serving).
//
// This realizes the compression remark of Section 5: "for each unique
// distance d in ADS(i) we associate an adjusted weight equal to the sum of
// the adjusted weights of included nodes with distance d" — the index
// stores exactly that distance -> cumulative weight mapping.
//
// Storage is columnar.  An index built standalone (NewHIPIndex) owns its
// columns, preallocated to exact size; the indexes of a frame-backed set
// (Frame.Index, what Engine serves) are views into one arena shared by
// the whole set, so serving a million nodes does not cost five slices per
// node.
//
// All accumulations scan the entries in canonical order, so every readout
// is bit-identical to the corresponding direct estimator (EstimateQ,
// EstimateCentrality, EstimateNeighborhoodHIP) on the same sketch.
type HIPIndex struct {
	enode []int32   // HIP entry nodes, canonical order
	edist []float64 // HIP entry distances, parallel to enode
	ew    []float64 // HIP adjusted weights, parallel to enode
	dists []float64 // unique entry distances, ascending
	cum   []float64 // cum[i]: total adjusted weight at distance <= dists[i]
	cumD  []float64 // prefix sums of weight * distance
	cumH  []float64 // prefix sums of weight / distance (0 at distance 0)
}

// NewHIPIndex builds a standalone index for a sketch of any flavor, with
// every column preallocated to its exact size (one pass counts the unique
// distances, a second fills the prefix sums).  For sketches of a built
// set prefer the set's Index method, which shares one arena per set.
func NewHIPIndex(s Sketch) *HIPIndex {
	entries := s.HIPEntries()
	unique := 0
	for i := range entries {
		if i == 0 || entries[i].Dist != entries[i-1].Dist {
			unique++
		}
	}
	idx := &HIPIndex{
		enode: make([]int32, len(entries)),
		edist: make([]float64, len(entries)),
		ew:    make([]float64, len(entries)),
		dists: make([]float64, 0, unique),
		cum:   make([]float64, 0, unique),
		cumD:  make([]float64, 0, unique),
		cumH:  make([]float64, 0, unique),
	}
	for i, e := range entries {
		idx.enode[i] = e.Node
		idx.edist[i] = e.Dist
		idx.ew[i] = e.Weight
	}
	total, totalD, totalH := 0.0, 0.0, 0.0
	for i := 0; i < len(entries); {
		d := entries[i].Dist
		for i < len(entries) && entries[i].Dist == d {
			total += entries[i].Weight
			totalD += entries[i].Weight * entries[i].Dist
			totalH += entries[i].Weight * KernelHarmonic(entries[i].Dist)
			i++
		}
		idx.dists = append(idx.dists, d)
		idx.cum = append(idx.cum, total)
		idx.cumD = append(idx.cumD, totalD)
		idx.cumH = append(idx.cumH, totalH)
	}
	return idx
}

// Len returns the number of indexed HIP entries.
func (x *HIPIndex) Len() int { return len(x.enode) }

// Entries materializes the indexed HIP entries in canonical order (a
// fresh copy; the index stores them columnarly — iterate with Len and
// EntryAt to avoid the allocation).
func (x *HIPIndex) Entries() []WeightedEntry {
	out := make([]WeightedEntry, len(x.enode))
	for i := range out {
		out[i] = x.EntryAt(i)
	}
	return out
}

// EntryAt returns indexed HIP entry i in canonical order.
func (x *HIPIndex) EntryAt(i int) WeightedEntry {
	return WeightedEntry{Node: x.enode[i], Dist: x.edist[i], Weight: x.ew[i]}
}

// search returns the position of the last indexed distance <= d, or -1.
func (x *HIPIndex) search(d float64) int {
	i := sort.SearchFloat64s(x.dists, d)
	// SearchFloat64s returns the first index with dists[i] >= d; include
	// an exact match.
	if i < len(x.dists) && x.dists[i] == d {
		return i
	}
	return i - 1
}

// Neighborhood returns the HIP estimate of n_d: the cumulative adjusted
// weight at distance <= d.
func (x *HIPIndex) Neighborhood(d float64) float64 {
	if i := x.search(d); i >= 0 {
		return x.cum[i]
	}
	return 0
}

// Total returns the estimate of the number of reachable nodes.
func (x *HIPIndex) Total() float64 {
	if len(x.cum) == 0 {
		return 0
	}
	return x.cum[len(x.cum)-1]
}

// SumDistances returns the HIP estimate of Σ_j d_vj over reachable nodes
// (the inverse of classic closeness centrality) — equal to
// EstimateCentrality(s, KernelIdentity, UnitBeta) on the indexed sketch.
func (x *HIPIndex) SumDistances() float64 {
	if len(x.cumD) == 0 {
		return 0
	}
	return x.cumD[len(x.cumD)-1]
}

// SumDistancesWithin returns the HIP estimate of Σ_{j: d_vj <= d} d_vj.
func (x *HIPIndex) SumDistancesWithin(d float64) float64 {
	if i := x.search(d); i >= 0 {
		return x.cumD[i]
	}
	return 0
}

// Closeness returns the HIP estimate of 1/Σ_j d_vj (0 when the estimated
// distance sum is 0, e.g. for an isolated node).
func (x *HIPIndex) Closeness() float64 {
	s := x.SumDistances()
	if s <= 0 {
		return 0
	}
	return 1 / s
}

// Harmonic returns the HIP estimate of Σ_{j != v} 1/d_vj — equal to
// EstimateCentrality(s, KernelHarmonic, UnitBeta) on the indexed sketch.
func (x *HIPIndex) Harmonic() float64 {
	if len(x.cumH) == 0 {
		return 0
	}
	return x.cumH[len(x.cumH)-1]
}

// EstimateQ returns the HIP estimate of Q_g = Σ_j g(j, d_vj) from the
// cached entries, without re-deriving the adjusted weights — equal to
// EstimateQ(s, g) on the indexed sketch.
func (x *HIPIndex) EstimateQ(g func(node int32, dist float64) float64) float64 {
	sum := 0.0
	for i := range x.ew {
		sum += x.ew[i] * g(x.enode[i], x.edist[i])
	}
	return sum
}

// Distances returns the unique entry distances, ascending (the points at
// which the neighborhood estimate steps).
func (x *HIPIndex) Distances() []float64 { return x.dists }

// QuantileDistance returns the smallest indexed distance d whose estimated
// neighborhood reaches fraction q of the total — the sketch analogue of a
// distance percentile (e.g. the median distance to reachable nodes).
func (x *HIPIndex) QuantileDistance(q float64) float64 {
	if len(x.cum) == 0 {
		return 0
	}
	target := q * x.Total()
	i := sort.Search(len(x.cum), func(i int) bool { return x.cum[i] >= target })
	if i == len(x.cum) {
		i = len(x.cum) - 1
	}
	return x.dists[i]
}
