package core

import "fmt"

// StreamBuilder constructs a bottom-k ADS from elements presented in
// canonical order (increasing distance / arrival time), the setting of
// Section 3.1 case (i) and of the simulations in Section 5.5: "the ADS
// only depends on the ranks assigned to these nodes" once the order is
// fixed, so a stream of distinct elements is equivalent to a graph
// neighborhood scan.
//
// Alongside the ADS it maintains the running HIP cardinality estimate (the
// sum of adjusted weights of accepted entries) and exposes the basic
// bottom-k estimate, so a single pass yields estimates at every prefix
// cardinality.  Both match what the finished ADS would report at the
// corresponding distance.
type StreamBuilder struct {
	ads      *ADS
	heap     *maxHeap
	hipCount float64
	seen     int64
}

// NewStreamBuilder returns a builder for a bottom-k ADS owned by node.
func NewStreamBuilder(node int32, k int) *StreamBuilder {
	return &StreamBuilder{ads: NewADS(node, k), heap: newMaxHeap(k)}
}

// K returns the sketch parameter.
func (b *StreamBuilder) K() int { return b.ads.k }

// Seen returns the number of elements offered so far.
func (b *StreamBuilder) Seen() int64 { return b.seen }

// Offer presents the next element in canonical order with its rank and
// reports whether the sketch was modified.  dist must be non-decreasing
// across calls (equal distances are ordered by offer sequence, which is
// the canonical tie-break).
func (b *StreamBuilder) Offer(node int32, dist, r float64) bool {
	b.seen++
	tau := 1.0
	if b.heap.size() >= b.ads.k {
		tau = b.heap.max()
	}
	if r >= tau {
		return false
	}
	// HIP probability of this acceptance is exactly the pre-acceptance
	// threshold (Lemma 5.1), so the adjusted weight is 1/tau.
	b.hipCount += 1 / tau
	b.ads.c.push(Entry{Node: node, Dist: dist, Rank: r})
	b.heap.offer(r)
	return true
}

// HIPEstimate returns the current HIP estimate of the number of distinct
// elements offered so far (Section 5 / Section 6 applied to the stream).
func (b *StreamBuilder) HIPEstimate() float64 { return b.hipCount }

// BasicEstimate returns the basic bottom-k estimate at the current prefix:
// exact while fewer than k elements were accepted, (k-1)/τ_k afterwards.
func (b *StreamBuilder) BasicEstimate() float64 {
	if b.heap.size() < b.ads.k {
		return float64(b.heap.size())
	}
	return float64(b.ads.k-1) / b.heap.max()
}

// ADS returns the sketch built so far.  The builder retains ownership; the
// caller must not offer more elements after mutating the result.
func (b *StreamBuilder) ADS() *ADS { return b.ads }

// SizeEstimate returns the Section 8 size-only estimate for the current
// number of sketch entries.
func (b *StreamBuilder) SizeEstimate() float64 {
	return SizeEstimate(b.ads.k, b.ads.Size())
}

// SizeEstimate is the unique unbiased cardinality estimator based solely on
// the number s of entries in a bottom-k ADS prefix (Lemma 8.1):
//
//	E_s = s                        for s < k
//	E_s = k(1+1/k)^(s-k+1) - 1     for s >= k.
//
// For k = 1 this gives 2^s - 1.
func SizeEstimate(k, s int) float64 {
	if k < 1 {
		panic(fmt.Sprintf("core: SizeEstimate with k=%d", k))
	}
	if s < k {
		return float64(s)
	}
	e := float64(k)
	base := 1 + 1/float64(k)
	for i := 0; i < s-k+1; i++ {
		e *= base
	}
	return e - 1
}
