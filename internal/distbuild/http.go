package distbuild

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"adsketch/internal/wire"
)

// HTTP build-worker endpoints, served by `adsserver -buildworker` and
// driven by HTTPExchanger.  Init carries the worker's spec as JSON;
// candidate exchange rides the binary frontier frames of package wire;
// Freeze returns the raw v3 partition file.
const (
	PathInit   = "/v1/build/init"
	PathStep   = "/v1/build/step"
	PathFreeze = "/v1/build/freeze"
)

// HTTPExchanger drives one remote build worker over HTTP.  The remote
// worker reads the spec's edge-list path from its own filesystem (the
// shared-storage model: every worker can open Spec.Path); only
// candidates and the frozen partition cross the wire.
type HTTPExchanger struct {
	// Base is the worker's base URL, e.g. "http://host:8080".
	Base string
	// Spec is this worker's slice of the build.
	Spec WorkerSpec
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
}

// NewHTTPExchangers pairs spec's P workers with P worker base URLs.
func NewHTTPExchangers(spec Spec, urls []string, client *http.Client) ([]Exchanger, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(urls) != spec.Parts {
		return nil, fmt.Errorf("distbuild: %d worker URLs for %d partitions", len(urls), spec.Parts)
	}
	exs := make([]Exchanger, spec.Parts)
	for i, u := range urls {
		ws, err := spec.Worker(i)
		if err != nil {
			return nil, err
		}
		exs[i] = &HTTPExchanger{Base: strings.TrimSuffix(u, "/"), Spec: ws, Client: client}
	}
	return exs, nil
}

func (h *HTTPExchanger) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return http.DefaultClient
}

// post sends one request and returns the response body, mapping
// non-200 statuses to errors carrying the worker's message.
func (h *HTTPExchanger) post(ctx context.Context, path, contentType string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.Base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := h.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("distbuild: reading %s response: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(data))
		if msg == "" {
			msg = resp.Status
		}
		return nil, fmt.Errorf("distbuild: worker %d %s: %s", h.Spec.Index, path, msg)
	}
	return data, nil
}

// Init implements Exchanger: it configures the remote worker with the
// spec and decodes its round-0 outboxes.
func (h *HTTPExchanger) Init(ctx context.Context) ([][]Candidate, error) {
	body, err := json.Marshal(h.Spec)
	if err != nil {
		return nil, err
	}
	data, err := h.post(ctx, PathInit, "application/json", body)
	if err != nil {
		return nil, err
	}
	return h.decodeOutboxes(data, 0)
}

// Step implements Exchanger: the inbox crosses as one single-group
// frontier frame, the outboxes come back as a P-group frame.
func (h *HTTPExchanger) Step(ctx context.Context, round int, inbox []Candidate) ([][]Candidate, error) {
	buf := wire.Get()
	defer buf.Free()
	frame := &wire.FrontierFrame{Kind: h.Spec.Kind, Round: round, Groups: [][]Candidate{inbox}}
	if err := wire.EncodeFrontierFrame(buf, frame); err != nil {
		return nil, err
	}
	data, err := h.post(ctx, PathStep, wire.ContentType, buf.B)
	if err != nil {
		return nil, err
	}
	return h.decodeOutboxes(data, round)
}

// Freeze implements Exchanger: the response body is the partition file.
func (h *HTTPExchanger) Freeze(ctx context.Context) ([]byte, error) {
	return h.post(ctx, PathFreeze, "application/octet-stream", nil)
}

func (h *HTTPExchanger) decodeOutboxes(data []byte, round int) ([][]Candidate, error) {
	f, err := wire.DecodeFrontierFrame(data)
	if err != nil {
		return nil, fmt.Errorf("distbuild: worker %d: %w", h.Spec.Index, err)
	}
	if f.Kind != h.Spec.Kind {
		return nil, fmt.Errorf("distbuild: worker %d answered kind %d for a kind-%d build", h.Spec.Index, f.Kind, h.Spec.Kind)
	}
	if f.Round != round {
		return nil, fmt.Errorf("distbuild: worker %d answered round %d for round %d", h.Spec.Index, f.Round, round)
	}
	if len(f.Groups) != h.Spec.Parts {
		return nil, fmt.Errorf("distbuild: worker %d returned %d outboxes for %d workers", h.Spec.Index, len(f.Groups), h.Spec.Parts)
	}
	return f.Groups, nil
}
