package distbuild

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"sort"

	"adsketch/internal/cluster"
	"adsketch/internal/core"
	"adsketch/internal/graph"
	"adsketch/internal/rank"
	"adsketch/internal/sketch"
)

// arc is one reverse-adjacency edge of an owned node: the node has an
// in-neighbor From at distance W, so an entry accepted at the node
// propagates to From shifted by W.  Arcs are kept sorted by (From, W),
// matching the transpose adjacency order the sequential builders
// expand in — the approximate kind's lineage keys index into this
// order.
type arc struct {
	From int32
	W    float64
}

// Worker owns one partition of a distributed build: the in-arcs of its
// node range and the growable entry lists of its sketches.  Its memory
// scales with the partition, never the whole graph.  A worker is not
// safe for concurrent use; the exchanger serializes access.
type Worker struct {
	spec   WorkerSpec
	kind   Kind
	lo, hi int32
	router *cluster.Router
	src    rank.Source

	in    [][]arc        // in-arcs of owned nodes, local index
	lists [][]core.Entry // entry lists of owned nodes, local index
	betas [][]float64    // per-entry node weights, parallel to lists (weighted only)

	h      kheap
	inited bool
	frozen bool
	stats  Stats
}

// NewWorker returns an idle worker for one slice of a build.  Init
// loads the worker's slice of the edge list and seeds round 0.
func NewWorker(spec WorkerSpec) (*Worker, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ranges, err := cluster.SplitRanges(spec.N, spec.Parts)
	if err != nil {
		return nil, err
	}
	router, err := cluster.NewRouter(ranges, spec.N)
	if err != nil {
		return nil, err
	}
	r := ranges[spec.Index]
	return &Worker{
		spec:   spec,
		kind:   Kind(spec.Kind),
		lo:     r.Lo,
		hi:     r.Hi,
		router: router,
		src:    rank.NewSource(spec.Seed),
		h:      kheap{k: spec.K, v: make([]float64, 0, spec.K)},
	}, nil
}

// Index returns the worker's partition index.
func (w *Worker) Index() int { return w.spec.Index }

// Range returns the owned node range [lo, hi).
func (w *Worker) Range() (lo, hi int32) { return w.lo, w.hi }

// Stats snapshots the worker.
func (w *Worker) Stats() Stats {
	st := w.stats
	st.OwnedNodes = int(w.hi - w.lo)
	for _, l := range w.lists {
		st.Entries += len(l)
	}
	for _, a := range w.in {
		st.Arcs += len(a)
	}
	return st
}

// rankOf returns owned node v's deterministic rank under the build's
// kind — the same value the sequential builders draw.
func (w *Worker) rankOf(v int32) float64 {
	switch w.kind {
	case KindWeighted:
		beta := w.spec.Beta[v-w.lo]
		if core.WeightScheme(w.spec.Scheme) == core.PriorityWeights {
			return w.src.PriorityRank(int64(v), beta)
		}
		return w.src.ExpRank(int64(v), beta)
	default:
		return w.src.Rank(int64(v))
	}
}

// Init streams the worker's slice of the edge list — only lines with an
// endpoint in the owned range survive the filter — seeds every owned
// node with its self entry, and returns the round-0 candidate outboxes,
// indexed by destination worker.
func (w *Worker) Init(ctx context.Context) ([][]Candidate, error) {
	if w.inited {
		return nil, fmt.Errorf("distbuild: worker %d already initialized", w.spec.Index)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w.inited = true
	local := int(w.hi - w.lo)
	w.in = make([][]arc, local)

	f, err := os.Open(w.spec.Path)
	if err != nil {
		return nil, fmt.Errorf("distbuild: worker %d: %w", w.spec.Index, err)
	}
	defer f.Close()
	owns := func(v int32) bool { return v >= w.lo && v < w.hi }
	keep := func(u, v int32) bool {
		// Out-of-range IDs must reach fn so every worker reports the
		// same error for a bad file, filter or no filter.
		if int(u) >= w.spec.N || int(v) >= w.spec.N {
			return true
		}
		if w.spec.Directed {
			return owns(v)
		}
		return owns(u) || owns(v)
	}
	err = graph.ScanEdgesFiltered(f, keep, func(u, v int32, ew float64, hasW bool) error {
		if int(u) >= w.spec.N || int(v) >= w.spec.N {
			return fmt.Errorf("distbuild: edge (%d,%d) names a node outside [0, %d)", u, v, w.spec.N)
		}
		if !hasW {
			ew = 1.0
		}
		// An arc u->v lands in the reverse adjacency of v.  Undirected
		// edges are two arcs; a self-loop therefore contributes both,
		// exactly like the in-memory builder's adjacency.
		if owns(v) {
			w.in[v-w.lo] = append(w.in[v-w.lo], arc{From: u, W: ew})
		}
		if !w.spec.Directed && owns(u) {
			w.in[u-w.lo] = append(w.in[u-w.lo], arc{From: v, W: ew})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for x := range w.in {
		a := w.in[x]
		sort.Slice(a, func(i, j int) bool {
			if a[i].From != a[j].From {
				return a[i].From < a[j].From
			}
			return a[i].W < a[j].W
		})
	}

	w.lists = make([][]core.Entry, local)
	if w.kind == KindWeighted {
		w.betas = make([][]float64, local)
	}
	outs := make([][]Candidate, w.spec.Parts)
	for v := w.lo; v < w.hi; v++ {
		li := int(v - w.lo)
		rk := w.rankOf(v)
		w.lists[li] = []core.Entry{{Node: v, Dist: 0, Rank: rk}}
		if w.betas != nil {
			w.betas[li] = []float64{w.spec.Beta[li]}
		}
		for i, a := range w.in[li] {
			c := Candidate{Target: a.From, Node: v, Dist: a.W, Rank: rk}
			if w.kind == KindWeighted {
				c.Beta = w.spec.Beta[li]
			}
			if w.kind == KindApprox {
				c.Key = []uint64{uint64(uint32(v))<<32 | uint64(uint32(i))}
			}
			dst, err := w.router.Owner(a.From)
			if err != nil {
				return nil, err
			}
			outs[dst] = append(outs[dst], c)
		}
	}
	return outs, nil
}

// Step applies one round's delivery to the owned sketches and returns
// the candidates the acceptances generate, indexed by destination
// worker.  Delivery order on entry does not matter: the worker sorts
// the inbox into the build's canonical order first — (dist, target,
// node) for the exact kinds, lineage key for the approximate kind —
// so every transport and worker count replays the same schedule.
func (w *Worker) Step(ctx context.Context, round int, inbox []Candidate) ([][]Candidate, error) {
	if !w.inited {
		return nil, fmt.Errorf("distbuild: worker %d stepped before Init", w.spec.Index)
	}
	if w.frozen {
		return nil, fmt.Errorf("distbuild: worker %d stepped after Freeze", w.spec.Index)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(inbox) > w.stats.MaxInbox {
		w.stats.MaxInbox = len(inbox)
	}
	if w.kind == KindApprox {
		sort.Slice(inbox, func(i, j int) bool { return keyLess(inbox[i].Key, inbox[j].Key) })
	} else {
		sort.Slice(inbox, func(i, j int) bool {
			a, b := &inbox[i], &inbox[j]
			if a.Dist != b.Dist {
				return a.Dist < b.Dist
			}
			if a.Target != b.Target {
				return a.Target < b.Target
			}
			return a.Node < b.Node
		})
	}
	outs := make([][]Candidate, w.spec.Parts)
	for ci := range inbox {
		c := &inbox[ci]
		if c.Target < w.lo || c.Target >= w.hi {
			return nil, fmt.Errorf("distbuild: worker %d received a candidate for node %d outside [%d, %d)",
				w.spec.Index, c.Target, w.lo, w.hi)
		}
		w.stats.Offers++
		li := int(c.Target - w.lo)
		e := core.Entry{Node: c.Node, Dist: c.Dist, Rank: c.Rank}
		var ok bool
		if w.kind == KindApprox {
			ok = w.insertApprox(li, e)
		} else {
			ok = w.offer(li, e, c.Beta)
		}
		if !ok {
			continue
		}
		w.stats.Accepts++
		for i, a := range w.in[li] {
			nc := Candidate{Target: a.From, Node: c.Node, Dist: c.Dist + a.W, Rank: c.Rank, Beta: c.Beta}
			if w.kind == KindApprox {
				key := make([]uint64, len(c.Key)+1)
				copy(key, c.Key)
				key[len(c.Key)] = uint64(uint32(i))
				nc.Key = key
			}
			dst, err := w.router.Owner(a.From)
			if err != nil {
				return nil, err
			}
			outs[dst] = append(outs[dst], nc)
		}
	}
	return outs, nil
}

// keyLess is the lexicographic order of lineage keys.  All keys of one
// round have equal length; the length tiebreak only matters for
// malformed mixed input and keeps the order total.
func keyLess(a, b []uint64) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// before is the canonical (distance, node ID) order of core.
func before(a, b core.Entry) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.Node < b.Node
}

// offer tests candidate e against owned list li with the exact bottom-k
// win rules — the same single-scan insert/evict the incremental
// maintainer (ingest.Maintainer.offer) proved bit-compatible with the
// static builders.  beta is e's node weight, carried into the parallel
// weight column on acceptance.
func (w *Worker) offer(li int, e core.Entry, beta float64) bool {
	lst := w.lists[li]
	k := w.spec.K
	pos, old := -1, -1
	h := &w.h
	h.reset()
	for i := 0; i < len(lst); i++ {
		ent := lst[i]
		if ent.Node == e.Node {
			if ent.Dist <= e.Dist {
				return false // no improvement
			}
			old = i
		}
		if pos < 0 {
			if before(ent, e) {
				h.offer(ent.Rank)
			} else {
				pos = i
			}
		}
		if pos >= 0 && old >= 0 {
			break
		}
	}
	if pos < 0 {
		pos = len(lst)
	}
	if h.size() >= k && e.Rank >= h.max() {
		return false // fails inclusion; fails everywhere upstream too
	}
	weighted := w.betas != nil
	var bl []float64
	if weighted {
		bl = w.betas[li]
	}
	// An existing entry for the same node sits at or after the insertion
	// position (its distance is larger), so deleting it never shifts pos.
	if old >= 0 {
		lst = append(lst[:old], lst[old+1:]...)
		if weighted {
			bl = append(bl[:old], bl[old+1:]...)
		}
	}
	lst = append(lst, core.Entry{})
	copy(lst[pos+1:], lst[pos:])
	lst[pos] = e
	if weighted {
		bl = append(bl, 0)
		copy(bl[pos+1:], bl[pos:])
		bl[pos] = beta
	}
	// Re-filter the suffix: drop entries whose rank no longer beats the
	// k-th smallest preceding rank.
	h.offer(e.Rank)
	out := lst[:pos+1]
	var bout []float64
	if weighted {
		bout = bl[:pos+1]
	}
	for i := pos + 1; i < len(lst); i++ {
		ent := lst[i]
		if h.size() >= k && ent.Rank >= h.max() {
			w.stats.Evictions++
			continue
		}
		h.offer(ent.Rank)
		out = append(out, ent)
		if weighted {
			bout = append(bout, bl[i])
		}
	}
	w.lists[li] = out
	if weighted {
		w.betas[li] = bout
	}
	return true
}

// insertApprox tests candidate e against owned list li with the relaxed
// (1+ε) acceptance rule, replicating core.BuildApproxSet's insert
// exactly: an existing entry within slack rejects, the inclusion
// threshold counts only entries within distance e.Dist·(1+ε), and an
// acceptance never evicts other nodes' entries.
func (w *Worker) insertApprox(li int, e core.Entry) bool {
	p := &w.lists[li]
	eps := w.spec.Eps
	for i := range *p {
		if (*p)[i].Node == e.Node {
			if (*p)[i].Dist <= e.Dist*(1+eps) {
				return false // existing entry is good enough
			}
			copy((*p)[i:], (*p)[i+1:])
			*p = (*p)[:len(*p)-1]
			break
		}
	}
	limit := e.Dist * (1 + eps)
	h := &w.h
	h.reset()
	for _, x := range *p {
		if x.Dist <= limit {
			h.offer(x.Rank)
		}
	}
	if h.size() >= w.spec.K && e.Rank >= h.max() {
		return false
	}
	pos := sort.Search(len(*p), func(i int) bool { return !before((*p)[i], e) })
	*p = append(*p, core.Entry{})
	copy((*p)[pos+1:], (*p)[pos:])
	(*p)[pos] = e
	return true
}

// Freeze assembles the owned lists into a v3 partition file and returns
// its bytes — byte-identical to WritePartitionV3 over the corresponding
// SplitSketchSet slice of a single-process build.  The worker cannot be
// stepped afterwards.
func (w *Worker) Freeze(ctx context.Context) ([]byte, error) {
	if !w.inited {
		return nil, fmt.Errorf("distbuild: worker %d frozen before Init", w.spec.Index)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w.frozen = true
	var (
		p   *core.Partition
		err error
	)
	switch w.kind {
	case KindUniform:
		opts := core.Options{K: w.spec.K, Flavor: sketch.BottomK, Seed: w.spec.Seed}
		p, err = core.FreezePartitionBottomK(opts, w.spec.Index, w.spec.Parts, w.spec.N, w.lists)
	case KindWeighted:
		p, err = core.FreezePartitionWeighted(w.spec.K, core.WeightScheme(w.spec.Scheme),
			w.spec.Index, w.spec.Parts, w.spec.N, w.lists, w.betas)
	case KindApprox:
		p, err = core.FreezePartitionApprox(w.spec.K, w.spec.Eps,
			w.spec.Index, w.spec.Parts, w.spec.N, w.lists)
	default:
		err = fmt.Errorf("distbuild: unknown kind %d", int(w.kind))
	}
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := core.WritePartitionV3(&buf, p); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// kheap keeps the k smallest ranks offered, exposing their maximum —
// the same structure core's builders and ingest's maintainer prune by.
type kheap struct {
	k int
	v []float64
}

func (h *kheap) reset()       { h.v = h.v[:0] }
func (h *kheap) size() int    { return len(h.v) }
func (h *kheap) max() float64 { return h.v[0] }

func (h *kheap) offer(x float64) {
	if len(h.v) < h.k {
		h.v = append(h.v, x)
		i := len(h.v) - 1
		for i > 0 {
			p := (i - 1) / 2
			if h.v[p] >= h.v[i] {
				break
			}
			h.v[p], h.v[i] = h.v[i], h.v[p]
			i = p
		}
		return
	}
	if x >= h.v[0] {
		return
	}
	h.v[0] = x
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h.v) && h.v[l] > h.v[big] {
			big = l
		}
		if r < len(h.v) && h.v[r] > h.v[big] {
			big = r
		}
		if big == i {
			break
		}
		h.v[i], h.v[big] = h.v[big], h.v[i]
		i = big
	}
}
