package distbuild

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"adsketch/internal/wire"
)

// WorkerHandler serves one build worker over HTTP — the server half of
// HTTPExchanger, mounted by `adsserver -buildworker`.  It holds at most
// one build at a time: a new init replaces the previous build's state,
// so a worker process is reusable across builds without restarting.
// The mutex serializes the driver's calls; the BSP protocol never
// overlaps them, but a confused or duplicate driver must not corrupt
// the worker.
type WorkerHandler struct {
	mu sync.Mutex
	w  *Worker
}

// NewWorkerHandler returns an idle build-worker handler.
func NewWorkerHandler() *WorkerHandler { return &WorkerHandler{} }

// Register mounts the build endpoints on mux.
func (h *WorkerHandler) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST "+PathInit, h.handleInit)
	mux.HandleFunc("POST "+PathStep, h.handleStep)
	mux.HandleFunc("POST "+PathFreeze, h.handleFreeze)
}

// Stats snapshots the current build's worker (zero value when idle).
func (h *WorkerHandler) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.w == nil {
		return Stats{}
	}
	return h.w.Stats()
}

func (h *WorkerHandler) handleInit(w http.ResponseWriter, r *http.Request) {
	var spec WorkerSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf("decoding worker spec: %v", err), http.StatusBadRequest)
		return
	}
	worker, err := NewWorker(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	outs, err := worker.Init(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	h.w = worker
	writeFrontier(w, &wire.FrontierFrame{Kind: spec.Kind, Round: 0, Groups: outs})
}

func (h *WorkerHandler) handleStep(w http.ResponseWriter, r *http.Request) {
	buf := wire.Get()
	defer buf.Free()
	data, err := wire.ReadAll(buf.B, http.MaxBytesReader(w, r.Body, 1<<30))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading frontier frame: %v", err), http.StatusBadRequest)
		return
	}
	buf.B = data
	frame, err := wire.DecodeFrontierFrame(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.w == nil {
		http.Error(w, "no build in progress: POST "+PathInit+" first", http.StatusConflict)
		return
	}
	if frame.Kind != h.w.spec.Kind {
		http.Error(w, fmt.Sprintf("frame kind %d, build is kind %d", frame.Kind, h.w.spec.Kind), http.StatusBadRequest)
		return
	}
	// The driver sends the inbox as one group; tolerate any grouping.
	var inbox []Candidate
	for _, g := range frame.Groups {
		inbox = append(inbox, g...)
	}
	outs, err := h.w.Step(r.Context(), frame.Round, inbox)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeFrontier(w, &wire.FrontierFrame{Kind: frame.Kind, Round: frame.Round, Groups: outs})
}

func (h *WorkerHandler) handleFreeze(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.w == nil {
		http.Error(w, "no build in progress: POST "+PathInit+" first", http.StatusConflict)
		return
	}
	b, err := h.w.Freeze(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(b)
}

func writeFrontier(w http.ResponseWriter, f *wire.FrontierFrame) {
	buf := wire.Get()
	defer buf.Free()
	if err := wire.EncodeFrontierFrame(buf, f); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", wire.ContentType)
	w.Write(buf.B)
}
