package distbuild

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"adsketch/internal/core"
	"adsketch/internal/graph"
	"adsketch/internal/sketch"
)

const testSeed = 42

// writeGraph persists g as an edge-list file and reads it back, so the
// reference build and the workers consume the exact same bytes.
func writeGraph(t *testing.T, g *graph.Graph) (string, *graph.Graph) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "graph.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	g2, err := graph.ReadEdgeList(rf, g.Directed())
	if err != nil {
		t.Fatal(err)
	}
	return path, g2
}

// refPartitionBytes builds the single-process reference: the set split
// into parts partitions, each serialized with WritePartitionV3.
func refPartitionBytes(t *testing.T, set core.AnySet, parts int) [][]byte {
	t.Helper()
	ps, err := core.SplitSketchSet(set, parts)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, parts)
	for i, p := range ps {
		var buf bytes.Buffer
		if _, err := core.WritePartitionV3(&buf, p); err != nil {
			t.Fatal(err)
		}
		out[i] = buf.Bytes()
	}
	return out
}

func buildReference(t *testing.T, g *graph.Graph, spec Spec) core.AnySet {
	t.Helper()
	switch spec.Kind {
	case KindUniform:
		s, err := core.BuildSet(g, core.Options{K: spec.K, Flavor: sketch.BottomK, Seed: spec.Seed}, core.AlgoPrunedDijkstra)
		if err != nil {
			t.Fatal(err)
		}
		return s
	case KindWeighted:
		var (
			s   *core.WeightedSet
			err error
		)
		if spec.Scheme == core.PriorityWeights {
			s, err = core.BuildPriorityWeightedSet(g, spec.K, spec.Seed, spec.Beta)
		} else {
			s, err = core.BuildWeightedSet(g, spec.K, spec.Seed, spec.Beta)
		}
		if err != nil {
			t.Fatal(err)
		}
		return s
	default:
		s, err := core.BuildApproxSet(g, spec.K, spec.Seed, spec.Eps)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
}

func runLocal(t *testing.T, spec Spec) *Result {
	t.Helper()
	exs, err := NewLocalExchangers(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), exs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func betaFor(n int) []float64 {
	beta := make([]float64, n)
	for i := range beta {
		beta[i] = 0.5 + float64(i%7)
	}
	return beta
}

// testSpecs returns one spec per (graph shape, kind) combination, each
// paired with the in-memory graph the reference build uses.
func testSpecs(t *testing.T, k int) []struct {
	name string
	spec Spec
	g    *graph.Graph
} {
	t.Helper()
	und := graph.GNP(80, 0.06, false, 3)
	dir := graph.GNP(80, 0.06, true, 5)
	wtd := graph.WithRandomWeights(graph.GNP(80, 0.08, false, 9), 0.25, 4.0, 11)

	var out []struct {
		name string
		spec Spec
		g    *graph.Graph
	}
	add := func(name string, g *graph.Graph, spec Spec) {
		path, g2 := writeGraph(t, g)
		spec.Path = path
		spec.N = g.NumNodes()
		spec.K = k
		spec.Seed = testSeed
		spec.Directed = g.Directed()
		out = append(out, struct {
			name string
			spec Spec
			g    *graph.Graph
		}{name, spec, g2})
	}
	add("uniform-undirected", und, Spec{Kind: KindUniform})
	add("uniform-directed", dir, Spec{Kind: KindUniform})
	add("uniform-weighted-graph", wtd, Spec{Kind: KindUniform})
	add("weighted-exp", wtd, Spec{Kind: KindWeighted, Scheme: core.ExponentialWeights, Beta: betaFor(80)})
	add("weighted-priority", wtd, Spec{Kind: KindWeighted, Scheme: core.PriorityWeights, Beta: betaFor(80)})
	add("approx", und, Spec{Kind: KindApprox, Eps: 0.25})
	add("approx-weighted-graph", wtd, Spec{Kind: KindApprox, Eps: 0.25})
	return out
}

// TestDistBuildParity is the central acceptance test: for every kind,
// k, and worker count, the distributed build's partition files are
// byte-identical to splitting the single-process build.
func TestDistBuildParity(t *testing.T) {
	for _, k := range []int{8, 64} {
		for _, tc := range testSpecs(t, k) {
			ref := buildReference(t, tc.g, tc.spec)
			for _, parts := range []int{1, 2, 4} {
				spec := tc.spec
				spec.Parts = parts
				res := runLocal(t, spec)
				want := refPartitionBytes(t, ref, parts)
				for i := range want {
					if !bytes.Equal(res.Partitions[i], want[i]) {
						t.Errorf("%s k=%d P=%d: partition %d differs from single-process split (%d vs %d bytes)",
							tc.name, k, parts, i, len(res.Partitions[i]), len(want[i]))
					}
				}
				if res.Rounds < 1 || res.Candidates < 1 {
					t.Errorf("%s k=%d P=%d: implausible result %+v", tc.name, k, parts, res)
				}
			}
		}
	}
}

// scrambled delivers every inbox in reversed order, proving the
// worker's canonical re-sort makes the build immune to transport
// delivery order.
type scrambled struct{ inner Exchanger }

func (s *scrambled) Init(ctx context.Context) ([][]Candidate, error) { return s.inner.Init(ctx) }
func (s *scrambled) Step(ctx context.Context, round int, inbox []Candidate) ([][]Candidate, error) {
	rev := make([]Candidate, len(inbox))
	for i, c := range inbox {
		rev[len(inbox)-1-i] = c
	}
	return s.inner.Step(ctx, round, rev)
}
func (s *scrambled) Freeze(ctx context.Context) ([]byte, error) { return s.inner.Freeze(ctx) }

func TestDistBuildDeliveryOrderInvariance(t *testing.T) {
	for _, tc := range testSpecs(t, 8) {
		spec := tc.spec
		spec.Parts = 3
		exs, err := NewLocalExchangers(spec)
		if err != nil {
			t.Fatal(err)
		}
		for i := range exs {
			exs[i] = &scrambled{inner: exs[i]}
		}
		res, err := Run(context.Background(), exs)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want := refPartitionBytes(t, buildReference(t, tc.g, tc.spec), 3)
		for i := range want {
			if !bytes.Equal(res.Partitions[i], want[i]) {
				t.Errorf("%s: partition %d differs under reversed delivery", tc.name, i)
			}
		}
	}
}

// TestDistBuildHTTPParity runs the wire transport end to end: real
// WorkerHandlers behind httptest servers, driven by HTTPExchangers.
func TestDistBuildHTTPParity(t *testing.T) {
	const parts = 3
	for _, tc := range testSpecs(t, 8) {
		spec := tc.spec
		spec.Parts = parts
		urls := make([]string, parts)
		for i := range urls {
			mux := http.NewServeMux()
			NewWorkerHandler().Register(mux)
			srv := httptest.NewServer(mux)
			defer srv.Close()
			urls[i] = srv.URL
		}
		exs, err := NewHTTPExchangers(spec, urls, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), exs)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want := refPartitionBytes(t, buildReference(t, tc.g, tc.spec), parts)
		for i := range want {
			if !bytes.Equal(res.Partitions[i], want[i]) {
				t.Errorf("%s: HTTP-built partition %d differs from single-process split", tc.name, i)
			}
		}
	}
}

// TestDistBuildMemoryScales pins the no-full-graph guarantee through
// worker stats: with 4 workers, each holds only its quarter's arcs and
// sketch entries, never the whole graph or set.
func TestDistBuildMemoryScales(t *testing.T) {
	g := graph.GNP(400, 0.02, false, 17)
	path, g2 := writeGraph(t, g)
	spec := Spec{Path: path, N: 400, K: 8, Seed: testSeed, Kind: KindUniform, Parts: 4}

	exs, err := NewLocalExchangers(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), exs); err != nil {
		t.Fatal(err)
	}
	ref, err := core.BuildSet(g2, core.Options{K: 8, Flavor: sketch.BottomK, Seed: testSeed}, core.AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	totalEntries := ref.TotalEntries()
	totalArcs := 0
	g2.ForEachArc(func(u, v int32, w float64) { totalArcs++ })

	sumEntries, sumArcs := 0, 0
	for i, ex := range exs {
		st := ex.(*Local).W.Stats()
		if st.OwnedNodes != 100 {
			t.Fatalf("worker %d owns %d nodes, want 100", i, st.OwnedNodes)
		}
		if st.Entries >= totalEntries/2 {
			t.Errorf("worker %d holds %d entries, more than half the full set's %d — memory does not scale with the partition",
				i, st.Entries, totalEntries)
		}
		if st.Arcs >= totalArcs/2 {
			t.Errorf("worker %d holds %d arcs, more than half the graph's %d", i, st.Arcs, totalArcs)
		}
		if st.Offers < 1 || st.Accepts < 1 || st.MaxInbox < 1 {
			t.Errorf("worker %d has implausible stats %+v", i, st)
		}
		sumEntries += st.Entries
		sumArcs += st.Arcs
	}
	if sumEntries != totalEntries {
		t.Errorf("workers hold %d entries in total, full set has %d", sumEntries, totalEntries)
	}
	if sumArcs != totalArcs {
		t.Errorf("workers hold %d arcs in total, graph has %d", sumArcs, totalArcs)
	}
}

func TestDistBuildValidation(t *testing.T) {
	good := Spec{Path: "x", N: 10, K: 4, Parts: 2, Kind: KindUniform}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string]Spec{
		"no path":       {N: 10, K: 4, Parts: 2},
		"zero nodes":    {Path: "x", K: 4, Parts: 2},
		"zero k":        {Path: "x", N: 10, Parts: 2},
		"too many":      {Path: "x", N: 3, K: 4, Parts: 4},
		"bad kind":      {Path: "x", N: 10, K: 4, Parts: 2, Kind: Kind(9)},
		"beta missing":  {Path: "x", N: 10, K: 4, Parts: 2, Kind: KindWeighted},
		"bad eps":       {Path: "x", N: 10, K: 4, Parts: 2, Kind: KindApprox, Eps: -1},
		"bad scheme":    {Path: "x", N: 10, K: 4, Parts: 2, Kind: KindWeighted, Scheme: 9, Beta: make([]float64, 10)},
		"negative beta": {Path: "x", N: 10, K: 4, Parts: 2, Kind: KindWeighted, Beta: make([]float64, 10)},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: spec %+v validated", name, bad)
		}
	}

	w, err := NewWorker(WorkerSpec{Path: "x", N: 10, K: 4, Parts: 2, Index: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Step(context.Background(), 1, nil); err == nil {
		t.Error("Step before Init succeeded")
	}
	if _, err := w.Freeze(context.Background()); err == nil {
		t.Error("Freeze before Init succeeded")
	}
	if _, err := w.Init(context.Background()); err == nil {
		t.Error("Init with a missing edge file succeeded")
	}
}

func TestDistBuildRejectsForeignCandidates(t *testing.T) {
	g := graph.GNP(20, 0.2, false, 1)
	path, _ := writeGraph(t, g)
	spec := Spec{Path: path, N: 20, K: 4, Seed: 1, Kind: KindUniform, Parts: 2}
	ws, err := spec.Worker(0)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorker(ws)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Step(context.Background(), 1, []Candidate{{Target: 19, Node: 0, Dist: 1, Rank: 0.5}}); err == nil {
		t.Error("worker 0 accepted a candidate for worker 1's node")
	}
}
