// Package distbuild constructs All-Distances Sketch sets partition by
// partition across P workers, none of which ever materializes the full
// graph or the full sketch set.  Worker i owns the contiguous node
// range [i·n/P, (i+1)·n/P) — the same ranges core.SplitSketchSet cuts
// and cluster.Router serves — and streams only the edges incident to
// its range from the shared edge list (graph.ScanEdgesFiltered).
//
// Construction is bulk-synchronous (Pregel-style): each round a worker
// relaxes the frontier candidates addressed to its partition against
// its growable sketch columns with the same exact prunings the
// incremental maintainer (package ingest) uses, buffers the candidates
// its acceptances generate by destination partition, and exchanges at
// the round barrier.  The build converges when a round generates no
// candidates.  Workers then freeze their ranges directly to v3
// partition files that are byte-identical to splitting a single-process
// build of the same graph.
//
// # Determinism and byte parity
//
// For the exact kinds (uniform and weighted bottom-k) the candidate
// fixpoint is schedule-independent: acceptance depends only on the
// receiving sketch and the candidate, so any delivery order converges
// to the one true sketch set.  Each worker still applies its inbox in
// sorted (dist, target, node) order so a run is reproducible
// step-for-step, not just at the fixpoint.
//
// The (1+ε)-approximate kind is schedule-DEPENDENT: an entry that
// arrives early can be "good enough" to reject a slightly better later
// arrival.  To make any P reproduce core.BuildApproxSet exactly, every
// candidate carries a lineage key: the seed candidate for owned node v
// over its i-th in-arc gets key [v<<32|i], and each acceptance extends
// the key with the index of the expanding arc.  Sorting a round's
// delivery lexicographically by key replays the sequential build's
// batch order exactly — candidates to different targets commute, and
// per-target order is what acceptance depends on — so the frozen bytes
// match the single-process build for every worker count.
package distbuild

import (
	"fmt"
	"math"

	"adsketch/internal/core"
	"adsketch/internal/wire"
)

// Kind selects the sketch kind a distributed build produces.  The
// values match the wire frontier-frame kind codes.
type Kind int

const (
	// KindUniform builds bottom-k sketches with uniform full-precision
	// ranks — the distributed analogue of core.BuildSet.
	KindUniform Kind = wire.FrontierKindUniform
	// KindWeighted builds weighted bottom-k sketches (exponential or
	// priority ranks) — the analogue of core.BuildWeightedSet.
	KindWeighted Kind = wire.FrontierKindWeighted
	// KindApprox builds (1+ε)-approximate sketches — the analogue of
	// core.BuildApproxSet.
	KindApprox Kind = wire.FrontierKindApprox
)

func (k Kind) String() string {
	switch k {
	case KindUniform:
		return "uniform"
	case KindWeighted:
		return "weighted"
	case KindApprox:
		return "approx"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Candidate is one relaxation candidate in flight between partitions.
// It is the wire frame element verbatim, so the in-process and HTTP
// transports exchange exactly the same values.
type Candidate = wire.FrontierCandidate

// Spec describes a whole distributed build, as the driver sees it.
type Spec struct {
	// Path is the edge-list file (graph.ScanEdges format).  Every
	// worker must be able to open it; the driver never does.
	Path string
	// Directed fixes how edge lines are interpreted.
	Directed bool
	// N is the node count: 1 + the largest node ID in the file.
	N int
	// K is the sketch parameter; Seed feeds the rank source.
	K    int
	Seed uint64
	// Kind picks the sketch kind; Scheme applies to KindWeighted and
	// Eps to KindApprox.
	Kind   Kind
	Scheme core.WeightScheme
	Eps    float64
	// Beta holds all N node weights for KindWeighted builds.  Each
	// worker receives only its owned slice.
	Beta []float64
	// Parts is the worker count P.
	Parts int
}

// Validate checks the spec's invariants.
func (s *Spec) Validate() error {
	if s.Path == "" {
		return fmt.Errorf("distbuild: spec has no edge-list path")
	}
	if s.N < 1 {
		return fmt.Errorf("distbuild: node count %d, want >= 1", s.N)
	}
	if s.K < 1 {
		return fmt.Errorf("distbuild: k = %d, want >= 1", s.K)
	}
	if s.Parts < 1 || s.Parts > s.N {
		return fmt.Errorf("distbuild: cannot split %d nodes across %d workers", s.N, s.Parts)
	}
	switch s.Kind {
	case KindUniform:
	case KindWeighted:
		if s.Scheme != core.ExponentialWeights && s.Scheme != core.PriorityWeights {
			return fmt.Errorf("distbuild: unknown weight scheme %d", s.Scheme)
		}
		if len(s.Beta) != s.N {
			return fmt.Errorf("distbuild: beta has %d weights for %d nodes", len(s.Beta), s.N)
		}
		for v, b := range s.Beta {
			if !(b > 0) || math.IsInf(b, 1) {
				return fmt.Errorf("distbuild: beta[%d] = %g, must be positive and finite", v, b)
			}
		}
	case KindApprox:
		if s.Eps < 0 || math.IsNaN(s.Eps) || math.IsInf(s.Eps, 1) {
			return fmt.Errorf("distbuild: invalid epsilon %g", s.Eps)
		}
	default:
		return fmt.Errorf("distbuild: unknown kind %d", int(s.Kind))
	}
	return nil
}

// Worker returns worker index's slice of the spec — the JSON-friendly
// form a remote build worker is configured with.
func (s *Spec) Worker(index int) (WorkerSpec, error) {
	if err := s.Validate(); err != nil {
		return WorkerSpec{}, err
	}
	if index < 0 || index >= s.Parts {
		return WorkerSpec{}, fmt.Errorf("distbuild: worker index %d out of range [0, %d)", index, s.Parts)
	}
	w := WorkerSpec{
		Path:     s.Path,
		Directed: s.Directed,
		N:        s.N,
		K:        s.K,
		Seed:     s.Seed,
		Kind:     int(s.Kind),
		Scheme:   int(s.Scheme),
		Eps:      s.Eps,
		Parts:    s.Parts,
		Index:    index,
	}
	if s.Kind == KindWeighted {
		lo, hi := index*s.N/s.Parts, (index+1)*s.N/s.Parts
		w.Beta = s.Beta[lo:hi]
	}
	return w, nil
}

// WorkerSpec is one worker's configuration: the whole-build parameters
// plus the worker's own index.  Beta, when present, holds only the
// owned range [i·n/P, (i+1)·n/P) — a worker never sees the global
// weight vector.
type WorkerSpec struct {
	Path     string    `json:"path"`
	Directed bool      `json:"directed"`
	N        int       `json:"n"`
	K        int       `json:"k"`
	Seed     uint64    `json:"seed"`
	Kind     int       `json:"kind"`
	Scheme   int       `json:"scheme"`
	Eps      float64   `json:"eps"`
	Parts    int       `json:"parts"`
	Index    int       `json:"index"`
	Beta     []float64 `json:"beta,omitempty"`
}

// Validate checks the worker spec's invariants.
func (ws *WorkerSpec) Validate() error {
	s := Spec{
		Path: ws.Path, Directed: ws.Directed, N: ws.N, K: ws.K, Seed: ws.Seed,
		Kind: Kind(ws.Kind), Scheme: core.WeightScheme(ws.Scheme), Eps: ws.Eps, Parts: ws.Parts,
	}
	if ws.Index < 0 || ws.Index >= ws.Parts {
		return fmt.Errorf("distbuild: worker index %d out of range [0, %d)", ws.Index, ws.Parts)
	}
	if Kind(ws.Kind) == KindWeighted {
		lo, hi := ws.Index*ws.N/ws.Parts, (ws.Index+1)*ws.N/ws.Parts
		if len(ws.Beta) != hi-lo {
			return fmt.Errorf("distbuild: worker %d owns %d nodes but got %d weights", ws.Index, hi-lo, len(ws.Beta))
		}
		for i, b := range ws.Beta {
			if !(b > 0) || math.IsInf(b, 1) {
				return fmt.Errorf("distbuild: beta[%d] = %g, must be positive and finite", lo+i, b)
			}
		}
		// Spec.Validate checks Beta against the full node count; the
		// worker only carries its slice, so stand in a valid vector.
		s.Beta = make([]float64, ws.N)
		for i := range s.Beta {
			s.Beta[i] = 1
		}
	}
	return s.Validate()
}

// Stats is a point-in-time snapshot of one worker.  The sizes scale
// with the worker's partition, not the whole graph — the memory test
// pins that.
type Stats struct {
	// OwnedNodes and Arcs size the worker's slice of the graph: the
	// nodes of its range and the in-arcs it loaded for them.
	OwnedNodes int `json:"owned_nodes"`
	Arcs       int `json:"arcs"`
	// Entries counts the entries currently held across owned sketches.
	Entries int `json:"entries"`
	// Offers counts candidates evaluated; Accepts the subset that
	// changed a sketch; Evictions the entries dropped by acceptances.
	Offers    int64 `json:"offers"`
	Accepts   int64 `json:"accepts"`
	Evictions int64 `json:"evictions"`
	// MaxInbox is the largest single-round delivery the worker saw.
	MaxInbox int `json:"max_inbox"`
}

// Result summarizes a completed distributed build.
type Result struct {
	// Rounds is the number of exchange rounds until convergence
	// (rounds that delivered at least one candidate).
	Rounds int
	// Candidates counts every candidate exchanged across all rounds.
	Candidates int64
	// Partitions holds each worker's frozen v3 partition file bytes,
	// in worker order.
	Partitions [][]byte
}
