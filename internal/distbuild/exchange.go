package distbuild

import (
	"context"
	"fmt"
	"sync"
)

// Exchanger is one worker as the driver sees it, whatever transport it
// sits behind: Init loads the worker's graph slice and returns its
// round-0 outboxes, Step delivers one round's inbox and returns the
// next outboxes (both indexed by destination worker), and Freeze
// returns the worker's finished v3 partition file bytes.
//
// The driver mediates every exchange (a star topology): it regroups
// the workers' outboxes into per-worker inboxes at each round barrier
// and declares convergence when a round generates no candidates.
// Workers never talk to each other directly, which keeps both
// transports — in-process goroutines and wire-framed HTTP — behind
// this one interface.
type Exchanger interface {
	Init(ctx context.Context) ([][]Candidate, error)
	Step(ctx context.Context, round int, inbox []Candidate) ([][]Candidate, error)
	Freeze(ctx context.Context) ([]byte, error)
}

// Local wraps an in-process Worker as an Exchanger.
type Local struct {
	W *Worker
}

// Init implements Exchanger.
func (l *Local) Init(ctx context.Context) ([][]Candidate, error) { return l.W.Init(ctx) }

// Step implements Exchanger.
func (l *Local) Step(ctx context.Context, round int, inbox []Candidate) ([][]Candidate, error) {
	return l.W.Step(ctx, round, inbox)
}

// Freeze implements Exchanger.
func (l *Local) Freeze(ctx context.Context) ([]byte, error) { return l.W.Freeze(ctx) }

// NewLocalExchangers builds the spec's P workers in-process, one
// exchanger per partition.
func NewLocalExchangers(spec Spec) ([]Exchanger, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	exs := make([]Exchanger, spec.Parts)
	for i := range exs {
		ws, err := spec.Worker(i)
		if err != nil {
			return nil, err
		}
		w, err := NewWorker(ws)
		if err != nil {
			return nil, err
		}
		exs[i] = &Local{W: w}
	}
	return exs, nil
}

// Run drives a distributed build over one exchanger per partition:
// parallel Init, then BSP rounds — regroup outboxes into inboxes,
// parallel Step — until a round generates no candidates, then parallel
// Freeze.  The returned partitions are in worker order.
func Run(ctx context.Context, exs []Exchanger) (*Result, error) {
	p := len(exs)
	if p == 0 {
		return nil, fmt.Errorf("distbuild: no workers")
	}
	outs := make([][][]Candidate, p)
	err := inParallel(p, func(i int) error {
		o, err := exs[i].Init(ctx)
		if err != nil {
			return fmt.Errorf("distbuild: worker %d init: %w", i, err)
		}
		if len(o) != p {
			return fmt.Errorf("distbuild: worker %d returned %d outboxes for %d workers", i, len(o), p)
		}
		outs[i] = o
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{}
	for round := 1; ; round++ {
		inboxes, total := regroup(outs, p)
		if total == 0 {
			res.Rounds = round - 1
			break
		}
		res.Candidates += total
		err := inParallel(p, func(i int) error {
			o, err := exs[i].Step(ctx, round, inboxes[i])
			if err != nil {
				return fmt.Errorf("distbuild: worker %d round %d: %w", i, round, err)
			}
			if len(o) != p {
				return fmt.Errorf("distbuild: worker %d returned %d outboxes for %d workers", i, len(o), p)
			}
			outs[i] = o
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	res.Partitions = make([][]byte, p)
	err = inParallel(p, func(i int) error {
		b, err := exs[i].Freeze(ctx)
		if err != nil {
			return fmt.Errorf("distbuild: worker %d freeze: %w", i, err)
		}
		res.Partitions[i] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// regroup turns per-sender outboxes into per-receiver inboxes
// (inboxes[j] concatenates outs[i][j] in sender order) and counts the
// candidates moved.  Receivers re-sort their inbox into canonical
// order, so the concatenation order never affects the build.
func regroup(outs [][][]Candidate, p int) ([][]Candidate, int64) {
	inboxes := make([][]Candidate, p)
	var total int64
	for j := 0; j < p; j++ {
		n := 0
		for i := 0; i < p; i++ {
			n += len(outs[i][j])
		}
		if n == 0 {
			continue
		}
		in := make([]Candidate, 0, n)
		for i := 0; i < p; i++ {
			in = append(in, outs[i][j]...)
		}
		inboxes[j] = in
		total += int64(n)
	}
	return inboxes, total
}

// inParallel runs fn(0..n-1) concurrently and returns the first error
// by index order.
func inParallel(n int, fn func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
