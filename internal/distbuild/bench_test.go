package distbuild

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"adsketch/internal/graph"
)

func benchDistBuild(b *testing.B, parts int) {
	g := graph.PreferentialAttachment(2000, 3, 7)
	path := filepath.Join(b.TempDir(), "graph.txt")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := graph.WriteEdgeList(f, g); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	spec := Spec{
		Path: path, Directed: g.Directed(), N: g.NumNodes(),
		K: 16, Seed: testSeed, Kind: KindUniform, Parts: parts,
	}
	b.ResetTimer()
	var res *Result
	for i := 0; i < b.N; i++ {
		exs, err := NewLocalExchangers(spec)
		if err != nil {
			b.Fatal(err)
		}
		if res, err = Run(context.Background(), exs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Rounds), "rounds")
	b.ReportMetric(float64(res.Candidates), "candidates")
}

// BenchmarkDistBuild1Worker is the single-partition baseline: all the
// BSP machinery with no real parallelism or exchange fan-out.
func BenchmarkDistBuild1Worker(b *testing.B) { benchDistBuild(b, 1) }

// BenchmarkDistBuild4Workers runs the same build across 4 in-process
// partitions, exchanging candidates at every round barrier.
func BenchmarkDistBuild4Workers(b *testing.B) { benchDistBuild(b, 4) }
