package query

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"adsketch/internal/core"
	"adsketch/internal/graph"
	"adsketch/internal/sketch"
)

func testCache(t *testing.T) (*IndexCache, *core.Set) {
	t.Helper()
	g := graph.GNP(50, 0.1, false, 7)
	set, err := core.BuildSet(g, core.Options{K: 4, Flavor: sketch.BottomK, Seed: 3}, core.AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	return NewIndexCache(set.NumNodes(), func(v int32) *core.HIPIndex {
		return core.NewHIPIndex(set.SketchOf(v))
	}), set
}

func TestIndexCacheLazyAndStable(t *testing.T) {
	c, set := testCache(t)
	if c.Len() != set.NumNodes() || c.Cached() != 0 {
		t.Fatalf("fresh cache: Len=%d Cached=%d", c.Len(), c.Cached())
	}
	first := c.Get(5)
	if first == nil {
		t.Fatal("nil index")
	}
	if c.Get(5) != first {
		t.Error("second Get returned a different index")
	}
	if c.Cached() != 1 {
		t.Errorf("Cached = %d, want 1", c.Cached())
	}
	if got, want := first.Total(), core.EstimateNeighborhoodHIP(set.SketchOf(5), 1e18); got != want {
		t.Errorf("index total %v, direct estimate %v", got, want)
	}
}

func TestIndexCacheConcurrent(t *testing.T) {
	c, _ := testCache(t)
	var wg sync.WaitGroup
	got := make([]*core.HIPIndex, 32)
	for w := range got {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := int32(0); int(v) < c.Len(); v++ {
				idx := c.Get(v)
				if v == 13 {
					got[w] = idx
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < len(got); w++ {
		if got[w] != got[0] {
			t.Fatal("concurrent Gets observed different published indices")
		}
	}
	if c.Cached() != c.Len() {
		t.Errorf("Cached = %d, want %d", c.Cached(), c.Len())
	}
}

func TestForEachVisitsEverything(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		var visited [100]atomic.Int32
		err := ForEach(context.Background(), workers, len(visited), func(i int) error {
			visited[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range visited {
			if visited[i].Load() != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, visited[i].Load())
			}
		}
	}
}

func TestForEachPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	err := ForEach(context.Background(), 4, 1000, func(i int) error {
		if calls.Add(1) == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := calls.Load(); n >= 1000 {
		t.Errorf("no early stop: %d calls", n)
	}
}

func TestForEachHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	err := ForEach(ctx, 2, 1<<20, func(i int) error {
		if calls.Add(1) == 100 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := calls.Load(); n >= 1<<20 {
		t.Error("no early stop on cancellation")
	}
	// Zero items: just reports the context state.
	if err := ForEach(ctx, 2, 0, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("empty err = %v, want context.Canceled", err)
	}
	if err := ForEach(context.Background(), 2, 0, nil); err != nil {
		t.Errorf("empty err = %v, want nil", err)
	}
}

func TestCheckNodes(t *testing.T) {
	if err := CheckNodes(10, []int32{0, 9}); err != nil {
		t.Errorf("valid nodes rejected: %v", err)
	}
	if err := CheckNodes(10, []int32{10}); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := CheckNodes(10, []int32{-1}); err == nil {
		t.Error("negative node accepted")
	}
}
