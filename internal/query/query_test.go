package query

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"adsketch/internal/core"
	"adsketch/internal/graph"
	"adsketch/internal/sketch"
)

func testCache(t *testing.T) (*IndexCache, *core.Set) {
	t.Helper()
	g := graph.GNP(50, 0.1, false, 7)
	set, err := core.BuildSet(g, core.Options{K: 4, Flavor: sketch.BottomK, Seed: 3}, core.AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	return NewIndexCache(set.NumNodes(), 4, func(v int32) *core.HIPIndex {
		return core.NewHIPIndex(set.SketchOf(v))
	}), set
}

func TestIndexCacheSharding(t *testing.T) {
	c, set := testCache(t)
	if c.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", c.Shards())
	}
	// Every node resolves to its own index regardless of shard layout.
	for v := int32(0); int(v) < set.NumNodes(); v++ {
		if got, want := c.Get(v).Total(), core.EstimateNeighborhoodHIP(set.SketchOf(v), 1e18); got != want {
			t.Fatalf("node %d: sharded cache total %v, direct %v", v, got, want)
		}
	}
	st := c.Stats()
	if st.Shards != 4 || st.Slots != set.NumNodes() || st.Built != set.NumNodes() {
		t.Errorf("stats = %+v", st)
	}
	if st.Misses != int64(set.NumNodes()) {
		t.Errorf("misses = %d, want %d (one build per node)", st.Misses, set.NumNodes())
	}
	if st.Hits != 0 {
		t.Errorf("hits = %d before any repeat Get", st.Hits)
	}
	c.Get(7)
	if st = c.Stats(); st.Hits != 1 {
		t.Errorf("hits = %d after one repeat Get, want 1", st.Hits)
	}
	// Shard count defaults sanely and clamps to the slot count.
	if d := DefaultShards(); d < 1 || d > 256 {
		t.Errorf("DefaultShards = %d", d)
	}
	small := NewIndexCache(2, 64, func(v int32) *core.HIPIndex {
		return core.NewHIPIndex(set.SketchOf(v))
	})
	if small.Shards() != 2 {
		t.Errorf("Shards = %d for 2 slots, want 2", small.Shards())
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	got := TopK(4, scores)
	want := []int{5, 7, 4, 8} // 9, 6, 5(idx 4), 5(idx 8): ties by ascending index
	if len(got) != len(want) {
		t.Fatalf("TopK = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
	if got := TopK(100, scores); len(got) != len(scores) {
		t.Errorf("overlong n: %d results", len(got))
	}
	if got := TopK(0, scores); got != nil {
		t.Errorf("n=0: %v", got)
	}
	if got := TopK(3, nil); got != nil {
		t.Errorf("empty scores: %v", got)
	}
}

func TestIndexCacheLazyAndStable(t *testing.T) {
	c, set := testCache(t)
	if c.Len() != set.NumNodes() || c.Cached() != 0 {
		t.Fatalf("fresh cache: Len=%d Cached=%d", c.Len(), c.Cached())
	}
	first := c.Get(5)
	if first == nil {
		t.Fatal("nil index")
	}
	if c.Get(5) != first {
		t.Error("second Get returned a different index")
	}
	if c.Cached() != 1 {
		t.Errorf("Cached = %d, want 1", c.Cached())
	}
	if got, want := first.Total(), core.EstimateNeighborhoodHIP(set.SketchOf(5), 1e18); got != want {
		t.Errorf("index total %v, direct estimate %v", got, want)
	}
}

func TestIndexCacheConcurrent(t *testing.T) {
	c, _ := testCache(t)
	var wg sync.WaitGroup
	got := make([]*core.HIPIndex, 32)
	for w := range got {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := int32(0); int(v) < c.Len(); v++ {
				idx := c.Get(v)
				if v == 13 {
					got[w] = idx
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < len(got); w++ {
		if got[w] != got[0] {
			t.Fatal("concurrent Gets observed different published indices")
		}
	}
	if c.Cached() != c.Len() {
		t.Errorf("Cached = %d, want %d", c.Cached(), c.Len())
	}
}

func TestForEachVisitsEverything(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		var visited [100]atomic.Int32
		err := ForEach(context.Background(), workers, len(visited), func(i int) error {
			visited[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range visited {
			if visited[i].Load() != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, visited[i].Load())
			}
		}
	}
}

func TestForEachPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	err := ForEach(context.Background(), 4, 1000, func(i int) error {
		if calls.Add(1) == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := calls.Load(); n >= 1000 {
		t.Errorf("no early stop: %d calls", n)
	}
}

func TestForEachHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	err := ForEach(ctx, 2, 1<<20, func(i int) error {
		if calls.Add(1) == 100 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := calls.Load(); n >= 1<<20 {
		t.Error("no early stop on cancellation")
	}
	// Zero items: just reports the context state.
	if err := ForEach(ctx, 2, 0, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("empty err = %v, want context.Canceled", err)
	}
	if err := ForEach(context.Background(), 2, 0, nil); err != nil {
		t.Errorf("empty err = %v, want nil", err)
	}
}

func TestCheckNodes(t *testing.T) {
	if err := CheckNodes(10, []int32{0, 9}); err != nil {
		t.Errorf("valid nodes rejected: %v", err)
	}
	if err := CheckNodes(10, []int32{10}); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := CheckNodes(10, []int32{-1}); err == nil {
		t.Error("negative node accepted")
	}
}
