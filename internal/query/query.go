// Package query provides the serving-side machinery for batch sketch
// queries: a concurrency-safe, lazily populated cache of per-node HIP
// query indices, and a context-aware worker pool for evaluating batches
// of per-node queries in parallel.
//
// The design target is the ROADMAP's heavy-query-traffic regime: building
// a HIPIndex re-derives the adjusted weights of one sketch (a heap pass
// over its entries), which is wasteful to repeat on every query.  The
// cache pays that cost once per node, after which any number of
// concurrent readers answer neighborhood / closeness / Q_g queries from
// the immutable index in O(log size) or O(1).
package query

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"adsketch/internal/core"
)

// IndexCache lazily builds and caches one immutable *core.HIPIndex per
// node.  It is safe for concurrent use by multiple goroutines without
// external locking: slots are filled with compare-and-swap, so two racing
// readers may both build the same node's index, but exactly one result is
// published and, the build being deterministic, both observe identical
// values.
type IndexCache struct {
	build func(int32) *core.HIPIndex
	slots []atomic.Pointer[core.HIPIndex]
}

// NewIndexCache returns an empty cache of n slots whose misses are filled
// by build (which must be pure and safe for concurrent invocation).
func NewIndexCache(n int, build func(int32) *core.HIPIndex) *IndexCache {
	return &IndexCache{build: build, slots: make([]atomic.Pointer[core.HIPIndex], n)}
}

// Len returns the number of slots.
func (c *IndexCache) Len() int { return len(c.slots) }

// Cached returns the number of indices built so far (a point-in-time
// snapshot under concurrency).
func (c *IndexCache) Cached() int {
	n := 0
	for i := range c.slots {
		if c.slots[i].Load() != nil {
			n++
		}
	}
	return n
}

// Get returns node v's index, building and publishing it on first use.
func (c *IndexCache) Get(v int32) *core.HIPIndex {
	if idx := c.slots[v].Load(); idx != nil {
		return idx
	}
	idx := c.build(v)
	if c.slots[v].CompareAndSwap(nil, idx) {
		return idx
	}
	return c.slots[v].Load()
}

// ForEach evaluates fn(i) for every i in [0, n) across the given number
// of workers (<= 0 means GOMAXPROCS), stopping early when ctx is
// cancelled or any fn returns an error.  It returns the first error
// observed (a context error when cancellation won the race).  Items are
// claimed from a shared atomic counter, so the work distribution adapts
// to uneven per-item cost.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var (
		next     atomic.Int64
		firstErr atomic.Pointer[error]
		stop     atomic.Bool
		wg       sync.WaitGroup
	)
	record := func(err error) {
		if err == nil {
			return
		}
		e := err
		firstErr.CompareAndSwap(nil, &e)
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if err := ctx.Err(); err != nil {
					record(err)
					return
				}
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				if err := fn(int(i)); err != nil {
					record(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if p := firstErr.Load(); p != nil {
		return *p
	}
	return nil
}

// CheckNodes validates that every queried node is a legal index for a set
// of n sketches.
func CheckNodes(n int, nodes []int32) error {
	for _, v := range nodes {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("query: node %d out of range [0, %d)", v, n)
		}
	}
	return nil
}
