// Package query provides the serving-side machinery for batch sketch
// queries: a concurrency-safe, lazily populated cache of per-node HIP
// query indices, and a context-aware worker pool for evaluating batches
// of per-node queries in parallel.
//
// The design target is the ROADMAP's heavy-query-traffic regime: building
// a HIPIndex re-derives the adjusted weights of one sketch (a heap pass
// over its entries), which is wasteful to repeat on every query.  The
// cache pays that cost once per node, after which any number of
// concurrent readers answer neighborhood / closeness / Q_g queries from
// the immutable index in O(log size) or O(1).
package query

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"adsketch/internal/core"
)

// IndexCache lazily resolves and caches one immutable *core.HIPIndex per
// node.  It is safe for concurrent use by multiple goroutines without
// external locking: slots are filled with compare-and-swap, so two racing
// readers may both build the same node's index, but exactly one result is
// published and, the build being deterministic, both observe identical
// values.
//
// For frame-backed sets the build function returns a view into the
// set's shared columnar index arena (built once per set, on first use),
// so a cache miss is a pointer publish, not an index rebuild; the
// hit/miss counters then measure per-node lookup traffic rather than
// build work.  The generic fallback (core.NewHIPIndex per node) keeps
// the original build-on-miss semantics.
//
// The cache is sharded: node v lives in shard v mod shards, and each
// shard keeps its own slot array and hit/miss counters, so concurrent
// batch queries touching disjoint nodes update disjoint cache lines
// instead of contending on one global structure.
type IndexCache struct {
	build  func(int32) *core.HIPIndex
	shards []cacheShard
	n      int
}

// cacheShard is one partition of the cache.  The counter fields are
// padded apart so two shards' counters never share a cache line.
type cacheShard struct {
	slots  []atomic.Pointer[core.HIPIndex]
	hits   atomic.Int64
	misses atomic.Int64
	_      [48]byte
}

// DefaultShards returns the shard count used when the caller does not
// choose one: the smallest power of two covering GOMAXPROCS, capped at
// 256.
func DefaultShards() int {
	p := runtime.GOMAXPROCS(0)
	s := 1
	for s < p && s < 256 {
		s <<= 1
	}
	return s
}

// NewIndexCache returns an empty cache of n slots across the given number
// of shards (<= 0 means DefaultShards), whose misses are filled by build
// (which must be pure and safe for concurrent invocation).
func NewIndexCache(n, shards int, build func(int32) *core.HIPIndex) *IndexCache {
	if shards <= 0 {
		shards = DefaultShards()
	}
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	c := &IndexCache{build: build, shards: make([]cacheShard, shards), n: n}
	for s := range c.shards {
		// Shard s owns nodes v with v mod shards == s.
		size := n / shards
		if s < n%shards {
			size++
		}
		c.shards[s].slots = make([]atomic.Pointer[core.HIPIndex], size)
	}
	return c
}

// Len returns the number of slots.
func (c *IndexCache) Len() int { return c.n }

// Shards returns the number of cache shards.
func (c *IndexCache) Shards() int { return len(c.shards) }

// Cached returns the number of indices built so far (a point-in-time
// snapshot under concurrency).
func (c *IndexCache) Cached() int {
	n := 0
	for s := range c.shards {
		for i := range c.shards[s].slots {
			if c.shards[s].slots[i].Load() != nil {
				n++
			}
		}
	}
	return n
}

// CacheStats is a point-in-time snapshot of the cache counters, shaped
// for JSON serving (the adsserver /statsz endpoint).
type CacheStats struct {
	Shards int   `json:"shards"`
	Slots  int   `json:"slots"`
	Built  int   `json:"built"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// Stats snapshots the shard counters.  Hits counts Get calls answered
// from a published index; Misses counts calls that had to build one
// (racing builders each count a miss).
func (c *IndexCache) Stats() CacheStats {
	st := CacheStats{Shards: len(c.shards), Slots: c.n, Built: c.Cached()}
	for s := range c.shards {
		st.Hits += c.shards[s].hits.Load()
		st.Misses += c.shards[s].misses.Load()
	}
	return st
}

// Get returns node v's index, building and publishing it on first use.
func (c *IndexCache) Get(v int32) *core.HIPIndex {
	nshards := int32(len(c.shards))
	sh := &c.shards[v%nshards]
	slot := &sh.slots[v/nshards]
	if idx := slot.Load(); idx != nil {
		sh.hits.Add(1)
		return idx
	}
	sh.misses.Add(1)
	idx := c.build(v)
	if slot.CompareAndSwap(nil, idx) {
		return idx
	}
	return slot.Load()
}

// ForEach evaluates fn(i) for every i in [0, n) across the given number
// of workers (<= 0 means GOMAXPROCS), stopping early when ctx is
// cancelled or any fn returns an error.  It returns the first error
// observed (a context error when cancellation won the race).  Items are
// claimed from a shared atomic counter, so the work distribution adapts
// to uneven per-item cost.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var (
		next     atomic.Int64
		firstErr atomic.Pointer[error]
		stop     atomic.Bool
		wg       sync.WaitGroup
	)
	record := func(err error) {
		if err == nil {
			return
		}
		e := err
		firstErr.CompareAndSwap(nil, &e)
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if err := ctx.Err(); err != nil {
					record(err)
					return
				}
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				if err := fn(int(i)); err != nil {
					record(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if p := firstErr.Load(); p != nil {
		return *p
	}
	return nil
}

// CheckNodes validates that every queried node is a legal index for a set
// of n sketches.
func CheckNodes(n int, nodes []int32) error {
	for _, v := range nodes {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("query: node %d out of range [0, %d)", v, n)
		}
	}
	return nil
}
