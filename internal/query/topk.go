package query

import "sort"

// TopK returns the indices of the n largest scores, ordered by descending
// score with ties broken by ascending index — the ranking order of the
// Engine's top-N queries.  It performs a bounded partial selection: one
// pass over scores maintaining an n-slot min-heap, O(len(scores) · log n)
// time and O(n) extra space, instead of sorting the full score vector.
func TopK(n int, scores []float64) []int {
	if n > len(scores) {
		n = len(scores)
	}
	if n <= 0 {
		return nil
	}
	h := topkHeap{idx: make([]int, 0, n), scores: scores}
	for i := range scores {
		h.offer(i)
	}
	out := h.idx
	sort.Slice(out, func(a, b int) bool { return h.less(out[b], out[a]) })
	return out
}

// topkHeap is a min-heap (by ranking order) over score indices: the root
// is the weakest candidate currently kept, so a stronger newcomer evicts
// it in O(log n).
type topkHeap struct {
	idx    []int
	scores []float64
}

// less reports whether index a ranks strictly below index b: lower score,
// or equal score and higher index (the ranking prefers lower node IDs on
// ties).
func (h *topkHeap) less(a, b int) bool {
	if h.scores[a] != h.scores[b] {
		return h.scores[a] < h.scores[b]
	}
	return a > b
}

func (h *topkHeap) offer(i int) {
	if len(h.idx) < cap(h.idx) {
		h.idx = append(h.idx, i)
		// Sift up.
		c := len(h.idx) - 1
		for c > 0 {
			p := (c - 1) / 2
			if !h.less(h.idx[c], h.idx[p]) {
				break
			}
			h.idx[c], h.idx[p] = h.idx[p], h.idx[c]
			c = p
		}
		return
	}
	if !h.less(h.idx[0], i) {
		return // weaker than everything kept
	}
	h.idx[0] = i
	// Sift down.
	c := 0
	for {
		l, r := 2*c+1, 2*c+2
		small := c
		if l < len(h.idx) && h.less(h.idx[l], h.idx[small]) {
			small = l
		}
		if r < len(h.idx) && h.less(h.idx[r], h.idx[small]) {
			small = r
		}
		if small == c {
			break
		}
		h.idx[c], h.idx[small] = h.idx[small], h.idx[c]
		c = small
	}
}
