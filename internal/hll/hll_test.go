package hll

import (
	"math"
	"testing"

	"adsketch/internal/rank"
	"adsketch/internal/sketch"
	"adsketch/internal/stats"
)

func TestSketchAddAndDuplicates(t *testing.T) {
	s := New(16, rank.NewSource(1))
	changed := 0
	for id := int64(0); id < 1000; id++ {
		if s.Add(id) {
			changed++
		}
	}
	if changed == 0 || changed == 1000 {
		t.Fatalf("register updates = %d, implausible", changed)
	}
	// Re-adding everything must not modify the sketch.
	for id := int64(0); id < 1000; id++ {
		if s.Add(id) {
			t.Fatal("duplicate modified sketch")
		}
	}
}

func TestSketchMergeIsUnion(t *testing.T) {
	src := rank.NewSource(2)
	a, b, u := New(32, src), New(32, src), New(32, src)
	for id := int64(0); id < 500; id++ {
		a.Add(id)
		u.Add(id)
	}
	for id := int64(250); id < 900; id++ {
		b.Add(id)
		u.Add(id)
	}
	a.Merge(b)
	for i := range a.Registers() {
		if a.Registers()[i] != u.Registers()[i] {
			t.Fatalf("register %d: merged %d, union %d", i, a.Registers()[i], u.Registers()[i])
		}
	}
	if a.Estimate() != u.Estimate() {
		t.Error("merged estimate differs from union")
	}
}

func TestSketchMergePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched merge did not panic")
		}
	}()
	New(16, rank.NewSource(1)).Merge(New(32, rank.NewSource(1)))
}

func TestNewPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"sketch k=1":   func() { New(1, rank.NewSource(1)) },
		"baseb k=1":    func() { NewBaseBHIP(1, 2, 31, rank.NewSource(1)) },
		"baseb cap=0":  func() { NewBaseBHIP(16, 2, 0, rank.NewSource(1)) },
		"baseb base=1": func() { NewBaseBHIP(16, 1, 31, rank.NewSource(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAlphaConstants(t *testing.T) {
	if alpha(16) != 0.673 || alpha(32) != 0.697 || alpha(64) != 0.709 {
		t.Error("small-m alpha constants wrong")
	}
	if got := alpha(128); math.Abs(got-0.7213/(1+1.079/128)) > 1e-12 {
		t.Errorf("alpha(128) = %g", got)
	}
}

// estimatorError sweeps cardinality n over runs and returns bias and NRMSE
// of the provided estimator at n.
func estimatorError(n, runs, k int, est func(seed uint64) float64) (bias, nrmse float64) {
	acc := stats.NewErrAccum(float64(n))
	for run := 0; run < runs; run++ {
		acc.Add(est(uint64(run)*48271 + 3))
	}
	return acc.Bias(), acc.NRMSE()
}

func TestHLLEstimateLargeRange(t *testing.T) {
	const k, n, runs = 64, 50000, 120
	bias, nrmse := estimatorError(n, runs, k, func(seed uint64) float64 {
		s := New(k, rank.NewSource(seed))
		for id := int64(0); id < n; id++ {
			s.Add(id)
		}
		return s.Estimate()
	})
	if math.Abs(bias) > 0.05 {
		t.Errorf("HLL bias at large n = %+.3f", bias)
	}
	// NRMSE ~ 1.04/sqrt(k) asymptotically; allow generous slack.
	if nrmse > 1.6*sketch.HLLCV(k) {
		t.Errorf("HLL NRMSE = %g, expected ~%g", nrmse, sketch.HLLCV(k))
	}
}

func TestHLLLinearCountingSmallRange(t *testing.T) {
	const k, n, runs = 64, 30, 200
	bias, nrmse := estimatorError(n, runs, k, func(seed uint64) float64 {
		s := New(k, rank.NewSource(seed))
		for id := int64(0); id < n; id++ {
			s.Add(id)
		}
		return s.Estimate()
	})
	if math.Abs(bias) > 0.05 {
		t.Errorf("linear-counting bias = %+.3f", bias)
	}
	if nrmse > 0.25 {
		t.Errorf("linear-counting NRMSE = %g", nrmse)
	}
}

func TestHLLRawBiasedSmallRange(t *testing.T) {
	// The raw estimator is badly biased up for n << k (with empty
	// registers it reports ~0.67k no matter how small n is); the
	// linear-counting correction must beat it there.  This is the
	// small-cardinality divergence visible in Figure 3.
	const k, runs = 16, 600
	const n = 8
	rawAcc := stats.NewErrAccum(float64(n))
	corAcc := stats.NewErrAccum(float64(n))
	for run := 0; run < runs; run++ {
		s := New(k, rank.NewSource(uint64(run)*1299709+7))
		for id := int64(0); id < int64(n); id++ {
			s.Add(id)
		}
		rawAcc.Add(s.RawEstimate())
		corAcc.Add(s.Estimate())
	}
	if rawAcc.Bias() < 0.2 {
		t.Errorf("raw bias at n<<k = %+.3f, expected strongly positive", rawAcc.Bias())
	}
	if rawAcc.NRMSE() <= 2*corAcc.NRMSE() {
		t.Errorf("raw NRMSE %g not much worse than corrected %g at small n",
			rawAcc.NRMSE(), corAcc.NRMSE())
	}
}

func TestHIPUnbiasedAndBeatsHLL(t *testing.T) {
	const k, n, runs = 16, 20000, 300
	hipAcc := stats.NewErrAccum(float64(n))
	hllAcc := stats.NewErrAccum(float64(n))
	for run := 0; run < runs; run++ {
		seed := uint64(run)*7129 + 13
		h := NewHIP(k, rank.NewSource(seed))
		s := New(k, rank.NewSource(seed))
		for id := int64(0); id < int64(n); id++ {
			h.Add(id)
			s.Add(id)
		}
		hipAcc.Add(h.Estimate())
		hllAcc.Add(s.Estimate())
	}
	if bias := hipAcc.Bias(); math.Abs(bias) > 0.04 {
		t.Errorf("HIP bias = %+.3f", bias)
	}
	// Section 6: HIP ~ 0.866/sqrt(k) with base-2 inflation factor; it must
	// beat corrected HLL.
	if hipAcc.NRMSE() >= hllAcc.NRMSE() {
		t.Errorf("HIP NRMSE %g not below HLL %g", hipAcc.NRMSE(), hllAcc.NRMSE())
	}
	bound := sketch.HIPBaseBCV(k, 2) // sqrt(3/(4(k-1)))
	if hipAcc.NRMSE() > 1.3*bound {
		t.Errorf("HIP NRMSE %g far above analysis %g", hipAcc.NRMSE(), bound)
	}
}

func TestHIPDuplicatesIgnored(t *testing.T) {
	h := NewHIP(16, rank.NewSource(5))
	for id := int64(0); id < 300; id++ {
		h.Add(id)
	}
	before := h.Estimate()
	for id := int64(0); id < 300; id++ {
		if h.Add(id) {
			t.Fatal("duplicate updated HIP sketch")
		}
	}
	if h.Estimate() != before {
		t.Error("duplicate changed the estimate")
	}
}

func TestHIPExactEarly(t *testing.T) {
	// Until any bucket collision happens, every element updates with
	// probability ~1... not exactly 1 (register value 0 is exceeded with
	// probability 1), so the very first additions each add weight 1.
	h := NewHIP(64, rank.NewSource(6))
	h.Add(1)
	if math.Abs(h.Estimate()-1) > 1e-12 {
		t.Errorf("first element weight = %g, want 1", h.Estimate())
	}
}

func TestHIPSaturation(t *testing.T) {
	h := NewHIP(2, rank.NewSource(7))
	// Force saturation by writing registers directly.
	h.sketch.m[0], h.sketch.m[1] = RegisterCap, RegisterCap
	if !h.Saturated() {
		t.Fatal("not saturated")
	}
	before := h.Estimate()
	for id := int64(0); id < 1000; id++ {
		if h.Add(id) {
			t.Fatal("saturated register grew")
		}
	}
	if h.Estimate() != before {
		t.Error("estimate moved after saturation")
	}
	if h.K() != 2 || h.Sketch() == nil {
		t.Error("accessors")
	}
}

func TestBaseBHIPUnbiased(t *testing.T) {
	const k, n, runs = 16, 5000, 300
	for _, b := range []float64{2, math.Sqrt2} {
		acc := stats.NewErrAccum(float64(n))
		for run := 0; run < runs; run++ {
			h := NewBaseBHIP(k, b, 400, rank.NewSource(uint64(run)*6151+17))
			for id := int64(0); id < int64(n); id++ {
				h.Add(id)
			}
			acc.Add(h.Estimate())
		}
		if bias := acc.Bias(); math.Abs(bias) > 0.04 {
			t.Errorf("base %g bias = %+.3f", b, bias)
		}
		bound := sketch.HIPBaseBCV(k, b)
		if acc.NRMSE() > 1.35*bound {
			t.Errorf("base %g NRMSE = %g above analysis %g", b, acc.NRMSE(), bound)
		}
	}
}

func TestBaseBSmallerBaseIsMoreAccurate(t *testing.T) {
	// Section 6: base sqrt(2) has lower CV than base 2 at equal k.
	const k, n, runs = 16, 4000, 400
	nrmse := func(b float64) float64 {
		acc := stats.NewErrAccum(float64(n))
		for run := 0; run < runs; run++ {
			h := NewBaseBHIP(k, b, 400, rank.NewSource(uint64(run)*2099+29))
			for id := int64(0); id < int64(n); id++ {
				h.Add(id)
			}
			acc.Add(h.Estimate())
		}
		return acc.NRMSE()
	}
	e2, esqrt2 := nrmse(2), nrmse(math.Sqrt2)
	if esqrt2 >= e2 {
		t.Errorf("base sqrt(2) NRMSE %g not below base 2 %g", esqrt2, e2)
	}
	h := NewBaseBHIP(4, 2, 31, rank.NewSource(1))
	if h.K() != 4 || h.Base() != 2 || len(h.Registers()) != 4 {
		t.Error("accessors")
	}
}
