package hll

import (
	"fmt"
	"math"

	"adsketch/internal/rank"
)

// BaseBHIP generalizes the HIP-on-HLL counter to an arbitrary base b > 1
// (Section 6: "HIP permits us to work with a different base").  Registers
// store h = ceil(-log_b r); smaller bases need more register bits
// (log2 log_b n ~ log2 log2 n + log2 i for b = 2^(1/i)) but reduce the CV
// to ~ sqrt((b+1)/(4(k-1))): base sqrt(2) costs one extra bit per register
// and needs ~20% fewer registers than base 2 for the same error.
type BaseBHIP struct {
	k     int
	base  rank.BaseB
	cap   int
	m     []uint16
	src   rank.Source // bucket assignment
	rsrc  rank.Source // rank values, independent stream
	count float64
}

// NewBaseBHIP returns a HIP counter with k registers over base-b ranks,
// with registers saturating at cap.
func NewBaseBHIP(k int, b float64, cap int, src rank.Source) *BaseBHIP {
	if k < 2 {
		panic(fmt.Sprintf("hll: k = %d, need >= 2", k))
	}
	if cap < 1 || cap > math.MaxUint16 {
		panic(fmt.Sprintf("hll: register cap %d out of range", cap))
	}
	return &BaseBHIP{
		k:    k,
		base: rank.NewBaseB(b),
		cap:  cap,
		m:    make([]uint16, k),
		src:  src,
		rsrc: rank.NewSource(src.Seed() ^ 0x6a09e667f3bcc908),
	}
}

// K returns the number of registers.
func (h *BaseBHIP) K() int { return h.k }

// Base returns the rank base.
func (h *BaseBHIP) Base() float64 { return h.base.Base() }

// Add folds an element in and reports whether a register grew.
func (h *BaseBHIP) Add(id int64) bool {
	b := h.src.Bucket(id, h.k)
	x := h.base.Exponent(h.rsrc.Rank(id))
	if x > h.cap {
		x = h.cap
	}
	if x <= int(h.m[b]) {
		return false
	}
	sum := 0.0
	for _, v := range h.m {
		if int(v) < h.cap {
			sum += h.base.Value(int(v))
		}
	}
	if sum > 0 {
		h.count += float64(h.k) / sum
	}
	h.m[b] = uint16(x)
	return true
}

// Estimate returns the running HIP estimate.
func (h *BaseBHIP) Estimate() float64 { return h.count }

// Registers returns the register values.
func (h *BaseBHIP) Registers() []uint16 { return h.m }
