// Package hll implements the HyperLogLog approximate distinct counter of
// Flajolet, Fusy, Gandouet and Meunier (2007) — the state-of-the-art
// baseline the paper compares against in Section 6 — and the paper's HIP
// estimator layered on the very same sketch (Algorithm 3).
//
// The HLL sketch is a k-partition MinHash sketch with base-2 ranks: k
// 5-bit registers, register i holding the maximum over its bucket of
// ceil(-log2 r(v)), saturating at 31.  The classic estimators read the
// registers at query time (raw harmonic-mean estimate plus bias
// corrections); the HIP estimator instead accumulates inverse update
// probabilities as the sketch is built, which is unbiased, needs no
// corrections, and has NRMSE ~ 0.866/sqrt(k) versus ~ 1.04-1.08/sqrt(k)
// for corrected HLL.
package hll

import (
	"fmt"
	"math"

	"adsketch/internal/rank"
)

// RegisterCap is the saturation value of a 5-bit HLL register.
const RegisterCap = 31

// Sketch is a HyperLogLog register array.
type Sketch struct {
	k   int
	m   []uint8
	src rank.Source
}

// New returns an empty HLL sketch with k registers (k >= 2) drawing
// hashes from src.
func New(k int, src rank.Source) *Sketch {
	if k < 2 {
		panic(fmt.Sprintf("hll: k = %d, need >= 2", k))
	}
	return &Sketch{k: k, m: make([]uint8, k), src: src}
}

// K returns the number of registers.
func (s *Sketch) K() int { return s.k }

// Registers returns the register values (aliases internal storage).
func (s *Sketch) Registers() []uint8 { return s.m }

// observe computes the (bucket, capped exponent) pair of an element.
func (s *Sketch) observe(id int64) (int, uint8) {
	b := s.src.Bucket(id, s.k)
	h := rank.Base2Exponent(rank.Hash64(s.src.Seed()^0x1f3d5b79a2c4e688, uint64(id)))
	if h > RegisterCap {
		h = RegisterCap
	}
	return b, uint8(h)
}

// Add folds an element into the sketch and reports whether a register
// grew.  Re-occurrences never modify the sketch.
func (s *Sketch) Add(id int64) bool {
	b, h := s.observe(id)
	if h > s.m[b] {
		s.m[b] = h
		return true
	}
	return false
}

// Merge folds another sketch (same k, same source) into s, giving the
// sketch of the union.
func (s *Sketch) Merge(o *Sketch) {
	if o.k != s.k {
		panic("hll: merging sketches with different k")
	}
	for i, v := range o.m {
		if v > s.m[i] {
			s.m[i] = v
		}
	}
}

// alpha returns the bias-correction constant alpha_m of [Flajolet et al.].
func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	}
	if m >= 128 {
		return 0.7213 / (1 + 1.079/float64(m))
	}
	// Below 16 registers the asymptotic constant is a reasonable fallback;
	// the original analysis starts at m = 16.
	return 0.7213 / (1 + 1.079/float64(m))
}

// RawEstimate returns the uncorrected HLL estimate
// alpha_m * m^2 / sum_i 2^{-M[i]} ("HLLraw" in Figure 3).
func (s *Sketch) RawEstimate() float64 {
	sum := 0.0
	for _, v := range s.m {
		sum += math.Exp2(-float64(v))
	}
	m := float64(s.k)
	return alpha(s.k) * m * m / sum
}

// Estimate returns the bias-corrected HLL estimate from the original
// paper's pseudocode: linear counting when the raw estimate is small and
// empty registers exist.  (The large-range correction of the 32-bit
// original is unnecessary with 64-bit hashing.)
func (s *Sketch) Estimate() float64 {
	e := s.RawEstimate()
	m := float64(s.k)
	if e <= 2.5*m {
		zeros := 0
		for _, v := range s.m {
			if v == 0 {
				zeros++
			}
		}
		if zeros > 0 {
			return m * math.Log(m/float64(zeros))
		}
	}
	return e
}

// HIP is the Section 6 / Algorithm 3 counter: the HLL sketch augmented
// with one approximate register c accumulating HIP adjusted weights.  Each
// time a register grows, the update had probability
// tau = (1/k) * sum over unsaturated registers of 2^{-M[i]}
// (a fresh element lands in bucket i with probability 1/k and exceeds M[i]
// with probability 2^{-M[i]}), so c grows by 1/tau.
//
// Note the printed Algorithm 3 adds (sum 2^{-M[i]})^{-1}, omitting the 1/k
// bucket-choice factor; the text's derivation (and unbiasedness, which the
// tests verify) requires the k/sum form used here.
type HIP struct {
	sketch *Sketch
	count  float64
}

// NewHIP returns a HIP counter over a fresh HLL sketch with k registers.
func NewHIP(k int, src rank.Source) *HIP {
	return &HIP{sketch: New(k, src)}
}

// K returns the number of registers.
func (h *HIP) K() int { return h.sketch.K() }

// Sketch returns the underlying register array (shared, not a copy).
func (h *HIP) Sketch() *Sketch { return h.sketch }

// Add folds an element in, updating the HIP count when the sketch is
// modified, and reports whether it was.
func (h *HIP) Add(id int64) bool {
	b, x := h.sketch.observe(id)
	if x <= h.sketch.m[b] {
		return false
	}
	sum := 0.0
	for _, v := range h.sketch.m {
		if v < RegisterCap {
			sum += math.Exp2(-float64(v))
		}
	}
	if sum > 0 {
		h.count += float64(h.sketch.k) / sum
	}
	h.sketch.m[b] = x
	return true
}

// Estimate returns the running HIP distinct-count estimate.  It is
// unbiased until every register saturates (after which the sketch cannot
// change and the estimate, like HLL's, stops growing).
func (h *HIP) Estimate() float64 { return h.count }

// Saturated reports whether every register has reached the cap.
func (h *HIP) Saturated() bool {
	for _, v := range h.sketch.m {
		if v < RegisterCap {
			return false
		}
	}
	return true
}
