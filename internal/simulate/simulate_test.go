package simulate

import (
	"math"
	"testing"

	"adsketch/internal/sketch"
	"adsketch/internal/stats"
)

func TestCheckpoints(t *testing.T) {
	cs := Checkpoints(10000, 10)
	if cs[0] != 1 || cs[len(cs)-1] != 10000 {
		t.Fatalf("endpoints: %v", cs)
	}
	for i := 1; i < len(cs); i++ {
		if cs[i] <= cs[i-1] {
			t.Fatal("not strictly increasing")
		}
	}
	// ~10 per decade over 4 decades.
	if len(cs) < 30 || len(cs) > 50 {
		t.Errorf("checkpoint count = %d", len(cs))
	}
	if Checkpoints(0, 10) != nil {
		t.Error("max<1 should give nil")
	}
	one := Checkpoints(1, 10)
	if len(one) != 1 || one[0] != 1 {
		t.Errorf("Checkpoints(1) = %v", one)
	}
}

func TestFigure2SmallShape(t *testing.T) {
	// A scaled-down Figure 2 panel must reproduce the qualitative shape:
	// HIP below basic at large n, bottom-k basic exact for n <= k,
	// k-partition worst at small n, permutation best at the top end.
	cfg := Fig2Config{K: 10, MaxN: 2000, Runs: 150, Seed: 42, PerDecade: 5}
	panel := Figure2(cfg)
	byName := map[string]*stats.Series{}
	for _, s := range panel.Series {
		byName[s.Name] = s
	}
	top := 2000.0

	hip := byName[SeriesBottomHIP].Point(top).NRMSE()
	basic := byName[SeriesBottomBasic].Point(top).NRMSE()
	if hip >= basic {
		t.Errorf("at n=%g: HIP NRMSE %g not below basic %g", top, hip, basic)
	}
	ratio := basic / hip
	if ratio < 1.2 || ratio > 1.7 {
		t.Errorf("basic/HIP ratio %g, want ~sqrt(2)", ratio)
	}

	// Bottom-k basic is exact below k (the count itself is the estimate).
	if e := byName[SeriesBottomBasic].Point(6); e == nil || e.NRMSE() != 0 {
		t.Error("bottom-k basic not exact at n<k")
	}
	// ... and HIP likewise.
	if e := byName[SeriesBottomHIP].Point(6); e == nil || e.NRMSE() != 0 {
		t.Error("HIP not exact at n<k")
	}
	// k-mins basic error below k is already nonzero.
	if e := byName[SeriesKMinsBasic].Point(6); e == nil || e.NRMSE() == 0 {
		t.Error("k-mins basic unexpectedly exact at n<k")
	}
	// k-partition is worse than bottom-k basic at n ~ 2k (nearest
	// checkpoint to 20 on the log grid is 16).
	kp := byName[SeriesKPartBasic].Point(16).NRMSE()
	bk := byName[SeriesBottomBasic].Point(16).NRMSE()
	if kp <= bk {
		t.Errorf("k-partition NRMSE %g not above bottom-k %g at n~2k", kp, bk)
	}
	// Permutation estimator at the top end (n = max) beats HIP clearly.
	perm := byName[SeriesPerm].Point(top).NRMSE()
	if perm >= hip {
		t.Errorf("perm NRMSE %g not below HIP %g at n=maxN", perm, hip)
	}
	// Basic estimators near the reference CV at the plateau.
	if math.Abs(basic-sketch.BasicCV(10)) > 0.35*sketch.BasicCV(10) {
		t.Errorf("basic plateau NRMSE %g vs reference %g", basic, sketch.BasicCV(10))
	}
	if math.Abs(hip-sketch.HIPCV(10)) > 0.35*sketch.HIPCV(10) {
		t.Errorf("HIP plateau NRMSE %g vs reference %g", hip, sketch.HIPCV(10))
	}
}

func TestFigure2Deterministic(t *testing.T) {
	cfg := Fig2Config{K: 5, MaxN: 200, Runs: 20, Seed: 7, PerDecade: 4, Goroutines: 3}
	a := Figure2(cfg)
	b := Figure2(cfg)
	for i := range a.Series {
		for _, x := range a.Series[i].Xs() {
			if a.Series[i].Point(x).NRMSE() != b.Series[i].Point(x).NRMSE() {
				t.Fatalf("series %s not deterministic at %g", a.Series[i].Name, x)
			}
		}
	}
}

func TestFigure3SmallShape(t *testing.T) {
	cfg := Fig3Config{K: 16, MaxN: 50000, Runs: 120, Seed: 5, PerDecade: 4}
	panel := Figure3(cfg)
	byName := map[string]*stats.Series{}
	for _, s := range panel.Series {
		byName[s.Name] = s
	}
	top := 50000.0
	hip := byName[SeriesHIP].Point(top)
	hl := byName[SeriesHLL].Point(top)
	raw := byName[SeriesHLLRaw].Point(top)
	if hip.NRMSE() >= hl.NRMSE() {
		t.Errorf("HIP plateau NRMSE %g not below HLL %g", hip.NRMSE(), hl.NRMSE())
	}
	if math.Abs(hip.Bias()) > 0.05 {
		t.Errorf("HIP bias %+.3f", hip.Bias())
	}
	// Raw estimator is strongly biased at tiny cardinalities.
	if rawSmall := byName[SeriesHLLRaw].Point(3); rawSmall.Bias() < 0.5 {
		t.Errorf("raw bias at n=3 = %+.3f, expected strongly positive", rawSmall.Bias())
	}
	// HIP plateau constant near sqrt(3/(4k)).
	want := sketch.HIPOnHLLCV(16)
	if math.Abs(hip.NRMSE()-want) > 0.4*want {
		t.Errorf("HIP plateau %g vs analysis %g", hip.NRMSE(), want)
	}
	_ = raw
}

func TestSizeTableMatchesLemma(t *testing.T) {
	rows := SizeTable([]int{1, 5}, []int{100, 1000}, 300, 3)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.Measured-r.Expected) > 0.08*r.Expected {
			t.Errorf("k=%d n=%d: measured %g vs expected %g", r.K, r.N, r.Measured, r.Expected)
		}
	}
}

func TestBaseBTableShape(t *testing.T) {
	rows := BaseBTable([]int{16}, []float64{0, math.Sqrt2, 2}, 20000, 150, 11)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// NRMSE should increase with base and track the analysis curve.
	if !(rows[0].NRMSE < rows[2].NRMSE) {
		t.Errorf("full-rank NRMSE %g not below base-2 %g", rows[0].NRMSE, rows[2].NRMSE)
	}
	for _, r := range rows {
		if math.Abs(r.NRMSE-r.Analysis) > 0.45*r.Analysis {
			t.Errorf("k=%d b=%g: NRMSE %g vs analysis %g", r.K, r.Base, r.NRMSE, r.Analysis)
		}
	}
}

func TestHLLConstantsTable(t *testing.T) {
	rows := HLLConstantsTable([]int{16, 32}, 30000, 200, 13)
	for _, r := range rows {
		// Paper: HLL ~ 1.04-1.08, HIP ~ 0.866; ratio ~1.2-1.25.
		if r.HIPConst < 0.6 || r.HIPConst > 1.15 {
			t.Errorf("k=%d: HIP constant %g far from 0.866", r.K, r.HIPConst)
		}
		if r.Ratio < 1.02 {
			t.Errorf("k=%d: HLL/HIP ratio %g, want > 1", r.K, r.Ratio)
		}
	}
}
