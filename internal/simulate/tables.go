package simulate

import (
	"math"

	"adsketch/internal/hll"
	"adsketch/internal/rank"
	"adsketch/internal/sketch"
	"adsketch/internal/stats"
)

// SizeRow is one row of the Lemma 2.2 ADS-size table.
type SizeRow struct {
	K        int
	N        int
	Measured float64 // mean entries over runs
	Expected float64 // k + k(H_n - H_k)
}

// SizeTable measures mean bottom-k ADS sizes on element streams against
// the Lemma 2.2 formula (experiment E3).
func SizeTable(ks, ns []int, runs int, seed uint64) []SizeRow {
	var rows []SizeRow
	for _, k := range ks {
		for _, n := range ns {
			var total float64
			results := parallelRuns(runs, 0, func(run int) float64 {
				src := rank.NewSource(seed + uint64(run)*0x9e3779b97f4a7c15 + uint64(k*1000003+n))
				size := 0
				st := newBottomKState(k)
				for i := 0; i < n; i++ {
					before := len(st.ranks)
					hipBefore := st.hipCount
					st.add(src.Rank(int64(i)))
					if len(st.ranks) != before || st.hipCount != hipBefore {
						size++
					}
				}
				return float64(size)
			})
			for _, r := range results {
				total += r
			}
			rows = append(rows, SizeRow{
				K:        k,
				N:        n,
				Measured: total / float64(runs),
				Expected: stats.ExpectedBottomKADSSize(n, k),
			})
		}
	}
	return rows
}

// BaseBRow is one row of the Section 5.6 base-b trade-off table.
type BaseBRow struct {
	K        int
	Base     float64 // 0 means full-precision ranks
	NRMSE    float64 // measured at the plateau cardinality
	Analysis float64 // sqrt((1+b)/(4(k-1))), with b=1 for full precision
}

// BaseBTable measures the plateau NRMSE of HIP distinct counting under
// different rank bases against the (1+b)/2 variance-inflation analysis
// (experiment E6).
func BaseBTable(ks []int, bases []float64, n, runs int, seed uint64) []BaseBRow {
	var rows []BaseBRow
	for _, k := range ks {
		for _, b := range bases {
			accs := parallelRuns(runs, 0, func(run int) float64 {
				s := seed + uint64(run)*0xa24baed4963ee407 + uint64(k)
				if b == 0 {
					// Full-precision ranks: bottom-k HIP counter.
					src := rank.NewSource(s)
					st := newBottomKState(k)
					for i := 0; i < n; i++ {
						st.add(src.Rank(int64(i)))
					}
					return st.hipCount
				}
				h := hll.NewBaseBHIP(k, b, 4096, rank.NewSource(s))
				for i := 0; i < n; i++ {
					h.Add(int64(i))
				}
				return h.Estimate()
			})
			acc := stats.NewErrAccum(float64(n))
			for _, e := range accs {
				acc.Add(e)
			}
			analysisBase := b
			if analysisBase == 0 {
				analysisBase = 1
			}
			rows = append(rows, BaseBRow{
				K:        k,
				Base:     b,
				NRMSE:    acc.NRMSE(),
				Analysis: sketch.HIPBaseBCV(k, analysisBase),
			})
		}
	}
	return rows
}

// ConstantRow is one row of the Section 6 asymptotic-constant table.
type ConstantRow struct {
	K        int
	HLLConst float64 // plateau NRMSE x sqrt(k), paper: ~1.04-1.08
	HIPConst float64 // plateau NRMSE x sqrt(k), paper: ~0.866
	Ratio    float64 // HLL/HIP, paper: ~1.25
	PaperHLL float64
	PaperHIP float64
}

// HLLConstantsTable measures the NRMSE constants of bias-corrected HLL and
// HIP at a plateau cardinality (experiment E5).
func HLLConstantsTable(ks []int, n, runs int, seed uint64) []ConstantRow {
	var rows []ConstantRow
	for _, k := range ks {
		type pair struct{ hll, hip float64 }
		results := parallelRuns(runs, 0, func(run int) pair {
			h := hll.NewHIP(k, rank.NewSource(seed+uint64(run)*2862933555777941757+uint64(k)))
			for i := 0; i < n; i++ {
				h.Add(int64(i))
			}
			return pair{hll: h.Sketch().Estimate(), hip: h.Estimate()}
		})
		hllAcc := stats.NewErrAccum(float64(n))
		hipAcc := stats.NewErrAccum(float64(n))
		for _, p := range results {
			hllAcc.Add(p.hll)
			hipAcc.Add(p.hip)
		}
		sq := math.Sqrt(float64(k))
		rows = append(rows, ConstantRow{
			K:        k,
			HLLConst: hllAcc.NRMSE() * sq,
			HIPConst: hipAcc.NRMSE() * sq,
			Ratio:    hllAcc.NRMSE() / hipAcc.NRMSE(),
			PaperHLL: 1.08,
			PaperHIP: math.Sqrt(3.0 / 4),
		})
	}
	return rows
}
