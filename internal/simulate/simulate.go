// Package simulate is the experiment harness that regenerates the paper's
// evaluation: the neighborhood-cardinality error curves of Figure 2, the
// distinct-counting comparison of Figure 3, and the quantitative tables
// behind the in-text claims (ADS sizes of Lemma 2.2, the base-b variance
// trade-off of Section 5.6, the HLL-vs-HIP constants of Section 6).
//
// Following Section 5.5, the Figure 2 simulation runs on a stream of
// distinct elements: "the structure of the ADS and the behavior of the
// estimator as a function of the cardinality do not depend on the graph
// structure", so the estimate at cardinality i is taken after processing i
// elements.  Estimates are recorded at logarithmically spaced checkpoints
// (the paper plots every cardinality; checkpoints only thin the x-axis,
// not the estimators).
package simulate

import (
	"math"
	"runtime"
	"strconv"
	"sync"

	"adsketch/internal/hll"
	"adsketch/internal/rank"
	"adsketch/internal/stats"
)

// Checkpoints returns ~perDecade logarithmically spaced integers in
// [1, max], always including 1 and max.
func Checkpoints(max, perDecade int) []int {
	if max < 1 {
		return nil
	}
	ratio := math.Pow(10, 1/float64(perDecade))
	var out []int
	last := 0
	for x := 1.0; ; x *= ratio {
		i := int(math.Round(x))
		if i > max {
			break
		}
		if i > last {
			out = append(out, i)
			last = i
		}
	}
	if last < max {
		out = append(out, max)
	}
	return out
}

// Fig2Config parameterizes one panel row of Figure 2.
type Fig2Config struct {
	K          int    // sketch parameter
	MaxN       int    // largest cardinality (10000 or 50000 in the paper)
	Runs       int    // independent rank randomizations
	Seed       uint64 // base seed
	PerDecade  int    // checkpoint density (default 20)
	Goroutines int    // parallel workers (default GOMAXPROCS)
}

// Figure 2 series names.
const (
	SeriesKMinsBasic  = "kmins basic"
	SeriesKPartBasic  = "kpart basic"
	SeriesBottomBasic = "botk basic"
	SeriesBottomHIP   = "botk HIP"
	SeriesPerm        = "perm"
)

// Figure2 runs the Section 5.5 simulation and returns a panel with the
// five estimator series (NRMSE and MRE are both recorded per point).
func Figure2(cfg Fig2Config) *stats.Panel {
	if cfg.PerDecade <= 0 {
		cfg.PerDecade = 20
	}
	panel := stats.NewPanel("Figure 2: neighborhood size estimators, k=" +
		itoa(cfg.K) + ", " + itoa(cfg.Runs) + " runs, max n = " + itoa(cfg.MaxN))
	names := []string{SeriesKMinsBasic, SeriesKPartBasic, SeriesBottomBasic, SeriesBottomHIP, SeriesPerm}
	for _, name := range names {
		panel.AddSeries(name)
	}
	merge := parallelRuns(cfg.Runs, cfg.Goroutines, func(run int) []*stats.Series {
		out := make([]*stats.Series, len(names))
		for i, name := range names {
			out[i] = stats.NewSeries(name)
		}
		fig2Run(cfg, uint64(run), out)
		return out
	})
	for i, s := range panel.Series {
		for _, part := range merge {
			s.Merge(part[i])
		}
	}
	return panel
}

// fig2Run performs one randomization: stream cfg.MaxN distinct elements,
// maintaining all five estimators online, recording at checkpoints.
func fig2Run(cfg Fig2Config, run uint64, out []*stats.Series) {
	k := cfg.K
	src := rank.NewSource(cfg.Seed + run*0x9e3779b97f4a7c15 + 1)
	rng := rank.NewRNG(cfg.Seed ^ (run*0xa24baed4963ee407 + 7))
	perm := rng.Perm(cfg.MaxN)

	// Online states.
	km := newKMinsState(k, src)
	kp := newKPartState(k, src)
	bk := newBottomKState(k)
	pe := newPermState(cfg.MaxN, k)

	checkpoints := Checkpoints(cfg.MaxN, cfg.PerDecade)
	ci := 0
	for i := 0; i < cfg.MaxN; i++ {
		id := int64(i)
		km.add(id)
		kp.add(id)
		bk.add(src.Rank(id))
		pe.add(perm[i] + 1)
		if ci < len(checkpoints) && i+1 == checkpoints[ci] {
			truth := float64(i + 1)
			x := truth
			out[0].Add(x, truth, km.estimate())
			out[1].Add(x, truth, kp.estimate())
			out[2].Add(x, truth, bk.basic())
			out[3].Add(x, truth, bk.hipCount)
			out[4].Add(x, truth, pe.estimate())
			ci++
		}
	}
}

// kminsState maintains the k per-permutation minima and the running sum of
// exponential transforms for O(1) basic estimates.
type kminsState struct {
	k    int
	src  rank.Source
	mins []float64
	sumY float64 // sum of -ln(1-min_h) over permutations
	any  bool
}

func newKMinsState(k int, src rank.Source) *kminsState {
	s := &kminsState{k: k, src: src, mins: make([]float64, k)}
	for i := range s.mins {
		s.mins[i] = 1
	}
	return s
}

func (s *kminsState) add(id int64) {
	for h := 0; h < s.k; h++ {
		if r := s.src.RankAt(h, id); r < s.mins[h] {
			if s.any {
				s.sumY -= -math.Log1p(-s.mins[h])
			}
			s.sumY += -math.Log1p(-r)
			s.mins[h] = r
		}
	}
	if !s.any {
		// After the first element every permutation has a finite minimum;
		// recompute the sum cleanly (the "previous" values were the
		// supremum 1 whose transform is infinite).
		s.sumY = 0
		for _, m := range s.mins {
			s.sumY += -math.Log1p(-m)
		}
		s.any = true
	}
}

func (s *kminsState) estimate() float64 {
	if !s.any || s.sumY <= 0 {
		return 0
	}
	if s.k == 1 {
		return 1 / s.sumY
	}
	return float64(s.k-1) / s.sumY
}

// kpartState maintains per-bucket minima, the count of nonempty buckets,
// and the running transform sum.
type kpartState struct {
	k      int
	src    rank.Source
	mins   []float64
	sumY   float64
	kPrime int
}

func newKPartState(k int, src rank.Source) *kpartState {
	s := &kpartState{k: k, src: src, mins: make([]float64, k)}
	for i := range s.mins {
		s.mins[i] = 1
	}
	return s
}

func (s *kpartState) add(id int64) {
	b := s.src.Bucket(id, s.k)
	r := s.src.Rank(id)
	if r >= s.mins[b] {
		return
	}
	if s.mins[b] == 1 {
		s.kPrime++
	} else {
		s.sumY -= -math.Log1p(-s.mins[b])
	}
	s.sumY += -math.Log1p(-r)
	s.mins[b] = r
}

func (s *kpartState) estimate() float64 {
	if s.kPrime <= 1 || s.sumY <= 0 {
		return 0
	}
	return float64(s.kPrime) * float64(s.kPrime-1) / s.sumY
}

// bottomKState maintains the k smallest ranks, the basic estimate, and the
// running HIP count.
type bottomKState struct {
	k        int
	ranks    []float64 // ascending, len <= k
	hipCount float64
}

func newBottomKState(k int) *bottomKState {
	return &bottomKState{k: k, ranks: make([]float64, 0, k)}
}

func (s *bottomKState) add(r float64) {
	tau := 1.0
	if len(s.ranks) >= s.k {
		tau = s.ranks[s.k-1]
	}
	if r >= tau {
		return
	}
	s.hipCount += 1 / tau
	i := 0
	for i < len(s.ranks) && s.ranks[i] < r {
		i++
	}
	if len(s.ranks) < s.k {
		s.ranks = append(s.ranks, 0)
	}
	copy(s.ranks[i+1:], s.ranks[i:])
	s.ranks[i] = r
}

func (s *bottomKState) basic() float64 {
	if len(s.ranks) < s.k {
		return float64(len(s.ranks))
	}
	return float64(s.k-1) / s.ranks[s.k-1]
}

// permState is a lean version of core.PermutationEstimator (no duplicate
// guard; the simulation streams distinct elements).
type permState struct {
	n, k  int
	ranks []int
	sHat  float64
}

func newPermState(n, k int) *permState {
	return &permState{n: n, k: k, ranks: make([]int, 0, k)}
}

func (s *permState) add(sigma int) {
	if len(s.ranks) < s.k {
		s.insert(sigma)
		s.sHat++
		return
	}
	mu := s.ranks[s.k-1]
	if sigma >= mu {
		return
	}
	s.sHat += (float64(s.n) - s.sHat + 1) / float64(mu-s.k+1)
	s.insert(sigma)
}

func (s *permState) insert(sigma int) {
	i := 0
	for i < len(s.ranks) && s.ranks[i] < sigma {
		i++
	}
	if len(s.ranks) < s.k {
		s.ranks = append(s.ranks, 0)
	}
	copy(s.ranks[i+1:], s.ranks[i:])
	s.ranks[i] = sigma
}

func (s *permState) estimate() float64 {
	if len(s.ranks) == s.k && s.ranks[s.k-1] == s.k {
		return s.sHat*float64(s.k+1)/float64(s.k) - 1
	}
	return s.sHat
}

// Fig3Config parameterizes one panel row of Figure 3.
type Fig3Config struct {
	K          int // registers (16, 32, 64 in the paper)
	MaxN       int // largest cardinality (10^6 in the paper)
	Runs       int
	Seed       uint64
	PerDecade  int
	Goroutines int
}

// Figure 3 series names.
const (
	SeriesHLLRaw = "HLLraw"
	SeriesHLL    = "HLL"
	SeriesHIP    = "HIP"
)

// Figure3 runs the Section 6 comparison: HLL raw, HLL bias-corrected, and
// HIP, all reading the same k-partition base-2 5-bit-register sketch.
func Figure3(cfg Fig3Config) *stats.Panel {
	if cfg.PerDecade <= 0 {
		cfg.PerDecade = 10
	}
	panel := stats.NewPanel("Figure 3: HLL vs HIP, k=" + itoa(cfg.K) +
		", " + itoa(cfg.Runs) + " runs, max n = " + itoa(cfg.MaxN))
	names := []string{SeriesHLLRaw, SeriesHLL, SeriesHIP}
	for _, name := range names {
		panel.AddSeries(name)
	}
	checkpoints := Checkpoints(cfg.MaxN, cfg.PerDecade)
	merge := parallelRuns(cfg.Runs, cfg.Goroutines, func(run int) []*stats.Series {
		out := make([]*stats.Series, len(names))
		for i, name := range names {
			out[i] = stats.NewSeries(name)
		}
		h := hll.NewHIP(cfg.K, rank.NewSource(cfg.Seed+uint64(run)*0x9e3779b97f4a7c15+11))
		ci := 0
		for i := 0; i < cfg.MaxN; i++ {
			h.Add(int64(i))
			if ci < len(checkpoints) && i+1 == checkpoints[ci] {
				truth := float64(i + 1)
				out[0].Add(truth, truth, h.Sketch().RawEstimate())
				out[1].Add(truth, truth, h.Sketch().Estimate())
				out[2].Add(truth, truth, h.Estimate())
				ci++
			}
		}
		return out
	})
	for i, s := range panel.Series {
		for _, part := range merge {
			s.Merge(part[i])
		}
	}
	return panel
}

// parallelRuns executes fn over run indices with bounded workers, returning
// the per-run results.
func parallelRuns[T any](runs, workers int, fn func(run int) T) []T {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	out := make([]T, runs)
	if workers <= 1 {
		for i := 0; i < runs; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < runs; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

func itoa(i int) string { return strconv.Itoa(i) }
