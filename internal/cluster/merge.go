package cluster

import (
	"fmt"
	"sort"

	"adsketch/internal/centrality"
)

// MergeScores gathers per-shard partial score vectors back into request
// order: partial[i][j] is the score of subs[i].Nodes[j] and lands at
// position subs[i].Pos[j] of the merged vector.  Because each score is a
// per-node value computed from that node's sketch alone, the merged
// vector equals the single-set batch bit-for-bit.
func MergeScores(n int, subs []Sub, partial [][]float64) ([]float64, error) {
	out := make([]float64, n)
	filled := 0
	for i, sub := range subs {
		if len(partial[i]) != len(sub.Nodes) {
			return nil, fmt.Errorf("cluster: shard %d returned %d scores for %d nodes", sub.Shard, len(partial[i]), len(sub.Nodes))
		}
		for j, pos := range sub.Pos {
			out[pos] = partial[i][j]
			filled++
		}
	}
	if filled != n {
		return nil, fmt.Errorf("cluster: merged %d of %d scores", filled, n)
	}
	return out, nil
}

// MergeScoresPartial gathers the surviving per-shard score vectors of a
// degraded scatter back into request order.  ok[i] reports whether
// subs[i] answered; the positions of a failed shard's nodes stay 0 and
// are returned in missing (original request positions, ascending).  With
// every shard ok it is exactly MergeScores.
func MergeScoresPartial(n int, subs []Sub, partial [][]float64, ok []bool) (scores []float64, missing []int, err error) {
	scores = make([]float64, n)
	filled := 0
	for i, sub := range subs {
		if !ok[i] {
			missing = append(missing, sub.Pos...)
			continue
		}
		if len(partial[i]) != len(sub.Nodes) {
			return nil, nil, fmt.Errorf("cluster: shard %d returned %d scores for %d nodes", sub.Shard, len(partial[i]), len(sub.Nodes))
		}
		for j, pos := range sub.Pos {
			scores[pos] = partial[i][j]
			filled++
		}
	}
	if filled+len(missing) != n {
		return nil, nil, fmt.Errorf("cluster: merged %d of %d scores (%d missing)", filled, n, len(missing))
	}
	sort.Ints(missing)
	return scores, missing, nil
}

// MergeTopK merges per-shard top-k rankings into the global top-k, in
// ranking order: descending score, ties broken by ascending node ID —
// the exact order of the single-set bounded-heap selection.  Each shard
// list must itself hold the shard's top min(k, owned) nodes; then the
// union of the lists contains every global top-k member, and the merge
// is exhaustive.
func MergeTopK(k int, lists [][]centrality.Ranked) []centrality.Ranked {
	var all []centrality.Ranked
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Node < all[j].Node
	})
	if k > len(all) {
		k = len(all)
	}
	if k < 0 {
		k = 0
	}
	return all[:k:k]
}
