// Package cluster provides the machinery of the partitioned serving
// tier: a node-ID router over the contiguous shard ranges of a split
// sketch set, a scatter-gather runner for fanning one query out to the
// shards that own its nodes, and the partial-response merges that
// reassemble shard answers into the single-set answer.
//
// The design target is the DegreeSketch-style topology (Priest,
// arXiv:2004.04289): per-node sketches distributed across workers by
// node ID, with a coordinator that scatters each query to the owning
// workers and aggregates the partials.  Everything here is deliberately
// deterministic — routing depends only on the ranges, and every merge
// reproduces the single-set evaluation order — so a scattered answer is
// bit-for-bit identical to the unpartitioned one.
package cluster

import (
	"context"

	"adsketch/internal/query"
)

// Scatter runs fn(i) for every shard index in [0, n) concurrently,
// stopping early when ctx is cancelled or any fn returns an error, and
// returns the first error observed.  It is the fan-out half of the
// scatter-gather cycle; the caller's fn performs one shard call and
// stores the partial, and the Merge* helpers gather.
func Scatter(ctx context.Context, n int, fn func(i int) error) error {
	return query.ForEach(ctx, 0, n, fn)
}

// ScatterAll runs fn(i) for every shard index in [0, n) concurrently and
// waits for all of them: unlike Scatter, one shard's failure does not
// stop the others.  It returns the per-index errors (nil entries for the
// shards that succeeded) so the caller can apply a partial-failure
// policy — degrade around the failed shards, or surface the first error.
// Only context cancellation aborts the fan-out early, reported in the
// second return; the per-index slice then marks the unvisited shards
// with the context error too, so no entry is silently nil.
func ScatterAll(ctx context.Context, n int, fn func(i int) error) ([]error, error) {
	errs := make([]error, n)
	visited := make([]bool, n)
	err := query.ForEach(ctx, 0, n, func(i int) error {
		visited[i] = true
		errs[i] = fn(i)
		return nil
	})
	if err != nil {
		// Cancellation won the race: every shard not reached reports the
		// context error rather than a misleading success.
		for i := range errs {
			if !visited[i] {
				errs[i] = err
			}
		}
		return errs, err
	}
	return errs, nil
}
