// Package cluster provides the machinery of the partitioned serving
// tier: a node-ID router over the contiguous shard ranges of a split
// sketch set, a scatter-gather runner for fanning one query out to the
// shards that own its nodes, and the partial-response merges that
// reassemble shard answers into the single-set answer.
//
// The design target is the DegreeSketch-style topology (Priest,
// arXiv:2004.04289): per-node sketches distributed across workers by
// node ID, with a coordinator that scatters each query to the owning
// workers and aggregates the partials.  Everything here is deliberately
// deterministic — routing depends only on the ranges, and every merge
// reproduces the single-set evaluation order — so a scattered answer is
// bit-for-bit identical to the unpartitioned one.
package cluster

import (
	"context"

	"adsketch/internal/query"
)

// Scatter runs fn(i) for every shard index in [0, n) concurrently,
// stopping early when ctx is cancelled or any fn returns an error, and
// returns the first error observed.  It is the fan-out half of the
// scatter-gather cycle; the caller's fn performs one shard call and
// stores the partial, and the Merge* helpers gather.
func Scatter(ctx context.Context, n int, fn func(i int) error) error {
	return query.ForEach(ctx, 0, n, fn)
}
