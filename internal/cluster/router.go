package cluster

import (
	"fmt"
	"sort"
)

// Range is one shard's node ownership: the contiguous global node IDs
// [Lo, Hi).  Shard is the caller's index for the backend serving the
// range.
type Range struct {
	Shard int
	Lo    int32
	Hi    int32
}

// Router maps global node IDs to the shards that own them.  A router is
// built from the ranges of a complete split and validates at
// construction that they cover every node exactly once, so routing can
// never drop or double-serve a node.
type Router struct {
	ranges []Range // sorted by Lo, empty ranges removed
	total  int
}

// NewRouter builds a router over the given ranges, which must tile
// [0, total) exactly: sorted ranges are contiguous, non-overlapping, and
// cover every node.  Empty ranges (Lo == Hi) are permitted and ignored
// for routing.
func NewRouter(ranges []Range, total int) (*Router, error) {
	sorted := append([]Range(nil), ranges...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Lo != sorted[j].Lo {
			return sorted[i].Lo < sorted[j].Lo
		}
		return sorted[i].Hi < sorted[j].Hi
	})
	expect := int32(0)
	kept := sorted[:0]
	for _, r := range sorted {
		if r.Lo > r.Hi {
			return nil, fmt.Errorf("cluster: shard %d has inverted range [%d, %d)", r.Shard, r.Lo, r.Hi)
		}
		if r.Lo != expect {
			return nil, fmt.Errorf("cluster: shard ranges leave nodes [%d, %d) unowned or doubly owned", expect, r.Lo)
		}
		expect = r.Hi
		if r.Lo < r.Hi {
			kept = append(kept, r)
		}
	}
	if int(expect) != total {
		return nil, fmt.Errorf("cluster: shard ranges cover nodes [0, %d) of %d", expect, total)
	}
	return &Router{ranges: kept, total: total}, nil
}

// SplitRanges returns the canonical parts-way split of [0, total):
// partition i owns nodes [i·total/parts, (i+1)·total/parts), with Shard
// set to the partition index.  These are exactly the ranges
// core.SplitSketchSet produces, so routers, partition files, and the
// distributed builder all agree on node ownership by construction.
func SplitRanges(total, parts int) ([]Range, error) {
	if parts < 1 {
		return nil, fmt.Errorf("cluster: cannot split into %d ranges, want >= 1", parts)
	}
	if parts > total {
		return nil, fmt.Errorf("cluster: cannot split %d nodes into %d ranges", total, parts)
	}
	out := make([]Range, parts)
	for i := 0; i < parts; i++ {
		out[i] = Range{Shard: i, Lo: int32(i * total / parts), Hi: int32((i + 1) * total / parts)}
	}
	return out, nil
}

// Total returns the global node count.
func (r *Router) Total() int { return r.total }

// Owner returns the caller's shard index for the shard owning node v.
func (r *Router) Owner(v int32) (int, error) {
	if v < 0 || int(v) >= r.total {
		return 0, fmt.Errorf("cluster: node %d out of range [0, %d)", v, r.total)
	}
	i := sort.Search(len(r.ranges), func(i int) bool { return r.ranges[i].Hi > v })
	// The cover invariant guarantees a hit; the check guards corruption.
	if i == len(r.ranges) || v < r.ranges[i].Lo {
		return 0, fmt.Errorf("cluster: node %d not covered by any shard range", v)
	}
	return r.ranges[i].Shard, nil
}

// Sub is one shard's slice of a scattered node batch: the nodes routed
// to Shard and, parallel to them, each node's position in the original
// request, so the gathered partials land back in request order.
type Sub struct {
	Shard int
	Nodes []int32
	Pos   []int
}

// Plan routes a node batch: it groups the nodes by owning shard,
// preserving request order within each group, with groups ordered by
// first appearance.  Every node must be in [0, Total()).
func (r *Router) Plan(nodes []int32) ([]Sub, error) {
	var subs []Sub
	bySub := make(map[int]int) // shard -> index into subs
	for i, v := range nodes {
		shard, err := r.Owner(v)
		if err != nil {
			return nil, err
		}
		si, ok := bySub[shard]
		if !ok {
			si = len(subs)
			subs = append(subs, Sub{Shard: shard})
			bySub[shard] = si
		}
		subs[si].Nodes = append(subs[si].Nodes, v)
		subs[si].Pos = append(subs[si].Pos, i)
	}
	return subs, nil
}
