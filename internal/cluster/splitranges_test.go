package cluster

import "testing"

// TestSplitRangesTileAndMatchSplitSketchSet pins that SplitRanges
// produces a valid router tiling and the same i·n/P arithmetic
// core.SplitSketchSet uses.
func TestSplitRangesTile(t *testing.T) {
	for _, tc := range []struct{ total, parts int }{
		{1, 1}, {7, 3}, {20, 4}, {20, 7}, {1000, 16},
	} {
		ranges, err := SplitRanges(tc.total, tc.parts)
		if err != nil {
			t.Fatalf("SplitRanges(%d, %d): %v", tc.total, tc.parts, err)
		}
		r, err := NewRouter(ranges, tc.total)
		if err != nil {
			t.Fatalf("SplitRanges(%d, %d) does not tile: %v", tc.total, tc.parts, err)
		}
		for i, rg := range ranges {
			if rg.Shard != i {
				t.Fatalf("range %d has shard %d", i, rg.Shard)
			}
			if want := int32(i * tc.total / tc.parts); rg.Lo != want {
				t.Fatalf("range %d starts at %d, want %d", i, rg.Lo, want)
			}
		}
		for v := 0; v < tc.total; v++ {
			owner, err := r.Owner(int32(v))
			if err != nil {
				t.Fatalf("Owner(%d): %v", v, err)
			}
			if rg := ranges[owner]; int32(v) < rg.Lo || int32(v) >= rg.Hi {
				t.Fatalf("Owner(%d) = %d, whose range is [%d, %d)", v, owner, rg.Lo, rg.Hi)
			}
		}
	}
}

func TestSplitRangesErrors(t *testing.T) {
	if _, err := SplitRanges(10, 0); err == nil {
		t.Fatal("SplitRanges(10, 0) succeeded")
	}
	if _, err := SplitRanges(3, 4); err == nil {
		t.Fatal("SplitRanges(3, 4) succeeded")
	}
}
