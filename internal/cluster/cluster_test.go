package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"adsketch/internal/centrality"
	"adsketch/internal/query"
)

func ranges(bounds ...int32) []Range {
	out := make([]Range, len(bounds)-1)
	for i := range out {
		out[i] = Range{Shard: i, Lo: bounds[i], Hi: bounds[i+1]}
	}
	return out
}

func TestRouterCoverValidation(t *testing.T) {
	if _, err := NewRouter(ranges(0, 3, 7, 10), 10); err != nil {
		t.Errorf("valid cover rejected: %v", err)
	}
	// Empty ranges are tolerated.
	if _, err := NewRouter(ranges(0, 3, 3, 10), 10); err != nil {
		t.Errorf("cover with empty range rejected: %v", err)
	}
	bad := []struct {
		name   string
		ranges []Range
		total  int
	}{
		{"gap", ranges(0, 3, 7), 10},
		{"hole", []Range{{0, 0, 3}, {1, 5, 10}}, 10},
		{"overlap", []Range{{0, 0, 5}, {1, 3, 10}}, 10},
		{"inverted", []Range{{0, 5, 3}, {1, 5, 10}}, 10},
		{"not-from-zero", []Range{{0, 2, 10}}, 10},
		{"overshoot", ranges(0, 4, 12), 10},
	}
	for _, tc := range bad {
		if _, err := NewRouter(tc.ranges, tc.total); err == nil {
			t.Errorf("%s: invalid cover accepted", tc.name)
		}
	}
}

func TestRouterOwnerAndPlan(t *testing.T) {
	r, err := NewRouter(ranges(0, 3, 3, 7, 10), 10)
	if err != nil {
		t.Fatal(err)
	}
	owners := map[int32]int{0: 0, 2: 0, 3: 2, 6: 2, 7: 3, 9: 3}
	for v, want := range owners {
		got, err := r.Owner(v)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Owner(%d) = %d, want %d", v, got, want)
		}
	}
	for _, v := range []int32{-1, 10, 100} {
		if _, err := r.Owner(v); err == nil {
			t.Errorf("Owner(%d) succeeded", v)
		}
	}

	nodes := []int32{9, 0, 4, 1, 8}
	subs, err := r.Plan(nodes)
	if err != nil {
		t.Fatal(err)
	}
	// Groups in first-appearance order: shard 3 (node 9), shard 0 (0, 1),
	// shard 2 (4).
	want := []Sub{
		{Shard: 3, Nodes: []int32{9, 8}, Pos: []int{0, 4}},
		{Shard: 0, Nodes: []int32{0, 1}, Pos: []int{1, 3}},
		{Shard: 2, Nodes: []int32{4}, Pos: []int{2}},
	}
	if !reflect.DeepEqual(subs, want) {
		t.Errorf("Plan = %+v, want %+v", subs, want)
	}
}

func TestMergeScores(t *testing.T) {
	r, err := NewRouter(ranges(0, 5, 10), 10)
	if err != nil {
		t.Fatal(err)
	}
	nodes := []int32{7, 2, 9, 0}
	subs, err := r.Plan(nodes)
	if err != nil {
		t.Fatal(err)
	}
	// Shard score = node*10, to make merged positions checkable.
	partial := make([][]float64, len(subs))
	for i, sub := range subs {
		for _, v := range sub.Nodes {
			partial[i] = append(partial[i], float64(v)*10)
		}
	}
	got, err := MergeScores(len(nodes), subs, partial)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{70, 20, 90, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergeScores = %v, want %v", got, want)
	}

	// A shard returning the wrong cardinality must fail loudly.
	partial[0] = partial[0][:len(partial[0])-1]
	if _, err := MergeScores(len(nodes), subs, partial); err == nil {
		t.Error("short partial merged successfully")
	}
}

// MergeTopK over per-shard top-k lists must equal the single-vector
// bounded-heap selection, including tie-breaks.
func TestMergeTopKMatchesSingleSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(12)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(8)) // few distinct values -> many ties
		}
		// Reference: the engine-side selection over the whole vector.
		ref := query.TopK(k, scores)
		var want []centrality.Ranked
		for _, v := range ref {
			want = append(want, centrality.Ranked{Node: int32(v), Score: scores[v]})
		}
		// Split into random contiguous shards; each shard contributes its
		// own top-k (computed the same way a shard engine would).
		nshards := 1 + rng.Intn(4)
		var lists [][]centrality.Ranked
		lo := 0
		for s := 0; s < nshards; s++ {
			hi := lo + (n-lo)/(nshards-s)
			if s == nshards-1 {
				hi = n
			}
			local := scores[lo:hi]
			top := query.TopK(k, local)
			var list []centrality.Ranked
			for _, v := range top {
				list = append(list, centrality.Ranked{Node: int32(lo + v), Score: local[v]})
			}
			lists = append(lists, list)
			lo = hi
		}
		got := MergeTopK(k, lists)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d, k=%d, shards=%d): merged %v, want %v", trial, n, k, nshards, got, want)
		}
	}
}

func TestScatterAllCollectsEveryError(t *testing.T) {
	sentinel := errors.New("shard down")
	errs, err := ScatterAll(context.Background(), 8, func(i int) error {
		if i%3 == 0 {
			return fmt.Errorf("%w: %d", sentinel, i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if want := i%3 == 0; (e != nil) != want {
			t.Errorf("errs[%d] = %v, want error: %v", i, e, want)
		}
		if e != nil && !errors.Is(e, sentinel) {
			t.Errorf("errs[%d] = %v, want %v", i, e, sentinel)
		}
	}

	// One shard's failure must not stop the others: every index runs.
	visited := make([]bool, 16)
	if _, err := ScatterAll(context.Background(), 16, func(i int) error {
		visited[i] = true
		return sentinel
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range visited {
		if !v {
			t.Errorf("shard %d not visited after sibling failures", i)
		}
	}
}

func TestScatterAllCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	errs, err := ScatterAll(ctx, 4, func(int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ScatterAll error = %v", err)
	}
	for i, e := range errs {
		if e == nil {
			t.Errorf("errs[%d] = nil after cancellation; unvisited shards must not report success", i)
		}
	}
}

func TestMergeScoresPartial(t *testing.T) {
	r, err := NewRouter(ranges(0, 5, 10), 10)
	if err != nil {
		t.Fatal(err)
	}
	nodes := []int32{7, 2, 9, 0}
	subs, err := r.Plan(nodes)
	if err != nil {
		t.Fatal(err)
	}
	partial := make([][]float64, len(subs))
	ok := make([]bool, len(subs))
	for i, sub := range subs {
		ok[i] = true
		for _, v := range sub.Nodes {
			partial[i] = append(partial[i], float64(v)*10)
		}
	}

	// All shards ok: exactly MergeScores, no missing positions.
	got, missing, err := MergeScoresPartial(len(nodes), subs, partial, ok)
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{70, 20, 90, 0}; !reflect.DeepEqual(got, want) || missing != nil {
		t.Errorf("full MergeScoresPartial = %v (missing %v), want %v (missing none)", got, missing, want)
	}

	// Shard 0 (nodes 7, 9 at positions 0, 2) failed: its positions stay
	// zero and are reported, the survivors land in request order.
	ok[0] = false
	partial[0] = nil
	got, missing, err = MergeScoresPartial(len(nodes), subs, partial, ok)
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{0, 20, 0, 0}; !reflect.DeepEqual(got, want) {
		t.Errorf("degraded scores = %v, want %v", got, want)
	}
	if want := []int{0, 2}; !reflect.DeepEqual(missing, want) {
		t.Errorf("missing positions = %v, want %v", missing, want)
	}

	// A surviving shard with the wrong cardinality still fails loudly.
	ok[0] = true
	partial[0] = []float64{1}
	if _, _, err := MergeScoresPartial(len(nodes), subs, partial, ok); err == nil {
		t.Error("short surviving partial merged successfully")
	}
}

func TestScatterPropagatesErrors(t *testing.T) {
	sentinel := errors.New("shard down")
	err := Scatter(context.Background(), 8, func(i int) error {
		if i == 5 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("Scatter error = %v, want %v", err, sentinel)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Scatter(ctx, 4, func(int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Scatter error = %v", err)
	}
	// All shards visited on success.
	visited := make([]bool, 6)
	if err := Scatter(context.Background(), 6, func(i int) error { visited[i] = true; return nil }); err != nil {
		t.Fatal(err)
	}
	sort.Slice(visited, func(a, b int) bool { return !visited[a] && visited[b] })
	if !visited[0] {
		t.Errorf("not every shard visited: %v", visited)
	}
}
