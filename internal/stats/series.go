package stats

import (
	"fmt"
	"io"
	"sort"
)

// Series is a named error curve: one ErrAccum per evaluation point, used to
// assemble a panel of Figure 2 or Figure 3.  Points are keyed by the x value
// (neighborhood size or cardinality).
type Series struct {
	Name   string
	points map[float64]*ErrAccum
}

// NewSeries returns an empty series with the given name.
func NewSeries(name string) *Series {
	return &Series{Name: name, points: make(map[float64]*ErrAccum)}
}

// At returns the accumulator for x with the given truth, creating it on
// first use.  The truth must be consistent across calls for the same x.
func (s *Series) At(x, truth float64) *ErrAccum {
	if p, ok := s.points[x]; ok {
		return p
	}
	p := NewErrAccum(truth)
	s.points[x] = p
	return p
}

// Add records one estimate at x against truth.
func (s *Series) Add(x, truth, est float64) { s.At(x, truth).Add(est) }

// Xs returns the sorted evaluation points.
func (s *Series) Xs() []float64 {
	xs := make([]float64, 0, len(s.points))
	for x := range s.points {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	return xs
}

// Point returns the accumulator at x (nil if absent).
func (s *Series) Point(x float64) *ErrAccum { return s.points[x] }

// Merge folds another series (same name/points) into s.
func (s *Series) Merge(o *Series) {
	for x, p := range o.points {
		if mine, ok := s.points[x]; ok {
			mine.Merge(p)
		} else {
			cp := *p
			s.points[x] = &cp
		}
	}
}

// Panel is a collection of series over a shared x axis, i.e. one sub-plot of
// a paper figure.
type Panel struct {
	Title  string
	Series []*Series
}

// NewPanel returns an empty panel.
func NewPanel(title string) *Panel { return &Panel{Title: title} }

// AddSeries appends a series to the panel and returns it.
func (p *Panel) AddSeries(name string) *Series {
	s := NewSeries(name)
	p.Series = append(p.Series, s)
	return s
}

// Metric selects which error statistic a rendering reports.
type Metric int

// Metrics supported by Panel renderings.
const (
	NRMSE Metric = iota // sqrt(mean squared error)/truth
	MRE                 // mean absolute error/truth
	Bias                // mean signed error/truth
)

func (m Metric) String() string {
	switch m {
	case NRMSE:
		return "NRMSE"
	case MRE:
		return "MRE"
	case Bias:
		return "Bias"
	}
	return "?"
}

func (m Metric) of(e *ErrAccum) float64 {
	switch m {
	case NRMSE:
		return e.NRMSE()
	case MRE:
		return e.MRE()
	case Bias:
		return e.Bias()
	}
	return 0
}

// xsUnion returns the sorted union of x points across all series.
func (p *Panel) xsUnion() []float64 {
	set := make(map[float64]struct{})
	for _, s := range p.Series {
		for x := range s.points {
			set[x] = struct{}{}
		}
	}
	xs := make([]float64, 0, len(set))
	for x := range set {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	return xs
}

// WriteTSV renders the panel as a tab-separated table: one row per x point,
// one column per series, in the spirit of the gnuplot data behind the
// paper's figures.
func (p *Panel) WriteTSV(w io.Writer, m Metric) error {
	if _, err := fmt.Fprintf(w, "# %s (%s)\n", p.Title, m); err != nil {
		return err
	}
	if _, err := fmt.Fprint(w, "size"); err != nil {
		return err
	}
	for _, s := range p.Series {
		if _, err := fmt.Fprintf(w, "\t%s", s.Name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, x := range p.xsUnion() {
		if _, err := fmt.Fprintf(w, "%g", x); err != nil {
			return err
		}
		for _, s := range p.Series {
			if e := s.Point(x); e != nil {
				if _, err := fmt.Fprintf(w, "\t%.6f", m.of(e)); err != nil {
					return err
				}
			} else if _, err := fmt.Fprint(w, "\t"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
