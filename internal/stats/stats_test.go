package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHarmonicSmall(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{0, 0}, {-3, 0}, {1, 1}, {2, 1.5}, {3, 1.5 + 1.0/3},
		{4, 25.0 / 12}, {10, 2.9289682539682538},
	}
	for _, c := range cases {
		if got := Harmonic(c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Harmonic(%d) = %.15f, want %.15f", c.n, got, c.want)
		}
	}
}

func TestHarmonicAsymptoticContinuity(t *testing.T) {
	// The exact and asymptotic branches must agree around the switch point.
	exact := 0.0
	for i := 1; i <= 10000; i++ {
		exact += 1 / float64(i)
		if i >= 250 && i <= 1000 {
			if got := Harmonic(i); math.Abs(got-exact) > 1e-10 {
				t.Fatalf("Harmonic(%d) = %.14f, exact %.14f", i, got, exact)
			}
		}
	}
}

func TestHarmonicMonotone(t *testing.T) {
	if err := quick.Check(func(a uint16) bool {
		n := int(a)
		return Harmonic(n+1) > Harmonic(n)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestExpectedBottomKADSSize(t *testing.T) {
	// n <= k: all nodes included.
	if got := ExpectedBottomKADSSize(3, 5); got != 3 {
		t.Errorf("size(n=3,k=5) = %g, want 3", got)
	}
	// k=1: H_n.
	if got, want := ExpectedBottomKADSSize(100, 1), Harmonic(100); math.Abs(got-want) > 1e-12 {
		t.Errorf("size(n=100,k=1) = %g, want H_100 = %g", got, want)
	}
	// Approximation quality k(1+ln n-ln k) for n >> k.
	got := ExpectedBottomKADSSize(100000, 16)
	approx := 16 * (1 + math.Log(100000) - math.Log(16))
	if math.Abs(got-approx) > 0.6 {
		t.Errorf("size(1e5,16) = %g, approx %g: gap too large", got, approx)
	}
}

func TestExpectedKPartitionADSSize(t *testing.T) {
	if got := ExpectedKPartitionADSSize(0, 4); got != 0 {
		t.Errorf("size(0,4) = %g, want 0", got)
	}
	if got, want := ExpectedKPartitionADSSize(100, 1), Harmonic(100); got != want {
		t.Errorf("k=1 partition size = %g, want %g", got, want)
	}
	got := ExpectedKPartitionADSSize(64000, 64)
	want := 64 * Harmonic(1000)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("size(64000,64) = %g, want %g", got, want)
	}
}

func TestAccumBasics(t *testing.T) {
	var a Accum
	if a.Mean() != 0 || a.Var() != 0 || a.N() != 0 {
		t.Fatal("zero-value Accum not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d, want 8", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %g, want 5", a.Mean())
	}
	if math.Abs(a.Var()-4) > 1e-12 {
		t.Errorf("Var = %g, want 4", a.Var())
	}
	if math.Abs(a.Std()-2) > 1e-12 {
		t.Errorf("Std = %g, want 2", a.Std())
	}
	if math.Abs(a.CV()-0.4) > 1e-12 {
		t.Errorf("CV = %g, want 0.4", a.CV())
	}
	if math.Abs(a.SampleVar()-32.0/7) > 1e-12 {
		t.Errorf("SampleVar = %g, want %g", a.SampleVar(), 32.0/7)
	}
}

func TestAccumMergeMatchesSequential(t *testing.T) {
	if err := quick.Check(func(xs []float64, split uint8) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				xs[i] = float64(i)
			}
		}
		var all, a, b Accum
		cut := 0
		if len(xs) > 0 {
			cut = int(split) % (len(xs) + 1)
		}
		for i, x := range xs {
			all.Add(x)
			if i < cut {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		if a.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		return math.Abs(a.Mean()-all.Mean()) < 1e-9*(1+math.Abs(all.Mean())) &&
			math.Abs(a.Var()-all.Var()) < 1e-6*(1+all.Var())
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestErrAccum(t *testing.T) {
	e := NewErrAccum(10)
	e.Add(8)  // err -2
	e.Add(12) // err +2
	e.Add(10) // err 0
	if e.N() != 3 {
		t.Errorf("N = %d", e.N())
	}
	if got := e.Bias(); math.Abs(got) > 1e-15 {
		t.Errorf("Bias = %g, want 0", got)
	}
	wantNRMSE := math.Sqrt(8.0/3) / 10
	if got := e.NRMSE(); math.Abs(got-wantNRMSE) > 1e-12 {
		t.Errorf("NRMSE = %g, want %g", got, wantNRMSE)
	}
	wantMRE := (4.0 / 3) / 10
	if got := e.MRE(); math.Abs(got-wantMRE) > 1e-12 {
		t.Errorf("MRE = %g, want %g", got, wantMRE)
	}
}

func TestErrAccumEmptyAndZeroTruth(t *testing.T) {
	e := NewErrAccum(0)
	e.Add(5)
	if e.NRMSE() != 0 || e.MRE() != 0 || e.Bias() != 0 {
		t.Error("zero-truth accumulator should report 0 metrics")
	}
	f := NewErrAccum(3)
	if f.NRMSE() != 0 || f.MRE() != 0 {
		t.Error("empty accumulator should report 0 metrics")
	}
}

func TestErrAccumMerge(t *testing.T) {
	a, b, all := NewErrAccum(5), NewErrAccum(5), NewErrAccum(5)
	for i, x := range []float64{4, 5, 6, 7, 3, 5.5} {
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if math.Abs(a.NRMSE()-all.NRMSE()) > 1e-12 || math.Abs(a.MRE()-all.MRE()) > 1e-12 {
		t.Error("merged ErrAccum differs from sequential")
	}
}

func TestSeriesAndPanel(t *testing.T) {
	p := NewPanel("test panel")
	s1 := p.AddSeries("alpha")
	s2 := p.AddSeries("beta")
	s1.Add(1, 10, 9)
	s1.Add(1, 10, 11)
	s1.Add(2, 20, 22)
	s2.Add(2, 20, 18)
	xs := s1.Xs()
	if len(xs) != 2 || xs[0] != 1 || xs[1] != 2 {
		t.Fatalf("Xs = %v", xs)
	}
	if got := s1.Point(1).NRMSE(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("NRMSE at 1 = %g, want 0.1", got)
	}

	var sb strings.Builder
	if err := p.WriteTSV(&sb, NRMSE); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"alpha", "beta", "test panel", "NRMSE", "0.100000"} {
		if !strings.Contains(out, want) {
			t.Errorf("TSV output missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesMerge(t *testing.T) {
	a, b := NewSeries("x"), NewSeries("x")
	a.Add(1, 10, 9)
	b.Add(1, 10, 11)
	b.Add(2, 20, 20)
	a.Merge(b)
	if a.Point(1).N() != 2 {
		t.Errorf("merged point n = %d, want 2", a.Point(1).N())
	}
	if a.Point(2) == nil || a.Point(2).N() != 1 {
		t.Error("merge did not copy new point")
	}
}

func TestMetricString(t *testing.T) {
	if NRMSE.String() != "NRMSE" || MRE.String() != "MRE" || Bias.String() != "Bias" {
		t.Error("Metric.String mismatch")
	}
	if Metric(99).String() != "?" {
		t.Error("unknown metric should stringify to ?")
	}
}
