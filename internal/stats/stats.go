// Package stats provides the numerical helpers shared by the estimators and
// the experiment harness: harmonic numbers (the expected-size formulas of
// Lemma 2.2), streaming moment accumulators, and per-point error
// accumulators for the NRMSE / MRE curves of Figures 2 and 3.
package stats

import "math"

// EulerGamma is the Euler–Mascheroni constant.
const EulerGamma = 0.57721566490153286060651209008240243

// Harmonic returns the n-th harmonic number H_n = sum_{i=1..n} 1/i.
// For n <= 256 the sum is computed exactly; beyond that the standard
// asymptotic expansion is used, which is accurate to well below 1e-12.
func Harmonic(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n <= 256 {
		h := 0.0
		for i := n; i >= 1; i-- {
			h += 1 / float64(i)
		}
		return h
	}
	x := float64(n)
	return math.Log(x) + EulerGamma + 1/(2*x) - 1/(12*x*x) + 1/(120*x*x*x*x)
}

// ExpectedBottomKADSSize returns k + k(H_n - H_k), the expected number of
// entries in a bottom-k ADS of a node with n reachable nodes (Lemma 2.2).
// For n <= k every node is included and the size is exactly n.
func ExpectedBottomKADSSize(n, k int) float64 {
	if n <= k {
		return float64(n)
	}
	return float64(k) + float64(k)*(Harmonic(n)-Harmonic(k))
}

// ExpectedKPartitionADSSize returns k*H_{ceil(n/k)}, the Lemma 2.2 expected
// size of a k-partition ADS (approximately k(ln n - ln k) for n >> k).
func ExpectedKPartitionADSSize(n, k int) float64 {
	if n <= 0 {
		return 0
	}
	if k <= 1 {
		return Harmonic(n)
	}
	per := (n + k - 1) / k
	return float64(k) * Harmonic(per)
}

// Accum accumulates streaming mean and variance (Welford's algorithm).
type Accum struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (a *Accum) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N reports the number of samples.
func (a *Accum) N() int64 { return a.n }

// Mean reports the sample mean (0 when empty).
func (a *Accum) Mean() float64 { return a.mean }

// Var reports the population variance (0 for fewer than 2 samples).
func (a *Accum) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// SampleVar reports the unbiased sample variance.
func (a *Accum) SampleVar() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std reports the population standard deviation.
func (a *Accum) Std() float64 { return math.Sqrt(a.Var()) }

// CV reports the coefficient of variation std/mean (0 if the mean is 0).
func (a *Accum) CV() float64 {
	if a.mean == 0 {
		return 0
	}
	return a.Std() / math.Abs(a.mean)
}

// Merge folds another accumulator into a (parallel Welford merge).
func (a *Accum) Merge(b *Accum) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.mean += d * float64(b.n) / float64(n)
	a.n = n
}

// ErrAccum accumulates the error of an estimator against a known truth at a
// single evaluation point.  The paper's quality measures (Section 5.5) are
//
//	NRMSE = sqrt(E[(n-n̂)^2]) / n   (equals the CV when unbiased)
//	MRE   = E[|n-n̂|] / n
type ErrAccum struct {
	truth  float64
	n      int64
	sumErr float64 // sum of (est - truth), for bias
	sumSq  float64 // sum of (est - truth)^2
	sumAbs float64 // sum of |est - truth|
}

// NewErrAccum returns an accumulator for the given truth value.
func NewErrAccum(truth float64) *ErrAccum { return &ErrAccum{truth: truth} }

// Add folds one estimate into the accumulator.
func (e *ErrAccum) Add(est float64) {
	d := est - e.truth
	e.n++
	e.sumErr += d
	e.sumSq += d * d
	e.sumAbs += math.Abs(d)
}

// N reports the number of estimates folded in.
func (e *ErrAccum) N() int64 { return e.n }

// Truth reports the ground-truth value.
func (e *ErrAccum) Truth() float64 { return e.truth }

// NRMSE reports sqrt(mean squared error)/truth.
func (e *ErrAccum) NRMSE() float64 {
	if e.n == 0 || e.truth == 0 {
		return 0
	}
	return math.Sqrt(e.sumSq/float64(e.n)) / e.truth
}

// MRE reports mean(|err|)/truth.
func (e *ErrAccum) MRE() float64 {
	if e.n == 0 || e.truth == 0 {
		return 0
	}
	return e.sumAbs / float64(e.n) / e.truth
}

// Bias reports mean(est-truth)/truth, the normalized bias.
func (e *ErrAccum) Bias() float64 {
	if e.n == 0 || e.truth == 0 {
		return 0
	}
	return e.sumErr / float64(e.n) / e.truth
}

// Merge folds another accumulator (for the same truth) into e.
func (e *ErrAccum) Merge(o *ErrAccum) {
	e.n += o.n
	e.sumErr += o.sumErr
	e.sumSq += o.sumSq
	e.sumAbs += o.sumAbs
}
