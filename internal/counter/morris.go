// Package counter implements approximate (non-distinct) counters in the
// style of Morris (1977) and Flajolet (1985), extended per Section 7 of
// the paper with arbitrary positive weighted increments and counter
// merging via inverse-probability estimation.
//
// A Morris counter represents n ≈ b^x - 1 using only the small integer x
// (O(log log n) bits).  The base b > 1 trades representation size for
// accuracy: the CV of unit-increment counting is ~ sqrt((b-1)/2), so
// b = 1 + 1/2^j gives relative error ~ 1/2^(j/2 + 1/2) with j extra bits.
// The paper uses these counters as the auxiliary HIP register of the
// distinct counters of Section 6, where updates are weighted (adjusted
// weights) rather than unit increments.
package counter

import (
	"fmt"
	"math"

	"adsketch/internal/rank"
)

// Morris is an approximate counter with base b.  The zero value is not
// usable; construct with New.
type Morris struct {
	b   float64
	x   int
	rng *rank.RNG
}

// New returns a zeroed Morris counter with base b > 1 whose probabilistic
// rounding is driven by the given seed.
func New(b float64, seed uint64) *Morris {
	if !(b > 1) {
		panic(fmt.Sprintf("counter: base %g must be > 1", b))
	}
	return &Morris{b: b, rng: rank.NewRNG(seed)}
}

// Base returns the counter base.
func (m *Morris) Base() float64 { return m.b }

// X returns the stored exponent (the value that would actually be kept in
// a compact register).
func (m *Morris) X() int { return m.x }

// Estimate returns the unbiased estimate b^x - 1 of the accumulated total.
func (m *Morris) Estimate() float64 {
	return math.Pow(m.b, float64(m.x)) - 1
}

// Increment adds 1 (the classic Morris update): the exponent grows by one
// with probability 1/(b^x (b-1)), the inverse of the estimate increase.
func (m *Morris) Increment() { m.Add(1) }

// Add adds an arbitrary positive amount Y (Section 7): first the exponent
// grows by the largest i whose estimate increase b^x(b^i - 1) is at most
// Y; the leftover Δ is then added stochastically, growing the exponent
// once more with probability Δ / (b^x (b-1)).  The expectation of the
// estimate increase equals Y exactly, so the counter stays unbiased under
// any mix of weighted updates.
func (m *Morris) Add(y float64) {
	if y < 0 {
		panic(fmt.Sprintf("counter: negative increment %g", y))
	}
	if y == 0 {
		return
	}
	bx := math.Pow(m.b, float64(m.x))
	i := int(math.Floor(math.Log(y/bx+1) / math.Log(m.b)))
	// Guard against floating error pushing the deterministic step past y.
	for i > 0 && bx*(math.Pow(m.b, float64(i))-1) > y {
		i--
	}
	if i > 0 {
		m.x += i
		delta := y - bx*(math.Pow(m.b, float64(i))-1)
		if delta < 0 {
			delta = 0
		}
		bx = math.Pow(m.b, float64(m.x))
		y = delta
	}
	// Stochastic rounding of the leftover.
	p := y / (bx * (m.b - 1))
	if p > 0 && m.rng.Float64() < p {
		m.x++
	}
}

// Merge folds another counter into m: per Section 7, merging is the same
// as adding the other counter's estimate.
func (m *Morris) Merge(o *Morris) {
	if o.b != m.b {
		panic("counter: merging counters with different bases")
	}
	m.Add(o.Estimate())
}

// Bits returns the number of bits needed to store the current exponent,
// the counter's actual storage cost.
func (m *Morris) Bits() int {
	if m.x == 0 {
		return 1
	}
	return int(math.Floor(math.Log2(float64(m.x)))) + 1
}
