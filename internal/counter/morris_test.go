package counter

import (
	"math"
	"testing"

	"adsketch/internal/stats"
)

func TestMorrisUnitIncrementsUnbiased(t *testing.T) {
	const n, runs = 10000, 800
	for _, b := range []float64{2, 1.5, 1.0625} {
		acc := stats.NewErrAccum(n)
		for run := 0; run < runs; run++ {
			m := New(b, uint64(run)*6700417+1)
			for i := 0; i < n; i++ {
				m.Increment()
			}
			acc.Add(m.Estimate())
		}
		// The estimator is unbiased; tolerate 4 standard errors of the
		// run mean (the per-run CV is ~sqrt((b-1)/2), large for big b).
		cv := math.Sqrt((b - 1) / 2)
		tol := 4*cv/math.Sqrt(runs) + 0.005
		if bias := acc.Bias(); math.Abs(bias) > tol {
			t.Errorf("base %g: bias = %+.3f (tolerance %.3f)", b, bias, tol)
		}
		if acc.NRMSE() > 1.5*cv+0.02 {
			t.Errorf("base %g: NRMSE %g, want ~%g", b, acc.NRMSE(), cv)
		}
	}
}

func TestMorrisWeightedAddsUnbiased(t *testing.T) {
	// Weighted updates of varying magnitude; total is fixed.
	const runs = 400
	weights := []float64{1, 3.5, 0.25, 120, 7, 0.01, 42, 1000, 5.5}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	acc := stats.NewErrAccum(total)
	for run := 0; run < runs; run++ {
		m := New(1.5, uint64(run)*31337+7)
		for _, w := range weights {
			m.Add(w)
		}
		acc.Add(m.Estimate())
	}
	if bias := acc.Bias(); math.Abs(bias) > 0.06 {
		t.Errorf("bias = %+.3f", bias)
	}
}

func TestMorrisLargeSingleAddNearExact(t *testing.T) {
	// A single large add is mostly deterministic: only the leftover below
	// one register step is stochastic.
	m := New(2, 3)
	m.Add(1 << 20)
	got := m.Estimate()
	if got < (1<<20)-1 || got > (1<<21) {
		t.Errorf("estimate %g for single add of 2^20", got)
	}
}

func TestMorrisMergeUnbiased(t *testing.T) {
	const runs = 500
	acc := stats.NewErrAccum(3000)
	for run := 0; run < runs; run++ {
		a := New(1.25, uint64(run)*97+1)
		b := New(1.25, uint64(run)*89+2)
		for i := 0; i < 1000; i++ {
			a.Increment()
		}
		for i := 0; i < 2000; i++ {
			b.Increment()
		}
		a.Merge(b)
		acc.Add(a.Estimate())
	}
	if bias := acc.Bias(); math.Abs(bias) > 0.05 {
		t.Errorf("merge bias = %+.3f", bias)
	}
}

func TestMorrisCompactness(t *testing.T) {
	// Counting to a million must use O(log log n) bits of register.
	m := New(2, 5)
	for i := 0; i < 1000000; i++ {
		m.Increment()
	}
	if m.X() > 40 {
		t.Errorf("exponent %d way above log2(1e6)", m.X())
	}
	if m.Bits() > 6 {
		t.Errorf("register bits = %d, want <= 6", m.Bits())
	}
	zero := New(2, 1)
	if zero.Bits() != 1 {
		t.Errorf("zero counter bits = %d", zero.Bits())
	}
	if zero.Estimate() != 0 {
		t.Errorf("zero counter estimate = %g", zero.Estimate())
	}
	if zero.Base() != 2 {
		t.Error("Base accessor")
	}
}

func TestMorrisSmallBaseMoreAccurate(t *testing.T) {
	const n, runs = 5000, 300
	nrmse := func(b float64) float64 {
		acc := stats.NewErrAccum(n)
		for run := 0; run < runs; run++ {
			m := New(b, uint64(run)*193939+11)
			for i := 0; i < n; i++ {
				m.Increment()
			}
			acc.Add(m.Estimate())
		}
		return acc.NRMSE()
	}
	if e16, e2 := nrmse(1.0625), nrmse(2); e16 >= e2 {
		t.Errorf("base 1.0625 NRMSE %g not below base 2 %g", e16, e2)
	}
}

func TestMorrisAddZeroNoop(t *testing.T) {
	m := New(2, 1)
	m.Add(0)
	if m.X() != 0 {
		t.Error("Add(0) changed counter")
	}
}

func TestMorrisPanics(t *testing.T) {
	check := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	check("base 1", func() { New(1, 1) })
	check("negative add", func() { New(2, 1).Add(-1) })
	check("mismatched merge", func() { New(2, 1).Merge(New(3, 2)) })
}

func TestMorrisHIPRegisterUseCase(t *testing.T) {
	// Section 7: accumulating HIP adjusted weights (increasing, ~1/k of
	// the total each) with b = 1+1/k keeps the error near (b-1).
	const k = 16
	const runs = 300
	b := 1 + 1.0/k
	// Simulate HIP-like increments: weight i/k at step i.
	var weights []float64
	total := 0.0
	for i := 1; i <= 400; i++ {
		w := float64(i) / k
		weights = append(weights, w)
		total += w
	}
	acc := stats.NewErrAccum(total)
	for run := 0; run < runs; run++ {
		m := New(b, uint64(run)*277+3)
		for _, w := range weights {
			m.Add(w)
		}
		acc.Add(m.Estimate())
	}
	if bias := acc.Bias(); math.Abs(bias) > 0.05 {
		t.Errorf("bias = %+.3f", bias)
	}
	if acc.NRMSE() > 3*(b-1) {
		t.Errorf("NRMSE %g far above ~(b-1)=%g", acc.NRMSE(), b-1)
	}
}
