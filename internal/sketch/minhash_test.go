package sketch

import (
	"math"
	"testing"
	"testing/quick"

	"adsketch/internal/rank"
	"adsketch/internal/stats"
)

func TestFlavorString(t *testing.T) {
	if BottomK.String() != "bottom-k" || KMins.String() != "k-mins" || KPartition.String() != "k-partition" {
		t.Error("flavor names wrong")
	}
	if Flavor(9).String() != "Flavor(9)" {
		t.Error("unknown flavor formatting")
	}
}

func TestBottomKAddKeepsKSmallest(t *testing.T) {
	s := NewBottomK(3)
	ranks := []float64{0.9, 0.5, 0.7, 0.3, 0.8, 0.1}
	for i, r := range ranks {
		s.Add(int64(i), r)
	}
	es := s.Entries()
	if len(es) != 3 {
		t.Fatalf("len = %d, want 3", len(es))
	}
	want := []float64{0.1, 0.3, 0.5}
	for i, e := range es {
		if e.Rank != want[i] {
			t.Errorf("entry %d rank = %g, want %g", i, e.Rank, want[i])
		}
	}
	if s.Threshold() != 0.5 {
		t.Errorf("threshold = %g, want 0.5", s.Threshold())
	}
}

func TestBottomKAddReportsModification(t *testing.T) {
	s := NewBottomK(2)
	if !s.Add(1, 0.5) || !s.Add(2, 0.3) {
		t.Fatal("initial adds should modify")
	}
	if s.Add(3, 0.9) {
		t.Error("rank above threshold modified sketch")
	}
	if !s.Add(4, 0.1) {
		t.Error("rank below threshold did not modify")
	}
	if s.Add(4, 0.1) {
		t.Error("duplicate add modified sketch")
	}
}

func TestBottomKThresholdUnderfull(t *testing.T) {
	s := NewBottomK(5)
	s.Add(1, 0.4)
	if s.Threshold() != 1 {
		t.Errorf("underfull threshold = %g, want 1", s.Threshold())
	}
	if s.Estimate() != 1 {
		t.Errorf("underfull estimate = %g, want exact count 1", s.Estimate())
	}
}

func TestBottomKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	NewBottomK(0)
}

func TestBottomKMergeEqualsUnion(t *testing.T) {
	src := rank.NewSource(1)
	a, b, u := NewBottomK(8), NewBottomK(8), NewBottomK(8)
	for id := int64(0); id < 100; id++ {
		a.AddFrom(src, id)
		u.AddFrom(src, id)
	}
	for id := int64(50); id < 200; id++ {
		b.AddFrom(src, id)
		u.AddFrom(src, id)
	}
	a.Merge(b)
	if a.Len() != u.Len() {
		t.Fatalf("merged len %d, union len %d", a.Len(), u.Len())
	}
	for i, e := range a.Entries() {
		if u.Entries()[i] != e {
			t.Fatalf("merged entry %d = %+v, union %+v", i, e, u.Entries()[i])
		}
	}
}

func TestBottomKMergePanicsOnMismatchedK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched merge did not panic")
		}
	}()
	NewBottomK(2).Merge(NewBottomK(3))
}

func TestBottomKInsertionProbability(t *testing.T) {
	// The i-th distinct element (i>k) modifies the sketch with probability
	// k/i; total modifications over n elements ~ k + k(H_n - H_k)
	// (Lemma 2.2).  Check the mean over repeats.
	const k, n, runs = 4, 500, 300
	var total float64
	for run := 0; run < runs; run++ {
		src := rank.NewSource(uint64(run) + 10)
		s := NewBottomK(k)
		for id := int64(0); id < n; id++ {
			if s.AddFrom(src, id) {
				total++
			}
		}
	}
	got := total / runs
	want := stats.ExpectedBottomKADSSize(n, k)
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("mean modifications = %g, want ~%g", got, want)
	}
}

func TestKMinsAddTracksMinimum(t *testing.T) {
	src := rank.NewSource(5)
	s := NewKMins(4)
	for id := int64(0); id < 50; id++ {
		s.AddFrom(src, id)
	}
	for i := 0; i < 4; i++ {
		want := 1.0
		var wantID int64 = -1
		for id := int64(0); id < 50; id++ {
			if r := src.RankAt(i, id); r < want {
				want = r
				wantID = id
			}
		}
		if s.Mins()[i] != want || s.MinIDs()[i] != wantID {
			t.Errorf("perm %d: min=(%g,%d), want (%g,%d)", i, s.Mins()[i], s.MinIDs()[i], want, wantID)
		}
	}
}

func TestKMinsMerge(t *testing.T) {
	src := rank.NewSource(6)
	a, b, u := NewKMins(8), NewKMins(8), NewKMins(8)
	for id := int64(0); id < 60; id++ {
		a.AddFrom(src, id)
		u.AddFrom(src, id)
	}
	for id := int64(60); id < 120; id++ {
		b.AddFrom(src, id)
		u.AddFrom(src, id)
	}
	a.Merge(b)
	for i := 0; i < 8; i++ {
		if a.Mins()[i] != u.Mins()[i] {
			t.Fatalf("perm %d merged min %g != union %g", i, a.Mins()[i], u.Mins()[i])
		}
	}
}

func TestKPartitionAdd(t *testing.T) {
	src := rank.NewSource(7)
	s := NewKPartition(8)
	for id := int64(0); id < 200; id++ {
		s.AddFrom(src, id)
	}
	// Recompute expected bucket minima by brute force.
	want := make([]float64, 8)
	for i := range want {
		want[i] = 1
	}
	for id := int64(0); id < 200; id++ {
		b := src.Bucket(id, 8)
		if r := src.Rank(id); r < want[b] {
			want[b] = r
		}
	}
	for i := range want {
		if s.Mins()[i] != want[i] {
			t.Errorf("bucket %d min = %g, want %g", i, s.Mins()[i], want[i])
		}
	}
}

func TestKPartitionMerge(t *testing.T) {
	src := rank.NewSource(8)
	a, b, u := NewKPartition(4), NewKPartition(4), NewKPartition(4)
	for id := int64(0); id < 30; id++ {
		a.AddFrom(src, id)
		u.AddFrom(src, id)
	}
	for id := int64(30); id < 90; id++ {
		b.AddFrom(src, id)
		u.AddFrom(src, id)
	}
	a.Merge(b)
	for i := 0; i < 4; i++ {
		if a.Mins()[i] != u.Mins()[i] {
			t.Fatalf("bucket %d merged %g != union %g", i, a.Mins()[i], u.Mins()[i])
		}
	}
}

// estimatorStats runs the estimator over many seeds at cardinality n and
// returns mean and NRMSE.
func estimatorStats(t *testing.T, n, runs int, estimate func(src rank.Source) float64) (mean, nrmse float64) {
	t.Helper()
	acc := stats.NewErrAccum(float64(n))
	var sum float64
	for run := 0; run < runs; run++ {
		src := rank.NewSource(uint64(run)*2654435761 + 17)
		est := estimate(src)
		acc.Add(est)
		sum += est
	}
	return sum / float64(runs), acc.NRMSE()
}

func TestBottomKEstimateUnbiasedAndCV(t *testing.T) {
	const k, n, runs = 16, 2000, 400
	mean, nrmse := estimatorStats(t, n, runs, func(src rank.Source) float64 {
		s := NewBottomK(k)
		for id := int64(0); id < n; id++ {
			s.AddFrom(src, id)
		}
		return s.Estimate()
	})
	if math.Abs(mean-n)/n > 0.05 {
		t.Errorf("bottom-k mean = %g, want ~%d (bias too large)", mean, n)
	}
	// CV should be near (and below ~1.3x of) the 1/sqrt(k-2) bound.
	bound := BasicCV(k)
	if nrmse > 1.3*bound {
		t.Errorf("bottom-k NRMSE = %g, above bound %g", nrmse, bound)
	}
	if nrmse < 0.5*bound {
		t.Errorf("bottom-k NRMSE = %g suspiciously below theory %g", nrmse, bound)
	}
}

func TestBottomKEstimateExactSmall(t *testing.T) {
	src := rank.NewSource(3)
	s := NewBottomK(10)
	for id := int64(0); id < 7; id++ {
		s.AddFrom(src, id)
	}
	if s.Estimate() != 7 {
		t.Errorf("estimate = %g, want exactly 7", s.Estimate())
	}
}

func TestKMinsEstimateUnbiasedAndCV(t *testing.T) {
	const k, n, runs = 16, 2000, 400
	mean, nrmse := estimatorStats(t, n, runs, func(src rank.Source) float64 {
		s := NewKMins(k)
		for id := int64(0); id < n; id++ {
			s.AddFrom(src, id)
		}
		return s.Estimate()
	})
	if math.Abs(mean-n)/n > 0.05 {
		t.Errorf("k-mins mean = %g, want ~%d", mean, n)
	}
	want := BasicCV(k)
	if nrmse > 1.35*want || nrmse < 0.65*want {
		t.Errorf("k-mins NRMSE = %g, want ~%g", nrmse, want)
	}
}

func TestKPartitionEstimateLargeN(t *testing.T) {
	const k, n, runs = 16, 4000, 300
	mean, nrmse := estimatorStats(t, n, runs, func(src rank.Source) float64 {
		s := NewKPartition(k)
		for id := int64(0); id < n; id++ {
			s.AddFrom(src, id)
		}
		return s.Estimate()
	})
	if math.Abs(mean-n)/n > 0.08 {
		t.Errorf("k-partition mean = %g, want ~%d", mean, n)
	}
	// For n >> k behaves like the other flavors.
	if nrmse > 1.5*BasicCV(k) {
		t.Errorf("k-partition NRMSE = %g, want ~%g", nrmse, BasicCV(k))
	}
}

func TestKPartitionBiasedDownSmallN(t *testing.T) {
	// Section 4.3: for n <= 2k the k-partition estimator is noticeably
	// biased down (empty buckets).
	const k, n, runs = 16, 8, 500
	mean, _ := estimatorStats(t, n, runs, func(src rank.Source) float64 {
		s := NewKPartition(k)
		for id := int64(0); id < n; id++ {
			s.AddFrom(src, id)
		}
		return s.Estimate()
	})
	if mean >= float64(n) {
		t.Errorf("k-partition at n=%d should be biased down, mean = %g", n, mean)
	}
}

func TestKMinsEstimateFunctionEdgeCases(t *testing.T) {
	if got := KMinsEstimate([]float64{0, 0, 0}); got != 0 {
		t.Errorf("all-zero mins estimate = %g, want 0", got)
	}
	// k=1 MLE path.
	got := KMinsEstimate([]float64{1 - math.Exp(-0.25)})
	if math.Abs(got-4) > 1e-9 {
		t.Errorf("k=1 estimate = %g, want 4", got)
	}
}

func TestBottomKEstimateFunction(t *testing.T) {
	if !math.IsInf(BottomKEstimate(4, 0), 1) {
		t.Error("tau=0 should give +Inf")
	}
	if got := BottomKEstimate(5, 0.5); got != 8 {
		t.Errorf("BottomKEstimate(5,0.5) = %g, want 8", got)
	}
}

func TestKPartitionEstimateFunction(t *testing.T) {
	if got := KPartitionEstimate([]float64{1, 1, 1}); got != 0 {
		t.Error("all-empty should estimate 0")
	}
	if got := KPartitionEstimate([]float64{0.3, 1, 1}); got != 0 {
		t.Error("single bucket should estimate 0 (paper: k'=1 gives 0)")
	}
}

func TestReferenceCurves(t *testing.T) {
	if got := BasicCV(6); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("BasicCV(6) = %g, want 0.5", got)
	}
	if !math.IsInf(BasicCV(2), 1) {
		t.Error("BasicCV(2) should be +Inf")
	}
	if got := HIPCV(3); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("HIPCV(3) = %g, want 0.5", got)
	}
	if !math.IsInf(HIPCV(1), 1) {
		t.Error("HIPCV(1) should be +Inf")
	}
	// HIP bound is a factor sqrt(2) below basic asymptotically.
	ratio := BasicCV(100) / HIPCV(101)
	if math.Abs(ratio-math.Sqrt2) > 0.02 {
		t.Errorf("basic/HIP CV ratio = %g, want ~sqrt(2)", ratio)
	}
	if got := HIPBaseBCV(2, 1); math.Abs(got-HIPCV(2)) > 1e-12 {
		t.Error("HIPBaseBCV(b=1) should equal HIPCV")
	}
	if math.Abs(HLLCV(16)-0.27) > 0.005 {
		t.Errorf("HLLCV(16) = %g", HLLCV(16))
	}
	if math.Abs(HIPOnHLLCV(16)-0.2165) > 0.001 {
		t.Errorf("HIPOnHLLCV(16) = %g", HIPOnHLLCV(16))
	}
	if !math.IsInf(BasicMRE(2), 1) || !math.IsInf(HIPMRE(1), 1) || !math.IsInf(HIPBaseBCV(1, 2), 1) {
		t.Error("degenerate k should give +Inf reference curves")
	}
	if math.Abs(BasicMRE(10)-math.Sqrt(2/(math.Pi*8))) > 1e-12 {
		t.Error("BasicMRE(10) formula wrong")
	}
	if math.Abs(HIPMRE(10)-math.Sqrt(1/(math.Pi*9))) > 1e-12 {
		t.Error("HIPMRE(10) formula wrong")
	}
}

func TestBottomKPropertySmallestRanksKept(t *testing.T) {
	// Property: after adding any set of distinct elements, the sketch holds
	// exactly the k smallest ranks.
	if err := quick.Check(func(seed uint64, nRaw uint16) bool {
		n := int(nRaw)%300 + 1
		const k = 5
		src := rank.NewSource(seed)
		s := NewBottomK(k)
		all := make([]float64, 0, n)
		for id := int64(0); id < int64(n); id++ {
			s.AddFrom(src, id)
			all = append(all, src.Rank(id))
		}
		// Find k smallest by sorting a copy.
		sorted := append([]float64(nil), all...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		m := k
		if n < k {
			m = n
		}
		for i := 0; i < m; i++ {
			if s.Entries()[i].Rank != sorted[i] {
				return false
			}
		}
		return s.Len() == m
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestJaccardIdenticalAndDisjoint(t *testing.T) {
	src := rank.NewSource(9)
	a, b := NewBottomK(16), NewBottomK(16)
	for id := int64(0); id < 100; id++ {
		a.AddFrom(src, id)
		b.AddFrom(src, id)
	}
	if got := Jaccard(a, b); got != 1 {
		t.Errorf("identical sets Jaccard = %g, want 1", got)
	}
	c := NewBottomK(16)
	for id := int64(1000); id < 1100; id++ {
		c.AddFrom(src, id)
	}
	if got := Jaccard(a, c); got != 0 {
		t.Errorf("disjoint sets Jaccard = %g, want 0", got)
	}
	empty := NewBottomK(16)
	if got := Jaccard(empty, NewBottomK(16)); got != 0 {
		t.Errorf("empty Jaccard = %g, want 0", got)
	}
}

func TestJaccardHalfOverlap(t *testing.T) {
	// |A|=|B|=1000 with 500 shared: J = 500/1500 = 1/3.
	var acc stats.Accum
	for run := 0; run < 60; run++ {
		src := rank.NewSource(uint64(run) + 100)
		a, b := NewBottomK(64), NewBottomK(64)
		for id := int64(0); id < 1000; id++ {
			a.AddFrom(src, id)
		}
		for id := int64(500); id < 1500; id++ {
			b.AddFrom(src, id)
		}
		acc.Add(Jaccard(a, b))
	}
	if math.Abs(acc.Mean()-1.0/3) > 0.05 {
		t.Errorf("mean Jaccard = %g, want ~1/3", acc.Mean())
	}
}

func TestUnionAndIntersectionEstimate(t *testing.T) {
	var un, in stats.Accum
	for run := 0; run < 60; run++ {
		src := rank.NewSource(uint64(run) + 200)
		a, b := NewBottomK(64), NewBottomK(64)
		for id := int64(0); id < 1000; id++ {
			a.AddFrom(src, id)
		}
		for id := int64(500); id < 1500; id++ {
			b.AddFrom(src, id)
		}
		un.Add(UnionEstimate(a, b))
		in.Add(IntersectionEstimate(a, b))
	}
	if math.Abs(un.Mean()-1500)/1500 > 0.08 {
		t.Errorf("union estimate mean = %g, want ~1500", un.Mean())
	}
	if math.Abs(in.Mean()-500)/500 > 0.15 {
		t.Errorf("intersection estimate mean = %g, want ~500", in.Mean())
	}
}

func TestJaccardPanicsOnMismatchedK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Jaccard did not panic")
		}
	}()
	Jaccard(NewBottomK(2), NewBottomK(4))
}
