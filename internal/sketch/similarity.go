package sketch

// Similarity estimation from coordinated bottom-k sketches (the application
// that coordination enables, Section 1 and [Cohen et al. 2013]).  Because
// sketches of different sets share one permutation, the bottom-k sketch of
// a union is computable from the two sketches, and the fraction of the
// union's low-rank sample that lands in both sets estimates the Jaccard
// coefficient.

// Jaccard estimates |A ∩ B| / |A ∪ B| from two coordinated bottom-k
// sketches.  It uses the k smallest ranks of the union; each is a uniform
// sample of the union and is a member of the intersection exactly when it
// appears in both sketches.
func Jaccard(a, b *BottomKSketch) float64 {
	if a.K() != b.K() {
		panic("sketch: Jaccard over sketches with different k")
	}
	union := a.Clone()
	union.Merge(b)
	if union.Len() == 0 {
		return 0
	}
	inA := make(map[int64]bool, a.Len())
	for _, e := range a.Entries() {
		inA[e.ID] = true
	}
	inB := make(map[int64]bool, b.Len())
	for _, e := range b.Entries() {
		inB[e.ID] = true
	}
	both := 0
	for _, e := range union.Entries() {
		if inA[e.ID] && inB[e.ID] {
			both++
		}
	}
	return float64(both) / float64(union.Len())
}

// UnionEstimate estimates |A ∪ B| from two coordinated bottom-k sketches by
// applying the basic bottom-k estimator to the merged sketch.
func UnionEstimate(a, b *BottomKSketch) float64 {
	union := a.Clone()
	union.Merge(b)
	return union.Estimate()
}

// IntersectionEstimate estimates |A ∩ B| as Jaccard x UnionEstimate.
func IntersectionEstimate(a, b *BottomKSketch) float64 {
	return Jaccard(a, b) * UnionEstimate(a, b)
}
