package sketch

import "math"

// Basic cardinality estimators of Section 4 as standalone functions over
// rank values, so they can be applied both to MinHash sketches and to the
// per-distance MinHash views extracted from an All-Distances Sketch.

// KMinsEstimate returns the Section 4.1 estimator (k-1)/sum(-ln(1-x_i))
// over the k per-permutation minimum ranks (1 for an empty permutation).
// Unbiased for k > 1; CV = 1/sqrt(k-2) for k > 2.
func KMinsEstimate(mins []float64) float64 {
	k := len(mins)
	sum := 0.0
	for _, x := range mins {
		sum += -math.Log1p(-x)
	}
	if sum == 0 {
		return 0
	}
	if k == 1 {
		// MLE; biased, provided for completeness.
		return 1 / sum
	}
	return float64(k-1) / sum
}

// BottomKEstimate returns the Section 4.2 estimator given the number of
// elements seen (or stored, if that is all that is known) and the k-th
// smallest rank tau.  When fewer than k elements exist the count itself is
// exact and should be returned by the caller; this function implements the
// saturated case (k-1)/tau.
func BottomKEstimate(k int, tau float64) float64 {
	if tau <= 0 {
		return math.Inf(1)
	}
	return float64(k-1) / tau
}

// KPartitionEstimate returns the Section 4.3 estimator over per-bucket
// minimum ranks (1 for empty buckets): with k' nonempty buckets,
// k'(k'-1)/sum_{nonempty}(-ln(1-x_t)).  Zero when k' <= 1.
func KPartitionEstimate(mins []float64) float64 {
	kPrime := 0
	sum := 0.0
	for _, x := range mins {
		if x < 1 {
			kPrime++
			sum += -math.Log1p(-x)
		}
	}
	if kPrime <= 1 || sum == 0 {
		return 0
	}
	return float64(kPrime) * float64(kPrime-1) / sum
}

// Reference error constants from the paper, used as the analytic overlay
// curves in Figure 2 and in assertions that measured error matches theory.

// BasicCV returns 1/sqrt(k-2), the CV of the basic k-mins estimator and the
// first-order bound for the basic bottom-k estimator (Section 4).
func BasicCV(k int) float64 {
	if k <= 2 {
		return math.Inf(1)
	}
	return 1 / math.Sqrt(float64(k-2))
}

// HIPCV returns 1/sqrt(2(k-1)), the first-order CV bound of the bottom-k
// HIP estimator (Theorem 5.1).
func HIPCV(k int) float64 {
	if k <= 1 {
		return math.Inf(1)
	}
	return 1 / math.Sqrt(2*float64(k-1))
}

// BasicMRE returns sqrt(2/(pi(k-2))), the paper's reference mean relative
// error of the basic k-mins estimator.
func BasicMRE(k int) float64 {
	if k <= 2 {
		return math.Inf(1)
	}
	return math.Sqrt(2 / (math.Pi * float64(k-2)))
}

// HIPMRE returns sqrt(1/(pi(k-1))), the paper's reference MRE for HIP.
func HIPMRE(k int) float64 {
	if k <= 1 {
		return math.Inf(1)
	}
	return math.Sqrt(1 / (math.Pi * float64(k-1)))
}

// HIPBaseBCV returns sqrt((1+b)/(4(k-1))), the Section 5.6 back-of-the-
// envelope CV of HIP with base-b ranks (b=1 recovers the full-rank bound).
func HIPBaseBCV(k int, b float64) float64 {
	if k <= 1 {
		return math.Inf(1)
	}
	return math.Sqrt((1 + b) / (4 * float64(k-1)))
}

// HLLCV returns 1.08/sqrt(k), the approximate NRMSE of bias-corrected
// HyperLogLog quoted in Section 6.
func HLLCV(k int) float64 { return 1.08 / math.Sqrt(float64(k)) }

// HIPOnHLLCV returns sqrt(3/(4k)) ~ 0.866/sqrt(k), the Section 6 NRMSE of
// the HIP estimator on the HyperLogLog (k-partition, base-2) sketch.
func HIPOnHLLCV(k int) float64 { return math.Sqrt(3 / (4 * float64(k))) }
