// Package sketch implements MinHash sketches of plain sets in the three
// flavors the paper builds on (Section 2) — k-mins, bottom-k, and
// k-partition — together with the classic "basic" cardinality estimators of
// Section 4 and coordinated-sample similarity estimation.
//
// A MinHash sketch summarizes a subset N of a domain using random ranks
// r(v) ~ U(0,1) shared across all sketches (coordination):
//
//   - k-mins: the minimum rank in each of k independent permutations
//     (sampling k times with replacement);
//   - bottom-k: the k smallest ranks in a single permutation (sampling k
//     times without replacement);
//   - k-partition: elements are hashed into k buckets and the minimum rank
//     of each bucket is kept (one-permutation hashing, the structure
//     HyperLogLog uses).
//
// All-Distances Sketches (package core) extend these to every neighborhood
// N_d(v) at once; the sketches here are also used directly for distinct
// counting on streams (package hll) and as the baseline "MinHash sketch of
// all reachable nodes" estimator the paper compares HIP against.
package sketch

import (
	"fmt"
	"sort"

	"adsketch/internal/rank"
)

// Flavor identifies a MinHash/ADS sampling scheme.
type Flavor int

// The three sketch flavors of Section 2.
const (
	BottomK Flavor = iota
	KMins
	KPartition
)

func (f Flavor) String() string {
	switch f {
	case BottomK:
		return "bottom-k"
	case KMins:
		return "k-mins"
	case KPartition:
		return "k-partition"
	}
	return fmt.Sprintf("Flavor(%d)", int(f))
}

// Entry is a sampled element: its ID and its rank.
type Entry struct {
	ID   int64
	Rank float64
}

// BottomKSketch holds the k smallest-ranked elements of a set, ordered by
// increasing rank.  The zero value is not usable; call NewBottomK.
type BottomKSketch struct {
	k       int
	entries []Entry // sorted by Rank ascending, len <= k
	n       int64   // number of Add calls with distinct effect is not tracked; n counts all Adds
}

// NewBottomK returns an empty bottom-k sketch.  k must be >= 1.
func NewBottomK(k int) *BottomKSketch {
	if k < 1 {
		panic("sketch: k must be >= 1")
	}
	return &BottomKSketch{k: k, entries: make([]Entry, 0, k)}
}

// K returns the sketch parameter k.
func (s *BottomKSketch) K() int { return s.k }

// Len returns the number of stored elements (<= k).
func (s *BottomKSketch) Len() int { return len(s.entries) }

// Entries returns the stored elements ordered by increasing rank.  The
// slice aliases internal storage and must not be modified.
func (s *BottomKSketch) Entries() []Entry { return s.entries }

// Threshold returns the current inclusion threshold tau: the k-th smallest
// rank seen, or 1 if fewer than k elements are stored.  A new element
// modifies the sketch exactly when its rank is below the threshold.
func (s *BottomKSketch) Threshold() float64 {
	if len(s.entries) < s.k {
		return 1
	}
	return s.entries[s.k-1].Rank
}

// Add offers an element to the sketch and reports whether the sketch was
// modified.  Duplicate IDs are detected (the sketch stores distinct
// elements) and never modify the sketch.
func (s *BottomKSketch) Add(id int64, r float64) bool {
	if r >= s.Threshold() {
		return false
	}
	// Find insertion point.
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Rank >= r })
	// Reject duplicates: with distinct ranks, an equal rank at i means the
	// same element.
	if i < len(s.entries) && s.entries[i].ID == id && s.entries[i].Rank == r {
		return false
	}
	if len(s.entries) < s.k {
		s.entries = append(s.entries, Entry{})
	}
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = Entry{ID: id, Rank: r}
	return true
}

// AddFrom hashes id with src and adds it.
func (s *BottomKSketch) AddFrom(src rank.Source, id int64) bool {
	return s.Add(id, src.Rank(id))
}

// Merge folds another bottom-k sketch (same k, same rank source) into s,
// yielding the sketch of the union of the two underlying sets.
func (s *BottomKSketch) Merge(o *BottomKSketch) {
	if o.k != s.k {
		panic("sketch: merging bottom-k sketches with different k")
	}
	for _, e := range o.entries {
		s.Add(e.ID, e.Rank)
	}
}

// Clone returns a deep copy.
func (s *BottomKSketch) Clone() *BottomKSketch {
	c := NewBottomK(s.k)
	c.entries = append(c.entries, s.entries...)
	return c
}

// Estimate returns the basic bottom-k cardinality estimate of Section 4.2:
// exact when fewer than k elements were seen, otherwise (k-1)/tau_k where
// tau_k is the k-th smallest rank.  The estimator is unbiased (a
// conditional inverse-probability estimator) with CV <= 1/sqrt(k-2), and by
// Lemma 4.5 it is the unique UMVUE for the sketch.
func (s *BottomKSketch) Estimate() float64 {
	if len(s.entries) < s.k {
		return float64(len(s.entries))
	}
	return float64(s.k-1) / s.entries[s.k-1].Rank
}

// KMinsSketch holds the minimum rank in each of k independent permutations.
type KMinsSketch struct {
	k    int
	mins []float64 // min rank per permutation; 1 when empty
	ids  []int64   // arg-min element per permutation
}

// NewKMins returns an empty k-mins sketch.
func NewKMins(k int) *KMinsSketch {
	if k < 1 {
		panic("sketch: k must be >= 1")
	}
	s := &KMinsSketch{k: k, mins: make([]float64, k), ids: make([]int64, k)}
	for i := range s.mins {
		s.mins[i] = 1
		s.ids[i] = -1
	}
	return s
}

// K returns the sketch parameter k.
func (s *KMinsSketch) K() int { return s.k }

// Mins returns the per-permutation minimum ranks (1 for empty).  The slice
// aliases internal storage.
func (s *KMinsSketch) Mins() []float64 { return s.mins }

// MinIDs returns the per-permutation arg-min element IDs (-1 for empty).
func (s *KMinsSketch) MinIDs() []int64 { return s.ids }

// AddFrom offers an element, hashing it under each of the k permutations of
// src, and reports whether any coordinate changed.
func (s *KMinsSketch) AddFrom(src rank.Source, id int64) bool {
	changed := false
	for i := 0; i < s.k; i++ {
		if r := src.RankAt(i, id); r < s.mins[i] {
			s.mins[i] = r
			s.ids[i] = id
			changed = true
		}
	}
	return changed
}

// Merge folds another k-mins sketch into s (union semantics).
func (s *KMinsSketch) Merge(o *KMinsSketch) {
	if o.k != s.k {
		panic("sketch: merging k-mins sketches with different k")
	}
	for i := 0; i < s.k; i++ {
		if o.mins[i] < s.mins[i] {
			s.mins[i] = o.mins[i]
			s.ids[i] = o.ids[i]
		}
	}
}

// Estimate returns the basic k-mins estimate of Section 4.1:
// (k-1) / sum_i(-ln(1-x_i)).  It is unbiased for k > 1 with
// CV = 1/sqrt(k-2) (k > 2); for k = 1 it is the (biased) MLE.
func (s *KMinsSketch) Estimate() float64 {
	return KMinsEstimate(s.mins)
}

// KPartitionSketch hashes elements into k buckets and keeps the minimum
// rank per bucket.
type KPartitionSketch struct {
	k    int
	mins []float64 // min rank per bucket; 1 when empty
	ids  []int64
}

// NewKPartition returns an empty k-partition sketch.
func NewKPartition(k int) *KPartitionSketch {
	if k < 1 {
		panic("sketch: k must be >= 1")
	}
	s := &KPartitionSketch{k: k, mins: make([]float64, k), ids: make([]int64, k)}
	for i := range s.mins {
		s.mins[i] = 1
		s.ids[i] = -1
	}
	return s
}

// K returns the number of buckets.
func (s *KPartitionSketch) K() int { return s.k }

// Mins returns the per-bucket minimum ranks (1 for empty buckets).
func (s *KPartitionSketch) Mins() []float64 { return s.mins }

// AddFrom offers an element and reports whether its bucket minimum changed.
func (s *KPartitionSketch) AddFrom(src rank.Source, id int64) bool {
	b := src.Bucket(id, s.k)
	if r := src.Rank(id); r < s.mins[b] {
		s.mins[b] = r
		s.ids[b] = id
		return true
	}
	return false
}

// Merge folds another k-partition sketch into s (union semantics).
func (s *KPartitionSketch) Merge(o *KPartitionSketch) {
	if o.k != s.k {
		panic("sketch: merging k-partition sketches with different k")
	}
	for i := 0; i < s.k; i++ {
		if o.mins[i] < s.mins[i] {
			s.mins[i] = o.mins[i]
			s.ids[i] = o.ids[i]
		}
	}
}

// Estimate returns the basic k-partition estimate of Section 4.3,
// conditioned on the number k' of nonempty buckets:
// k'(k'-1) / sum over nonempty buckets of -ln(1-x_t).
// It is biased down for small n (and 0 when k' <= 1).
func (s *KPartitionSketch) Estimate() float64 {
	return KPartitionEstimate(s.mins)
}
