// Package wireformat guards the on-disk and on-wire byte layout.
//
// The v3 codec rewrite (PR 4) replaced reflection-based encoding/binary
// calls with explicit little-endian column writes for a 5.6× decode win,
// and every sketch file since is byte-addressed by that layout.  In
// codec/serialization/protocol files this analyzer flags:
//
//   - binary.Write / binary.Read — reflection-based, slow, and layout
//     depends on struct declaration order rather than explicit offsets;
//   - binary.BigEndian / binary.NativeEndian — the wire format is
//     little-endian by definition; NativeEndian silently flips on
//     big-endian hosts (a deliberate byte-order probe suppresses with
//     //adsvet:ignore wireformat <reason>);
//   - unkeyed (positional) literals of wire-header structs (type names
//     ending in Hdr/Header) — inserting a header field would silently
//     shift every later field into the wrong slot.
//
// Scope is per file, judged by filename keywords (codec, serialize,
// protocol, wire, encode, decode) — except in a package whose import
// path ends in internal/wire, where every file is in scope: that
// package is the binary protocol itself.
package wireformat

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"

	"adsketch/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wireformat",
	Doc: "in codec/serialize/protocol files, forbid reflection-based binary.Write/Read and " +
		"non-little-endian byte orders, and require keyed wire-header struct literals",
	Run: run,
}

// fileInScope reports whether a file participates in wire encoding,
// judged by its name.
func fileInScope(filename string) bool {
	base := strings.ToLower(filepath.Base(filename))
	for _, kw := range []string{"codec", "serialize", "protocol", "wire", "encode", "decode"} {
		if strings.Contains(base, kw) {
			return true
		}
	}
	return false
}

// pkgInScope reports whether every file of the package is wire-format
// code regardless of filename: internal/wire is the binary protocol
// itself, so a helper split out under an innocuous name (pool.go,
// buffers.go) must not silently drop out of the invariant.
func pkgInScope(pkg *types.Package) bool {
	return pkg != nil && strings.HasSuffix(pkg.Path(), "internal/wire")
}

// headerTypeRE matches wire-header struct type names.
var headerTypeRE = regexp.MustCompile(`(?i)(hdr|header)$`)

func run(pass *analysis.Pass) error {
	wholePkg := pkgInScope(pass.Pkg)
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if (!wholePkg && !fileInScope(filename)) || pass.InTestFile(f.Pos()) {
			continue
		}
		checkFile(pass, f)
	}
	return nil
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			obj := pass.TypesInfo.ObjectOf(n.Sel)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "encoding/binary" {
				return true
			}
			switch obj.Name() {
			case "Write", "Read":
				pass.Reportf(n.Pos(), "reflection-based binary.%s in wire-format code: encode fields explicitly with binary.LittleEndian (the v3 codec idiom)", obj.Name())
			case "BigEndian", "NativeEndian":
				pass.Reportf(n.Pos(), "binary.%s in wire-format code: the sketch wire format is explicitly little-endian; use binary.LittleEndian", obj.Name())
			}
		case *ast.CompositeLit:
			checkHeaderLit(pass, n)
		}
		return true
	})
}

// checkHeaderLit flags positional fields in a wire-header literal.
func checkHeaderLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	if len(lit.Elts) == 0 {
		return
	}
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok || !headerTypeRE.MatchString(named.Obj().Name()) {
		return
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return
	}
	for _, e := range lit.Elts {
		if _, ok := e.(*ast.KeyValueExpr); !ok {
			pass.Reportf(lit.Pos(), "unkeyed fields in wire-header literal %s: positional initialization silently misassigns fields when the header layout changes — use field: value", named.Obj().Name())
			return
		}
	}
}
