package wireformat

import (
	"testing"

	"adsketch/internal/analysis"
	"adsketch/internal/analysis/analysistest"
)

func TestWireformat(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{Analyzer},
		"example/codec",
		"example/internal/wire",
	)
}
