// buffers.go is the clean counterpart: the package-wide scope flags
// nothing when the code follows the codec idiom.
package wire

import "encoding/binary"

func appendHeader(dst []byte, h frameHdr) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[0:4], h.Magic)
	binary.LittleEndian.PutUint32(tmp[4:8], h.Count)
	return append(dst, tmp[:]...)
}

func keyedPooledHeader() frameHdr {
	return frameHdr{Magic: 0xAD5, Count: 2}
}
