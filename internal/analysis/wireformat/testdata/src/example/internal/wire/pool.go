// pool.go carries none of the scope keywords in its name: inside an
// internal/wire package the analyzer must flag it anyway, because the
// whole package IS the wire format.
package wire

import (
	"encoding/binary"
	"io"
)

type frameHdr struct {
	Magic uint32
	Count uint32
}

func pooledWrite(w io.Writer, h frameHdr) error {
	return binary.Write(w, binary.LittleEndian, h) // want `reflection-based binary.Write`
}

func pooledRead(r io.Reader, h *frameHdr) error {
	return binary.Read(r, binary.LittleEndian, h) // want `reflection-based binary.Read`
}

func pooledOrder(buf []byte, v uint32) {
	binary.BigEndian.PutUint32(buf, v) // want `binary.BigEndian in wire-format code`
}

func pooledHeader() frameHdr {
	return frameHdr{0xAD5, 2} // want `unkeyed fields in wire-header literal frameHdr`
}
