// helpers.go is outside the wireformat scope (its name names no codec
// concern): the same constructs are not flagged here.
package codec

import (
	"encoding/binary"
	"io"
)

func reflectWriteElsewhere(w io.Writer, p payload) error {
	return binary.Write(w, binary.BigEndian, p)
}

func unkeyedElsewhere() frameHdr {
	return frameHdr{0xAD5, 2}
}
