// Package codec is a wireformat fixture: the file name puts it in
// scope.
package codec

import (
	"bytes"
	"encoding/binary"
	"io"
)

type frameHdr struct {
	Magic uint32
	Count uint32
}

type payload struct {
	A, B uint64
}

// reflectWrite uses the reflection-based encoder.
func reflectWrite(w io.Writer, h frameHdr) error {
	return binary.Write(w, binary.LittleEndian, h) // want `reflection-based binary.Write`
}

// reflectRead uses the reflection-based decoder.
func reflectRead(r io.Reader, h *frameHdr) error {
	return binary.Read(r, binary.LittleEndian, h) // want `reflection-based binary.Read`
}

// wrongOrder writes big-endian onto a little-endian wire.
func wrongOrder(buf []byte, v uint32) {
	binary.BigEndian.PutUint32(buf, v) // want `binary.BigEndian in wire-format code`
}

// hostOrder depends on the host byte order.
func hostOrder(buf []byte, v uint32) {
	binary.NativeEndian.PutUint32(buf, v) // want `binary.NativeEndian in wire-format code`
}

// probeOrder is the sanctioned probe: the suppression documents why.
func probeOrder(buf []byte, v uint32) {
	//adsvet:ignore wireformat byte-order probe comparing host order against LE, not wire encoding
	binary.NativeEndian.PutUint32(buf, v)
}

// unkeyedHeader initializes a wire header positionally.
func unkeyedHeader() frameHdr {
	return frameHdr{0xAD5, 2} // want `unkeyed fields in wire-header literal frameHdr`
}

// keyedHeader is the required form.
func keyedHeader() frameHdr {
	return frameHdr{Magic: 0xAD5, Count: 2}
}

// explicitEncode is the v3 idiom: explicit offsets, explicit LE.
func explicitEncode(h frameHdr) []byte {
	var buf bytes.Buffer
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[0:4], h.Magic)
	binary.LittleEndian.PutUint32(tmp[4:8], h.Count)
	buf.Write(tmp[:])
	return buf.Bytes()
}

// unkeyedPlain is fine: payload is not a wire-header type.
func unkeyedPlain() payload {
	return payload{1, 2}
}
