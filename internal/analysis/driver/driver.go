// Package driver loads and type-checks packages for the adsvet analysis
// suite without golang.org/x/tools: package discovery and export data
// come from `go list -export -deps -json` (fully offline — the module
// and the standard library compile from the local toolchain), syntax
// from go/parser, and types from go/types with a gc export-data
// importer.  cmd/adsvet uses it for standalone `adsvet ./...` runs, and
// analysistest uses its importer to type-check fixture packages.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the driver needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` on the patterns and decodes
// the package stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// NewImporter returns a types importer that resolves every import
// through the resolve function: import path in, gc export-data file
// path out.  "unsafe" is handled by the importer itself.
func NewImporter(fset *token.FileSet, resolve func(path string) (string, error)) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, err := resolve(path)
		if err != nil {
			return nil, err
		}
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Load lists, parses, and type-checks the packages matching the patterns
// (relative to dir; "" = current directory), returning the matched
// packages — dependencies are consumed as export data only.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	var roots []*listedPackage
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		roots = append(roots, p)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	var out []*Package
	for _, p := range roots {
		importMap := p.ImportMap
		imp := NewImporter(fset, func(path string) (string, error) {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
			return exports[path], nil
		})
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := TypeCheck(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
		}
		out = append(out, &Package{PkgPath: p.ImportPath, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info})
	}
	return out, nil
}

// TypeCheck type-checks one package's parsed files with the given
// importer, returning the package and a fully populated types.Info.
func TypeCheck(fset *token.FileSet, pkgPath string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// stdExports caches export-data locations for standard-library packages,
// shared across every analysistest fixture in the process.
var stdExports struct {
	sync.Mutex
	files map[string]string // import path -> export file
}

// StdExports returns an import-path -> export-file map covering the
// given standard-library packages and all their dependencies, building
// export data through the go command (cached across calls).
func StdExports(paths []string) (map[string]string, error) {
	stdExports.Lock()
	defer stdExports.Unlock()
	if stdExports.files == nil {
		stdExports.files = make(map[string]string)
	}
	var missing []string
	for _, p := range paths {
		if _, ok := stdExports.files[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		listed, err := goList("", missing)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				stdExports.files[p.ImportPath] = p.Export
			}
		}
	}
	out := make(map[string]string, len(stdExports.files))
	for k, v := range stdExports.files {
		out[k] = v
	}
	return out, nil
}
