package driver

import (
	"go/token"
	"strings"
	"testing"
)

// TestLoadSelf loads and type-checks this very package through the
// export-data pipeline: go list discovery, gc importer, full types.Info.
func TestLoadSelf(t *testing.T) {
	pkgs, err := Load("", ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.PkgPath != "adsketch/internal/analysis/driver" {
		t.Fatalf("PkgPath = %q", p.PkgPath)
	}
	if len(p.Files) == 0 || p.Pkg == nil || p.TypesInfo == nil {
		t.Fatal("loaded package is missing syntax or types")
	}
	if p.Pkg.Scope().Lookup("Load") == nil {
		t.Fatal("type-checked package scope is missing Load")
	}
	if len(p.TypesInfo.Defs) == 0 || len(p.TypesInfo.Uses) == 0 {
		t.Fatal("types.Info not populated")
	}
}

// TestLoadMultiple resolves several sibling packages in one call,
// including one whose imports cross into another module package.
func TestLoadMultiple(t *testing.T) {
	pkgs, err := Load("", "../detorder", "../refpair")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if !strings.HasPrefix(p.PkgPath, "adsketch/internal/analysis/") {
			t.Fatalf("unexpected PkgPath %q", p.PkgPath)
		}
	}
}

func TestLoadUnknownPattern(t *testing.T) {
	if _, err := Load("", "./no/such/package"); err == nil {
		t.Fatal("Load of a nonexistent package must fail")
	}
}

func TestStdExports(t *testing.T) {
	exports, err := StdExports([]string{"sort", "time"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"sort", "time"} {
		if exports[p] == "" {
			t.Fatalf("no export data recorded for %q", p)
		}
	}
	// Second call must serve from the cache (and still include both).
	again, err := StdExports([]string{"sort"})
	if err != nil {
		t.Fatal(err)
	}
	if again["time"] == "" {
		t.Fatal("cache dropped previously resolved package")
	}
}

func TestNewImporterMissingExport(t *testing.T) {
	imp := NewImporter(token.NewFileSet(), func(path string) (string, error) { return "", nil })
	if _, err := imp.Import("sort"); err == nil {
		t.Fatal("import with no export data must fail")
	}
}
