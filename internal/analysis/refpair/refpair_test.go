package refpair

import (
	"testing"

	"adsketch/internal/analysis"
	"adsketch/internal/analysis/analysistest"
)

func TestRefpair(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{Analyzer},
		"example/refs",
	)
}
