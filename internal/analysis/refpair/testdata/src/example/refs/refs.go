// Package refs is a refpair fixture with self-contained stand-ins for
// the repo's ref-counted resources.
package refs

import "errors"

type Dataset struct{}

func (d *Dataset) Release()  {}
func (d *Dataset) Name() int { return 0 }

type Catalog struct{}

func (c *Catalog) Acquire(name string) (*Dataset, error) { return nil, nil }

type SketchFile struct{}

func (s *SketchFile) Retain() bool { return true }
func (s *SketchFile) Release()     {}
func (s *SketchFile) Close() error { return nil }
func (s *SketchFile) Nodes() int   { return 0 }

func OpenSketchFile(path string) (*SketchFile, error) { return nil, nil }

var errBoom = errors.New("boom")

// leakNever acquires and never releases on any path.
func leakNever(c *Catalog) (int, error) {
	d, err := c.Acquire("x") // want `d acquired via Acquire is never released`
	if err != nil {
		return 0, err
	}
	return d.Name(), nil
}

// leakEarlyReturn releases on the happy path but not on the early one.
func leakEarlyReturn(c *Catalog, bad bool) (int, error) {
	d, err := c.Acquire("x")
	if err != nil {
		return 0, err
	}
	if bad {
		return 0, errBoom // want `returns without releasing d acquired via Acquire`
	}
	n := d.Name()
	d.Release()
	return n, nil
}

// leakDiscard throws the handle away outright.
func leakDiscard(c *Catalog) {
	_, _ = c.Acquire("x") // want `result of Acquire is discarded`
}

// leakOpen opens a sketch file and never closes it.
func leakOpen(path string) (int, error) {
	sf, err := OpenSketchFile(path) // want `sf acquired via OpenSketchFile is never released`
	if err != nil {
		return 0, err
	}
	return sf.Nodes(), nil
}

// deferRelease is the canonical pattern: defer covers every return.
func deferRelease(c *Catalog, bad bool) (int, error) {
	d, err := c.Acquire("x")
	if err != nil {
		return 0, err
	}
	defer d.Release()
	if bad {
		return 0, errBoom
	}
	return d.Name(), nil
}

// deferClosure releases inside a deferred closure.
func deferClosure(path string) (int, error) {
	sf, err := OpenSketchFile(path)
	if err != nil {
		return 0, err
	}
	defer func() { sf.Close() }()
	return sf.Nodes(), nil
}

// inlineRelease releases before the only return.
func inlineRelease(c *Catalog) int {
	d, _ := c.Acquire("x")
	n := d.Name()
	d.Release()
	return n
}

// transferReturn hands the caller the handle; the caller releases.
func transferReturn(c *Catalog) (*Dataset, error) {
	return c.Acquire("x")
}

// transferOut stores the handle beyond the function.
type holder struct{ d *Dataset }

func transferOut(c *Catalog, h *holder) error {
	d, err := c.Acquire("x")
	if err != nil {
		return err
	}
	h.d = d
	return nil
}

// transferArg passes the handle to another owner.
func sink(d *Dataset) {}

func transferArg(c *Catalog) error {
	d, err := c.Acquire("x")
	if err != nil {
		return err
	}
	sink(d)
	return nil
}

// retainGuard is the Retain idiom: failure branch returns bare, success
// branch releases.
func retainGuard(sf *SketchFile) (int, error) {
	if !sf.Retain() {
		return 0, errBoom
	}
	n := sf.Nodes()
	sf.Release()
	return n, nil
}

// retainLeak keeps the extra reference it took.
func retainLeak(sf *SketchFile) (int, error) {
	if !sf.Retain() { // want `sf acquired via Retain is never released`
		return 0, errBoom
	}
	return sf.Nodes(), nil
}
