// Package refpair flags functions that obtain a pinned resource and can
// return without releasing it.
//
// The serving tier's zero-downtime guarantees rest on reference counts:
// Catalog.Acquire pairs with Dataset.Release, the registry's pin with
// unpin, and SketchFile handles from OpenSketchFile / MmapSketchFile /
// Retain pair with Close / Release.  A leaked count pins a retired
// dataset version in memory forever (and keeps its mmap mapped); a
// missing Close leaks a file descriptor per request.
//
// The walk is lostcancel-style but lexical rather than CFG-based: an
// acquisition whose handle stays local to the function must either be
// released in a defer, or have a matching release call before every
// return that follows it.  Handles that escape — returned, stored,
// passed to another function, or captured by a non-deferred closure —
// transfer ownership and are not tracked.  Returns inside the
// acquisition's own `if err != nil` guard are exempt: the failed call
// returned no resource.
package refpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"adsketch/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "refpair",
	Doc: "flag acquisitions of pinned resources (Catalog.Acquire, registry pin, SketchFile " +
		"Retain/Open/Mmap) that can return without the matching Release/unpin/Close",
	Run: run,
}

// pairs maps each acquisition call name to its expected release name.
var pairs = map[string]string{
	"Acquire":         "Release",
	"AcquireResident": "Release",
	"Retain":          "Release",
	"pin":             "unpin",
	"OpenSketchFile":  "Close",
	"MmapSketchFile":  "Close",
}

// releaseNames is the set of calls that drop a reference.
var releaseNames = map[string]bool{"Release": true, "unpin": true, "Close": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil
}

// acquisition is one tracked acquire site inside a function.
type acquisition struct {
	handle  types.Object // the variable holding the resource
	errObj  types.Object // the paired error variable, if any
	pos     token.Pos
	call    string   // acquiring call name
	release string   // expected release name
	exempt  ast.Node // failure branch of an `if h.Retain()` guard, if any
}

// checkFunc analyzes one function body.  Closure bodies are analyzed as
// part of the enclosing function: positions still order correctly, and
// handles crossing a closure boundary escape anyway.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	acqs := findAcquisitions(pass, body)
	if len(acqs) == 0 {
		return
	}
	for _, a := range acqs {
		if a.handle == nil {
			pass.Reportf(a.pos, "result of %s is discarded: the %s reference can never be released", a.call, a.call)
			continue
		}
		if escapes(pass, body, a) {
			continue // ownership transferred; the new owner releases
		}
		deferred, releases := findReleases(pass, body, a)
		if deferred {
			continue
		}
		if len(releases) == 0 {
			pass.Reportf(a.pos, "%s acquired via %s is never released: missing %s.%s on every path", a.handle.Name(), a.call, a.handle.Name(), a.release)
			continue
		}
		checkReturns(pass, body, a, releases)
	}
}

// findAcquisitions collects tracked acquire sites: assignments whose RHS
// is a call to a paired acquisition, and `if h.Retain()` conditions.
func findAcquisitions(pass *analysis.Pass, body *ast.BlockStmt) []*acquisition {
	var acqs []*acquisition
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				name := calleeName(call)
				rel, tracked := pairs[name]
				if !tracked || name == "Retain" {
					continue
				}
				a := &acquisition{pos: call.Pos(), call: name, release: rel}
				// h, err := Open(...) or h := c.Acquire(...).
				if len(n.Rhs) == 1 {
					if len(n.Lhs) >= 1 {
						a.handle = identObject(pass, n.Lhs[0])
					}
					if len(n.Lhs) == 2 {
						a.errObj = identObject(pass, n.Lhs[1])
					}
				} else if i < len(n.Lhs) {
					a.handle = identObject(pass, n.Lhs[i])
				}
				acqs = append(acqs, a)
			}
		case *ast.IfStmt:
			// if h.Retain() { ... } / if !h.Retain() { return }: the
			// handle is the receiver; on the success path a Release must
			// follow.
			cond, negated := n.Cond, false
			if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
				cond, negated = u.X, true
			}
			if call, ok := cond.(*ast.CallExpr); ok && calleeName(call) == "Retain" {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if h := identObject(pass, sel.X); h != nil {
						a := &acquisition{handle: h, pos: call.Pos(), call: "Retain", release: "Release"}
						// Retain failed ⇒ nothing to release on that branch.
						if negated {
							a.exempt = n.Body
						} else {
							a.exempt = n.Else
						}
						acqs = append(acqs, a)
					}
				}
			}
		}
		return true
	})
	return acqs
}

// escapes reports whether the handle's ownership leaves the function.
// An identifier bound to the handle escapes unless it sits in a
// non-owning position: the receiver of a selector (h.Close(), h.field)
// or the left side of an assignment.  Everything else — returned,
// passed as an argument, stored in a literal, aliased — transfers
// ownership.  Handles referenced inside non-deferred closures escape
// too (the closure may outlive the call); deferred cleanup closures are
// release sites, not escapes.
func escapes(pass *analysis.Pass, body *ast.BlockStmt, a *acquisition) bool {
	nonOwning := make(map[*ast.Ident]bool)
	var deferredLits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok {
				nonOwning[id] = true
			}
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					nonOwning[id] = true
				}
			}
		case *ast.DeferStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				deferredLits = append(deferredLits, lit)
			}
		}
		return true
	})
	isDeferred := func(lit *ast.FuncLit) bool {
		for _, d := range deferredLits {
			if d == lit {
				return true
			}
		}
		return false
	}
	esc := false
	ast.Inspect(body, func(n ast.Node) bool {
		if esc {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok && !isDeferred(lit) {
			if refersTo(pass, lit, a.handle) {
				esc = true
			}
			return false
		}
		if id, ok := n.(*ast.Ident); ok && !nonOwning[id] && pass.TypesInfo.ObjectOf(id) == a.handle {
			esc = true
		}
		return true
	})
	return esc
}

// findReleases locates release calls on the handle: deferred (covering
// every return) and inline (covering only returns after them).
func findReleases(pass *analysis.Pass, body *ast.BlockStmt, a *acquisition) (deferred bool, inline []token.Pos) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if isRelease(pass, n.Call, a) {
				deferred = true
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok && isRelease(pass, call, a) {
						deferred = true
					}
					return true
				})
			}
		case *ast.CallExpr:
			if isRelease(pass, n, a) {
				inline = append(inline, n.Pos())
			}
		}
		return true
	})
	return deferred, inline
}

// isRelease reports whether call is h.Release/Close/unpin() on the
// acquisition's handle.
func isRelease(pass *analysis.Pass, call *ast.CallExpr, a *acquisition) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !releaseNames[sel.Sel.Name] {
		return false
	}
	return identObject(pass, sel.X) == a.handle
}

// checkReturns flags returns after the acquisition that no inline
// release precedes, excepting returns inside the acquisition's own
// error guard.
func checkReturns(pass *analysis.Pass, body *ast.BlockStmt, a *acquisition, releases []token.Pos) {
	var errGuards []*ast.IfStmt
	if a.errObj != nil {
		ast.Inspect(body, func(n ast.Node) bool {
			if ifs, ok := n.(*ast.IfStmt); ok && refersTo(pass, ifs.Cond, a.errObj) {
				errGuards = append(errGuards, ifs)
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() < a.pos {
			return true
		}
		for _, g := range errGuards {
			if g.Body.Pos() <= ret.Pos() && ret.Pos() <= g.Body.End() {
				return true
			}
		}
		if a.exempt != nil && a.exempt.Pos() <= ret.Pos() && ret.Pos() <= a.exempt.End() {
			return true
		}
		for _, rel := range releases {
			if a.pos < rel && rel < ret.Pos() {
				return true
			}
		}
		pass.Reportf(ret.Pos(), "returns without releasing %s acquired via %s at %s: call %s.%s on this path", a.handle.Name(), a.call, pass.Fset.Position(a.pos), a.handle.Name(), a.release)
		return true
	})
}

// refersTo reports whether the expression tree mentions obj.
func refersTo(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// identObject resolves an identifier expression to its object ("_" and
// non-identifiers resolve to nil).
func identObject(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return pass.TypesInfo.ObjectOf(id)
}

// calleeName extracts the bare name of a call's callee.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
