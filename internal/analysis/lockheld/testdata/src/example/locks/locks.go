// Package locks is a lockheld fixture: a registry with mutex-guarded
// fields and the access patterns the analyzer must tell apart.
package locks

import "sync"

type entry struct{ version int }

type registry struct {
	mu      sync.Mutex
	entries map[string]*entry // guarded by mu
	clock   int               // guarded by mu
	name    string            // unguarded: no annotation
}

// newRegistry constructs the value before it is shared: no lock needed.
func newRegistry() *registry {
	r := &registry{entries: make(map[string]*entry)}
	r.clock = 1
	return r
}

// Install locks before touching guarded state.
func (r *registry) Install(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock++
	r.entries[name] = &entry{version: r.clock}
}

// Size forgets the lock.
func (r *registry) Size() int {
	return len(r.entries) // want `access to entries \(guarded by mu\) without holding mu`
}

// bumpUnlocked touches guarded state with no lock and no contract.
func (r *registry) bumpUnlocked() {
	r.clock++ // want `access to clock \(guarded by mu\) without holding mu`
}

// retireLocked follows the *Locked naming convention: callers lock.
func (r *registry) retireLocked(name string) {
	delete(r.entries, name)
}

// drain assumes the caller holds the lock.
func (r *registry) drain() {
	for name := range r.entries {
		delete(r.entries, name)
	}
}

// Name reads an unguarded field: no lock required.
func (r *registry) Name() string {
	return r.name
}
