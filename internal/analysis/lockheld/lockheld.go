// Package lockheld enforces the `// guarded by mu` field annotation.
//
// Struct fields carrying a `// guarded by <mutexField>` comment (on the
// field or the line above it) may only be touched by functions that
// visibly hold the lock.  A function qualifies when it:
//
//   - calls <x>.<mutexField>.Lock() or RLock() (or locks a plain
//     <mutexField> identifier) anywhere in its body,
//   - is named with the *Locked suffix (the repo's convention for
//     must-hold-lock helpers),
//   - documents the contract ("caller holds the lock", "lock held",
//     "holds mu") in its doc comment, or
//   - accesses the field through a value it just created locally — a
//     struct under construction is not yet shared, so constructors
//     need no lock.
//
// The check is per-package: guarded fields are unexported, so every
// access site is in the declaring package.
package lockheld

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"adsketch/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc: "fields annotated `// guarded by mu` may only be accessed in functions that lock " +
		"the annotated mutex, are *Locked helpers, or document that the caller holds it",
	Run: run,
}

var (
	guardRE = regexp.MustCompile(`(?i)guarded by (\w+)`)
	// docHeldRE matches doc comments asserting the caller holds the lock.
	docHeldRE = regexp.MustCompile(`(?is)(caller|holder|holds?|holding)\b.*\b(lock|mu)\b|(?i)\block held\b`)
)

func run(pass *analysis.Pass) error {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, guarded)
		}
	}
	return nil
}

// collectGuarded maps each annotated field object to its guarding
// mutex field name.
func collectGuarded(pass *analysis.Pass) map[types.Object]string {
	guarded := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

// guardAnnotation extracts the mutex name from a field's trailing or
// doc comment, or "" when unannotated.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		if m := guardRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkFunc reports unguarded accesses to annotated fields within one
// function.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, guarded map[types.Object]string) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	if fd.Doc != nil && docHeldRE.MatchString(fd.Doc.Text()) {
		return
	}
	locked := lockedMutexes(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(sel.Sel)
		// Fields of instantiated generic types (Registry[T]) are fresh
		// objects; compare against the generic declaration's field.
		if v, ok := obj.(*types.Var); ok {
			obj = v.Origin()
		}
		mu, isGuarded := guarded[obj]
		if !isGuarded || locked[mu] {
			return true
		}
		if locallyConstructed(pass, fd, sel.X) {
			return true
		}
		pass.Reportf(sel.Pos(), "access to %s (guarded by %s) without holding %s: lock it, rename the helper with the Locked suffix, or document that the caller holds the lock", sel.Sel.Name, mu, mu)
		return true
	})
}

// lockedMutexes returns the set of mutex field names the body locks via
// .Lock() or .RLock().
func lockedMutexes(body *ast.BlockStmt) map[string]bool {
	locked := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := sel.X.(type) {
		case *ast.Ident:
			locked[x.Name] = true // mu.Lock()
		case *ast.SelectorExpr:
			locked[x.Sel.Name] = true // r.mu.Lock()
		}
		return true
	})
	return locked
}

// locallyConstructed reports whether the accessed base resolves to a
// variable declared inside the function body itself — a value still
// private to its constructor.
func locallyConstructed(pass *analysis.Pass, fd *ast.FuncDecl, base ast.Expr) bool {
	for {
		switch x := base.(type) {
		case *ast.SelectorExpr:
			base = x.X
			continue
		case *ast.ParenExpr:
			base = x.X
			continue
		case *ast.StarExpr:
			base = x.X
			continue
		case *ast.Ident:
			obj := pass.TypesInfo.ObjectOf(x)
			return obj != nil && fd.Body.Pos() <= obj.Pos() && obj.Pos() <= fd.Body.End()
		default:
			return false
		}
	}
}
