package lockheld

import (
	"testing"

	"adsketch/internal/analysis"
	"adsketch/internal/analysis/analysistest"
)

func TestLockheld(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{Analyzer},
		"example/locks",
	)
}
