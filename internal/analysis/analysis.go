// Package analysis is a self-contained static-analysis framework for
// this repository's custom vet suite (cmd/adsvet).  It mirrors the shape
// of golang.org/x/tools/go/analysis — an Analyzer owns a Run function
// over a Pass carrying the parsed files and full type information — but
// is built entirely on the standard library (go/ast, go/types,
// go/importer), because the module deliberately carries no external
// dependencies.
//
// The analyzers under internal/analysis/... encode invariants this
// reproduction's correctness claims rest on (deterministic iteration
// order, paired resource acquire/release, explicit little-endian wire
// encoding, exhaustive enum dispatch, mutex-guarded field access).  They
// run over every PR via `go vet -vettool` (see cmd/adsvet) and are
// tested with the analysistest subpackage against testdata fixtures.
//
// # Suppression
//
// A finding that is a deliberate exception is silenced with a directive
// comment on the flagged line, or alone on the line directly above:
//
//	//adsvet:ignore <analyzer> <reason>
//
// The reason is mandatory: a bare directive is itself reported, so every
// suppression in the tree documents why the invariant does not apply.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// adsvet:ignore directives.
	Name string
	// Doc is the one-paragraph description printed by `adsvet help`.
	Doc string
	// Run applies the check to one package and reports findings through
	// pass.Report / pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and types through an Analyzer.Run.
type Pass struct {
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files holds the package's parsed files (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info

	analyzer *Analyzer
	report   func(Diagnostic)
}

// Diagnostic is one finding, positioned inside Pass.Fset.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Report emits a finding.
func (p *Pass) Report(d Diagnostic) {
	if d.Analyzer == "" {
		d.Analyzer = p.analyzer.Name
	}
	p.report(d)
}

// Reportf emits a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file.  The suite's
// invariants target production code; tests exercise deliberately odd
// patterns (corrupted headers, racing closers) and are exempt.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// PathMatches reports whether a package import path is, or ends with, one
// of the given patterns (each pattern matching either the whole path or a
// "/"-separated suffix).  Analyzers use it to scope themselves to the
// determinism- or wire-critical packages while staying testable against
// fixture packages loaded under the same relative paths.
func PathMatches(pkgPath string, patterns ...string) bool {
	for _, pat := range patterns {
		if pkgPath == pat || strings.HasSuffix(pkgPath, "/"+pat) {
			return true
		}
	}
	return false
}

// ignoreRE matches a suppression directive.  Capture 1 is the analyzer
// name (or "all"); capture 2 is the reason, which must be non-empty.
var ignoreRE = regexp.MustCompile(`^//adsvet:ignore\s+(\S+)[ \t]*(.*)$`)

// directive is one parsed adsvet:ignore comment.
type directive struct {
	line     int
	analyzer string
	reason   string
	pos      token.Pos
}

// collectDirectives parses every adsvet:ignore comment of a file.
func collectDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := ignoreRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			out = append(out, directive{
				line:     fset.Position(c.Pos()).Line,
				analyzer: m[1],
				reason:   strings.TrimSpace(m[2]),
				pos:      c.Pos(),
			})
		}
	}
	return out
}

// Check runs the analyzers over one type-checked package and returns the
// surviving diagnostics sorted by position: suppressed findings are
// dropped, and malformed suppressions (no reason) are reported as
// findings of the pseudo-analyzer "adsvet".
func Check(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			analyzer:  a,
			report:    func(d Diagnostic) { raw = append(raw, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}

	var dirs []directive
	for _, f := range files {
		dirs = append(dirs, collectDirectives(fset, f)...)
	}
	var out []Diagnostic
	for _, dir := range dirs {
		if dir.reason == "" {
			out = append(out, Diagnostic{
				Pos:      dir.pos,
				Analyzer: "adsvet",
				Message:  fmt.Sprintf("adsvet:ignore %s needs a reason: every suppression must say why the invariant does not apply", dir.analyzer),
			})
		}
	}
	for _, d := range raw {
		if !suppressed(fset, d, dirs) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// suppressed reports whether a directive with a reason covers the
// diagnostic: same file, matching analyzer (or "all"), on the flagged
// line or the line directly above it.
func suppressed(fset *token.FileSet, d Diagnostic, dirs []directive) bool {
	posn := fset.Position(d.Pos)
	for _, dir := range dirs {
		if dir.reason == "" {
			continue
		}
		if dir.analyzer != d.Analyzer && dir.analyzer != "all" {
			continue
		}
		if fset.Position(dir.pos).Filename != posn.Filename {
			continue
		}
		if dir.line == posn.Line || dir.line == posn.Line-1 {
			return true
		}
	}
	return false
}
