// Package analysistest runs analyzers over fixture packages under a
// testdata/src tree and checks reported diagnostics against `// want`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest on
// the standard library only.
//
// A fixture file marks each expected diagnostic with a trailing comment
// on the offending line:
//
//	for k := range m { // want `iterates over a map`
//
// Each backquoted or double-quoted string after "want" is a regexp that
// must match one diagnostic reported on that line.  Lines without a
// want comment must produce no diagnostics.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"adsketch/internal/analysis"
	"adsketch/internal/analysis/driver"
)

// fixtureImporter resolves imports first against fixture packages
// type-checked earlier in the same Run, then against standard-library
// export data.
type fixtureImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (i *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.local[path]; ok {
		return p, nil
	}
	return i.std.Import(path)
}

// wantRE finds a want comment; string literals are extracted separately.
var (
	wantRE = regexp.MustCompile(`//\s*want\b(.*)$`)
	strRE  = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

// expectation is one want entry: a regexp expected to match a
// diagnostic on a specific file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run type-checks each fixture package at testdata/src/<path>, applies
// the analyzers through analysis.Check (so adsvet:ignore suppression is
// in effect, exactly as in production), and diffs the findings against
// the fixtures' want comments.  Fixture packages may import the
// standard library and fixture packages listed earlier in pkgPaths.
func Run(t *testing.T, testdata string, analyzers []*analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	local := make(map[string]*types.Package)

	for _, pkgPath := range pkgPaths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgPath))
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("fixture %s: %v", pkgPath, err)
		}
		var files []*ast.File
		var names []string
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			names = append(names, filepath.Join(dir, e.Name()))
		}
		sort.Strings(names)
		var stdImports []string
		for _, name := range names {
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing %s: %v", name, err)
			}
			files = append(files, f)
			for _, imp := range f.Imports {
				p, _ := strconv.Unquote(imp.Path.Value)
				if _, ok := local[p]; !ok {
					stdImports = append(stdImports, p)
				}
			}
		}
		exports, err := driver.StdExports(stdImports)
		if err != nil {
			t.Fatalf("resolving standard-library imports for %s: %v", pkgPath, err)
		}
		imp := &fixtureImporter{
			local: local,
			std:   driver.NewImporter(fset, func(path string) (string, error) { return exports[path], nil }),
		}
		pkg, info, err := driver.TypeCheck(fset, pkgPath, files, imp)
		if err != nil {
			t.Fatalf("type-checking fixture %s: %v", pkgPath, err)
		}
		local[pkgPath] = pkg

		diags, err := analysis.Check(fset, files, pkg, info, analyzers)
		if err != nil {
			t.Fatalf("running analyzers on %s: %v", pkgPath, err)
		}
		wants := collectWants(t, fset, files)
		for _, d := range diags {
			posn := fset.Position(d.Pos)
			if !match(wants, posn.Filename, posn.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic [%s]: %s", posn, d.Analyzer, d.Message)
			}
		}
		for _, w := range wants {
			if !w.hit {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
			}
		}
	}
}

// collectWants parses every want comment of the fixture files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				lits := strRE.FindAllString(m[1], -1)
				if len(lits) == 0 {
					t.Fatalf("%s: want comment has no pattern strings", posn)
				}
				for _, lit := range lits {
					var pat string
					if strings.HasPrefix(lit, "`") {
						pat = strings.Trim(lit, "`")
					} else {
						var err error
						pat, err = strconv.Unquote(lit)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", posn, lit, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", posn, pat, err)
					}
					wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, re: re})
				}
			}
		}
	}
	return wants
}

// match marks and reports the first unhit expectation covering the
// diagnostic's file, line, and message.
func match(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.hit && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}
