// Package kindswitch enforces exhaustive dispatch over the module's
// kind enums and over the protocol's Request query fields.
//
// Two checks:
//
//  1. Enum switches: a switch whose tag is a module-local named type
//     with a declared constant set (≥2 constants, e.g. sketch flavors,
//     ANF readouts) must either cover every constant or carry an
//     explicit default — silently falling through on a new kind is how
//     a new sketch flavor serves wrong answers instead of
//     ErrUnsupportedQuery.  Constants are compared by value, so
//     re-exported aliases (root-package KMins for sketch.KMins) count.
//
//  2. Request coverage: a function referencing more than half of the
//     Request envelope's query pointer fields — i.e. one that clearly
//     enumerates kinds — must reference all of them or route through
//     Request.Query(); partial enumerations rot when a query kind is
//     added.
package kindswitch

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"adsketch/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "kindswitch",
	Doc: "require switches over kind enums to cover every kind or carry a default, and " +
		"functions enumerating Request query fields to enumerate all of them",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if sw, ok := n.(*ast.SwitchStmt); ok {
				checkSwitch(pass, sw)
			}
			return true
		})
	}
	checkRequestCoverage(pass)
	return nil
}

// moduleLocal reports whether the declaring package belongs to the same
// module as the analyzed package (shared first path segment), excluding
// the standard library and third-party enums from the check.
func moduleLocal(pass *analysis.Pass, pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	first := func(p string) string {
		if i := strings.IndexByte(p, '/'); i >= 0 {
			return p[:i]
		}
		return p
	}
	return pkg == pass.Pkg || first(pkg.Path()) == first(pass.Pkg.Path())
}

// enumMembers returns the named constants of type t declared in its own
// package, keyed by exact constant value.
func enumMembers(named *types.Named) map[string]string {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	members := make(map[string]string)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		members[c.Val().ExactString()] = c.Name()
	}
	return members
}

// checkSwitch applies the enum exhaustiveness check to one switch.
func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	t := pass.TypesInfo.TypeOf(sw.Tag)
	if t == nil {
		return
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || !moduleLocal(pass, named.Obj().Pkg()) {
		return
	}
	members := enumMembers(named)
	if len(members) < 2 {
		return
	}
	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default handles future kinds
		}
		for _, e := range cc.List {
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	var missing []string
	for val, name := range members {
		if !covered[val] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(), "switch on %s is not exhaustive: missing %s — add the missing cases or an explicit default (e.g. return ErrUnsupportedQuery)",
		named.Obj().Name(), strings.Join(missing, ", "))
}

// requestQueryFields returns the *XxxQuery pointer fields of a struct
// type named Request declared in the analyzed package, if any.
func requestQueryFields(pass *analysis.Pass) []*types.Var {
	obj := pass.Pkg.Scope().Lookup("Request")
	if obj == nil {
		return nil
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var fields []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		ptr, ok := f.Type().(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := types.Unalias(ptr.Elem()).(*types.Named)
		if ok && strings.HasSuffix(named.Obj().Name(), "Query") {
			fields = append(fields, f)
		}
	}
	return fields
}

// checkRequestCoverage flags functions that enumerate most — but not
// all — of the Request query fields.
func checkRequestCoverage(pass *analysis.Pass) {
	fields := requestQueryFields(pass)
	if len(fields) < 2 {
		return
	}
	index := make(map[types.Object]int, len(fields))
	for i, f := range fields {
		index[f] = i
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			seen := make(map[int]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if s, ok := pass.TypesInfo.Selections[sel]; ok {
					if i, tracked := index[s.Obj()]; tracked {
						seen[i] = true
					}
				}
				return true
			})
			if len(seen) <= len(fields)/2 || len(seen) == len(fields) {
				continue
			}
			var missing []string
			for i, fld := range fields {
				if !seen[i] {
					missing = append(missing, fld.Name())
				}
			}
			pass.Reportf(fd.Name.Pos(), "%s handles %d of %d Request query kinds (missing %s): handle every kind or dispatch through Request.Query()",
				fd.Name.Name, len(seen), len(fields), strings.Join(missing, ", "))
		}
	}
}
