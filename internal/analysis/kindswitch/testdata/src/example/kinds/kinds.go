// Package kinds is a kindswitch fixture: a sketch-flavor enum and a
// Request envelope with query pointer fields.
package kinds

import "errors"

type Flavor int

const (
	BottomK Flavor = iota
	KMins
	KPartition
)

var ErrUnsupportedQuery = errors.New("unsupported query")

// missingCase silently ignores BottomK.
func missingCase(f Flavor) string {
	switch f { // want `switch on Flavor is not exhaustive: missing BottomK`
	case KMins:
		return "kmins"
	case KPartition:
		return "kpartition"
	}
	return ""
}

// allCases covers every flavor.
func allCases(f Flavor) string {
	switch f {
	case BottomK:
		return "bottomk"
	case KMins:
		return "kmins"
	case KPartition:
		return "kpartition"
	}
	return ""
}

// withDefault routes unknown kinds explicitly.
func withDefault(f Flavor) (string, error) {
	switch f {
	case KMins:
		return "kmins", nil
	default:
		return "", ErrUnsupportedQuery
	}
}

// nonEnum switches on a plain int: not an enum, not checked.
func nonEnum(n int) string {
	switch n {
	case 1:
		return "one"
	}
	return ""
}

type ClosenessQuery struct{ Node int }
type ReachQuery struct{ Node int }
type DistanceQuery struct{ From, To int }
type TopKQuery struct{ K int }

// Request is the protocol envelope: exactly one query field is set.
type Request struct {
	Dataset   string
	Closeness *ClosenessQuery
	Reach     *ReachQuery
	Distance  *DistanceQuery
	TopK      *TopKQuery
}

// partialDispatch enumerates three of the four query kinds.
func partialDispatch(r *Request) string { // want `partialDispatch handles 3 of 4 Request query kinds \(missing TopK\)`
	switch {
	case r.Closeness != nil:
		return "closeness"
	case r.Reach != nil:
		return "reach"
	case r.Distance != nil:
		return "distance"
	}
	return ""
}

// fullDispatch enumerates every query kind.
func fullDispatch(r *Request) string {
	switch {
	case r.Closeness != nil:
		return "closeness"
	case r.Reach != nil:
		return "reach"
	case r.Distance != nil:
		return "distance"
	case r.TopK != nil:
		return "topk"
	}
	return ""
}

// oneKind touches a single query field: handlers for one kind are fine.
func oneKind(r *Request) int {
	if r.Closeness != nil {
		return r.Closeness.Node
	}
	return -1
}
