package kindswitch

import (
	"testing"

	"adsketch/internal/analysis"
	"adsketch/internal/analysis/analysistest"
)

func TestKindswitch(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{Analyzer},
		"example/kinds",
	)
}
