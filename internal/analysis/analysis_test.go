package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkSrc type-checks one import-free source string and runs Check.
func checkSrc(t *testing.T, src string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	pkg, err := new(types.Config).Check("fixture", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Check(fset, []*ast.File{f}, pkg, info, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// flagCalls reports every call expression; the tests suppress it.
var flagCalls = &Analyzer{
	Name: "flagcalls",
	Doc:  "test analyzer: flags every call",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					pass.Reportf(call.Pos(), "call flagged")
				}
				return true
			})
		}
		return nil
	},
}

func TestSuppressionSameLine(t *testing.T) {
	diags := checkSrc(t, `package fixture
func g() int { return 1 }
func h() int {
	return g() //adsvet:ignore flagcalls fixture exercises same-line suppression
}
`, []*Analyzer{flagCalls})
	if len(diags) != 0 {
		t.Fatalf("same-line suppression failed: %v", diags)
	}
}

func TestSuppressionLineAbove(t *testing.T) {
	diags := checkSrc(t, `package fixture
func g() int { return 1 }
func h() int {
	//adsvet:ignore all fixture exercises line-above suppression with the all matcher
	return g()
}
`, []*Analyzer{flagCalls})
	if len(diags) != 0 {
		t.Fatalf("line-above suppression failed: %v", diags)
	}
}

func TestSuppressionWrongAnalyzer(t *testing.T) {
	diags := checkSrc(t, `package fixture
func g() int { return 1 }
func h() int {
	return g() //adsvet:ignore otherchecker reason mentioning a different analyzer
}
`, []*Analyzer{flagCalls})
	if len(diags) != 1 {
		t.Fatalf("directive for another analyzer must not suppress: %v", diags)
	}
}

func TestBareDirectiveIsReported(t *testing.T) {
	diags := checkSrc(t, `package fixture
func g() int { return 1 }
func h() int {
	return g() //adsvet:ignore flagcalls
}
`, []*Analyzer{flagCalls})
	var sawBare, sawCall bool
	for _, d := range diags {
		if d.Analyzer == "adsvet" && strings.Contains(d.Message, "needs a reason") {
			sawBare = true
		}
		if d.Analyzer == "flagcalls" {
			sawCall = true
		}
	}
	if !sawBare {
		t.Fatalf("reason-less directive not reported: %v", diags)
	}
	if !sawCall {
		t.Fatalf("reason-less directive must not suppress: %v", diags)
	}
}

func TestPathMatches(t *testing.T) {
	if !PathMatches("adsketch/internal/core", "internal/core") {
		t.Fatal("suffix match failed")
	}
	if !PathMatches("internal/core", "internal/core") {
		t.Fatal("exact match failed")
	}
	if PathMatches("adsketch/internal/coremath", "internal/core") {
		t.Fatal("partial segment must not match")
	}
}
