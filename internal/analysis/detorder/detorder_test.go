package detorder

import (
	"testing"

	"adsketch/internal/analysis"
	"adsketch/internal/analysis/analysistest"
)

func TestDetorder(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{Analyzer},
		"internal/core",
		"internal/distbuild",
		"example/plain",
	)
}
