// Package plain is outside the detorder scope: the same patterns that
// are flagged in determinism-critical packages are fine here.
package plain

import "time"

func appendUnsorted(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func wallClock() int64 {
	return time.Now().UnixNano()
}
