// Package distbuild is a detorder fixture standing in for the
// distributed-build package (its import path suffix-matches the
// analyzer scope).  Byte-parity with the single-process build depends
// on candidates moving between partitions in canonical order, so map
// iteration must never decide what a worker emits.
package distbuild

import (
	"sort"
	"time"
)

type candidate struct {
	Target int32
	Node   int32
	Dist   float64
}

// groupByOwnerMap buckets an outbox with a map and drains it in range
// order — the exchange would deliver candidates in a different order
// every run.
func groupByOwnerMap(outbox map[int][]candidate) []candidate {
	var flat []candidate
	for _, group := range outbox {
		flat = append(flat, group...) // want `appends to flat in map-iteration order without sorting`
	}
	return flat
}

// groupThenSort drains the same map but restores the canonical
// (dist, target, node) order before anything consumes it.
func groupThenSort(outbox map[int][]candidate) []candidate {
	var flat []candidate
	for _, group := range outbox {
		flat = append(flat, group...)
	}
	sort.Slice(flat, func(i, j int) bool {
		a, b := flat[i], flat[j]
		if a.Dist != b.Dist {
			return a.Dist < b.Dist
		}
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		return a.Node < b.Node
	})
	return flat
}

// groupByOwnerSlice is the idiom the real package uses: partition-indexed
// slices never depend on map order at all.
func groupByOwnerSlice(parts int, owner func(candidate) int, cands []candidate) [][]candidate {
	out := make([][]candidate, parts)
	for _, c := range cands {
		p := owner(c)
		out[p] = append(out[p], c)
	}
	return out
}

// exchangeFromMap feeds a round barrier straight from a map range.
func exchangeFromMap(inboxes map[int][]candidate, deliver chan []candidate) {
	for _, inbox := range inboxes {
		deliver <- inbox // want `map iteration order reaches a channel send`
	}
}

// roundStamp would make two runs of the same build diverge.
func roundStamp() int64 {
	return time.Now().UnixNano() // want `time.Now in determinism-critical package`
}

// tallyStats is order-independent: counter sums commute.
func tallyStats(perWorker map[int]int64) int64 {
	var total int64
	for _, n := range perWorker {
		total += n
	}
	return total
}
