// Package core is a detorder fixture standing in for a
// determinism-critical package (its import path suffix-matches the
// analyzer scope).
package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

type frontier struct{ items []int }

func (f *frontier) Push(v int) { f.items = append(f.items, v) }

// appendUnsorted leaks map order into its result.
func appendUnsorted(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `appends to keys in map-iteration order without sorting`
	}
	return keys
}

// collectThenSort is the canonical deterministic idiom: append inside
// the range, sort before use.
func collectThenSort(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// writeInOrder leaks map order into an output stream.
func writeInOrder(m map[string]int, buf *bytes.Buffer) {
	for k := range m {
		buf.WriteString(k) // want `map iteration order writes output via WriteString`
	}
}

// feedFrontier leaks map order into traversal order.
func feedFrontier(m map[int]bool, f *frontier) {
	for k := range m {
		f.Push(k) // want `map iteration order feeds a frontier via Push`
	}
}

// sendInOrder leaks map order through a channel.
func sendInOrder(m map[int]bool, ch chan int) {
	for k := range m {
		ch <- k // want `map iteration order reaches a channel send`
	}
}

// accumulate is order-independent: sums commute.
func accumulate(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}

// localAppend appends to a slice scoped inside the loop body; nothing
// ordered escapes.
func localAppend(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		n += len(tmp)
	}
	return n
}

// wallClock embeds wall-clock time in a deterministic path.
func wallClock() int64 {
	return time.Now().UnixNano() // want `time.Now in determinism-critical package`
}

// globalRand draws from the shared unseeded source.
func globalRand() int {
	return rand.Intn(10) // want `rand.Intn draws from the global unseeded source`
}

// seededRand is reproducible: explicit seed, local source.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func show(v int) { fmt.Sprint(v) }
