// Package detorder flags nondeterministic iteration and time/randomness
// sources in determinism-critical packages.
//
// The HIP/ADS correctness claims (estimator output bit-for-bit stable
// across refactors, incremental ingest byte-equal to a full Build) only
// hold when the (distance, rank) processing order is canonical.  PR 3
// learned this the hard way: map-iteration order silently made seeded
// graph.PreferentialAttachment nondeterministic, and a flaky golden
// fixture caught it instead of tooling.  In internal/core,
// internal/ingest, internal/graph, internal/cluster, and
// internal/distbuild this analyzer flags:
//
//   - `range` over a map whose body appends to an outer slice without a
//     subsequent sort of that slice in the same function, writes output
//     (Write*/Fprint*/Print*/Encode), feeds a frontier (Push/Enqueue),
//     or sends on a channel — all of which leak map order into results;
//   - time.Now — wall-clock values embedded in deterministic paths;
//   - package-level math/rand and math/rand/v2 functions, which draw
//     from the shared unseeded source; use rand.New(rand.NewSource(seed)).
package detorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"adsketch/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc: "flag map-order-dependent iteration, time.Now, and unseeded math/rand in determinism-critical " +
		"packages (internal/core, internal/ingest, internal/graph, internal/cluster, internal/distbuild)",
	Run: run,
}

// scope lists the determinism-critical package-path suffixes.
var scope = []string{"internal/core", "internal/ingest", "internal/graph", "internal/cluster", "internal/distbuild"}

// orderSinks are call names inside a map range whose effects are ordered:
// output writers, printers, encoders, and frontier feeders.
var orderSinks = map[string]string{
	"Write":       "writes output",
	"WriteString": "writes output",
	"WriteByte":   "writes output",
	"WriteRune":   "writes output",
	"Fprint":      "writes output",
	"Fprintf":     "writes output",
	"Fprintln":    "writes output",
	"Print":       "writes output",
	"Printf":      "writes output",
	"Println":     "writes output",
	"Encode":      "writes output",
	"Push":        "feeds a frontier",
	"Enqueue":     "feeds a frontier",
}

// seededConstructors are math/rand functions that do not touch the
// global source.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatches(pass.Pkg.Path(), scope...) {
		return nil
	}
	checkGlobals(pass)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkMapRanges(pass, fd.Body)
			}
		}
	}
	return nil
}

// checkGlobals flags every use of time.Now and of package-level
// math/rand functions backed by the shared unseeded source.
func checkGlobals(pass *analysis.Pass) {
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || pass.InTestFile(id.Pos()) {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue // methods (e.g. on *rand.Rand) are seeded by construction
		}
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" {
				pass.Reportf(id.Pos(), "time.Now in determinism-critical package %s: outputs must not depend on wall-clock time", pass.Pkg.Path())
			}
		case "math/rand", "math/rand/v2":
			if !seededConstructors[fn.Name()] {
				pass.Reportf(id.Pos(), "%s.%s draws from the global unseeded source; use rand.New(rand.NewSource(seed)) so runs are reproducible", fn.Pkg().Name(), fn.Name())
			}
		}
	}
}

// checkMapRanges walks one function body flagging map ranges whose
// bodies leak iteration order.
func checkMapRanges(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv := pass.TypesInfo.TypeOf(rs.X)
		if tv == nil {
			return true
		}
		if _, isMap := tv.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapBody(pass, body, rs)
		return true
	})
}

// checkMapBody inspects the body of one map range.
func checkMapBody(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	appendTargets := make(map[types.Object]token.Pos)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "map iteration order reaches a channel send; iterate sorted keys instead")
		case *ast.CallExpr:
			if what, ok := orderSinks[calleeName(n)]; ok {
				pass.Reportf(n.Pos(), "map iteration order %s via %s; iterate sorted keys instead", what, calleeName(n))
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || calleeName(call) != "append" || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(id)
				// Only appends to slices declared outside the loop body
				// leak order out of the loop.
				if obj != nil && !(rs.Body.Pos() <= obj.Pos() && obj.Pos() <= rs.Body.End()) {
					appendTargets[obj] = n.Pos()
				}
			}
		}
		return true
	})
	for obj, pos := range appendTargets {
		if !sortedAfter(pass, fnBody, rs.End(), obj) {
			pass.Reportf(pos, "appends to %s in map-iteration order without sorting it afterwards; sort before use (collect-then-sort) to keep output canonical", obj.Name())
		}
	}
}

// sortedAfter reports whether obj is passed to a sort.*/slices.* call
// (or its own Sort method) after pos within the function body — the
// collect-then-sort idiom that makes a map range deterministic.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// obj.Sort(...) method form.
		if id, ok := sel.X.(*ast.Ident); ok && sel.Sel.Name == "Sort" && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
			return false
		}
		// sort.Xxx(obj, ...) / slices.SortXxx(obj, ...) package form.
		if fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func); ok && fn.Pkg() != nil {
			if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
				for _, arg := range call.Args {
					if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

// calleeName extracts the bare name of a call's callee.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
