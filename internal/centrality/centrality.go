// Package centrality provides the graph-analysis applications the paper
// motivates (Section 1): closeness and distance-decay centralities,
// neighborhood cardinalities, distance distributions, and top-N centrality
// rankings, all estimated from an ADS set via the HIP estimators, together
// with exact baselines for evaluation.
//
// All queries are answered from the sketches alone — no graph traversals —
// and the kernel α and node filter β may be chosen after the sketches are
// built, the query flexibility that distinguishes HIP from earlier
// per-β sketch constructions (Section 9 discussion).
package centrality

import (
	"math"
	"sort"

	"adsketch/internal/core"
	"adsketch/internal/graph"
)

// Source is the narrow view of a sketch set the estimator queries: any
// set kind (uniform, weighted, approximate) that exposes per-node
// sketches through the shared query interface.
type Source interface {
	NumNodes() int
	SketchOf(v int32) core.Sketch
}

// Estimator answers centrality queries from a prebuilt sketch set.
type Estimator struct {
	set Source
}

// NewEstimator wraps a sketch set.
func NewEstimator(set Source) *Estimator { return &Estimator{set: set} }

// Set returns the underlying sketch set.
func (e *Estimator) Set() Source { return e.set }

// NeighborhoodSize estimates n_d(v) with the HIP estimator.
func (e *Estimator) NeighborhoodSize(v int32, d float64) float64 {
	return core.EstimateNeighborhoodHIP(e.set.SketchOf(v), d)
}

// Reachable estimates the number of nodes reachable from v (including v).
func (e *Estimator) Reachable(v int32) float64 {
	return core.EstimateCentrality(e.set.SketchOf(v), core.KernelReachability, core.UnitBeta)
}

// SumDistances estimates Σ_j d_vj over reachable nodes.
func (e *Estimator) SumDistances(v int32) float64 {
	return core.EstimateCentrality(e.set.SketchOf(v), core.KernelIdentity, core.UnitBeta)
}

// Closeness estimates the classic closeness centrality 1/Σ_j d_vj.
// It returns 0 when the estimated distance sum is 0 (isolated node).
func (e *Estimator) Closeness(v int32) float64 {
	s := e.SumDistances(v)
	if s <= 0 {
		return 0
	}
	return 1 / s
}

// Harmonic estimates Σ_{j != v} 1/d_vj.
func (e *Estimator) Harmonic(v int32) float64 {
	return core.EstimateCentrality(e.set.SketchOf(v), core.KernelHarmonic, core.UnitBeta)
}

// ExponentialDecay estimates Σ_j 2^{-d_vj} (excluding v itself, which
// contributes α(0)=1 and is subtracted).
func (e *Estimator) ExponentialDecay(v int32) float64 {
	c := core.EstimateCentrality(e.set.SketchOf(v), core.KernelExponential, core.UnitBeta)
	return c - 1 // the owner's own α(0)β(v) term
}

// Custom estimates C_{α,β}(v) for caller-supplied kernel and node filter.
func (e *Estimator) Custom(v int32, alpha func(float64) float64, beta func(int32) float64) float64 {
	return core.EstimateCentrality(e.set.SketchOf(v), alpha, beta)
}

// DistanceDistribution estimates the graph's distance distribution: for
// each query distance d, the number of ordered pairs (u,v) with
// d_uv <= d, by summing per-node HIP neighborhood estimates.
func (e *Estimator) DistanceDistribution(ds []float64) []float64 {
	out := make([]float64, len(ds))
	for v := int32(0); int(v) < e.set.NumNodes(); v++ {
		entries := e.set.SketchOf(v).HIPEntries()
		i := 0
		sum := 0.0
		for j, d := range ds {
			for i < len(entries) && entries[i].Dist <= d {
				sum += entries[i].Weight
				i++
			}
			out[j] += sum
		}
	}
	return out
}

// Ranked is one node with its centrality score.  The JSON tags are the
// wire shape of the ranking entries served by the query protocol.
type Ranked struct {
	Node  int32   `json:"node"`
	Score float64 `json:"score"`
}

// TopCloseness returns the estimated top-n nodes by closeness centrality,
// highest first (ties broken by node ID for determinism).
func (e *Estimator) TopCloseness(n int) []Ranked {
	return e.topBy(n, e.Closeness)
}

// TopHarmonic returns the estimated top-n nodes by harmonic centrality.
func (e *Estimator) TopHarmonic(n int) []Ranked {
	return e.topBy(n, e.Harmonic)
}

func (e *Estimator) topBy(n int, score func(int32) float64) []Ranked {
	all := make([]Ranked, e.set.NumNodes())
	for v := int32(0); int(v) < e.set.NumNodes(); v++ {
		all[v] = Ranked{Node: v, Score: score(v)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Node < all[j].Node
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// Exact baselines.

// ExactExponentialDecay computes Σ_{j != v} 2^{-d_vj} by traversal.
func ExactExponentialDecay(g *graph.Graph, v int32) float64 {
	sum := 0.0
	for _, nd := range graph.NearestOrder(g, v) {
		if nd.Node == v {
			continue
		}
		sum += math.Exp2(-nd.Dist)
	}
	return sum
}

// ExactTopCloseness returns the true top-n closeness ranking.
func ExactTopCloseness(g *graph.Graph, n int) []Ranked {
	all := make([]Ranked, g.NumNodes())
	for v := int32(0); int(v) < g.NumNodes(); v++ {
		all[v] = Ranked{Node: v, Score: graph.Closeness(g, v)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Node < all[j].Node
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// TopOverlap returns |A ∩ B| / n for two top-n rankings — the precision of
// an estimated ranking against the exact one.
func TopOverlap(a, b []Ranked) float64 {
	if len(a) == 0 {
		return 0
	}
	inA := make(map[int32]bool, len(a))
	for _, r := range a {
		inA[r.Node] = true
	}
	hit := 0
	for _, r := range b {
		if inA[r.Node] {
			hit++
		}
	}
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	return float64(hit) / float64(n)
}

// SpearmanRho returns the Spearman rank correlation between two score
// vectors over the same node set — a standard quality measure for
// estimated centrality rankings against exact ones.
func SpearmanRho(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra := ranksOf(a)
	rb := ranksOf(b)
	n := float64(len(a))
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// ranksOf assigns average ranks (1-based, ties averaged).
func ranksOf(x []float64) []float64 {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return x[idx[i]] < x[idx[j]] })
	out := make([]float64, len(x))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && x[idx[j]] == x[idx[i]] {
			j++
		}
		avg := (float64(i) + float64(j-1)) / 2
		for t := i; t < j; t++ {
			out[idx[t]] = avg + 1
		}
		i = j
	}
	return out
}
