package centrality

import (
	"math"
	"testing"

	"adsketch/internal/core"
	"adsketch/internal/graph"
	"adsketch/internal/sketch"
	"adsketch/internal/stats"
)

func buildEstimator(t *testing.T, g *graph.Graph, k int, seed uint64) *Estimator {
	t.Helper()
	set, err := core.BuildSet(g, core.Options{K: k, Flavor: sketch.BottomK, Seed: seed}, core.AlgoPrunedDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	return NewEstimator(set)
}

func TestNeighborhoodSizeUnbiased(t *testing.T) {
	g := graph.PreferentialAttachment(400, 3, 1)
	exact := float64(graph.NeighborhoodSize(g, 17, 2))
	const runs = 250
	acc := stats.NewErrAccum(exact)
	for run := 0; run < runs; run++ {
		e := buildEstimator(t, g, 8, uint64(run)+100)
		acc.Add(e.NeighborhoodSize(17, 2))
	}
	if bias := acc.Bias(); math.Abs(bias) > 0.05 {
		t.Errorf("neighborhood size bias = %+.3f (exact %g)", bias, exact)
	}
}

func TestReachableExactOnConnected(t *testing.T) {
	g := graph.Cycle(100)
	e := buildEstimator(t, g, 4, 7)
	for _, v := range []int32{0, 42} {
		got := e.Reachable(v)
		// HIP estimate of a fixed quantity is random but should be near n.
		if got < 30 || got > 300 {
			t.Errorf("reachable(%d) = %g, want ~100", v, got)
		}
	}
}

func TestClosenessAgainstExact(t *testing.T) {
	g := graph.GNP(300, 0.03, false, 5)
	const v = 11
	exactSum := 0.0
	for _, nd := range graph.NearestOrder(g, v) {
		exactSum += nd.Dist
	}
	const runs = 250
	acc := stats.NewErrAccum(exactSum)
	for run := 0; run < runs; run++ {
		e := buildEstimator(t, g, 8, uint64(run)+3000)
		acc.Add(e.SumDistances(v))
	}
	if bias := acc.Bias(); math.Abs(bias) > 0.05 {
		t.Errorf("sum-of-distances bias = %+.3f", bias)
	}
	if acc.NRMSE() > 1.5*sketch.HIPCV(8) {
		t.Errorf("sum-of-distances NRMSE %g above ~HIP bound %g", acc.NRMSE(), sketch.HIPCV(8))
	}
	// Closeness = 1/SumDistances.
	e := buildEstimator(t, g, 8, 1)
	if got, want := e.Closeness(v), 1/e.SumDistances(v); math.Abs(got-want) > 1e-12 {
		t.Errorf("Closeness inconsistency: %g vs %g", got, want)
	}
}

func TestClosenessZeroForIsolated(t *testing.T) {
	g := graph.NewBuilder(3, false).Build() // no edges
	e := buildEstimator(t, g, 2, 1)
	if got := e.Closeness(0); got != 0 {
		t.Errorf("isolated closeness = %g, want 0", got)
	}
}

func TestHarmonicAndExponentialDecay(t *testing.T) {
	g := graph.Grid(12, 12)
	const v = 40
	exactH := graph.HarmonicCentrality(g, v)
	exactE := ExactExponentialDecay(g, v)
	const runs = 250
	accH := stats.NewErrAccum(exactH)
	accE := stats.NewErrAccum(exactE)
	for run := 0; run < runs; run++ {
		e := buildEstimator(t, g, 8, uint64(run)+500)
		accH.Add(e.Harmonic(v))
		accE.Add(e.ExponentialDecay(v))
	}
	if bias := accH.Bias(); math.Abs(bias) > 0.06 {
		t.Errorf("harmonic bias = %+.3f", bias)
	}
	if bias := accE.Bias(); math.Abs(bias) > 0.06 {
		t.Errorf("exponential-decay bias = %+.3f", bias)
	}
}

func TestCustomBetaFilter(t *testing.T) {
	g := graph.PreferentialAttachment(200, 2, 9)
	attr := make([]float64, g.NumNodes())
	for i := range attr {
		if i%3 == 0 {
			attr[i] = 2.5
		}
	}
	beta := func(n int32) float64 { return attr[n] }
	const v = 33
	exact := 0.0
	for _, nd := range graph.NearestOrder(g, v) {
		if nd.Dist <= 2 {
			exact += attr[nd.Node]
		}
	}
	const runs = 300
	acc := stats.NewErrAccum(exact)
	for run := 0; run < runs; run++ {
		e := buildEstimator(t, g, 8, uint64(run)+800)
		acc.Add(e.Custom(v, core.KernelThreshold(2), beta))
	}
	if bias := acc.Bias(); math.Abs(bias) > 0.06 {
		t.Errorf("custom beta bias = %+.3f (exact %g)", bias, exact)
	}
}

func TestDistanceDistributionMatchesExact(t *testing.T) {
	g := graph.Grid(10, 10)
	nf := graph.NeighborhoodFunction(g)
	ds := []float64{0, 1, 2, 5, 10, 18}
	const runs = 120
	accs := make([]*stats.ErrAccum, len(ds))
	for i, d := range ds {
		t := int(d)
		if t >= len(nf) {
			t = len(nf) - 1
		}
		accs[i] = stats.NewErrAccum(float64(nf[t]))
	}
	for run := 0; run < runs; run++ {
		e := buildEstimator(t, g, 8, uint64(run)+1700)
		got := e.DistanceDistribution(ds)
		for i := range ds {
			accs[i].Add(got[i])
		}
	}
	for i, d := range ds {
		if bias := accs[i].Bias(); math.Abs(bias) > 0.05 {
			t.Errorf("distance distribution at d=%g: bias %+.3f", d, bias)
		}
	}
	// d=0 should be exactly n (every sketch holds its owner with weight 1).
	e := buildEstimator(t, g, 4, 3)
	if got := e.DistanceDistribution([]float64{0})[0]; got != 100 {
		t.Errorf("pairs within 0 = %g, want exactly 100", got)
	}
}

func TestTopClosenessOverlap(t *testing.T) {
	// On a small-diameter BA graph closeness scores bunch tightly, so an
	// exact match of the top-10 is not a fair ask of any sketch; what must
	// hold is that the estimated top-10 lands inside the true near-top.
	g := graph.PreferentialAttachment(300, 3, 21)
	exactTop30 := ExactTopCloseness(g, 30)
	inTop30 := map[int32]bool{}
	for _, r := range exactTop30 {
		inTop30[r.Node] = true
	}
	hits, total := 0, 0
	for seed := uint64(0); seed < 5; seed++ {
		e := buildEstimator(t, g, 64, seed*17+9)
		estTop := e.TopCloseness(10)
		if len(estTop) != 10 {
			t.Fatalf("top list length %d", len(estTop))
		}
		for _, r := range estTop {
			total++
			if inTop30[r.Node] {
				hits++
			}
		}
		// Scores sorted descending.
		for i := 1; i < len(estTop); i++ {
			if estTop[i].Score > estTop[i-1].Score {
				t.Fatal("top list not sorted")
			}
		}
	}
	if precision := float64(hits) / float64(total); precision < 0.75 {
		t.Errorf("estimated top-10 inside exact top-30: precision %g, want >= 0.75", precision)
	}
}

func TestTopHarmonicRuns(t *testing.T) {
	g := graph.Star(50)
	e := buildEstimator(t, g, 8, 2)
	top := e.TopHarmonic(3)
	if top[0].Node != 0 {
		t.Errorf("star center not top harmonic node: %+v", top[0])
	}
	if e.Set() == nil {
		t.Error("Set accessor")
	}
}

func TestTopOverlapEdgeCases(t *testing.T) {
	if TopOverlap(nil, nil) != 0 {
		t.Error("empty overlap should be 0")
	}
	a := []Ranked{{1, 1}, {2, 0.5}}
	if got := TopOverlap(a, a); got != 1 {
		t.Errorf("self overlap = %g", got)
	}
	b := []Ranked{{3, 1}, {4, 0.5}}
	if got := TopOverlap(a, b); got != 0 {
		t.Errorf("disjoint overlap = %g", got)
	}
}

func TestExactTopClosenessTruncation(t *testing.T) {
	g := graph.Path(5)
	top := ExactTopCloseness(g, 100)
	if len(top) != 5 {
		t.Errorf("truncation failed: %d", len(top))
	}
	// Path centers maximize closeness.
	if top[0].Node != 2 {
		t.Errorf("path center not first: %+v", top[0])
	}
}

func TestSpearmanRho(t *testing.T) {
	if got := SpearmanRho([]float64{1, 2, 3, 4}, []float64{2, 4, 6, 8}); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect correlation = %g", got)
	}
	if got := SpearmanRho([]float64{1, 2, 3}, []float64{3, 2, 1}); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %g", got)
	}
	if got := SpearmanRho([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("constant vector correlation = %g", got)
	}
	if got := SpearmanRho([]float64{1}, []float64{2}); got != 0 {
		t.Errorf("degenerate input = %g", got)
	}
	if got := SpearmanRho([]float64{1, 2}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("mismatched lengths = %g", got)
	}
	// Ties averaged: x = {1,1,2}, y = {1,2,3}: ranks x = {1.5,1.5,3}.
	got := SpearmanRho([]float64{1, 1, 2}, []float64{1, 2, 3})
	if got <= 0.5 || got >= 1 {
		t.Errorf("tied correlation = %g, want in (0.5, 1)", got)
	}
}

func TestEstimatedClosenessCorrelatesWithExact(t *testing.T) {
	// A grid has a strong closeness gradient (center vs corners), so the
	// estimated ranking must correlate strongly with the exact one.  (On
	// small-diameter expanders closeness values bunch within the sketch
	// noise and rank agreement is inherently weak for any sketch.)
	g := graph.Grid(14, 14)
	e := buildEstimator(t, g, 32, 5)
	est := make([]float64, g.NumNodes())
	exact := make([]float64, g.NumNodes())
	for v := int32(0); int(v) < g.NumNodes(); v++ {
		est[v] = e.Closeness(v)
		exact[v] = graph.Closeness(g, v)
	}
	if rho := SpearmanRho(est, exact); rho < 0.85 {
		t.Errorf("Spearman rho = %g, want strong rank agreement", rho)
	}
}
