// Package catalog implements the machinery of a named, versioned dataset
// registry: concurrency-safe attach/swap/detach with ref-counted version
// handles, drain-on-swap semantics (a swapped-out version's resources are
// released only when its last in-flight reader finishes), and LRU
// eviction of idle reloadable entries under a memory budget.
//
// The package is generic over what an entry holds — the adsketch root
// package instantiates it with serving backends (Engine / Coordinator),
// but nothing here knows about sketches.  The contract with the caller:
//
//   - an Opener materializes one version of an entry: the served value,
//     its resident cost in bytes, and a release hook run exactly once
//     when the version is retired (swapped out, detached, or evicted)
//     and its last reader released;
//   - openers and release hooks must not call back into the registry
//     (Acquire may run an opener while holding the registry lock);
//   - every Acquire must be paired with exactly one Handle.Release (the
//     per-query hot path, View, pairs them internally).
//
// Pinning is built for the serving hot path: taking a reference is one
// short critical section, dropping one is an atomic decrement (the slow
// path — draining a retired version, enforcing the budget — locks only
// when there is such work to do).
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Typed sentinel errors; match with errors.Is.
var (
	// ErrUnknown reports an operation on a name with no attached entry.
	ErrUnknown = errors.New("catalog: unknown entry")
	// ErrExists reports an Attach of a name that is already attached.
	ErrExists = errors.New("catalog: entry already attached")
)

// Opener materializes one version of an entry.  It returns the value to
// serve, the value's resident memory cost in bytes (0 when the value is
// effectively free to hold, e.g. file-backed mmap pages), and an optional
// release hook run exactly once when the version's last reference drops
// after it has been retired.
type Opener[T any] func() (value T, cost int64, release func(), err error)

// version is one materialized version of an entry.  refs and retired are
// touched lock-free on the unpin fast path; everything else is guarded
// by the registry mutex.
type version[T any] struct {
	value   T
	cost    int64
	release func()
	refs    atomic.Int64 // live readers
	retired atomic.Bool  // swapped out, detached, or evicted
	counted bool         // retired with live refs: counted in entry.draining
	drained bool         // release hook fired (or queued)
}

// entry is one named dataset: its current version (nil while evicted),
// its opener (for eviction reload), and bookkeeping.  Guarded by the
// registry mutex.
type entry[T any] struct {
	name       string
	version    int // current version number, 1-based, bumped by every swap
	open       Opener[T]
	reloadable bool
	cur        *version[T] // nil when evicted
	lastUsed   int64       // registry clock tick of the last pin
	evictions  int64
	draining   int // retired versions still holding references
}

// Stats is a point-in-time snapshot of one entry's lifecycle counters.
type Stats struct {
	// Name is the entry's registry key.
	Name string
	// Version is the current version number (1 on first attach).
	Version int
	// Refs counts live pins on the current version.
	Refs int
	// Draining counts retired versions still held by in-flight readers.
	Draining int
	// Resident reports whether the current version is materialized (an
	// evicted entry reloads on the next pin).
	Resident bool
	// Reloadable reports whether the entry can be evicted and reloaded.
	Reloadable bool
	// Cost is the resident byte cost of the current version (0 when
	// evicted).
	Cost int64
	// Evictions counts how many times the entry has been evicted.
	Evictions int64
}

// Registry is a concurrency-safe map of named, versioned values.  The
// zero value is not usable; construct with New.
type Registry[T any] struct {
	mu       sync.Mutex
	budget   int64                // resident-cost budget in bytes; 0 = unlimited
	entries  map[string]*entry[T] // guarded by mu
	clock    int64                // guarded by mu; LRU tick, bumped on pin
	resident atomic.Int64         // summed cost of materialized versions (incl. draining)
	// evictable counts resident current versions the budget could evict
	// (reloadable, non-zero cost).  The unpin fast path reads it so an
	// over-budget registry whose mass is all unevictable — in-memory or
	// mmap datasets — does not fall into a fruitless lock-and-scan on
	// every query release.
	evictable atomic.Int64
}

// New returns an empty registry.  budget bounds the summed resident cost
// of materialized versions: when exceeded, idle (refs == 0) reloadable
// entries are evicted in LRU order.  budget <= 0 disables eviction.
func New[T any](budget int64) *Registry[T] {
	if budget < 0 {
		budget = 0
	}
	return &Registry[T]{budget: budget, entries: make(map[string]*entry[T])}
}

// Budget returns the configured resident-cost budget (0 = unlimited).
func (r *Registry[T]) Budget() int64 { return r.budget }

// Resident returns the summed resident cost of materialized versions,
// including retired versions still draining.
func (r *Registry[T]) Resident() int64 { return r.resident.Load() }

// Attach registers a new entry under name, materializing its first
// version immediately (so a bad opener fails the attach, not a later
// query).  It fails with ErrExists when the name is taken.
func (r *Registry[T]) Attach(name string, open Opener[T], reloadable bool) error {
	r.mu.Lock()
	_, taken := r.entries[name]
	r.mu.Unlock()
	if taken {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	value, cost, release, err := open()
	if err != nil {
		return err
	}
	var fire []func()
	defer runAll(&fire)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.entries[name]; taken {
		// Lost a race with a concurrent Attach: discard our version.
		if release != nil {
			fire = append(fire, release)
		}
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	e := &entry[T]{name: name, version: 1, open: open, reloadable: reloadable}
	e.cur = &version[T]{value: value, cost: cost, release: release}
	r.clock++
	e.lastUsed = r.clock
	r.entries[name] = e
	r.resident.Add(cost)
	r.countInstalled(e)
	r.maintain(&fire)
	return nil
}

// countInstalled / countRemoved keep the evictable counter in step with
// e.cur transitions.  Callers hold the lock and invoke them with the
// entry's reloadable flag as it was when the version was current.
func (r *Registry[T]) countInstalled(e *entry[T]) {
	if e.reloadable && e.cur != nil && e.cur.cost > 0 {
		r.evictable.Add(1)
	}
}

func (r *Registry[T]) countRemoved(old *version[T], wasReloadable bool) {
	if wasReloadable && old != nil && old.cost > 0 {
		r.evictable.Add(-1)
	}
}

// Swap atomically publishes a new version of name (attaching it when
// absent) and returns the new version number.  The new version is
// materialized before the old one is retired, so a failing opener leaves
// the old version serving untouched; the old version's release hook runs
// once its last in-flight reader releases.
func (r *Registry[T]) Swap(name string, open Opener[T], reloadable bool) (int, error) {
	value, cost, release, err := open()
	if err != nil {
		return 0, err
	}
	var fire []func()
	defer runAll(&fire)
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[name]
	if e == nil {
		e = &entry[T]{name: name}
		r.entries[name] = e
	}
	e.version++
	e.open = open
	old, wasReloadable := e.cur, e.reloadable
	e.reloadable = reloadable
	r.clock++
	e.lastUsed = r.clock
	e.cur = &version[T]{value: value, cost: cost, release: release}
	r.resident.Add(cost)
	r.countRemoved(old, wasReloadable)
	r.countInstalled(e)
	r.retire(e, old, &fire)
	r.maintain(&fire)
	return e.version, nil
}

// Detach removes name from the registry.  The current version's release
// hook runs once its last in-flight reader releases (immediately when
// idle).
func (r *Registry[T]) Detach(name string) error {
	var fire []func()
	defer runAll(&fire)
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[name]
	if e == nil {
		return fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	delete(r.entries, name)
	old := e.cur
	e.cur = nil
	r.countRemoved(old, e.reloadable)
	r.retire(e, old, &fire)
	return nil
}

// Close detaches every entry.  Versions held by in-flight readers drain
// as usual.
func (r *Registry[T]) Close() {
	var fire []func()
	defer runAll(&fire)
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, e := range r.entries {
		delete(r.entries, name)
		old := e.cur
		e.cur = nil
		r.countRemoved(old, e.reloadable)
		r.retire(e, old, &fire)
	}
}

// pin takes a reference on name's current version, reloading an evicted
// entry through its opener first.  The opener runs outside the registry
// lock — a slow file decode must not stall queries on other datasets —
// so concurrent pins of the same evicted entry may both open; the loser
// discards its copy and uses the installed one.  pin returns the version
// number observed under the lock; the caller must pair it with unpin.
func (r *Registry[T]) pin(name string) (*entry[T], *version[T], int, error) {
	var fire []func()
	defer runAll(&fire)
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		e := r.entries[name]
		if e == nil {
			return nil, nil, 0, fmt.Errorf("%w: %q", ErrUnknown, name)
		}
		if e.cur != nil {
			if r.budget > 0 {
				// LRU position only matters when eviction is on.
				r.clock++
				e.lastUsed = r.clock
			}
			e.cur.refs.Add(1)
			return e, e.cur, e.version, nil
		}
		open, vn := e.open, e.version
		r.mu.Unlock()
		value, cost, release, err := open()
		r.mu.Lock()
		if err != nil {
			return nil, nil, 0, fmt.Errorf("catalog: reloading evicted entry %q: %w", name, err)
		}
		// Re-check: a swap, detach, or concurrent reload may have run
		// while the opener did.  If this entry's slot is no longer ours
		// to fill, discard our copy and take whatever is current now.
		if cur := r.entries[name]; cur != e || e.version != vn || e.cur != nil {
			if release != nil {
				fire = append(fire, release)
			}
			continue
		}
		e.cur = &version[T]{value: value, cost: cost, release: release}
		r.resident.Add(cost)
		r.countInstalled(e)
		// No maintain here: evicting another idle entry to make room is
		// handled on the unpin path, and the just-loaded entry is about
		// to be referenced.
	}
}

// unpin drops a reference, lock-free unless there is slow-path work: the
// last reader of a retired version fires its release, and an over-budget
// registry runs an eviction pass once the unpinned entry is idle.
func (r *Registry[T]) unpin(e *entry[T], v *version[T]) {
	if v.refs.Add(-1) != 0 {
		return
	}
	if !v.retired.Load() &&
		(r.budget <= 0 || r.resident.Load() <= r.budget || r.evictable.Load() == 0) {
		return
	}
	var fire []func()
	defer runAll(&fire)
	r.mu.Lock()
	defer r.mu.Unlock()
	if v.retired.Load() && v.refs.Load() == 0 {
		r.drain(e, v, &fire)
	}
	r.maintain(&fire)
}

// Handle is a pinned reference to one version of an entry.  The value is
// guaranteed to stay valid — in particular, a version swapped out or
// evicted underneath the handle is not released — until Release.
type Handle[T any] struct {
	// Value is the pinned version's value.
	Value T
	// Version is the pinned version's number.
	Version int

	r        *Registry[T]
	e        *entry[T]
	v        *version[T]
	released atomic.Bool
}

// Release drops the handle's reference.  It is idempotent; the version's
// release hook runs when the last reference of a retired version drops.
func (h *Handle[T]) Release() {
	if h.released.CompareAndSwap(false, true) {
		h.r.unpin(h.e, h.v)
	}
}

// Acquire pins the current version of name and returns a handle on it.
// It fails with ErrUnknown for unattached names.
func (r *Registry[T]) Acquire(name string) (*Handle[T], error) {
	e, v, vn, err := r.pin(name)
	if err != nil {
		return nil, err
	}
	return &Handle[T]{Value: v.value, Version: vn, r: r, e: e, v: v}, nil
}

// AcquireResident pins name's current version only when it is already
// materialized, never running an opener and never bumping the LRU clock
// — the monitoring-path primitive, which must neither trigger a reload
// nor keep an otherwise-idle entry hot.  It returns nil when the name is
// unknown or evicted.
func (r *Registry[T]) AcquireResident(name string) *Handle[T] {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[name]
	if e == nil || e.cur == nil {
		return nil
	}
	e.cur.refs.Add(1)
	return &Handle[T]{Value: e.cur.value, Version: e.version, r: r, e: e, v: e.cur}
}

// View runs f on the pinned current version of name, dropping the pin
// when f returns — Acquire/Release without the handle allocation, for
// the per-query hot path.
func (r *Registry[T]) View(name string, f func(value T, version int) error) error {
	e, v, vn, err := r.pin(name)
	if err != nil {
		return err
	}
	defer r.unpin(e, v)
	return f(v.value, vn)
}

// Names returns the attached entry names, sorted.
func (r *Registry[T]) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.entries))
	for name := range r.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Stats snapshots every entry's lifecycle counters, sorted by name.
func (r *Registry[T]) Stats() []Stats {
	var out []Stats
	r.Each(func(st Stats, _ T, _ bool) {
		out = append(out, st)
	})
	return out
}

// Each calls f once per entry, sorted by name, under the registry lock.
// For resident entries, value is the current version's value (resident
// true); for evicted ones it is the zero T.  f must be fast and must not
// call back into the registry.
func (r *Registry[T]) Each(f func(st Stats, value T, resident bool)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := r.entries[name]
		st := Stats{
			Name:       e.name,
			Version:    e.version,
			Draining:   e.draining,
			Resident:   e.cur != nil,
			Reloadable: e.reloadable,
			Evictions:  e.evictions,
		}
		var value T
		if e.cur != nil {
			st.Refs = int(e.cur.refs.Load())
			st.Cost = e.cur.cost
			value = e.cur.value
		}
		f(st, value, e.cur != nil)
	}
}

// retire marks old as retired, draining it immediately when idle or
// recording it as draining otherwise.  Caller holds the lock.
//
// A reader may race the idleness check: it decrements refs lock-free and
// only takes the lock (to drain) if it both hit zero and saw retired.
// Whichever side runs drain second finds v.drained set and backs off, so
// the release hook fires exactly once.
func (r *Registry[T]) retire(e *entry[T], old *version[T], fire *[]func()) {
	if old == nil {
		return
	}
	old.retired.Store(true)
	if old.refs.Load() == 0 {
		r.drain(e, old, fire)
	} else {
		old.counted = true
		e.draining++
	}
}

// drain finishes a retired version whose last reference has dropped:
// fires its release hook once and returns its cost to the budget.
// Caller holds the lock.
func (r *Registry[T]) drain(e *entry[T], v *version[T], fire *[]func()) {
	if v.drained {
		return
	}
	v.drained = true
	if v.counted {
		v.counted = false
		e.draining--
	}
	r.resident.Add(-v.cost)
	if v.release != nil {
		*fire = append(*fire, v.release)
		v.release = nil
	}
}

// maintain enforces the resident-cost budget: while over budget, the
// least-recently-used idle reloadable entry is evicted (its version
// retired and drained, its slot left for lazy reload).  Caller holds the
// lock; releases are appended to fire for the caller to run unlocked.
func (r *Registry[T]) maintain(fire *[]func()) {
	if r.budget <= 0 {
		return
	}
	for r.resident.Load() > r.budget {
		var victim *entry[T]
		for _, e := range r.entries {
			if e.cur == nil || e.cur.refs.Load() > 0 || !e.reloadable || e.cur.cost == 0 {
				continue
			}
			if victim == nil || e.lastUsed < victim.lastUsed {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		old := victim.cur
		victim.cur = nil
		victim.evictions++
		r.countRemoved(old, victim.reloadable)
		old.retired.Store(true)
		r.drain(victim, old, fire)
	}
}

// runAll runs deferred release hooks outside the registry lock.
func runAll(fire *[]func()) {
	for _, f := range *fire {
		f()
	}
}
