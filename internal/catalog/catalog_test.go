package catalog

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// opener returns an Opener producing the given value/cost, counting opens
// and wiring a release counter.
func opener(value string, cost int64, opens, releases *atomic.Int64) Opener[string] {
	return func() (string, int64, func(), error) {
		if opens != nil {
			opens.Add(1)
		}
		rel := func() {}
		if releases != nil {
			rel = func() { releases.Add(1) }
		}
		return value, cost, rel, nil
	}
}

func TestAttachAcquireDetach(t *testing.T) {
	r := New[string](0)
	var releases atomic.Int64
	if err := r.Attach("a", opener("v1", 100, nil, &releases), false); err != nil {
		t.Fatal(err)
	}
	if err := r.Attach("a", opener("v1", 100, nil, nil), false); !errors.Is(err, ErrExists) {
		t.Fatalf("double attach: %v, want ErrExists", err)
	}
	h, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	if h.Value != "v1" || h.Version != 1 {
		t.Fatalf("handle = (%q, v%d), want (v1, v1)", h.Value, h.Version)
	}
	if _, err := r.Acquire("nope"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown acquire: %v, want ErrUnknown", err)
	}
	if err := r.Detach("a"); err != nil {
		t.Fatal(err)
	}
	if releases.Load() != 0 {
		t.Fatal("release fired while a handle was live")
	}
	h.Release()
	if releases.Load() != 1 {
		t.Fatalf("releases = %d after last handle dropped, want 1", releases.Load())
	}
	h.Release() // idempotent
	if releases.Load() != 1 {
		t.Fatal("double Release fired the hook twice")
	}
	if err := r.Detach("a"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("double detach: %v, want ErrUnknown", err)
	}
}

// A swap retires the old version: new acquires see the new value at once,
// while the old version's release waits for its last in-flight reader.
func TestSwapDrainsOldVersion(t *testing.T) {
	r := New[string](0)
	var rel1, rel2 atomic.Int64
	if err := r.Attach("d", opener("old", 10, nil, &rel1), false); err != nil {
		t.Fatal(err)
	}
	h1, _ := r.Acquire("d")
	v, err := r.Swap("d", opener("new", 10, nil, &rel2), false)
	if err != nil || v != 2 {
		t.Fatalf("Swap = (%d, %v), want (2, nil)", v, err)
	}
	h2, _ := r.Acquire("d")
	if h2.Value != "new" || h2.Version != 2 {
		t.Fatalf("post-swap acquire = (%q, v%d), want (new, v2)", h2.Value, h2.Version)
	}
	if h1.Value != "old" {
		t.Fatal("pinned handle's value changed under swap")
	}
	st := r.Stats()[0]
	if st.Draining != 1 || st.Version != 2 || st.Refs != 1 {
		t.Fatalf("stats during drain: %+v", st)
	}
	if rel1.Load() != 0 {
		t.Fatal("old version released while still read")
	}
	h1.Release()
	if rel1.Load() != 1 {
		t.Fatal("old version not released after last reader")
	}
	if st := r.Stats()[0]; st.Draining != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
	h2.Release()
	if rel2.Load() != 0 {
		t.Fatal("current version released without retirement")
	}
	r.Close()
	if rel2.Load() != 1 {
		t.Fatal("Close did not release the current version")
	}
}

// A failing opener must leave the old version serving.
func TestSwapFailureKeepsOldVersion(t *testing.T) {
	r := New[string](0)
	if err := r.Attach("d", opener("old", 10, nil, nil), false); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	bad := func() (string, int64, func(), error) { return "", 0, nil, boom }
	if _, err := r.Swap("d", bad, false); !errors.Is(err, boom) {
		t.Fatalf("Swap error = %v, want boom", err)
	}
	h, err := r.Acquire("d")
	if err != nil || h.Value != "old" || h.Version != 1 {
		t.Fatalf("after failed swap: (%q, v%d, %v), want (old, v1, nil)", h.Value, h.Version, err)
	}
	h.Release()
}

// Swap on an unattached name attaches it at version 1.
func TestSwapAttaches(t *testing.T) {
	r := New[string](0)
	v, err := r.Swap("fresh", opener("x", 1, nil, nil), false)
	if err != nil || v != 1 {
		t.Fatalf("Swap on fresh name = (%d, %v), want (1, nil)", v, err)
	}
	h, err := r.Acquire("fresh")
	if err != nil || h.Value != "x" {
		t.Fatalf("acquire after swap-attach: %v", err)
	}
	h.Release()
}

// Idle reloadable entries are evicted LRU-first when the resident cost
// exceeds the budget, and reload transparently on the next acquire.
func TestEvictionBudgetLRU(t *testing.T) {
	r := New[string](250)
	var opensA, opensB, opensC, releases atomic.Int64
	for _, d := range []struct {
		name  string
		opens *atomic.Int64
	}{{"a", &opensA}, {"b", &opensB}, {"c", &opensC}} {
		if err := r.Attach(d.name, opener(d.name, 100, d.opens, &releases), true); err != nil {
			t.Fatal(err)
		}
	}
	// Attaching 3×100 bytes against a 250 budget evicts the LRU entry
	// ("a": never acquired, lowest clock).
	if got := r.Resident(); got != 200 {
		t.Fatalf("resident = %d after attach wave, want 200", got)
	}
	sts := r.Stats()
	if sts[0].Name != "a" || sts[0].Resident || sts[0].Evictions != 1 {
		t.Fatalf("expected a evicted: %+v", sts[0])
	}
	if !sts[1].Resident || !sts[2].Resident {
		t.Fatalf("b/c should be resident: %+v %+v", sts[1], sts[2])
	}
	if releases.Load() != 1 {
		t.Fatalf("eviction releases = %d, want 1", releases.Load())
	}

	// Touch b (making c the LRU), then reload a: c must be the next victim.
	hb, _ := r.Acquire("b")
	hb.Release()
	ha, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	if opensA.Load() != 2 {
		t.Fatalf("a opens = %d, want 2 (attach + reload)", opensA.Load())
	}
	ha.Release() // release path re-runs maintain: 300 resident > 250
	sts = r.Stats()
	byName := map[string]Stats{}
	for _, st := range sts {
		byName[st.Name] = st
	}
	if !byName["a"].Resident || !byName["b"].Resident || byName["c"].Resident {
		t.Fatalf("want c evicted after a reload: %+v", byName)
	}
	if got := r.Resident(); got != 200 {
		t.Fatalf("resident = %d, want 200", got)
	}
}

// Entries pinned by a handle are never evicted, whatever the budget.
func TestEvictionSkipsPinned(t *testing.T) {
	r := New[string](50)
	if err := r.Attach("big", opener("big", 100, nil, nil), true); err != nil {
		t.Fatal(err)
	}
	h, err := r.Acquire("big")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Attach("other", opener("other", 100, nil, nil), true); err != nil {
		t.Fatal(err)
	}
	sts := r.Stats()
	byName := map[string]Stats{}
	for _, st := range sts {
		byName[st.Name] = st
	}
	if !byName["big"].Resident {
		t.Fatal("pinned entry was evicted")
	}
	if byName["other"].Resident {
		t.Fatal("idle entry survived over budget")
	}
	h.Release()
}

// Non-reloadable entries are never evicted: without an opener that can
// rebuild them, eviction would lose data.
func TestEvictionSkipsNonReloadable(t *testing.T) {
	r := New[string](50)
	if err := r.Attach("mem", opener("mem", 100, nil, nil), false); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats()[0]; !st.Resident {
		t.Fatal("non-reloadable entry evicted")
	}
}

// Hammer one entry with concurrent acquires while swapping it, asserting
// every handle sees a coherent (value, version) pair and that every
// version's release fires exactly once, only after its readers are done.
func TestConcurrentSwapAcquire(t *testing.T) {
	r := New[int](0)
	const versions = 50
	released := make([]atomic.Int64, versions+1)
	mk := func(v int) Opener[int] {
		return func() (int, int64, func(), error) {
			return v, 1, func() { released[v].Add(1) }, nil
		}
	}
	if err := r.Attach("d", mk(1), false); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h, err := r.Acquire("d")
				if err != nil {
					t.Errorf("Acquire: %v", err)
					return
				}
				if h.Value != h.Version {
					t.Errorf("handle value %d != version %d", h.Value, h.Version)
				}
				if released[h.Value].Load() != 0 {
					t.Errorf("reading version %d after its release", h.Value)
				}
				h.Release()
			}
		}()
	}
	for v := 2; v <= versions; v++ {
		if _, err := r.Swap("d", mk(v), false); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	r.Close()
	for v := 1; v <= versions; v++ {
		if got := released[v].Load(); got != 1 {
			t.Errorf("version %d released %d times, want 1", v, got)
		}
	}
}

// Concurrent attaches of the same name: exactly one wins, and every
// loser that got as far as opening a version has it released again.
func TestConcurrentAttachOneWinner(t *testing.T) {
	r := New[string](0)
	var opens, releases atomic.Int64
	var wins atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			err := r.Attach("d", opener(fmt.Sprintf("g%d", g), 1, &opens, &releases), false)
			if err == nil {
				wins.Add(1)
			} else if !errors.Is(err, ErrExists) {
				t.Errorf("Attach: %v", err)
			}
		}(g)
	}
	wg.Wait()
	if wins.Load() != 1 {
		t.Fatalf("%d attach winners, want 1", wins.Load())
	}
	if releases.Load() != opens.Load()-1 {
		t.Fatalf("releases = %d for %d opens, want opens-1 (only the winner stays)", releases.Load(), opens.Load())
	}
}

// Concurrent acquires of an evicted entry may each run the opener (the
// reload happens outside the registry lock so other datasets never
// stall behind it); exactly one copy is installed per reload and every
// opened copy is released exactly once by the time the registry closes.
func TestConcurrentReloadDiscardsLosers(t *testing.T) {
	r := New[string](1) // budget below cost: the entry evicts whenever idle
	var opens, releases atomic.Int64
	if err := r.Attach("d", opener("d", 100, &opens, &releases), true); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats()[0]; st.Resident {
		t.Fatal("over-budget idle entry not evicted at attach")
	}
	for round := 0; round < 20; round++ {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				h, err := r.Acquire("d")
				if err != nil {
					t.Errorf("Acquire: %v", err)
					return
				}
				if h.Value != "d" {
					t.Errorf("reloaded value %q", h.Value)
				}
				h.Release() // last release re-evicts (still over budget)
			}()
		}
		wg.Wait()
	}
	r.Close()
	if opens.Load() < 20 {
		t.Fatalf("opens = %d, want >= one per round", opens.Load())
	}
	if releases.Load() != opens.Load() {
		t.Fatalf("releases = %d for %d opens; every opened copy must be released exactly once", releases.Load(), opens.Load())
	}
}

func TestNamesAndStatsSorted(t *testing.T) {
	r := New[string](0)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := r.Attach(n, opener(n, 1, nil, nil), false); err != nil {
			t.Fatal(err)
		}
	}
	names := r.Names()
	want := []string{"alpha", "mid", "zeta"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	sts := r.Stats()
	for i, n := range want {
		if sts[i].Name != n {
			t.Fatalf("Stats() order = %v", sts)
		}
	}
}
