package rank

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRankDeterministic(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for v := int64(0); v < 1000; v++ {
		if a.Rank(v) != b.Rank(v) {
			t.Fatalf("rank of %d differs between identically seeded sources", v)
		}
	}
}

func TestRankOpenInterval(t *testing.T) {
	s := NewSource(7)
	for v := int64(0); v < 100000; v++ {
		r := s.Rank(v)
		if r <= 0 || r >= 1 {
			t.Fatalf("rank %g of node %d outside open interval (0,1)", r, v)
		}
	}
}

func TestRankSeedIndependence(t *testing.T) {
	a := NewSource(1)
	b := NewSource(2)
	same := 0
	for v := int64(0); v < 1000; v++ {
		if a.Rank(v) == b.Rank(v) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical ranks across different seeds", same)
	}
}

func TestRankUniformMoments(t *testing.T) {
	s := NewSource(99)
	const n = 200000
	var sum, sumsq float64
	for v := int64(0); v < n; v++ {
		r := s.Rank(v)
		sum += r
		sumsq += r * r
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean of uniform ranks = %g, want ~0.5", mean)
	}
	second := sumsq / n
	if math.Abs(second-1.0/3.0) > 0.005 {
		t.Errorf("second moment = %g, want ~1/3", second)
	}
}

func TestRankAtPermutationsIndependent(t *testing.T) {
	s := NewSource(5)
	// Ranks under different permutations must differ for (almost) all nodes.
	same := 0
	for v := int64(0); v < 1000; v++ {
		if s.RankAt(0, v) == s.RankAt(1, v) {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d collisions across permutations 0 and 1", same)
	}
	// Correlation between permutation ranks should be near zero.
	const n = 100000
	var sxy, sx, sy float64
	for v := int64(0); v < n; v++ {
		x, y := s.RankAt(0, v), s.RankAt(1, v)
		sx += x
		sy += y
		sxy += x * y
	}
	cov := sxy/n - (sx/n)*(sy/n)
	if math.Abs(cov) > 0.002 {
		t.Errorf("covariance between permutations = %g, want ~0", cov)
	}
}

func TestBucketRangeAndBalance(t *testing.T) {
	s := NewSource(11)
	const k = 16
	const n = 160000
	counts := make([]int, k)
	for v := int64(0); v < n; v++ {
		b := s.Bucket(v, k)
		if b < 0 || b >= k {
			t.Fatalf("bucket %d out of range [0,%d)", b, k)
		}
		counts[b]++
	}
	want := float64(n) / k
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d has %d elements, want ~%g", b, c, want)
		}
	}
}

func TestBucketSingle(t *testing.T) {
	s := NewSource(3)
	for v := int64(0); v < 100; v++ {
		if got := s.Bucket(v, 1); got != 0 {
			t.Fatalf("Bucket(v,1) = %d, want 0", got)
		}
		if got := s.Bucket(v, 0); got != 0 {
			t.Fatalf("Bucket(v,0) = %d, want 0", got)
		}
	}
}

func TestExpRankDistribution(t *testing.T) {
	s := NewSource(21)
	const n = 200000
	var sum float64
	for v := int64(0); v < n; v++ {
		sum += s.ExpRank(v, 1)
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("mean of Exp(1) ranks = %g, want ~1", mean)
	}
}

func TestExpRankWeightScaling(t *testing.T) {
	s := NewSource(22)
	const n = 100000
	var sum float64
	for v := int64(0); v < n; v++ {
		sum += s.ExpRank(v, 4)
	}
	mean := sum / n
	if math.Abs(mean-0.25) > 0.01 {
		t.Errorf("mean of Exp(4) ranks = %g, want ~0.25", mean)
	}
}

func TestExpRankMonotoneInRank(t *testing.T) {
	// ExpRank must be a monotone transform of Rank: it preserves the
	// permutation order, which is what makes MinHash definitions carry over.
	s := NewSource(23)
	for v := int64(0); v < 1000; v++ {
		for u := int64(0); u < 20; u++ {
			ru, rv := s.Rank(u), s.Rank(v)
			eu, ev := s.ExpRank(u, 1), s.ExpRank(v, 1)
			if (ru < rv) != (eu < ev) && ru != rv {
				t.Fatalf("ExpRank broke order for nodes %d,%d", u, v)
			}
		}
	}
}

func TestPriorityRank(t *testing.T) {
	s := NewSource(31)
	for v := int64(0); v < 100; v++ {
		if got, want := s.PriorityRank(v, 2), s.Rank(v)/2; got != want {
			t.Fatalf("PriorityRank = %g, want %g", got, want)
		}
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one input bit should flip ~32 output bits on average.
	var totalFlips, trials int
	for key := uint64(1); key < 2000; key += 7 {
		h := Hash64(0, key)
		for bit := uint(0); bit < 64; bit += 13 {
			h2 := Hash64(0, key^(1<<bit))
			totalFlips += popcount(h ^ h2)
			trials++
		}
	}
	avg := float64(totalFlips) / float64(trials)
	if avg < 28 || avg > 36 {
		t.Errorf("avalanche average = %g bits, want ~32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestBaseBExponentRoundTrip(t *testing.T) {
	d := NewBaseB(2)
	cases := []struct {
		r    float64
		want int
	}{
		{0.5, 1}, {0.25, 2}, {0.2, 3}, {0.9, 1}, {0.06, 5}, {0.0625, 4},
	}
	for _, c := range cases {
		if got := d.Exponent(c.r); got != c.want {
			t.Errorf("Exponent(%g) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestBaseBRoundIsRoundedDown(t *testing.T) {
	// Rounded rank must be <= the full rank (Section 5.6: the discretized
	// rank is a "rounded down" form), and within a factor b of it.
	if err := quick.Check(func(u uint64) bool {
		r := unitFloat(u)
		for _, b := range []float64{2, math.Sqrt2, 1.1} {
			d := NewBaseB(b)
			rr := d.Round(r)
			if rr > r*(1+1e-9) || rr*b < r*(1-1e-9) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestBaseBRoundIdempotent(t *testing.T) {
	d := NewBaseB(math.Sqrt2)
	if err := quick.Check(func(u uint64) bool {
		r := unitFloat(u)
		once := d.Round(r)
		twice := d.Round(once)
		return math.Abs(once-twice) <= 1e-12*once
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestBaseBMonotone(t *testing.T) {
	d := NewBaseB(2)
	if err := quick.Check(func(a, b uint64) bool {
		ra, rb := unitFloat(a), unitFloat(b)
		if ra > rb {
			ra, rb = rb, ra
		}
		// Smaller rank gets the larger (or equal) exponent.
		return d.Exponent(ra) >= d.Exponent(rb)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestBaseBPanicsOnBadBase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBaseB(1) did not panic")
		}
	}()
	NewBaseB(1)
}

func TestBase2ExponentMatchesFloat(t *testing.T) {
	d := NewBaseB(2)
	rng := NewRNG(404)
	for i := 0; i < 100000; i++ {
		h := rng.Uint64()
		r := unitFloat(h)
		got := Base2Exponent(h)
		want := d.Exponent(r)
		if got != want {
			t.Fatalf("Base2Exponent(%#x) = %d, float path gives %d (r=%g)", h, got, want, r)
		}
	}
}

func TestBase2ExponentGeometric(t *testing.T) {
	// P(exponent >= h) = 2^-(h-1): check the empirical tail.
	rng := NewRNG(17)
	const n = 1 << 20
	counts := make([]int, 24)
	for i := 0; i < n; i++ {
		h := Base2Exponent(rng.Uint64())
		if h < len(counts) {
			counts[h]++
		}
	}
	for h := 1; h <= 8; h++ {
		tail := 0
		for j := h; j < len(counts); j++ {
			tail += counts[j]
		}
		want := float64(n) * math.Pow(2, -float64(h-1))
		if math.Abs(float64(tail)-want) > 6*math.Sqrt(want) {
			t.Errorf("P(exp >= %d): got %d, want ~%g", h, tail, want)
		}
	}
}

func TestVarianceFactor(t *testing.T) {
	if got := NewBaseB(2).VarianceFactor(); got != 1.5 {
		t.Errorf("VarianceFactor(2) = %g, want 1.5", got)
	}
	if got := NewBaseB(3).VarianceFactor(); got != 2 {
		t.Errorf("VarianceFactor(3) = %g, want 2", got)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(9), NewRNG(9)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identically seeded RNGs diverged")
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		n := 1 + i%17
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(0).Intn(0)
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(77)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) is not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestRNGPermUniformFirstElement(t *testing.T) {
	r := NewRNG(123)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("P(perm[0]=%d): got %d, want ~%g", v, c, want)
		}
	}
}

func TestRNGExpFloat64Mean(t *testing.T) {
	r := NewRNG(55)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("mean of ExpFloat64 = %g, want ~1", mean)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
