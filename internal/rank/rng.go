package rank

import "math"

// RNG is a small deterministic pseudo-random generator (splitmix64 stream)
// used by graph generators, the permutation estimator, and the experiment
// harness.  It is independent of math/rand so that experiment outputs are
// stable across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: mix64(seed)} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// Float64 returns a uniform value in the open interval (0,1).
func (r *RNG) Float64() float64 { return unitFloat(r.Uint64()) }

// Intn returns a uniform value in [0,n).  It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rank: Intn with non-positive n")
	}
	hi, _ := mul64(r.Uint64(), uint64(n))
	return int(hi)
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (r *RNG) ExpFloat64() float64 { return -math.Log1p(-r.Float64()) }

// Perm returns a random permutation of [0,n) by Fisher-Yates shuffle.
// The permutation estimator of Section 5.4 assigns these values as ranks.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
