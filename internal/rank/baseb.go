package rank

import "math"

// Base-b rank discretization (paper Section 2, "Base-b ranks", and Section
// 5.6).  A full-precision rank r in (0,1) is rounded to r' = b^-h where
// h = ceil(-log_b r).  The rounded rank is represented by the integer
// exponent h, which takes only log log n + O(1) bits in expectation; the
// base b trades representation size against estimator variance: the HIP
// variance grows by the factor (1+b)/2 (Section 5.6).

// BaseB describes a discretization base b > 1.
type BaseB struct {
	b    float64
	logb float64 // natural log of b, cached
}

// NewBaseB returns the discretization for base b.  It panics if b <= 1,
// since the rounding r -> b^-h is only a contraction for b > 1.
func NewBaseB(b float64) BaseB {
	if !(b > 1) {
		panic("rank: base-b discretization requires b > 1")
	}
	return BaseB{b: b, logb: math.Log(b)}
}

// Base reports b.
func (d BaseB) Base() float64 { return d.b }

// Exponent returns h = ceil(-log_b r), the integer representation of the
// rounded rank of a full rank r in (0,1).  Larger h means smaller rank.
// A small nudge keeps exact grid points b^-h stable under floating error,
// making Round idempotent.
func (d BaseB) Exponent(r float64) int {
	h := math.Ceil(-math.Log(r)/d.logb - 1e-9)
	if h < 0 {
		// Guard against r marginally above 1 from floating error.
		h = 0
	}
	return int(h)
}

// Value returns the rounded rank b^-h for exponent h.  Ranks are rounded
// *down* (Section 5.6: the discretized rank is a "rounded down" form), so
// Value(Exponent(r)) <= r always holds, with equality exactly on the grid.
func (d BaseB) Value(h int) float64 {
	return math.Pow(d.b, -float64(h))
}

// Round returns the rounded rank of r directly: Value(Exponent(r)).
func (d BaseB) Round(r float64) float64 {
	return d.Value(d.Exponent(r))
}

// VarianceFactor returns (1+b)/2, the paper's back-of-the-envelope factor by
// which base-b discretization inflates the HIP adjusted-weight variance
// (Section 5.6).
func (d BaseB) VarianceFactor() float64 { return (1 + d.b) / 2 }

// Base2Exponent computes the base-2 exponent ceil(-log2 r) for a rank
// produced from a uint64 hash, using integer arithmetic only.  It matches
// NewBaseB(2).Exponent on ranks produced by unitFloat and is the geometric
// "number of leading zeros + 1" observable used by HyperLogLog registers.
func Base2Exponent(hash uint64) int {
	// unitFloat uses the top 53 bits; the probability that the rank is
	// <= 2^-h equals the probability that the top h bits are all zero.
	h := 1
	for mask := uint64(1) << 63; mask != 0 && hash&mask == 0; mask >>= 1 {
		h++
	}
	return h
}
