// Package rank provides the random-rank substrate that All-Distances
// Sketches and MinHash sketches are defined over.
//
// The paper (Cohen, "All-Distances Sketches, Revisited", 2014) specifies a
// sketch with respect to one or more random permutations of the node domain,
// realized by assigning each node a random rank r(v) ~ U[0,1].  This package
// supplies deterministic, seedable implementations of:
//
//   - uniform ranks in the open interval (0,1) derived from a 64-bit mixing
//     hash of the node ID (so "the same random permutation" can be shared by
//     all sketches, giving the coordination property of Section 2);
//   - independent permutations indexed by an integer, for k-mins sketches;
//   - bucket assignments for k-partition sketches;
//   - exponentially distributed ranks with a rate parameter, used for
//     non-uniform node weights (Section 9);
//   - base-b discretized ranks (Section 2 "Base-b ranks" and Section 5.6);
//   - explicit random permutations of [n], for the permutation estimator of
//     Section 5.4.
//
// All functions are pure: the rank of a node depends only on (seed, node),
// which makes sketch construction reproducible and coordinated across
// machines without shared state.
package rank

import "math"

// mix64 is the splitmix64 finalizer.  It is a bijection on uint64 with good
// avalanche behavior, sufficient for the "random hash function" assumption
// the paper makes (Section 2: "This can be achieved using random hash
// functions").
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash64 mixes a seed and a key into a 64-bit value.
func Hash64(seed, key uint64) uint64 {
	return mix64(mix64(seed^0x8e9d3c1f5b7a2d46) ^ mix64(key))
}

// unitFloat maps a uint64 to the open interval (0,1).  The low 11 bits are
// discarded and the result is offset by half an ulp so that 0 and 1 are
// never produced; ranks of 0 or 1 would break inverse-probability estimates.
func unitFloat(x uint64) float64 {
	return (float64(x>>11) + 0.5) * (1.0 / (1 << 53))
}

// Source generates coordinated random ranks for a domain of elements.
// A Source is defined entirely by its seed; two Sources with the same seed
// produce identical ranks, which is how sketches of different sets (or
// different nodes' neighborhoods) are coordinated.
type Source struct {
	seed uint64
}

// NewSource returns a rank source with the given seed.
func NewSource(seed uint64) Source { return Source{seed: seed} }

// Seed reports the seed of the source.
func (s Source) Seed() uint64 { return s.seed }

// Rank returns the uniform rank r(v) ~ U(0,1) of element v under the
// source's (single) permutation.
func (s Source) Rank(v int64) float64 {
	return unitFloat(Hash64(s.seed, uint64(v)))
}

// RankAt returns the rank of element v under the perm-th independent
// permutation.  k-mins sketches use permutations 0..k-1.
func (s Source) RankAt(perm int, v int64) float64 {
	return unitFloat(Hash64(s.seed+uint64(perm)*0xa24baed4963ee407+1, uint64(v)))
}

// Bucket maps element v uniformly to one of k buckets.  k-partition sketches
// use this as the random partition BUCKET: V -> [k].  The bucket hash stream
// is independent of the rank stream.
func (s Source) Bucket(v int64, k int) int {
	if k <= 1 {
		return 0
	}
	h := Hash64(s.seed^0x5851f42d4c957f2d, uint64(v))
	// Multiply-shift reduction avoids modulo bias for any k.
	hi, _ := mul64(h, uint64(k))
	return int(hi)
}

// ExpRank returns an exponentially distributed rank with rate weight,
// derived from the same underlying permutation as Rank: y = -ln(1-u)/weight.
// With weight 1 this is the monotone transform the paper uses throughout the
// analysis; with weight beta(v) it implements the non-uniform node weights of
// Section 9 (heavier nodes get stochastically smaller ranks).
func (s Source) ExpRank(v int64, weight float64) float64 {
	u := s.Rank(v)
	return -math.Log1p(-u) / weight
}

// PriorityRank returns r'(v)/weight, the Sequential Poisson (priority)
// sampling rank discussed as the bottom-k alternative in Section 9.
func (s Source) PriorityRank(v int64, weight float64) float64 {
	return s.Rank(v) / weight
}

// mul64 computes the 128-bit product of a and b, returning hi and lo words.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	t := al*bh + (al*bl)>>32
	w1 := t & mask
	w2 := t >> 32
	t = ah*bl + w1
	hi = ah*bh + w2 + (t >> 32)
	lo = a * b
	return hi, lo
}
