// Package wire implements the binary framing of the adsketch query
// protocol: the same Request/Response structs the JSON transport
// carries, encoded as a fixed little-endian frame with raw columns and
// no reflection, negotiated on /v1/query by the content type
// application/x-ads-binary.
//
// Frame layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "ADSW"
//	4       1     version (currently 1)
//	5       1     message type (1 = request, 2 = response)
//	6       1     flags (bit 0: batch frame)
//	7       1     reserved, must be 0
//	8       4     message count (1 unless the batch flag is set)
//	12      4     body length in bytes (everything after the header)
//	16      ...   count messages, each a u32 length prefix + body
//
// A single frame (batch flag clear) carries exactly one message and
// answers one query; a batch frame mirrors the JSON array form of
// /v1/query and carries zero or more.  Message bodies encode struct
// fields in declaration order: strings as u32 length + bytes, slices as
// a u32 count + raw elements, float64s as their IEEE-754 bits.  Fields
// whose JSON tag says omitempty collapse empty to absent exactly as the
// JSON round trip does, and the remaining nilable slices (for example
// ClosenessQuery.Nodes) spend the count ^uint32(0) on nil so that a
// decoded value is byte-for-byte what the JSON transport would have
// produced.
//
// Encoding appends into pooled buffers (Get/Free) and allocates nothing
// at steady state; decoding validates every count against the bytes
// actually present before allocating, so corrupt or truncated frames
// fail fast with a bounded allocation footprint and never panic.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"adsketch"
)

// ContentType is the negotiated media type of binary frames on
// /v1/query.  JSON stays the default for requests that do not send it.
const ContentType = "application/x-ads-binary"

// Version is the frame version this package speaks.  Decoders reject
// other versions so a mixed-version topology falls back to JSON instead
// of misreading bytes.
const Version = 1

const (
	frameMagic0 = 'A'
	frameMagic1 = 'D'
	frameMagic2 = 'S'
	frameMagic3 = 'W'

	frameHdrSize = 16

	typeRequest  = 1
	typeResponse = 2

	flagBatch = 1 << 0

	// nilCount marks a nil slice in the fields where the JSON shape
	// distinguishes nil from empty (no omitempty tag).
	nilCount = ^uint32(0)
)

// Request query-field bits, in Request declaration order.
const (
	maskCloseness = 1 << iota
	maskHarmonic
	maskNeighborhood
	maskTopK
	maskCentralityKernel
	maskJaccard
	maskInfluence
	maskDistanceBound
	maskSketch

	maskKnown = 1<<9 - 1
)

// Request envelope flag bits.
const reqFlagExplain = 1 << 0

// Response flag bits.
const (
	respFlagPartial = 1 << iota
	respFlagUnreachable
	respFlagValue
	respFlagMerge

	respFlagKnown = 1<<4 - 1
)

// maxPooled caps the capacity a buffer may keep when returned to the
// pool; oversized one-off payloads are dropped for the GC instead of
// pinning memory forever.
const maxPooled = 1 << 20

// Buf is a pooled byte buffer.  Encode* replaces B with one complete
// frame; callers hand B to the transport and Free it afterwards.
type Buf struct {
	B []byte
}

var bufPool = sync.Pool{New: func() any { return new(Buf) }}

// Get returns a pooled buffer with zero length and warm capacity.
func Get() *Buf {
	return bufPool.Get().(*Buf)
}

// Free returns b to the pool.  B's contents must no longer be referenced.
func (b *Buf) Free() {
	if b == nil {
		return
	}
	if cap(b.B) > maxPooled {
		b.B = nil
	}
	b.B = b.B[:0]
	bufPool.Put(b)
}

// ReadAll appends r's contents to dst until EOF and returns the filled
// slice: io.ReadAll over a caller-owned (pooled) buffer instead of a
// fresh allocation per call.  Callers bound r themselves (MaxBytesReader
// or LimitReader); the returned slice aliases dst's array when it fits.
func ReadAll(dst []byte, r io.Reader) ([]byte, error) {
	if cap(dst)-len(dst) == 0 {
		dst = append(dst, 0)[:len(dst)]
	}
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// appendU16 and friends are the raw little-endian columns; the codec
// never goes through reflection (encoding/binary.Write) and never emits
// big-endian.
func appendU16(dst []byte, v uint16) []byte {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	return append(dst, b[:]...)
}

func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendStr(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

// appendI32sNil encodes a []int32 whose JSON field has no omitempty:
// nil and empty survive the round trip distinctly.
func appendI32sNil(dst []byte, vs []int32) []byte {
	if vs == nil {
		return appendU32(dst, nilCount)
	}
	dst = appendU32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = appendU32(dst, uint32(v))
	}
	return dst
}

// appendI32sOmit encodes a []int32 whose JSON field says omitempty:
// empty and nil both decode to nil, exactly like the JSON round trip.
func appendI32sOmit(dst []byte, vs []int32) []byte {
	dst = appendU32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = appendU32(dst, uint32(v))
	}
	return dst
}

func appendF64sOmit(dst []byte, vs []float64) []byte {
	dst = appendU32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = appendF64(dst, v)
	}
	return dst
}

// appendIntsNil mirrors appendI32sNil for []int (MergeMeta.Shards).
func appendIntsNil(dst []byte, vs []int) []byte {
	if vs == nil {
		return appendU32(dst, nilCount)
	}
	dst = appendU32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = appendU64(dst, uint64(int64(v)))
	}
	return dst
}

func appendIntsOmit(dst []byte, vs []int) []byte {
	dst = appendU32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = appendU64(dst, uint64(int64(v)))
	}
	return dst
}

// beginFrame appends a frame header to an empty buffer; endFrame patches
// the body length once the messages are in place.
func beginFrame(dst []byte, msgType, flags byte, count uint32) []byte {
	dst = append(dst, frameMagic0, frameMagic1, frameMagic2, frameMagic3,
		Version, msgType, flags, 0)
	dst = appendU32(dst, count)
	return appendU32(dst, 0) // body length, patched by endFrame
}

func endFrame(dst []byte) []byte {
	binary.LittleEndian.PutUint32(dst[12:frameHdrSize], uint32(len(dst)-frameHdrSize))
	return dst
}

// beginMessage reserves the u32 length prefix of one message and returns
// its offset for endMessage to patch.
func beginMessage(dst []byte) ([]byte, int) {
	dst = appendU32(dst, 0)
	return dst, len(dst)
}

func endMessage(dst []byte, bodyOff int) []byte {
	binary.LittleEndian.PutUint32(dst[bodyOff-4:bodyOff], uint32(len(dst)-bodyOff))
	return dst
}

// EncodeRequest replaces b's contents with a single-message request
// frame.  It allocates nothing once b's capacity is warm.
func EncodeRequest(b *Buf, req *adsketch.Request) {
	dst := beginFrame(b.B[:0], typeRequest, 0, 1)
	dst, off := beginMessage(dst)
	dst = appendRequestBody(dst, req)
	b.B = endFrame(endMessage(dst, off))
}

// EncodeRequests replaces b's contents with a batch request frame — the
// binary mirror of the JSON array form of /v1/query.
func EncodeRequests(b *Buf, reqs []adsketch.Request) {
	dst := beginFrame(b.B[:0], typeRequest, flagBatch, uint32(len(reqs)))
	for i := range reqs {
		var off int
		dst, off = beginMessage(dst)
		dst = appendRequestBody(dst, &reqs[i])
		dst = endMessage(dst, off)
	}
	b.B = endFrame(dst)
}

// EncodeResponse replaces b's contents with a single-message response
// frame.
func EncodeResponse(b *Buf, resp *adsketch.Response) {
	dst := beginFrame(b.B[:0], typeResponse, 0, 1)
	dst, off := beginMessage(dst)
	dst = appendResponseBody(dst, resp)
	b.B = endFrame(endMessage(dst, off))
}

// EncodeResponses replaces b's contents with a batch response frame.
func EncodeResponses(b *Buf, resps []adsketch.Response) {
	dst := beginFrame(b.B[:0], typeResponse, flagBatch, uint32(len(resps)))
	for i := range resps {
		var off int
		dst, off = beginMessage(dst)
		dst = appendResponseBody(dst, &resps[i])
		dst = endMessage(dst, off)
	}
	b.B = endFrame(dst)
}

func appendRequestBody(dst []byte, r *adsketch.Request) []byte {
	var mask uint16
	if r.Closeness != nil {
		mask |= maskCloseness
	}
	if r.Harmonic != nil {
		mask |= maskHarmonic
	}
	if r.Neighborhood != nil {
		mask |= maskNeighborhood
	}
	if r.TopK != nil {
		mask |= maskTopK
	}
	if r.CentralityKernel != nil {
		mask |= maskCentralityKernel
	}
	if r.Jaccard != nil {
		mask |= maskJaccard
	}
	if r.Influence != nil {
		mask |= maskInfluence
	}
	if r.DistanceBound != nil {
		mask |= maskDistanceBound
	}
	if r.Sketch != nil {
		mask |= maskSketch
	}
	dst = appendU16(dst, mask)
	var flags byte
	if r.Explain {
		flags |= reqFlagExplain
	}
	dst = append(dst, flags)
	dst = appendStr(dst, r.ID)
	dst = appendStr(dst, r.Dataset)
	dst = appendStr(dst, r.Policy)
	if q := r.Closeness; q != nil {
		dst = appendI32sNil(dst, q.Nodes)
	}
	if q := r.Harmonic; q != nil {
		dst = appendI32sNil(dst, q.Nodes)
	}
	if q := r.Neighborhood; q != nil {
		dst = appendF64(dst, q.Radius)
		dst = appendBool(dst, q.Unbounded)
		dst = appendI32sNil(dst, q.Nodes)
	}
	if q := r.TopK; q != nil {
		dst = appendStr(dst, q.Metric)
		dst = appendU64(dst, uint64(int64(q.K)))
	}
	if q := r.CentralityKernel; q != nil {
		dst = appendStr(dst, q.Kernel)
		dst = appendF64(dst, q.Radius)
		dst = appendI32sNil(dst, q.Nodes)
	}
	if q := r.Jaccard; q != nil {
		dst = appendU32(dst, uint32(q.A))
		dst = appendF64(dst, q.RadiusA)
		dst = appendU32(dst, uint32(q.B))
		dst = appendF64(dst, q.RadiusB)
	}
	if q := r.Influence; q != nil {
		dst = appendI32sOmit(dst, q.Seeds)
		dst = appendU64(dst, uint64(int64(q.NumSeeds)))
		dst = appendI32sOmit(dst, q.Candidates)
		dst = appendF64(dst, q.Radius)
	}
	if q := r.DistanceBound; q != nil {
		dst = appendU32(dst, uint32(q.A))
		dst = appendU32(dst, uint32(q.B))
	}
	if q := r.Sketch; q != nil {
		dst = appendU32(dst, uint32(q.Node))
	}
	return dst
}

func appendResponseBody(dst []byte, r *adsketch.Response) []byte {
	var flags byte
	if r.Partial {
		flags |= respFlagPartial
	}
	if r.Unreachable {
		flags |= respFlagUnreachable
	}
	if r.Value != nil {
		flags |= respFlagValue
	}
	if r.Merge != nil {
		flags |= respFlagMerge
	}
	dst = append(dst, flags)
	dst = appendStr(dst, r.ID)
	dst = appendStr(dst, r.Kind)
	dst = appendStr(dst, r.Error)
	dst = appendI32sOmit(dst, r.Missing)
	dst = appendF64sOmit(dst, r.Scores)
	dst = appendU32(dst, uint32(len(r.Ranking)))
	for _, rk := range r.Ranking {
		dst = appendU32(dst, uint32(rk.Node))
		dst = appendF64(dst, rk.Score)
	}
	if r.Value != nil {
		dst = appendF64(dst, *r.Value)
	}
	dst = appendI32sOmit(dst, r.Seeds)
	dst = appendU32(dst, uint32(len(r.Entries)))
	for _, en := range r.Entries {
		dst = appendU32(dst, uint32(en.Node))
		dst = appendF64(dst, en.Dist)
		dst = appendF64(dst, en.Rank)
	}
	if m := r.Merge; m != nil {
		dst = appendIntsNil(dst, m.Shards)
		dst = appendU64(dst, uint64(int64(m.Partials)))
		dst = appendIntsOmit(dst, m.Failed)
	}
	return dst
}

// reader is the bounds-checked decode cursor: the first failure latches
// err and every later read is a no-op, so decode paths read linearly and
// check once at the end.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
	}
}

// take claims n bytes, or latches an error when fewer remain.
func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.fail("truncated frame: need %d bytes at offset %d of %d", n, r.off, len(r.b))
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *reader) u8() byte {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *reader) u16() uint16 {
	s := r.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (r *reader) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (r *reader) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (r *reader) i32() int32    { return int32(r.u32()) }
func (r *reader) i64() int64    { return int64(r.u64()) }
func (r *reader) f64() float64  { return math.Float64frombits(r.u64()) }
func (r *reader) boolean() bool { return r.u8() != 0 }

// count reads a u32 element count and verifies the remaining bytes can
// actually hold count elements of elemSize bytes, so a corrupt length
// can never trigger a giant allocation.
func (r *reader) count(elemSize int, what string) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if int64(n)*int64(elemSize) > int64(len(r.b)-r.off) {
		r.fail("corrupt frame: %s count %d exceeds %d remaining bytes", what, n, len(r.b)-r.off)
		return 0
	}
	return int(n)
}

func (r *reader) str(what string) string {
	n := r.count(1, what)
	if n == 0 {
		return ""
	}
	return string(r.take(n))
}

// i32sNil decodes the nilable []int32 shape written by appendI32sNil.
func (r *reader) i32sNil(what string) []int32 {
	if r.err != nil {
		return nil
	}
	if len(r.b)-r.off >= 4 && binary.LittleEndian.Uint32(r.b[r.off:]) == nilCount {
		r.off += 4
		return nil
	}
	n := r.count(4, what)
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = r.i32()
	}
	return vs
}

// i32sOmit decodes the omitempty []int32 shape: zero elements decode to
// nil, matching the JSON round trip.
func (r *reader) i32sOmit(what string) []int32 {
	n := r.count(4, what)
	if n == 0 {
		return nil
	}
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = r.i32()
	}
	return vs
}

func (r *reader) f64sOmit(what string) []float64 {
	n := r.count(8, what)
	if n == 0 {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.f64()
	}
	return vs
}

func (r *reader) intsNil(what string) []int {
	if r.err != nil {
		return nil
	}
	if len(r.b)-r.off >= 4 && binary.LittleEndian.Uint32(r.b[r.off:]) == nilCount {
		r.off += 4
		return nil
	}
	n := r.count(8, what)
	vs := make([]int, n)
	for i := range vs {
		vs[i] = int(r.i64())
	}
	return vs
}

func (r *reader) intsOmit(what string) []int {
	n := r.count(8, what)
	if n == 0 {
		return nil
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = int(r.i64())
	}
	return vs
}

// parseFrame validates the header and returns the message count, batch
// flag, and body.
func parseFrame(data []byte, wantType byte) (count int, batch bool, body []byte, err error) {
	if len(data) < frameHdrSize {
		return 0, false, nil, fmt.Errorf("wire: frame too short: %d bytes, header needs %d", len(data), frameHdrSize)
	}
	if data[0] != frameMagic0 || data[1] != frameMagic1 || data[2] != frameMagic2 || data[3] != frameMagic3 {
		return 0, false, nil, fmt.Errorf("wire: bad magic %q", data[:4])
	}
	if data[4] != Version {
		return 0, false, nil, fmt.Errorf("wire: unsupported frame version %d, this side speaks %d", data[4], Version)
	}
	if data[5] != wantType {
		return 0, false, nil, fmt.Errorf("wire: frame type %d, want %d", data[5], wantType)
	}
	if data[6]&^byte(flagBatch) != 0 {
		return 0, false, nil, fmt.Errorf("wire: unknown frame flags %#x", data[6])
	}
	if data[7] != 0 {
		return 0, false, nil, fmt.Errorf("wire: nonzero reserved byte %#x", data[7])
	}
	batch = data[6]&flagBatch != 0
	n := binary.LittleEndian.Uint32(data[8:12])
	bodyLen := binary.LittleEndian.Uint32(data[12:16])
	if int64(bodyLen) != int64(len(data)-frameHdrSize) {
		return 0, false, nil, fmt.Errorf("wire: body length %d, frame carries %d bytes", bodyLen, len(data)-frameHdrSize)
	}
	if !batch && n != 1 {
		return 0, false, nil, fmt.Errorf("wire: single frame with message count %d", n)
	}
	// Each message spends at least its 4-byte length prefix, bounding
	// the count a corrupt header can claim.
	if int64(n)*4 > int64(bodyLen) {
		return 0, false, nil, fmt.Errorf("wire: corrupt frame: %d messages in a %d-byte body", n, bodyLen)
	}
	return int(n), batch, data[frameHdrSize:], nil
}

// message claims the next length-prefixed message off the reader.
func (r *reader) message() *reader {
	n := r.count(1, "message length")
	return &reader{b: r.take(n), err: r.err}
}

// finish verifies the cursor consumed its bytes exactly.
func (r *reader) finish(what string) error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %s carries %d trailing bytes", what, len(r.b)-r.off)
	}
	return nil
}

// DecodeRequests decodes a request frame of either form, reporting
// whether it was the batch form (the binary mirror of a JSON array).
func DecodeRequests(data []byte) ([]adsketch.Request, bool, error) {
	n, batch, body, err := parseFrame(data, typeRequest)
	if err != nil {
		return nil, false, err
	}
	r := &reader{b: body}
	reqs := make([]adsketch.Request, n)
	for i := range reqs {
		m := r.message()
		if reqs[i], err = decodeRequestBody(m); err != nil {
			return nil, batch, err
		}
	}
	if err := r.finish("request frame"); err != nil {
		return nil, batch, err
	}
	return reqs, batch, nil
}

// DecodeRequest decodes a single-message request frame.  It is the
// serving hot path, so it skips DecodeRequests' slice and decodes the
// one message in place.
func DecodeRequest(data []byte) (adsketch.Request, error) {
	_, batch, body, err := parseFrame(data, typeRequest)
	if err != nil {
		return adsketch.Request{}, err
	}
	if batch {
		return adsketch.Request{}, fmt.Errorf("wire: batch frame where a single request was expected")
	}
	r := reader{b: body}
	req, err := decodeRequestBody(r.message())
	if err != nil {
		return adsketch.Request{}, err
	}
	if err := r.finish("request frame"); err != nil {
		return adsketch.Request{}, err
	}
	return req, nil
}

// DecodeResponses decodes a response frame of either form.
func DecodeResponses(data []byte) ([]adsketch.Response, bool, error) {
	n, batch, body, err := parseFrame(data, typeResponse)
	if err != nil {
		return nil, false, err
	}
	r := &reader{b: body}
	resps := make([]adsketch.Response, n)
	for i := range resps {
		m := r.message()
		if resps[i], err = decodeResponseBody(m); err != nil {
			return nil, batch, err
		}
	}
	if err := r.finish("response frame"); err != nil {
		return nil, batch, err
	}
	return resps, batch, nil
}

// DecodeResponse decodes a single-message response frame; like
// DecodeRequest it avoids the batch path's slice.
func DecodeResponse(data []byte) (adsketch.Response, error) {
	_, batch, body, err := parseFrame(data, typeResponse)
	if err != nil {
		return adsketch.Response{}, err
	}
	if batch {
		return adsketch.Response{}, fmt.Errorf("wire: batch frame where a single response was expected")
	}
	r := reader{b: body}
	resp, err := decodeResponseBody(r.message())
	if err != nil {
		return adsketch.Response{}, err
	}
	if err := r.finish("response frame"); err != nil {
		return adsketch.Response{}, err
	}
	return resp, nil
}

func decodeRequestBody(r *reader) (adsketch.Request, error) {
	var req adsketch.Request
	mask := r.u16()
	if r.err == nil && mask&^uint16(maskKnown) != 0 {
		r.fail("unknown request query bits %#x", mask&^uint16(maskKnown))
	}
	flags := r.u8()
	if r.err == nil && flags&^byte(reqFlagExplain) != 0 {
		r.fail("unknown request flags %#x", flags)
	}
	req.Explain = flags&reqFlagExplain != 0
	req.ID = r.str("request id")
	req.Dataset = r.str("request dataset")
	req.Policy = r.str("request policy")
	if mask&maskCloseness != 0 {
		req.Closeness = &adsketch.ClosenessQuery{Nodes: r.i32sNil("closeness nodes")}
	}
	if mask&maskHarmonic != 0 {
		req.Harmonic = &adsketch.HarmonicQuery{Nodes: r.i32sNil("harmonic nodes")}
	}
	if mask&maskNeighborhood != 0 {
		req.Neighborhood = &adsketch.NeighborhoodQuery{
			Radius:    r.f64(),
			Unbounded: r.boolean(),
			Nodes:     r.i32sNil("neighborhood nodes"),
		}
	}
	if mask&maskTopK != 0 {
		req.TopK = &adsketch.TopKQuery{
			Metric: r.str("topk metric"),
			K:      int(r.i64()),
		}
	}
	if mask&maskCentralityKernel != 0 {
		req.CentralityKernel = &adsketch.CentralityKernelQuery{
			Kernel: r.str("centrality kernel"),
			Radius: r.f64(),
			Nodes:  r.i32sNil("centrality_kernel nodes"),
		}
	}
	if mask&maskJaccard != 0 {
		req.Jaccard = &adsketch.JaccardQuery{
			A:       r.i32(),
			RadiusA: r.f64(),
			B:       r.i32(),
			RadiusB: r.f64(),
		}
	}
	if mask&maskInfluence != 0 {
		req.Influence = &adsketch.InfluenceQuery{
			Seeds:      r.i32sOmit("influence seeds"),
			NumSeeds:   int(r.i64()),
			Candidates: r.i32sOmit("influence candidates"),
			Radius:     r.f64(),
		}
	}
	if mask&maskDistanceBound != 0 {
		req.DistanceBound = &adsketch.DistanceBoundQuery{A: r.i32(), B: r.i32()}
	}
	if mask&maskSketch != 0 {
		req.Sketch = &adsketch.SketchQuery{Node: r.i32()}
	}
	if err := r.finish("request message"); err != nil {
		return adsketch.Request{}, err
	}
	return req, nil
}

func decodeResponseBody(r *reader) (adsketch.Response, error) {
	var resp adsketch.Response
	flags := r.u8()
	if r.err == nil && flags&^byte(respFlagKnown) != 0 {
		r.fail("unknown response flags %#x", flags)
	}
	resp.Partial = flags&respFlagPartial != 0
	resp.Unreachable = flags&respFlagUnreachable != 0
	resp.ID = r.str("response id")
	resp.Kind = r.str("response kind")
	resp.Error = r.str("response error")
	resp.Missing = r.i32sOmit("response missing")
	resp.Scores = r.f64sOmit("response scores")
	if n := r.count(12, "response ranking"); n > 0 {
		resp.Ranking = make([]adsketch.Ranked, n)
		for i := range resp.Ranking {
			resp.Ranking[i] = adsketch.Ranked{Node: r.i32(), Score: r.f64()}
		}
	}
	if flags&respFlagValue != 0 {
		v := r.f64()
		if r.err == nil {
			resp.Value = &v
		}
	}
	resp.Seeds = r.i32sOmit("response seeds")
	if n := r.count(20, "response entries"); n > 0 {
		resp.Entries = make([]adsketch.SketchEntry, n)
		for i := range resp.Entries {
			resp.Entries[i] = adsketch.SketchEntry{Node: r.i32(), Dist: r.f64(), Rank: r.f64()}
		}
	}
	if flags&respFlagMerge != 0 {
		m := &adsketch.MergeMeta{
			Shards:   r.intsNil("merge shards"),
			Partials: int(r.i64()),
			Failed:   r.intsOmit("merge failed"),
		}
		if r.err == nil {
			resp.Merge = m
		}
	}
	if err := r.finish("response message"); err != nil {
		return adsketch.Response{}, err
	}
	return resp, nil
}
