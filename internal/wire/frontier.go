package wire

import "fmt"

// Frontier frames carry one round of distributed-build candidate
// exchange: for each destination worker, the (target, node, dist, rank)
// candidates its partition must consider next round.  They reuse the
// query protocol's frame envelope with message type 3 and the batch
// flag always set; the message count field holds the total candidate
// count across all groups so a reader can size its buffers before
// touching the body.
//
// Body layout after the 16-byte frame header (little-endian):
//
//	u32 kind          (0 = uniform, 1 = weighted, 2 = approx)
//	u32 round         (the BSP round these candidates were generated in)
//	u32 numGroups     (destination workers, in worker-index order)
//	per group:
//	  u32 count
//	  per candidate:
//	    i32 target, i32 node, f64 dist, f64 rank
//	    f64 beta                      (weighted builds only)
//	    u32 keyLen, keyLen × u64 key  (approx builds only)
//
// The per-kind trailer mirrors what the build actually propagates: a
// weighted candidate carries its node's weight β so no worker needs the
// global weight vector, and an approximate candidate carries its
// lineage key so every worker replays the sequential build's
// acceptance schedule.
const typeFrontier = 3

// FrontierKind* mirror the distbuild kind codes carried in the frame.
const (
	FrontierKindUniform  = 0
	FrontierKindWeighted = 1
	FrontierKindApprox   = 2
)

// FrontierCandidate is one relaxation candidate in flight between
// partitions: Target's sketch should consider holding Node at distance
// Dist with rank Rank.  Beta is meaningful only in weighted builds and
// Key only in approximate builds.
type FrontierCandidate struct {
	Target int32
	Node   int32
	Dist   float64
	Rank   float64
	Beta   float64
	Key    []uint64
}

// FrontierFrame is one decoded exchange payload: Groups[i] holds the
// candidates destined for worker i, in the order the sender emitted
// them.
type FrontierFrame struct {
	Kind   int
	Round  int
	Groups [][]FrontierCandidate
}

func (f *FrontierFrame) totalCandidates() int {
	n := 0
	for _, g := range f.Groups {
		n += len(g)
	}
	return n
}

// EncodeFrontierFrame replaces b's contents with one frontier frame.
func EncodeFrontierFrame(b *Buf, f *FrontierFrame) error {
	if f.Kind < FrontierKindUniform || f.Kind > FrontierKindApprox {
		return fmt.Errorf("wire: unknown frontier kind %d", f.Kind)
	}
	dst := beginFrame(b.B[:0], typeFrontier, flagBatch, uint32(f.totalCandidates()))
	dst = appendU32(dst, uint32(f.Kind))
	dst = appendU32(dst, uint32(f.Round))
	dst = appendU32(dst, uint32(len(f.Groups)))
	for _, g := range f.Groups {
		dst = appendU32(dst, uint32(len(g)))
		for i := range g {
			c := &g[i]
			dst = appendU32(dst, uint32(c.Target))
			dst = appendU32(dst, uint32(c.Node))
			dst = appendF64(dst, c.Dist)
			dst = appendF64(dst, c.Rank)
			if f.Kind == FrontierKindWeighted {
				dst = appendF64(dst, c.Beta)
			}
			if f.Kind == FrontierKindApprox {
				dst = appendU32(dst, uint32(len(c.Key)))
				for _, k := range c.Key {
					dst = appendU64(dst, k)
				}
			}
		}
	}
	b.B = endFrame(dst)
	return nil
}

// DecodeFrontierFrame decodes one frontier frame, validating every
// count against the bytes present before allocating.
func DecodeFrontierFrame(data []byte) (*FrontierFrame, error) {
	n, batch, body, err := parseFrame(data, typeFrontier)
	if err != nil {
		return nil, err
	}
	if !batch {
		return nil, fmt.Errorf("wire: frontier frames must set the batch flag")
	}
	r := &reader{b: body}
	kind := r.u32()
	if r.err == nil && kind > FrontierKindApprox {
		r.fail("unknown frontier kind %d", kind)
	}
	round := r.u32()
	f := &FrontierFrame{Kind: int(kind), Round: int(round)}
	// A candidate spends at least target+node+dist+rank = 24 bytes.
	elem := 24
	if f.Kind == FrontierKindWeighted {
		elem += 8
	}
	if f.Kind == FrontierKindApprox {
		elem += 4
	}
	numGroups := r.count(4, "frontier groups")
	f.Groups = make([][]FrontierCandidate, numGroups)
	total := 0
	for gi := 0; gi < numGroups && r.err == nil; gi++ {
		cnt := r.count(elem, "frontier group")
		g := make([]FrontierCandidate, cnt)
		for i := range g {
			g[i] = FrontierCandidate{
				Target: r.i32(),
				Node:   r.i32(),
				Dist:   r.f64(),
				Rank:   r.f64(),
			}
			if f.Kind == FrontierKindWeighted {
				g[i].Beta = r.f64()
			}
			if f.Kind == FrontierKindApprox {
				if kl := r.count(8, "candidate key"); kl > 0 {
					key := make([]uint64, kl)
					for j := range key {
						key[j] = r.u64()
					}
					g[i].Key = key
				}
			}
		}
		f.Groups[gi] = g
		total += cnt
	}
	if r.err == nil && total != n {
		r.fail("frontier frame claims %d candidates, body carries %d", n, total)
	}
	if err := r.finish("frontier frame"); err != nil {
		return nil, err
	}
	return f, nil
}
