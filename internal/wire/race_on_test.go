//go:build race

package wire

// raceEnabled reports whether the race detector instruments this build;
// its write barriers add allocations that fixed alloc-cap tests must
// not count against the real decode path.
const raceEnabled = true
