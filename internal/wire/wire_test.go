package wire

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"adsketch"
)

func scalar(v float64) *float64 { return &v }

// requestCorpus covers every query kind plus the nil/empty slice edge
// cases the JSON shape distinguishes (or deliberately collapses).
func requestCorpus() []adsketch.Request {
	return []adsketch.Request{
		{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0, 17, 123}}},
		{ID: "a", Dataset: "web", Policy: "partial", Explain: true,
			Closeness: &adsketch.ClosenessQuery{Nodes: nil}},
		{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{}}},
		{Harmonic: &adsketch.HarmonicQuery{Nodes: []int32{5}}},
		{Neighborhood: &adsketch.NeighborhoodQuery{Radius: 2.5, Nodes: []int32{1, 2}}},
		{Neighborhood: &adsketch.NeighborhoodQuery{Unbounded: true, Nodes: []int32{}}},
		{TopK: &adsketch.TopKQuery{Metric: "closeness", K: 10}},
		{TopK: &adsketch.TopKQuery{Metric: "harmonic", K: -3}},
		{CentralityKernel: &adsketch.CentralityKernelQuery{Kernel: "threshold", Radius: 3, Nodes: []int32{9}}},
		{CentralityKernel: &adsketch.CentralityKernelQuery{Kernel: "exponential", Nodes: nil}},
		{Jaccard: &adsketch.JaccardQuery{A: 1, RadiusA: 2, B: 3, RadiusB: 4.25}},
		{Influence: &adsketch.InfluenceQuery{Seeds: []int32{1, 2}, Radius: 2}},
		{Influence: &adsketch.InfluenceQuery{NumSeeds: 3, Candidates: []int32{4, 5, 6}, Radius: 1}},
		{Influence: &adsketch.InfluenceQuery{NumSeeds: 2, Radius: 0}},
		{DistanceBound: &adsketch.DistanceBoundQuery{A: 7, B: 8}},
		{Sketch: &adsketch.SketchQuery{Node: 42}},
		{ID: "empty"}, // no query set: still frames and round-trips
	}
}

func responseCorpus() []adsketch.Response {
	return []adsketch.Response{
		{ID: "a", Kind: "closeness", Scores: []float64{1.5, 0, math.Inf(1)}},
		{Kind: "closeness", Partial: true, Missing: []int32{3, 4},
			Scores: []float64{0, 0, 2.25},
			Merge:  &adsketch.MergeMeta{Shards: []int{0, 1}, Partials: 1, Failed: []int{1}}},
		{Kind: "topk", Ranking: []adsketch.Ranked{{Node: 3, Score: 9.5}, {Node: 1, Score: 2}}},
		{Kind: "jaccard", Value: scalar(0.75)},
		{Kind: "jaccard", Value: scalar(0)}, // genuine zero must survive
		{Kind: "distance_bound", Unreachable: true},
		{Kind: "influence", Seeds: []int32{2, 9}, Value: scalar(17)},
		{Kind: "sketch", Entries: []adsketch.SketchEntry{{Node: 1, Dist: 0.5, Rank: 0.25}}},
		{Kind: "closeness", Merge: &adsketch.MergeMeta{Shards: nil, Partials: 2}},
		{ID: "b", Error: "shard 1: boom"},
		{},
	}
}

// jsonRoundTripReq is what the JSON transport would deliver: the parity
// oracle for the binary codec's nil/empty semantics.
func jsonRoundTripReq(t *testing.T, req adsketch.Request) adsketch.Request {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("json.Marshal: %v", err)
	}
	var out adsketch.Request
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("json.Unmarshal: %v", err)
	}
	return out
}

func jsonRoundTripResp(t *testing.T, resp adsketch.Response) adsketch.Response {
	t.Helper()
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatalf("json.Marshal: %v", err)
	}
	var out adsketch.Response
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("json.Unmarshal: %v", err)
	}
	return out
}

func TestRequestRoundTripMatchesJSON(t *testing.T) {
	for i, req := range requestCorpus() {
		buf := Get()
		EncodeRequest(buf, &req)
		got, err := DecodeRequest(buf.B)
		buf.Free()
		if err != nil {
			t.Fatalf("request %d: DecodeRequest: %v", i, err)
		}
		want := jsonRoundTripReq(t, req)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("request %d: binary round trip = %+v, JSON round trip = %+v", i, got, want)
		}
	}
}

func TestResponseRoundTripMatchesJSON(t *testing.T) {
	for i, resp := range responseCorpus() {
		if i == 0 {
			continue // Inf score cannot ride JSON; checked separately below
		}
		buf := Get()
		EncodeResponse(buf, &resp)
		got, err := DecodeResponse(buf.B)
		buf.Free()
		if err != nil {
			t.Fatalf("response %d: DecodeResponse: %v", i, err)
		}
		want := jsonRoundTripResp(t, resp)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("response %d: binary round trip = %+v, JSON round trip = %+v", i, got, want)
		}
	}
}

// Binary frames carry every float64 bit pattern, including the ±Inf
// JSON would reject.
func TestResponseCarriesNonFinite(t *testing.T) {
	resp := adsketch.Response{Scores: []float64{math.Inf(1), math.Inf(-1)}}
	buf := Get()
	defer buf.Free()
	EncodeResponse(buf, &resp)
	got, err := DecodeResponse(buf.B)
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if !math.IsInf(got.Scores[0], 1) || !math.IsInf(got.Scores[1], -1) {
		t.Fatalf("non-finite scores lost: %v", got.Scores)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	reqs := requestCorpus()
	buf := Get()
	defer buf.Free()
	EncodeRequests(buf, reqs)
	got, batch, err := DecodeRequests(buf.B)
	if err != nil {
		t.Fatalf("DecodeRequests: %v", err)
	}
	if !batch {
		t.Fatal("batch frame decoded as single")
	}
	if len(got) != len(reqs) {
		t.Fatalf("decoded %d requests, want %d", len(got), len(reqs))
	}
	for i := range got {
		want := jsonRoundTripReq(t, reqs[i])
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("request %d: %+v, want %+v", i, got[i], want)
		}
	}

	// Zero-request batches are legal (the JSON array form accepts []).
	EncodeRequests(buf, nil)
	got, batch, err = DecodeRequests(buf.B)
	if err != nil || !batch || len(got) != 0 {
		t.Fatalf("empty batch: got %v batch=%v err=%v", got, batch, err)
	}

	// A batch frame is not a single frame.
	EncodeRequests(buf, reqs[:1])
	if _, err := DecodeRequest(buf.B); err == nil {
		t.Fatal("DecodeRequest accepted a batch frame")
	}
}

func TestResponseBatchRoundTrip(t *testing.T) {
	resps := responseCorpus()
	buf := Get()
	defer buf.Free()
	EncodeResponses(buf, resps)
	got, batch, err := DecodeResponses(buf.B)
	if err != nil {
		t.Fatalf("DecodeResponses: %v", err)
	}
	if !batch || len(got) != len(resps) {
		t.Fatalf("batch=%v len=%d, want true/%d", batch, len(got), len(resps))
	}
}

func TestDecodeRejectsCorruptFrames(t *testing.T) {
	buf := Get()
	defer buf.Free()
	req := adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{1, 2, 3}}}
	EncodeRequest(buf, &req)
	good := append([]byte(nil), buf.B...)

	cases := map[string][]byte{
		"empty":          {},
		"short header":   good[:8],
		"truncated body": good[:len(good)-3],
		"trailing junk":  append(append([]byte(nil), good...), 0xFF),
	}
	for i := range good {
		// Flip one byte at every offset; none may panic, and header
		// corruption must error.
		mut := append([]byte(nil), good...)
		mut[i] ^= 0xA5
		cases["bitflip"] = mut
		for name, data := range cases {
			if _, _, err := DecodeRequests(data); err == nil && name != "bitflip" {
				t.Errorf("%s: decode accepted corrupt frame", name)
			}
		}
		delete(cases, "bitflip")
	}

	// Wrong frame type: a response frame is not a request frame.
	var rbuf Buf
	EncodeResponse(&rbuf, &adsketch.Response{Kind: "x"})
	if _, _, err := DecodeRequests(rbuf.B); err == nil {
		t.Error("request decoder accepted a response frame")
	}
	if _, _, err := DecodeResponses(good); err == nil {
		t.Error("response decoder accepted a request frame")
	}

	// Future versions are rejected, not misread.
	mut := append([]byte(nil), good...)
	mut[4] = Version + 1
	if _, _, err := DecodeRequests(mut); err == nil {
		t.Error("decoder accepted an unknown frame version")
	}
}

// A corrupt count field may not trigger a giant allocation: the decoder
// checks claimed counts against the bytes actually present first.
func TestDecodeAllocationCap(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; cap is checked in the regular run")
	}
	buf := Get()
	defer buf.Free()
	req := adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{1}}}
	EncodeRequest(buf, &req)
	// The nodes count sits after the message length (4), mask (2),
	// flags (1), and three empty strings (12): claim 2^31 elements.
	mut := append([]byte(nil), buf.B...)
	off := frameHdrSize + 4 + 2 + 1 + 12
	mut[off], mut[off+1], mut[off+2], mut[off+3] = 0, 0, 0, 0x40
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := DecodeRequests(mut); err == nil {
			t.Fatal("decode accepted a frame claiming 2^30 nodes")
		}
	})
	if allocs > 8 {
		t.Fatalf("corrupt-frame decode did %.1f allocs/op, want <= 8", allocs)
	}
}

// The encode path must be allocation-free once the pooled buffer is
// warm — that is the whole point of the binary hot path.
func TestEncodeSteadyStateAllocs(t *testing.T) {
	req := adsketch.Request{Neighborhood: &adsketch.NeighborhoodQuery{
		Radius: 3, Nodes: []int32{0, 17, 123, 999, 7777},
	}}
	resp := adsketch.Response{Kind: "neighborhood", Scores: []float64{1, 2, 3, 4, 5}}
	buf := Get()
	defer buf.Free()
	EncodeRequest(buf, &req) // warm the capacity
	if allocs := testing.AllocsPerRun(100, func() { EncodeRequest(buf, &req) }); allocs != 0 {
		t.Errorf("EncodeRequest: %.1f allocs/op at steady state, want 0", allocs)
	}
	EncodeResponse(buf, &resp)
	if allocs := testing.AllocsPerRun(100, func() { EncodeResponse(buf, &resp) }); allocs != 0 {
		t.Errorf("EncodeResponse: %.1f allocs/op at steady state, want 0", allocs)
	}
}

// Pool discipline: oversized buffers are not retained.
func TestPoolDropsOversizedBuffers(t *testing.T) {
	b := Get()
	b.B = make([]byte, maxPooled+1)
	b.Free()
	if b.B != nil {
		t.Fatal("Free kept an oversized buffer")
	}
}

func FuzzDecodeRequest(f *testing.F) {
	for _, req := range requestCorpus() {
		var buf Buf
		EncodeRequest(&buf, &req)
		f.Add(append([]byte(nil), buf.B...))
	}
	var batch Buf
	EncodeRequests(&batch, requestCorpus())
	f.Add(append([]byte(nil), batch.B...))
	f.Add([]byte("ADSW"))
	f.Fuzz(func(t *testing.T, data []byte) {
		reqs, _, err := DecodeRequests(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode into a fixed point: the
		// codec has one canonical byte form per message.  (Bytes, not
		// DeepEqual — fuzzed frames may carry NaN payloads.)
		var buf1, buf2 Buf
		EncodeRequests(&buf1, reqs)
		again, _, err := DecodeRequests(buf1.B)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v", err)
		}
		EncodeRequests(&buf2, again)
		if !bytes.Equal(buf1.B, buf2.B) {
			t.Fatalf("re-encode is not a fixed point:\n%x\n%x", buf1.B, buf2.B)
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	for _, resp := range responseCorpus() {
		var buf Buf
		EncodeResponse(&buf, &resp)
		f.Add(append([]byte(nil), buf.B...))
	}
	var batch Buf
	EncodeResponses(&batch, responseCorpus())
	f.Add(append([]byte(nil), batch.B...))
	f.Fuzz(func(t *testing.T, data []byte) {
		resps, _, err := DecodeResponses(data)
		if err != nil {
			return
		}
		var buf1, buf2 Buf
		EncodeResponses(&buf1, resps)
		again, _, err := DecodeResponses(buf1.B)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v", err)
		}
		EncodeResponses(&buf2, again)
		if !bytes.Equal(buf1.B, buf2.B) {
			t.Fatalf("re-encode is not a fixed point:\n%x\n%x", buf1.B, buf2.B)
		}
	})
}
