package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

func frontierCorpus() []*FrontierFrame {
	return []*FrontierFrame{
		{Kind: FrontierKindUniform, Round: 0, Groups: [][]FrontierCandidate{
			{{Target: 3, Node: 0, Dist: 1, Rank: 0.25}},
			nil,
			{{Target: 9, Node: 2, Dist: 2, Rank: 0.5}, {Target: 9, Node: 4, Dist: 1, Rank: 0.75}},
		}},
		{Kind: FrontierKindWeighted, Round: 2, Groups: [][]FrontierCandidate{
			{{Target: 1, Node: 7, Dist: 0.5, Rank: 1.25, Beta: 3.5}},
		}},
		{Kind: FrontierKindApprox, Round: 1, Groups: [][]FrontierCandidate{
			{{Target: 0, Node: 1, Dist: 1, Rank: 0.125, Key: []uint64{1 << 32, 2, 3}}},
			{{Target: 5, Node: 6, Dist: 2, Rank: 0.5, Key: []uint64{6<<32 | 1}}},
		}},
		{Kind: FrontierKindUniform, Round: 9, Groups: nil},
	}
}

func TestFrontierFrameRoundTrip(t *testing.T) {
	for i, f := range frontierCorpus() {
		buf := Get()
		if err := EncodeFrontierFrame(buf, f); err != nil {
			t.Fatalf("frame %d: encode: %v", i, err)
		}
		got, err := DecodeFrontierFrame(buf.B)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if got.Kind != f.Kind || got.Round != f.Round || len(got.Groups) != len(f.Groups) {
			t.Fatalf("frame %d: envelope mismatch: %+v vs %+v", i, got, f)
		}
		for gi := range f.Groups {
			if len(f.Groups[gi]) == 0 && len(got.Groups[gi]) == 0 {
				continue
			}
			if !reflect.DeepEqual(got.Groups[gi], f.Groups[gi]) {
				t.Fatalf("frame %d group %d: %+v vs %+v", i, gi, got.Groups[gi], f.Groups[gi])
			}
		}
		buf.Free()
	}
}

func TestFrontierFrameRejects(t *testing.T) {
	buf := Get()
	defer buf.Free()
	if err := EncodeFrontierFrame(buf, &FrontierFrame{Kind: 7}); err == nil {
		t.Error("encode accepted an unknown kind")
	}
	if err := EncodeFrontierFrame(buf, frontierCorpus()[2]); err != nil {
		t.Fatal(err)
	}
	good := buf.B

	// Truncation anywhere in the frame fails cleanly.
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodeFrontierFrame(good[:cut]); err == nil {
			t.Fatalf("decoder accepted a frame truncated to %d of %d bytes", cut, len(good))
		}
	}
	// Trailing garbage is rejected by the body-length check.
	if _, err := DecodeFrontierFrame(append(append([]byte(nil), good...), 0xAB)); err == nil {
		t.Error("decoder accepted an oversized frame")
	}
	// Wrong message type, cleared batch flag, and a candidate count that
	// disagrees with the body are all rejected.
	mut := append([]byte(nil), good...)
	mut[5] = typeRequest
	binary.LittleEndian.PutUint32(mut[12:16], uint32(len(mut)-frameHdrSize))
	if _, err := DecodeFrontierFrame(mut); err == nil {
		t.Error("decoder accepted a request frame")
	}
	mut = append([]byte(nil), good...)
	mut[6] = 0
	binary.LittleEndian.PutUint32(mut[8:12], 1)
	if _, err := DecodeFrontierFrame(mut); err == nil {
		t.Error("decoder accepted a frontier frame without the batch flag")
	}
	mut = append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(mut[8:12], 99)
	if _, err := DecodeFrontierFrame(mut); err == nil {
		t.Error("decoder accepted a frame whose count disagrees with its body")
	}
	// A corrupt group count cannot trigger a giant allocation.
	mut = append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(mut[frameHdrSize+8:], 1<<30)
	if _, err := DecodeFrontierFrame(mut); err == nil {
		t.Error("decoder accepted a frame claiming 2^30 groups")
	}
}

func FuzzDecodeFrontierFrame(f *testing.F) {
	for _, fr := range frontierCorpus() {
		var buf Buf
		if err := EncodeFrontierFrame(&buf, fr); err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), buf.B...))
	}
	f.Add([]byte("ADSW"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrontierFrame(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode into a fixed point.
		var buf1, buf2 Buf
		if err := EncodeFrontierFrame(&buf1, fr); err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		again, err := DecodeFrontierFrame(buf1.B)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v", err)
		}
		EncodeFrontierFrame(&buf2, again)
		if !bytes.Equal(buf1.B, buf2.B) {
			t.Fatalf("re-encode is not a fixed point:\n%x\n%x", buf1.B, buf2.B)
		}
	})
}
