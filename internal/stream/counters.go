package stream

import (
	"fmt"
	"sort"

	"adsketch/internal/rank"
)

// HIP distinct counters over the three MinHash sketch flavors (Section 6).
// Each maintains only the MinHash sketch plus one running count; when an
// element modifies the sketch, the count grows by the inverse of the
// modification probability given the pre-update sketch state.  All are
// unbiased, and re-occurrences of an element never change sketch or count.

// Distinct is the interface shared by the streaming distinct counters in
// this package and package hll.
type Distinct interface {
	// Add folds an element in, reporting whether the sketch changed.
	Add(id int64) bool
	// Estimate returns the current distinct-count estimate.
	Estimate() float64
}

// BottomKCounter is the bottom-k HIP distinct counter: a bottom-k MinHash
// sketch plus the HIP register.  Memory is O(k); the retained ADS entries
// of FirstOccurrenceADS are not kept.
type BottomKCounter struct {
	k     int
	src   rank.Source
	ranks []float64 // k smallest ranks, ascending
	count float64
}

var _ Distinct = (*BottomKCounter)(nil)

// NewBottomKCounter returns an empty counter.
func NewBottomKCounter(k int, src rank.Source) *BottomKCounter {
	if k < 1 {
		panic(fmt.Sprintf("stream: k = %d, need >= 1", k))
	}
	return &BottomKCounter{k: k, src: src}
}

// Add implements Distinct.
func (c *BottomKCounter) Add(id int64) bool {
	r := c.src.Rank(id)
	tau := 1.0
	if len(c.ranks) >= c.k {
		tau = c.ranks[c.k-1]
	}
	if r >= tau {
		return false
	}
	i := sort.SearchFloat64s(c.ranks, r)
	if i < len(c.ranks) && c.ranks[i] == r {
		return false // re-occurrence
	}
	c.count += 1 / tau
	c.ranks = append(c.ranks, 0)
	copy(c.ranks[i+1:], c.ranks[i:])
	c.ranks[i] = r
	if len(c.ranks) > c.k {
		c.ranks = c.ranks[:c.k]
	}
	return true
}

// Estimate implements Distinct.
func (c *BottomKCounter) Estimate() float64 { return c.count }

// KMinsCounter is the k-mins HIP distinct counter: k independent minimum
// ranks plus the HIP register.  The update probability of a fresh element
// is 1 - Π_h (1 - min_h) (equation (7) with the whole prefix as Φ).
type KMinsCounter struct {
	k     int
	src   rank.Source
	mins  []float64
	count float64
}

var _ Distinct = (*KMinsCounter)(nil)

// NewKMinsCounter returns an empty counter.
func NewKMinsCounter(k int, src rank.Source) *KMinsCounter {
	if k < 1 {
		panic(fmt.Sprintf("stream: k = %d, need >= 1", k))
	}
	mins := make([]float64, k)
	for i := range mins {
		mins[i] = 1
	}
	return &KMinsCounter{k: k, src: src, mins: mins}
}

// Add implements Distinct.
func (c *KMinsCounter) Add(id int64) bool {
	updated := false
	tau := 1.0
	prod := 1.0
	for _, m := range c.mins {
		prod *= 1 - m
	}
	tau = 1 - prod
	for h := 0; h < c.k; h++ {
		if r := c.src.RankAt(h, id); r < c.mins[h] {
			c.mins[h] = r
			updated = true
		}
	}
	if updated {
		c.count += 1 / tau
	}
	return updated
}

// Estimate implements Distinct.
func (c *KMinsCounter) Estimate() float64 { return c.count }

// KPartitionCounter is the k-partition HIP distinct counter with
// full-precision ranks; the base-2 register variant (HyperLogLog layout)
// lives in package hll.  The update probability of a fresh element is
// (1/k) Σ_b min_b (equation (8)).
type KPartitionCounter struct {
	k     int
	src   rank.Source
	mins  []float64
	sum   float64
	count float64
}

var _ Distinct = (*KPartitionCounter)(nil)

// NewKPartitionCounter returns an empty counter.
func NewKPartitionCounter(k int, src rank.Source) *KPartitionCounter {
	if k < 1 {
		panic(fmt.Sprintf("stream: k = %d, need >= 1", k))
	}
	mins := make([]float64, k)
	for i := range mins {
		mins[i] = 1
	}
	return &KPartitionCounter{k: k, src: src, mins: mins, sum: float64(k)}
}

// Add implements Distinct.
func (c *KPartitionCounter) Add(id int64) bool {
	b := c.src.Bucket(id, c.k)
	r := c.src.Rank(id)
	if r >= c.mins[b] {
		return false
	}
	tau := c.sum / float64(c.k)
	c.count += 1 / tau
	c.sum += r - c.mins[b]
	c.mins[b] = r
	return true
}

// Estimate implements Distinct.
func (c *KPartitionCounter) Estimate() float64 { return c.count }
