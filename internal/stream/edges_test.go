package stream

import (
	"errors"
	"testing"
)

func TestSliceSourceReplay(t *testing.T) {
	in := []Edge{{U: 1, V: 2}, {U: 2, V: 3, W: 1.5}, {U: 0, V: 4}}
	src := NewSliceSource(in)
	var got []Edge
	n, err := Replay(src, func(e Edge) error {
		got = append(got, e)
		return nil
	})
	if err != nil || n != len(in) {
		t.Fatalf("Replay: n=%d err=%v", n, err)
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("edge %d: got %+v, want %+v", i, got[i], in[i])
		}
	}
	if !in[0].Unit() || in[1].Unit() {
		t.Fatal("Unit misclassifies edges")
	}
	src.Reset()
	if n, _ := Replay(src, func(Edge) error { return nil }); n != len(in) {
		t.Fatalf("Replay after Reset: n=%d", n)
	}
}

func TestReplayStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	src := NewSliceSource([]Edge{{U: 1, V: 2}, {U: 3, V: 4}})
	n, err := Replay(src, func(Edge) error { return boom })
	if !errors.Is(err, boom) || n != 0 {
		t.Fatalf("Replay: n=%d err=%v", n, err)
	}
}

// TestRandomSourceDeterminism: the same seed must yield the same stream —
// the property ingest replay tests and benchmarks depend on.
func TestRandomSourceDeterminism(t *testing.T) {
	drain := func(seed uint64, weighted bool) []Edge {
		src, err := NewRandomSource(100, 500, weighted, seed)
		if err != nil {
			t.Fatalf("NewRandomSource: %v", err)
		}
		var out []Edge
		if _, err := Replay(src, func(e Edge) error { out = append(out, e); return nil }); err != nil {
			t.Fatalf("Replay: %v", err)
		}
		return out
	}
	a, b := drain(7, true), drain(7, true)
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("stream lengths %d, %d; want 500", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs under the same seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := drain(8, true)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
	for i, e := range a {
		if e.U < 0 || e.U >= 100 || e.V < 0 || e.V >= 100 {
			t.Fatalf("edge %d out of node range: %+v", i, e)
		}
		if !(e.W >= 0.5 && e.W < 1.5) {
			t.Fatalf("edge %d weight out of [0.5,1.5): %+v", i, e)
		}
	}
	for i, e := range drain(3, false) {
		if !e.Unit() {
			t.Fatalf("unweighted stream edge %d carries weight: %+v", i, e)
		}
	}
}

func TestRandomSourceValidation(t *testing.T) {
	if _, err := NewRandomSource(0, 10, false, 1); err == nil {
		t.Fatal("NewRandomSource(0 nodes) succeeded")
	}
	if _, err := NewRandomSource(5, -1, false, 1); err == nil {
		t.Fatal("NewRandomSource(-1 edges) succeeded")
	}
}
