package stream

import (
	"math"
	"testing"

	"adsketch/internal/rank"
	"adsketch/internal/stats"
)

func TestZipfRangeAndDeterminism(t *testing.T) {
	a := NewZipf(1000, 1.1, 7)
	b := NewZipf(1000, 1.1, 7)
	for i := 0; i < 10000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatal("same seed diverged")
		}
		if x < 0 || x >= 1000 {
			t.Fatalf("element %d out of range", x)
		}
	}
	if a.Universe() != 1000 {
		t.Error("Universe accessor")
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(10000, 1.2, 3)
	counts := make(map[int64]int)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Element 0 should be by far the most frequent; the head should
	// dominate: top-10 elements should carry a large share.
	top := 0
	for id := int64(0); id < 10; id++ {
		top += counts[id]
	}
	if frac := float64(top) / draws; frac < 0.3 {
		t.Errorf("top-10 share = %.3f, want heavy head", frac)
	}
	// Frequencies should decay: f(0) > f(10) > f(100).
	if !(counts[0] > counts[10] && counts[10] > counts[100]) {
		t.Errorf("frequencies not decaying: %d %d %d", counts[0], counts[10], counts[100])
	}
}

func TestZipfExponentOne(t *testing.T) {
	z := NewZipf(100, 1, 5)
	seen := map[int64]bool{}
	for i := 0; i < 20000; i++ {
		seen[z.Next()] = true
	}
	// s=1 over a tiny universe should eventually touch most elements.
	if len(seen) < 80 {
		t.Errorf("only %d of 100 elements seen", len(seen))
	}
}

func TestZipfPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty universe": func() { NewZipf(0, 1.1, 1) },
		"bad exponent":   func() { NewZipf(10, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestDistinctCountersOnZipfStream: the counters must be insensitive to
// repetition structure — a heavy-tailed stream with many duplicates gives
// the same accuracy as a distinct stream of the same cardinality.
func TestDistinctCountersOnZipfStream(t *testing.T) {
	const k, runs = 32, 120
	acc := stats.NewErrAccum(0) // truth varies per run; use ratio accounting
	var ratios stats.Accum
	for run := 0; run < runs; run++ {
		z := NewZipf(50000, 1.05, uint64(run)*53+1)
		c := NewBottomKCounter(k, rank.NewSource(uint64(run)*97+5))
		exact := map[int64]struct{}{}
		for i := 0; i < 100000; i++ {
			id := z.Next()
			exact[id] = struct{}{}
			c.Add(id)
		}
		ratios.Add(c.Estimate() / float64(len(exact)))
	}
	if math.Abs(ratios.Mean()-1) > 0.05 {
		t.Errorf("mean estimate/truth = %g, want ~1", ratios.Mean())
	}
	if ratios.Std() > 2.5/math.Sqrt(2*(k-1)) {
		t.Errorf("ratio std %g far above HIP CV", ratios.Std())
	}
	_ = acc
}
