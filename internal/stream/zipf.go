package stream

import (
	"math"

	"adsketch/internal/rank"
)

// Zipf generates a heavy-tailed stream of element IDs — the workload shape
// of web/page-view streams that distinct counters face in practice.
// Element i (1-based) is drawn with probability proportional to 1/i^s over
// a universe of size n, using Chlebus's approximate inverse-CDF for the
// Zipf distribution (exact enough for workload generation).
type Zipf struct {
	n   int
	s   float64
	rng *rank.RNG
	// hInt is the normalizing integral approximation H(n).
	hn float64
}

// NewZipf returns a generator over universe [0, n) with exponent s > 0,
// s != 1 handled via the generalized harmonic integral.
func NewZipf(n int, s float64, seed uint64) *Zipf {
	if n < 1 {
		panic("stream: Zipf universe must be non-empty")
	}
	if s <= 0 {
		panic("stream: Zipf exponent must be positive")
	}
	z := &Zipf{n: n, s: s, rng: rank.NewRNG(seed)}
	z.hn = z.h(float64(n) + 0.5)
	return z
}

// h is the integral of x^-s from 0.5 to x, a continuous approximation of
// the generalized harmonic number.
func (z *Zipf) h(x float64) float64 {
	if z.s == 1 {
		return math.Log(x) - math.Log(0.5)
	}
	return (math.Pow(x, 1-z.s) - math.Pow(0.5, 1-z.s)) / (1 - z.s)
}

// hInv inverts h.
func (z *Zipf) hInv(y float64) float64 {
	if z.s == 1 {
		return 0.5 * math.Exp(y)
	}
	return math.Pow(y*(1-z.s)+math.Pow(0.5, 1-z.s), 1/(1-z.s))
}

// Next returns the next element ID in [0, n).
func (z *Zipf) Next() int64 {
	u := z.rng.Float64()
	x := z.hInv(u * z.hn)
	i := int64(math.Round(x))
	if i < 1 {
		i = 1
	}
	if i > int64(z.n) {
		i = int64(z.n)
	}
	return i - 1
}

// Universe returns n.
func (z *Zipf) Universe() int { return z.n }
