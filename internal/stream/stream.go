// Package stream implements All-Distances Sketches over data streams
// (Section 3.1) and streaming distinct counters built on them.
//
// A stream is a sequence of (element, time) entries.  Two time semantics
// replace graph distance:
//
//   - first occurrence: the "distance" of an element is the elapsed time
//     from the start of the stream to its first occurrence, emphasizing
//     early elements.  Elements arrive in increasing distance, so the ADS
//     is maintained exactly like a neighborhood scan (FirstOccurrenceADS).
//
//   - recency: the "distance" is the elapsed time from the most recent
//     occurrence to the current time, emphasizing recent elements
//     (appropriate for time-decaying statistics).  Entries arrive in
//     decreasing distance, so every new entry is inserted and older
//     entries are cleaned up (RecencyADS).
//
// The HIP distinct counters of Section 6 for bottom-k, k-mins, and
// k-partition MinHash sketches are also here; the HyperLogLog-specific
// variants live in package hll.
package stream

import (
	"sort"

	"adsketch/internal/core"
	"adsketch/internal/rank"
)

// FirstOccurrenceADS maintains a bottom-k ADS of the distinct elements of a
// stream keyed by elapsed time from the stream start to each element's
// first occurrence (Section 3.1, case (i)).  It is equivalent to keeping a
// bottom-k MinHash sketch of the prefix and recording every entry that
// modified it.
type FirstOccurrenceADS struct {
	k       int
	src     rank.Source
	entries []core.Entry // canonical order: increasing time
	ranks   []float64    // k smallest ranks, ascending
	hip     float64      // running HIP distinct count
}

// NewFirstOccurrenceADS returns an empty sketch with parameter k using the
// given rank source.
func NewFirstOccurrenceADS(k int, src rank.Source) *FirstOccurrenceADS {
	if k < 1 {
		panic("stream: k must be >= 1")
	}
	return &FirstOccurrenceADS{k: k, src: src}
}

// K returns the sketch parameter.
func (s *FirstOccurrenceADS) K() int { return s.k }

// Size returns the number of retained entries.
func (s *FirstOccurrenceADS) Size() int { return len(s.entries) }

// Entries returns the retained (element, first-occurrence-time) entries in
// time order.  Node holds the element ID truncated to int32 domain use;
// use EntriesRaw for the original IDs when they exceed int32.
func (s *FirstOccurrenceADS) Entries() []core.Entry { return s.entries }

// threshold returns the current k-th smallest rank (1 if fewer than k).
func (s *FirstOccurrenceADS) threshold() float64 {
	if len(s.ranks) < s.k {
		return 1
	}
	return s.ranks[s.k-1]
}

// Process feeds one stream entry (element id at time t) and reports whether
// the sketch was modified.  Times must be non-decreasing.
func (s *FirstOccurrenceADS) Process(id int64, t float64) bool {
	r := s.src.Rank(id)
	tau := s.threshold()
	if r >= tau {
		return false
	}
	// Membership test: a re-occurrence of a retained element has a rank
	// already stored (ranks are unique per element).
	i := sort.SearchFloat64s(s.ranks, r)
	if i < len(s.ranks) && s.ranks[i] == r {
		return false
	}
	s.hip += 1 / tau
	s.ranks = append(s.ranks, 0)
	copy(s.ranks[i+1:], s.ranks[i:])
	s.ranks[i] = r
	if len(s.ranks) > s.k {
		s.ranks = s.ranks[:s.k]
	}
	s.entries = append(s.entries, core.Entry{Node: int32(id), Dist: t, Rank: r})
	return true
}

// DistinctCount returns the running HIP estimate of the number of distinct
// elements seen so far.
func (s *FirstOccurrenceADS) DistinctCount() float64 { return s.hip }

// EstimateWithin returns the HIP estimate of the number of distinct
// elements whose first occurrence was at time <= t.  Entries that later
// fell out of the bottom-k still contributed their adjusted weight when
// accepted, so this uses the retained entries' weights only, recomputed by
// a canonical scan (matching the ADS HIP estimator).
func (s *FirstOccurrenceADS) EstimateWithin(t float64) float64 {
	a := core.NewADS(-1, s.k)
	sum := 0.0
	for _, e := range s.entries {
		if e.Dist > t {
			break
		}
		tau := a.Threshold()
		if e.Rank < tau {
			sum += 1 / tau
			a.AppendInOrder(core.Entry{Node: e.Node, Dist: e.Dist, Rank: e.Rank})
		}
	}
	return sum
}

// RecencyADS maintains a bottom-k ADS of distinct stream elements keyed by
// recency (Section 3.1, case (ii)): the distance of an element is T - t of
// its most recent occurrence, for a horizon T beyond the end of the
// stream.  Newest entries always enter; stale entries for the same element
// are replaced; entries whose rank stopped beating the threshold of closer
// (more recent) entries are cleaned up.
type RecencyADS struct {
	k       int
	horizon float64
	src     rank.Source
	entries []core.Entry // ascending distance T - t (most recent first)
	now     float64
}

// NewRecencyADS returns an empty recency sketch.  horizon must exceed every
// timestamp the stream will carry.
func NewRecencyADS(k int, horizon float64, src rank.Source) *RecencyADS {
	if k < 1 {
		panic("stream: k must be >= 1")
	}
	return &RecencyADS{k: k, horizon: horizon, src: src}
}

// K returns the sketch parameter.
func (s *RecencyADS) K() int { return s.k }

// Size returns the number of retained entries.
func (s *RecencyADS) Size() int { return len(s.entries) }

// Process feeds one stream entry.  Times must be non-decreasing and below
// the horizon.
func (s *RecencyADS) Process(id int64, t float64) {
	if t >= s.horizon {
		panic("stream: timestamp at or beyond the recency horizon")
	}
	if t < s.now {
		panic("stream: timestamps must be non-decreasing")
	}
	s.now = t
	d := s.horizon - t
	r := s.src.Rank(id)
	// Drop a previous occurrence of the same element (it is farther).
	for i, e := range s.entries {
		if e.Node == int32(id) {
			copy(s.entries[i:], s.entries[i+1:])
			s.entries = s.entries[:len(s.entries)-1]
			break
		}
	}
	// The newest entry has the smallest distance: prepend, then clean up
	// the suffix by the bottom-k rule (scan in increasing distance,
	// dropping entries whose rank is not below the k-th smallest rank of
	// strictly closer retained entries).
	s.entries = append([]core.Entry{{Node: int32(id), Dist: d, Rank: r}}, s.entries...)
	kept := s.entries[:1]
	ranks := []float64{r}
	for _, e := range s.entries[1:] {
		tau := 1.0
		if len(ranks) >= s.k {
			tau = ranks[s.k-1]
		}
		if e.Rank >= tau {
			continue
		}
		i := sort.SearchFloat64s(ranks, e.Rank)
		ranks = append(ranks, 0)
		copy(ranks[i+1:], ranks[i:])
		ranks[i] = e.Rank
		if len(ranks) > s.k {
			ranks = ranks[:s.k]
		}
		kept = append(kept, e)
	}
	s.entries = kept
}

// EstimateRecent returns the HIP estimate of the number of distinct
// elements whose most recent occurrence is within the last window time
// units (relative to the time of the last processed entry).
func (s *RecencyADS) EstimateRecent(window float64) float64 {
	cutoff := s.horizon - s.now + window
	a := core.NewADS(-1, s.k)
	sum := 0.0
	for _, e := range s.entries {
		tau := a.Threshold()
		if e.Rank >= tau {
			continue
		}
		if e.Dist <= cutoff {
			sum += 1 / tau
		}
		a.AppendInOrder(core.Entry{Node: e.Node, Dist: e.Dist, Rank: e.Rank})
	}
	return sum
}

// Validate checks the bottom-k invariant over the retained entries.
func (s *RecencyADS) Validate() error {
	a := core.NewADS(-1, s.k)
	for _, e := range s.entries {
		if e.Rank < a.Threshold() {
			a.AppendInOrder(e)
		} else {
			return errInvalid{e}
		}
	}
	return nil
}

type errInvalid struct{ e core.Entry }

func (e errInvalid) Error() string { return "stream: entry violates bottom-k invariant" }
