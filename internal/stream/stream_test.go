package stream

import (
	"math"
	"testing"

	"adsketch/internal/rank"
	"adsketch/internal/sketch"
	"adsketch/internal/stats"
)

func TestFirstOccurrenceDuplicatesIgnored(t *testing.T) {
	src := rank.NewSource(1)
	s := NewFirstOccurrenceADS(4, src)
	for id := int64(0); id < 50; id++ {
		t0 := float64(id * 3)
		s.Process(id, t0)
		// Re-occurrences of earlier elements, interleaved in time order.
		if id > 0 {
			s.Process(id-1, t0+1)
		}
		if id > 1 {
			s.Process(id-2, t0+2)
		}
	}
	// Same sketch as a single pass over the 50 distinct elements.
	ref := NewFirstOccurrenceADS(4, src)
	for id := int64(0); id < 50; id++ {
		ref.Process(id, float64(id*3))
	}
	if s.Size() != ref.Size() || s.DistinctCount() != ref.DistinctCount() {
		t.Errorf("duplicates changed the sketch: size %d vs %d, count %g vs %g",
			s.Size(), ref.Size(), s.DistinctCount(), ref.DistinctCount())
	}
}

func TestFirstOccurrenceHIPUnbiased(t *testing.T) {
	const k, n, runs = 8, 1000, 400
	acc := stats.NewErrAccum(n)
	for run := 0; run < runs; run++ {
		s := NewFirstOccurrenceADS(k, rank.NewSource(uint64(run)*613+5))
		for id := int64(0); id < n; id++ {
			s.Process(id, float64(id))
		}
		acc.Add(s.DistinctCount())
	}
	if bias := acc.Bias(); math.Abs(bias) > 0.03 {
		t.Errorf("bias = %+.3f", bias)
	}
	if nrmse := acc.NRMSE(); nrmse > 1.25*sketch.HIPCV(k) {
		t.Errorf("NRMSE = %g above HIP bound %g", nrmse, sketch.HIPCV(k))
	}
}

func TestFirstOccurrenceEstimateWithin(t *testing.T) {
	src := rank.NewSource(9)
	s := NewFirstOccurrenceADS(6, src)
	for id := int64(0); id < 500; id++ {
		s.Process(id, float64(id))
	}
	// The full-window estimate equals the running count.
	if got := s.EstimateWithin(1e18); math.Abs(got-s.DistinctCount()) > 1e-9 {
		t.Errorf("EstimateWithin(inf) = %g, count = %g", got, s.DistinctCount())
	}
	// Prefix estimates are unbiased over runs.
	const runs = 300
	acc := stats.NewErrAccum(101)
	for run := 0; run < runs; run++ {
		st := NewFirstOccurrenceADS(6, rank.NewSource(uint64(run)*733+1))
		for id := int64(0); id < 500; id++ {
			st.Process(id, float64(id))
		}
		acc.Add(st.EstimateWithin(100))
	}
	if bias := acc.Bias(); math.Abs(bias) > 0.07 {
		t.Errorf("prefix estimate bias = %+.3f", bias)
	}
	if s.K() != 6 {
		t.Error("K accessor")
	}
	if len(s.Entries()) != s.Size() {
		t.Error("Entries/Size mismatch")
	}
}

func TestRecencyADSBasics(t *testing.T) {
	src := rank.NewSource(2)
	s := NewRecencyADS(4, 1e6, src)
	for id := int64(0); id < 200; id++ {
		s.Process(id, float64(id))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// The most recent element is always retained (smallest distance).
	if s.entries[0].Node != 199 {
		t.Errorf("most recent entry is %d, want 199", s.entries[0].Node)
	}
	if s.K() != 4 {
		t.Error("K accessor")
	}
}

func TestRecencyADSReoccurrenceMoves(t *testing.T) {
	src := rank.NewSource(3)
	s := NewRecencyADS(4, 1e6, src)
	for id := int64(0); id < 50; id++ {
		s.Process(id, float64(id))
	}
	// Element 0 re-occurs much later: must be retained as most recent.
	s.Process(0, 1000)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.entries[0].Node != 0 {
		t.Errorf("re-occurred element not at front: %v", s.entries[0])
	}
	// No duplicate entry for element 0.
	count := 0
	for _, e := range s.entries {
		if e.Node == 0 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("element 0 appears %d times", count)
	}
}

func TestRecencyADSWindowEstimateUnbiased(t *testing.T) {
	// Stream 1000 distinct elements at times 0..999; window w covers the
	// last w+1 of them.
	const k, n, runs = 8, 1000, 300
	const window = 99.5 // covers 100 elements
	acc := stats.NewErrAccum(100)
	for run := 0; run < runs; run++ {
		s := NewRecencyADS(k, 1e9, rank.NewSource(uint64(run)*389+7))
		for id := int64(0); id < n; id++ {
			s.Process(id, float64(id))
		}
		acc.Add(s.EstimateRecent(window))
	}
	if bias := acc.Bias(); math.Abs(bias) > 0.07 {
		t.Errorf("window estimate bias = %+.3f", bias)
	}
}

func TestRecencyADSPanics(t *testing.T) {
	src := rank.NewSource(4)
	check := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	check("bad k", func() { NewRecencyADS(0, 10, src) })
	check("beyond horizon", func() {
		s := NewRecencyADS(2, 10, src)
		s.Process(1, 11)
	})
	check("time going backwards", func() {
		s := NewRecencyADS(2, 100, src)
		s.Process(1, 5)
		s.Process(2, 4)
	})
	check("first-occurrence bad k", func() { NewFirstOccurrenceADS(0, src) })
}

func TestRecencyADSSizeStaysLogarithmic(t *testing.T) {
	src := rank.NewSource(8)
	s := NewRecencyADS(4, 1e9, src)
	for id := int64(0); id < 5000; id++ {
		s.Process(id, float64(id))
	}
	// Expected size ~ k(1 + ln(n) - ln(k)) ~ 4(1+8.5-1.4) ~ 33.
	if s.Size() > 80 {
		t.Errorf("recency ADS size %d looks unbounded", s.Size())
	}
}

func testCounterUnbiased(t *testing.T, name string, k, n, runs int, mk func(src rank.Source) Distinct, cvBound float64) {
	t.Helper()
	acc := stats.NewErrAccum(float64(n))
	for run := 0; run < runs; run++ {
		c := mk(rank.NewSource(uint64(run)*104729 + 11))
		for id := int64(0); id < int64(n); id++ {
			c.Add(id)
			c.Add(id) // immediate duplicate must be a no-op
		}
		acc.Add(c.Estimate())
	}
	if bias := acc.Bias(); math.Abs(bias) > 0.04 {
		t.Errorf("%s bias = %+.3f", name, bias)
	}
	if nrmse := acc.NRMSE(); nrmse > cvBound {
		t.Errorf("%s NRMSE = %g above %g", name, nrmse, cvBound)
	}
}

func TestBottomKCounter(t *testing.T) {
	testCounterUnbiased(t, "bottom-k", 16, 2000, 400, func(src rank.Source) Distinct {
		return NewBottomKCounter(16, src)
	}, 1.2*sketch.HIPCV(16))
}

func TestKMinsCounter(t *testing.T) {
	testCounterUnbiased(t, "k-mins", 16, 2000, 400, func(src rank.Source) Distinct {
		return NewKMinsCounter(16, src)
	}, 1.25*sketch.HIPCV(16))
}

func TestKPartitionCounter(t *testing.T) {
	testCounterUnbiased(t, "k-partition", 16, 2000, 400, func(src rank.Source) Distinct {
		return NewKPartitionCounter(16, src)
	}, 1.25*sketch.HIPCV(16))
}

func TestCountersExactSmall(t *testing.T) {
	src := rank.NewSource(77)
	// Bottom-k counts exactly while below k.
	c := NewBottomKCounter(32, src)
	for id := int64(0); id < 20; id++ {
		c.Add(id)
	}
	if c.Estimate() != 20 {
		t.Errorf("bottom-k small estimate = %g, want exactly 20", c.Estimate())
	}
}

func TestCounterConstructorPanics(t *testing.T) {
	src := rank.NewSource(1)
	for name, fn := range map[string]func(){
		"bottom-k":    func() { NewBottomKCounter(0, src) },
		"k-mins":      func() { NewKMinsCounter(0, src) },
		"k-partition": func() { NewKPartitionCounter(0, src) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s k=0 did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRecencyWindowZeroCoversNewestOnly(t *testing.T) {
	s := NewRecencyADS(4, 1e6, rank.NewSource(6))
	for id := int64(0); id < 100; id++ {
		s.Process(id, float64(id))
	}
	// A window of zero covers only elements at exactly the current time.
	got := s.EstimateRecent(0)
	if got != 1 {
		t.Errorf("zero-window estimate = %g, want 1 (the newest element)", got)
	}
}
