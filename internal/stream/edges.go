package stream

import (
	"fmt"

	"adsketch/internal/rank"
)

// Edge-stream abstraction for the ingest tier: an EdgeSource yields edge
// insertions one at a time, and Replay drives a sink (the incremental
// sketch maintainer) from one.  Sources are deterministic where seeded, so
// an ingest replay is reproducible end to end.

// Edge is one edge-insertion event.  W <= 0 means unit length (an
// unweighted edge); explicit lengths must be positive.
type Edge struct {
	U, V int32
	W    float64
}

// Unit reports whether the edge carries no explicit length.
func (e Edge) Unit() bool { return e.W <= 0 }

// EdgeSource yields the edges of a stream in order.  Next returns false
// when the stream is exhausted.
type EdgeSource interface {
	Next() (Edge, bool)
}

// SliceSource replays a fixed edge slice.
type SliceSource struct {
	edges []Edge
	pos   int
}

// NewSliceSource returns a source over the given edges (not copied).
func NewSliceSource(edges []Edge) *SliceSource { return &SliceSource{edges: edges} }

// Next yields the next edge.
func (s *SliceSource) Next() (Edge, bool) {
	if s.pos >= len(s.edges) {
		return Edge{}, false
	}
	e := s.edges[s.pos]
	s.pos++
	return e, true
}

// Reset rewinds the source to the start of the stream.
func (s *SliceSource) Reset() { s.pos = 0 }

// RandomSource is a deterministic random edge stream over a fixed node-ID
// range: the same (nodes, weighted, seed) triple always yields the same
// edges, which is what replay-determinism tests and benchmarks need.
// Weighted streams draw lengths uniformly from [0.5, 1.5).
type RandomSource struct {
	nodes    int32
	weighted bool
	rng      *rank.RNG
	remain   int
}

// NewRandomSource returns a source yielding count random edges over node
// IDs [0, nodes).
func NewRandomSource(nodes, count int, weighted bool, seed uint64) (*RandomSource, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("stream: NewRandomSource needs at least one node, got %d", nodes)
	}
	if count < 0 {
		return nil, fmt.Errorf("stream: negative edge count %d", count)
	}
	return &RandomSource{
		nodes:    int32(nodes),
		weighted: weighted,
		rng:      rank.NewRNG(seed),
		remain:   count,
	}, nil
}

// Next yields the next random edge.
func (s *RandomSource) Next() (Edge, bool) {
	if s.remain <= 0 {
		return Edge{}, false
	}
	s.remain--
	e := Edge{
		U: int32(s.rng.Float64() * float64(s.nodes)),
		V: int32(s.rng.Float64() * float64(s.nodes)),
	}
	if s.weighted {
		e.W = 0.5 + s.rng.Float64()
	}
	return e, true
}

// Replay drains a source into apply, stopping at the first error, and
// returns how many edges were applied.
func Replay(src EdgeSource, apply func(Edge) error) (int, error) {
	n := 0
	for {
		e, ok := src.Next()
		if !ok {
			return n, nil
		}
		if err := apply(e); err != nil {
			return n, err
		}
		n++
	}
}
