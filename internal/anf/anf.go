// Package anf computes approximate neighborhood functions in the style of
// ANF [Palmer et al. 2002] and HyperANF [Boldi, Rosa, Vigna 2011], the
// "limited ADS computation" of Appendix B.1: a synchronous DP that keeps,
// for every node, only the k-partition base-2 MinHash sketch (HyperLogLog
// registers) of its hop-ball, merging neighbor sketches each round.
//
// Two readouts are provided for the per-round ball sizes:
//
//   - Basic: apply the (bias-corrected) HyperLogLog estimator to each
//     node's registers after each round — what ANF/HyperANF originally did;
//   - HIP: maintain a per-node HIP register, adding the inverse update
//     probability whenever a register grows — the acceleration Appendix
//     B.1 proposes ("more accurate estimates can be obtained using the
//     same implementations by applying our HIP estimators instead").
//
// One caveat the tests quantify: register merges batch elements, so when
// several new ball members collide on one register only the maximum
// survives and HIP sees fewer update events than a true element stream
// would, biasing the readout downward on explosive expansions (balls that
// multiply by much more than k per round).  Events are counted
// arc-by-arc — matching the edge-relaxation order of the original
// ANF/HyperANF implementations — which recovers the events that distinct
// neighbors contribute to the same register; only collisions inside a
// single neighbor's sketch remain unobservable.  A streaming HIP counter
// (package hll) sees every update and is exactly unbiased; the DP readout
// trades that for the O(k) memory per node of the limited computation.
package anf

import (
	"fmt"
	"math"

	"adsketch/internal/graph"
	"adsketch/internal/hll"
	"adsketch/internal/rank"
)

// Readout selects the estimator applied to the per-node registers.
type Readout int

// Readout kinds.
const (
	Basic Readout = iota // HyperLogLog bias-corrected estimate per node
	HIP                  // running HIP register per node
)

func (r Readout) String() string {
	switch r {
	case Basic:
		return "basic"
	case HIP:
		return "HIP"
	}
	return fmt.Sprintf("Readout(%d)", int(r))
}

// Result holds the output of a neighborhood-function computation.
type Result struct {
	// NF[t] estimates the number of ordered pairs (u,v) with d(u,v) <= t
	// hops; NF[len-1] is the plateau (all reachable pairs).
	NF []float64
	// Rounds is the number of DP iterations executed (the hop diameter).
	Rounds int
	// Balls[t][v], when retained, estimates |B_t(v)|; nil unless
	// Options.KeepBalls.
	Balls [][]float64
}

// Options configures Compute.
type Options struct {
	K         int     // registers per node (>= 2)
	Seed      uint64  // rank source seed
	Readout   Readout // Basic or HIP
	KeepBalls bool    // retain per-node ball estimates per round
	MaxRounds int     // safety cap; 0 means no cap
}

// Compute runs the register DP on an unweighted graph and returns the
// estimated neighborhood function.
func Compute(g *graph.Graph, o Options) (*Result, error) {
	if o.K < 2 {
		return nil, fmt.Errorf("anf: K = %d, need >= 2", o.K)
	}
	if g.Weighted() {
		return nil, fmt.Errorf("anf: hop-ball DP requires an unweighted graph")
	}
	n := g.NumNodes()
	src := rank.NewSource(o.Seed)
	k := o.K

	// Per-node registers: ball B_0(v) = {v}.
	regs := make([][]uint8, n)
	buckets := make([]int, n)
	exps := make([]uint8, n)
	for v := 0; v < n; v++ {
		regs[v] = make([]uint8, k)
		buckets[v] = src.Bucket(int64(v), k)
		h := rank.Base2Exponent(rank.Hash64(src.Seed()^0x1f3d5b79a2c4e688, uint64(v)))
		if h > hll.RegisterCap {
			h = hll.RegisterCap
		}
		exps[v] = uint8(h)
	}
	hip := make([]float64, n)
	for v := 0; v < n; v++ {
		// The owner is the first stream element: update probability 1.
		hip[v] = 1
		regs[v][buckets[v]] = exps[v]
	}

	readNode := func(v int) float64 {
		if o.Readout == HIP {
			return hip[v]
		}
		return hllEstimate(regs[v])
	}
	readAll := func() float64 {
		total := 0.0
		for v := 0; v < n; v++ {
			total += readNode(v)
		}
		return total
	}

	res := &Result{}
	record := func() {
		res.NF = append(res.NF, readAll())
		if o.KeepBalls {
			ball := make([]float64, n)
			for v := 0; v < n; v++ {
				ball[v] = readNode(v)
			}
			res.Balls = append(res.Balls, ball)
		}
	}
	record() // t = 0

	next := make([][]uint8, n)
	for v := 0; v < n; v++ {
		next[v] = make([]uint8, k)
	}
	scratch := make([]uint8, k)
	for round := 1; ; round++ {
		if o.MaxRounds > 0 && round > o.MaxRounds {
			break
		}
		changed := false
		for v := int32(0); int(v) < n; v++ {
			// Relax arcs sequentially, counting one HIP event per register
			// raise per arc against the advancing pre-event state; regs[v]
			// itself is left untouched so the round stays synchronous.
			nv := next[v]
			copy(nv, regs[v])
			copy(scratch, regs[v])
			ns, _ := g.Neighbors(v)
			for _, u := range ns {
				ru := regs[u]
				for i := 0; i < k; i++ {
					if ru[i] > scratch[i] {
						sum := 0.0
						for _, m := range scratch {
							if m < hll.RegisterCap {
								sum += math.Exp2(-float64(m))
							}
						}
						if sum > 0 {
							hip[int(v)] += float64(k) / sum
						}
						scratch[i] = ru[i]
						changed = true
					}
				}
			}
			copy(nv, scratch)
		}
		if !changed {
			break
		}
		regs, next = next, regs
		res.Rounds = round
		record()
	}
	return res, nil
}

// hllEstimate is the bias-corrected HyperLogLog readout used by the Basic
// mode (mirrors hll.Sketch.Estimate over a raw register slice).
func hllEstimate(m []uint8) float64 {
	sum := 0.0
	zeros := 0
	for _, v := range m {
		sum += math.Exp2(-float64(v))
		if v == 0 {
			zeros++
		}
	}
	k := float64(len(m))
	var a float64
	switch len(m) {
	case 16:
		a = 0.673
	case 32:
		a = 0.697
	case 64:
		a = 0.709
	default:
		a = 0.7213 / (1 + 1.079/k)
	}
	e := a * k * k / sum
	if e <= 2.5*k && zeros > 0 {
		return k * math.Log(k/float64(zeros))
	}
	return e
}

// EffectiveDiameter returns the q-effective diameter implied by the
// estimated neighborhood function (interpolated hop count at which a
// fraction q of the plateau is reached).
func EffectiveDiameter(nf []float64, q float64) float64 {
	if len(nf) == 0 {
		return 0
	}
	total := nf[len(nf)-1]
	target := q * total
	for t, c := range nf {
		if c >= target {
			if t == 0 {
				return 0
			}
			prev := nf[t-1]
			return float64(t-1) + (target-prev)/(c-prev)
		}
	}
	return float64(len(nf) - 1)
}

// HarmonicFromBalls computes HyperBall-style harmonic centralities for all
// nodes from per-round ball estimates (requires Options.KeepBalls):
// H(v) ~ Σ_t (|B_t(v)| - |B_{t-1}(v)|)/t, the estimated number of nodes
// first reached at hop t, discounted by the distance.
func HarmonicFromBalls(res *Result) []float64 {
	if len(res.Balls) == 0 {
		return nil
	}
	n := len(res.Balls[0])
	out := make([]float64, n)
	for t := 1; t < len(res.Balls); t++ {
		cur, prev := res.Balls[t], res.Balls[t-1]
		for v := 0; v < n; v++ {
			gain := cur[v] - prev[v]
			if gain > 0 {
				out[v] += gain / float64(t)
			}
		}
	}
	return out
}
