package anf

import (
	"math"
	"testing"

	"adsketch/internal/graph"
	"adsketch/internal/stats"
)

func TestComputeErrors(t *testing.T) {
	g := graph.Path(5)
	if _, err := Compute(g, Options{K: 1, Seed: 1}); err == nil {
		t.Error("K=1 accepted")
	}
	wg := graph.WithRandomWeights(g, 1, 2, 1)
	if _, err := Compute(wg, Options{K: 16, Seed: 1}); err == nil {
		t.Error("weighted graph accepted")
	}
}

func TestReadoutString(t *testing.T) {
	if Basic.String() != "basic" || HIP.String() != "HIP" || Readout(7).String() != "Readout(7)" {
		t.Error("Readout names")
	}
}

func TestRoundsEqualDiameter(t *testing.T) {
	g := graph.Path(9) // diameter 8
	res, err := Compute(g, Options{K: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 8 {
		t.Errorf("rounds = %d, want 8 (path diameter)", res.Rounds)
	}
	if len(res.NF) != 9 {
		t.Errorf("NF has %d points, want 9", len(res.NF))
	}
	// NF must be non-decreasing.
	for i := 1; i < len(res.NF); i++ {
		if res.NF[i] < res.NF[i-1] {
			t.Fatal("NF decreasing")
		}
	}
}

func TestMaxRoundsCap(t *testing.T) {
	g := graph.Path(50)
	res, err := Compute(g, Options{K: 8, Seed: 1, MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 3 {
		t.Errorf("rounds = %d exceeded cap", res.Rounds)
	}
}

func TestNeighborhoodFunctionAccuracy(t *testing.T) {
	// Both readouts should track the exact neighborhood function on a
	// moderate-expansion graph (per-round ball growth below ~k, where the
	// register-merge batching loses few HIP events).
	g := graph.Grid(18, 18)
	nf := graph.NeighborhoodFunction(g)
	const runs = 40
	for _, mode := range []Readout{Basic, HIP} {
		accs := make([]*stats.ErrAccum, len(nf))
		for i := range nf {
			accs[i] = stats.NewErrAccum(float64(nf[i]))
		}
		for run := 0; run < runs; run++ {
			res, err := Compute(g, Options{K: 64, Seed: uint64(run)*37 + 5, Readout: mode})
			if err != nil {
				t.Fatal(err)
			}
			for i := range nf {
				j := i
				if j >= len(res.NF) {
					j = len(res.NF) - 1
				}
				accs[i].Add(res.NF[j])
			}
		}
		for i := range nf {
			if i == 0 {
				continue // t=0 is exact-ish for HIP, skewed for basic
			}
			if rel := math.Abs(accs[i].Bias()); rel > 0.12 {
				t.Errorf("%v readout: |bias| at t=%d is %.3f (exact %d)", mode, i, rel, nf[i])
			}
		}
	}
}

func TestHIPReadoutSmootherThanBasic(t *testing.T) {
	// The HIP readout should have lower error at the plateau (Appendix
	// B.1's motivation for retrofitting HIP into ANF/HyperANF) on graphs
	// with moderate per-round expansion.
	g := graph.WattsStrogatz(500, 6, 0.05, 9)
	nf := graph.NeighborhoodFunction(g)
	plateau := float64(nf[len(nf)-1])
	const runs = 60
	basicAcc := stats.NewErrAccum(plateau)
	hipAcc := stats.NewErrAccum(plateau)
	for run := 0; run < runs; run++ {
		seed := uint64(run)*101 + 3
		rb, err := Compute(g, Options{K: 32, Seed: seed, Readout: Basic})
		if err != nil {
			t.Fatal(err)
		}
		rh, err := Compute(g, Options{K: 32, Seed: seed, Readout: HIP})
		if err != nil {
			t.Fatal(err)
		}
		basicAcc.Add(rb.NF[len(rb.NF)-1])
		hipAcc.Add(rh.NF[len(rh.NF)-1])
	}
	if hipAcc.NRMSE() >= basicAcc.NRMSE() {
		t.Errorf("HIP plateau NRMSE %g not below basic %g", hipAcc.NRMSE(), basicAcc.NRMSE())
	}
}

func TestHIPReadoutUndercountsOnExplosiveExpansion(t *testing.T) {
	// Documented limitation: on a low-diameter hub graph the ball grows by
	// far more than k per round, register merges shadow many elements, and
	// the DP HIP readout is biased DOWN (never up).  The streaming HIP
	// counter does not have this problem; see package hll.
	g := graph.PreferentialAttachment(500, 3, 5)
	nf := graph.NeighborhoodFunction(g)
	plateau := float64(nf[len(nf)-1])
	const runs = 30
	acc := stats.NewErrAccum(plateau)
	for run := 0; run < runs; run++ {
		res, err := Compute(g, Options{K: 64, Seed: uint64(run)*37 + 5, Readout: HIP})
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(res.NF[len(res.NF)-1])
	}
	bias := acc.Bias()
	if bias > 0.05 {
		t.Errorf("expected downward bias, got %+.3f", bias)
	}
	if bias < -0.6 {
		t.Errorf("undercount %+.3f implausibly severe", bias)
	}
}

func TestKeepBalls(t *testing.T) {
	g := graph.Cycle(20)
	res, err := Compute(g, Options{K: 16, Seed: 2, Readout: HIP, KeepBalls: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Balls) != len(res.NF) {
		t.Fatalf("balls %d vs NF %d", len(res.Balls), len(res.NF))
	}
	// Ball at t=0 is exactly 1 for the HIP readout.
	for v, b := range res.Balls[0] {
		if b != 1 {
			t.Errorf("ball_0(%d) = %g, want 1", v, b)
		}
	}
	// Balls are non-decreasing in t.
	for tt := 1; tt < len(res.Balls); tt++ {
		for v := range res.Balls[tt] {
			if res.Balls[tt][v] < res.Balls[tt-1][v]-1e-9 {
				t.Fatal("ball estimates decreasing")
			}
		}
	}
}

func TestEffectiveDiameterFromEstimate(t *testing.T) {
	g := graph.Grid(14, 14)
	nf := graph.NeighborhoodFunction(g)
	exact := graph.EffectiveDiameter(nf, 0.9)
	res, err := Compute(g, Options{K: 64, Seed: 6, Readout: HIP})
	if err != nil {
		t.Fatal(err)
	}
	got := EffectiveDiameter(res.NF, 0.9)
	if math.Abs(got-exact) > 2 {
		t.Errorf("effective diameter %g, exact %g", got, exact)
	}
	if EffectiveDiameter(nil, 0.9) != 0 {
		t.Error("empty NF diameter should be 0")
	}
}

func TestDisconnectedGraph(t *testing.T) {
	b := graph.NewBuilder(6, false)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	res, err := Compute(g, Options{K: 16, Seed: 1, Readout: HIP})
	if err != nil {
		t.Fatal(err)
	}
	// Plateau: pairs = 2 components of 2 (4 pairs each... ordered pairs
	// within each component: 2 comps x 4 = 8) + 2 singletons = 10.
	plateau := res.NF[len(res.NF)-1]
	if math.Abs(plateau-10) > 4 {
		t.Errorf("plateau %g, want ~10", plateau)
	}
}

func TestHarmonicFromBalls(t *testing.T) {
	g := graph.Grid(12, 12)
	res, err := Compute(g, Options{K: 64, Seed: 8, Readout: HIP, KeepBalls: true})
	if err != nil {
		t.Fatal(err)
	}
	est := HarmonicFromBalls(res)
	if len(est) != g.NumNodes() {
		t.Fatalf("got %d estimates", len(est))
	}
	// Compare against exact harmonic centralities: strong correlation and
	// small aggregate error.
	var exactSum, estSum float64
	for v := int32(0); int(v) < g.NumNodes(); v++ {
		exactSum += graph.HarmonicCentrality(g, v)
		estSum += est[v]
	}
	if rel := math.Abs(estSum-exactSum) / exactSum; rel > 0.1 {
		t.Errorf("aggregate harmonic rel err %.3f", rel)
	}
	// The grid center must outrank the corner.
	center := 6*12 + 6
	if est[center] <= est[0] {
		t.Errorf("center %g not above corner %g", est[center], est[0])
	}
	// Without balls, nil.
	res2, _ := Compute(g, Options{K: 16, Seed: 8})
	if HarmonicFromBalls(res2) != nil {
		t.Error("expected nil without KeepBalls")
	}
}
