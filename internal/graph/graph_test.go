package graph

import (
	"math"
	"testing"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	if g.NumNodes() != 4 {
		t.Errorf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.NumArcs() != 6 {
		t.Errorf("NumArcs = %d, want 6 (undirected stores both)", g.NumArcs())
	}
	if g.Directed() || g.Weighted() {
		t.Error("graph should be undirected, unweighted")
	}
	ns, ws := g.Neighbors(1)
	if len(ns) != 2 || ns[0] != 0 || ns[1] != 2 {
		t.Errorf("Neighbors(1) = %v, want [0 2]", ns)
	}
	if ws != nil {
		t.Error("unweighted graph returned weights")
	}
	if g.OutDegree(0) != 1 || g.OutDegree(1) != 2 {
		t.Error("wrong degrees")
	}
}

func TestBuilderDirectedWeighted(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddWeightedEdge(0, 1, 2.5)
	b.AddWeightedEdge(0, 2, 1.5)
	b.AddWeightedEdge(2, 1, 0.5)
	g := b.Build()
	if !g.Directed() || !g.Weighted() {
		t.Fatal("flags wrong")
	}
	if g.NumEdges() != 3 || g.NumArcs() != 3 {
		t.Errorf("edges=%d arcs=%d", g.NumEdges(), g.NumArcs())
	}
	ns, ws := g.Neighbors(0)
	if len(ns) != 2 || ns[0] != 1 || ns[1] != 2 {
		t.Errorf("Neighbors(0) = %v", ns)
	}
	if ws[0] != 2.5 || ws[1] != 1.5 {
		t.Errorf("weights = %v", ws)
	}
	if d := g.OutDegree(1); d != 0 {
		t.Errorf("OutDegree(1) = %d, want 0", d)
	}
}

func TestBuilderPanics(t *testing.T) {
	check := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	check("out of range", func() { NewBuilder(2, false).AddEdge(0, 2) })
	check("negative node", func() { NewBuilder(2, false).AddEdge(-1, 0) })
	check("zero weight", func() { NewBuilder(2, false).AddWeightedEdge(0, 1, 0) })
	check("negative n", func() { NewBuilder(-1, false) })
}

func TestForEachArc(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(1, 2, 3)
	g := b.Build()
	total := 0.0
	arcs := 0
	g.ForEachArc(func(u, v int32, w float64) {
		total += w
		arcs++
	})
	if arcs != 2 || total != 5 {
		t.Errorf("arcs=%d total=%g", arcs, total)
	}
}

func TestTransposeDirected(t *testing.T) {
	b := NewBuilder(4, true)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(0, 2, 3)
	b.AddWeightedEdge(2, 3, 4)
	g := b.Build()
	tr := g.Transpose()
	ns, ws := tr.Neighbors(1)
	if len(ns) != 1 || ns[0] != 0 || ws[0] != 2 {
		t.Errorf("transpose Neighbors(1) = %v %v", ns, ws)
	}
	ns, _ = tr.Neighbors(3)
	if len(ns) != 1 || ns[0] != 2 {
		t.Errorf("transpose Neighbors(3) = %v", ns)
	}
	if tr.NumArcs() != g.NumArcs() {
		t.Error("transpose changed arc count")
	}
	// Transposing twice recovers the original arc multiset.
	tt := tr.Transpose()
	want := map[[2]int32]float64{}
	g.ForEachArc(func(u, v int32, w float64) { want[[2]int32{u, v}] = w })
	tt.ForEachArc(func(u, v int32, w float64) {
		if want[[2]int32{u, v}] != w {
			t.Errorf("double transpose lost arc (%d,%d,%g)", u, v, w)
		}
		delete(want, [2]int32{u, v})
	})
	if len(want) != 0 {
		t.Errorf("double transpose missing arcs: %v", want)
	}
}

func TestTransposeUndirectedIsSelf(t *testing.T) {
	g := Path(5)
	if g.Transpose() != g {
		t.Error("undirected transpose should return the receiver")
	}
}

func TestBFSPath(t *testing.T) {
	g := Path(5)
	d := BFS(g, 0)
	for i := 0; i < 5; i++ {
		if d[i] != int32(i) {
			t.Errorf("BFS dist[%d] = %d, want %d", i, d[i], i)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	b := NewBuilder(4, true)
	b.AddEdge(0, 1)
	// 2, 3 isolated from 0.
	b.AddEdge(2, 3)
	g := b.Build()
	d := BFS(g, 0)
	if d[2] != -1 || d[3] != -1 {
		t.Errorf("unreachable nodes should be -1, got %v", d)
	}
	if d[1] != 1 {
		t.Errorf("d[1] = %d", d[1])
	}
}

func TestDijkstraMatchesBFSOnUnweighted(t *testing.T) {
	g := GNP(200, 0.03, false, 7)
	for _, src := range []int32{0, 17, 99} {
		bd := BFS(g, src)
		dd := Dijkstra(g, src)
		for v := range bd {
			if bd[v] < 0 {
				if !math.IsInf(dd[v], 1) {
					t.Fatalf("node %d: BFS unreachable but Dijkstra %g", v, dd[v])
				}
				continue
			}
			if dd[v] != float64(bd[v]) {
				t.Fatalf("node %d: BFS %d vs Dijkstra %g", v, bd[v], dd[v])
			}
		}
	}
}

func TestDijkstraWeighted(t *testing.T) {
	// Diamond where the long direct edge loses to the two-hop path.
	b := NewBuilder(4, true)
	b.AddWeightedEdge(0, 1, 1)
	b.AddWeightedEdge(1, 3, 1)
	b.AddWeightedEdge(0, 3, 5)
	b.AddWeightedEdge(0, 2, 2)
	g := b.Build()
	d := Dijkstra(g, 0)
	want := []float64{0, 1, 2, 2}
	for v, w := range want {
		if d[v] != w {
			t.Errorf("d[%d] = %g, want %g", v, d[v], w)
		}
	}
}

func TestDistancesUnifiedView(t *testing.T) {
	g := Path(4)
	d := Distances(g, 1)
	want := []float64{1, 0, 1, 2}
	for v, w := range want {
		if d[v] != w {
			t.Errorf("d[%d] = %g, want %g", v, d[v], w)
		}
	}
	b := NewBuilder(2, true)
	b.AddEdge(0, 1)
	d = Distances(b.Build(), 1)
	if !math.IsInf(d[0], 1) {
		t.Errorf("unreachable should be +Inf, got %g", d[0])
	}
}

func TestVisitAscendingOrderAndPrune(t *testing.T) {
	g := Path(6)
	var order []int32
	var dists []float64
	VisitAscending(g, 2, func(v int32, d float64) bool {
		order = append(order, v)
		dists = append(dists, d)
		return true
	})
	if len(order) != 6 {
		t.Fatalf("visited %d nodes, want 6", len(order))
	}
	for i := 1; i < len(dists); i++ {
		if dists[i] < dists[i-1] {
			t.Fatal("distances not non-decreasing")
		}
	}
	if order[0] != 2 || dists[0] != 0 {
		t.Errorf("first visit = (%d,%g), want (2,0)", order[0], dists[0])
	}

	// Pruning at node 3 must stop the rightward expansion past it.
	var visited []int32
	VisitAscending(g, 2, func(v int32, d float64) bool {
		visited = append(visited, v)
		return v != 3
	})
	for _, v := range visited {
		if v > 3 {
			t.Errorf("node %d visited despite pruning at 3", v)
		}
	}
}

func TestVisitorReuse(t *testing.T) {
	g := GNP(300, 0.02, false, 3)
	vis := NewVisitor(g)
	for _, src := range []int32{0, 5, 250} {
		want := Distances(g, src)
		got := make([]float64, g.NumNodes())
		for i := range got {
			got[i] = Infinity
		}
		vis.Run(src, func(v int32, d float64) bool {
			got[v] = d
			return true
		})
		for v := range want {
			if want[v] != got[v] && !(math.IsInf(want[v], 1) && math.IsInf(got[v], 1)) {
				t.Fatalf("src %d node %d: visitor %g, Distances %g", src, v, got[v], want[v])
			}
		}
	}
}

func TestNearestOrder(t *testing.T) {
	g := Path(5)
	order := NearestOrder(g, 2)
	if order[0].Node != 2 || order[0].Dist != 0 {
		t.Fatalf("first = %+v", order[0])
	}
	// Ties at distance 1 (nodes 1,3) broken by ID; distance 2 (0,4) likewise.
	wantNodes := []int32{2, 1, 3, 0, 4}
	for i, w := range wantNodes {
		if order[i].Node != w {
			t.Errorf("order[%d] = %d, want %d", i, order[i].Node, w)
		}
	}
}

func TestNeighborhoodSize(t *testing.T) {
	g := Path(7)
	if got := NeighborhoodSize(g, 3, 0); got != 1 {
		t.Errorf("n_0 = %d, want 1", got)
	}
	if got := NeighborhoodSize(g, 3, 2); got != 5 {
		t.Errorf("n_2 = %d, want 5", got)
	}
	if got := NeighborhoodSize(g, 3, 100); got != 7 {
		t.Errorf("n_100 = %d, want 7", got)
	}
}

func TestNeighborhoodFunctionPath(t *testing.T) {
	g := Path(4)
	nf := NeighborhoodFunction(g)
	// Pairs within 0 hops: 4 (self). 1 hop: +6 ordered. 2: +4. 3: +2.
	want := []int64{4, 10, 14, 16}
	if len(nf) != len(want) {
		t.Fatalf("nf = %v, want %v", nf, want)
	}
	for i := range want {
		if nf[i] != want[i] {
			t.Errorf("nf[%d] = %d, want %d", i, nf[i], want[i])
		}
	}
}

func TestEffectiveDiameter(t *testing.T) {
	nf := []int64{4, 10, 14, 16}
	if got := EffectiveDiameter(nf, 1.0); got != 3 {
		t.Errorf("q=1 diameter = %g, want 3", got)
	}
	if got := EffectiveDiameter(nf, 0.25); got != 0 {
		t.Errorf("q=0.25 diameter = %g, want 0", got)
	}
	got := EffectiveDiameter(nf, 0.75)
	// target = 12, between nf[1]=10 and nf[2]=14 -> 1.5
	if math.Abs(got-1.5) > 1e-12 {
		t.Errorf("q=0.75 diameter = %g, want 1.5", got)
	}
	if got := EffectiveDiameter(nil, 0.9); got != 0 {
		t.Errorf("empty nf diameter = %g", got)
	}
}

func TestClosenessAndHarmonic(t *testing.T) {
	g := Path(3)
	// From node 0: distances 1,2 -> closeness 1/3, harmonic 1.5.
	if got := Closeness(g, 0); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("closeness = %g, want 1/3", got)
	}
	if got := HarmonicCentrality(g, 0); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("harmonic = %g, want 1.5", got)
	}
	// From the center: distances 1,1 -> closeness 1/2, harmonic 2.
	if got := Closeness(g, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("center closeness = %g, want 0.5", got)
	}
	lone := NewBuilder(1, false).Build()
	if got := Closeness(lone, 0); got != 0 {
		t.Errorf("singleton closeness = %g, want 0", got)
	}
}

func TestReachableCount(t *testing.T) {
	b := NewBuilder(5, true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	if got := ReachableCount(g, 0); got != 3 {
		t.Errorf("reachable from 0 = %d, want 3", got)
	}
	if got := ReachableCount(g, 4); got != 1 {
		t.Errorf("reachable from 4 = %d, want 1", got)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	comp, c := ConnectedComponents(g)
	if c != 3 {
		t.Fatalf("components = %d, want 3", c)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("0,1,2 should share a component")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Error("3,4 should share a separate component")
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Error("5 should be alone")
	}
}

func TestConnectedComponentsDirectedWeak(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 1)
	b.AddEdge(2, 1)
	g := b.Build()
	_, c := ConnectedComponents(g)
	if c != 1 {
		t.Errorf("weak components = %d, want 1", c)
	}
}

func TestAllDistances(t *testing.T) {
	g := Cycle(5)
	m := AllDistances(g)
	if m[0][2] != 2 || m[0][3] != 2 || m[0][4] != 1 {
		t.Errorf("cycle distances wrong: %v", m[0])
	}
	for v := range m {
		if m[v][v] != 0 {
			t.Errorf("self distance %d = %g", v, m[v][v])
		}
	}
}

func TestDistanceCDF(t *testing.T) {
	g := Path(4)
	ds := []float64{0, 1, 2, 3}
	got := DistanceCDF(g, ds)
	want := []int64{4, 10, 14, 16} // matches NeighborhoodFunction
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("CDF[%g] = %d, want %d", ds[i], got[i], want[i])
		}
	}
	// Weighted: two nodes at distance 2.5.
	b := NewBuilder(2, false)
	b.AddWeightedEdge(0, 1, 2.5)
	wg := b.Build()
	got = DistanceCDF(wg, []float64{1, 2.5, 3})
	if got[0] != 2 || got[1] != 4 || got[2] != 4 {
		t.Errorf("weighted CDF = %v", got)
	}
}
