package graph

import (
	"math"

	"adsketch/internal/rank"
)

// Deterministic graph generators used by examples, tests, and the benchmark
// harness.  Every generator is a pure function of its parameters (including
// the seed), so experiments are exactly reproducible.

// Path returns the undirected path 0-1-2-...-n-1.
func Path(n int) *Graph {
	b := NewBuilder(n, false)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

// Cycle returns the undirected cycle on n nodes.
func Cycle(n int) *Graph {
	b := NewBuilder(n, false)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

// Grid returns the rows x cols undirected grid (4-neighborhood).  Node
// (r,c) has ID r*cols+c.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows*cols, false)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Complete returns the complete undirected graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n, false)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

// Star returns the star with center 0 and n-1 leaves.
func Star(n int) *Graph {
	b := NewBuilder(n, false)
	for i := 1; i < n; i++ {
		b.AddEdge(0, int32(i))
	}
	return b.Build()
}

// RandomTree returns a uniform random recursive tree: node i attaches to a
// uniformly random earlier node.
func RandomTree(n int, seed uint64) *Graph {
	rng := rank.NewRNG(seed)
	b := NewBuilder(n, false)
	for i := 1; i < n; i++ {
		b.AddEdge(int32(i), int32(rng.Intn(i)))
	}
	return b.Build()
}

// GNP returns an Erdős–Rényi G(n,p) graph.  For directed graphs each
// ordered pair is an arc independently with probability p; for undirected
// each unordered pair.  Uses geometric skipping so generation is O(m).
func GNP(n int, p float64, directed bool, seed uint64) *Graph {
	b := NewBuilder(n, directed)
	if p <= 0 {
		return b.Build()
	}
	if p > 1 {
		p = 1
	}
	rng := rank.NewRNG(seed)
	// Iterate over pair indices with geometric jumps.
	var total int64
	if directed {
		total = int64(n) * int64(n-1)
	} else {
		total = int64(n) * int64(n-1) / 2
	}
	idx := int64(-1)
	for {
		// Skip ~Geometric(p) pairs.
		u := rng.Float64()
		skip := int64(logFloat(1-u) / logFloat(1-p))
		if skip < 0 {
			skip = 0
		}
		idx += 1 + skip
		if idx >= total {
			break
		}
		if directed {
			u := int32(idx / int64(n-1))
			r := int32(idx % int64(n-1))
			v := r
			if v >= u {
				v++
			}
			b.AddEdge(u, v)
		} else {
			u, v := pairFromIndex(idx, n)
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

func logFloat(x float64) float64 {
	// Local wrapper so the geometric-skip formula reads clearly; x in (0,1].
	if x <= 0 {
		return -1e300
	}
	return math.Log(x)
}

// pairFromIndex maps a linear index to the (u,v), u<v pair in row-major
// order over the upper triangle.
func pairFromIndex(idx int64, n int) (int32, int32) {
	u := int64(0)
	rowLen := int64(n - 1)
	for idx >= rowLen {
		idx -= rowLen
		u++
		rowLen--
	}
	return int32(u), int32(u + 1 + idx)
}

// PreferentialAttachment returns a Barabási–Albert graph: nodes arrive one
// at a time and attach m edges to existing nodes chosen proportionally to
// their current degree (the standard repeated-endpoint trick).  The result
// is connected for m >= 1.
func PreferentialAttachment(n, m int, seed uint64) *Graph {
	if m < 1 {
		m = 1
	}
	rng := rank.NewRNG(seed)
	b := NewBuilder(n, false)
	// endpoints records every edge endpoint; sampling a uniform element of
	// it is degree-proportional sampling.
	endpoints := make([]int32, 0, 2*n*m)
	start := m + 1
	if start > n {
		start = n
	}
	// Seed clique over the first min(m+1, n) nodes.
	for i := 0; i < start; i++ {
		for j := i + 1; j < start; j++ {
			b.AddEdge(int32(i), int32(j))
			endpoints = append(endpoints, int32(i), int32(j))
		}
	}
	for v := start; v < n; v++ {
		// picked preserves draw order: iterating the chosen set through a
		// map would randomize the edge (and endpoint) order per process,
		// breaking the "deterministic in seed" contract every pinned test
		// depends on.
		chosen := make(map[int32]bool, m)
		picked := make([]int32, 0, m)
		for len(picked) < m {
			var t int32
			if len(endpoints) == 0 {
				t = int32(rng.Intn(v))
			} else {
				t = endpoints[rng.Intn(len(endpoints))]
			}
			if t == int32(v) || chosen[t] {
				continue
			}
			chosen[t] = true
			picked = append(picked, t)
		}
		for _, t := range picked {
			b.AddEdge(int32(v), t)
			endpoints = append(endpoints, int32(v), t)
		}
	}
	return b.Build()
}

// WattsStrogatz returns a small-world graph: a ring lattice where each node
// connects to its k nearest neighbors (k even), with each edge rewired to a
// uniform random target with probability beta.
func WattsStrogatz(n, k int, beta float64, seed uint64) *Graph {
	if k%2 != 0 {
		k++
	}
	rng := rank.NewRNG(seed)
	type edge struct{ u, v int32 }
	seen := make(map[edge]bool)
	add := func(u, v int32) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		if seen[edge{u, v}] {
			return false
		}
		seen[edge{u, v}] = true
		return true
	}
	b := NewBuilder(n, false)
	for i := 0; i < n; i++ {
		for j := 1; j <= k/2; j++ {
			u := int32(i)
			v := int32((i + j) % n)
			if rng.Float64() < beta {
				// Rewire to a random target, keeping u fixed.
				for tries := 0; tries < 32; tries++ {
					cand := int32(rng.Intn(n))
					if add(u, cand) {
						b.AddEdge(u, cand)
						v = -1
						break
					}
				}
				if v == -1 {
					continue
				}
			}
			if add(u, v) {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// WithRandomWeights returns a copy of g where every arc gets an independent
// uniform length in [lo, hi).  For undirected graphs the two arcs of an edge
// receive the same length.  lo must be positive.
func WithRandomWeights(g *Graph, lo, hi float64, seed uint64) *Graph {
	if lo <= 0 || hi < lo {
		panic("graph: invalid weight range")
	}
	src := rank.NewSource(seed)
	b := NewBuilder(g.NumNodes(), g.Directed())
	g.ForEachArc(func(u, v int32, _ float64) {
		if !g.Directed() && u > v {
			return // add each undirected edge once
		}
		// Hash the (canonical) endpoint pair so both arcs agree.
		key := int64(u)*int64(g.NumNodes()) + int64(v)
		w := lo + (hi-lo)*src.Rank(key)
		b.AddWeightedEdge(u, v, w)
	})
	return b.Build()
}
