// Package graph provides the graph substrate for the ADS library: a compact
// CSR (compressed sparse row) adjacency representation for directed or
// undirected, weighted or unweighted graphs, traversals (BFS, Dijkstra with
// pruning hooks, Bellman–Ford rounds), exact distance oracles used as ground
// truth by tests and benchmarks, deterministic random-graph generators, and
// edge-list I/O.
//
// Node IDs are dense integers 0..n-1.  Edge weights are shortest-path
// lengths and must be positive.  An unweighted graph treats every edge as
// length 1 ("hops").
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable graph in CSR form.  Build one with a Builder or a
// generator.  For directed graphs the adjacency lists are the out-edges;
// Transpose gives the reverse direction (in-edges), which the backward ADS
// and Algorithm 1 (PrunedDijkstra runs on the transpose) need.
type Graph struct {
	n        int
	directed bool
	off      []int64   // len n+1; adjacency of v is dst[off[v]:off[v+1]]
	dst      []int32   // edge targets
	w        []float64 // edge lengths; nil means every edge has length 1
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumArcs returns the number of stored arcs.  For an undirected graph each
// edge is stored as two arcs.
func (g *Graph) NumArcs() int { return len(g.dst) }

// NumEdges returns the number of logical edges (arcs for directed graphs,
// arcs/2 for undirected graphs).
func (g *Graph) NumEdges() int {
	if g.directed {
		return len(g.dst)
	}
	return len(g.dst) / 2
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// Weighted reports whether the graph carries explicit edge lengths.
func (g *Graph) Weighted() bool { return g.w != nil }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v int32) int {
	return int(g.off[v+1] - g.off[v])
}

// Neighbors returns the adjacency slice of v and the parallel weight slice.
// The weight slice is nil for unweighted graphs (every edge has length 1).
// The returned slices alias the graph's storage and must not be modified.
func (g *Graph) Neighbors(v int32) ([]int32, []float64) {
	lo, hi := g.off[v], g.off[v+1]
	if g.w == nil {
		return g.dst[lo:hi], nil
	}
	return g.dst[lo:hi], g.w[lo:hi]
}

// ForEachArc calls fn(u, v, w) for every stored arc.  w is 1 for unweighted
// graphs.
func (g *Graph) ForEachArc(fn func(u, v int32, w float64)) {
	for u := int32(0); int(u) < g.n; u++ {
		ns, ws := g.Neighbors(u)
		for i, v := range ns {
			ww := 1.0
			if ws != nil {
				ww = ws[i]
			}
			fn(u, v, ww)
		}
	}
}

// Transpose returns the graph with every arc reversed.  For undirected
// graphs it returns the receiver (the transpose is identical).
func (g *Graph) Transpose() *Graph {
	if !g.directed {
		return g
	}
	deg := make([]int64, g.n+1)
	for _, v := range g.dst {
		deg[v+1]++
	}
	off := make([]int64, g.n+1)
	for i := 0; i < g.n; i++ {
		off[i+1] = off[i] + deg[i+1]
	}
	dst := make([]int32, len(g.dst))
	var w []float64
	if g.w != nil {
		w = make([]float64, len(g.w))
	}
	cursor := make([]int64, g.n)
	copy(cursor, off[:g.n])
	for u := int32(0); int(u) < g.n; u++ {
		lo, hi := g.off[u], g.off[u+1]
		for i := lo; i < hi; i++ {
			v := g.dst[i]
			p := cursor[v]
			cursor[v]++
			dst[p] = u
			if w != nil {
				w[p] = g.w[i]
			}
		}
	}
	t := &Graph{n: g.n, directed: true, off: off, dst: dst, w: w}
	t.sortAdjacency()
	return t
}

// sortAdjacency orders each adjacency list by (target, weight) so traversal
// order is deterministic.
func (g *Graph) sortAdjacency() {
	for v := 0; v < g.n; v++ {
		lo, hi := g.off[v], g.off[v+1]
		if g.w == nil {
			s := g.dst[lo:hi]
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			continue
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = i
		}
		d, w := g.dst[lo:hi], g.w[lo:hi]
		sort.Slice(idx, func(i, j int) bool {
			if d[idx[i]] != d[idx[j]] {
				return d[idx[i]] < d[idx[j]]
			}
			return w[idx[i]] < w[idx[j]]
		})
		nd := make([]int32, len(idx))
		nw := make([]float64, len(idx))
		for i, j := range idx {
			nd[i], nw[i] = d[j], w[j]
		}
		copy(d, nd)
		copy(w, nw)
	}
}

// arc is a staging edge inside a Builder.
type arc struct {
	u, v int32
	w    float64
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n        int
	directed bool
	weighted bool
	arcs     []arc
}

// NewBuilder returns a builder for a graph with n nodes.
func NewBuilder(n int, directed bool) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n, directed: directed}
}

// AddEdge adds an edge of length 1 from u to v (and v to u when the graph
// is undirected).
func (b *Builder) AddEdge(u, v int32) { b.add(u, v, 1, false) }

// AddWeightedEdge adds an edge with the given positive length.
func (b *Builder) AddWeightedEdge(u, v int32, w float64) { b.add(u, v, w, true) }

func (b *Builder) add(u, v int32, w float64, weighted bool) {
	if int(u) >= b.n || int(v) >= b.n || u < 0 || v < 0 {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if w <= 0 {
		panic(fmt.Sprintf("graph: edge (%d,%d) has non-positive length %g", u, v, w))
	}
	if weighted {
		b.weighted = true
	}
	b.arcs = append(b.arcs, arc{u, v, w})
}

// NumNodes reports the node count the builder was created with.
func (b *Builder) NumNodes() int { return b.n }

// Build finalizes the graph.  The builder may be reused afterwards; arcs
// added so far are retained.
func (b *Builder) Build() *Graph {
	narcs := len(b.arcs)
	if !b.directed {
		narcs *= 2
	}
	deg := make([]int64, b.n+1)
	for _, a := range b.arcs {
		deg[a.u+1]++
		if !b.directed {
			deg[a.v+1]++
		}
	}
	off := make([]int64, b.n+1)
	for i := 0; i < b.n; i++ {
		off[i+1] = off[i] + deg[i+1]
	}
	dst := make([]int32, narcs)
	var w []float64
	if b.weighted {
		w = make([]float64, narcs)
	}
	cursor := make([]int64, b.n)
	copy(cursor, off[:b.n])
	put := func(u, v int32, ww float64) {
		p := cursor[u]
		cursor[u]++
		dst[p] = v
		if w != nil {
			w[p] = ww
		}
	}
	for _, a := range b.arcs {
		put(a.u, a.v, a.w)
		if !b.directed {
			put(a.v, a.u, a.w)
		}
	}
	g := &Graph{n: b.n, directed: b.directed, off: off, dst: dst, w: w}
	g.sortAdjacency()
	return g
}
