package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ScanEdges streams a whitespace- or tab-separated edge list — the format
// SNAP datasets ship in — calling fn for every edge without materializing
// the list.  Lines are "u v" or "u v w"; blank lines and lines starting
// with '#' or '%' are ignored; node IDs must be non-negative integers and
// explicit weights positive.  fn's hasW reports whether the line carried a
// weight.  A non-nil error from fn stops the scan and is returned as-is,
// so callers can batch, bound, or abort a replay.
func ScanEdges(r io.Reader, fn func(u, v int32, w float64, hasW bool) error) error {
	return ScanEdgesFiltered(r, nil, fn)
}

// KeepFunc selects edges during a filtered scan.  It sees each edge's
// endpoints exactly as the line spells them (u before v) and reports
// whether fn should receive the edge.
type KeepFunc func(u, v int32) bool

// ScanEdgesFiltered is ScanEdges restricted to the edges keep accepts
// (nil keeps everything).  Lines are parsed and validated either way, so
// a malformed line fails the scan regardless of the filter; only fn is
// skipped.  A partitioned build worker uses this to stream just the
// edges incident to its node range — the union of the workers' filtered
// streams is the full stream, each edge delivered exactly once as long
// as the keep predicates tile the edge set.
func ScanEdgesFiltered(r io.Reader, keep KeepFunc, fn func(u, v int32, w float64, hasW bool) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 && len(fields) != 3 {
			return fmt.Errorf("graph: line %d: want 'u v [w]', got %q", lineNo, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil || u < 0 {
			return fmt.Errorf("graph: line %d: bad source node %q", lineNo, fields[0])
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil || v < 0 {
			return fmt.Errorf("graph: line %d: bad target node %q", lineNo, fields[1])
		}
		w, hasW := 0.0, false
		if len(fields) == 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil || w <= 0 {
				return fmt.Errorf("graph: line %d: bad weight %q", lineNo, fields[2])
			}
			hasW = true
		}
		if keep != nil && !keep(int32(u), int32(v)) {
			continue
		}
		if err := fn(int32(u), int32(v), w, hasW); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("graph: reading edge list: %w", err)
	}
	return nil
}
