package graph

import "math"

// Infinity is the distance reported for unreachable nodes.
var Infinity = math.Inf(1)

// BFS returns hop distances from src; unreachable nodes get -1.
func BFS(g *Graph, src int32) []int32 {
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, 64)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		ns, _ := g.Neighbors(u)
		for _, v := range ns {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// distHeap is a binary min-heap of (distance, node) pairs with lazy
// deletion, specialized to avoid container/heap interface overhead in the
// innermost loop of sketch construction.
type distHeap struct {
	d []float64
	v []int32
}

func (h *distHeap) len() int { return len(h.d) }

func (h *distHeap) push(d float64, v int32) {
	h.d = append(h.d, d)
	h.v = append(h.v, v)
	i := len(h.d) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.d[p] <= h.d[i] {
			break
		}
		h.d[p], h.d[i] = h.d[i], h.d[p]
		h.v[p], h.v[i] = h.v[i], h.v[p]
		i = p
	}
}

func (h *distHeap) pop() (float64, int32) {
	d, v := h.d[0], h.v[0]
	last := len(h.d) - 1
	h.d[0], h.v[0] = h.d[last], h.v[last]
	h.d, h.v = h.d[:last], h.v[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.d) && h.d[l] < h.d[small] {
			small = l
		}
		if r < len(h.d) && h.d[r] < h.d[small] {
			small = r
		}
		if small == i {
			break
		}
		h.d[i], h.d[small] = h.d[small], h.d[i]
		h.v[i], h.v[small] = h.v[small], h.v[i]
		i = small
	}
	return d, v
}

// Dijkstra returns shortest-path distances from src.  Unreachable nodes get
// +Inf.  For unweighted graphs edge length 1 is used (equivalent to BFS).
func Dijkstra(g *Graph, src int32) []float64 {
	dist := make([]float64, g.NumNodes())
	for i := range dist {
		dist[i] = Infinity
	}
	dist[src] = 0
	var h distHeap
	h.push(0, src)
	for h.len() > 0 {
		d, u := h.pop()
		if d > dist[u] {
			continue // stale entry
		}
		ns, ws := g.Neighbors(u)
		for i, v := range ns {
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			if nd := d + w; nd < dist[v] {
				dist[v] = nd
				h.push(nd, v)
			}
		}
	}
	return dist
}

// Distances returns shortest-path distances from src as float64, using BFS
// for unweighted graphs and Dijkstra otherwise.  Unreachable nodes get +Inf.
func Distances(g *Graph, src int32) []float64 {
	if g.Weighted() {
		return Dijkstra(g, src)
	}
	hops := BFS(g, src)
	dist := make([]float64, len(hops))
	for i, h := range hops {
		if h < 0 {
			dist[i] = Infinity
		} else {
			dist[i] = float64(h)
		}
	}
	return dist
}

// VisitAscending runs a Dijkstra traversal from src and calls visit for each
// settled node in non-decreasing distance order (src itself first, at
// distance 0).  If visit returns false the traversal is pruned at that node:
// its out-edges are not relaxed.  This is the primitive Algorithm 1
// (PrunedDijkstra) needs — the ADS construction prunes the search at nodes
// whose sketch the new rank cannot improve.
//
// The scratch slices dist and heap state are allocated per call; callers
// doing n traversals (as the ADS builder does) should use the Visitor type
// to reuse allocations.
func VisitAscending(g *Graph, src int32, visit func(v int32, d float64) bool) {
	vis := NewVisitor(g)
	vis.Run(src, visit)
}

// Visitor performs repeated pruned Dijkstra traversals over one graph while
// reusing its internal buffers.  It is not safe for concurrent use; create
// one Visitor per goroutine.
type Visitor struct {
	g     *Graph
	dist  []float64
	dirty []int32 // nodes whose dist needs resetting
	heap  distHeap
}

// NewVisitor returns a Visitor over g.
func NewVisitor(g *Graph) *Visitor {
	d := make([]float64, g.NumNodes())
	for i := range d {
		d[i] = Infinity
	}
	return &Visitor{g: g, dist: d}
}

// Run performs one traversal from src; see VisitAscending for the contract.
func (vis *Visitor) Run(src int32, visit func(v int32, d float64) bool) {
	g := vis.g
	vis.heap.d = vis.heap.d[:0]
	vis.heap.v = vis.heap.v[:0]
	vis.dist[src] = 0
	vis.dirty = append(vis.dirty[:0], src)
	vis.heap.push(0, src)
	for vis.heap.len() > 0 {
		d, u := vis.heap.pop()
		if d > vis.dist[u] {
			continue
		}
		if !visit(u, d) {
			continue // pruned: do not relax out-edges
		}
		ns, ws := g.Neighbors(u)
		for i, v := range ns {
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			if nd := d + w; nd < vis.dist[v] {
				if vis.dist[v] == Infinity {
					vis.dirty = append(vis.dirty, v)
				}
				vis.dist[v] = nd
				vis.heap.push(nd, v)
			}
		}
	}
	for _, v := range vis.dirty {
		vis.dist[v] = Infinity
	}
}
