package graph

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestScanEdgesBasic(t *testing.T) {
	in := "# c\n1 2\n\n% c\n3\t4\t2.5\n  5   6  \n"
	type rec struct {
		u, v int32
		w    float64
		hasW bool
	}
	var got []rec
	err := ScanEdges(strings.NewReader(in), func(u, v int32, w float64, hasW bool) error {
		got = append(got, rec{u, v, w, hasW})
		return nil
	})
	if err != nil {
		t.Fatalf("ScanEdges: %v", err)
	}
	want := []rec{{1, 2, 0, false}, {3, 4, 2.5, true}, {5, 6, 0, false}}
	if len(got) != len(want) {
		t.Fatalf("got %d edges, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestScanEdgesErrors(t *testing.T) {
	bad := []string{"1\n", "1 2 3 4\n", "-1 2\n", "1 -2\n", "x 2\n", "1 2 0\n", "1 2 -1\n", "1 2 x\n"}
	for _, in := range bad {
		if err := ScanEdges(strings.NewReader(in), func(int32, int32, float64, bool) error { return nil }); err == nil {
			t.Fatalf("ScanEdges accepted %q", in)
		}
	}
}

func TestScanEdgesCallbackErrorStops(t *testing.T) {
	boom := errors.New("boom")
	n := 0
	err := ScanEdges(strings.NewReader("1 2\n3 4\n5 6\n"), func(int32, int32, float64, bool) error {
		n++
		if n == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want the callback error back, got %v", err)
	}
	if n != 2 {
		t.Fatalf("scan continued after error: %d calls", n)
	}
}

// TestScanEdgesSNAPFixture streams the checked-in SNAP-style fixture and
// cross-checks ReadEdgeList (which is built on the same scanner).
func TestScanEdgesSNAPFixture(t *testing.T) {
	path := filepath.Join("testdata", "snap_small.txt")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open fixture: %v", err)
	}
	defer f.Close()
	edges, maxID := 0, int32(-1)
	err = ScanEdges(f, func(u, v int32, w float64, hasW bool) error {
		edges++
		if hasW {
			t.Fatalf("fixture edge (%d,%d) unexpectedly weighted", u, v)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ScanEdges: %v", err)
	}
	if edges != 34 {
		t.Fatalf("fixture has %d edges, want 34", edges)
	}
	f2, err := os.Open(path)
	if err != nil {
		t.Fatalf("reopen fixture: %v", err)
	}
	defer f2.Close()
	g, err := ReadEdgeList(f2, true)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumNodes() != int(maxID)+1 || g.NumEdges() != edges {
		t.Fatalf("ReadEdgeList: %d nodes / %d edges, scanner saw max ID %d / %d edges",
			g.NumNodes(), g.NumEdges(), maxID, edges)
	}
}
