package graph

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

type scannedEdge struct {
	u, v int32
	w    float64
	hasW bool
}

func scanAll(t *testing.T, input string, keep KeepFunc) []scannedEdge {
	t.Helper()
	var out []scannedEdge
	err := ScanEdgesFiltered(strings.NewReader(input), keep, func(u, v int32, w float64, hasW bool) error {
		out = append(out, scannedEdge{u, v, w, hasW})
		return nil
	})
	if err != nil {
		t.Fatalf("ScanEdgesFiltered: %v", err)
	}
	return out
}

// TestScanEdgesFilteredUnion proves that filtered streams whose keep
// predicates tile the edge set reassemble the full stream with every
// edge delivered exactly once — the property a partitioned build relies
// on when each worker scans only its own slice of the edge list.
func TestScanEdgesFilteredUnion(t *testing.T) {
	data, err := os.ReadFile("testdata/snap_small.txt")
	if err != nil {
		t.Fatal(err)
	}
	input := string(data) + "7 7\n3 9 2.5\n" // self-loop and a weighted line
	full := scanAll(t, input, nil)
	if len(full) == 0 {
		t.Fatal("fixture scanned to zero edges")
	}

	for _, parts := range []int{1, 2, 4, 7} {
		counts := make(map[scannedEdge]int)
		for _, e := range full {
			counts[e]++
		}
		got := 0
		for p := 0; p < parts; p++ {
			p := p
			sub := scanAll(t, input, func(u, v int32) bool { return int(v)%parts == p })
			for _, e := range sub {
				if int(e.v)%parts != p {
					t.Fatalf("parts=%d: partition %d received edge %v outside its filter", parts, p, e)
				}
				counts[e]--
				got++
			}
		}
		if got != len(full) {
			t.Fatalf("parts=%d: union of filtered streams has %d edges, full stream %d", parts, got, len(full))
		}
		for e, c := range counts {
			if c != 0 {
				t.Fatalf("parts=%d: edge %v delivered %d extra time(s)", parts, e, -c)
			}
		}
	}
}

// TestScanEdgesFilteredSkipsOnlyFn pins that the filter skips delivery,
// not validation: a malformed line fails the scan even when the filter
// would have dropped it, so every worker sees the same good-or-bad
// verdict for a file.
func TestScanEdgesFilteredSkipsOnlyFn(t *testing.T) {
	input := "0 1\nbogus line here x\n2 3\n"
	err := ScanEdgesFiltered(strings.NewReader(input), func(u, v int32) bool { return false }, func(u, v int32, w float64, hasW bool) error {
		return fmt.Errorf("fn must not run with a reject-all filter")
	})
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want a line-2 parse error despite the reject-all filter, got %v", err)
	}
}

// TestScanEdgesNilFilterIsFullStream pins ScanEdges == filtered scan
// with a nil keep.
func TestScanEdgesNilFilterIsFullStream(t *testing.T) {
	input := "0 1\n1 2 0.5\n# comment\n\n2 0\n"
	var a, b []scannedEdge
	if err := ScanEdges(strings.NewReader(input), func(u, v int32, w float64, hasW bool) error {
		a = append(a, scannedEdge{u, v, w, hasW})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	b = scanAll(t, input, nil)
	if len(a) != len(b) {
		t.Fatalf("ScanEdges saw %d edges, nil-filtered scan %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
