package graph

import "sort"

// NodeDist is a (node, distance) pair.
type NodeDist struct {
	Node int32
	Dist float64
}

// NearestOrder returns all nodes reachable from src sorted by increasing
// distance, ties broken by node ID.  Position i (0-based) in the returned
// slice is the Dijkstra rank π = i+1 of that node with respect to src —
// the quantity the ADS inclusion probabilities are defined over.  src
// itself appears first at distance 0.
func NearestOrder(g *Graph, src int32) []NodeDist {
	dist := Distances(g, src)
	order := make([]NodeDist, 0, 64)
	for v, d := range dist {
		if d != Infinity {
			order = append(order, NodeDist{Node: int32(v), Dist: d})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].Dist != order[j].Dist {
			return order[i].Dist < order[j].Dist
		}
		return order[i].Node < order[j].Node
	})
	return order
}

// NeighborhoodSize returns n_d(src) = |N_d(src)|, the number of nodes within
// distance d of src (inclusive), computed exactly.
func NeighborhoodSize(g *Graph, src int32, d float64) int {
	dist := Distances(g, src)
	n := 0
	for _, dd := range dist {
		if dd <= d {
			n++
		}
	}
	return n
}

// AllDistances computes the full distance matrix (out-distances) with one
// traversal per node.  Intended for ground truth on small graphs.
func AllDistances(g *Graph) [][]float64 {
	n := g.NumNodes()
	m := make([][]float64, n)
	for v := 0; v < n; v++ {
		m[v] = Distances(g, int32(v))
	}
	return m
}

// NeighborhoodFunction returns the exact neighborhood function of an
// unweighted graph: for each hop count t = 0,1,2,... the total number of
// ordered pairs (u,v) with d(u,v) <= t.  Index t of the result holds N(t).
// The series stops at the diameter (when it stops growing).
func NeighborhoodFunction(g *Graph) []int64 {
	var counts []int64
	for v := 0; v < g.NumNodes(); v++ {
		hops := BFS(g, int32(v))
		for _, h := range hops {
			if h < 0 {
				continue
			}
			for int(h) >= len(counts) {
				counts = append(counts, 0)
			}
			counts[h]++
		}
	}
	// Prefix-sum: counts[t] currently holds #pairs at exactly t.
	for t := 1; t < len(counts); t++ {
		counts[t] += counts[t-1]
	}
	return counts
}

// EffectiveDiameter returns the smallest hop count t such that at least
// fraction q (e.g. 0.9) of all reachable ordered pairs are within distance
// t, interpolating the convention used by ANF/HyperANF reports.
func EffectiveDiameter(nf []int64, q float64) float64 {
	if len(nf) == 0 {
		return 0
	}
	total := float64(nf[len(nf)-1])
	target := q * total
	for t, c := range nf {
		if float64(c) >= target {
			if t == 0 {
				return 0
			}
			prev := float64(nf[t-1])
			// Linear interpolation between t-1 and t.
			return float64(t-1) + (target-prev)/(float64(c)-prev)
		}
	}
	return float64(len(nf) - 1)
}

// Closeness returns the classic closeness centrality of src: the inverse of
// the sum of distances to all reachable nodes (0 if src reaches nothing but
// itself).  Used as exact ground truth for the C_alpha estimators.
func Closeness(g *Graph, src int32) float64 {
	dist := Distances(g, src)
	sum := 0.0
	for v, d := range dist {
		if int32(v) != src && d != Infinity {
			sum += d
		}
	}
	if sum == 0 {
		return 0
	}
	return 1 / sum
}

// HarmonicCentrality returns sum over v != src of 1/d(src,v), the harmonic
// mean centrality of Section 1 (alpha(x)=1/x).
func HarmonicCentrality(g *Graph, src int32) float64 {
	dist := Distances(g, src)
	sum := 0.0
	for v, d := range dist {
		if int32(v) != src && d != Infinity && d > 0 {
			sum += 1 / d
		}
	}
	return sum
}

// ReachableCount returns the number of nodes reachable from src, including
// src itself.
func ReachableCount(g *Graph, src int32) int {
	dist := Distances(g, src)
	n := 0
	for _, d := range dist {
		if d != Infinity {
			n++
		}
	}
	return n
}

// ConnectedComponents labels nodes of an undirected graph with component
// IDs 0..c-1 and returns the labels and the component count.  For directed
// graphs it computes weakly connected components of the underlying
// undirected structure (callers needing strong components should build the
// transpose union).
func ConnectedComponents(g *Graph) ([]int32, int) {
	n := g.NumNodes()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var t *Graph
	if g.Directed() {
		t = g.Transpose()
	}
	next := int32(0)
	queue := make([]int32, 0, 64)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = next
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			ns, _ := g.Neighbors(u)
			for _, v := range ns {
				if comp[v] < 0 {
					comp[v] = next
					queue = append(queue, v)
				}
			}
			if t != nil {
				rs, _ := t.Neighbors(u)
				for _, v := range rs {
					if comp[v] < 0 {
						comp[v] = next
						queue = append(queue, v)
					}
				}
			}
		}
		next++
	}
	return comp, int(next)
}

// DistanceCDF returns, for each query distance in ds (which must be
// ascending), the exact number of ordered pairs (u,v) with d(u,v) <= d —
// the weighted-graph generalization of NeighborhoodFunction, computed by
// one Dijkstra per node.  Ground truth for sketch-based distance
// distributions on weighted graphs.
func DistanceCDF(g *Graph, ds []float64) []int64 {
	out := make([]int64, len(ds))
	for v := 0; v < g.NumNodes(); v++ {
		dist := Distances(g, int32(v))
		for _, d := range dist {
			if d == Infinity {
				continue
			}
			// Count d into every query point >= d.
			i := sort.SearchFloat64s(ds, d)
			for ; i < len(ds); i++ {
				out[i]++
			}
		}
	}
	return out
}
