package graph

import (
	"bufio"
	"fmt"
	"io"
)

// ReadEdgeList parses a whitespace-separated edge list: one edge per line as
// "u v" or "u v w", with '#' or '%' comment lines ignored.  Node IDs must be
// non-negative integers; the node count is one more than the largest ID
// seen.  The directed flag controls how edges are interpreted.
func ReadEdgeList(r io.Reader, directed bool) (*Graph, error) {
	type line struct {
		u, v int32
		w    float64
		hasW bool
	}
	var lines []line
	maxID := int32(-1)
	err := ScanEdges(r, func(u, v int32, w float64, hasW bool) error {
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		lines = append(lines, line{u: u, v: v, w: w, hasW: hasW})
		return nil
	})
	if err != nil {
		return nil, err
	}
	b := NewBuilder(int(maxID+1), directed)
	for _, ln := range lines {
		if ln.hasW {
			b.AddWeightedEdge(ln.u, ln.v, ln.w)
		} else {
			b.AddEdge(ln.u, ln.v)
		}
	}
	return b.Build(), nil
}

// WriteEdgeList writes the graph as an edge list readable by ReadEdgeList.
// Undirected edges are written once (u <= v).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes=%d edges=%d directed=%v weighted=%v\n",
		g.NumNodes(), g.NumEdges(), g.Directed(), g.Weighted()); err != nil {
		return err
	}
	var failed error
	selfSeen := make(map[int32]int)
	g.ForEachArc(func(u, v int32, wt float64) {
		if failed != nil {
			return
		}
		if !g.Directed() && u > v {
			return
		}
		if !g.Directed() && u == v {
			// An undirected self-loop is stored as two arcs; emit one
			// line per pair.
			selfSeen[u]++
			if selfSeen[u]%2 == 0 {
				return
			}
		}
		var err error
		if g.Weighted() {
			_, err = fmt.Fprintf(bw, "%d %d %g\n", u, v, wt)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
		if err != nil {
			failed = err
		}
	})
	if failed != nil {
		return failed
	}
	return bw.Flush()
}
