package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list: one edge per line as
// "u v" or "u v w", with '#' or '%' comment lines ignored.  Node IDs must be
// non-negative integers; the node count is one more than the largest ID
// seen.  The directed flag controls how edges are interpreted.
func ReadEdgeList(r io.Reader, directed bool) (*Graph, error) {
	type line struct {
		u, v int32
		w    float64
		hasW bool
	}
	var lines []line
	maxID := int64(-1)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want 'u v [w]', got %q", lineNo, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil || u < 0 {
			return nil, fmt.Errorf("graph: line %d: bad source node %q", lineNo, fields[0])
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("graph: line %d: bad target node %q", lineNo, fields[1])
		}
		ln := line{u: int32(u), v: int32(v)}
		if len(fields) == 3 {
			w, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("graph: line %d: bad weight %q", lineNo, fields[2])
			}
			ln.w, ln.hasW = w, true
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	b := NewBuilder(int(maxID+1), directed)
	for _, ln := range lines {
		if ln.hasW {
			b.AddWeightedEdge(ln.u, ln.v, ln.w)
		} else {
			b.AddEdge(ln.u, ln.v)
		}
	}
	return b.Build(), nil
}

// WriteEdgeList writes the graph as an edge list readable by ReadEdgeList.
// Undirected edges are written once (u <= v).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes=%d edges=%d directed=%v weighted=%v\n",
		g.NumNodes(), g.NumEdges(), g.Directed(), g.Weighted()); err != nil {
		return err
	}
	var failed error
	selfSeen := make(map[int32]int)
	g.ForEachArc(func(u, v int32, wt float64) {
		if failed != nil {
			return
		}
		if !g.Directed() && u > v {
			return
		}
		if !g.Directed() && u == v {
			// An undirected self-loop is stored as two arcs; emit one
			// line per pair.
			selfSeen[u]++
			if selfSeen[u]%2 == 0 {
				return
			}
		}
		var err error
		if g.Weighted() {
			_, err = fmt.Fprintf(bw, "%d %d %g\n", u, v, wt)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
		if err != nil {
			failed = err
		}
	})
	if failed != nil {
		return failed
	}
	return bw.Flush()
}
