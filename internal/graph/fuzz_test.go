package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList: arbitrary input must either parse into a graph whose
// round trip is stable, or return an error — never panic.
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n"))
	f.Add([]byte("# comment\n0 1 2.5\n"))
	f.Add([]byte("0 1 2 3\n"))
	f.Add([]byte("a b\n"))
	f.Add([]byte(""))
	f.Add([]byte("9999999999999 1\n"))
	f.Add([]byte("0 1 -5\n"))
	f.Add([]byte("% note\n\n3 3\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data), false)
		if err != nil {
			return
		}
		// A parsed graph must survive write + re-read unchanged.
		var sb strings.Builder
		if err := WriteEdgeList(&sb, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		g2, err := ReadEdgeList(strings.NewReader(sb.String()), false)
		if err != nil {
			t.Fatalf("re-read own output: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumArcs() != g.NumArcs() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				g.NumNodes(), g.NumArcs(), g2.NumNodes(), g2.NumArcs())
		}
	})
}
