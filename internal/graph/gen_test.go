package graph

import (
	"math"
	"strings"
	"testing"
)

func TestPathCycleGridComplete(t *testing.T) {
	if g := Path(10); g.NumEdges() != 9 {
		t.Errorf("path edges = %d", g.NumEdges())
	}
	if g := Cycle(10); g.NumEdges() != 10 {
		t.Errorf("cycle edges = %d", g.NumEdges())
	}
	g := Grid(3, 4)
	if g.NumNodes() != 12 {
		t.Errorf("grid nodes = %d", g.NumNodes())
	}
	// 3x4 grid: horizontal 3*3=9, vertical 2*4=8.
	if g.NumEdges() != 17 {
		t.Errorf("grid edges = %d, want 17", g.NumEdges())
	}
	// Manhattan distance between corners.
	d := BFS(g, 0)
	if d[11] != 5 {
		t.Errorf("grid corner distance = %d, want 5", d[11])
	}
	if g := Complete(6); g.NumEdges() != 15 {
		t.Errorf("K6 edges = %d", g.NumEdges())
	}
	if g := Star(5); g.NumEdges() != 4 || g.OutDegree(0) != 4 {
		t.Error("star shape wrong")
	}
}

func TestRandomTreeConnectedAcyclic(t *testing.T) {
	g := RandomTree(500, 3)
	if g.NumEdges() != 499 {
		t.Fatalf("tree edges = %d, want 499", g.NumEdges())
	}
	if _, c := ConnectedComponents(g); c != 1 {
		t.Fatal("tree not connected")
	}
}

func TestGNPEdgeCount(t *testing.T) {
	n, p := 500, 0.02
	g := GNP(n, p, false, 11)
	want := p * float64(n) * float64(n-1) / 2
	got := float64(g.NumEdges())
	if math.Abs(got-want) > 5*math.Sqrt(want) {
		t.Errorf("G(n,p) edges = %g, want ~%g", got, want)
	}
	dg := GNP(n, p, true, 11)
	wantD := p * float64(n) * float64(n-1)
	gotD := float64(dg.NumEdges())
	if math.Abs(gotD-wantD) > 5*math.Sqrt(wantD) {
		t.Errorf("directed G(n,p) arcs = %g, want ~%g", gotD, wantD)
	}
}

func TestGNPDeterministic(t *testing.T) {
	a := GNP(100, 0.05, false, 42)
	b := GNP(100, 0.05, false, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	c := GNP(100, 0.05, false, 43)
	if a.NumEdges() == c.NumEdges() {
		// Not impossible, but combined with identical structure it would be
		// suspicious; just check some neighborhood differs.
		same := true
		for v := int32(0); v < 100 && same; v++ {
			an, _ := a.Neighbors(v)
			cn, _ := c.Neighbors(v)
			if len(an) != len(cn) {
				same = false
			}
		}
		if same {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestGNPExtremes(t *testing.T) {
	if g := GNP(50, 0, false, 1); g.NumEdges() != 0 {
		t.Error("p=0 should give empty graph")
	}
	if g := GNP(20, 1, false, 1); g.NumEdges() != 190 {
		t.Errorf("p=1 should give complete graph, got %d edges", g.NumEdges())
	}
}

func TestPairFromIndex(t *testing.T) {
	n := 5
	idx := int64(0)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			gu, gv := pairFromIndex(idx, n)
			if int(gu) != u || int(gv) != v {
				t.Fatalf("pairFromIndex(%d) = (%d,%d), want (%d,%d)", idx, gu, gv, u, v)
			}
			idx++
		}
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := PreferentialAttachment(1000, 3, 5)
	if g.NumNodes() != 1000 {
		t.Fatal("wrong node count")
	}
	if _, c := ConnectedComponents(g); c != 1 {
		t.Fatal("BA graph not connected")
	}
	// Expected edges: clique(4)=6 + 3*(1000-4).
	want := 6 + 3*996
	if g.NumEdges() != want {
		t.Errorf("BA edges = %d, want %d", g.NumEdges(), want)
	}
	// Degree skew: max degree should far exceed the mean (scale-free-ish).
	maxDeg, sum := 0, 0
	for v := int32(0); v < 1000; v++ {
		d := g.OutDegree(v)
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(sum) / 1000
	if float64(maxDeg) < 5*mean {
		t.Errorf("max degree %d not much larger than mean %g; not preferential", maxDeg, mean)
	}
}

func TestPreferentialAttachmentSmall(t *testing.T) {
	g := PreferentialAttachment(3, 5, 1)
	// n < m+1 collapses to a clique over n nodes.
	if g.NumEdges() != 3 {
		t.Errorf("tiny BA edges = %d, want 3", g.NumEdges())
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(400, 4, 0.1, 9)
	if g.NumNodes() != 400 {
		t.Fatal("wrong node count")
	}
	if _, c := ConnectedComponents(g); c != 1 {
		t.Error("WS graph disconnected (possible but should be rare at beta=0.1)")
	}
	// Edge count close to n*k/2 (rewiring keeps or drops a few).
	if e := g.NumEdges(); e < 700 || e > 800 {
		t.Errorf("WS edges = %d, want ~800", e)
	}
	// beta=0 gives the exact ring lattice.
	ring := WattsStrogatz(50, 4, 0, 1)
	if ring.NumEdges() != 100 {
		t.Errorf("ring lattice edges = %d, want 100", ring.NumEdges())
	}
}

func TestWithRandomWeights(t *testing.T) {
	g := WithRandomWeights(Path(50), 1, 3, 4)
	if !g.Weighted() {
		t.Fatal("not weighted")
	}
	g.ForEachArc(func(u, v int32, w float64) {
		if w < 1 || w >= 3 {
			t.Errorf("weight %g outside [1,3)", w)
		}
	})
	// Symmetric weights on the two arcs of an undirected edge.
	ns, ws := g.Neighbors(10)
	for i, v := range ns {
		back, bw := g.Neighbors(v)
		found := false
		for j, u := range back {
			if u == 10 && bw[j] == ws[i] {
				found = true
			}
		}
		if !found {
			t.Errorf("asymmetric undirected weight on edge (10,%d)", v)
		}
	}
}

func TestWithRandomWeightsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid range did not panic")
		}
	}()
	WithRandomWeights(Path(3), 0, 1, 1)
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := GNP(60, 0.08, false, 2)
	var sb strings.Builder
	if err := WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(strings.NewReader(sb.String()), false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d nodes, %d/%d edges",
			g2.NumNodes(), g.NumNodes(), g2.NumEdges(), g.NumEdges())
	}
	for v := int32(0); int(v) < g.NumNodes(); v++ {
		a, _ := g.Neighbors(v)
		b, _ := g2.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency mismatch at %d", v)
			}
		}
	}
}

func TestEdgeListWeightedRoundTrip(t *testing.T) {
	g := WithRandomWeights(Grid(4, 4), 1, 2, 3)
	var sb strings.Builder
	if err := WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(strings.NewReader(sb.String()), false)
	if err != nil {
		t.Fatal(err)
	}
	d1 := Dijkstra(g, 0)
	d2 := Dijkstra(g2, 0)
	for v := range d1 {
		if math.Abs(d1[v]-d2[v]) > 1e-9 {
			t.Fatalf("distance mismatch after round trip at %d: %g vs %g", v, d1[v], d2[v])
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0 1 2 3",
		"a 1",
		"0 b",
		"0 1 -2",
		"-1 0",
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c), false); err == nil {
			t.Errorf("input %q did not error", c)
		}
	}
}

func TestReadEdgeListCommentsAndBlank(t *testing.T) {
	in := "# comment\n\n% other comment\n0 1\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Errorf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
}
