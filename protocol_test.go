package adsketch_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"adsketch"
)

// jsonRoundTrip pushes a Request through the wire encoding and back —
// what a client and adsserver do to every query.
func jsonRoundTrip(t *testing.T, req adsketch.Request) adsketch.Request {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var out adsketch.Request
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func doWire(t *testing.T, eng *adsketch.Engine, req adsketch.Request) adsketch.Response {
	t.Helper()
	resp, err := eng.Do(context.Background(), jsonRoundTrip(t, req))
	if err != nil {
		t.Fatalf("Do(%+v): %v", req, err)
	}
	// The Response must survive its own wire encoding bit-for-bit too
	// (encoding/json emits the shortest float64 form that round-trips).
	payload, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var out adsketch.Response
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatal(err)
	}
	for i := range resp.Scores {
		if out.Scores[i] != resp.Scores[i] {
			t.Fatalf("score %d changed across response JSON round trip: %v vs %v", i, out.Scores[i], resp.Scores[i])
		}
	}
	return out
}

// Every query type, JSON encode -> decode -> evaluate, must equal the
// direct method / package-level call bit-for-bit.
func TestProtocolParityUniform(t *testing.T) {
	g, set, eng := buildEngine(t)
	uniform := set.(*adsketch.Set)
	c := adsketch.NewCentrality(set)
	nodes := []int32{0, 7, 123, 399}
	ctx := context.Background()

	t.Run("closeness", func(t *testing.T) {
		resp := doWire(t, eng, adsketch.Request{Closeness: &adsketch.ClosenessQuery{Nodes: nodes}})
		for i, v := range nodes {
			if want := c.Closeness(v); resp.Scores[i] != want {
				t.Errorf("node %d: %v, want %v", v, resp.Scores[i], want)
			}
		}
	})
	t.Run("harmonic", func(t *testing.T) {
		resp := doWire(t, eng, adsketch.Request{Harmonic: &adsketch.HarmonicQuery{Nodes: nodes}})
		for i, v := range nodes {
			if want := c.Harmonic(v); resp.Scores[i] != want {
				t.Errorf("node %d: %v, want %v", v, resp.Scores[i], want)
			}
		}
	})
	t.Run("neighborhood", func(t *testing.T) {
		resp := doWire(t, eng, adsketch.Request{Neighborhood: &adsketch.NeighborhoodQuery{Radius: 2.5, Nodes: nodes}})
		for i, v := range nodes {
			if want := adsketch.EstimateNeighborhoodHIP(set.SketchOf(v), 2.5); resp.Scores[i] != want {
				t.Errorf("node %d: %v, want %v", v, resp.Scores[i], want)
			}
		}
		unb := doWire(t, eng, adsketch.Request{Neighborhood: &adsketch.NeighborhoodQuery{Unbounded: true, Nodes: nodes}})
		for i, v := range nodes {
			if want := adsketch.EstimateNeighborhoodHIP(set.SketchOf(v), math.Inf(1)); unb.Scores[i] != want {
				t.Errorf("unbounded node %d: %v, want %v", v, unb.Scores[i], want)
			}
		}
	})
	t.Run("topk", func(t *testing.T) {
		for metric, want := range map[string][]adsketch.Ranked{
			adsketch.MetricCloseness: c.TopCloseness(10),
			adsketch.MetricHarmonic:  c.TopHarmonic(10),
		} {
			resp := doWire(t, eng, adsketch.Request{TopK: &adsketch.TopKQuery{Metric: metric, K: 10}})
			if len(resp.Ranking) != len(want) {
				t.Fatalf("%s: %d entries, want %d", metric, len(resp.Ranking), len(want))
			}
			for i := range want {
				if resp.Ranking[i] != want[i] {
					t.Errorf("%s[%d] = %+v, want %+v", metric, i, resp.Ranking[i], want[i])
				}
			}
		}
	})
	t.Run("centrality_kernel", func(t *testing.T) {
		kernels := map[string]func(float64) float64{
			adsketch.KernelNameThreshold:    adsketch.KernelThreshold(3),
			adsketch.KernelNameReachability: adsketch.KernelReachability,
			adsketch.KernelNameExponential:  adsketch.KernelExponential,
			adsketch.KernelNameHarmonic:     adsketch.KernelHarmonic,
			adsketch.KernelNameIdentity:     adsketch.KernelIdentity,
		}
		for name, alpha := range kernels {
			resp := doWire(t, eng, adsketch.Request{CentralityKernel: &adsketch.CentralityKernelQuery{
				Kernel: name, Radius: 3, Nodes: nodes,
			}})
			for i, v := range nodes {
				want := adsketch.EstimateCentrality(set.SketchOf(v), alpha, adsketch.UnitBeta)
				if resp.Scores[i] != want {
					t.Errorf("%s node %d: %v, want %v", name, v, resp.Scores[i], want)
				}
			}
		}
	})
	t.Run("jaccard", func(t *testing.T) {
		resp := doWire(t, eng, adsketch.Request{Jaccard: &adsketch.JaccardQuery{A: 0, RadiusA: 2, B: 7, RadiusB: 2}})
		want := adsketch.NeighborhoodJaccard(uniform.BottomK(0), 2, uniform.BottomK(7), 2)
		if resp.Value == nil || *resp.Value != want {
			t.Errorf("jaccard = %v, want %v", resp.Value, want)
		}
	})
	t.Run("influence", func(t *testing.T) {
		cover := doWire(t, eng, adsketch.Request{Influence: &adsketch.InfluenceQuery{Seeds: []int32{0, 50}, Radius: 2}})
		if want := adsketch.UnionNeighborhood(uniform, []int32{0, 50}, 2); cover.Value == nil || *cover.Value != want {
			t.Errorf("union coverage = %v, want %v", cover.Value, want)
		}
		greedy := doWire(t, eng, adsketch.Request{Influence: &adsketch.InfluenceQuery{NumSeeds: 3, Radius: 2}})
		seeds, wantCov := adsketch.GreedyInfluenceSeeds(uniform, nil, 3, 2)
		if greedy.Value == nil || *greedy.Value != wantCov || len(greedy.Seeds) != len(seeds) {
			t.Fatalf("greedy = %+v, want seeds %v coverage %v", greedy, seeds, wantCov)
		}
		for i := range seeds {
			if greedy.Seeds[i] != seeds[i] {
				t.Errorf("seed[%d] = %d, want %d", i, greedy.Seeds[i], seeds[i])
			}
		}
	})
	t.Run("distance_bound", func(t *testing.T) {
		resp := doWire(t, eng, adsketch.Request{DistanceBound: &adsketch.DistanceBoundQuery{A: 0, B: 200}})
		want := adsketch.DistanceUpperBound(uniform.BottomK(0), uniform.BottomK(200))
		if math.IsInf(want, 1) {
			if !resp.Unreachable || resp.Value != nil {
				t.Errorf("bound = %+v, want unreachable", resp)
			}
		} else if resp.Value == nil || *resp.Value != want {
			t.Errorf("bound = %v, want %v", resp.Value, want)
		}
	})
	t.Run("batch", func(t *testing.T) {
		resps, err := eng.DoBatch(ctx, []adsketch.Request{
			{ID: "a", Closeness: &adsketch.ClosenessQuery{Nodes: nodes}},
			{ID: "b", Closeness: &adsketch.ClosenessQuery{Nodes: []int32{-5}}}, // fails alone
			{ID: "c", Harmonic: &adsketch.HarmonicQuery{Nodes: nodes}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if resps[0].Error != "" || resps[2].Error != "" {
			t.Errorf("healthy batch items errored: %+v", resps)
		}
		if resps[1].Error == "" || resps[1].ID != "b" {
			t.Errorf("failing batch item: %+v", resps[1])
		}
	})
	_ = g
}

// The per-node protocol queries also serve weighted and approximate
// sets; the coordinated cross-sketch queries reject them with
// ErrUnsupportedQuery.
func TestProtocolOverAllSetKinds(t *testing.T) {
	g := adsketch.PreferentialAttachment(120, 3, 2)
	beta := make([]float64, 120)
	for i := range beta {
		beta[i] = 1 + float64(i%4)
	}
	weighted, err := adsketch.Build(g, adsketch.WithK(6), adsketch.WithSeed(1), adsketch.WithNodeWeights(beta))
	if err != nil {
		t.Fatal(err)
	}
	approx, err := adsketch.Build(g, adsketch.WithK(6), adsketch.WithSeed(1), adsketch.WithApproxEps(0.2))
	if err != nil {
		t.Fatal(err)
	}
	for name, set := range map[string]adsketch.SketchSet{"weighted": weighted, "approx": approx} {
		eng, err := adsketch.NewEngine(set)
		if err != nil {
			t.Fatal(err)
		}
		resp := doWire(t, eng, adsketch.Request{Neighborhood: &adsketch.NeighborhoodQuery{Unbounded: true, Nodes: []int32{0, 1}}})
		for i, s := range resp.Scores {
			if want := adsketch.EstimateNeighborhoodHIP(set.SketchOf(int32(i)), math.Inf(1)); s != want {
				t.Errorf("%s node %d: %v, want %v", name, i, s, want)
			}
		}
		_, err = eng.Do(context.Background(), adsketch.Request{Jaccard: &adsketch.JaccardQuery{A: 0, RadiusA: 1, B: 1, RadiusB: 1}})
		if !errors.Is(err, adsketch.ErrUnsupportedQuery) {
			t.Errorf("%s jaccard error = %v, want ErrUnsupportedQuery", name, err)
		}
		_, err = eng.Do(context.Background(), adsketch.Request{Influence: &adsketch.InfluenceQuery{NumSeeds: 2, Radius: 1}})
		if !errors.Is(err, adsketch.ErrUnsupportedQuery) {
			t.Errorf("%s influence error = %v, want ErrUnsupportedQuery", name, err)
		}
	}
}

func TestProtocolValidation(t *testing.T) {
	_, _, eng := buildEngine(t)
	ctx := context.Background()
	bad := []adsketch.Request{
		{}, // no query
		{ // two queries
			Closeness: &adsketch.ClosenessQuery{Nodes: []int32{0}},
			Harmonic:  &adsketch.HarmonicQuery{Nodes: []int32{0}},
		},
		{Neighborhood: &adsketch.NeighborhoodQuery{Radius: -1, Nodes: []int32{0}}},
		{Neighborhood: &adsketch.NeighborhoodQuery{Radius: math.NaN(), Nodes: []int32{0}}},
		{TopK: &adsketch.TopKQuery{Metric: "pagerank", K: 5}},
		{TopK: &adsketch.TopKQuery{Metric: adsketch.MetricCloseness, K: 0}},
		{CentralityKernel: &adsketch.CentralityKernelQuery{Kernel: "cubic", Nodes: []int32{0}}},
		{Jaccard: &adsketch.JaccardQuery{A: 0, RadiusA: -2, B: 1, RadiusB: 1}},
		{Influence: &adsketch.InfluenceQuery{Radius: 1}},                                            // neither seeds nor num_seeds
		{Influence: &adsketch.InfluenceQuery{Seeds: []int32{0}, NumSeeds: 2, Radius: 1}},            // both
		{Influence: &adsketch.InfluenceQuery{Seeds: []int32{0}, Candidates: []int32{1}, Radius: 1}}, // candidates without greedy
		{Closeness: &adsketch.ClosenessQuery{Nodes: []int32{99999}}},                                // out of range
		{DistanceBound: &adsketch.DistanceBoundQuery{A: -1, B: 0}},
	}
	for i, req := range bad {
		if _, err := eng.Do(ctx, req); !errors.Is(err, adsketch.ErrBadRequest) {
			t.Errorf("bad request %d: error = %v, want ErrBadRequest", i, err)
		}
	}
}

func TestProtocolContextCancellation(t *testing.T) {
	_, _, eng := buildEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.DoBatch(ctx, []adsketch.Request{{TopK: &adsketch.TopKQuery{Metric: adsketch.MetricCloseness, K: 5}}}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled DoBatch error = %v, want context.Canceled", err)
	}
}
