package adsketch_test

import (
	"math"
	"strings"
	"testing"

	"adsketch"
)

func TestFacadeQuickstart(t *testing.T) {
	g := adsketch.PreferentialAttachment(500, 3, 1)
	set, err := adsketch.Build(g, adsketch.WithK(16), adsketch.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if set.NumNodes() != 500 {
		t.Fatalf("NumNodes = %d", set.NumNodes())
	}
	c := adsketch.NewCentrality(set)
	n3 := c.NeighborhoodSize(0, 3)
	if n3 < 10 || n3 > 600 {
		t.Errorf("n_3(0) = %g, implausible", n3)
	}
	if cl := c.Closeness(0); cl <= 0 {
		t.Errorf("closeness = %g", cl)
	}
}

func TestFacadeFlavorsAndAlgorithms(t *testing.T) {
	g := adsketch.Grid(6, 6)
	for _, fl := range []adsketch.Flavor{adsketch.BottomK, adsketch.KMins, adsketch.KPartition} {
		for _, algo := range []adsketch.Algorithm{adsketch.AlgoPrunedDijkstra, adsketch.AlgoDP, adsketch.AlgoLocalUpdates, adsketch.AlgoBruteForce} {
			set, err := adsketch.Build(g,
				adsketch.WithK(4), adsketch.WithFlavor(fl), adsketch.WithSeed(3),
				adsketch.WithAlgorithm(algo))
			if err != nil {
				t.Fatalf("%v/%v: %v", fl, algo, err)
			}
			got := adsketch.EstimateNeighborhoodHIP(set.SketchOf(0), 100)
			if got < 5 || got > 150 {
				t.Errorf("%v/%v: reachability estimate %g", fl, algo, got)
			}
		}
	}
}

func TestFacadeEstimateQAndKernels(t *testing.T) {
	g := adsketch.Path(30)
	set, err := adsketch.Build(g, adsketch.WithK(8), adsketch.WithSeed(9),
		adsketch.WithAlgorithm(adsketch.AlgoDP))
	if err != nil {
		t.Fatal(err)
	}
	s := set.SketchOf(0)
	sumDist := adsketch.EstimateQ(s, func(_ int32, d float64) float64 { return d })
	viaKernel := adsketch.EstimateCentrality(s, adsketch.KernelIdentity, adsketch.UnitBeta)
	if math.Abs(sumDist-viaKernel) > 1e-9 {
		t.Errorf("EstimateQ %g != kernel path %g", sumDist, viaKernel)
	}
}

func TestFacadeDistinctCounters(t *testing.T) {
	var counters = map[string]adsketch.DistinctCounter{
		"hip-hll":  adsketch.NewHIPDistinct(64, 5),
		"bottom-k": adsketch.NewBottomKDistinct(64, 5),
	}
	for name, c := range counters {
		for id := int64(0); id < 10000; id++ {
			c.Add(id)
			c.Add(id)
		}
		got := c.Estimate()
		if math.Abs(got-10000)/10000 > 0.35 {
			t.Errorf("%s: estimate %g for 10000 distinct", name, got)
		}
	}
	h := adsketch.NewHyperLogLog(64, 5)
	for id := int64(0); id < 10000; id++ {
		h.Add(id)
	}
	if got := h.Estimate(); math.Abs(got-10000)/10000 > 0.5 {
		t.Errorf("HLL estimate %g", got)
	}
}

func TestFacadeWeighted(t *testing.T) {
	g := adsketch.Cycle(50)
	beta := make([]float64, 50)
	for i := range beta {
		beta[i] = 2
	}
	set, err := adsketch.Build(g, adsketch.WithK(8), adsketch.WithSeed(7),
		adsketch.WithNodeWeights(beta))
	if err != nil {
		t.Fatal(err)
	}
	ws, ok := set.(*adsketch.WeightedSet)
	if !ok {
		t.Fatalf("weighted build returned %T", set)
	}
	// Total weight within the whole cycle is 100.
	got := ws.Sketch(0).EstimateNeighborhoodWeight(100)
	if math.Abs(got-100)/100 > 0.6 {
		t.Errorf("weighted reachability = %g, want ~100", got)
	}
	// The shared Sketch interface reports the same weighted estimate.
	if via := set.SketchOf(0).EstimateNeighborhood(100); via != got {
		t.Errorf("SketchOf path %g != weighted path %g", via, got)
	}
}

func TestFacadeANF(t *testing.T) {
	g := adsketch.Grid(10, 10)
	res, err := adsketch.NeighborhoodFunction(g, adsketch.ANFOptions{K: 32, Seed: 4, Readout: adsketch.ANFHIP})
	if err != nil {
		t.Fatal(err)
	}
	plateau := res.NF[len(res.NF)-1]
	if math.Abs(plateau-10000)/10000 > 0.25 {
		t.Errorf("plateau %g, want ~10000 ordered pairs", plateau)
	}
	ed := adsketch.EffectiveDiameter(res.NF, 0.9)
	if ed < 5 || ed > 18 {
		t.Errorf("effective diameter %g for 10x10 grid", ed)
	}
}

func TestFacadeEdgeListRoundTrip(t *testing.T) {
	g := adsketch.GNP(40, 0.1, false, 2)
	var sb strings.Builder
	if err := adsketch.WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := adsketch.ReadEdgeList(strings.NewReader(sb.String()), false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Error("round trip mismatch")
	}
}

func TestFacadeGraphBuilder(t *testing.T) {
	b := adsketch.NewGraphBuilder(3, true)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(1, 2, 2)
	g := b.Build()
	set, err := adsketch.Build(g, adsketch.WithK(4), adsketch.WithSeed(1),
		adsketch.WithAlgorithm(adsketch.AlgoLocalUpdates))
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 reaches all three nodes.
	if got := adsketch.EstimateNeighborhoodHIP(set.SketchOf(0), 10); got != 3 {
		t.Errorf("reachable = %g, want exactly 3 (n<=k)", got)
	}
}

func TestFacadeSerialization(t *testing.T) {
	g := adsketch.GNP(80, 0.06, false, 12)
	set, err := adsketch.Build(g, adsketch.WithK(6), adsketch.WithSeed(4),
		adsketch.WithAlgorithm(adsketch.AlgoPrunedDijkstraParallel))
	if err != nil {
		t.Fatal(err)
	}
	uniform, ok := set.(*adsketch.Set)
	if !ok {
		t.Fatalf("uniform build returned %T", set)
	}
	var buf strings.Builder
	if _, err := set.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := adsketch.ReadSketchSet(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.(*adsketch.Set); !ok {
		t.Fatalf("ReadSketchSet returned %T, want *adsketch.Set", got)
	}
	for v := int32(0); int(v) < g.NumNodes(); v++ {
		a := adsketch.EstimateNeighborhoodHIP(set.SketchOf(v), 3)
		b := adsketch.EstimateNeighborhoodHIP(got.SketchOf(v), 3)
		if a != b {
			t.Fatalf("node %d: estimates differ after round trip: %g vs %g", v, a, b)
		}
	}
	// Legacy v1 files written by the deprecated WriteSketches still load.
	var legacy strings.Builder
	if err := adsketch.WriteSketches(&legacy, uniform); err != nil {
		t.Fatal(err)
	}
	old, err := adsketch.ReadSketchSet(strings.NewReader(legacy.String()))
	if err != nil {
		t.Fatal(err)
	}
	if old.TotalEntries() != set.TotalEntries() {
		t.Error("legacy v1 round trip lost entries")
	}
}

func TestFacadeInfluence(t *testing.T) {
	g := adsketch.PreferentialAttachment(300, 3, 8)
	built, err := adsketch.Build(g, adsketch.WithK(16), adsketch.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	set := built.(*adsketch.Set)
	single := adsketch.UnionNeighborhood(set, []int32{0}, 2)
	pair := adsketch.UnionNeighborhood(set, []int32{0, 100}, 2)
	if pair < single {
		t.Errorf("union coverage decreased when adding a seed: %g -> %g", single, pair)
	}
	seeds, cov := adsketch.GreedyInfluenceSeeds(set, nil, 2, 2)
	if len(seeds) != 2 || cov <= 0 {
		t.Errorf("greedy seeds = %v coverage %g", seeds, cov)
	}
}

func TestFacadeApprox(t *testing.T) {
	g := adsketch.WithRandomWeights(adsketch.GNP(80, 0.06, false, 31), 1, 5, 32)
	built, err := adsketch.Build(g, adsketch.WithK(4), adsketch.WithSeed(9),
		adsketch.WithApproxEps(0.25))
	if err != nil {
		t.Fatal(err)
	}
	set, ok := built.(*adsketch.ApproxSet)
	if !ok {
		t.Fatalf("approximate build returned %T", built)
	}
	if set.Epsilon() != 0.25 || set.K() != 4 {
		t.Error("accessors")
	}
	est := adsketch.EstimateNeighborhoodHIP(set.SketchOf(0), math.Inf(1))
	if est <= 0 {
		t.Errorf("approx estimate %g", est)
	}
}

func TestFacadeHIPIndexAndDistanceBound(t *testing.T) {
	g := adsketch.Grid(8, 8)
	built, err := adsketch.Build(g, adsketch.WithK(8), adsketch.WithSeed(3),
		adsketch.WithAlgorithm(adsketch.AlgoDP))
	if err != nil {
		t.Fatal(err)
	}
	set := built.(*adsketch.Set)
	idx := adsketch.NewHIPIndex(set.SketchOf(0))
	if got, want := idx.Neighborhood(2), adsketch.EstimateNeighborhoodHIP(set.SketchOf(0), 2); got != want {
		t.Errorf("index %g vs direct %g", got, want)
	}
	// Undirected graph: forward sketches both ways bound the distance.
	bound := adsketch.DistanceUpperBound(set.BottomK(0), set.BottomK(63))
	if bound < 14 { // true distance corner-to-corner = 14
		t.Errorf("bound %g below true distance 14", bound)
	}
}

func TestFacadeHarmonicFromBalls(t *testing.T) {
	g := adsketch.Cycle(40)
	res, err := adsketch.NeighborhoodFunction(g, adsketch.ANFOptions{
		K: 32, Seed: 2, Readout: adsketch.ANFHIP, KeepBalls: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := adsketch.HarmonicFromBalls(res)
	if len(h) != 40 {
		t.Fatalf("got %d centralities", len(h))
	}
	// All cycle nodes are symmetric; estimates should cluster.
	var lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range h {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if hi > 3*lo {
		t.Errorf("symmetric graph harmonic spread too wide: [%g, %g]", lo, hi)
	}
}
