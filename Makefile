# Development entry points.  CI runs `make bench` as its perf smoke: one
# iteration of every benchmark, with the Engine serving-path numbers
# emitted as BENCH_engine.json to seed the performance trajectory.

GO ?= go

# COVER_BASELINE is the recorded total-statement-coverage floor; `make
# cover` (and CI) fail when the tree drops below it.  Raise it when
# coverage durably improves; never lower it to make a PR pass.
COVER_BASELINE ?= 74.0

.PHONY: test race bench cover fuzz-smoke clean

test:
	$(GO) build ./... && $(GO) test ./...

# Race coverage spans every layer with concurrency: the facade (engine,
# coordinator scatter-gather), the query/cluster machinery, the parallel
# sketch builders in core, and the HTTP serving tier.
race:
	$(GO) test -race ./ ./internal/query/ ./internal/cluster/ ./internal/core/ ./cmd/adsserver/

# One pass over every benchmark (regression smoke, not measurement), then
# the BenchmarkEngine*/BenchmarkSketchSet* lines rendered as JSON.  The
# redirect (not a pipe) keeps `go test`'s exit status, so a crashing
# benchmark fails the target — and CI.
#
# CODEC_BASELINE_NS pins the pre-optimization BenchmarkSketchSetCodec
# measurement (reflection-based binary.Write per field, PR 2) so every
# BENCH_engine.json carries the before/after pair for the buffer-reuse
# codec rewrite.
CODEC_BASELINE_NS = 1283536377
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x . > bench.out || { cat bench.out; exit 1; }
	cat bench.out
	awk 'BEGIN { print "[" } \
	  /^Benchmark(Engine|SketchSet)/ { \
	    if (n++) printf ",\n"; \
	    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", $$1, $$2, $$3 \
	  } \
	  END { printf ",\n  {\"name\": \"BenchmarkSketchSetCodec/before-buffer-reuse\", \"iterations\": 1, \"ns_per_op\": $(CODEC_BASELINE_NS)}\n]\n" }' \
	  bench.out > BENCH_engine.json
	@cat BENCH_engine.json

# Coverage gate: emit coverage.out (CI uploads it as an artifact) and
# fail when total statement coverage falls below the recorded baseline.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (baseline $(COVER_BASELINE)%)"; \
	awk -v t="$$total" -v b="$(COVER_BASELINE)" 'BEGIN { exit !(t+0 >= b+0) }' || { \
	  echo "coverage $$total% fell below the $(COVER_BASELINE)% baseline" >&2; exit 1; }

# A few seconds of coverage-guided fuzzing on the codec and graph-IO
# parsers — enough to catch decoder regressions fast.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='FuzzReadSketchSet' -fuzztime=5s ./internal/core/
	$(GO) test -run='^$$' -fuzz='FuzzReadSet$$' -fuzztime=5s ./internal/core/
	$(GO) test -run='^$$' -fuzz='FuzzReadEdgeList' -fuzztime=5s ./internal/graph/

clean:
	rm -f bench.out coverage.out
