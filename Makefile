# Development entry points.  CI runs `make bench` as its perf smoke: one
# iteration of every benchmark, with the Engine serving-path numbers
# emitted as BENCH_engine.json to seed the performance trajectory.

GO ?= go

.PHONY: test race bench fuzz-smoke clean

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./ ./internal/query/

# One pass over every benchmark (regression smoke, not measurement), then
# the BenchmarkEngine*/BenchmarkSketchSet* lines rendered as JSON.  The
# redirect (not a pipe) keeps `go test`'s exit status, so a crashing
# benchmark fails the target — and CI.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x . > bench.out || { cat bench.out; exit 1; }
	cat bench.out
	awk 'BEGIN { print "[" } \
	  /^Benchmark(Engine|SketchSet)/ { \
	    if (n++) printf ",\n"; \
	    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", $$1, $$2, $$3 \
	  } \
	  END { print "\n]" }' bench.out > BENCH_engine.json
	@cat BENCH_engine.json

# A few seconds of coverage-guided fuzzing on the codec and graph-IO
# parsers — enough to catch decoder regressions fast.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='FuzzReadSketchSet' -fuzztime=5s ./internal/core/
	$(GO) test -run='^$$' -fuzz='FuzzReadSet$$' -fuzztime=5s ./internal/core/
	$(GO) test -run='^$$' -fuzz='FuzzReadEdgeList' -fuzztime=5s ./internal/graph/

clean:
	rm -f bench.out
