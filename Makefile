# Development entry points.  CI runs `make bench` as its perf smoke: one
# iteration of every benchmark, with the Engine serving-path numbers
# emitted as BENCH_engine.json to seed the performance trajectory.

GO ?= go

# COVER_BASELINE is the recorded total-statement-coverage floor; `make
# cover` (and CI) fail when the tree drops below it.  Raise it when
# coverage durably improves; never lower it to make a PR pass.
COVER_BASELINE ?= 74.0

.PHONY: test race bench cover fuzz-smoke memprofile clean

test:
	$(GO) build ./... && $(GO) test ./...

# Race coverage spans every layer with concurrency: the facade (engine,
# coordinator scatter-gather, dataset catalog), the query/cluster/catalog
# machinery, the parallel sketch builders in core, and the HTTP serving
# tier (including the hot-swap admin endpoints).
race:
	$(GO) test -race ./ ./internal/query/ ./internal/cluster/ ./internal/catalog/ ./internal/core/ ./cmd/adsserver/

# One pass over every benchmark (regression smoke, not measurement), then
# the BenchmarkEngine*/BenchmarkSketchSet* lines rendered as JSON.  The
# redirect (not a pipe) keeps `go test`'s exit status, so a crashing
# benchmark fails the target — and CI.
#
# CODEC_BASELINE_NS pins the pre-optimization BenchmarkSketchSetCodec
# measurement (reflection-based binary.Write per field, PR 2) so every
# BENCH_engine.json carries the before/after pair for the buffer-reuse
# codec rewrite.
#
# The *_PRE_FRAMES baselines pin the measurements taken immediately
# before the columnar-frame refactor (per-node entry slices, append-grown
# per-node HIPIndex, v2-only codec), so the load-path and index-build
# rows always ship with their before/after pair:
#   - loading a 5000-node k=16 set was a 24.3 ms v2 decode (15018
#     allocs); v3 open and v3 mmap now serve the same set in O(1) allocs;
#   - building every HIP index cost 94836 allocations (~19 per node);
#   - steady-state Engine.Do was 2956 ns and 8 allocs per request.
CODEC_BASELINE_NS = 1283536377
LOAD_PRE_FRAMES_NS = 24302517
LOAD_PRE_FRAMES_ALLOCS = 15018
HIPBUILD_PRE_FRAMES_NS = 26416967
HIPBUILD_PRE_FRAMES_ALLOCS = 94836
ENGINEDO_PRE_FRAMES_NS = 2956
ENGINEDO_PRE_FRAMES_ALLOCS = 8
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x . > bench.out || { cat bench.out; exit 1; }
	cat bench.out
	awk 'BEGIN { print "[" } \
	  /^Benchmark(Engine|SketchSet|HIPIndex|Catalog)/ { \
	    if (n++) printf ",\n"; \
	    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", $$1, $$2, $$3; \
	    for (i = 4; i <= NF; i++) if ($$i == "allocs/op") printf ", \"allocs_per_op\": %s", $$(i-1); \
	    printf "}" \
	  } \
	  END { \
	    printf ",\n  {\"name\": \"BenchmarkSketchSetCodec/before-buffer-reuse\", \"iterations\": 1, \"ns_per_op\": $(CODEC_BASELINE_NS)},\n"; \
	    printf "  {\"name\": \"BenchmarkSketchSetLoad/v2-decode/before-columnar-frames\", \"iterations\": 5, \"ns_per_op\": $(LOAD_PRE_FRAMES_NS), \"allocs_per_op\": $(LOAD_PRE_FRAMES_ALLOCS)},\n"; \
	    printf "  {\"name\": \"BenchmarkHIPIndexBuild/before-columnar-frames\", \"iterations\": 5, \"ns_per_op\": $(HIPBUILD_PRE_FRAMES_NS), \"allocs_per_op\": $(HIPBUILD_PRE_FRAMES_ALLOCS)},\n"; \
	    printf "  {\"name\": \"BenchmarkEngineDoAllocs/before-columnar-frames\", \"iterations\": 5, \"ns_per_op\": $(ENGINEDO_PRE_FRAMES_NS), \"allocs_per_op\": $(ENGINEDO_PRE_FRAMES_ALLOCS)}\n]\n" }' \
	  bench.out > BENCH_engine.json
	@cat BENCH_engine.json

# Heap profile of the steady-state serving hot path (Engine.Do with a
# warm cache): chase allocation regressions with
#   go tool pprof adsketch.test engine_do.memprofile
# CI runs this and uploads the profile artifact.
memprofile:
	$(GO) test -run='^$$' -bench='^BenchmarkEngineDoAllocs$$' -benchtime=10000x \
	  -memprofile=engine_do.memprofile -o adsketch.test .
	@ls -l engine_do.memprofile

# Coverage gate: emit coverage.out (CI uploads it as an artifact) and
# fail when total statement coverage falls below the recorded baseline.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (baseline $(COVER_BASELINE)%)"; \
	awk -v t="$$total" -v b="$(COVER_BASELINE)" 'BEGIN { exit !(t+0 >= b+0) }' || { \
	  echo "coverage $$total% fell below the $(COVER_BASELINE)% baseline" >&2; exit 1; }

# A few seconds of coverage-guided fuzzing on the codec and graph-IO
# parsers — enough to catch decoder regressions fast.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='FuzzReadSketchSet' -fuzztime=5s ./internal/core/
	$(GO) test -run='^$$' -fuzz='FuzzReadSet$$' -fuzztime=5s ./internal/core/
	$(GO) test -run='^$$' -fuzz='FuzzOpenSketchFile' -fuzztime=5s ./internal/core/
	$(GO) test -run='^$$' -fuzz='FuzzReadEdgeList' -fuzztime=5s ./internal/graph/

clean:
	rm -f bench.out coverage.out engine_do.memprofile adsketch.test
