# Development entry points.  CI runs `make bench` as its perf smoke: one
# iteration of every benchmark, with the Engine serving-path numbers
# emitted as BENCH_engine.json to seed the performance trajectory.

GO ?= go

# COVER_BASELINE is the recorded total-statement-coverage floor; `make
# cover` (and CI) fail when the tree drops below it.  Raise it when
# coverage durably improves; never lower it to make a PR pass.
COVER_BASELINE ?= 75.0

.PHONY: test race analyze bench cover fuzz-smoke memprofile ingest-smoke load-smoke wire-smoke distbuild-smoke clean

test:
	$(GO) build ./... && $(GO) test ./...

# The race gate covers the whole tree: every package with concurrency
# (the facade, coordinator scatter-gather, dataset catalog, streaming
# ingestor, parallel sketch builders, HTTP serving tier) plus everything
# that might grow some — a hand-picked allowlist rots silently.
race:
	$(GO) test -race ./...

# Static-analysis gate, also a required CI step: gofmt, the standard vet
# suite, the repo's own invariant analyzers (cmd/adsvet — detorder,
# refpair, wireformat, kindswitch, lockheld; see README "Static
# analysis"), and staticcheck when installed (CI installs a pinned
# version; locally the step is skipped with a notice).  adsvet runs
# through `go vet -vettool` so package loading shares the build cache.
analyze:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
	  echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	$(GO) build -o adsvet.bin ./cmd/adsvet
	$(GO) vet -vettool=./adsvet.bin ./...
	@rm -f adsvet.bin
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "analyze: staticcheck not installed; skipped (CI runs the pinned version)"; fi

# One pass over every benchmark (regression smoke, not measurement), then
# the BenchmarkEngine*/BenchmarkSketchSet* lines rendered as JSON.  The
# redirect (not a pipe) keeps `go test`'s exit status, so a crashing
# benchmark fails the target — and CI.
#
# CODEC_BASELINE_NS pins the pre-optimization BenchmarkSketchSetCodec
# measurement (reflection-based binary.Write per field, PR 2) so every
# BENCH_engine.json carries the before/after pair for the buffer-reuse
# codec rewrite.
#
# The *_PRE_FRAMES baselines pin the measurements taken immediately
# before the columnar-frame refactor (per-node entry slices, append-grown
# per-node HIPIndex, v2-only codec), so the load-path and index-build
# rows always ship with their before/after pair:
#   - loading a 5000-node k=16 set was a 24.3 ms v2 decode (15018
#     allocs); v3 open and v3 mmap now serve the same set in O(1) allocs;
#   - building every HIP index cost 94836 allocations (~19 per node);
#   - steady-state Engine.Do was 2956 ns and 8 allocs per request.
CODEC_BASELINE_NS = 1283536377
LOAD_PRE_FRAMES_NS = 24302517
LOAD_PRE_FRAMES_ALLOCS = 15018
HIPBUILD_PRE_FRAMES_NS = 26416967
HIPBUILD_PRE_FRAMES_ALLOCS = 94836
ENGINEDO_PRE_FRAMES_NS = 2956
ENGINEDO_PRE_FRAMES_ALLOCS = 8
# Every benchmark that lands in BENCH_engine.json gets a second,
# multi-iteration pass: at -benchtime=1x the numbers are first-request
# warmup artifacts (cold caches, first-touch page faults, one-shot
# allocations), not steady state.  The reruns are tiered by per-op cost
# so the target stays a smoke (fast ops 2000x, medium 100x, heavy 5x).
# The awk below dedupes by benchmark name keeping the LAST occurrence,
# so the rerun rows override the 1x rows in BENCH_engine.json.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x . > bench.out || { cat bench.out; exit 1; }
	$(GO) test -run='^$$' -bench='^(BenchmarkEngineClosenessCached|BenchmarkEngineTopCloseness|BenchmarkEngineDoJSON|BenchmarkEngineDoWire|BenchmarkEngineWireEncode|BenchmarkEngineWireDecode|BenchmarkEngineDoAllocs|BenchmarkHIPIndexQuery|BenchmarkCatalogDo(Direct|Batch)?|BenchmarkCatalogSwap|BenchmarkIngestInsert)$$' -benchtime=2000x . >> bench.out || { cat bench.out; exit 1; }
	$(GO) test -run='^$$' -bench='^(BenchmarkSketchSetLoad|BenchmarkHIPIndexBuild|BenchmarkIngestInsertBatch$$|BenchmarkIngestFreezePublish$$)' -benchtime=100x . >> bench.out || { cat bench.out; exit 1; }
	$(GO) test -run='^$$' -bench='^(BenchmarkEngineClosenessBatch|BenchmarkSketchSetCodec)$$' -benchtime=5x . >> bench.out || { cat bench.out; exit 1; }
	$(GO) test -run='^$$' -bench='^(BenchmarkHTTPShardRoundtrip|BenchmarkCoordinatorScatterFrame)$$' -benchtime=100x ./cmd/adsserver >> bench.out || { cat bench.out; exit 1; }
	$(GO) test -run='^$$' -bench='^BenchmarkDistBuild(1Worker|4Workers)$$' -benchtime=5x ./internal/distbuild >> bench.out || { cat bench.out; exit 1; }
	cat bench.out
	awk 'BEGIN { print "[" } \
	  /^Benchmark(Engine|SketchSet|HIPIndex|Catalog|Ingest|HTTPShard|Coordinator|DistBuild)/ { \
	    if (!($$1 in row)) order[++m] = $$1; \
	    row[$$1] = $$0 \
	  } \
	  END { \
	    for (j = 1; j <= m; j++) { \
	      nf = split(row[order[j]], f, /[ \t]+/); \
	      if (n++) printf ",\n"; \
	      printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", f[1], f[2], f[3]; \
	      for (i = 4; i <= nf; i++) if (f[i] == "allocs/op") printf ", \"allocs_per_op\": %s", f[i-1]; \
	      printf "}" \
	    } \
	    printf ",\n  {\"name\": \"BenchmarkSketchSetCodec/before-buffer-reuse\", \"iterations\": 1, \"ns_per_op\": $(CODEC_BASELINE_NS)},\n"; \
	    printf "  {\"name\": \"BenchmarkSketchSetLoad/v2-decode/before-columnar-frames\", \"iterations\": 5, \"ns_per_op\": $(LOAD_PRE_FRAMES_NS), \"allocs_per_op\": $(LOAD_PRE_FRAMES_ALLOCS)},\n"; \
	    printf "  {\"name\": \"BenchmarkHIPIndexBuild/before-columnar-frames\", \"iterations\": 5, \"ns_per_op\": $(HIPBUILD_PRE_FRAMES_NS), \"allocs_per_op\": $(HIPBUILD_PRE_FRAMES_ALLOCS)},\n"; \
	    printf "  {\"name\": \"BenchmarkEngineDoAllocs/before-columnar-frames\", \"iterations\": 5, \"ns_per_op\": $(ENGINEDO_PRE_FRAMES_NS), \"allocs_per_op\": $(ENGINEDO_PRE_FRAMES_ALLOCS)}\n]\n" }' \
	  bench.out > BENCH_engine.json
	@cat BENCH_engine.json

# Heap profile of the steady-state serving hot path (Engine.Do with a
# warm cache): chase allocation regressions with
#   go tool pprof adsketch.test engine_do.memprofile
# CI runs this and uploads the profile artifact.
memprofile:
	$(GO) test -run='^$$' -bench='^BenchmarkEngineDoAllocs$$' -benchtime=10000x \
	  -memprofile=engine_do.memprofile -o adsketch.test .
	@ls -l engine_do.memprofile

# Coverage gate: emit coverage.out (CI uploads it as an artifact) and
# fail when total statement coverage falls below the recorded baseline.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (baseline $(COVER_BASELINE)%)"; \
	awk -v t="$$total" -v b="$(COVER_BASELINE)" 'BEGIN { exit !(t+0 >= b+0) }' || { \
	  echo "coverage $$total% fell below the $(COVER_BASELINE)% baseline" >&2; exit 1; }

# A few seconds of coverage-guided fuzzing on the codec, wire-protocol,
# and graph-IO parsers — enough to catch decoder regressions fast.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='FuzzReadSketchSet' -fuzztime=5s ./internal/core/
	$(GO) test -run='^$$' -fuzz='FuzzReadSet$$' -fuzztime=5s ./internal/core/
	$(GO) test -run='^$$' -fuzz='FuzzOpenSketchFile' -fuzztime=5s ./internal/core/
	$(GO) test -run='^$$' -fuzz='FuzzReadEdgeList' -fuzztime=5s ./internal/graph/
	$(GO) test -run='^$$' -fuzz='FuzzDecodeRequest' -fuzztime=5s ./internal/wire/
	$(GO) test -run='^$$' -fuzz='FuzzDecodeResponse' -fuzztime=5s ./internal/wire/
	$(GO) test -run='^$$' -fuzz='FuzzDecodeFrontierFrame' -fuzztime=5s ./internal/wire/

# End-to-end streaming-ingest smoke: start an ingest-enabled adsserver,
# replay the checked-in SNAP fixture through `adstool ingest` (34 edges,
# so -freeze-every 16 publishes mid-stream and the final batch freezes
# explicitly), then verify the published dataset answers queries.
ingest-smoke:
	$(GO) build -o adsserver.smoke ./cmd/adsserver
	$(GO) build -o adstool.smoke ./cmd/adstool
	@set -e; \
	./adsserver.smoke -ingest -freeze-every 16 -ingest-k 8 -addr 127.0.0.1:18080 >/dev/null 2>&1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT INT TERM; \
	ok=0; for i in $$(seq 1 50); do \
	  if ./adstool.smoke ingest -remote http://127.0.0.1:18080 -dataset smoke \
	       -graph internal/graph/testdata/snap_small.txt -batch 10 2>/dev/null; then ok=1; break; fi; \
	  sleep 0.2; \
	done; \
	[ "$$ok" = 1 ] || { echo "ingest-smoke: server never became ready" >&2; exit 1; }; \
	./adstool.smoke query -remote http://127.0.0.1:18080 -dataset smoke -node 0 -d 2; \
	echo "ingest-smoke: OK"
	rm -f adsserver.smoke adstool.smoke

# End-to-end failure-semantics smoke: two fault-injectable workers behind
# a scatter-gather coordinator, driven by adsload's SLO gate.  Proves the
# PR 8 acceptance criteria on a live topology:
#   1. healthy topology passes a zero-error gate;
#   2. killing a worker mid-run under the partial policy keeps the
#      coordinator at zero errors (degraded, flagged answers instead);
#   3. those degraded answers ARE flagged (a partial-intolerant gate on
#      the same scenario must fail);
#   4. the default fail policy surfaces the outage as errors (a lenient
#      error-rate gate on the fail-policy scenario must fail).
# Scenario files pin the worker fault endpoint to 127.0.0.1:18092.
load-smoke:
	$(GO) build -o adsserver.smoke ./cmd/adsserver
	$(GO) build -o adstool.smoke ./cmd/adstool
	$(GO) build -o adsload.smoke ./cmd/adsload
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'kill $$w1 $$w2 $$coord 2>/dev/null; rm -rf $$tmp' EXIT INT TERM; \
	./adstool.smoke gen -type ba -n 2000 -m 3 -seed 7 > $$tmp/graph.txt; \
	./adstool.smoke build -graph $$tmp/graph.txt -k 8 -seed 42 -save $$tmp/whole.ads >/dev/null; \
	./adstool.smoke split -sketches $$tmp/whole.ads -partitions 2 -out $$tmp/part >/dev/null; \
	./adsserver.smoke -sketches $$tmp/part.p0of2.ads -fault-inject -addr 127.0.0.1:18091 >/dev/null 2>&1 & w1=$$!; \
	./adsserver.smoke -sketches $$tmp/part.p1of2.ads -fault-inject -addr 127.0.0.1:18092 >/dev/null 2>&1 & w2=$$!; \
	./adsserver.smoke -workers http://127.0.0.1:18091,http://127.0.0.1:18092 \
	  -shard-retries 1 -retry-backoff 5ms -shard-timeout 5s \
	  -addr 127.0.0.1:18090 >/dev/null 2>&1 & coord=$$!; \
	ok=0; for i in $$(seq 1 50); do \
	  if ./adsload.smoke -target http://127.0.0.1:18090 -rps 50 -duration 100ms >/dev/null 2>&1; then ok=1; break; fi; \
	  sleep 0.2; \
	done; \
	[ "$$ok" = 1 ] || { echo "load-smoke: coordinator never became ready" >&2; exit 1; }; \
	echo "load-smoke: [1/6] healthy topology, zero-error gate"; \
	./adsload.smoke -target http://127.0.0.1:18090 -rps 150 -duration 2s \
	  -gate -slo-error-rate 0 -slo-p99 5s -slo-min-done 100; \
	echo "load-smoke: [2/6] dead worker mid-run, partial policy stays zero-error (json)"; \
	./adsload.smoke -target http://127.0.0.1:18090 -proto json -scenario cmd/adsload/testdata/smoke_deadworker.json \
	  -gate -slo-error-rate 0 -slo-p99 5s -slo-min-done 50 -slo-max-partial -1; \
	echo "load-smoke: [3/6] same dead-worker scenario over binary frames, same gate outcome"; \
	./adsload.smoke -target http://127.0.0.1:18090 -proto binary -scenario cmd/adsload/testdata/smoke_deadworker.json \
	  -gate -slo-error-rate 0 -slo-p99 5s -slo-min-done 50 -slo-max-partial -1; \
	echo "load-smoke: [4/6] the degraded answers were flagged under json (strict gate must fail)"; \
	if ./adsload.smoke -target http://127.0.0.1:18090 -proto json -scenario cmd/adsload/testdata/smoke_deadworker.json \
	  -gate -slo-error-rate 0 -slo-max-partial 0 >/dev/null; then \
	  echo "load-smoke: expected the partial-intolerant gate to fail" >&2; exit 1; fi; \
	echo "load-smoke: [5/6] ... and under binary, identically"; \
	if ./adsload.smoke -target http://127.0.0.1:18090 -proto binary -scenario cmd/adsload/testdata/smoke_deadworker.json \
	  -gate -slo-error-rate 0 -slo-max-partial 0 >/dev/null; then \
	  echo "load-smoke: expected the partial-intolerant gate to fail over binary" >&2; exit 1; fi; \
	echo "load-smoke: [6/6] fail policy surfaces the outage (lenient gate must fail)"; \
	if ./adsload.smoke -target http://127.0.0.1:18090 -scenario cmd/adsload/testdata/smoke_failpolicy.json \
	  -gate -slo-error-rate 0.05 -slo-min-done 1 >/dev/null; then \
	  echo "load-smoke: expected the fail-policy gate to fail" >&2; exit 1; fi; \
	echo "load-smoke: OK"
	rm -f adsserver.smoke adstool.smoke adsload.smoke

# Wire-to-wire latency gate for the binary protocol: a single-worker
# topology served in-process (adsload -inproc), every request paying the
# full frame encode/decode on both legs, a cache-hitting single-node mix
# (closeness1).  In-process rather than loopback TCP because on small CI
# machines the kernel's loopback round trip alone dwarfs the 100µs
# budget — the gate pins the serving path the binary protocol owns,
# while load-smoke keeps covering the real HTTP topology.  The JSON run
# afterwards lands in the same artifact as the comparison row; the p50/
# p95/p99 JSON lines are kept in wire_smoke.json for CI to upload.
wire-smoke:
	$(GO) build -o adstool.smoke ./cmd/adstool
	$(GO) build -o adsload.smoke ./cmd/adsload
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'rm -rf $$tmp' EXIT INT TERM; \
	./adstool.smoke gen -type ba -n 2000 -m 3 -seed 7 > $$tmp/graph.txt; \
	./adstool.smoke build -graph $$tmp/graph.txt -k 8 -seed 42 -save $$tmp/whole.ads >/dev/null; \
	./adsload.smoke -inproc $$tmp/whole.ads -proto binary -mix closeness1=1 -rps 2000 -duration 1s >/dev/null; \
	echo "wire-smoke: binary frames, cached single-node queries, p99 < 100us gate"; \
	./adsload.smoke -inproc $$tmp/whole.ads -proto binary -mix closeness1=1 -rps 2000 -duration 3s \
	  -json -gate -slo-p99 100us -slo-error-rate 0 -slo-min-done 1000 | tee $$tmp/wire.out; \
	echo "wire-smoke: same mix over the JSON transport, for the comparison row"; \
	./adsload.smoke -inproc $$tmp/whole.ads -proto json -mix closeness1=1 -rps 2000 -duration 3s -json \
	  | tee -a $$tmp/wire.out; \
	grep '^{' $$tmp/wire.out > wire_smoke.json; \
	echo "wire-smoke: OK (histograms in wire_smoke.json)"
	rm -f adstool.smoke adsload.smoke

# End-to-end distributed-build smoke: four adsserver -buildworker
# processes build the SNAP fixture over the wire transport for every
# sketch kind (uniform, weighted, approx).  Each kind's partition files
# must be byte-identical to a single-process `adstool build -save` split
# with `adstool split -v3`; each kind's partitions are then served
# behind a scatter-gather coordinator and must answer a query.
distbuild-smoke:
	$(GO) build -o adsserver.smoke ./cmd/adsserver
	$(GO) build -o adstool.smoke ./cmd/adstool
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'kill $$bw $$sv 2>/dev/null || true; rm -rf $$tmp' EXIT INT TERM; \
	cp internal/graph/testdata/snap_small.txt $$tmp/graph.txt; \
	n=$$(./adstool.smoke stats -graph $$tmp/graph.txt | awk '/^nodes/ { print $$2 }'); \
	weights=$$(seq $$n | awk '{ printf (NR > 1 ? "," : "") "%g", 0.5 + (NR - 1) % 3 }'); \
	bw=""; sv=""; urls=""; \
	for i in 1 2 3 4; do \
	  ./adsserver.smoke -buildworker -addr 127.0.0.1:1810$$i >/dev/null 2>&1 & bw="$$bw $$!"; \
	  urls="$$urls,http://127.0.0.1:1810$$i"; \
	done; urls=$${urls#,}; \
	ok=0; for t in $$(seq 1 50); do \
	  if ./adstool.smoke build -graph $$tmp/graph.txt -k 8 -seed 42 \
	       -workers $$urls -out $$tmp/dist_uniform 2>/dev/null; then ok=1; break; fi; \
	  sleep 0.2; \
	done; \
	[ "$$ok" = 1 ] || { echo "distbuild-smoke: build workers never became ready" >&2; exit 1; }; \
	./adstool.smoke build -graph $$tmp/graph.txt -k 8 -seed 42 -weights $$weights \
	  -workers $$urls -out $$tmp/dist_weighted; \
	./adstool.smoke build -graph $$tmp/graph.txt -k 8 -seed 42 -eps 0.25 \
	  -workers $$urls -out $$tmp/dist_approx; \
	kill $$bw 2>/dev/null || true; bw=""; \
	./adstool.smoke build -graph $$tmp/graph.txt -k 8 -seed 42 -save $$tmp/whole_uniform.ads >/dev/null; \
	./adstool.smoke build -graph $$tmp/graph.txt -k 8 -seed 42 -weights $$weights -save $$tmp/whole_weighted.ads >/dev/null; \
	./adstool.smoke build -graph $$tmp/graph.txt -k 8 -seed 42 -eps 0.25 -save $$tmp/whole_approx.ads >/dev/null; \
	for kind in uniform weighted approx; do \
	  ./adstool.smoke split -sketches $$tmp/whole_$$kind.ads -partitions 4 -out $$tmp/ref_$$kind -v3 >/dev/null; \
	  for i in 0 1 2 3; do \
	    cmp $$tmp/ref_$$kind.p$${i}of4.ads $$tmp/dist_$$kind.p$${i}of4.ads || { \
	      echo "distbuild-smoke: $$kind partition $$i differs from the single-process split" >&2; exit 1; }; \
	  done; \
	  echo "distbuild-smoke: $$kind partitions byte-identical; serving them"; \
	  surls=""; \
	  for i in 0 1 2 3; do \
	    ./adsserver.smoke -sketches $$tmp/dist_$$kind.p$${i}of4.ads -addr 127.0.0.1:1811$$i >/dev/null 2>&1 & sv="$$sv $$!"; \
	    surls="$$surls,http://127.0.0.1:1811$$i"; \
	  done; surls=$${surls#,}; \
	  ./adsserver.smoke -workers $$surls -addr 127.0.0.1:18119 >/dev/null 2>&1 & sv="$$sv $$!"; \
	  ok=0; for t in $$(seq 1 50); do \
	    if ./adstool.smoke query -remote http://127.0.0.1:18119 -node 1 -d 2 2>/dev/null; then ok=1; break; fi; \
	    sleep 0.2; \
	  done; \
	  kill $$sv 2>/dev/null || true; sv=""; \
	  [ "$$ok" = 1 ] || { echo "distbuild-smoke: $$kind coordinator never answered" >&2; exit 1; }; \
	done; \
	echo "distbuild-smoke: OK"
	rm -f adsserver.smoke adstool.smoke

clean:
	rm -f bench.out coverage.out engine_do.memprofile adsketch.test adsserver.smoke adstool.smoke adsload.smoke adsvet.bin wire_smoke.json
