package adsketch

import (
	"context"
	"fmt"
	"sync"

	"adsketch/internal/cluster"
	"adsketch/internal/core"
	"adsketch/internal/query"
)

// The scatter-gather serving tier.  A sketch set split by node ID into P
// partitions (SplitSketchSet) is served by P shard engines — in-process
// (NewPartitionedEngine), or remote adsserver workers each loading one
// partition file — behind one Coordinator that fans each protocol query
// out to the shards that can answer it and merges the partials:
//
//   - per-node queries (closeness, harmonic, neighborhood,
//     centrality_kernel) route each node to its owning shard and
//     reassemble the scores in request order;
//   - topk scatters to every shard and merges the per-shard rankings
//     with the single-set ordering (score descending, node ascending);
//   - the pairwise coordinated queries (jaccard, influence,
//     distance_bound) scatter sketch fetches to the owning shards and
//     evaluate at the coordinator, since their endpoints may live on
//     different shards.
//
// Every merge reproduces the single-set evaluation exactly, so a
// coordinator answer is bit-for-bit identical to one Engine over the
// unpartitioned set.

// Names of sketch set kinds in serving metadata (ShardMeta.Kind).
const (
	KindUniform     = "uniform"
	KindWeighted    = "weighted"
	KindApproximate = "approximate"
)

// Names of MinHash flavors in serving metadata (ShardMeta.Flavor).
const (
	FlavorBottomK    = "bottomk"
	FlavorKMins      = "kmins"
	FlavorKPartition = "kpartition"
)

// ShardMeta identifies what one serving backend holds: its position in
// the split, the global node range it owns, and the sketch parameters.
// It is the payload of the adsserver /v1/meta endpoint, which a
// coordinator reads at startup to build its routing table.
type ShardMeta struct {
	// Index and Count locate the shard in the split (a whole set is the
	// single partition of a 1-way split).
	Index int `json:"index"`
	Count int `json:"count"`
	// Lo and Hi delimit the owned global node IDs [Lo, Hi).
	Lo int32 `json:"lo"`
	Hi int32 `json:"hi"`
	// TotalNodes is the node count of the full (unsplit) set.
	TotalNodes int `json:"total_nodes"`
	// K is the sketch parameter.
	K int `json:"k"`
	// Kind is the set kind: uniform, weighted, or approximate.
	Kind string `json:"kind"`
	// Flavor is the MinHash flavor: bottomk, kmins, or kpartition.
	Flavor string `json:"flavor"`
}

// ShardBackend is one partition backend of a Coordinator: anything that
// can identify its node range and answer the wire protocol for it.
// *Engine implements it (a whole-set engine is the trivial 1-way shard,
// a NewShardEngine the real thing), *Coordinator implements it too (so
// coordination trees compose), and cmd/adsserver implements it over HTTP
// for remote workers.
type ShardBackend interface {
	// Meta identifies the shard's node range and sketch parameters.
	Meta() ShardMeta
	// Do answers one protocol request for nodes the shard owns.
	Do(ctx context.Context, req Request) (Response, error)
	// DoBatch answers a batch, reporting per-request failures inline.
	DoBatch(ctx context.Context, reqs []Request) ([]Response, error)
}

var (
	_ ShardBackend = (*Engine)(nil)
	_ ShardBackend = (*Coordinator)(nil)
)

// Coordinator serves the wire protocol over a complete set of shard
// backends, scattering each query to the shards that own its nodes and
// gathering the partial responses into the single-set answer.  It is
// safe for concurrent use when its backends are (both *Engine and the
// adsserver HTTP shard are).
type Coordinator struct {
	shards []ShardBackend
	router *cluster.Router
	total  int
	k      int
	kind   string
	flavor string
}

// NewCoordinator builds a coordinator over a complete split: one backend
// per partition, covering every node exactly once, with equal sketch
// parameters.  Backends may be local engines, remote workers, or nested
// coordinators, in any order.
func NewCoordinator(backends []ShardBackend) (*Coordinator, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("%w: NewCoordinator with no shard backends", ErrBadOption)
	}
	first := backends[0].Meta()
	ranges := make([]cluster.Range, len(backends))
	for i, b := range backends {
		m := b.Meta()
		if m.TotalNodes != first.TotalNodes || m.K != first.K || m.Kind != first.Kind || m.Flavor != first.Flavor {
			return nil, fmt.Errorf("%w: shard %d serves (%d nodes, k=%d, %s/%s), shard 0 (%d nodes, k=%d, %s/%s)",
				ErrBadOption, i, m.TotalNodes, m.K, m.Kind, m.Flavor,
				first.TotalNodes, first.K, first.Kind, first.Flavor)
		}
		ranges[i] = cluster.Range{Shard: i, Lo: m.Lo, Hi: m.Hi}
	}
	router, err := cluster.NewRouter(ranges, first.TotalNodes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadOption, err)
	}
	return &Coordinator{
		shards: backends,
		router: router,
		total:  first.TotalNodes,
		k:      first.K,
		kind:   first.Kind,
		flavor: first.Flavor,
	}, nil
}

// NumNodes returns the global node count.
func (c *Coordinator) NumNodes() int { return c.total }

// K returns the sketch parameter.
func (c *Coordinator) K() int { return c.k }

// Kind returns the served set kind (uniform, weighted, approximate).
func (c *Coordinator) Kind() string { return c.kind }

// NumShards returns the number of shard backends.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// ShardMetas returns the metadata of every backend, in backend order.
func (c *Coordinator) ShardMetas() []ShardMeta {
	out := make([]ShardMeta, len(c.shards))
	for i, b := range c.shards {
		out[i] = b.Meta()
	}
	return out
}

// Meta reports the coordinator's own serving identity: the whole node
// space, as the single partition of a 1-way split.  This is what lets a
// Coordinator stand in for an Engine behind another Coordinator.
func (c *Coordinator) Meta() ShardMeta {
	return ShardMeta{
		Index: 0, Count: 1,
		Lo: 0, Hi: int32(c.total), TotalNodes: c.total,
		K: c.k, Kind: c.kind, Flavor: c.flavor,
	}
}

// cacheStatser is the optional backend face for index-cache statistics;
// *Engine and *Coordinator provide it, remote shards keep their own
// (visible on their /statsz).
type cacheStatser interface {
	CacheStats() CacheStats
}

// CacheStats aggregates the index-cache counters of every local backend
// (engines and nested coordinators; remote shards report through their
// own /statsz).  The engines keep independent caches — one per
// partition — and this is their shared, serving-tier-wide view.
func (c *Coordinator) CacheStats() CacheStats {
	var st CacheStats
	for _, b := range c.shards {
		if s, ok := b.(cacheStatser); ok {
			sub := s.CacheStats()
			st.Shards += sub.Shards
			st.Slots += sub.Slots
			st.Built += sub.Built
			st.Hits += sub.Hits
			st.Misses += sub.Misses
		}
	}
	return st
}

// Do answers one protocol request by scatter-gather over the shards.
// Semantics, errors, and results are identical to Engine.Do over the
// unpartitioned set; when req.Explain is set, the response additionally
// carries the merge metadata.
func (c *Coordinator) Do(ctx context.Context, req Request) (Response, error) {
	q, err := req.Query()
	if err != nil {
		return Response{}, err
	}
	if err := q.validate(); err != nil {
		return Response{}, err
	}
	resp, err := q.scatter(ctx, c)
	if err != nil {
		return Response{}, err
	}
	if !req.Explain {
		resp.Merge = nil
	}
	resp.ID = req.ID
	resp.Kind = q.kind()
	return resp, nil
}

// DoBatch answers a batch of protocol requests with the semantics of
// Engine.DoBatch: per-request failures are reported inline, and the call
// fails only when ctx is done.
func (c *Coordinator) DoBatch(ctx context.Context, reqs []Request) ([]Response, error) {
	return doBatch(ctx, reqs, c.Do)
}

// mergeMeta records which shards a scatter consulted.
func (c *Coordinator) mergeMeta(subs []cluster.Sub) *MergeMeta {
	m := &MergeMeta{Partials: len(subs)}
	for _, s := range subs {
		m.Shards = append(m.Shards, c.shards[s.Shard].Meta().Index)
	}
	return m
}

// allShardsMeta is the merge metadata of a full fan-out.
func (c *Coordinator) allShardsMeta() *MergeMeta {
	m := &MergeMeta{Partials: len(c.shards)}
	for _, b := range c.shards {
		m.Shards = append(m.Shards, b.Meta().Index)
	}
	return m
}

// fetchMeta records the shards owning the given nodes, in routing
// order — the merge metadata of a pairwise sketch scatter.
func (c *Coordinator) fetchMeta(nodes []int32) *MergeMeta {
	m := &MergeMeta{}
	seen := make(map[int]bool)
	for _, v := range nodes {
		shard, err := c.router.Owner(v)
		if err != nil {
			continue
		}
		m.Partials++
		if idx := c.shards[shard].Meta().Index; !seen[idx] {
			seen[idx] = true
			m.Shards = append(m.Shards, idx)
		}
	}
	return m
}

// shardErr tags a backend error with the shard's partition index.
func (c *Coordinator) shardErr(shard int, err error) error {
	return fmt.Errorf("shard %d: %w", c.shards[shard].Meta().Index, err)
}

// scatterScores fans a per-node query out to the shards owning its
// nodes (mk builds the per-shard request from a node subset) and merges
// the partial score vectors back into request order.
func (c *Coordinator) scatterScores(ctx context.Context, nodes []int32, mk func([]int32) Request) (Response, error) {
	if err := query.CheckNodes(c.total, nodes); err != nil {
		return Response{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	subs, err := c.router.Plan(nodes)
	if err != nil {
		return Response{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	partial := make([][]float64, len(subs))
	err = cluster.Scatter(ctx, len(subs), func(i int) error {
		resp, err := c.shards[subs[i].Shard].Do(ctx, mk(subs[i].Nodes))
		if err != nil {
			return c.shardErr(subs[i].Shard, err)
		}
		partial[i] = resp.Scores
		return nil
	})
	if err != nil {
		return Response{}, err
	}
	scores, err := cluster.MergeScores(len(nodes), subs, partial)
	if err != nil {
		return Response{}, err
	}
	return Response{Scores: scores, Merge: c.mergeMeta(subs)}, nil
}

// scatterTopK fans a topk query to every shard and merges the per-shard
// rankings into the global top-k.
func (c *Coordinator) scatterTopK(ctx context.Context, q *TopKQuery) (Response, error) {
	lists := make([][]Ranked, len(c.shards))
	err := cluster.Scatter(ctx, len(c.shards), func(i int) error {
		resp, err := c.shards[i].Do(ctx, Request{TopK: q})
		if err != nil {
			return c.shardErr(i, err)
		}
		lists[i] = resp.Ranking
		return nil
	})
	if err != nil {
		return Response{}, err
	}
	return Response{Ranking: cluster.MergeTopK(q.K, lists), Merge: c.allShardsMeta()}, nil
}

// requireCoordinated gates the cross-sketch queries (jaccard, influence,
// distance_bound, sketch fetches): they need uniform-rank bottom-k
// coordinated sketches.
func (c *Coordinator) requireCoordinated() error {
	if c.kind != KindUniform || c.flavor != FlavorBottomK {
		return fmt.Errorf("%w: requires uniform-rank bottom-k coordinated sketches, coordinator serves %s/%s sketches",
			ErrUnsupportedQuery, c.kind, c.flavor)
	}
	return nil
}

// fetchSketches batch-fetches the bottom-k sketches of many global
// nodes, one sketch-query batch per owning shard, scattered
// concurrently.
func (c *Coordinator) fetchSketches(ctx context.Context, nodes []int32) (map[int32]*core.ADS, error) {
	if err := c.requireCoordinated(); err != nil {
		return nil, err
	}
	if err := query.CheckNodes(c.total, nodes); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	subs, err := c.router.Plan(nodes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	out := make(map[int32]*core.ADS, len(nodes))
	var mu sync.Mutex
	err = cluster.Scatter(ctx, len(subs), func(i int) error {
		reqs := make([]Request, len(subs[i].Nodes))
		for j, v := range subs[i].Nodes {
			reqs[j] = Request{Sketch: &SketchQuery{Node: v}}
		}
		resps, err := c.shards[subs[i].Shard].DoBatch(ctx, reqs)
		if err != nil {
			return c.shardErr(subs[i].Shard, err)
		}
		if len(resps) != len(reqs) {
			return c.shardErr(subs[i].Shard, fmt.Errorf("returned %d responses for %d sketch fetches", len(resps), len(reqs)))
		}
		fetched := make([]*core.ADS, len(resps))
		for j, r := range resps {
			if r.Error != "" {
				return c.shardErr(subs[i].Shard, fmt.Errorf("fetching sketch of node %d: %s", subs[i].Nodes[j], r.Error))
			}
			a, err := adsFromWire(subs[i].Nodes[j], c.k, r.Entries)
			if err != nil {
				return c.shardErr(subs[i].Shard, err)
			}
			fetched[j] = a
		}
		mu.Lock()
		defer mu.Unlock()
		for j, a := range fetched {
			out[subs[i].Nodes[j]] = a
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// adsFromWire rebuilds a validated bottom-k ADS from transported sketch
// entries.  encoding/json emits the shortest float64 form that round
// trips exactly, so a sketch fetched from a remote shard is bit-for-bit
// the stored one.
func adsFromWire(owner int32, k int, entries []SketchEntry) (*core.ADS, error) {
	raw := make([]core.Entry, len(entries))
	for i, e := range entries {
		raw[i] = core.Entry{Node: e.Node, Dist: e.Dist, Rank: e.Rank}
	}
	a, err := core.ADSFromEntries(owner, k, raw)
	if err != nil {
		return nil, fmt.Errorf("sketch of node %d arrived corrupt: %w", owner, err)
	}
	return a, nil
}
